// Appendix D: monitoring two interdependent conditions, A: "reactor x
// hotter than reactor y" and B: "y hotter than x".
//
//   ./examples/multi_condition [--seed 2] [--updates 40] [--loss 0.1]
//
// Part 1 reproduces Example 4: even without replication, separate CEs
// can paint a conflicting picture. Part 2 runs the two Appendix D
// architectures on the simulator: separate replicated CE fleets per
// condition (Figure D-7(c)) with a per-condition router at the AD, and
// the co-located reduction C = A OR B (Figure D-8).
#include <iostream>
#include <memory>

#include "check/properties.hpp"
#include "core/rcm.hpp"
#include "core/multi_condition.hpp"
#include "sim/multi_condition.hpp"
#include "trace/generators.hpp"
#include "util/args.hpp"

namespace {

constexpr rcm::VarId kX = 0;
constexpr rcm::VarId kY = 1;

rcm::ConditionPtr cond_a() {
  return std::make_shared<const rcm::GreaterThanCondition>("A", kX, kY);
}
rcm::ConditionPtr cond_b() {
  return std::make_shared<const rcm::GreaterThanCondition>("B", kY, kX);
}

void part1_example4() {
  std::cout << "--- Example 4: interdependent conditions conflict ---\n"
            << "both reactors at 2000, then both rise to 2100; the CE for\n"
            << "A sees x change first, the CE for B sees y change first\n";
  rcm::ConditionEvaluator ce_a{cond_a(), "CE-A"};
  rcm::ConditionEvaluator ce_b{cond_b(), "CE-B"};
  std::vector<rcm::Alert> alerts;
  for (const rcm::Update& u : std::vector<rcm::Update>{
           {kX, 1, 2000}, {kY, 1, 2000}, {kX, 2, 2100}, {kY, 2, 2100}})
    if (auto a = ce_a.on_update(u)) alerts.push_back(*a);
  for (const rcm::Update& u : std::vector<rcm::Update>{
           {kX, 1, 2000}, {kY, 1, 2000}, {kY, 2, 2100}, {kX, 2, 2100}})
    if (auto a = ce_b.on_update(u)) alerts.push_back(*a);
  for (const rcm::Alert& a : alerts)
    std::cout << "  alert from condition " << a.cond << "\n";
  std::cout << "the user is told both \"x hotter\" AND \"y hotter\" — a\n"
            << "conflict inherent to interdependent conditions.\n\n";
}

void part2_architectures(std::size_t updates, double loss,
                         std::uint64_t seed) {
  rcm::util::Rng rng{seed};
  auto make_traces = [&] {
    std::vector<rcm::trace::Trace> traces;
    for (rcm::VarId v : {kX, kY}) {
      rcm::trace::ReactorParams p;
      p.base.var = v;
      p.base.count = updates;
      p.baseline = 2000.0;
      p.stddev = 60.0;
      p.excursion_prob = 0.0;
      traces.push_back(rcm::trace::reactor_trace(p, rng));
    }
    return traces;
  };

  std::cout << "--- Figure D-7(c): separate replicated CEs per condition ---\n";
  rcm::sim::MultiConditionConfig separate;
  separate.groups = {{cond_a(), 2, rcm::FilterKind::kAd5},
                     {cond_b(), 2, rcm::FilterKind::kAd5}};
  separate.dm_traces = make_traces();
  separate.front.loss = loss;
  separate.seed = seed;
  const auto sep = rcm::sim::run_multi_condition_system(separate);
  std::cout << "displayed: " << sep.per_condition.at("A").size()
            << " A-alerts, " << sep.per_condition.at("B").size()
            << " B-alerts; per-stream AD-5 keeps each stream ordered: "
            << std::boolalpha
            << (rcm::check::check_ordered(sep.per_condition.at("A"),
                                          {kX, kY}) &&
                rcm::check::check_ordered(sep.per_condition.at("B"),
                                          {kX, kY}))
            << "\n\n";

  std::cout << "--- Figure D-8: co-located CEs as C = A or B ---\n";
  const auto c = std::make_shared<const rcm::DisjunctionCondition>(
      "C", std::vector<rcm::ConditionPtr>{cond_a(), cond_b()});
  rcm::sim::MultiConditionConfig colocated;
  colocated.groups = {{c, 2, rcm::FilterKind::kAd5}};
  colocated.dm_traces = make_traces();
  colocated.front.loss = loss;
  colocated.seed = seed + 1;
  const auto col = rcm::sim::run_multi_condition_system(colocated);
  std::cout << "displayed: " << col.per_condition.at("C").size()
            << " C-alerts (C fires whenever A or B does); ordered: "
            << rcm::check::check_ordered(col.per_condition.at("C"), {kX, kY})
            << "\n";
}

}  // namespace

int main(int argc, char** argv) {
  rcm::util::Args args;
  args.add_flag("updates", "40", "updates per reactor");
  args.add_flag("loss", "0.1", "front-link loss probability");
  args.add_flag("seed", "2", "random seed");
  if (!args.parse(argc, argv)) {
    std::cerr << args.error() << "\n" << args.usage("multi_condition");
    return 1;
  }
  if (args.help_requested()) {
    std::cout << args.usage("multi_condition");
    return 0;
  }
  part1_example4();
  part2_architectures(static_cast<std::size_t>(args.get_int("updates")),
                      args.get_double("loss"),
                      static_cast<std::uint64_t>(args.get_int("seed")));
  return 0;
}
