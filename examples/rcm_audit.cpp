// rcm_audit: property-check a previously recorded run.
//
//   ./examples/rcm_lab --config ... (with [output] run = incident.rcmrun)
//   ./examples/rcm_audit --run incident.rcmrun --expr "temp[0] > 3000"
//
// Loads the recorded per-replica inputs and displayed alerts, re-checks
// orderedness / completeness / consistency against the given condition,
// and for consistent runs prints the constructed witness input — the
// evidence that a single evaluator could have produced everything the
// user saw.
#include <iostream>

#include "check/completeness.hpp"
#include "check/consistency.hpp"
#include "check/properties.hpp"
#include "check/report.hpp"
#include "check/run_record.hpp"
#include "core/rcm.hpp"
#include "util/args.hpp"

int main(int argc, char** argv) {
  using namespace rcm;
  util::Args args;
  args.add_flag("run", "", "path to a recorded run (.rcmrun)");
  args.add_flag("expr", "", "the monitored condition, expression syntax");
  args.add_flag("name", "condition", "condition name used when recording");
  if (!args.parse(argc, argv) || args.get("run").empty() ||
      args.get("expr").empty()) {
    std::cerr << (args.error().empty() ? "--run and --expr are required"
                                       : args.error())
              << "\n"
              << args.usage("rcm_audit");
    return 2;
  }
  if (args.help_requested()) {
    std::cout << args.usage("rcm_audit");
    return 0;
  }

  try {
    VariableRegistry vars;
    const auto condition =
        expr::compile_condition(args.get("name"), args.get("expr"), vars);
    const auto run = check::load_run(args.get("run"), condition);

    std::cout << check::describe_run(run, vars);
    const bool clean =
        check::check_ordered(run.displayed, condition->variables()) &&
        check::check_consistent(run).consistent;
    return clean ? 0 : 1;
  } catch (const std::exception& e) {
    std::cerr << "rcm_audit: " << e.what() << "\n";
    return 2;
  }
}
