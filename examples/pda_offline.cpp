// The offline-PDA scenario from §1: "The PDA can be powered off or
// disconnected from the network most of the time to conserve battery" —
// so the CE "logs the alert, and sends it later, when the AD becomes
// available."
//
//   ./examples/pda_offline [--updates 80] [--loss 0.2] [--seed 6]
//
// Runs a replicated reactor monitor whose Alert Displayer (the PDA) is
// offline on a duty cycle, with durable store-and-forward alert logs at
// the CEs, and shows that every alert is eventually displayed — plus
// when, relative to the outage windows.
#include <iomanip>
#include <iostream>
#include <memory>
#include <set>

#include "core/rcm.hpp"
#include "sim/disconnect.hpp"
#include "trace/generators.hpp"
#include "util/args.hpp"

int main(int argc, char** argv) {
  using namespace rcm;
  util::Args args;
  args.add_flag("updates", "80", "sensor readings to emit");
  args.add_flag("loss", "0.2", "front-link loss probability");
  args.add_flag("seed", "6", "random seed");
  if (!args.parse(argc, argv)) {
    std::cerr << args.error() << "\n" << args.usage("pda_offline");
    return 1;
  }
  if (args.help_requested()) {
    std::cout << args.usage("pda_offline");
    return 0;
  }
  const auto updates = static_cast<std::size_t>(args.get_int("updates"));
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed"));

  VariableRegistry vars;
  const VarId reactor = vars.intern("reactor");
  auto overheat =
      std::make_shared<const ThresholdCondition>("overheat", reactor, 3000.0);

  util::Rng rng{seed};
  trace::ReactorParams workload;
  workload.base.var = reactor;
  workload.base.count = updates;
  workload.baseline = 2750.0;
  workload.excursion_prob = 0.06;

  sim::DisconnectConfig config;
  config.base.condition = overheat;
  config.base.dm_traces = {trace::reactor_trace(workload, rng)};
  config.base.num_ces = 2;
  config.base.front.loss = args.get_double("loss");
  config.base.filter = FilterKind::kAd1;
  config.base.seed = seed;

  // PDA duty cycle: online 3s out of every 10s.
  const double horizon = static_cast<double>(updates) + 5.0;
  for (double t = 3.0; t < horizon; t += 10.0)
    config.ad_offline.emplace_back(t, t + 7.0);

  std::cout << "PDA duty cycle: online 3s of every 10s; 2 CE replicas with "
               "durable alert logs; front loss "
            << args.get("loss") << "\n\n";

  const auto result = sim::run_disconnectable_system(config);

  std::set<AlertKey> raised;
  for (const auto& output : result.run.ce_outputs)
    for (const Alert& a : output) raised.insert(a.key());

  std::cout << "alerts raised across replicas : " << raised.size()
            << " distinct\n"
            << "alerts displayed on the PDA   : "
            << result.run.displayed.size() << "\n"
            << "retransmissions               : " << result.retransmissions
            << "\n"
            << "duplicate deliveries absorbed : "
            << result.duplicate_deliveries << "\n"
            << "in-flight drops during outage : " << result.offline_drops
            << "\n\n";

  std::cout << "display timeline (PDA offline during [3,10), [13,20), ...;\n"
               "note the bursts right after each reconnection):\n";
  for (std::size_t i = 0; i < result.run.displayed.size(); ++i) {
    const Alert& a = result.run.displayed[i];
    const double t = result.display_times[i];
    std::cout << "  t=" << std::fixed << std::setprecision(2) << std::setw(7)
              << t << "  " << to_string(a, vars) << "\n";
  }

  std::set<AlertKey> displayed;
  for (const Alert& a : result.run.displayed) displayed.insert(a.key());
  const bool lossless = displayed == raised;
  std::cout << "\nevery raised alert eventually displayed: "
            << (lossless ? "YES" : "NO — BUG") << "\n";
  return lossless ? 0 : 1;
}
