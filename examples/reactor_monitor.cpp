// Reactor monitoring on the threaded runtime: the paper's §1 scenario
// with real OS threads — one Data Monitor thread per sensor, one thread
// per replicated Condition Evaluator, one Alert Displayer thread, lossy
// in-process "UDP" front channels and lossless "TCP" back channels.
//
//   ./examples/reactor_monitor [--ces 3] [--loss 0.25] [--updates 200]
//                              [--filter AD-4] [--seed 1]
//
// The displayed alerts are checked for the paper's ordered/consistent
// guarantees after the run.
#include <iostream>
#include <memory>

#include "check/properties.hpp"
#include "core/rcm.hpp"
#include "runtime/system.hpp"
#include "trace/generators.hpp"
#include "util/args.hpp"

int main(int argc, char** argv) {
  rcm::util::Args args;
  args.add_flag("ces", "3", "number of CE replica threads");
  args.add_flag("loss", "0.25", "front-channel loss probability");
  args.add_flag("updates", "200", "sensor readings to emit");
  args.add_flag("filter", "AD-4", "AD algorithm");
  args.add_flag("seed", "1", "random seed");
  if (!args.parse(argc, argv)) {
    std::cerr << args.error() << "\n" << args.usage("reactor_monitor");
    return 1;
  }
  if (args.help_requested()) {
    std::cout << args.usage("reactor_monitor");
    return 0;
  }

  rcm::VariableRegistry vars;
  const rcm::VarId reactor = vars.intern("reactor");

  // c1 of the paper: "reactor temperature is over 3000 degrees".
  const auto overheat = std::make_shared<const rcm::ThresholdCondition>(
      "overheat", reactor, 3000.0);

  rcm::util::Rng rng{static_cast<std::uint64_t>(args.get_int("seed"))};
  rcm::trace::ReactorParams workload;
  workload.base.var = reactor;
  workload.base.count = static_cast<std::size_t>(args.get_int("updates"));
  workload.baseline = 2700.0;
  workload.excursion_prob = 0.04;

  rcm::runtime::ThreadedConfig config;
  config.condition = overheat;
  config.dm_traces = {rcm::trace::reactor_trace(workload, rng)};
  config.num_ces = static_cast<std::size_t>(args.get_int("ces"));
  config.front_loss = args.get_double("loss");
  config.filter = rcm::parse_filter_kind(args.get("filter"));
  config.seed = static_cast<std::uint64_t>(args.get_int("seed"));

  std::cout << "spawning 1 DM thread, " << config.num_ces
            << " CE threads, 1 AD thread; loss " << args.get("loss")
            << ", filter " << rcm::filter_kind_name(config.filter) << "\n";

  const rcm::sim::RunResult result = rcm::runtime::run_threaded(config);

  std::cout << "DM emitted " << result.dm_emitted[0].size() << " readings; "
            << result.front_messages_dropped
            << " datagrams dropped on the front channels\n";
  for (std::size_t i = 0; i < result.ce_inputs.size(); ++i)
    std::cout << "  CE" << i + 1 << ": " << result.ce_inputs[i].size()
              << " received, " << result.ce_outputs[i].size()
              << " alerts raised\n";

  std::cout << result.displayed.size() << " alerts displayed ("
            << result.arrived.size() - result.displayed.size()
            << " suppressed by " << rcm::filter_kind_name(config.filter)
            << "):\n";
  for (const rcm::Alert& a : result.displayed) {
    const auto& window = a.histories.at(reactor);
    std::cout << "  PAGE THE MANAGER: reading #" << window.back().seqno
              << " = " << window.back().value << " degrees\n";
  }

  const auto report = rcm::check::check_run(result.as_system_run(overheat));
  std::cout << "\nguarantees on this run: ordered="
            << (report.ordered == rcm::check::Verdict::kHolds ? "yes" : "NO")
            << " consistent="
            << (report.consistent == rcm::check::Verdict::kHolds ? "yes"
                                                                 : "NO")
            << "\n";
  return 0;
}
