// The paper's §1 stock example, end to end: "report sharp price drops,
// defined as greater than twenty percent drops between two consecutive
// quotes", monitored by two independent CEs over lossy links.
//
//   ./examples/stock_alerts [--quotes 300] [--loss 0.3] [--seed 4]
//
// Part 1 replays the paper's exact three-quote scenario (100, 50, 52)
// and shows the confusing double-report under AD-1 and the AD-3 fix.
// Part 2 runs a randomized market and compares how many alerts each AD
// algorithm displays and which properties the runs satisfy.
#include <iostream>
#include <memory>

#include "check/properties.hpp"
#include "core/rcm.hpp"
#include "sim/system.hpp"
#include "trace/generators.hpp"
#include "trace/scripted.hpp"
#include "util/args.hpp"
#include "util/table.hpp"

namespace {

void part1_paper_scenario() {
  std::cout << "--- Part 1: the paper's quotes 100, 50, 52 ---\n";
  rcm::VariableRegistry vars;
  const rcm::VarId stock = vars.intern("ACME");
  const auto sharp_drop = std::make_shared<const rcm::RelativeDropCondition>(
      "sharp-drop", stock, 0.20);

  const auto quotes =
      rcm::trace::updates_of(rcm::trace::intro_stock_updates(stock));

  rcm::ConditionEvaluator ce1{sharp_drop, "CE1"};
  rcm::ConditionEvaluator ce2{sharp_drop, "CE2"};
  std::vector<rcm::Alert> arrivals;
  for (const rcm::Update& u : quotes)                 // CE1 sees all three
    if (auto a = ce1.on_update(u)) arrivals.push_back(*a);
  for (const rcm::Update& u : {quotes[0], quotes[2]})  // CE2 missed the 50
    if (auto a = ce2.on_update(u)) arrivals.push_back(*a);

  std::cout << "CE1 alerts on quotes 1->2 (100 -> 50): a1\n"
            << "CE2 missed quote 2, alerts on 1->3 (100 -> 52): a2\n";

  rcm::Ad1DuplicateFilter ad1;
  std::size_t shown = 0;
  for (const rcm::Alert& a : arrivals)
    if (ad1.offer(a)) ++shown;
  std::cout << "under AD-1 the user sees " << shown
            << " alerts and believes there were two sharp drops\n";

  rcm::Ad3ConsistentFilter ad3;
  shown = 0;
  for (const rcm::Alert& a : arrivals)
    if (ad3.offer(a)) ++shown;
  std::cout << "under AD-3 the conflicting second alert is suppressed: "
            << shown << " alert displayed\n\n";
}

void part2_randomized_market(std::size_t quotes, double loss,
                             std::uint64_t seed) {
  std::cout << "--- Part 2: randomized market, " << quotes
            << " quotes, loss " << loss << " ---\n";
  rcm::VariableRegistry vars;
  const rcm::VarId stock = vars.intern("ACME");
  const auto sharp_drop = std::make_shared<const rcm::RelativeDropCondition>(
      "sharp-drop", stock, 0.20);

  rcm::util::Table table({"filter", "displayed", "suppressed", "ordered",
                          "complete", "consistent"});
  for (rcm::FilterKind kind :
       {rcm::FilterKind::kAd1, rcm::FilterKind::kAd2, rcm::FilterKind::kAd3,
        rcm::FilterKind::kAd4}) {
    rcm::util::Rng rng{seed};
    rcm::trace::StockParams market;
    market.base.var = stock;
    market.base.count = quotes;
    market.crash_prob = 0.05;
    market.drift = 0.03;

    rcm::sim::SystemConfig config;
    config.condition = sharp_drop;
    config.dm_traces = {rcm::trace::stock_trace(market, rng)};
    config.num_ces = 2;
    config.front.loss = loss;
    config.front.delay_max = 0.6;
    config.back.delay_max = 0.6;
    config.filter = kind;
    config.seed = seed;

    const auto result = rcm::sim::run_system(config);
    const auto report =
        rcm::check::check_run(result.as_system_run(sharp_drop));
    auto cell = [](rcm::check::Verdict v) {
      return std::string(v == rcm::check::Verdict::kHolds ? "yes" : "NO");
    };
    table.add_row({std::string(rcm::filter_kind_name(kind)),
                   std::to_string(result.displayed.size()),
                   std::to_string(result.arrived.size() -
                                  result.displayed.size()),
                   cell(report.ordered), cell(report.complete),
                   cell(report.consistent)});
  }
  std::cout << table.render()
            << "\nAD-1 shows the most alerts but can mislead; AD-4 never "
               "misleads but shows the fewest — the paper's trade-off.\n";
}

}  // namespace

int main(int argc, char** argv) {
  rcm::util::Args args;
  args.add_flag("quotes", "300", "number of quotes in the random market");
  args.add_flag("loss", "0.3", "front-link loss probability");
  args.add_flag("seed", "4", "random seed");
  if (!args.parse(argc, argv)) {
    std::cerr << args.error() << "\n" << args.usage("stock_alerts");
    return 1;
  }
  if (args.help_requested()) {
    std::cout << args.usage("stock_alerts");
    return 0;
  }
  part1_paper_scenario();
  part2_randomized_market(static_cast<std::size_t>(args.get_int("quotes")),
                          args.get_double("loss"),
                          static_cast<std::uint64_t>(args.get_int("seed")));
  return 0;
}
