// Replays the paper's worked examples verbatim and narrates each step:
//
//   Example 1 (§3)   — c1 with a lost update under AD-1,
//   Example 2 (§4.2) — AD-2 trading completeness for orderedness,
//   Example 3 (§4.3) — AD-3's Received/Missed conflict,
//   Theorem 10 (§5)  — the two-reactor interleaving counterexample.
//
// No flags; the output is meant to be read next to the paper.
#include <iostream>
#include <memory>

#include "core/rcm.hpp"
#include "trace/scripted.hpp"

namespace {

constexpr rcm::VarId kX = 0;
constexpr rcm::VarId kY = 1;

std::vector<rcm::Alert> feed(rcm::ConditionEvaluator& ce,
                             const std::vector<rcm::Update>& updates) {
  std::vector<rcm::Alert> out;
  for (const rcm::Update& u : updates)
    if (auto a = ce.on_update(u)) out.push_back(*a);
  return out;
}

void example1() {
  std::cout << "=== Example 1 (Section 3) ===\n"
            << "condition c1: reactor temperature over 3000 degrees\n"
            << "U = <1x(2900), 2x(3100), 3x(3200)>; 2x is lost at CE2\n";
  const auto c1 =
      std::make_shared<const rcm::ThresholdCondition>("c1", kX, 3000.0);
  const auto u = rcm::trace::updates_of(rcm::trace::example1_updates(kX));

  rcm::ConditionEvaluator ce1{c1, "CE1"}, ce2{c1, "CE2"};
  const auto a1 = feed(ce1, u);
  const auto a2 = feed(ce2, {u[0], u[2]});
  std::cout << "A1 = T(U1) has " << a1.size() << " alerts (on 2x, 3x); "
            << "A2 = T(U2) has " << a2.size() << " alert (on 3x)\n";

  rcm::AlertDisplayer ad{std::make_unique<rcm::Ad1DuplicateFilter>()};
  (void)ad.on_alert(a1[0]);  // a1
  (void)ad.on_alert(a2[0]);  // a3
  (void)ad.on_alert(a1[1]);  // a2, duplicate of a3
  std::cout << "arrival order a1, a3, a2 under AD-1: A = <a1, a3>, "
            << ad.displayed().size() << " alerts reach the user\n\n";
}

void example2() {
  std::cout << "=== Example 2 (Section 4.2) ===\n"
            << "U1 = <1x(3100)>, U2 = <2x(3200)>; a2 arrives first\n";
  const auto c1 =
      std::make_shared<const rcm::ThresholdCondition>("c1", kX, 3000.0);
  rcm::ConditionEvaluator ce1{c1, "CE1"}, ce2{c1, "CE2"};
  const auto a1 = feed(ce1, {{kX, 1, 3100.0}});
  const auto a2 = feed(ce2, {{kX, 2, 3200.0}});

  rcm::AlertDisplayer ad{std::make_unique<rcm::Ad2OrderedFilter>(kX)};
  (void)ad.on_alert(a2[0]);
  (void)ad.on_alert(a1[0]);
  std::cout << "AD-2 displays " << ad.displayed().size()
            << " alert: a1 is discarded because it arrives out of order.\n"
            << "T(U1 u U2) would have 2 alerts -> orderedness bought at "
               "the price of completeness.\n\n";
}

void example3() {
  std::cout << "=== Example 3 (Section 4.3) ===\n"
            << "a1 triggered on {1x, 3x} (2x missed by CE1); "
            << "a2 triggered on {2x, 3x}\n";
  const auto c2 = std::make_shared<const rcm::RiseCondition>(
      "c2", kX, 200.0, rcm::Triggering::kAggressive);
  rcm::ConditionEvaluator ce1{c2, "CE1"}, ce2{c2, "CE2"};
  const auto a1 = feed(ce1, {{kX, 1, 100.0}, {kX, 3, 400.0}});
  const auto a2 = feed(ce2, {{kX, 2, 150.0}, {kX, 3, 400.0}});

  rcm::Ad3ConsistentFilter ad3;
  std::cout << "AD-3 passes a1: " << std::boolalpha << ad3.offer(a1[0])
            << " (Received += {1,3}, Missed += {2})\n";
  std::cout << "AD-3 passes a2: " << ad3.offer(a2[0])
            << " (2 is already in Missed: conflicting state)\n\n";
}

void theorem10() {
  std::cout << "=== Theorem 10 counterexample (Section 5) ===\n"
            << "cm: |x - y| > 100; lossless links, different "
               "interleavings at the two CEs\n";
  const auto cm =
      std::make_shared<const rcm::AbsDiffCondition>("cm", kX, kY, 100.0);
  const auto ux = rcm::trace::updates_of(rcm::trace::theorem10_ux(kX));
  const auto uy = rcm::trace::updates_of(rcm::trace::theorem10_uy(kY));

  rcm::ConditionEvaluator ce1{cm, "CE1"}, ce2{cm, "CE2"};
  const auto a1 = feed(ce1, {ux[0], ux[1], uy[0], uy[1]});
  const auto a2 = feed(ce2, {uy[0], uy[1], ux[0], ux[1]});
  std::cout << "CE1 (x first) raises a(2x,1y); CE2 (y first) raises "
               "a(1x,2y)\n";

  rcm::AlertDisplayer ad1{std::make_unique<rcm::Ad1DuplicateFilter>()};
  (void)ad1.on_alert(a1[0]);
  (void)ad1.on_alert(a2[0]);
  std::cout << "AD-1 displays both (" << ad1.displayed().size()
            << "): unordered in x and inconsistent — no single CE could "
               "ever produce this pair.\n";

  rcm::Ad5MultiOrderedFilter ad5{{kX, kY}};
  std::cout << "AD-5 passes the first (" << std::boolalpha
            << ad5.offer(a1[0]) << ") and suppresses the second ("
            << !ad5.offer(a2[0]) << "), restoring orderedness.\n";
}

}  // namespace

int main() {
  example1();
  example2();
  example3();
  theorem10();
  return 0;
}
