// rcm_lab: run a monitoring experiment described by a config file —
// the "downstream user" front door: no C++ required to try a condition,
// a workload and an AD algorithm against each other.
//
//   ./examples/rcm_lab --config examples/configs/reactor.ini
//
// Config format (INI; see examples/configs/*.ini):
//
//   [condition]
//   name = overheat
//   expr = temp[0] > 3000            # expression language of core/expr
//
//   [system]
//   ces = 2                          # CE replicas
//   filter = AD-4                    # pass, drop, AD-1..AD-6
//   loss = 0.2                       # front-link loss
//   seed = 7
//   substrate = sim                  # sim | threads | sockets
//   updates = 100                    # per workload
//
//   [workload temp]                  # one section per variable;
//   kind = reactor                   # reactor|stock|events|uniform|file
//   baseline = 2700                  # generator-specific knobs
//   # file = trace.txt               # kind=file replays a saved trace
//
// Prints the displayed alerts and the formal properties of the run.
#include <iostream>
#include <memory>

#include "check/properties.hpp"
#include "check/run_record.hpp"
#include "core/rcm.hpp"
#include "net/deployment.hpp"
#include "runtime/system.hpp"
#include "sim/system.hpp"
#include "trace/generators.hpp"
#include "trace/trace_io.hpp"
#include "util/args.hpp"
#include "util/config.hpp"

namespace {

using namespace rcm;

trace::Trace build_workload(const util::Config& config,
                            const std::string& section, VarId var,
                            std::size_t updates, util::Rng& rng) {
  const std::string kind = config.get_or(section, "kind", "uniform");
  trace::TraceParams base;
  base.var = var;
  base.count = updates;
  base.period = config.get_double_or(section, "period", 1.0);

  if (kind == "reactor") {
    trace::ReactorParams p;
    p.base = base;
    p.baseline = config.get_double_or(section, "baseline", 2500.0);
    p.stddev = config.get_double_or(section, "stddev", 80.0);
    p.excursion_prob = config.get_double_or(section, "excursion_prob", 0.05);
    return trace::reactor_trace(p, rng);
  }
  if (kind == "stock") {
    trace::StockParams p;
    p.base = base;
    p.initial = config.get_double_or(section, "initial", 100.0);
    p.crash_prob = config.get_double_or(section, "crash_prob", 0.03);
    p.drift = config.get_double_or(section, "drift", 0.01);
    return trace::stock_trace(p, rng);
  }
  if (kind == "events") {
    trace::EventParams p;
    p.base = base;
    p.event_prob = config.get_double_or(section, "event_prob", 0.1);
    return trace::event_trace(p, rng);
  }
  if (kind == "uniform") {
    trace::UniformParams p;
    p.base = base;
    p.lo = config.get_double_or(section, "lo", 0.0);
    p.hi = config.get_double_or(section, "hi", 100.0);
    return trace::uniform_trace(p, rng);
  }
  if (kind == "file") {
    auto loaded = trace::load_trace(config.require(section, "file"));
    for (auto& tu : loaded) tu.update.var = var;  // rebind to this variable
    return loaded;
  }
  throw std::invalid_argument("unknown workload kind '" + kind + "'");
}

int run_lab(const util::Config& config) {
  // Condition.
  VariableRegistry vars;
  const auto condition = expr::compile_condition(
      config.get_or("condition", "name", "condition"),
      config.require("condition", "expr"), vars);

  // System knobs.
  const auto ces =
      static_cast<std::size_t>(config.get_int_or("system", "ces", 2));
  const FilterKind filter =
      parse_filter_kind(config.get_or("system", "filter", "AD-1"));
  const double loss = config.get_double_or("system", "loss", 0.0);
  const auto seed =
      static_cast<std::uint64_t>(config.get_int_or("system", "seed", 1));
  const auto updates =
      static_cast<std::size_t>(config.get_int_or("system", "updates", 100));
  const std::string substrate =
      config.get_or("system", "substrate", "sim");

  // Workloads: every section named "workload <var>".
  util::Rng rng{seed};
  std::vector<trace::Trace> traces;
  for (const std::string& section : config.sections()) {
    if (section.rfind("workload", 0) != 0) continue;
    std::string var_name = section.size() > 8 ? section.substr(9) : "";
    if (var_name.empty())
      throw std::invalid_argument(
          "workload sections must be named '[workload <variable>]'");
    VarId var = 0;
    if (!vars.lookup(var_name, var))
      throw std::invalid_argument("workload variable '" + var_name +
                                  "' does not appear in the condition");
    traces.push_back(build_workload(config, section, var, updates, rng));
  }
  if (traces.empty())
    throw std::invalid_argument("no [workload <variable>] section found");

  std::cout << "condition : " << condition->name() << "  ("
            << (condition->history_class() == HistoryClass::kHistorical
                    ? "historical, "
                    : "non-historical, ")
            << (condition->triggering() == Triggering::kConservative
                    ? "conservative"
                    : "aggressive")
            << ")\nsystem    : " << ces << " CEs, filter "
            << filter_kind_name(filter) << ", loss " << loss
            << ", substrate " << substrate << "\n\n";

  // Run on the chosen substrate.
  sim::RunResult result;
  if (substrate == "sim") {
    sim::SystemConfig sc;
    sc.condition = condition;
    sc.dm_traces = traces;
    sc.num_ces = ces;
    sc.front.loss = loss;
    sc.filter = filter;
    sc.seed = seed;
    result = sim::run_system(sc);
  } else if (substrate == "threads") {
    runtime::ThreadedConfig tc;
    tc.condition = condition;
    tc.dm_traces = traces;
    tc.num_ces = ces;
    tc.front_loss = loss;
    tc.filter = filter;
    tc.seed = seed;
    result = runtime::run_threaded(tc);
  } else if (substrate == "sockets") {
    net::NetworkConfig nc;
    nc.condition = condition;
    nc.dm_traces = traces;
    nc.num_ces = ces;
    nc.front_loss = loss;
    nc.filter = filter;
    nc.seed = seed;
    result = net::run_networked(nc);
  } else {
    throw std::invalid_argument("unknown substrate '" + substrate + "'");
  }

  for (std::size_t i = 0; i < result.ce_inputs.size(); ++i)
    std::cout << "CE" << i + 1 << ": received " << result.ce_inputs[i].size()
              << " updates, raised " << result.ce_outputs[i].size()
              << " alerts\n";
  std::cout << result.displayed.size() << " alerts displayed ("
            << result.arrived.size() - result.displayed.size()
            << " suppressed):\n";
  for (const Alert& a : result.displayed)
    std::cout << "  " << to_string(a, vars) << "\n";

  const auto system_run = result.as_system_run(condition);
  const auto report = check::check_run(system_run);
  auto verdict = [](check::Verdict v) {
    switch (v) {
      case check::Verdict::kHolds: return "holds";
      case check::Verdict::kViolated: return "VIOLATED";
      case check::Verdict::kUnknown: return "undecided";
    }
    return "?";
  };
  std::cout << "\nordered " << verdict(report.ordered) << " | complete "
            << verdict(report.complete) << " | consistent "
            << verdict(report.consistent) << "\n";

  // Optional run recording for later auditing with rcm_audit.
  if (const auto record = config.find("output", "run")) {
    check::save_run(*record, system_run);
    std::cout << "run recorded to " << *record << "\n";
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  util::Args args;
  args.add_flag("config", "", "path to the experiment config (INI)");
  if (!args.parse(argc, argv) || args.get("config").empty()) {
    std::cerr << (args.error().empty() ? "--config is required"
                                       : args.error())
              << "\n"
              << args.usage("rcm_lab");
    return 2;
  }
  if (args.help_requested()) {
    std::cout << args.usage("rcm_lab");
    return 0;
  }
  try {
    return run_lab(util::Config::load(args.get("config")));
  } catch (const std::exception& e) {
    std::cerr << "rcm_lab: " << e.what() << "\n";
    return 1;
  }
}
