// Quickstart: monitor a condition with replicated evaluators over lossy
// links, and see what each AD algorithm lets through.
//
//   ./examples/quickstart [--loss 0.2] [--ces 2] [--filter AD-4]
//                         [--updates 30] [--seed 7]
//
// The example:
//   1. compiles a condition from expression-language source,
//   2. generates a reactor-temperature workload,
//   3. runs a replicated simulated system with the chosen AD filter,
//   4. prints the displayed alerts and the run's formal properties
//      (orderedness / completeness / consistency) as defined in the
//      paper "Replicated condition monitoring" (PODC 2001).
#include <iostream>

#include "check/properties.hpp"
#include "core/rcm.hpp"
#include "sim/system.hpp"
#include "trace/generators.hpp"
#include "util/args.hpp"

int main(int argc, char** argv) {
  rcm::util::Args args;
  args.add_flag("loss", "0.2", "front-link loss probability");
  args.add_flag("ces", "2", "number of CE replicas");
  args.add_flag("filter", "AD-4", "AD algorithm: pass, AD-1 .. AD-4");
  args.add_flag("updates", "30", "number of data updates to generate");
  args.add_flag("seed", "7", "random seed");
  if (!args.parse(argc, argv)) {
    std::cerr << args.error() << "\n" << args.usage("quickstart");
    return 1;
  }
  if (args.help_requested()) {
    std::cout << args.usage("quickstart");
    return 0;
  }

  // 1. A condition, straight from text. "Temperature rose by more than
  //    150 degrees between two readings the evaluator actually received"
  //    — an aggressive historical condition, the most fragile class.
  rcm::VariableRegistry vars;
  const rcm::ConditionPtr condition = rcm::expr::compile_condition(
      "temp-spike", "temp[0] - temp[-1] > 150", vars);
  rcm::VarId temp = 0;
  (void)vars.lookup("temp", temp);

  std::cout << "condition : temp[0] - temp[-1] > 150  (degree 2, "
            << (condition->triggering() == rcm::Triggering::kAggressive
                    ? "aggressive"
                    : "conservative")
            << ")\n";

  // 2. A reactor-style workload.
  rcm::util::Rng rng{static_cast<std::uint64_t>(args.get_int("seed"))};
  rcm::trace::ReactorParams workload;
  workload.base.var = temp;
  workload.base.count = static_cast<std::size_t>(args.get_int("updates"));
  workload.excursion_prob = 0.15;

  // 3. The replicated system.
  rcm::sim::SystemConfig config;
  config.condition = condition;
  config.dm_traces = {rcm::trace::reactor_trace(workload, rng)};
  config.num_ces = static_cast<std::size_t>(args.get_int("ces"));
  config.front.loss = args.get_double("loss");
  config.front.delay_max = 0.6;
  config.back.delay_max = 0.6;
  config.filter = rcm::parse_filter_kind(args.get("filter"));
  config.seed = static_cast<std::uint64_t>(args.get_int("seed"));

  const rcm::sim::RunResult result = rcm::sim::run_system(config);

  std::cout << "replicas  : " << config.num_ces << ", front-link loss "
            << args.get("loss") << ", filter "
            << rcm::filter_kind_name(config.filter) << "\n";
  for (std::size_t i = 0; i < result.ce_inputs.size(); ++i)
    std::cout << "  CE" << i + 1 << " received "
              << result.ce_inputs[i].size() << "/"
              << result.dm_emitted[0].size() << " updates, raised "
              << result.ce_outputs[i].size() << " alerts\n";
  std::cout << "AD        : " << result.arrived.size() << " alerts arrived, "
            << result.displayed.size() << " displayed\n\n";

  for (const rcm::Alert& a : result.displayed)
    std::cout << "  ALERT " << to_string(a, vars) << "\n";

  // 4. Formal properties of this very run.
  const auto report = rcm::check::check_run(result.as_system_run(condition));
  auto verdict = [](rcm::check::Verdict v) {
    switch (v) {
      case rcm::check::Verdict::kHolds: return "holds";
      case rcm::check::Verdict::kViolated: return "VIOLATED";
      case rcm::check::Verdict::kUnknown: return "undecided";
    }
    return "?";
  };
  std::cout << "\nproperties of this run (vs the corresponding "
               "non-replicated system):\n"
            << "  ordered    : " << verdict(report.ordered) << "\n"
            << "  complete   : " << verdict(report.complete) << "\n"
            << "  consistent : " << verdict(report.consistent) << "\n";
  return 0;
}
