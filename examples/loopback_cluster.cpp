// A miniature monitoring "cluster" on your machine: real UDP datagrams
// from the Data Monitor, real TCP streams into the Alert Displayer, one
// OS thread per node — the closest this library gets to Figure 1(b) as
// a deployed system.
//
//   ./examples/loopback_cluster [--ces 3] [--loss 0.25] [--updates 150]
//                               [--filter AD-4] [--seed 8]
#include <iostream>
#include <memory>

#include "check/consistency.hpp"
#include "check/properties.hpp"
#include "core/rcm.hpp"
#include "net/deployment.hpp"
#include "trace/generators.hpp"
#include "util/args.hpp"

int main(int argc, char** argv) {
  using namespace rcm;
  util::Args args;
  args.add_flag("ces", "3", "number of CE replicas");
  args.add_flag("loss", "0.25", "injected datagram loss probability");
  args.add_flag("updates", "150", "sensor readings to emit");
  args.add_flag("filter", "AD-4", "AD algorithm");
  args.add_flag("seed", "8", "random seed");
  if (!args.parse(argc, argv)) {
    std::cerr << args.error() << "\n" << args.usage("loopback_cluster");
    return 1;
  }
  if (args.help_requested()) {
    std::cout << args.usage("loopback_cluster");
    return 0;
  }

  VariableRegistry vars;
  const VarId temp = vars.intern("temp");
  auto condition = std::make_shared<const RiseCondition>(
      "temp-spike", temp, 150.0, Triggering::kAggressive);

  util::Rng rng{static_cast<std::uint64_t>(args.get_int("seed"))};
  trace::ReactorParams workload;
  workload.base.var = temp;
  workload.base.count = static_cast<std::size_t>(args.get_int("updates"));
  workload.excursion_prob = 0.08;

  net::NetworkConfig config;
  config.condition = condition;
  config.dm_traces = {trace::reactor_trace(workload, rng)};
  config.num_ces = static_cast<std::size_t>(args.get_int("ces"));
  config.front_loss = args.get_double("loss");
  config.filter = parse_filter_kind(args.get("filter"));
  config.seed = static_cast<std::uint64_t>(args.get_int("seed"));

  std::cout << "deploying: 1 DM (UDP sender), " << config.num_ces
            << " CE threads (UDP in, TCP out), 1 AD (TCP server), filter "
            << filter_kind_name(config.filter) << ", injected loss "
            << args.get("loss") << "\n";

  const sim::RunResult r = net::run_networked(config);

  std::cout << "datagrams dropped in flight : " << r.front_messages_dropped
            << "\n"
            << "corrupt frames              : " << r.wire_corrupt_frames
            << "\n";
  for (std::size_t i = 0; i < r.ce_inputs.size(); ++i)
    std::cout << "  CE" << i + 1 << ": received " << r.ce_inputs[i].size()
              << "/" << r.dm_emitted[0].size() << ", raised "
              << r.ce_outputs[i].size() << " alerts\n";
  std::cout << r.displayed.size() << " alerts displayed, "
            << r.arrived.size() - r.displayed.size() << " suppressed\n";

  const auto run = r.as_system_run(condition);
  std::cout << "ordered   : "
            << (check::check_ordered(r.displayed, {temp}) ? "yes" : "NO")
            << "\nconsistent: "
            << (check::check_consistent(run).consistent ? "yes" : "NO")
            << "\n";
  return 0;
}
