// Tests for runtime::ThreadPool and the bounded MPMC queue beneath it:
// exactly-once execution, exception propagation to join()/wait(),
// deterministic shutdown, and a stress case well past the queue capacity.
#include "runtime/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstddef>
#include <mutex>
#include <set>
#include <stdexcept>
#include <thread>
#include <vector>

#include "runtime/queue.hpp"

namespace rcm::runtime {
namespace {

TEST(BoundedBlockingQueueTest, PushPopRoundTrip) {
  BoundedBlockingQueue<int> queue(4);
  EXPECT_TRUE(queue.push(1));
  EXPECT_TRUE(queue.push(2));
  auto a = queue.pop();
  auto b = queue.pop();
  ASSERT_TRUE(a.has_value());
  ASSERT_TRUE(b.has_value());
  EXPECT_EQ(*a, 1);
  EXPECT_EQ(*b, 2);
}

TEST(BoundedBlockingQueueTest, DrainsAfterClose) {
  BoundedBlockingQueue<int> queue(8);
  ASSERT_TRUE(queue.push(7));
  ASSERT_TRUE(queue.push(8));
  queue.close();
  EXPECT_FALSE(queue.push(9));  // rejected after close
  auto a = queue.pop();
  auto b = queue.pop();
  auto end = queue.pop();
  ASSERT_TRUE(a.has_value());
  ASSERT_TRUE(b.has_value());
  EXPECT_EQ(*a, 7);
  EXPECT_EQ(*b, 8);
  EXPECT_FALSE(end.has_value());  // closed and empty
}

TEST(BoundedBlockingQueueTest, PushBlocksUntilPopMakesRoom) {
  BoundedBlockingQueue<int> queue(1);
  ASSERT_TRUE(queue.push(1));
  std::atomic<bool> second_pushed{false};
  std::thread producer([&] {
    ASSERT_TRUE(queue.push(2));  // must block until the consumer pops
    second_pushed.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(second_pushed.load());
  EXPECT_EQ(queue.pop().value(), 1);
  producer.join();
  EXPECT_TRUE(second_pushed.load());
  EXPECT_EQ(queue.pop().value(), 2);
}

TEST(ThreadPoolTest, TasksExecuteExactlyOnce) {
  constexpr std::size_t kTasks = 500;
  std::vector<std::atomic<int>> executed(kTasks);
  {
    ThreadPool pool(4);
    for (std::size_t i = 0; i < kTasks; ++i)
      ASSERT_TRUE(pool.submit([&executed, i] { ++executed[i]; }));
    pool.join();
  }
  for (std::size_t i = 0; i < kTasks; ++i)
    EXPECT_EQ(executed[i].load(), 1) << "task " << i;
}

TEST(ThreadPoolTest, WaitIsABarrierAndPoolStaysUsable) {
  ThreadPool pool(2);
  std::atomic<int> count{0};
  for (int i = 0; i < 16; ++i) ASSERT_TRUE(pool.submit([&] { ++count; }));
  pool.wait();
  EXPECT_EQ(count.load(), 16);
  // The pool accepts work again after a wait() barrier.
  for (int i = 0; i < 16; ++i) ASSERT_TRUE(pool.submit([&] { ++count; }));
  pool.wait();
  EXPECT_EQ(count.load(), 32);
  pool.join();
}

TEST(ThreadPoolTest, ExceptionPropagatesToJoin) {
  ThreadPool pool(2);
  std::atomic<int> survivors{0};
  ASSERT_TRUE(
      pool.submit([] { throw std::runtime_error("task failed on purpose"); }));
  for (int i = 0; i < 8; ++i) ASSERT_TRUE(pool.submit([&] { ++survivors; }));
  EXPECT_THROW(pool.join(), std::runtime_error);
  // The failing task did not take down its worker: the rest still ran.
  EXPECT_EQ(survivors.load(), 8);
  EXPECT_EQ(pool.failed_tasks(), 1u);
}

TEST(ThreadPoolTest, ExceptionPropagatesToWaitOnce) {
  ThreadPool pool(2);
  ASSERT_TRUE(pool.submit([] { throw std::invalid_argument("boom"); }));
  EXPECT_THROW(pool.wait(), std::invalid_argument);
  // The error is delivered exactly once; a second barrier is clean.
  pool.wait();
  pool.join();
}

TEST(ThreadPoolTest, OnlyFirstExceptionIsRethrown) {
  ThreadPool pool(1);  // single worker: deterministic task order
  ASSERT_TRUE(pool.submit([] { throw std::runtime_error("first"); }));
  ASSERT_TRUE(pool.submit([] { throw std::logic_error("second"); }));
  try {
    pool.join();
    FAIL() << "join() should have rethrown";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "first");
  }
  EXPECT_EQ(pool.failed_tasks(), 2u);
}

TEST(ThreadPoolTest, SubmitAfterJoinIsRejected) {
  ThreadPool pool(2);
  pool.join();
  EXPECT_FALSE(pool.submit([] {}));
  pool.join();  // idempotent
}

TEST(ThreadPoolTest, DeterministicShutdownRunsEverySubmittedTask) {
  // join() must drain the queue, not abandon it: every accepted task runs
  // even when the pool is torn down immediately after the last submit.
  for (int round = 0; round < 20; ++round) {
    std::atomic<int> count{0};
    ThreadPool pool(3, /*queue_capacity=*/4);
    for (int i = 0; i < 64; ++i) ASSERT_TRUE(pool.submit([&] { ++count; }));
    pool.join();
    EXPECT_EQ(count.load(), 64) << "round " << round;
  }
}

TEST(ThreadPoolTest, ResolveJobs) {
  EXPECT_EQ(ThreadPool::resolve_jobs(1), 1u);
  EXPECT_EQ(ThreadPool::resolve_jobs(7), 7u);
  EXPECT_GE(ThreadPool::resolve_jobs(0), 1u);  // hardware concurrency, >= 1
}

TEST(ThreadPoolTest, StressManyTasksFewWorkers) {
  // >= 10k tasks through 8 workers with a small queue, from multiple
  // producer threads, checking exactly-once execution of every task.
  constexpr std::size_t kProducers = 4;
  constexpr std::size_t kPerProducer = 3000;
  constexpr std::size_t kTasks = kProducers * kPerProducer;  // 12000

  std::vector<std::atomic<int>> executed(kTasks);
  std::atomic<std::size_t> accepted{0};
  {
    ThreadPool pool(8, /*queue_capacity=*/64);
    std::vector<std::thread> producers;
    producers.reserve(kProducers);
    for (std::size_t p = 0; p < kProducers; ++p) {
      producers.emplace_back([&, p] {
        for (std::size_t i = 0; i < kPerProducer; ++i) {
          const std::size_t id = p * kPerProducer + i;
          if (pool.submit([&executed, id] { ++executed[id]; })) ++accepted;
        }
      });
    }
    for (std::thread& t : producers) t.join();
    pool.join();
  }
  EXPECT_EQ(accepted.load(), kTasks);
  std::size_t total = 0;
  for (std::size_t i = 0; i < kTasks; ++i) {
    EXPECT_EQ(executed[i].load(), 1) << "task " << i;
    total += static_cast<std::size_t>(executed[i].load());
  }
  EXPECT_EQ(total, kTasks);
}

}  // namespace
}  // namespace rcm::runtime
