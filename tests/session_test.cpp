// Durable subscriber sessions (wire/session.hpp + service/session.hpp):
// wire codec round-trips and typed rejections, cursor-file crash safety
// (torn tails, last-writer-wins duplicates, future-major rejection), and
// live SessionManager behavior — exact gap-free resume after a mid-frame
// kill, durable-cursor resume, typed truncation, and the acceptance
// pin: a stalled consumer triggers the dogfooded lag alert and bounded
// eviction without stalling a healthy session.
#include <gtest/gtest.h>

#include <chrono>
#include <filesystem>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "core/alert.hpp"
#include "net/socket.hpp"
#include "service/admin.hpp"
#include "service/session.hpp"
#include "wire/codec.hpp"
#include "wire/frame.hpp"
#include "wire/session.hpp"
#include "wire/version.hpp"

namespace rcm::service {
namespace {

using namespace std::chrono_literals;
using Clock = std::chrono::steady_clock;

std::filesystem::path fresh_dir(const std::string& name) {
  const std::filesystem::path dir =
      std::filesystem::temp_directory_path() / ("rcm_session_" + name);
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir;
}

Alert small_alert(std::uint64_t n) {
  Alert a;
  a.cond = "session.test";
  a.histories[0] = {Update{0, static_cast<SeqNo>(n + 1), 42.0}};
  return a;
}

/// ~16 KiB encoded: fills socket buffers fast so a stalled reader's
/// pipeline jams within a few dozen alerts.
Alert big_alert(std::uint64_t n) {
  Alert a;
  a.cond = "session.test.big";
  std::vector<Update>& h = a.histories[0];
  for (SeqNo s = 1; s <= 1000; ++s)
    h.push_back(Update{0, static_cast<SeqNo>(n * 1000 + s), 1.0});
  return a;
}

/// Blocking test-side session subscriber.
struct TestSubscriber {
  net::TcpStream stream;
  wire::FrameCursor frames;
  wire::SessionWelcome welcome;
  bool welcomed = false;
  std::vector<wire::SessionRecord> records;  ///< alert records, in order
  bool evicted = false;

  static TestSubscriber connect(std::uint16_t port, const std::string& id,
                                std::optional<std::uint64_t> from) {
    TestSubscriber sub{net::TcpStream::connect(port)};
    wire::SessionHello hello;
    hello.session_id = id;
    hello.from = from;
    sub.stream.write_all(wire::frame(wire::encode_session_hello(hello)));
    return sub;
  }

  /// Reads until `count` alert records arrived (ack-ing each), EOF, or
  /// the deadline. Returns false on timeout.
  bool read_alerts(std::size_t count, std::chrono::milliseconds deadline,
                   bool ack = true) {
    const auto until = Clock::now() + deadline;
    while (records.size() < count && Clock::now() < until) {
      const auto chunk = stream.read_some(100ms);
      if (!chunk) continue;
      if (chunk->empty()) return records.size() >= count;  // EOF
      frames.feed(*chunk);
      while (auto payload = frames.next()) {
        if (payload->empty()) continue;
        if (!welcomed) {
          if ((*payload)[0] != wire::kSessionWelcomeTag) continue;
          welcome = wire::decode_session_welcome(*payload);
          welcomed = true;
          continue;
        }
        const wire::SessionRecord rec =
            wire::decode_session_record(*payload);
        if (rec.kind == wire::SessionRecord::Kind::kEvicted) {
          evicted = true;
          continue;
        }
        records.push_back(rec);
        if (ack)
          stream.write_all(
              wire::frame(wire::encode_session_ack(rec.index + 1)));
      }
    }
    return records.size() >= count;
  }

  bool await_welcome(std::chrono::milliseconds deadline) {
    (void)read_alerts(0, 0ms);  // drain anything already buffered
    const auto until = Clock::now() + deadline;
    while (!welcomed && Clock::now() < until) {
      const auto chunk = stream.read_some(100ms);
      if (!chunk) continue;
      if (chunk->empty()) return welcomed;
      frames.feed(*chunk);
      while (auto payload = frames.next()) {
        if (payload->empty()) continue;
        if (!welcomed) {
          if ((*payload)[0] != wire::kSessionWelcomeTag) continue;
          welcome = wire::decode_session_welcome(*payload);
          welcomed = true;
        }
      }
    }
    return welcomed;
  }

 private:
  explicit TestSubscriber(net::TcpStream s) : stream(std::move(s)) {}
};

/// Connects a session subscriber and hands its server side to `manager`.
TestSubscriber connect_session(net::TcpListener& listener,
                               SessionManager& manager,
                               const std::string& id,
                               std::optional<std::uint64_t> from) {
  TestSubscriber sub = TestSubscriber::connect(listener.port(), id, from);
  auto accepted = listener.accept(1000ms);
  EXPECT_TRUE(accepted.has_value());
  if (accepted) manager.adopt(std::move(*accepted));
  return sub;
}

// ---- wire codec --------------------------------------------------------

TEST(SessionWire, HelloRoundTripsWithAndWithoutFrom) {
  wire::SessionHello hello;
  hello.session_id = "worker-7";
  hello.from = 123;
  const wire::SessionHello back =
      wire::decode_session_hello(wire::encode_session_hello(hello));
  EXPECT_EQ(back.session_id, "worker-7");
  ASSERT_TRUE(back.from.has_value());
  EXPECT_EQ(*back.from, 123u);

  hello.from.reset();
  const wire::SessionHello bare =
      wire::decode_session_hello(wire::encode_session_hello(hello));
  EXPECT_FALSE(bare.from.has_value());
}

TEST(SessionWire, HelloRejectsEmptySessionId) {
  wire::SessionHello hello;
  hello.session_id = "";
  EXPECT_THROW((void)wire::decode_session_hello(
                   wire::encode_session_hello(hello)),
               wire::DecodeError);
}

TEST(SessionWire, HelloFutureMajorIsTypedRejection) {
  wire::SessionHello hello;
  hello.session_id = "x";
  std::vector<std::uint8_t> bytes = wire::encode_session_hello(hello);
  bytes[1] = wire::kSessionMaxMajor + 1;  // tag | major | minor | ...
  EXPECT_THROW((void)wire::decode_session_hello(bytes),
               wire::UnsupportedVersion);
}

TEST(SessionWire, WelcomeRoundTripsEveryStatus) {
  wire::SessionWelcome w;
  w.status = wire::SessionWelcomeStatus::kTruncated;
  w.start_index = 40;
  w.log_end = 100;
  w.lost_from = 10;
  w.lost_to = 40;
  const wire::SessionWelcome back =
      wire::decode_session_welcome(wire::encode_session_welcome(w));
  EXPECT_EQ(back.status, wire::SessionWelcomeStatus::kTruncated);
  EXPECT_EQ(back.start_index, 40u);
  EXPECT_EQ(back.log_end, 100u);
  EXPECT_EQ(back.lost_from, 10u);
  EXPECT_EQ(back.lost_to, 40u);

  w.status = wire::SessionWelcomeStatus::kBadCursor;
  w.lost_from = w.lost_to = 0;
  EXPECT_EQ(wire::decode_session_welcome(wire::encode_session_welcome(w))
                .status,
            wire::SessionWelcomeStatus::kBadCursor);
}

TEST(SessionWire, WelcomeRejectsEmptyTruncationRange) {
  wire::SessionWelcome w;
  w.status = wire::SessionWelcomeStatus::kTruncated;
  w.start_index = 10;
  w.log_end = 20;
  w.lost_from = 10;
  w.lost_to = 10;  // empty range: names nothing
  EXPECT_THROW((void)wire::decode_session_welcome(
                   wire::encode_session_welcome(w)),
               wire::DecodeError);
}

TEST(SessionWire, AlertAndEvictedRecordsRoundTrip) {
  const Alert a = small_alert(3);
  const auto alert_bytes =
      wire::encode_alert(a, wire::AlertEncoding::kFullHistories);
  const wire::SessionRecord rec = wire::decode_session_record(
      wire::encode_session_alert(17, alert_bytes));
  EXPECT_EQ(rec.kind, wire::SessionRecord::Kind::kAlert);
  EXPECT_EQ(rec.index, 17u);
  EXPECT_EQ(rec.alert.alert.key(), a.key());

  const wire::SessionRecord ev =
      wire::decode_session_record(wire::encode_session_evicted(90, 1234));
  EXPECT_EQ(ev.kind, wire::SessionRecord::Kind::kEvicted);
  EXPECT_EQ(ev.index, 90u);
  EXPECT_EQ(ev.lag, 1234u);

  EXPECT_EQ(wire::decode_session_ack(wire::encode_session_ack(41)), 41u);
}

// ---- cursor-file crash safety ------------------------------------------

std::vector<std::uint8_t> framed(std::span<const std::uint8_t> payload) {
  return wire::frame(payload);
}

void append(std::vector<std::uint8_t>& file,
            std::span<const std::uint8_t> payload) {
  const auto f = framed(payload);
  file.insert(file.end(), f.begin(), f.end());
}

TEST(CursorFile, TornTailIsIgnoredAndCounted) {
  std::vector<std::uint8_t> file;
  append(file, wire::encode_cursor_file_header());
  append(file, wire::encode_cursor_record("a", {5, false}));
  // The crash cut a second record mid-frame.
  const auto torn = framed(wire::encode_cursor_record("a", {9, false}));
  file.insert(file.end(), torn.begin(),
              torn.begin() + static_cast<std::ptrdiff_t>(torn.size() / 2));

  const wire::RecoveredCursors rec = wire::recover_cursor_bytes(file);
  EXPECT_EQ(rec.corrupt_frames, 1u);
  ASSERT_TRUE(rec.cursors.contains("a"));
  EXPECT_EQ(rec.cursors.at("a").acked, 5u);  // torn write changed nothing
}

TEST(CursorFile, DuplicateRecordsResolveLastWriterWins) {
  std::vector<std::uint8_t> file;
  append(file, wire::encode_cursor_file_header());
  append(file, wire::encode_cursor_record("a", {3, false}));
  append(file, wire::encode_cursor_record("b", {1, false}));
  append(file, wire::encode_cursor_record("a", {7, true}));

  const wire::RecoveredCursors rec = wire::recover_cursor_bytes(file);
  EXPECT_EQ(rec.records, 3u);
  EXPECT_EQ(rec.cursors.size(), 2u);
  EXPECT_EQ(rec.cursors.at("a"), (wire::CursorEntry{7, true}));
  EXPECT_EQ(rec.cursors.at("b"), (wire::CursorEntry{1, false}));
}

TEST(CursorFile, FutureMajorHeaderIsTypedRejection) {
  // A 'V' header claiming a future cursor-format major: this (v1)
  // reader must refuse with the typed error, never misread.
  std::vector<std::uint8_t> header = wire::encode_cursor_file_header();
  header[2] = wire::kCursorMaxMajor + 1;  // 'V' | 'c' | major | minor ...
  std::vector<std::uint8_t> file;
  append(file, header);
  append(file, wire::encode_cursor_record("a", {3, false}));
  EXPECT_THROW((void)wire::recover_cursor_bytes(file),
               wire::UnsupportedVersion);
}

TEST(CursorFile, UnknownRecordTypesAreSkippedInVersionedFiles) {
  std::vector<std::uint8_t> file;
  append(file, wire::encode_cursor_file_header());
  const std::vector<std::uint8_t> unknown{0x5a, 1, 2, 3};  // future type
  append(file, unknown);
  append(file, wire::encode_cursor_record("a", {2, false}));

  const wire::RecoveredCursors rec = wire::recover_cursor_bytes(file);
  EXPECT_EQ(rec.skipped_records, 1u);
  EXPECT_EQ(rec.corrupt_frames, 0u);
  EXPECT_EQ(rec.cursors.at("a").acked, 2u);
}

// ---- admin sessions extension ------------------------------------------

TEST(AdminSessions, StatusExtensionRoundTripsAndStaysOptional) {
  AdminResponse resp;
  resp.ok = true;
  resp.status = ServiceStatus{};
  resp.status->sessions.push_back(
      SessionStatus{"worker-1", 10, 12, 5, 2, true, false});
  resp.status->sessions.push_back(
      SessionStatus{"worker-2", 0, 0, 15, 0, false, true});
  resp.status->total_sessions = 7;  // more exist than the budget carried

  const AdminResponse back =
      decode_admin_response(encode_admin_response(resp));
  ASSERT_TRUE(back.status.has_value());
  EXPECT_EQ(back.status->total_sessions, 7u);
  ASSERT_EQ(back.status->sessions.size(), 2u);
  EXPECT_EQ(back.status->sessions[0].id, "worker-1");
  EXPECT_EQ(back.status->sessions[0].lag, 5u);
  EXPECT_TRUE(back.status->sessions[0].connected);
  EXPECT_TRUE(back.status->sessions[1].evicted);

  // No sessions -> the extension is absent entirely, so the encoding
  // matches a status response produced before sessions existed.
  AdminResponse plain;
  plain.ok = true;
  plain.status = ServiceStatus{};
  const AdminResponse plain_back =
      decode_admin_response(encode_admin_response(plain));
  ASSERT_TRUE(plain_back.status.has_value());
  EXPECT_TRUE(plain_back.status->sessions.empty());
  EXPECT_EQ(plain_back.status->total_sessions, 0u);
}

// ---- live SessionManager -----------------------------------------------

SessionLimits roomy_limits() {
  SessionLimits limits;
  limits.max_backlog = 1 << 16;
  limits.retention = 1 << 16;
  limits.lag_alert_budget = 0;
  return limits;
}

TEST(SessionManager, MidFrameKillResumesGapFree) {
  const auto dir = fresh_dir("midframe");
  SessionManager manager{dir, wire::AlertEncoding::kFullHistories,
                         roomy_limits()};
  net::TcpListener listener;

  {
    auto sub = connect_session(listener, manager, "w", 0);
    for (std::uint64_t i = 0; i < 8; ++i) manager.publish(small_alert(i));
    ASSERT_TRUE(sub.read_alerts(8, 5000ms));
    // Kill mid-stream: more alerts are being framed for this connection
    // while the socket dies with whatever was in flight.
    for (std::uint64_t i = 8; i < 16; ++i) manager.publish(small_alert(i));
    // sub.stream closes abruptly here (destructor, no FIN handshake
    // consumed by the server before the frames drained).
  }

  // Reconnect asking for exactly the next index: replay must be exact
  // and gap-free — the server's framed/acked bookkeeping survived the
  // torn write.
  auto sub2 = connect_session(listener, manager, "w", 8);
  ASSERT_TRUE(sub2.read_alerts(8, 5000ms));
  ASSERT_TRUE(sub2.welcomed);
  EXPECT_EQ(sub2.welcome.status, wire::SessionWelcomeStatus::kOk);
  EXPECT_EQ(sub2.welcome.start_index, 8u);
  for (std::size_t k = 0; k < sub2.records.size(); ++k)
    EXPECT_EQ(sub2.records[k].index, 8 + k);

  manager.stop(500ms);
}

TEST(SessionManager, DurableCursorResumesWithoutExplicitFrom) {
  const auto dir = fresh_dir("cursor_resume");
  {
    SessionManager manager{dir, wire::AlertEncoding::kFullHistories,
                           roomy_limits()};
    net::TcpListener listener;
    auto sub = connect_session(listener, manager, "w", 0);

    for (std::uint64_t i = 0; i < 6; ++i) manager.publish(small_alert(i));
    ASSERT_TRUE(sub.read_alerts(6, 5000ms));  // acks 0..5
    // Wait until the durable cursor reflects the acks.
    const auto until = Clock::now() + 5s;
    bool acked = false;
    while (!acked && Clock::now() < until) {
      for (const SessionInfo& info : manager.sessions())
        if (info.id == "w" && info.acked == 6) acked = true;
      std::this_thread::sleep_for(5ms);
    }
    ASSERT_TRUE(acked);
    manager.stop(500ms);
  }

  // A fresh manager on the same directory recovers log + cursors; a
  // hello WITHOUT `from` resumes from the durable cursor.
  SessionManager manager{dir, wire::AlertEncoding::kFullHistories,
                         roomy_limits()};
  EXPECT_EQ(manager.log_end(), 6u);
  EXPECT_EQ(manager.recovered_sessions(), 1u);
  net::TcpListener listener;
  auto sub = connect_session(listener, manager, "w", std::nullopt);
  manager.publish(small_alert(6));
  ASSERT_TRUE(sub.read_alerts(1, 5000ms));
  ASSERT_TRUE(sub.welcomed);
  EXPECT_EQ(sub.welcome.status, wire::SessionWelcomeStatus::kOk);
  EXPECT_EQ(sub.welcome.start_index, 6u);
  EXPECT_EQ(sub.records.front().index, 6u);
  manager.stop(500ms);
}

TEST(SessionManager, OutrunCursorGetsTypedTruncation) {
  const auto dir = fresh_dir("truncated");
  SessionLimits limits;
  limits.max_backlog = 4;
  limits.retention = 5;
  limits.lag_alert_budget = 0;
  SessionManager manager{dir, wire::AlertEncoding::kFullHistories, limits};
  for (std::uint64_t i = 0; i < 20; ++i) manager.publish(small_alert(i));

  net::TcpListener listener;
  auto sub = connect_session(listener, manager, "late", 0);
  ASSERT_TRUE(sub.read_alerts(5, 5000ms));
  ASSERT_TRUE(sub.welcomed);
  EXPECT_EQ(sub.welcome.status, wire::SessionWelcomeStatus::kTruncated);
  EXPECT_EQ(sub.welcome.lost_from, 0u);
  EXPECT_EQ(sub.welcome.lost_to, 15u);   // window keeps [15, 20)
  EXPECT_EQ(sub.welcome.start_index, 15u);
  EXPECT_EQ(sub.welcome.log_end, 20u);
  for (std::size_t k = 0; k < sub.records.size(); ++k)
    EXPECT_EQ(sub.records[k].index, 15 + k);
  manager.stop(500ms);
}

TEST(SessionManager, FutureFromGetsBadCursor) {
  const auto dir = fresh_dir("badcursor");
  SessionManager manager{dir, wire::AlertEncoding::kFullHistories,
                         roomy_limits()};
  for (std::uint64_t i = 0; i < 3; ++i) manager.publish(small_alert(i));
  net::TcpListener listener;
  auto sub = connect_session(listener, manager, "w", 999);
  ASSERT_TRUE(sub.await_welcome(5000ms));
  EXPECT_EQ(sub.welcome.status, wire::SessionWelcomeStatus::kBadCursor);
  EXPECT_EQ(sub.welcome.start_index, 3u);  // resumes live at log end
  manager.stop(500ms);
}

// The PR's acceptance pin: a stalled consumer triggers the dogfooded
// lag alert and bounded eviction, and a healthy session keeps receiving
// the full stream — publish() and the fast peer never stall behind the
// stuck one.
TEST(SessionManager, StalledConsumerIsEvictedWithoutStallingOthers) {
  const auto dir = fresh_dir("slowfast");
  SessionLimits limits;
  limits.max_backlog = 8;
  limits.retention = 1 << 16;  // fast peer can always be replayed
  limits.lag_alert_budget = 4;
  SessionManager manager{dir, wire::AlertEncoding::kFullHistories, limits};
  net::TcpListener listener;

  auto fast = connect_session(listener, manager, "fast", 0);
  auto slow = connect_session(listener, manager, "slow", 0);
  ASSERT_TRUE(slow.await_welcome(5000ms));  // upgraded; now it stalls

  // Publish big alerts, paced by the fast subscriber, until the stalled
  // peer's pipeline jams and the backlog bound evicts it.
  bool evicted = false;
  std::uint64_t published = 0;
  const std::uint64_t cap = 2000;
  while (!evicted && published < cap) {
    manager.publish(big_alert(published));
    ++published;
    ASSERT_TRUE(fast.read_alerts(published, 10000ms))
        << "fast subscriber stalled behind the stuck one at alert "
        << published;
    for (const SessionInfo& info : manager.sessions())
      if (info.id == "slow" && info.evicted) evicted = true;
  }
  ASSERT_TRUE(evicted) << "stalled consumer was never evicted";

  // The healthy session received the complete gap-free prefix.
  ASSERT_EQ(fast.records.size(), published);
  for (std::size_t k = 0; k < fast.records.size(); ++k)
    EXPECT_EQ(fast.records[k].index, k);

  // The dogfooded condition-language lag alert fired for the slot.
  const std::vector<Alert> lag_alerts = manager.lag_alerts();
  ASSERT_FALSE(lag_alerts.empty());
  EXPECT_EQ(lag_alerts.front().cond, "service.session.lag_exceeded");

  // The stalled peer's durable cursor carries the eviction mark.
  bool marked = false;
  for (const SessionInfo& info : manager.sessions())
    if (info.id == "slow") marked = info.evicted;
  EXPECT_TRUE(marked);

  manager.stop(500ms);
}

}  // namespace
}  // namespace rcm::service
