// The parallel swarm executor must be bit-for-bit identical to the
// serial one: same per-run digests, same violation sets, same aggregate
// report, for any jobs value. These tests pin that contract with a
// fixed-seed 200-run batch, plus the analogous guarantee for the
// Monte-Carlo table sweeps (exp::sweep_scenario).
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include <chrono>

#include "exp/scenarios.hpp"
#include "exp/table_experiment.hpp"
#include "obs/timeseries.hpp"
#include "obs/trace.hpp"
#include "swarm/swarm.hpp"
#include "util/rng.hpp"

namespace rcm {
namespace {

struct BatchTrace {
  std::vector<std::uint64_t> indices;
  std::vector<std::uint64_t> digests;
  std::vector<std::string> violations;  ///< flattened, in run order
  swarm::SwarmReport report;
};

BatchTrace run_batch(std::uint64_t seed, std::size_t runs, std::size_t jobs,
                     std::size_t min_workloads = 0) {
  swarm::SwarmOptions options;
  options.seed = seed;
  options.runs = runs;
  options.jobs = jobs;
  options.fuzz.min_workloads = min_workloads;
  // Shrinking failed runs is orthogonal to executor determinism and
  // dominates wall-clock when a violation shows up; keep the test fast.
  options.do_shrink = false;

  BatchTrace trace;
  trace.report = swarm::run_swarm(
      options, [&](std::uint64_t index, const swarm::RunCheck& check) {
        trace.indices.push_back(index);
        trace.digests.push_back(check.digest);
        trace.violations.insert(trace.violations.end(),
                                check.violations.begin(),
                                check.violations.end());
        return true;
      });
  return trace;
}

void expect_identical(const BatchTrace& a, const BatchTrace& b) {
  EXPECT_EQ(a.indices, b.indices);
  EXPECT_EQ(a.digests, b.digests);
  EXPECT_EQ(a.violations, b.violations);
  EXPECT_EQ(a.report.runs_executed, b.report.runs_executed);
  EXPECT_EQ(a.report.runs_with_alerts, b.report.runs_with_alerts);
  EXPECT_EQ(a.report.failures, b.report.failures);
  EXPECT_EQ(a.report.cell_runs, b.report.cell_runs);
  ASSERT_EQ(a.report.counterexamples.size(), b.report.counterexamples.size());
  for (std::size_t i = 0; i < a.report.counterexamples.size(); ++i) {
    EXPECT_EQ(a.report.counterexamples[i].run_index,
              b.report.counterexamples[i].run_index);
    EXPECT_EQ(a.report.counterexamples[i].violations,
              b.report.counterexamples[i].violations);
  }
}

TEST(ParallelDeterminismTest, Jobs8MatchesSerialOn200Runs) {
  const BatchTrace serial = run_batch(/*seed=*/1, /*runs=*/200, /*jobs=*/1);
  const BatchTrace parallel = run_batch(/*seed=*/1, /*runs=*/200, /*jobs=*/8);

  ASSERT_EQ(serial.report.runs_executed, 200u);
  // Progress fires once per run, in run-index order, in both modes.
  ASSERT_EQ(serial.indices.size(), 200u);
  for (std::size_t i = 0; i < serial.indices.size(); ++i)
    EXPECT_EQ(serial.indices[i], i);

  expect_identical(serial, parallel);
}

TEST(ParallelDeterminismTest, TracingOnLeavesDigestsBitIdentical) {
  // Tracing observes, never participates: the same batch with span
  // recording enabled must reproduce the tracing-off digests exactly,
  // serial and parallel alike (trace ids are pure functions of
  // (var, seqno), and alert identity excludes the trace id).
  const BatchTrace off = run_batch(/*seed=*/7, /*runs=*/60, /*jobs=*/1);

  obs::trace::clear();
  obs::trace::set_enabled(true);
  const BatchTrace on_serial = run_batch(/*seed=*/7, /*runs=*/60, /*jobs=*/1);
  const BatchTrace on_parallel =
      run_batch(/*seed=*/7, /*runs=*/60, /*jobs=*/4);
  obs::trace::set_enabled(false);

#if RCM_TRACING_ENABLED
  EXPECT_GT(obs::trace::total_spans(), 0u)
      << "the batch must actually have recorded spans";
#endif
  obs::trace::clear();

  expect_identical(off, on_serial);
  expect_identical(off, on_parallel);
}

TEST(ParallelDeterminismTest, SamplerOnLeavesDigestsBitIdentical) {
  // The time-series sampler, like tracing, observes without
  // participating: it only reads the registry's relaxed atomics from a
  // background thread. A batch run under an aggressively-ticking
  // sampler must reproduce the sampler-off digests exactly, serial and
  // parallel alike.
  const BatchTrace off = run_batch(/*seed=*/7, /*runs=*/60, /*jobs=*/1);

  obs::TimeSeriesSampler::Options opts;
  opts.interval = std::chrono::milliseconds{20};
  obs::TimeSeriesSampler sampler{opts};
  sampler.start();
  const BatchTrace on_serial = run_batch(/*seed=*/7, /*runs=*/60, /*jobs=*/1);
  const BatchTrace on_parallel =
      run_batch(/*seed=*/7, /*runs=*/60, /*jobs=*/4);
  sampler.stop();

#if RCM_METRICS_ENABLED
  EXPECT_GT(sampler.samples_taken(), 0u)
      << "the sampler must actually have snapshotted the registry";
#endif

  expect_identical(off, on_serial);
  expect_identical(off, on_parallel);
}

TEST(ParallelDeterminismTest, OddJobCountsAgreeToo) {
  // Block boundaries (jobs * 4) land differently for different jobs
  // values; none of them may change the observable batch.
  const BatchTrace serial = run_batch(/*seed=*/99, /*runs=*/60, /*jobs=*/1);
  for (std::size_t jobs : {2u, 3u, 5u}) {
    const BatchTrace parallel = run_batch(/*seed=*/99, /*runs=*/60, jobs);
    expect_identical(serial, parallel);
  }
}

TEST(ParallelDeterminismTest, ComposedWorkloadBatchesStayBitIdentical) {
  // Every run carries at least three workload units (traffic merges,
  // front-link shaping, per-unit checkers, the lossy-row downgrade); the
  // whole composed pipeline must still be a pure function of (seed, i).
  const BatchTrace serial =
      run_batch(/*seed=*/13, /*runs=*/60, /*jobs=*/1, /*min_workloads=*/3);
  std::size_t with_units = 0;
  for (std::uint64_t i = 0; i < 60; ++i) {
    swarm::FuzzOptions fuzz;
    fuzz.min_workloads = 3;
    if (swarm::sample_composed(13, i, fuzz).units.size() >= 3) ++with_units;
  }
  EXPECT_EQ(with_units, 60u);
  for (std::size_t jobs : {2u, 4u}) {
    const BatchTrace parallel =
        run_batch(/*seed=*/13, /*runs=*/60, jobs, /*min_workloads=*/3);
    expect_identical(serial, parallel);
  }
}

TEST(ParallelDeterminismTest, EarlyStopViaProgressStillStops) {
  // Returning false from the progress callback must stop the parallel
  // batch too (possibly a block later than serial, never earlier than
  // the requested index).
  swarm::SwarmOptions options;
  options.seed = 5;
  options.runs = 100;
  options.jobs = 4;
  options.do_shrink = false;

  std::size_t seen = 0;
  const swarm::SwarmReport report = swarm::run_swarm(
      options, [&](std::uint64_t, const swarm::RunCheck&) {
        return ++seen < 10;
      });
  EXPECT_GE(seen, 10u);
  EXPECT_LT(seen, 100u);
  EXPECT_EQ(report.runs_executed, seen);
  EXPECT_TRUE(report.time_budget_exhausted);
}

TEST(ParallelDeterminismTest, DeriveIsStatelessAndForkCompatible) {
  // derive(seed, i) must equal the historical per-run derivation — a
  // fresh master forked once: Rng{seed}.fork(i + 1). That equivalence is
  // what keeps old swarm seeds reproducing the same batches. It must
  // also be order-independent (stateless), unlike sequential forks from
  // one long-lived master.
  std::vector<std::uint64_t> forked;
  for (std::uint64_t i = 0; i < 8; ++i) {
    util::Rng master{1234};
    forked.push_back(master.fork(i + 1)());
  }
  for (std::uint64_t i = 8; i-- > 0;) {  // reverse order: stateless
    util::Rng derived = util::Rng::derive(1234, i);
    EXPECT_EQ(derived(), forked[i]) << "index " << i;
  }
  // Distinct indices give distinct streams.
  EXPECT_NE(util::Rng::derive(1234, 0)(), util::Rng::derive(1234, 1)());
}

TEST(ParallelDeterminismTest, SweepScenarioCountsIdenticalAcrossJobs) {
  const exp::ScenarioSpec spec =
      exp::single_var_scenario(exp::Scenario::kLossyAggressive, 0.2);

  exp::SweepParams params;
  params.runs = 40;
  params.seed = 42;

  params.jobs = 1;
  const exp::PropertyCounts serial =
      exp::sweep_scenario(spec, FilterKind::kAd1, params);
  params.jobs = 4;
  const exp::PropertyCounts parallel =
      exp::sweep_scenario(spec, FilterKind::kAd1, params);

  EXPECT_EQ(serial.runs, parallel.runs);
  EXPECT_EQ(serial.ordered_violations, parallel.ordered_violations);
  EXPECT_EQ(serial.complete_violations, parallel.complete_violations);
  EXPECT_EQ(serial.consistent_violations, parallel.consistent_violations);
  EXPECT_EQ(serial.complete_unknown, parallel.complete_unknown);
}

}  // namespace
}  // namespace rcm
