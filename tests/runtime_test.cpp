// Tests for the threaded runtime: the blocking queue, lossy channels and
// full threaded system runs, whose outputs are validated with the same
// property checkers as the simulator's.
#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <thread>

#include "check/properties.hpp"
#include "core/builtin_conditions.hpp"
#include "core/sequence.hpp"
#include "runtime/channel.hpp"
#include "runtime/queue.hpp"
#include "runtime/system.hpp"
#include "trace/generators.hpp"
#include "trace/scripted.hpp"

namespace rcm::runtime {
namespace {

constexpr VarId kX = 0;

TEST(BlockingQueue, FifoSingleThread) {
  BlockingQueue<int> q;
  EXPECT_TRUE(q.push(1));
  EXPECT_TRUE(q.push(2));
  EXPECT_EQ(q.size(), 2u);
  EXPECT_EQ(q.pop(), 1);
  EXPECT_EQ(q.pop(), 2);
  EXPECT_FALSE(q.try_pop().has_value());
}

TEST(BlockingQueue, CloseRejectsPushesButDrains) {
  BlockingQueue<int> q;
  (void)q.push(1);
  q.close();
  EXPECT_FALSE(q.push(2));
  EXPECT_TRUE(q.closed());
  EXPECT_EQ(q.pop(), 1);              // drains the remaining element
  EXPECT_FALSE(q.pop().has_value());  // then reports exhaustion
}

TEST(BlockingQueue, PopBlocksUntilPush) {
  BlockingQueue<int> q;
  std::atomic<int> got{0};
  std::thread consumer{[&] {
    const auto v = q.pop();
    got = v.value_or(-1);
  }};
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_EQ(got.load(), 0);  // still blocked
  (void)q.push(42);
  consumer.join();
  EXPECT_EQ(got.load(), 42);
}

TEST(BlockingQueue, CloseWakesBlockedConsumers) {
  BlockingQueue<int> q;
  std::atomic<bool> finished{false};
  std::thread consumer{[&] {
    while (q.pop().has_value()) {
    }
    finished = true;
  }};
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  q.close();
  consumer.join();
  EXPECT_TRUE(finished.load());
}

TEST(BlockingQueue, ManyProducersOneConsumer) {
  BlockingQueue<int> q;
  constexpr int kProducers = 8;
  constexpr int kPerProducer = 1000;
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p)
    producers.emplace_back([&q, p] {
      for (int i = 0; i < kPerProducer; ++i) (void)q.push(p * kPerProducer + i);
    });
  std::vector<int> seen;
  std::thread consumer{[&] {
    while (auto v = q.pop()) seen.push_back(*v);
  }};
  for (auto& t : producers) t.join();
  q.close();
  consumer.join();
  EXPECT_EQ(seen.size(), static_cast<std::size_t>(kProducers * kPerProducer));
  // Per-producer FIFO must be preserved even under contention.
  std::vector<int> last(kProducers, -1);
  for (int v : seen) {
    const int p = v / kPerProducer;
    EXPECT_GT(v % kPerProducer, last[p]);
    last[p] = v % kPerProducer;
  }
}

TEST(Channel, LosslessDeliversAll) {
  auto inbox = std::make_shared<BlockingQueue<int>>();
  Channel<int> ch{inbox, 0.0, util::Rng{1}};
  for (int i = 0; i < 100; ++i) EXPECT_TRUE(ch.send(i));
  EXPECT_EQ(inbox->size(), 100u);
  EXPECT_EQ(ch.dropped(), 0u);
}

TEST(Channel, LossyDropsAboutRate) {
  auto inbox = std::make_shared<BlockingQueue<int>>();
  Channel<int> ch{inbox, 0.4, util::Rng{2}};
  const int n = 10000;
  for (int i = 0; i < n; ++i) (void)ch.send(i);
  EXPECT_NEAR(static_cast<double>(ch.dropped()) / n, 0.4, 0.03);
  EXPECT_EQ(inbox->size() + ch.dropped(), static_cast<std::size_t>(n));
}

// ----------------------------------------------------- threaded system ----

ConditionPtr overheat() {
  return std::make_shared<const ThresholdCondition>("hot", kX, 3000.0);
}

TEST(RunThreaded, ValidatesConfig) {
  EXPECT_THROW((void)run_threaded(ThreadedConfig{}), std::invalid_argument);
  ThreadedConfig config;
  config.condition = overheat();
  config.num_ces = 0;
  EXPECT_THROW((void)run_threaded(config), std::invalid_argument);
}

TEST(RunThreaded, LosslessReplicatedIsCompleteAndConsistent) {
  ThreadedConfig config;
  config.condition = overheat();
  config.dm_traces = {trace::scripted(
      kX, {{1, 2900.0}, {2, 3100.0}, {3, 2950.0}, {4, 3200.0}, {5, 3050.0}})};
  config.num_ces = 2;
  config.filter = FilterKind::kAd1;
  const sim::RunResult r = run_threaded(config);
  // Lossless: both CEs saw everything.
  EXPECT_EQ(r.ce_inputs[0].size(), 5u);
  EXPECT_EQ(r.ce_inputs[1].size(), 5u);
  const auto report = check::check_run(r.as_system_run(config.condition));
  EXPECT_EQ(report.complete, check::Verdict::kHolds);
  EXPECT_EQ(report.consistent, check::Verdict::kHolds);
  EXPECT_EQ(report.ordered, check::Verdict::kHolds);  // Theorem 1
}

TEST(RunThreaded, LossyRunDeliversSubsequences) {
  ThreadedConfig config;
  config.condition = overheat();
  util::Rng rng{9};
  trace::UniformParams p;
  p.base.var = kX;
  p.base.count = 200;
  p.lo = 2000.0;
  p.hi = 4000.0;
  config.dm_traces = {trace::uniform_trace(p, rng)};
  config.num_ces = 3;
  config.front_loss = 0.3;
  config.filter = FilterKind::kAd1;
  const sim::RunResult r = run_threaded(config);
  EXPECT_GT(r.front_messages_dropped, 0u);
  const auto emitted = project(std::span<const Update>{r.dm_emitted[0]}, kX);
  for (const auto& input : r.ce_inputs) {
    const auto seqs = project(std::span<const Update>{input}, kX);
    EXPECT_TRUE(is_subsequence(seqs, emitted));
    EXPECT_LT(seqs.size(), emitted.size());
  }
}

TEST(RunThreaded, Ad4OutputIsOrderedAndConsistentUnderRealConcurrency) {
  // Stress: aggressive historical condition, heavy loss, three replicas,
  // real thread interleavings. AD-4's guarantees must hold in every run.
  auto rise = std::make_shared<const RiseCondition>("rise", kX, 10.0,
                                                    Triggering::kAggressive);
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    ThreadedConfig config;
    config.condition = rise;
    util::Rng rng{seed};
    trace::UniformParams p;
    p.base.var = kX;
    p.base.count = 150;
    p.lo = 0.0;
    p.hi = 100.0;
    config.dm_traces = {trace::uniform_trace(p, rng)};
    config.num_ces = 3;
    config.front_loss = 0.25;
    config.filter = FilterKind::kAd4;
    config.seed = seed;
    const sim::RunResult r = run_threaded(config);
    const auto run = r.as_system_run(rise);
    EXPECT_TRUE(check::check_ordered(r.displayed, {kX})) << "seed " << seed;
    EXPECT_EQ(check::check_run(run).consistent, check::Verdict::kHolds)
        << "seed " << seed;
  }
}

TEST(RunThreaded, TimeScaleReplaysApproximatelyInRealTime) {
  ThreadedConfig config;
  config.condition = overheat();
  config.dm_traces = {trace::scripted(kX, {{1, 3100.0}, {2, 3200.0}})};
  config.num_ces = 1;
  config.time_scale = 0.02;  // trace spans 2s -> ~40ms wall clock
  const auto start = std::chrono::steady_clock::now();
  (void)run_threaded(config);
  const auto elapsed = std::chrono::steady_clock::now() - start;
  EXPECT_GE(elapsed, std::chrono::milliseconds(35));
}

TEST(RunThreaded, MultiVariableThreadedRun) {
  auto cm = std::make_shared<const AbsDiffCondition>("cm", 0, 1, 30.0);
  ThreadedConfig config;
  config.condition = cm;
  util::Rng rng{11};
  trace::UniformParams px, py;
  px.base.var = 0;
  px.base.count = 100;
  px.lo = 0.0;
  px.hi = 100.0;
  py.base.var = 1;
  py.base.count = 100;
  py.lo = 0.0;
  py.hi = 100.0;
  config.dm_traces = {trace::uniform_trace(px, rng),
                      trace::uniform_trace(py, rng)};
  config.num_ces = 2;
  config.filter = FilterKind::kAd5;
  const sim::RunResult r = run_threaded(config);
  // AD-5 guarantees orderedness under any interleaving (Lemma 4).
  EXPECT_TRUE(check::check_ordered(r.displayed, {0, 1}));
}

}  // namespace
}  // namespace rcm::runtime
