// Randomized verification of the paper's theorems on full simulated
// systems:
//
//   Theorem 1  — lossless systems are ordered and complete (any filter of
//                the AD-1 family; we use AD-1 as the paper does),
//   Theorem 2  — lossy non-historical systems are complete,
//   Theorem 3  — lossy conservative systems are consistent,
//   Theorem 4  — lossy aggressive systems violate consistency (witnessed),
//   Theorem 5/7/9 — AD-2 / AD-3 / AD-4 maximality: every alert each
//                algorithm suppresses would violate the corresponding
//                property if displayed (local maximality witness),
//   Theorem 6/8 — domination AD-1 > AD-2 and AD-1 > AD-3 on shared
//                arrival interleavings,
//   Lemma 4/5  — AD-5 orderedness and (non-aggressive) consistency,
//   Theorem 10 — multi-variable AD-1 violations (witnessed).
//
// "Witnessed" theorems assert that violations occur somewhere in the
// sweep (they are existence claims about the scenario class); "holds"
// theorems assert zero violations in every run.
#include <gtest/gtest.h>

#include "check/consistency.hpp"
#include "check/domination.hpp"
#include "check/maximality.hpp"
#include "check/properties.hpp"
#include "exp/scenarios.hpp"
#include "exp/table_experiment.hpp"
#include "sim/system.hpp"

namespace rcm {
namespace {

using check::Verdict;
using exp::Scenario;

exp::SweepParams quick_params(std::uint64_t seed, bool multi = false) {
  exp::SweepParams p;
  p.runs = 60;
  p.updates_per_var = multi ? 8 : 30;
  p.seed = seed;
  return p;
}

// ----------------------------------------------------- Theorems 1 - 4 ----

TEST(Theorem1, LosslessOrderedAndComplete) {
  const auto spec = exp::single_var_scenario(Scenario::kLossless);
  const auto counts =
      exp::sweep_scenario(spec, FilterKind::kAd1, quick_params(101));
  EXPECT_EQ(counts.ordered_violations, 0u);
  EXPECT_EQ(counts.complete_violations, 0u);
  EXPECT_EQ(counts.consistent_violations, 0u);
}

TEST(Theorem2, NonHistoricalCompleteButNotOrdered) {
  const auto spec = exp::single_var_scenario(Scenario::kLossyNonHistorical);
  const auto counts =
      exp::sweep_scenario(spec, FilterKind::kAd1, quick_params(102));
  EXPECT_EQ(counts.complete_violations, 0u);
  EXPECT_EQ(counts.consistent_violations, 0u);
  EXPECT_GT(counts.ordered_violations, 0u);  // unorderedness witnessed
}

TEST(Theorem3, ConservativeConsistentButIncomplete) {
  const auto spec = exp::single_var_scenario(Scenario::kLossyConservative);
  const auto counts =
      exp::sweep_scenario(spec, FilterKind::kAd1, quick_params(103));
  EXPECT_EQ(counts.consistent_violations, 0u);
  EXPECT_GT(counts.complete_violations, 0u);
  EXPECT_GT(counts.ordered_violations, 0u);
}

TEST(Theorem4, AggressiveInconsistencyWitnessed) {
  const auto spec = exp::single_var_scenario(Scenario::kLossyAggressive);
  const auto counts =
      exp::sweep_scenario(spec, FilterKind::kAd1, quick_params(104));
  EXPECT_GT(counts.consistent_violations, 0u);
  EXPECT_GT(counts.ordered_violations, 0u);
}

// ------------------------------------------------- Theorems 5, 7, 9 ------
//
// Maximality is a statement over all algorithms; the checkable local
// counterpart is: for every alert the algorithm suppressed, appending it
// to the displayed prefix at the point of suppression would have violated
// the property the algorithm guarantees. If some suppressed alert would
// NOT have violated it, the algorithm dropped more than necessary and a
// strictly dominating competitor exists — maximality refuted.

class MaximalityTest : public ::testing::TestWithParam<std::uint64_t> {
 protected:
  /// One randomized aggressive-scenario run captured pre-filter.
  sim::RunResult capture(std::uint64_t salt) {
    const auto spec = exp::single_var_scenario(Scenario::kLossyAggressive);
    spec_condition = spec.condition;
    util::Rng trial{GetParam() + salt};
    sim::SystemConfig config;
    config.condition = spec.condition;
    config.dm_traces = spec.make_traces(30, trial);
    config.front.loss = spec.front_loss;
    config.front.delay_max = 0.8;
    config.back.delay_max = 0.8;
    config.filter = FilterKind::kPassAll;  // capture the raw interleaving
    config.seed = GetParam() * 7919 + salt;
    return sim::run_system(config);
  }

  /// Property predicate: displaying `c` after `displayed` would break
  /// orderedness.
  static bool breaks_order(std::span<const Alert> displayed, const Alert& c,
                           VarId x) {
    return !displayed.empty() && c.seqno(x) < displayed.back().seqno(x);
  }

  /// Property predicate: displaying `c` would make the output
  /// inconsistent relative to the captured inputs.
  bool breaks_consistency(const sim::RunResult& r,
                          std::span<const Alert> displayed, const Alert& c) {
    check::SystemRun hypo;
    hypo.condition = spec_condition;
    hypo.ce_inputs = r.ce_inputs;
    hypo.displayed.assign(displayed.begin(), displayed.end());
    hypo.displayed.push_back(c);
    return !check::check_consistent(hypo).consistent;
  }

  ConditionPtr spec_condition;
};

TEST_P(MaximalityTest, Ad2DropsOnlyOrderednessViolators) {
  const auto r = capture(0);
  const VarId x = spec_condition->variables()[0];
  Ad2OrderedFilter ad2{x};
  const auto violations = check::verify_locally_maximal(
      ad2, r.arrived, {x},
      [&](std::span<const Alert> displayed, const Alert& c) {
        return breaks_order(displayed, c, x);
      });
  EXPECT_TRUE(violations.empty())
      << "AD-2 dropped an alert that would not violate orderedness";
}

TEST_P(MaximalityTest, Ad3DropsOnlyConsistencyViolatorsOrDuplicates) {
  const auto r = capture(50);
  const VarId x = spec_condition->variables()[0];
  Ad3ConsistentFilter ad3;
  const auto violations = check::verify_locally_maximal(
      ad3, r.arrived, {x},
      [&](std::span<const Alert> displayed, const Alert& c) {
        return breaks_consistency(r, displayed, c);
      });
  EXPECT_TRUE(violations.empty())
      << "AD-3 dropped a non-duplicate alert that would not violate "
         "consistency";
}

TEST_P(MaximalityTest, Ad4DropsOnlyViolatorsOfEitherProperty) {
  const auto r = capture(100);
  const VarId x = spec_condition->variables()[0];
  Ad4OrderedConsistentFilter ad4{x};
  const auto violations = check::verify_locally_maximal(
      ad4, r.arrived, {x},
      [&](std::span<const Alert> displayed, const Alert& c) {
        return breaks_order(displayed, c, x) ||
               breaks_consistency(r, displayed, c);
      });
  EXPECT_TRUE(violations.empty())
      << "AD-4 dropped an alert violating neither property";
}

INSTANTIATE_TEST_SUITE_P(Seeds, MaximalityTest,
                         ::testing::Range<std::uint64_t>(1, 13));

// ---------------------------------------------------- Theorems 6 and 8 ----

class DominationTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DominationTest, Ad1DominatesAd2Ad3Ad4OnSharedInterleavings) {
  const auto spec = exp::single_var_scenario(Scenario::kLossyAggressive);
  const VarId x = spec.condition->variables()[0];
  util::Rng trial{GetParam()};

  sim::SystemConfig config;
  config.condition = spec.condition;
  config.dm_traces = spec.make_traces(40, trial);
  config.front.loss = spec.front_loss;
  config.front.delay_max = 0.8;
  config.back.delay_max = 0.8;
  config.filter = FilterKind::kPassAll;  // capture the raw interleaving
  config.seed = GetParam() * 31;
  const auto r = sim::run_system(config);

  Ad1DuplicateFilter ad1;
  Ad2OrderedFilter ad2{x};
  Ad3ConsistentFilter ad3;
  Ad4OrderedConsistentFilter ad4{x};

  check::DominationObservation obs12, obs13, obs14;
  check::observe_domination(ad1, ad2, r.arrived, obs12);
  check::observe_domination(ad1, ad3, r.arrived, obs13);
  check::observe_domination(ad1, ad4, r.arrived, obs14);

  EXPECT_TRUE(obs12.dominates());  // Theorem 6
  EXPECT_TRUE(obs13.dominates());  // Theorem 8
  EXPECT_TRUE(obs14.dominates());  // AD-1 >= AD-4
  // Note: AD-2 >= AD-4 and AD-3 >= AD-4 do NOT hold in general (and the
  // paper does not claim them): AD-4's order/ledger state advances only
  // on jointly-accepted alerts, so AD-4 can accept an alert its parent
  // algorithm, run alone, had already locked out.
}

INSTANTIATE_TEST_SUITE_P(Seeds, DominationTest,
                         ::testing::Range<std::uint64_t>(1, 21));

// -------------------------------------------------- Lemma 4/5, Thm 10 ----

TEST(Lemma4, Ad5AlwaysOrdered) {
  for (Scenario s : exp::kAllScenarios) {
    const auto spec = exp::multi_var_scenario(s);
    const auto counts =
        exp::sweep_scenario(spec, FilterKind::kAd5, quick_params(400, true));
    EXPECT_EQ(counts.ordered_violations, 0u) << exp::scenario_name(s);
  }
}

TEST(Lemma5, Ad5ConsistentExceptAggressive) {
  for (Scenario s :
       {Scenario::kLossless, Scenario::kLossyNonHistorical,
        Scenario::kLossyConservative}) {
    const auto spec = exp::multi_var_scenario(s);
    const auto counts =
        exp::sweep_scenario(spec, FilterKind::kAd5, quick_params(500, true));
    EXPECT_EQ(counts.consistent_violations, 0u) << exp::scenario_name(s);
  }
  const auto aggr = exp::multi_var_scenario(Scenario::kLossyAggressive);
  const auto counts =
      exp::sweep_scenario(aggr, FilterKind::kAd5, quick_params(501, true));
  EXPECT_GT(counts.consistent_violations, 0u);
}

TEST(Lemma6, Ad5IncompletenessWitnessed) {
  const auto spec = exp::multi_var_scenario(Scenario::kLossyNonHistorical);
  const auto counts =
      exp::sweep_scenario(spec, FilterKind::kAd5, quick_params(600, true));
  EXPECT_GT(counts.complete_violations, 0u);
}

TEST(Theorem10, MultiVarAd1ViolationsWitnessed) {
  const auto spec = exp::multi_var_scenario(Scenario::kLossless);
  const auto counts =
      exp::sweep_scenario(spec, FilterKind::kAd1, quick_params(700, true));
  EXPECT_GT(counts.ordered_violations, 0u);
  EXPECT_GT(counts.consistent_violations, 0u);
}

TEST(Section52, Ad6OrderedAndAlwaysConsistent) {
  for (Scenario s : exp::kAllScenarios) {
    const auto spec = exp::multi_var_scenario(s);
    const auto counts =
        exp::sweep_scenario(spec, FilterKind::kAd6, quick_params(800, true));
    EXPECT_EQ(counts.ordered_violations, 0u) << exp::scenario_name(s);
    EXPECT_EQ(counts.consistent_violations, 0u) << exp::scenario_name(s);
  }
}

// ------------------------------------------------ paper-claim encoding ----

TEST(PaperClaims, AgreementHelper) {
  exp::PaperClaim claim{true, false, true};
  exp::PropertyCounts counts;
  counts.runs = 10;
  counts.complete_violations = 3;
  EXPECT_TRUE(exp::agrees_with_paper(claim, counts));
  counts.ordered_violations = 1;
  EXPECT_FALSE(exp::agrees_with_paper(claim, counts));
}

TEST(PaperClaims, TablesAreEncodedForAllCells) {
  for (FilterKind f : {FilterKind::kAd1, FilterKind::kAd2, FilterKind::kAd3,
                       FilterKind::kAd4})
    for (Scenario s : exp::kAllScenarios)
      EXPECT_NO_THROW((void)exp::paper_claim(f, s, false));
  for (FilterKind f : {FilterKind::kAd1, FilterKind::kAd5, FilterKind::kAd6})
    for (Scenario s : exp::kAllScenarios)
      EXPECT_NO_THROW((void)exp::paper_claim(f, s, true));
  EXPECT_THROW((void)exp::paper_claim(FilterKind::kAd5, Scenario::kLossless,
                                      false),
               std::invalid_argument);
  EXPECT_THROW((void)exp::paper_claim(FilterKind::kAd2, Scenario::kLossless,
                                      true),
               std::invalid_argument);
}

}  // namespace
}  // namespace rcm
