// Tests for the experiment harness (rcm::exp): scenario construction,
// trace recipes, the encoded paper claims, sweep determinism and table
// rendering.
#include <gtest/gtest.h>

#include "exp/scenarios.hpp"
#include "exp/table_experiment.hpp"

namespace rcm::exp {
namespace {

TEST(Scenarios, Names) {
  EXPECT_EQ(scenario_name(Scenario::kLossless), "Lossless");
  EXPECT_EQ(scenario_name(Scenario::kLossyAggressive), "Lossy His. Aggr.");
}

TEST(Scenarios, SingleVarSpecsMatchTaxonomy) {
  const auto lossless = single_var_scenario(Scenario::kLossless);
  EXPECT_EQ(lossless.front_loss, 0.0);
  EXPECT_EQ(lossless.variables.size(), 1u);

  const auto nonhist = single_var_scenario(Scenario::kLossyNonHistorical, 0.3);
  EXPECT_EQ(nonhist.front_loss, 0.3);
  EXPECT_EQ(nonhist.condition->history_class(), HistoryClass::kNonHistorical);

  const auto cons = single_var_scenario(Scenario::kLossyConservative);
  EXPECT_EQ(cons.condition->triggering(), Triggering::kConservative);
  EXPECT_EQ(cons.condition->history_class(), HistoryClass::kHistorical);

  const auto aggr = single_var_scenario(Scenario::kLossyAggressive);
  EXPECT_EQ(aggr.condition->triggering(), Triggering::kAggressive);
}

TEST(Scenarios, MultiVarSpecsHaveTwoVariables) {
  for (Scenario s : kAllScenarios) {
    const auto spec = multi_var_scenario(s);
    EXPECT_EQ(spec.variables.size(), 2u) << scenario_name(s);
    EXPECT_EQ(spec.condition->variables().size(), 2u);
    EXPECT_TRUE(spec.slow_secondary_vars);
  }
}

TEST(Scenarios, TraceRecipeShape) {
  const auto spec = multi_var_scenario(Scenario::kLossyAggressive);
  util::Rng rng{4};
  const auto traces = spec.make_traces(12, rng);
  ASSERT_EQ(traces.size(), 2u);
  for (const auto& trace : traces) {
    ASSERT_EQ(trace.size(), 12u);
    for (std::size_t i = 1; i < trace.size(); ++i)
      EXPECT_GT(trace[i].time, trace[i - 1].time);
  }
  // The secondary variable's slow walk hugs mid-range.
  for (const auto& tu : traces[1]) {
    EXPECT_GT(tu.update.value, 0.0);
    EXPECT_LT(tu.update.value, 100.0);
  }
}

TEST(PaperClaims, Table1MatchesThePaper) {
  // Table 1 verbatim.
  auto c = paper_claim(FilterKind::kAd1, Scenario::kLossless, false);
  EXPECT_TRUE(c.ordered && c.complete && c.consistent);
  c = paper_claim(FilterKind::kAd1, Scenario::kLossyNonHistorical, false);
  EXPECT_TRUE(!c.ordered && c.complete && c.consistent);
  c = paper_claim(FilterKind::kAd1, Scenario::kLossyConservative, false);
  EXPECT_TRUE(!c.ordered && !c.complete && c.consistent);
  c = paper_claim(FilterKind::kAd1, Scenario::kLossyAggressive, false);
  EXPECT_TRUE(!c.ordered && !c.complete && !c.consistent);
}

TEST(PaperClaims, Table2OrderedEverywhere) {
  for (Scenario s : kAllScenarios)
    EXPECT_TRUE(paper_claim(FilterKind::kAd2, s, false).ordered);
}

TEST(PaperClaims, Ad3Ad4VariantsConsistentEverywhere) {
  for (Scenario s : kAllScenarios) {
    EXPECT_TRUE(paper_claim(FilterKind::kAd3, s, false).consistent);
    EXPECT_TRUE(paper_claim(FilterKind::kAd4, s, false).consistent);
    EXPECT_TRUE(paper_claim(FilterKind::kAd4, s, false).ordered);
  }
}

TEST(PaperClaims, Table3AndAd6) {
  for (Scenario s : kAllScenarios) {
    const auto ad5 = paper_claim(FilterKind::kAd5, s, true);
    EXPECT_TRUE(ad5.ordered);
    EXPECT_FALSE(ad5.complete);
    const auto ad6 = paper_claim(FilterKind::kAd6, s, true);
    EXPECT_TRUE(ad6.ordered && ad6.consistent && !ad6.complete);
  }
  EXPECT_FALSE(
      paper_claim(FilterKind::kAd5, Scenario::kLossyAggressive, true)
          .consistent);
  EXPECT_TRUE(
      paper_claim(FilterKind::kAd5, Scenario::kLossyConservative, true)
          .consistent);
}

TEST(Sweep, DeterministicUnderSameSeed) {
  const auto spec = single_var_scenario(Scenario::kLossyAggressive);
  SweepParams params;
  params.runs = 10;
  params.updates_per_var = 20;
  params.seed = 77;
  const auto a = sweep_scenario(spec, FilterKind::kAd1, params);
  const auto b = sweep_scenario(spec, FilterKind::kAd1, params);
  EXPECT_EQ(a.ordered_violations, b.ordered_violations);
  EXPECT_EQ(a.complete_violations, b.complete_violations);
  EXPECT_EQ(a.consistent_violations, b.consistent_violations);
  EXPECT_EQ(a.runs, 10u);
}

TEST(Sweep, LosslessRowIsCleanUnderAd1) {
  const auto spec = single_var_scenario(Scenario::kLossless);
  SweepParams params;
  params.runs = 20;
  params.updates_per_var = 20;
  params.seed = 5;
  const auto counts = sweep_scenario(spec, FilterKind::kAd1, params);
  EXPECT_EQ(counts.ordered_violations, 0u);
  EXPECT_EQ(counts.complete_violations, 0u);
  EXPECT_EQ(counts.consistent_violations, 0u);
}

TEST(RenderTable, ContainsPaperAndMeasuredColumns) {
  PropertyCounts counts;
  counts.runs = 10;
  counts.consistent_violations = 3;
  const auto table = render_property_table(
      FilterKind::kAd1, false, {{Scenario::kLossyAggressive, counts}});
  const std::string s = table.render();
  EXPECT_NE(s.find("Lossy His. Aggr."), std::string::npos);
  EXPECT_NE(s.find("VIOLATED (3/10)"), std::string::npos);
  EXPECT_NE(s.find("agree?"), std::string::npos);
}

TEST(Agreement, RequiresWitnessesForNegativeCells) {
  // An X cell with zero observed violations must NOT count as agreement
  // (the sweep simply failed to find the counterexample).
  PaperClaim claim{false, false, false};
  PropertyCounts counts;
  counts.runs = 10;
  EXPECT_FALSE(agrees_with_paper(claim, counts));
  counts.ordered_violations = 1;
  counts.complete_violations = 1;
  counts.consistent_violations = 1;
  EXPECT_TRUE(agrees_with_paper(claim, counts));
}

}  // namespace
}  // namespace rcm::exp
