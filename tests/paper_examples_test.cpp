// End-to-end reproduction of every worked example and proof
// counterexample in the paper, with the run outcomes checked against the
// exact property checkers:
//
//   - the §1 sharp-price-drop motivating anomaly,
//   - Example 1 (§3): c1 with a lost update under AD-1,
//   - Example 2 (§4.2): AD-2 sacrificing completeness,
//   - Example 3 (§4.3): AD-3's Received/Missed conflict,
//   - Theorem 2/3/4 proof counterexamples (unorderedness, conservative
//     in/completeness, aggressive inconsistency),
//   - Theorem 10's two-variable counterexample,
//   - Lemma 6's incompleteness example under AD-5.
#include <gtest/gtest.h>

#include <memory>

#include "check/completeness.hpp"
#include "check/consistency.hpp"
#include "check/properties.hpp"
#include "core/builtin_conditions.hpp"
#include "core/displayer.hpp"
#include "core/evaluator.hpp"
#include "core/filters.hpp"
#include "trace/scripted.hpp"

namespace rcm {
namespace {

constexpr VarId kX = 0;
constexpr VarId kY = 1;

ConditionPtr c1() {
  return std::make_shared<const ThresholdCondition>("c1", kX, 3000.0);
}
ConditionPtr c2() {
  return std::make_shared<const RiseCondition>("c2", kX, 200.0,
                                               Triggering::kAggressive);
}
ConditionPtr c3() {
  return std::make_shared<const RiseCondition>("c3", kX, 200.0,
                                               Triggering::kConservative);
}
ConditionPtr cm() {
  return std::make_shared<const AbsDiffCondition>("cm", kX, kY, 100.0);
}

std::vector<Alert> feed_all(ConditionEvaluator& ce,
                            const std::vector<Update>& updates) {
  std::vector<Alert> out;
  for (const Update& u : updates)
    if (auto a = ce.on_update(u)) out.push_back(std::move(*a));
  return out;
}

check::SystemRun make_run(ConditionPtr cond,
                          std::vector<std::vector<Update>> inputs,
                          std::vector<Alert> displayed) {
  check::SystemRun run;
  run.condition = std::move(cond);
  run.ce_inputs = std::move(inputs);
  run.displayed = std::move(displayed);
  return run;
}

// ------------------------------------------------------ §1 motivation ----

TEST(IntroExample, SharpDropDoubleReportUnderAd1) {
  // Quotes 100, 50, 52. CE1 sees all three and alerts on 100->50.
  // CE2 misses the 50 and alerts on 100->52. AD-1 passes both: the user
  // believes there were two sharp drops. AD-3 would block the second.
  auto drop = std::make_shared<const RelativeDropCondition>("sharp", kX, 0.20);
  const auto u = trace::updates_of(trace::intro_stock_updates(kX));

  ConditionEvaluator ce1{drop, "CE1"};
  ConditionEvaluator ce2{drop, "CE2"};
  const auto a1 = feed_all(ce1, u);
  const auto a2 = feed_all(ce2, {u[0], u[2]});  // quote 2 lost
  ASSERT_EQ(a1.size(), 1u);
  ASSERT_EQ(a2.size(), 1u);
  EXPECT_EQ(a1[0].history_seqnos(kX), (std::vector<SeqNo>{1, 2}));
  EXPECT_EQ(a2[0].history_seqnos(kX), (std::vector<SeqNo>{1, 3}));

  Ad1DuplicateFilter ad1;
  EXPECT_TRUE(ad1.offer(a1[0]));
  EXPECT_TRUE(ad1.offer(a2[0]));  // "both will be reported to the user"

  // The displayed pair is formally inconsistent: a1 demands quote 2
  // received, a2 demands it missed.
  const auto run = make_run(drop, {u, {u[0], u[2]}}, {a1[0], a2[0]});
  const auto verdict = check::check_consistent(run);
  EXPECT_FALSE(verdict.consistent);

  // AD-3 blocks the conflicting second alert, restoring consistency.
  Ad3ConsistentFilter ad3;
  EXPECT_TRUE(ad3.offer(a1[0]));
  EXPECT_FALSE(ad3.offer(a2[0]));
}

// ------------------------------------------------------------ Example 1 ----

TEST(Example1, WalkthroughUnderAd1) {
  // U = <1x(2900), 2x(3100), 3x(3200)>; U1 = U; U2 = <1x, 3x>.
  const auto u = trace::updates_of(trace::example1_updates(kX));
  ConditionEvaluator ce1{c1(), "CE1"};
  ConditionEvaluator ce2{c1(), "CE2"};
  const auto a_seq1 = feed_all(ce1, u);
  const auto a_seq2 = feed_all(ce2, {u[0], u[2]});
  ASSERT_EQ(a_seq1.size(), 2u);  // A1 = <a1, a2>, on 2x and 3x
  ASSERT_EQ(a_seq2.size(), 1u);  // A2 = <a3>, on 3x

  // Arrival order a1, a3, a2: "we will get A = <a1, a3>" — a2 is a
  // duplicate of a3 (identical degree-1 history <3x>).
  AlertDisplayer ad{std::make_unique<Ad1DuplicateFilter>()};
  EXPECT_TRUE(ad.on_alert(a_seq1[0]));   // a1 (2x)
  EXPECT_TRUE(ad.on_alert(a_seq2[0]));   // a3 (3x)
  EXPECT_FALSE(ad.on_alert(a_seq1[1]));  // a2 filtered as duplicate
  ASSERT_EQ(ad.displayed().size(), 2u);
  EXPECT_EQ(ad.displayed()[0].seqno(kX), 2);
  EXPECT_EQ(ad.displayed()[1].seqno(kX), 3);

  // Non-historical lossy scenario: complete and consistent (Theorem 2),
  // and this particular interleaving also happens to be ordered.
  const auto run =
      make_run(c1(), {u, {u[0], u[2]}}, ad.displayed());
  const auto report = check::check_run(run);
  EXPECT_EQ(report.complete, check::Verdict::kHolds);
  EXPECT_EQ(report.consistent, check::Verdict::kHolds);
  EXPECT_EQ(report.ordered, check::Verdict::kHolds);
}

// ------------------------------------------------------------ Example 2 ----

TEST(Example2, Ad2SacrificesCompleteness) {
  // U1 = <1x(3100)>, U2 = <2x(3200)>; a2 arrives before a1.
  const std::vector<Update> u1 = {{kX, 1, 3100.0}};
  const std::vector<Update> u2 = {{kX, 2, 3200.0}};
  ConditionEvaluator ce1{c1(), "CE1"};
  ConditionEvaluator ce2{c1(), "CE2"};
  const auto a1 = feed_all(ce1, u1);
  const auto a2 = feed_all(ce2, u2);
  ASSERT_EQ(a1.size(), 1u);
  ASSERT_EQ(a2.size(), 1u);

  AlertDisplayer ad{std::make_unique<Ad2OrderedFilter>(kX)};
  EXPECT_TRUE(ad.on_alert(a2[0]));
  EXPECT_FALSE(ad.on_alert(a1[0]));  // "a1 will be filtered out"

  // T(U1 ⊔ U2) = <a1, a2> has two alerts: the system is incomplete...
  const auto run = make_run(c1(), {u1, u2}, ad.displayed());
  EXPECT_EQ(check::check_complete(run), check::Verdict::kViolated);
  // ...but ordered and consistent.
  EXPECT_TRUE(check::check_ordered(run.displayed, {kX}));
  EXPECT_TRUE(check::check_consistent(run).consistent);

  // Under AD-1 the same arrivals would all display: complete but
  // unordered (the Theorem 2 trade-off).
  AlertDisplayer ad1{std::make_unique<Ad1DuplicateFilter>()};
  (void)ad1.on_alert(a2[0]);
  (void)ad1.on_alert(a1[0]);
  const auto run1 = make_run(c1(), {u1, u2}, ad1.displayed());
  EXPECT_EQ(check::check_complete(run1), check::Verdict::kHolds);
  EXPECT_FALSE(check::check_ordered(run1.displayed, {kX}));
}

// ------------------------------------------------------------ Example 3 ----

TEST(Example3, Ad3ConflictDetection) {
  // Covered at the filter level in filters_test; here end-to-end with
  // real CEs and the degree-2 aggressive condition.
  ConditionEvaluator ce1{c2(), "CE1"};
  ConditionEvaluator ce2{c2(), "CE2"};
  // CE1 receives 1(100), 3(400): alert on window {1,3} (missed 2).
  const auto a1 = feed_all(ce1, {{kX, 1, 100.0}, {kX, 3, 400.0}});
  // CE2 receives 2(150), 3(400): alert on window {2,3}.
  const auto a2 = feed_all(ce2, {{kX, 2, 150.0}, {kX, 3, 400.0}});
  ASSERT_EQ(a1.size(), 1u);
  ASSERT_EQ(a2.size(), 1u);

  Ad3ConsistentFilter ad3;
  EXPECT_TRUE(ad3.offer(a1[0]));
  EXPECT_FALSE(ad3.offer(a2[0]));  // 2 already in Missed
}

// ----------------------------------------------- Theorem 2 counterexample ----

TEST(Theorem2Counterexample, NonHistoricalUnordered) {
  // U = <1(3100), 2(3500)>; U1 = U, U2 = <2>; alert 2 from CE2 arrives
  // first: A = <2, 1> is unordered but complete.
  const std::vector<Update> u1 = {{kX, 1, 3100.0}, {kX, 2, 3500.0}};
  const std::vector<Update> u2 = {{kX, 2, 3500.0}};
  ConditionEvaluator ce1{c1(), "CE1"};
  ConditionEvaluator ce2{c1(), "CE2"};
  const auto alerts1 = feed_all(ce1, u1);
  const auto alerts2 = feed_all(ce2, u2);
  ASSERT_EQ(alerts1.size(), 2u);
  ASSERT_EQ(alerts2.size(), 1u);

  AlertDisplayer ad{std::make_unique<Ad1DuplicateFilter>()};
  (void)ad.on_alert(alerts2[0]);  // alert 2 first
  (void)ad.on_alert(alerts1[0]);  // alert 1
  (void)ad.on_alert(alerts1[1]);  // duplicate of alert 2
  ASSERT_EQ(ad.displayed().size(), 2u);

  const auto run = make_run(c1(), {u1, u2}, ad.displayed());
  const auto report = check::check_run(run);
  EXPECT_EQ(report.ordered, check::Verdict::kViolated);
  EXPECT_EQ(report.complete, check::Verdict::kHolds);
  EXPECT_EQ(report.consistent, check::Verdict::kHolds);
}

// ----------------------------------------------- Theorem 3 counterexample ----

TEST(Theorem3Counterexample, ConservativeIncompleteUnordered) {
  // c3 with U1 = <1(1000), 2(1500)>, U2 = <3(2000), 4(2500)>:
  // A1 = <2>, A2 = <4>; T(U1 ⊔ U2) = <2, 3, 4>.
  const auto u1 = trace::updates_of(trace::theorem3_u1(kX));
  const auto u2 = trace::updates_of(trace::theorem3_u2(kX));
  ConditionEvaluator ce1{c3(), "CE1"};
  ConditionEvaluator ce2{c3(), "CE2"};
  const auto alerts1 = feed_all(ce1, u1);
  const auto alerts2 = feed_all(ce2, u2);
  ASSERT_EQ(alerts1.size(), 1u);
  EXPECT_EQ(alerts1[0].seqno(kX), 2);
  ASSERT_EQ(alerts2.size(), 1u);
  EXPECT_EQ(alerts2[0].seqno(kX), 4);

  // Arrival order <4, 2>: unordered and incomplete, but consistent.
  AlertDisplayer ad{std::make_unique<Ad1DuplicateFilter>()};
  (void)ad.on_alert(alerts2[0]);
  (void)ad.on_alert(alerts1[0]);
  const auto run = make_run(c3(), {u1, u2}, ad.displayed());
  const auto report = check::check_run(run);
  EXPECT_EQ(report.ordered, check::Verdict::kViolated);
  EXPECT_EQ(report.complete, check::Verdict::kViolated);
  EXPECT_EQ(report.consistent, check::Verdict::kHolds);
}

// ----------------------------------------------- Theorem 4 counterexample ----

TEST(Theorem4Counterexample, AggressiveInconsistent) {
  // c2 with U = <1(400), 2(700), 3(720)>; U1 = U, U2 = <1, 3>.
  // A1 = <2> (700-400 > 200); A2 = <3> (720-400 > 200, across the gap).
  // No U' can contain update 2 (needed by alert 2) and miss it (needed
  // by alert 3): inconsistent.
  const auto u = trace::updates_of(trace::theorem4_updates(kX));
  const std::vector<Update> u2 = {u[0], u[2]};
  ConditionEvaluator ce1{c2(), "CE1"};
  ConditionEvaluator ce2{c2(), "CE2"};
  const auto alerts1 = feed_all(ce1, u);
  const auto alerts2 = feed_all(ce2, u2);
  ASSERT_EQ(alerts1.size(), 1u);
  EXPECT_EQ(alerts1[0].seqno(kX), 2);
  ASSERT_EQ(alerts2.size(), 1u);
  EXPECT_EQ(alerts2[0].seqno(kX), 3);

  AlertDisplayer ad{std::make_unique<Ad1DuplicateFilter>()};
  (void)ad.on_alert(alerts1[0]);
  (void)ad.on_alert(alerts2[0]);
  ASSERT_EQ(ad.displayed().size(), 2u);  // AD-1 passes both

  const auto run = make_run(c2(), {u, u2}, ad.displayed());
  const auto verdict = check::check_consistent(run);
  EXPECT_FALSE(verdict.consistent);
  EXPECT_NE(verdict.reason.find("both received and missed"),
            std::string::npos);

  // AD-4 (and AD-3) restore consistency by blocking the second alert.
  Ad4OrderedConsistentFilter ad4{kX};
  EXPECT_TRUE(ad4.offer(alerts1[0]));
  EXPECT_FALSE(ad4.offer(alerts2[0]));
}

// ---------------------------------------------- Theorem 10 counterexample ----

TEST(Theorem10Counterexample, MultiVariableAd1Breaks) {
  // Lossless links; CE1 sees <1x,2x,1y,2y>, CE2 sees <1y,2y,1x,2x>.
  const auto ux = trace::updates_of(trace::theorem10_ux(kX));
  const auto uy = trace::updates_of(trace::theorem10_uy(kY));
  ConditionEvaluator ce1{cm(), "CE1"};
  ConditionEvaluator ce2{cm(), "CE2"};
  const auto alerts1 = feed_all(ce1, {ux[0], ux[1], uy[0], uy[1]});
  const auto alerts2 = feed_all(ce2, {uy[0], uy[1], ux[0], ux[1]});
  // A1 = <a(2x,1y)>: |1200-1050| = 150 > 100 when 1y arrives after 2x...
  ASSERT_EQ(alerts1.size(), 1u);
  EXPECT_EQ(alerts1[0].seqno(kX), 2);
  EXPECT_EQ(alerts1[0].seqno(kY), 1);
  // A2 = <a(1x,2y)>: |1000-1150| = 150 > 100.
  ASSERT_EQ(alerts2.size(), 1u);
  EXPECT_EQ(alerts2[0].seqno(kX), 1);
  EXPECT_EQ(alerts2[0].seqno(kY), 2);

  AlertDisplayer ad{std::make_unique<Ad1DuplicateFilter>()};
  (void)ad.on_alert(alerts1[0]);
  (void)ad.on_alert(alerts2[0]);
  ASSERT_EQ(ad.displayed().size(), 2u);

  check::SystemRun run;
  run.condition = cm();
  run.ce_inputs = {{ux[0], ux[1], uy[0], uy[1]}, {uy[0], uy[1], ux[0], ux[1]}};
  run.displayed = ad.displayed();

  // "such a system is unordered ... also inconsistent" (and incomplete).
  EXPECT_FALSE(check::check_ordered(run.displayed, {kX, kY}));
  const auto verdict = check::check_consistent(run);
  EXPECT_FALSE(verdict.consistent);
  EXPECT_NE(verdict.reason.find("cycle"), std::string::npos);
  EXPECT_EQ(check::check_complete(run), check::Verdict::kViolated);

  // AD-5 lets only the first of the two through (whichever arrives
  // first), restoring orderedness.
  Ad5MultiOrderedFilter ad5{{kX, kY}};
  EXPECT_TRUE(ad5.offer(alerts1[0]));
  EXPECT_FALSE(ad5.offer(alerts2[0]));
}

// --------------------------------------------------- Lemma 6 style case ----

TEST(Lemma6Counterexample, Ad5Incomplete) {
  // Condition satisfied only near the threshold: use cm (|x-y| > 100)
  // with values crafted so exactly the windows (8x,2y), (8x,3y), (8x,4y)
  // trigger. x8 = 1000; y2 = 880, y3 = 890, y4 = 895 (all diffs > 100);
  // y5 = 950 (diff 50: quiet). Earlier updates keep |x-y| <= 100.
  const std::vector<Update> ux = {{kX, 7, 900.0}, {kX, 8, 1000.0},
                                  {kX, 9, 950.0}};
  const std::vector<Update> uy = {{kY, 2, 880.0}, {kY, 3, 890.0},
                                  {kY, 4, 895.0}, {kY, 5, 950.0}};

  // CE1 sees <8x, 2y, 9x, 3y, 4y, ...> minus what it missed; per the
  // lemma's spirit we hand each CE an interleaving directly.
  ConditionEvaluator ce1{cm(), "CE1"};
  const auto alerts1 =
      feed_all(ce1, {ux[1], uy[0], ux[2], uy[1], uy[2], uy[3]});
  // a(8x,2y) fires, then 9x makes |950-880| = 70: quiet afterwards.
  ASSERT_FALSE(alerts1.empty());
  EXPECT_EQ(alerts1[0].seqno(kX), 8);
  EXPECT_EQ(alerts1[0].seqno(kY), 2);

  ConditionEvaluator ce2{cm(), "CE2"};
  const auto alerts2 =
      feed_all(ce2, {uy[0], uy[1], ux[0], uy[2], ux[1], uy[3], ux[2]});
  // 7x vs 2y/3y: |900-880|, |900-890| small; 4y: |900-895| small;
  // 8x vs 4y: 105 > 100 -> a(8x,4y); 5y: |1000-950| = 50 quiet.
  ASSERT_FALSE(alerts2.empty());
  EXPECT_EQ(alerts2[0].seqno(kX), 8);
  EXPECT_EQ(alerts2[0].seqno(kY), 4);

  AlertDisplayer ad{std::make_unique<Ad5MultiOrderedFilter>(
      std::vector<VarId>{kX, kY})};
  (void)ad.on_alert(alerts1[0]);
  (void)ad.on_alert(alerts2[0]);
  ASSERT_EQ(ad.displayed().size(), 2u);  // AD-5 passes both (no inversion)

  check::SystemRun run;
  run.condition = cm();
  run.ce_inputs = {{ux[1], uy[0], ux[2], uy[1], uy[2], uy[3]},
                   {uy[0], uy[1], ux[0], uy[2], ux[1], uy[3], ux[2]}};
  run.displayed = ad.displayed();

  // Any interleaving generating both displayed alerts also generates
  // a(8x,3y), which was not displayed: incomplete. But consistent.
  EXPECT_EQ(check::check_complete(run), check::Verdict::kViolated);
  EXPECT_TRUE(check::check_consistent(run).consistent);
  EXPECT_TRUE(check::check_ordered(run.displayed, {kX, kY}));
}

}  // namespace
}  // namespace rcm
