// Durable CE recovery: store::FileUpdateLog composed with
// wire/snapshot.hpp checkpoints (service::DurableReplica).
//
// The load-bearing property, pinned byte-by-byte here: a crash that
// truncates the WAL at ANY byte offset recovers a strict prefix of the
// appended updates, and checkpoint + WAL-prefix replay reconstructs
// exactly the evaluator state that accepted those updates (snapshot
// bytes are compared, so equality is total, not sampled).
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <vector>

#include "core/evaluator.hpp"
#include "service/durable_replica.hpp"
#include "store/file_log.hpp"
#include "swarm/spec.hpp"
#include "wire/codec.hpp"
#include "wire/frame.hpp"
#include "wire/snapshot.hpp"

namespace rcm::service {
namespace {

std::filesystem::path fresh_dir(const std::string& name) {
  const std::filesystem::path dir =
      std::filesystem::temp_directory_path() / ("rcm_durable_" + name);
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir;
}

ConditionPtr threshold_condition() {
  return swarm::build_condition(swarm::ConditionKind::kThreshold, 50.0);
}

ConditionPtr aggressive_condition() {
  return swarm::build_condition(swarm::ConditionKind::kRiseAggressive, 10.0);
}

std::vector<Update> make_updates(SeqNo first, std::size_t count) {
  std::vector<Update> updates;
  for (std::size_t i = 0; i < count; ++i) {
    // Values alternate around the thresholds so alerts actually fire.
    updates.push_back(Update{0, first + static_cast<SeqNo>(i),
                             (i % 2 == 0) ? 80.0 : 20.0});
  }
  return updates;
}

std::vector<std::uint8_t> read_file(const std::filesystem::path& path) {
  std::ifstream in{path, std::ios::binary};
  return std::vector<std::uint8_t>{std::istreambuf_iterator<char>(in),
                                   std::istreambuf_iterator<char>()};
}

void write_file(const std::filesystem::path& path,
                std::span<const std::uint8_t> bytes) {
  std::ofstream out{path, std::ios::binary | std::ios::trunc};
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
}

/// Snapshot bytes of the state an evaluator reaches replaying `updates`.
std::vector<std::uint8_t> reference_state(const ConditionPtr& cond,
                                          const std::vector<Update>& updates) {
  ConditionEvaluator ce{cond};
  for (const Update& u : updates) ce.on_update(u);
  return wire::encode_evaluator_state(ce);
}

TEST(FileUpdateLog, TruncateAtEveryByteOffsetRecoversStrictPrefix) {
  const auto dir = fresh_dir("every_offset");
  const std::vector<Update> updates = make_updates(1, 5);

  store::FileUpdateLog log{dir / "u.wal"};
  std::vector<std::size_t> frame_ends;  // cumulative byte size per record
  // A fresh WAL starts with the framed 'V' format header record.
  std::size_t total =
      wire::frame(store::encode_log_header(store::kUpdateLogFormatId,
                                           store::kLogFormatVersion))
          .size();
  for (const Update& u : updates) {
    log.append(u);
    total += wire::frame(wire::encode_update(u)).size();
    frame_ends.push_back(total);
  }
  const std::vector<std::uint8_t> bytes = read_file(dir / "u.wal");
  ASSERT_EQ(bytes.size(), total);

  for (std::size_t cut = 0; cut <= bytes.size(); ++cut) {
    const std::filesystem::path truncated = dir / "truncated.wal";
    write_file(truncated,
               std::span<const std::uint8_t>{bytes.data(), cut});
    const store::RecoveredUpdates rec = store::recover_updates(truncated);

    // Exactly the records whose frames are fully contained in the cut.
    std::size_t expect = 0;
    while (expect < frame_ends.size() && frame_ends[expect] <= cut)
      ++expect;
    ASSERT_EQ(rec.updates.size(), expect) << "cut at byte " << cut;
    for (std::size_t k = 0; k < expect; ++k) {
      EXPECT_EQ(rec.updates[k].seqno, updates[k].seqno);
      EXPECT_EQ(rec.updates[k].value, updates[k].value);
    }
  }
}

TEST(DurableReplica, CheckpointPlusWalTruncatedAtEveryOffsetIsAPrefixState) {
  const auto base = fresh_dir("ckpt_plus_wal");
  const ConditionPtr cond = aggressive_condition();

  // Build the durable files: 6 checkpointed updates + 5 WAL updates.
  const std::vector<Update> checkpointed = make_updates(1, 6);
  const std::vector<Update> walled = make_updates(7, 5);
  DurabilityOptions opts;
  opts.dir = base;
  opts.checkpoint_every = 0;  // manual only
  {
    DurableReplica replica{cond, 0, opts};
    for (const Update& u : checkpointed) replica.on_update(u);
    replica.checkpoint();
    for (const Update& u : walled) replica.on_update(u);
  }
  const auto wal_bytes = read_file(DurableReplica::wal_path(base, 0));
  const auto ckpt_bytes =
      read_file(DurableReplica::checkpoint_path(base, 0));
  ASSERT_FALSE(wal_bytes.empty());
  ASSERT_FALSE(ckpt_bytes.empty());

  std::vector<std::size_t> frame_ends;
  // truncate() rewrites the framed 'V' format header before the records.
  std::size_t total =
      wire::frame(store::encode_log_header(store::kUpdateLogFormatId,
                                           store::kLogFormatVersion))
          .size();
  for (const Update& u : walled) {
    total += wire::frame(wire::encode_update(u)).size();
    frame_ends.push_back(total);
  }
  ASSERT_EQ(total, wal_bytes.size());

  for (std::size_t cut = 0; cut <= wal_bytes.size(); ++cut) {
    const auto dir = fresh_dir("ckpt_plus_wal_cut");
    write_file(DurableReplica::checkpoint_path(dir, 0), ckpt_bytes);
    write_file(DurableReplica::wal_path(dir, 0),
               std::span<const std::uint8_t>{wal_bytes.data(), cut});

    std::size_t prefix = 0;
    while (prefix < frame_ends.size() && frame_ends[prefix] <= cut)
      ++prefix;
    std::vector<Update> expect = checkpointed;
    expect.insert(expect.end(), walled.begin(),
                  walled.begin() + static_cast<std::ptrdiff_t>(prefix));

    DurabilityOptions cut_opts = opts;
    cut_opts.dir = dir;
    DurableReplica recovered{cond, 0, cut_opts};
    EXPECT_TRUE(recovered.recovery().had_checkpoint);
    EXPECT_EQ(recovered.recovery().wal_replayed, prefix)
        << "cut at byte " << cut;
    EXPECT_EQ(wire::encode_evaluator_state(recovered.evaluator()),
              reference_state(cond, expect))
        << "cut at byte " << cut;
  }
}

TEST(DurableReplica, TornCheckpointFallsBackToWalOnlyRecovery) {
  const ConditionPtr cond = threshold_condition();
  const std::vector<Update> updates = make_updates(1, 4);
  const auto state = reference_state(cond, updates);

  // Two failure shapes: a checkpoint torn mid-write (incomplete tail
  // frame) and a bit-flipped one (complete frame, CRC mismatch). Both
  // must be ignored in favor of WAL-only recovery.
  for (const bool bit_flip : {false, true}) {
    const auto dir = fresh_dir(bit_flip ? "flipped_ckpt" : "torn_ckpt");
    DurabilityOptions opts;
    opts.dir = dir;
    opts.checkpoint_every = 0;
    {
      DurableReplica replica{cond, 0, opts};
      for (const Update& u : updates) replica.on_update(u);
      // No checkpoint: everything is in the WAL.
    }
    auto bad = wire::frame(state);
    if (bit_flip)
      bad[bad.size() / 2] ^= 0x40;
    else
      bad.resize(bad.size() / 2);
    write_file(DurableReplica::checkpoint_path(dir, 0), bad);

    DurableReplica recovered{cond, 0, opts};
    EXPECT_FALSE(recovered.recovery().had_checkpoint);
    if (bit_flip) {
      EXPECT_GE(recovered.recovery().corrupt_frames, 1u);
    }
    EXPECT_EQ(recovered.recovery().wal_replayed, updates.size());
    EXPECT_EQ(wire::encode_evaluator_state(recovered.evaluator()), state);
  }
}

TEST(DurableReplica, StaleWalAfterCheckpointReplaysIdempotently) {
  // Crash window between checkpoint rename and WAL truncate: the WAL
  // still holds updates the checkpoint already covers. Replay must drop
  // them via the recovered watermarks.
  const auto dir = fresh_dir("stale_wal");
  const ConditionPtr cond = aggressive_condition();
  const std::vector<Update> updates = make_updates(1, 6);
  DurabilityOptions opts;
  opts.dir = dir;
  opts.checkpoint_every = 0;
  {
    DurableReplica replica{cond, 0, opts};
    for (const Update& u : updates) replica.on_update(u);
    replica.checkpoint();
  }
  {
    // Re-append the already-checkpointed tail, simulating the un-truncated
    // WAL the crash would have left behind.
    store::FileUpdateLog wal{DurableReplica::wal_path(dir, 0)};
    for (const Update& u : updates) wal.append(u);
  }
  DurableReplica recovered{cond, 0, opts};
  EXPECT_TRUE(recovered.recovery().had_checkpoint);
  EXPECT_EQ(recovered.recovery().wal_replayed, 0u);
  EXPECT_EQ(wire::encode_evaluator_state(recovered.evaluator()),
            reference_state(cond, updates));
}

TEST(DurableReplica, RecoveryCompactsSoNextStartIsCheckpointOnly) {
  const auto dir = fresh_dir("compact");
  const ConditionPtr cond = threshold_condition();
  DurabilityOptions opts;
  opts.dir = dir;
  opts.checkpoint_every = 0;
  {
    DurableReplica replica{cond, 0, opts};
    for (const Update& u : make_updates(1, 5)) replica.on_update(u);
  }
  {
    DurableReplica first{cond, 0, opts};
    EXPECT_EQ(first.recovery().wal_replayed, 5u);
  }
  DurableReplica second{cond, 0, opts};
  EXPECT_TRUE(second.recovery().had_checkpoint);
  EXPECT_EQ(second.recovery().wal_replayed, 0u);
}

TEST(DurableReplica, JournalAccumulatesAcrossIncarnations) {
  const auto dir = fresh_dir("journal");
  const ConditionPtr cond = threshold_condition();
  DurabilityOptions opts;
  opts.dir = dir;
  opts.checkpoint_every = 2;
  opts.record_journal = true;
  {
    DurableReplica replica{cond, 0, opts};
    for (const Update& u : make_updates(1, 4)) replica.on_update(u);
  }
  {
    DurableReplica replica{cond, 0, opts};
    // Stale resend is NOT journaled; fresh updates are.
    replica.on_update(Update{0, 2, 99.0});
    for (const Update& u : make_updates(5, 3)) replica.on_update(u);
  }
  const std::vector<Update> journal = DurableReplica::read_journal(dir, 0);
  ASSERT_EQ(journal.size(), 7u);
  for (std::size_t i = 0; i < journal.size(); ++i)
    EXPECT_EQ(journal[i].seqno, static_cast<SeqNo>(i + 1));
}

TEST(DurableReplica, AutoCheckpointEveryNAcceptedUpdates) {
  const auto dir = fresh_dir("auto_ckpt");
  const ConditionPtr cond = threshold_condition();
  DurabilityOptions opts;
  opts.dir = dir;
  opts.checkpoint_every = 3;
  DurableReplica replica{cond, 0, opts};
  for (const Update& u : make_updates(1, 7)) replica.on_update(u);
  EXPECT_EQ(replica.checkpoints_taken(), 2u);
  EXPECT_EQ(replica.wal_records(), 1u);  // 7 = 3 + 3 + 1
}

}  // namespace
}  // namespace rcm::service
