// Tests for the discrete-event simulator: event ordering, the link model
// (in-order delivery, Bernoulli loss, delay bounds), node behaviour,
// whole-system runs, determinism and crash injection.
#include <gtest/gtest.h>

#include <memory>

#include "core/builtin_conditions.hpp"
#include "core/sequence.hpp"
#include "sim/link.hpp"
#include "sim/simulator.hpp"
#include "sim/system.hpp"
#include "trace/scripted.hpp"

namespace rcm::sim {
namespace {

constexpr VarId kX = 0;

ConditionPtr overheat(double t = 3000.0) {
  return std::make_shared<const ThresholdCondition>("hot", kX, t);
}

TEST(Simulator, ExecutesInTimestampOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.schedule_at(3.0, [&] { order.push_back(3); });
  sim.schedule_at(1.0, [&] { order.push_back(1); });
  sim.schedule_at(2.0, [&] { order.push_back(2); });
  EXPECT_EQ(sim.run(), 3u);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(Simulator, TiesBreakFifo) {
  Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i)
    sim.schedule_at(1.0, [&order, i] { order.push_back(i); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(Simulator, EventsMayScheduleEvents) {
  Simulator sim;
  int fired = 0;
  sim.schedule_at(1.0, [&] {
    ++fired;
    sim.schedule_after(1.0, [&] { ++fired; });
  });
  EXPECT_EQ(sim.run(), 2u);
  EXPECT_EQ(fired, 2);
  EXPECT_DOUBLE_EQ(sim.now(), 2.0);
}

TEST(Simulator, PastSchedulingClampsToNow) {
  Simulator sim;
  double when = -1.0;
  sim.schedule_at(5.0, [&] {
    sim.schedule_at(1.0, [&] { when = sim.now(); });  // in the past
  });
  sim.run();
  EXPECT_DOUBLE_EQ(when, 5.0);
}

TEST(Simulator, PastSchedulingDoesNotJumpTheNowQueue) {
  // A clamped action lands at now() but keeps its insertion order: actions
  // already queued at now() (and anything THEY chain at now()) run first.
  Simulator sim;
  std::vector<int> order;
  sim.schedule_at(5.0, [&] {
    sim.schedule_at(5.0, [&] { order.push_back(1); });  // already "at now"
    sim.schedule_at(0.0, [&] {                          // past -> clamped
      order.push_back(2);
      sim.schedule_at(2.0, [&] { order.push_back(3); });  // past again
    });
  });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(sim.now(), 5.0);  // clamping never rewinds time
}

TEST(Simulator, RunUntilLeavesFutureEventsQueued) {
  Simulator sim;
  int fired = 0;
  sim.schedule_at(1.0, [&] { ++fired; });
  sim.schedule_at(10.0, [&] { ++fired; });
  EXPECT_EQ(sim.run_until(5.0), 1u);
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(sim.pending(), 1u);
  EXPECT_DOUBLE_EQ(sim.now(), 5.0);
  sim.run();
  EXPECT_EQ(fired, 2);
}

TEST(Link, RejectsBadParameters) {
  Simulator sim;
  util::Rng rng{1};
  auto sink = [](const int&) {};
  EXPECT_THROW((Link<int>{sim, {0.1, 0.05, 0.0}, rng, sink}),
               std::invalid_argument);
  EXPECT_THROW((Link<int>{sim, {0.0, 0.1, 1.5}, rng, sink}),
               std::invalid_argument);
  EXPECT_THROW((Link<int>{sim, {0.0, 0.1, 0.0}, rng, nullptr}),
               std::invalid_argument);
}

TEST(Link, DeliversInOrderDespiteRandomDelays) {
  Simulator sim;
  std::vector<int> received;
  Link<int> link{sim,
                 {0.0, 10.0, 0.0},  // huge delay spread
                 util::Rng{7},
                 [&](const int& v) { received.push_back(v); }};
  for (int i = 0; i < 50; ++i)
    sim.schedule_at(0.01 * i, [&link, i] { link.send(i); });
  sim.run();
  ASSERT_EQ(received.size(), 50u);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(received[i], i);
  EXPECT_EQ(link.delivered(), 50u);
  EXPECT_EQ(link.dropped(), 0u);
}

TEST(Link, LossRateIsRespected) {
  Simulator sim;
  std::size_t received = 0;
  Link<int> link{sim,
                 {0.0, 0.1, 0.3},
                 util::Rng{11},
                 [&](const int&) { ++received; }};
  const int n = 20000;
  for (int i = 0; i < n; ++i) sim.schedule_at(0.0, [&link, i] { link.send(i); });
  sim.run();
  EXPECT_EQ(link.sent(), static_cast<std::size_t>(n));
  EXPECT_EQ(link.dropped() + link.delivered(), static_cast<std::size_t>(n));
  EXPECT_NEAR(static_cast<double>(link.dropped()) / n, 0.3, 0.02);
  EXPECT_EQ(received, link.delivered());
}

TEST(Link, LosslessDeliversEverything) {
  Simulator sim;
  std::size_t received = 0;
  Link<int> link{sim, {0.0, 0.1, 0.0}, util::Rng{3},
                 [&](const int&) { ++received; }};
  for (int i = 0; i < 1000; ++i)
    sim.schedule_at(0.0, [&link, i] { link.send(i); });
  sim.run();
  EXPECT_EQ(received, 1000u);
}

// ------------------------------------------------------- whole system ----

SystemConfig base_config(ConditionPtr cond, double loss,
                         std::size_t num_ces = 2, std::uint64_t seed = 5) {
  SystemConfig config;
  config.condition = std::move(cond);
  config.dm_traces = {trace::scripted(
      kX, {{1, 2900.0}, {2, 3100.0}, {3, 2950.0}, {4, 3200.0}, {5, 3050.0}})};
  config.num_ces = num_ces;
  config.front.loss = loss;
  config.filter = FilterKind::kAd1;
  config.seed = seed;
  return config;
}

TEST(RunSystem, ValidatesConfig) {
  EXPECT_THROW((void)run_system(SystemConfig{}), std::invalid_argument);

  auto config = base_config(overheat(), 0.0);
  config.num_ces = 0;
  EXPECT_THROW((void)run_system(config), std::invalid_argument);

  config = base_config(overheat(), 0.0);
  config.back.loss = 0.1;
  EXPECT_THROW((void)run_system(config), std::invalid_argument);

  config = base_config(overheat(), 0.0);
  config.dm_traces.clear();
  EXPECT_THROW((void)run_system(config), std::invalid_argument);
}

TEST(RunSystem, LosslessNonReplicatedMatchesReferenceT) {
  auto config = base_config(overheat(), 0.0, /*num_ces=*/1);
  config.filter = FilterKind::kPassAll;
  const RunResult r = run_system(config);
  ASSERT_EQ(r.ce_inputs.size(), 1u);
  EXPECT_EQ(r.ce_inputs[0].size(), 5u);  // nothing lost
  const auto ref = evaluate_trace(config.condition, r.ce_inputs[0]);
  ASSERT_EQ(r.displayed.size(), ref.size());
  for (std::size_t i = 0; i < ref.size(); ++i)
    EXPECT_EQ(r.displayed[i].key(), ref[i].key());
  EXPECT_EQ(r.displayed.size(), 3u);  // updates 2, 4, 5 are over 3000
}

TEST(RunSystem, ReplicatedLosslessDisplaysEachAlertOnce) {
  const RunResult r = run_system(base_config(overheat(), 0.0));
  EXPECT_EQ(r.arrived.size(), 6u);    // 3 alerts from each CE
  EXPECT_EQ(r.displayed.size(), 3u);  // AD-1 dedups the copies
}

TEST(RunSystem, SameSeedSameResult) {
  const RunResult a = run_system(base_config(overheat(), 0.3, 2, 99));
  const RunResult b = run_system(base_config(overheat(), 0.3, 2, 99));
  ASSERT_EQ(a.displayed.size(), b.displayed.size());
  for (std::size_t i = 0; i < a.displayed.size(); ++i)
    EXPECT_EQ(a.displayed[i].key(), b.displayed[i].key());
  EXPECT_EQ(a.ce_inputs, b.ce_inputs);
  EXPECT_EQ(a.front_messages_dropped, b.front_messages_dropped);
}

TEST(RunSystem, DifferentSeedsDiffer) {
  std::size_t distinct = 0;
  const RunResult a = run_system(base_config(overheat(), 0.4, 2, 1));
  for (std::uint64_t seed = 2; seed < 8; ++seed) {
    const RunResult b = run_system(base_config(overheat(), 0.4, 2, seed));
    if (a.ce_inputs != b.ce_inputs) ++distinct;
  }
  EXPECT_GT(distinct, 0u);
}

TEST(RunSystem, LossActuallyDropsUpdates) {
  auto config = base_config(overheat(), 0.5, 2, 17);
  config.dm_traces = {trace::scripted(kX, [] {
                        std::vector<std::pair<SeqNo, double>> pts;
                        for (SeqNo s = 1; s <= 100; ++s)
                          pts.emplace_back(s, 2000.0);
                        return pts;
                      }())};
  const RunResult r = run_system(config);
  EXPECT_GT(r.front_messages_dropped, 50u);
  EXPECT_LT(r.ce_inputs[0].size(), 100u);
  EXPECT_LT(r.ce_inputs[1].size(), 100u);
}

TEST(RunSystem, CeInputsAreSubsequencesOfEmitted) {
  const RunResult r = run_system(base_config(overheat(), 0.4, 3, 23));
  const auto emitted = project(
      std::span<const Update>{r.dm_emitted[0]}, kX);
  for (const auto& input : r.ce_inputs) {
    const auto seqs = project(std::span<const Update>{input}, kX);
    EXPECT_TRUE(is_subsequence(seqs, emitted));
  }
}

TEST(RunSystem, CrashWindowLosesUpdates) {
  auto config = base_config(overheat(), 0.0, 2);
  // CE1 down between t=1.5 and t=3.5: misses updates 2 and 3.
  config.ce_crashes = {{CrashWindow{1.5, 3.5, true}}};
  const RunResult r = run_system(config);
  ASSERT_EQ(r.ce_inputs.size(), 2u);
  const auto seqs0 = project(std::span<const Update>{r.ce_inputs[0]}, kX);
  EXPECT_EQ(seqs0, (std::vector<SeqNo>{1, 4, 5}));
  const auto seqs1 = project(std::span<const Update>{r.ce_inputs[1]}, kX);
  EXPECT_EQ(seqs1, (std::vector<SeqNo>{1, 2, 3, 4, 5}));
}

TEST(RunSystem, NonReplicatedCrashMissesAlerts) {
  // The availability motivation: with one CE crashed during the alert
  // window, the user gets nothing; with two CEs the alert still arrives.
  auto single = base_config(overheat(), 0.0, 1);
  single.ce_crashes = {{CrashWindow{0.5, 10.0, true}}};
  EXPECT_TRUE(run_system(single).displayed.empty());

  auto replicated = base_config(overheat(), 0.0, 2);
  replicated.ce_crashes = {{CrashWindow{0.5, 10.0, true}}};
  EXPECT_FALSE(run_system(replicated).displayed.empty());
}

TEST(RunSystem, MultiDmSystemRuns) {
  auto cm = std::make_shared<const AbsDiffCondition>("cm", 0, 1, 100.0);
  SystemConfig config;
  config.condition = cm;
  config.dm_traces = {trace::theorem10_ux(0), trace::theorem10_uy(1)};
  config.num_ces = 2;
  config.filter = FilterKind::kAd5;
  config.seed = 3;
  const RunResult r = run_system(config);
  EXPECT_EQ(r.dm_emitted.size(), 2u);
  // Whatever happened, AD-5 output must be ordered in both variables.
  EXPECT_TRUE(check::check_ordered(r.displayed, {0, 1}));
}

TEST(RunResult, AsSystemRunPackagesFields) {
  const auto config = base_config(overheat(), 0.2);
  const RunResult r = run_system(config);
  const check::SystemRun run = r.as_system_run(config.condition);
  EXPECT_EQ(run.ce_inputs, r.ce_inputs);
  EXPECT_EQ(run.displayed.size(), r.displayed.size());
  EXPECT_EQ(run.condition, config.condition);
}

}  // namespace
}  // namespace rcm::sim
