// Unit tests for the AD filtering algorithms AD-1 .. AD-6 plus the
// trivial reference filters, exercising each algorithm's pseudo-code
// behaviour from Appendix A, including the worked examples in §3/§4.
#include <gtest/gtest.h>

#include <memory>

#include "core/builtin_conditions.hpp"
#include "core/displayer.hpp"
#include "core/evaluator.hpp"
#include "core/filters.hpp"

namespace rcm {
namespace {

/// Builds a single-variable alert with the given history window seqnos.
Alert alert1(std::initializer_list<SeqNo> window, VarId var = 0,
             const std::string& cond = "c") {
  Alert a;
  a.cond = cond;
  std::vector<Update> w;
  for (SeqNo s : window) w.push_back({var, s, static_cast<double>(s)});
  a.histories.emplace(var, std::move(w));
  return a;
}

/// Builds a two-variable alert (degree 1 per variable) a(ix, jy).
Alert alert2(SeqNo x, SeqNo y, const std::string& cond = "c") {
  Alert a;
  a.cond = cond;
  a.histories.emplace(0, std::vector<Update>{{0, x, 0.0}});
  a.histories.emplace(1, std::vector<Update>{{1, y, 0.0}});
  return a;
}

// ----------------------------------------------------------- trivial ----

TEST(TrivialFilters, PassAllAndDropAll) {
  PassAllFilter pass;
  DropAllFilter drop;
  const Alert a = alert1({1});
  EXPECT_TRUE(pass.offer(a));
  EXPECT_TRUE(pass.offer(a));  // even duplicates
  EXPECT_FALSE(drop.offer(a));
  EXPECT_EQ(pass.name(), "pass");
  EXPECT_EQ(drop.name(), "drop");
}

// -------------------------------------------------------------- AD-1 ----

TEST(Ad1, DiscardsExactDuplicates) {
  Ad1DuplicateFilter f;
  EXPECT_TRUE(f.offer(alert1({2, 3})));
  EXPECT_FALSE(f.offer(alert1({2, 3})));  // identical history set
  EXPECT_TRUE(f.offer(alert1({3, 4})));
}

TEST(Ad1, DifferentHistoriesAreNotDuplicates) {
  // §3: a1 triggered on {2,3}, a2 on {1,3} — "Algorithm AD-1 will not
  // recognize them as duplicates... both will be reported."
  Ad1DuplicateFilter f;
  EXPECT_TRUE(f.offer(alert1({2, 3})));
  EXPECT_TRUE(f.offer(alert1({1, 3})));
}

TEST(Ad1, DifferentConditionNamesAreNotDuplicates) {
  Ad1DuplicateFilter f;
  EXPECT_TRUE(f.offer(alert1({1}, 0, "A")));
  EXPECT_TRUE(f.offer(alert1({1}, 0, "B")));
}

TEST(Ad1, ResetForgets) {
  Ad1DuplicateFilter f;
  EXPECT_TRUE(f.offer(alert1({1})));
  f.reset();
  EXPECT_TRUE(f.offer(alert1({1})));
}

// -------------------------------------------------------------- AD-2 ----

TEST(Ad2, DiscardsOutOfOrderAndDuplicates) {
  Ad2OrderedFilter f{0};
  EXPECT_TRUE(f.offer(alert1({3})));
  EXPECT_FALSE(f.offer(alert1({2})));  // out of order
  EXPECT_FALSE(f.offer(alert1({3})));  // equal seqno
  EXPECT_TRUE(f.offer(alert1({4})));
}

TEST(Ad2, Example2FromPaper) {
  // A1 = <a1(1)>, A2 = <a2(2)>; a2 arrives first, a1 is filtered.
  Ad2OrderedFilter f{0};
  EXPECT_TRUE(f.offer(alert1({2})));
  EXPECT_FALSE(f.offer(alert1({1})));
}

TEST(Ad2, ComparesOnLastHistorySeqno) {
  Ad2OrderedFilter f{0};
  EXPECT_TRUE(f.offer(alert1({1, 3})));
  // a.seqno.x is H[0].seqno = 4 > 3, even though the window starts at 2.
  EXPECT_TRUE(f.offer(alert1({2, 4})));
}

// -------------------------------------------------------------- AD-3 ----

TEST(Ad3, Example3FromPaper) {
  // a1 with H = {1,3} passes and records Received={1,3}, Missed={2};
  // a2 with H = {2,3} then conflicts (2 is in Missed).
  Ad3ConsistentFilter f;
  EXPECT_TRUE(f.offer(alert1({1, 3})));
  EXPECT_FALSE(f.offer(alert1({2, 3})));
}

TEST(Ad3, ReceivedGapConflict) {
  // a1 claims {2} received. a2's window {1,3} implies 2 was missed:
  // 2 is in SpanningSet({1,3}) \ H and already in Received -> conflict.
  Ad3ConsistentFilter f;
  EXPECT_TRUE(f.offer(alert1({2, 3})));
  EXPECT_FALSE(f.offer(alert1({1, 4})));  // wait: spanning {1..4} includes 2,3
}

TEST(Ad3, NonConflictingAlertsAllPass) {
  Ad3ConsistentFilter f;
  EXPECT_TRUE(f.offer(alert1({1, 2})));
  EXPECT_TRUE(f.offer(alert1({2, 3})));
  EXPECT_TRUE(f.offer(alert1({3, 4})));
}

TEST(Ad3, SuppressesExactDuplicates) {
  // Fidelity note in filters.hpp: required for Theorem 8 (AD-1 > AD-3).
  Ad3ConsistentFilter f;
  EXPECT_TRUE(f.offer(alert1({1, 3})));
  EXPECT_FALSE(f.offer(alert1({1, 3})));
}

TEST(Ad3, DegreeOneAlertsNeverConflict) {
  Ad3ConsistentFilter f;
  EXPECT_TRUE(f.offer(alert1({5})));
  EXPECT_TRUE(f.offer(alert1({3})));
  EXPECT_TRUE(f.offer(alert1({9})));
}

TEST(Ad3, ResetClearsLedger) {
  Ad3ConsistentFilter f;
  EXPECT_TRUE(f.offer(alert1({1, 3})));
  f.reset();
  EXPECT_TRUE(f.offer(alert1({2, 3})));
}

// -------------------------------------------------------------- AD-4 ----

TEST(Ad4, DiscardsWhatEitherParentDiscards) {
  Ad4OrderedConsistentFilter f{0};
  EXPECT_TRUE(f.offer(alert1({1, 3})));
  EXPECT_FALSE(f.offer(alert1({2, 3})));  // AD-3 conflict
  EXPECT_FALSE(f.offer(alert1({1, 2})));  // AD-2 out of order (2 < 3)
  EXPECT_TRUE(f.offer(alert1({3, 4})));
}

TEST(Ad4, RejectedAlertMustNotPoisonState) {
  // The accepts/record split: an alert rejected by AD-2 must not update
  // the AD-3 ledger, or later legitimate alerts would be wrongly dropped.
  Ad4OrderedConsistentFilter f{0};
  EXPECT_TRUE(f.offer(alert1({4, 5})));
  // Out of order (3 < 5) AND would imply "2 missed" — rejected by AD-2.
  EXPECT_FALSE(f.offer(alert1({1, 3})));
  // {5,6} consistent with everything recorded ({4,5} only): must pass.
  EXPECT_TRUE(f.offer(alert1({5, 6})));
}

// -------------------------------------------------------------- AD-5 ----

TEST(Ad5, RequiresNonEmptyVariableSet) {
  EXPECT_THROW(Ad5MultiOrderedFilter{std::vector<VarId>{}},
               std::invalid_argument);
}

TEST(Ad5, DiscardsInversionInEitherVariable) {
  Ad5MultiOrderedFilter f{{0, 1}};
  EXPECT_TRUE(f.offer(alert2(2, 2)));
  EXPECT_FALSE(f.offer(alert2(1, 3)));  // x inverted
  EXPECT_FALSE(f.offer(alert2(3, 1)));  // y inverted
  EXPECT_TRUE(f.offer(alert2(3, 2)));   // x advanced, y equal: fine
}

TEST(Ad5, DiscardsExactSeqnoDuplicates) {
  Ad5MultiOrderedFilter f{{0, 1}};
  EXPECT_TRUE(f.offer(alert2(2, 2)));
  EXPECT_FALSE(f.offer(alert2(2, 2)));  // equal in every variable
}

TEST(Ad5, Theorem10AlertsCannotBothPass) {
  // a(2x,1y) then a(1x,2y): the second inverts x. Either order: only one
  // of the two survives, restoring orderedness.
  Ad5MultiOrderedFilter f{{0, 1}};
  EXPECT_TRUE(f.offer(alert2(2, 1)));
  EXPECT_FALSE(f.offer(alert2(1, 2)));
  f.reset();
  EXPECT_TRUE(f.offer(alert2(1, 2)));
  EXPECT_FALSE(f.offer(alert2(2, 1)));
}

TEST(Ad5, ThreeVariables) {
  Ad5MultiOrderedFilter f{{0, 1, 2}};
  Alert a;
  a.cond = "c";
  a.histories.emplace(0, std::vector<Update>{{0, 1, 0.0}});
  a.histories.emplace(1, std::vector<Update>{{1, 1, 0.0}});
  a.histories.emplace(2, std::vector<Update>{{2, 1, 0.0}});
  EXPECT_TRUE(f.offer(a));
  Alert b = a;
  b.histories.at(2)[0].seqno = 2;
  EXPECT_TRUE(f.offer(b));   // advanced in var 2 only
  EXPECT_FALSE(f.offer(a));  // var 2 would invert
}

// -------------------------------------------------------------- AD-6 ----

TEST(Ad6, CombinesOrderAndLedger) {
  Ad6MultiOrderedConsistentFilter f{{0, 1}};
  Alert a;
  a.cond = "c";
  a.histories.emplace(0, std::vector<Update>{{0, 1, 0.0}, {0, 3, 0.0}});
  a.histories.emplace(1, std::vector<Update>{{1, 1, 0.0}, {1, 2, 0.0}});
  EXPECT_TRUE(f.offer(a));  // records x: missed 2

  Alert b;  // claims x-update 2 was received -> ledger conflict
  b.cond = "c";
  b.histories.emplace(0, std::vector<Update>{{0, 2, 0.0}, {0, 4, 0.0}});
  b.histories.emplace(1, std::vector<Update>{{1, 2, 0.0}, {1, 3, 0.0}});
  EXPECT_FALSE(f.offer(b));

  Alert c;  // order inversion in y
  c.cond = "c";
  c.histories.emplace(0, std::vector<Update>{{0, 3, 0.0}, {0, 4, 0.0}});
  c.histories.emplace(1, std::vector<Update>{{1, 0, 0.0}, {1, 1, 0.0}});
  EXPECT_FALSE(f.offer(c));

  Alert d;  // clean: advances both, no conflicts
  d.cond = "c";
  d.histories.emplace(0, std::vector<Update>{{0, 3, 0.0}, {0, 4, 0.0}});
  d.histories.emplace(1, std::vector<Update>{{1, 2, 0.0}, {1, 3, 0.0}});
  EXPECT_TRUE(f.offer(d));
}

TEST(Ad6, SuppressesDuplicates) {
  Ad6MultiOrderedConsistentFilter f{{0, 1}};
  const Alert a = alert2(1, 1);
  EXPECT_TRUE(f.offer(a));
  EXPECT_FALSE(f.offer(a));
}

// ------------------------------------------------------------ factory ----

TEST(FilterFactory, BuildsEveryKind) {
  const std::vector<VarId> one{0};
  const std::vector<VarId> two{0, 1};
  for (FilterKind k : {FilterKind::kPassAll, FilterKind::kDropAll,
                       FilterKind::kAd1, FilterKind::kAd2, FilterKind::kAd3,
                       FilterKind::kAd4}) {
    const FilterPtr f = make_filter(k, one);
    ASSERT_NE(f, nullptr);
    EXPECT_EQ(f->name(), filter_kind_name(k));
  }
  for (FilterKind k : {FilterKind::kAd5, FilterKind::kAd6}) {
    const FilterPtr f = make_filter(k, two);
    ASSERT_NE(f, nullptr);
    EXPECT_EQ(f->name(), filter_kind_name(k));
  }
}

TEST(FilterFactory, Ad2Ad4RequireSingleVariable) {
  const std::vector<VarId> two{0, 1};
  EXPECT_THROW((void)make_filter(FilterKind::kAd2, two), std::invalid_argument);
  EXPECT_THROW((void)make_filter(FilterKind::kAd4, two), std::invalid_argument);
}

TEST(FilterFactory, ParseNames) {
  EXPECT_EQ(parse_filter_kind("AD-1"), FilterKind::kAd1);
  EXPECT_EQ(parse_filter_kind("ad3"), FilterKind::kAd3);
  EXPECT_EQ(parse_filter_kind("AD-6"), FilterKind::kAd6);
  EXPECT_EQ(parse_filter_kind("pass"), FilterKind::kPassAll);
  EXPECT_EQ(parse_filter_kind("DROP"), FilterKind::kDropAll);
  EXPECT_THROW((void)parse_filter_kind("AD-7"), std::invalid_argument);
}

// --------------------------------------------------------- displayer ----

TEST(AlertDisplayer, CollectsArrivedAndDisplayed) {
  AlertDisplayer ad{std::make_unique<Ad1DuplicateFilter>()};
  EXPECT_TRUE(ad.on_alert(alert1({1})));
  EXPECT_FALSE(ad.on_alert(alert1({1})));
  EXPECT_TRUE(ad.on_alert(alert1({2})));
  EXPECT_EQ(ad.arrived().size(), 3u);
  EXPECT_EQ(ad.displayed().size(), 2u);
  EXPECT_EQ(ad.suppressed(), 1u);
}

TEST(AlertDisplayer, SinkReceivesDisplayedAlertsOnly) {
  std::vector<SeqNo> sunk;
  AlertDisplayer ad{std::make_unique<Ad2OrderedFilter>(0),
                    [&](const Alert& a) { sunk.push_back(a.seqno(0)); }};
  (void)ad.on_alert(alert1({2}));
  (void)ad.on_alert(alert1({1}));
  (void)ad.on_alert(alert1({3}));
  EXPECT_EQ(sunk, (std::vector<SeqNo>{2, 3}));
}

TEST(AlertDisplayer, ResetRestoresInitialState) {
  AlertDisplayer ad{std::make_unique<Ad2OrderedFilter>(0)};
  (void)ad.on_alert(alert1({5}));
  ad.reset();
  EXPECT_TRUE(ad.displayed().empty());
  EXPECT_TRUE(ad.on_alert(alert1({1})));  // filter state reset too
}

// ---- decide(): verdicts with reasons (the provenance layer) -------------

TEST(FilterDecide, AgreesWithAcceptsInEveryReachableState) {
  // A stream with duplicates, reversals, and repeats. For every filter
  // kind, decide(a).accept must equal accepts(a) at every step — the
  // invariant the provenance records depend on.
  std::vector<Alert> single;
  for (SeqNo s : {1, 3, 2, 3, 5, 4, 5, 7, 6, 7})
    single.push_back(alert1({s, s + 1}));
  // AD-5/AD-6 read every variable of their set from each alert, so their
  // stream carries both variables in every alert.
  std::vector<Alert> multi;
  for (SeqNo s : {1, 2, 2, 1, 4, 3, 4, 6, 5, 6})
    multi.push_back(alert2(s, s + 1));

  const struct {
    FilterKind kind;
    std::vector<VarId> vars;
    const std::vector<Alert>* stream;
  } cases[] = {
      {FilterKind::kPassAll, {0}, &single},
      {FilterKind::kDropAll, {0}, &single},
      {FilterKind::kAd1, {0}, &single},
      {FilterKind::kAd2, {0}, &single},
      {FilterKind::kAd3, {0}, &single},
      {FilterKind::kAd4, {0}, &single},
      {FilterKind::kAd5, {0, 1}, &multi},
      {FilterKind::kAd6, {0, 1}, &multi},
      {FilterKind::kBrokenAd2, {0}, &single},
  };
  for (const auto& c : cases) {
    SCOPED_TRACE(filter_kind_name(c.kind));
    FilterPtr f = make_filter(c.kind, c.vars);
    for (const Alert& a : *c.stream) {
      const FilterDecision d = f->decide(a);
      EXPECT_EQ(d.accept, f->accepts(a));
      ASSERT_NE(d.reason, nullptr);
      EXPECT_FALSE(std::string_view{d.reason}.empty());
      if (d.accept) EXPECT_EQ(std::string_view{d.reason}, "accepted");
      (void)f->offer(a);
    }
  }
}

TEST(FilterDecide, ReasonsNameTheFailedTest) {
  Ad1DuplicateFilter ad1;
  ASSERT_TRUE(ad1.offer(alert1({2, 3})));
  EXPECT_EQ(std::string_view{ad1.decide(alert1({2, 3})).reason},
            "duplicate: identical history set already displayed");

  Ad2OrderedFilter ad2{0};
  ASSERT_TRUE(ad2.offer(alert1({5})));
  EXPECT_EQ(std::string_view{ad2.decide(alert1({4})).reason},
            "out-of-order: seqno not above last displayed");

  DropAllFilter drop;
  const FilterDecision d = drop.decide(alert1({1}));
  EXPECT_FALSE(d.accept);
  EXPECT_EQ(std::string_view{d.reason},
            "drop-all: this filter displays nothing");
}

TEST(FilterDecide, CompositeAd4SurfacesTheSubFilterReason) {
  // AD-4 = AD-2 then AD-3: an out-of-order arrival must carry AD-2's
  // reason, not a generic composite verdict.
  Ad4OrderedConsistentFilter ad4{0};
  ASSERT_TRUE(ad4.offer(alert1({5})));
  const FilterDecision d = ad4.decide(alert1({4}));
  EXPECT_FALSE(d.accept);
  EXPECT_EQ(std::string_view{d.reason},
            "out-of-order: seqno not above last displayed");
}

TEST(FilterDecide, Ad5ReasonsDistinguishInversionFromDuplicate) {
  Ad5MultiOrderedFilter ad5{{0, 1}};
  ASSERT_TRUE(ad5.offer(alert2(2, 2)));
  const FilterDecision inversion = ad5.decide(alert2(1, 3));
  EXPECT_FALSE(inversion.accept);
  EXPECT_EQ(std::string_view{inversion.reason},
            "out-of-order: would invert display order in a variable");
  const FilterDecision duplicate = ad5.decide(alert2(2, 2));
  EXPECT_FALSE(duplicate.accept);
  EXPECT_EQ(std::string_view{duplicate.reason},
            "duplicate: equals the last display in every variable");
}

TEST(RunFilter, ReplaysInterleaving) {
  Ad2OrderedFilter f{0};
  const std::vector<Alert> arrivals = {alert1({2}), alert1({1}), alert1({3})};
  const auto out = run_filter(f, arrivals);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0].seqno(0), 2);
  EXPECT_EQ(out[1].seqno(0), 3);
}

}  // namespace
}  // namespace rcm
