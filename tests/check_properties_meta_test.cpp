// Meta-properties of the checkers themselves, verified across
// randomized runs:
//
//  - consistency is SUBSET-CLOSED: every subsequence of a consistent
//    displayed sequence is consistent (fewer alerts = fewer demands);
//  - completeness is NOT subset-closed (dropping a required alert breaks
//    the Phi-equality) — witnessed;
//  - orderedness is subsequence-closed;
//  - the kUnknown path of the bounded completeness search (> 63 distinct
//    displayed keys) is reported as unknown, never as a verdict.
#include <gtest/gtest.h>

#include <memory>

#include "check/completeness.hpp"
#include "check/consistency.hpp"
#include "check/properties.hpp"
#include "core/builtin_conditions.hpp"
#include "core/evaluator.hpp"
#include "exp/scenarios.hpp"
#include "sim/system.hpp"
#include "util/rng.hpp"

namespace rcm::check {
namespace {

class CheckerMeta : public ::testing::TestWithParam<std::uint64_t> {};

SystemRun random_run(std::uint64_t seed, FilterKind filter) {
  const auto spec =
      exp::single_var_scenario(exp::Scenario::kLossyAggressive);
  util::Rng trial{seed};
  sim::SystemConfig config;
  config.condition = spec.condition;
  config.dm_traces = spec.make_traces(30, trial);
  config.front.loss = spec.front_loss;
  config.front.delay_max = 0.8;
  config.back.delay_max = 0.8;
  config.filter = filter;
  config.seed = seed * 31;
  return sim::run_system(config).as_system_run(spec.condition);
}

TEST_P(CheckerMeta, ConsistencyIsSubsetClosed) {
  util::Rng rng{GetParam()};
  SystemRun run = random_run(GetParam(), FilterKind::kAd3);
  ASSERT_TRUE(check_consistent(run).consistent);
  // Random subsequences stay consistent.
  for (int trial = 0; trial < 5; ++trial) {
    SystemRun sub = run;
    sub.displayed.clear();
    for (const Alert& a : run.displayed)
      if (rng.bernoulli(0.6)) sub.displayed.push_back(a);
    EXPECT_TRUE(check_consistent(sub).consistent);
  }
}

TEST_P(CheckerMeta, OrderednessIsSubsequenceClosed) {
  util::Rng rng{GetParam() + 100};
  const SystemRun run = random_run(GetParam(), FilterKind::kAd2);
  const auto& vars = run.condition->variables();
  ASSERT_TRUE(check_ordered(run.displayed, vars));
  for (int trial = 0; trial < 5; ++trial) {
    std::vector<Alert> sub;
    for (const Alert& a : run.displayed)
      if (rng.bernoulli(0.6)) sub.push_back(a);
    EXPECT_TRUE(check_ordered(sub, vars));
  }
}

TEST_P(CheckerMeta, CompletenessBreaksWhenAnAlertIsDropped) {
  const SystemRun run =
      random_run(GetParam(), FilterKind::kPassAll);
  // PassAll over a non-historical... this run uses the aggressive
  // condition; completeness may or may not hold, so force the complete
  // baseline: a single replica's own trace is complete w.r.t. itself.
  SystemRun solo;
  solo.condition = run.condition;
  solo.ce_inputs = {run.ce_inputs[0]};
  solo.displayed = evaluate_trace(run.condition, run.ce_inputs[0]);
  if (solo.displayed.empty()) return;  // nothing to drop this seed
  ASSERT_EQ(check_complete(solo), Verdict::kHolds);
  solo.displayed.erase(solo.displayed.begin());
  EXPECT_EQ(check_complete(solo), Verdict::kViolated);
}

INSTANTIATE_TEST_SUITE_P(Seeds, CheckerMeta,
                         ::testing::Range<std::uint64_t>(1, 11));

TEST(CheckerMeta, ManyDistinctKeysReportUnknownNotWrong) {
  // Build a two-variable run with > 63 distinct displayed keys: the
  // bitmask-based completeness search must say kUnknown.
  auto cond = std::make_shared<const AbsDiffCondition>("d", 0, 1, -1.0);
  // delta = -1: |x-y| > -1 always true -> every arrival alerts.
  std::vector<Update> stream;
  for (SeqNo s = 1; s <= 40; ++s) {
    stream.push_back({0, s, 1.0});
    stream.push_back({1, s, 5.0});
  }
  SystemRun run;
  run.condition = cond;
  run.ce_inputs = {stream};
  run.displayed = evaluate_trace(cond, stream);
  ASSERT_GT(run.displayed.size(), 63u);
  EXPECT_EQ(check_complete(run), Verdict::kUnknown);
}

}  // namespace
}  // namespace rcm::check
