// Tests for the sequence calculus of paper §2.2: orderedness, the
// subsequence relation ⊑, the ordered union ⊔ and the projection Π.
// Includes the paper's own worked micro-examples plus randomized
// property sweeps for the algebraic identities the proofs rely on.
#include <gtest/gtest.h>

#include <algorithm>

#include "core/sequence.hpp"
#include "util/rng.hpp"

namespace rcm {
namespace {

std::vector<SeqNo> seqs(std::initializer_list<SeqNo> xs) { return xs; }

std::vector<Update> ups(VarId v, std::initializer_list<SeqNo> xs) {
  std::vector<Update> out;
  for (SeqNo s : xs) out.push_back({v, s, static_cast<double>(s) * 10});
  return out;
}

TEST(Sequence, OrderedExamplesFromPaper) {
  // "h3, 8, 100i and h2, 2i are ordered sequences, while h2, 1, 6i is not"
  EXPECT_TRUE(is_ordered(std::span<const SeqNo>{seqs({3, 8, 100})}));
  EXPECT_TRUE(is_ordered(std::span<const SeqNo>{seqs({2, 2})}));
  EXPECT_FALSE(is_ordered(std::span<const SeqNo>{seqs({2, 1, 6})}));
  EXPECT_TRUE(is_ordered(std::span<const SeqNo>{seqs({})}));
}

TEST(Sequence, SubsequenceBasics) {
  EXPECT_TRUE(is_subsequence(seqs({}), seqs({1, 2, 3})));
  EXPECT_TRUE(is_subsequence(seqs({1, 3}), seqs({1, 2, 3})));
  EXPECT_TRUE(is_subsequence(seqs({1, 2, 3}), seqs({1, 2, 3})));
  EXPECT_FALSE(is_subsequence(seqs({3, 1}), seqs({1, 2, 3})));
  EXPECT_FALSE(is_subsequence(seqs({4}), seqs({1, 2, 3})));
  EXPECT_FALSE(is_subsequence(seqs({1}), seqs({})));
}

TEST(Sequence, OrderedUnionExampleFromPaper) {
  // "if S1 = h1, 4, 8i and S2 = h2, 4, 5i, then S1 t S2 = h1, 2, 4, 5, 8i"
  EXPECT_EQ(ordered_union(seqs({1, 4, 8}), seqs({2, 4, 5})),
            seqs({1, 2, 4, 5, 8}));
}

TEST(Sequence, OrderedUnionRemovesDuplicates) {
  EXPECT_EQ(ordered_union(seqs({1, 2}), seqs({1, 2})), seqs({1, 2}));
  EXPECT_EQ(ordered_union(seqs({}), seqs({})), seqs({}));
  EXPECT_EQ(ordered_union(seqs({5}), seqs({})), seqs({5}));
}

TEST(Sequence, UpdateUnionMergesBySeqno) {
  const auto u = ordered_union(std::span<const Update>{ups(0, {1, 4})},
                               std::span<const Update>{ups(0, {2, 4})});
  ASSERT_EQ(u.size(), 3u);
  EXPECT_EQ(u[0].seqno, 1);
  EXPECT_EQ(u[1].seqno, 2);
  EXPECT_EQ(u[2].seqno, 4);
}

TEST(Sequence, ProjectionExampleFromPaper) {
  // "given U = h2x, 6y, 1y, 3xi, Πx U = h2, 3i, and Πy U = h6, 1i"
  std::vector<Update> u = {{0, 2, 0}, {1, 6, 0}, {1, 1, 0}, {0, 3, 0}};
  EXPECT_EQ(project(std::span<const Update>{u}, 0), seqs({2, 3}));
  EXPECT_EQ(project(std::span<const Update>{u}, 1), seqs({6, 1}));
  EXPECT_TRUE(is_ordered(std::span<const Update>{u}, 0));
  EXPECT_FALSE(is_ordered(std::span<const Update>{u}, 1));
}

TEST(Sequence, SplitByVarPreservesOrder) {
  std::vector<Update> u = {{1, 6, 0}, {0, 2, 0}, {1, 7, 0}, {0, 3, 0}};
  const auto split = split_by_var(std::span<const Update>{u});
  ASSERT_EQ(split.size(), 2u);
  EXPECT_EQ(split[0].first, 0u);
  EXPECT_EQ(project(std::span<const Update>{split[0].second}, 0), seqs({2, 3}));
  EXPECT_EQ(split[1].first, 1u);
  EXPECT_EQ(project(std::span<const Update>{split[1].second}, 1), seqs({6, 7}));
}

// ------------------------- randomized properties -------------------------

std::vector<SeqNo> random_ordered(util::Rng& rng, std::size_t max_len) {
  std::vector<SeqNo> out;
  SeqNo cur = 0;
  const std::size_t len = static_cast<std::size_t>(rng.uniform_int(0, static_cast<std::int64_t>(max_len)));
  for (std::size_t i = 0; i < len; ++i) {
    cur += rng.uniform_int(1, 4);
    out.push_back(cur);
  }
  return out;
}

class SequencePropertyTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SequencePropertyTest, UnionIsOrderedAndCoversBoth) {
  util::Rng rng{GetParam()};
  const auto a = random_ordered(rng, 20);
  const auto b = random_ordered(rng, 20);
  const auto u = ordered_union(std::span<const SeqNo>{a}, std::span<const SeqNo>{b});
  EXPECT_TRUE(is_ordered(std::span<const SeqNo>{u}));
  EXPECT_TRUE(is_subsequence(a, u));
  EXPECT_TRUE(is_subsequence(b, u));
  // No element outside a ∪ b.
  for (SeqNo s : u) {
    const bool in_a = std::find(a.begin(), a.end(), s) != a.end();
    const bool in_b = std::find(b.begin(), b.end(), s) != b.end();
    EXPECT_TRUE(in_a || in_b);
  }
  // No adjacent duplicates (Phi semantics).
  for (std::size_t i = 1; i < u.size(); ++i) EXPECT_LT(u[i - 1], u[i]);
}

TEST_P(SequencePropertyTest, UnionIsIdempotentAndCommutative) {
  util::Rng rng{GetParam()};
  const auto a = random_ordered(rng, 20);
  const auto b = random_ordered(rng, 20);
  // Lemma 2: U ⊔ U = U.
  EXPECT_EQ(ordered_union(std::span<const SeqNo>{a}, std::span<const SeqNo>{a}), a);
  EXPECT_EQ(ordered_union(std::span<const SeqNo>{a}, std::span<const SeqNo>{b}),
            ordered_union(std::span<const SeqNo>{b}, std::span<const SeqNo>{a}));
}

TEST_P(SequencePropertyTest, SubsequenceIsReflexiveAndTransitiveOnSamples) {
  util::Rng rng{GetParam()};
  const auto full = random_ordered(rng, 24);
  // Sample a sub-subsequence chain full ⊒ mid ⊒ small.
  std::vector<SeqNo> mid, small;
  for (SeqNo s : full)
    if (rng.bernoulli(0.7)) mid.push_back(s);
  for (SeqNo s : mid)
    if (rng.bernoulli(0.7)) small.push_back(s);
  EXPECT_TRUE(is_subsequence(full, full));
  EXPECT_TRUE(is_subsequence(mid, full));
  EXPECT_TRUE(is_subsequence(small, mid));
  EXPECT_TRUE(is_subsequence(small, full));
}

INSTANTIATE_TEST_SUITE_P(Seeds, SequencePropertyTest,
                         ::testing::Range<std::uint64_t>(1, 26));

}  // namespace
}  // namespace rcm
