// Shrinker unit tests: determinism (same failing spec always minimizes to
// the same spec), monotone size decrease, preservation of the violation
// kind, budget exhaustion safety, and replay-equivalence of the shrunk
// record.
#include <gtest/gtest.h>

#include "swarm/fuzzer.hpp"
#include "swarm/record.hpp"
#include "swarm/shrink.hpp"

namespace rcm::swarm {
namespace {

// First spec in the seed-7 broken-filter batch that fails. Deterministic,
// so every test minimizes the exact same counterexample.
struct Failing {
  SwarmSpec spec;
  ViolationKind kind;
};

Failing first_failing_spec() {
  FuzzOptions fuzz;
  fuzz.force_filter = FilterKind::kBrokenAd2;
  for (std::uint64_t i = 0; i < 50; ++i) {
    const SwarmSpec spec = sample_spec(7, i, fuzz);
    const RunCheck chk = execute_and_check(spec);
    if (chk.failed()) return {spec, chk.violation_kinds.front()};
  }
  throw std::logic_error("seed 7 no longer trips the broken filter");
}

TEST(Shrink, IsDeterministic) {
  const Failing f = first_failing_spec();
  const ShrinkResult a = shrink(f.spec, f.kind);
  const ShrinkResult b = shrink(f.spec, f.kind);
  EXPECT_TRUE(a.spec == b.spec);
  EXPECT_EQ(a.attempts, b.attempts);
  EXPECT_EQ(a.accepted, b.accepted);
}

TEST(Shrink, StrictlyDecreasesConfigSize) {
  const Failing f = first_failing_spec();
  const ShrinkResult result = shrink(f.spec, f.kind);
  ASSERT_GT(result.accepted, 0u) << "nothing shrank a ~30-update spec";
  EXPECT_LT(result.spec.size(), f.spec.size());
  // Every accepted edit removed at least one size unit.
  EXPECT_LE(result.spec.size() + result.accepted, f.spec.size());
  // Shrinking composes edits; it never grows any dimension.
  EXPECT_LE(result.spec.total_updates(), f.spec.total_updates());
  EXPECT_LE(result.spec.base.num_ces, f.spec.num_ces);
  EXPECT_LE(result.spec.base.ad_offline.size(), f.spec.ad_offline.size());
}

TEST(Shrink, PreservesTheViolationKind) {
  const Failing f = first_failing_spec();
  const ShrinkResult result = shrink(f.spec, f.kind);
  const RunCheck chk = execute_and_check(result.spec);
  ASSERT_TRUE(chk.failed());
  EXPECT_TRUE(chk.has_kind(f.kind));
}

TEST(Shrink, ShrunkSpecIsLocallyMinimalForReplicaCount) {
  // Orderedness needs interleaving, so the shrinker can never go below
  // two replicas for this counterexample.
  const Failing f = first_failing_spec();
  const ShrinkResult result = shrink(f.spec, f.kind);
  EXPECT_GE(result.spec.base.num_ces, 2u);
}

TEST(Shrink, ExhaustedBudgetStillReturnsAFailingSpec) {
  const Failing f = first_failing_spec();
  for (std::size_t budget : {0u, 1u, 5u}) {
    const ShrinkResult result = shrink(f.spec, f.kind, {}, budget);
    EXPECT_LE(result.attempts, budget);
    const RunCheck chk = execute_and_check(result.spec);
    EXPECT_TRUE(chk.has_kind(f.kind));
  }
}

TEST(Shrink, ShrunkRecordReplaysToTheSameVerdict) {
  const Failing f = first_failing_spec();
  const ShrinkResult result = shrink(f.spec, f.kind);
  const RunCheck chk = execute_and_check(result.spec);
  const CounterexampleRecord record = make_record(result.spec, chk);

  const ReplayResult replayed = replay(record);
  EXPECT_TRUE(replayed.reproduced);
  EXPECT_TRUE(replayed.check.has_kind(f.kind));
  EXPECT_EQ(replayed.check.digest, chk.digest);
}

}  // namespace
}  // namespace rcm::swarm
