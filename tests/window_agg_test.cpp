// Window-aggregate intrinsics of the expression language: avg/sum/wmin/
// wmax over the last k received values — realistic degree-k monitoring
// conditions (e.g. "the 3-reading average exceeds the alarm level"),
// kept finite-degree exactly as the paper's model requires.
#include <gtest/gtest.h>

#include "core/evaluator.hpp"
#include "core/expr/analysis.hpp"
#include "core/expr/expression_condition.hpp"
#include "core/expr/lexer.hpp"
#include "core/expr/parser.hpp"

namespace rcm::expr {
namespace {

HistorySet feed(const Condition& c, const std::vector<Update>& updates) {
  HistorySet h = c.make_history_set();
  for (const Update& u : updates) h.push(u);
  return h;
}

TEST(WindowAgg, ParsesAndPrints) {
  EXPECT_EQ(to_string(*parse("avg(x, 3) > 10")), "(avg(x, 3) > 10)");
  EXPECT_EQ(to_string(*parse("sum(x, 2) + wmin(y, 4) < wmax(x, 2)")),
            "((sum(x, 2) + wmin(y, 4)) < wmax(x, 2))");
}

TEST(WindowAgg, ParserRejectsBadWindows) {
  EXPECT_THROW(parse("avg(x, 0) > 1"), SyntaxError);
  EXPECT_THROW(parse("avg(x, -2) > 1"), SyntaxError);
  EXPECT_THROW(parse("avg(x, 1.5) > 1"), SyntaxError);
  EXPECT_THROW(parse("avg(x, y) > 1"), SyntaxError);
  EXPECT_THROW(parse("avg(3, 2) > 1"), SyntaxError);
  EXPECT_THROW(parse("avg(x) > 1"), SyntaxError);
}

TEST(WindowAgg, DegreeIsWindowSize) {
  EXPECT_EQ(infer_degrees(*parse("avg(x, 5) > 1")).at("x"), 5);
  // Mixed with explicit history refs: max wins.
  EXPECT_EQ(infer_degrees(*parse("avg(x, 2) > x[-3]")).at("x"), 4);
  EXPECT_EQ(infer_degrees(*parse("sum(x, 2) > x[-6]")).at("x"), 7);
}

TEST(WindowAgg, TypeIsNumeric) {
  EXPECT_EQ(check_types(*parse("avg(x, 3)")), Type::kNumber);
  EXPECT_THROW(check_types(*parse("avg(x, 3) && true")), AnalysisError);
}

TEST(WindowAgg, AggregatesAreConservativeOnlyWithGuard) {
  EXPECT_FALSE(is_conservative(*parse("avg(x, 3) > 10")));
  EXPECT_TRUE(is_conservative(*parse("avg(x, 3) > 10 && consecutive(x)")));
}

TEST(WindowAgg, EvaluatesAllFourOps) {
  VariableRegistry vars;
  auto cond = compile_condition(
      "agg",
      "avg(x, 3) == 20 && sum(x, 3) == 60 && wmin(x, 3) == 10 && "
      "wmax(x, 3) == 30",
      vars);
  const VarId x = vars.intern("x");
  EXPECT_TRUE(cond->evaluate(
      feed(*cond, {{x, 1, 10.0}, {x, 2, 30.0}, {x, 3, 20.0}})));
  EXPECT_FALSE(cond->evaluate(
      feed(*cond, {{x, 1, 10.0}, {x, 2, 30.0}, {x, 3, 21.0}})));
}

TEST(WindowAgg, MovingAverageCondition) {
  // "3-reading average above 3000": the smoothed variant of c1 that a
  // real reactor deployment would use to avoid alerting on sensor blips.
  VariableRegistry vars;
  auto cond = compile_condition("smooth", "avg(temp, 3) > 3000", vars);
  const VarId t = vars.intern("temp");
  EXPECT_EQ(cond->degree(t), 3);

  ConditionEvaluator ce{cond};
  EXPECT_FALSE(ce.on_update({t, 1, 3500.0}).has_value());  // undefined
  EXPECT_FALSE(ce.on_update({t, 2, 2000.0}).has_value());  // undefined
  EXPECT_FALSE(ce.on_update({t, 3, 2600.0}).has_value());  // avg 2700
  EXPECT_TRUE(ce.on_update({t, 4, 4500.0}).has_value());   // avg 3033
  // The alert's window carries the full degree-3 history.
  EXPECT_EQ(ce.emitted().back().history_seqnos(t),
            (std::vector<SeqNo>{2, 3, 4}));
}

TEST(WindowAgg, WindowOfOneEqualsCurrentValue) {
  VariableRegistry vars;
  auto cond = compile_condition("one", "avg(x, 1) == x[0]", vars);
  const VarId x = vars.intern("x");
  EXPECT_EQ(cond->degree(x), 1);
  EXPECT_TRUE(cond->evaluate(feed(*cond, {{x, 1, 42.0}})));
}

TEST(WindowAgg, MinMaxNamesDoNotCollideWithBinaryIntrinsics) {
  // min/max remain the two-argument numeric intrinsics; wmin/wmax are
  // the window forms.
  VariableRegistry vars;
  auto cond = compile_condition(
      "mix", "min(x[0], wmax(x, 2)) == x[0]", vars);
  const VarId x = vars.intern("x");
  EXPECT_TRUE(cond->evaluate(feed(*cond, {{x, 1, 5.0}, {x, 2, 9.0}})));
}

}  // namespace
}  // namespace rcm::expr
