// Tests for the INI configuration parser behind the rcm_lab example.
#include <gtest/gtest.h>

#include "util/config.hpp"

namespace rcm::util {
namespace {

TEST(Config, ParsesSectionsAndKeys) {
  const auto c = Config::parse(
      "global = 1\n"
      "[condition]\n"
      "name = overheat\n"
      "expr = temp[0] > 3000\n"
      "[system]\n"
      "ces = 3\n"
      "loss = 0.25\n"
      "verbose = yes\n");
  EXPECT_EQ(c.get_or("", "global", "?"), "1");
  EXPECT_EQ(c.require("condition", "name"), "overheat");
  EXPECT_EQ(c.require("condition", "expr"), "temp[0] > 3000");
  EXPECT_EQ(c.get_int_or("system", "ces", 1), 3);
  EXPECT_DOUBLE_EQ(c.get_double_or("system", "loss", 0.0), 0.25);
  EXPECT_TRUE(c.get_bool_or("system", "verbose", false));
}

TEST(Config, SectionOrderPreserved) {
  const auto c = Config::parse("[b]\nx=1\n[a]\nx=2\n[workload t]\nx=3\n");
  const auto& sections = c.sections();
  ASSERT_EQ(sections.size(), 4u);  // "", b, a, workload t
  EXPECT_EQ(sections[1], "b");
  EXPECT_EQ(sections[2], "a");
  EXPECT_EQ(sections[3], "workload t");
}

TEST(Config, CommentsAndWhitespace) {
  const auto c = Config::parse(
      "# leading comment\n"
      "  [ s ]   # trailing comment\n"
      "  key   =   spaced value here   # comment\n"
      "\n");
  EXPECT_EQ(c.require("s", "key"), "spaced value here");
}

TEST(Config, MissingLookups) {
  const auto c = Config::parse("[s]\nk = v\n");
  EXPECT_TRUE(c.has_section("s"));
  EXPECT_FALSE(c.has_section("t"));
  EXPECT_TRUE(c.has("s", "k"));
  EXPECT_FALSE(c.has("s", "other"));
  EXPECT_FALSE(c.find("t", "k").has_value());
  EXPECT_EQ(c.get_or("t", "k", "fallback"), "fallback");
  EXPECT_EQ(c.get_int_or("s", "missing", 42), 42);
  EXPECT_THROW((void)c.require("s", "missing"), std::invalid_argument);
}

TEST(Config, MalformedInputRejected) {
  EXPECT_THROW((void)Config::parse("[unterminated\n"), ConfigError);
  EXPECT_THROW((void)Config::parse("[]\n"), ConfigError);
  EXPECT_THROW((void)Config::parse("no equals sign\n"), ConfigError);
  EXPECT_THROW((void)Config::parse("= value\n"), ConfigError);
}

TEST(Config, DuplicateKeyRejected) {
  EXPECT_THROW((void)Config::parse("[s]\nk = 1\nk = 2\n"), ConfigError);
  // Same key in different sections is fine.
  EXPECT_NO_THROW((void)Config::parse("[a]\nk = 1\n[b]\nk = 2\n"));
}

TEST(Config, ErrorCarriesLine) {
  try {
    (void)Config::parse("[ok]\nk = 1\nbroken line\n");
    FAIL() << "expected ConfigError";
  } catch (const ConfigError& e) {
    EXPECT_EQ(e.line(), 3u);
  }
}

TEST(Config, EmptyValueAllowed) {
  const auto c = Config::parse("[s]\nk =\n");
  EXPECT_EQ(c.require("s", "k"), "");
}

TEST(Config, LoadMissingFileThrows) {
  EXPECT_THROW((void)Config::load("/nonexistent/rcm.ini"),
               std::runtime_error);
}

}  // namespace
}  // namespace rcm::util
