// Decoder robustness fuzzing: every decode path must either succeed or
// throw wire::DecodeError on arbitrary bytes — never crash, hang, or
// allocate absurdly. Three input classes per decoder: pure random bytes,
// truncated valid messages, and single-byte mutations of valid messages.
#include <gtest/gtest.h>

#include <memory>

#include "check/run_record.hpp"
#include "core/builtin_conditions.hpp"
#include "core/evaluator.hpp"
#include "service/admin.hpp"
#include "store/alert_log.hpp"
#include "store/file_log.hpp"
#include "swarm/fuzzer.hpp"
#include "swarm/record.hpp"
#include "swarm/runner.hpp"
#include "util/rng.hpp"
#include "wire/codec.hpp"
#include "wire/frame.hpp"
#include "wire/shard.hpp"
#include "wire/snapshot.hpp"
#include "wire/version.hpp"

namespace rcm::wire {
namespace {

std::vector<std::uint8_t> random_bytes(util::Rng& rng, std::size_t max_len) {
  std::vector<std::uint8_t> out(
      static_cast<std::size_t>(rng.uniform_int(0, static_cast<std::int64_t>(max_len))));
  for (auto& b : out) b = static_cast<std::uint8_t>(rng.uniform_int(0, 255));
  return out;
}

Alert sample_alert() {
  Alert a;
  a.cond = "fuzz";
  a.histories.emplace(1, std::vector<Update>{{1, 3, 1.5}, {1, 5, 2.5}});
  a.histories.emplace(2, std::vector<Update>{{2, 9, -1.0}});
  return a;
}

template <typename DecodeFn>
void fuzz_decoder(DecodeFn&& decode, const std::vector<std::uint8_t>& valid,
                  std::uint64_t seed, int random_trials = 500) {
  util::Rng rng{seed};
  // Random byte strings.
  for (int i = 0; i < random_trials; ++i) {
    const auto bytes = random_bytes(rng, 64);
    try {
      decode(bytes);
    } catch (const DecodeError&) {
      // expected for most inputs
    }
  }
  // Every truncation of a valid message.
  for (std::size_t len = 0; len < valid.size(); ++len) {
    const std::vector<std::uint8_t> cut{valid.begin(),
                                        valid.begin() + static_cast<std::ptrdiff_t>(len)};
    try {
      decode(cut);
    } catch (const DecodeError&) {
    }
  }
  // Every single-byte mutation of a valid message.
  for (std::size_t i = 0; i < valid.size(); ++i) {
    for (std::uint8_t delta : {0x01, 0x80, 0xff}) {
      auto mutated = valid;
      mutated[i] ^= delta;
      try {
        decode(mutated);
      } catch (const DecodeError&) {
      }
    }
  }
}

TEST(DecodeFuzz, Update) {
  const auto valid = encode_update({7, 123456, 3.25});
  fuzz_decoder([](const std::vector<std::uint8_t>& b) { (void)decode_update(b); },
               valid, 1);
}

TEST(DecodeFuzz, AlertAllEncodings) {
  for (AlertEncoding enc :
       {AlertEncoding::kFullHistories, AlertEncoding::kSeqnosOnly,
        AlertEncoding::kChecksumOnly}) {
    const auto valid = encode_alert(sample_alert(), enc);
    fuzz_decoder(
        [](const std::vector<std::uint8_t>& b) { (void)decode_alert(b); },
        valid, 2 + static_cast<std::uint64_t>(enc));
  }
}

TEST(DecodeFuzz, EvaluatorSnapshot) {
  auto cond = std::make_shared<const RiseCondition>("r", 0, 1.0,
                                                    Triggering::kAggressive);
  ConditionEvaluator ce{cond};
  (void)ce.on_update({0, 1, 1.0});
  (void)ce.on_update({0, 2, 5.0});
  const auto valid = encode_evaluator_state(ce);
  ConditionEvaluator target{cond};
  fuzz_decoder(
      [&](const std::vector<std::uint8_t>& b) {
        ConditionEvaluator scratch{cond};
        decode_evaluator_state(b, scratch);
      },
      valid, 5);
}

TEST(DecodeFuzz, AlertLogSnapshot) {
  store::AlertLog log;
  (void)log.append(sample_alert());
  log.ack(0);
  const auto valid = log.serialize();
  fuzz_decoder(
      [](const std::vector<std::uint8_t>& b) {
        (void)store::AlertLog::deserialize(b);
      },
      valid, 6);
}

TEST(DecodeFuzz, RunRecord) {
  check::SystemRun run;
  run.condition = std::make_shared<const ThresholdCondition>("t", 1, 1.0);
  run.ce_inputs = {{{1, 1, 2.0}, {1, 2, 3.0}}, {{1, 2, 3.0}}};
  run.displayed = {sample_alert()};
  const auto valid = check::encode_system_run(run);
  fuzz_decoder(
      [&](const std::vector<std::uint8_t>& b) {
        (void)check::decode_system_run(b, run.condition);
      },
      valid, 7, 300);
}

TEST(DecodeFuzz, SwarmCounterexampleRecord) {
  // Build a genuine record (a spec the swarm would sample, executed and
  // packaged), round-trip it, then fuzz the decoder: corrupted or
  // truncated records must throw DecodeError, never crash.
  const swarm::SwarmSpec spec = swarm::sample_spec(11, 0);
  const swarm::RunCheck chk = swarm::execute_and_check(spec);
  const swarm::CounterexampleRecord record = swarm::make_record(spec, chk);

  const auto valid = swarm::encode_record(record);
  const swarm::CounterexampleRecord back = swarm::decode_record(valid);
  EXPECT_TRUE(back.spec == record.spec);
  EXPECT_EQ(back.digest, record.digest);
  EXPECT_EQ(back.run_bytes, record.run_bytes);

  fuzz_decoder(
      [](const std::vector<std::uint8_t>& b) { (void)swarm::decode_record(b); },
      valid, 9, 300);
}

TEST(DecodeFuzz, SwarmRecordWithWorkloadUnits) {
  // The v2 record path: a composed spec's workload units ride inside the
  // record. Round-trip, then fuzz the decoder over the larger format.
  swarm::FuzzOptions fuzz;
  fuzz.min_workloads = 2;
  const swarm::ComposedSpec spec = swarm::sample_composed(11, 0, fuzz);
  ASSERT_GE(spec.units.size(), 2u);
  const swarm::RunCheck chk = swarm::execute_and_check(spec);
  const swarm::CounterexampleRecord record = swarm::make_record(spec, chk);

  const auto valid = swarm::encode_record(record);
  const swarm::CounterexampleRecord back = swarm::decode_record(valid);
  EXPECT_TRUE(back.spec == record.spec);
  EXPECT_EQ(back.spec.units, spec.units);

  fuzz_decoder(
      [](const std::vector<std::uint8_t>& b) { (void)swarm::decode_record(b); },
      valid, 10, 300);
}

TEST(DecodeFuzz, LegacyV1SwarmRecordStillDecodesAndReplays) {
  // Records written before workload units existed (version 1, no unit
  // section) must keep decoding — to an empty unit list — and keep
  // replaying bit-for-bit.
  const swarm::SwarmSpec spec = swarm::sample_spec(11, 0);
  const swarm::RunCheck chk = swarm::execute_and_check(spec);
  const swarm::CounterexampleRecord record = swarm::make_record(spec, chk);

  Writer w;
  w.u8(0x57);  // record tag
  w.u8(1);     // version 1: spec | violation kinds | digest | run bytes
  swarm::encode_spec(w, record.spec.base);
  w.varint(record.violation_kinds.size());
  for (swarm::ViolationKind k : record.violation_kinds)
    w.u8(static_cast<std::uint8_t>(k));
  w.u64(record.digest);
  w.varint(record.run_bytes.size());
  w.raw(record.run_bytes);

  const swarm::CounterexampleRecord legacy = swarm::decode_record(w.bytes());
  EXPECT_TRUE(legacy.spec.units.empty());
  EXPECT_TRUE(legacy.spec.base == record.spec.base);
  EXPECT_EQ(legacy.digest, record.digest);
  EXPECT_TRUE(swarm::replay(legacy).reproduced);

  // A v1 record cannot carry the kWorkload violation kind: its value is
  // only meaningful once a unit section exists.
  Writer bad;
  bad.u8(0x57);
  bad.u8(1);
  swarm::encode_spec(bad, record.spec.base);
  bad.varint(1);
  bad.u8(static_cast<std::uint8_t>(swarm::ViolationKind::kWorkload));
  bad.u64(record.digest);
  bad.varint(record.run_bytes.size());
  bad.raw(record.run_bytes);
  EXPECT_THROW((void)swarm::decode_record(bad.bytes()), DecodeError);
}

TEST(DecodeFuzz, RecordWithUnknownWorkloadKindIsRejected) {
  const swarm::SwarmSpec spec = swarm::sample_spec(11, 0);
  const swarm::RunCheck chk = swarm::execute_and_check(spec);
  const swarm::CounterexampleRecord record = swarm::make_record(spec, chk);

  Writer w;
  w.u8(0x57);
  w.u8(2);  // version 2: a unit section follows the spec
  swarm::encode_spec(w, record.spec.base);
  w.varint(1);
  w.u8(6);  // one past kAdaptiveHoldback: unknown workload kind
  swarm::WorkloadSpec filler;
  swarm::encode_workload(w, filler);  // plausible trailing bytes
  w.u64(record.digest);
  EXPECT_THROW((void)swarm::decode_record(w.bytes()), DecodeError);
}

TEST(DecodeFuzz, VersionedSnapshotHeader) {
  // The v2 snapshot opens with 'S' | major | minor and closes with an
  // extension section. Three contracts under fuzzing: a future major is
  // a TYPED rejection, unknown extensions are skipped losslessly, and
  // no mutation of the header bytes can crash the decoder (covered for
  // the whole message by EvaluatorSnapshot above).
  auto cond = std::make_shared<const RiseCondition>("r", 0, 1.0,
                                                    Triggering::kAggressive);
  ConditionEvaluator ce{cond};
  (void)ce.on_update({0, 1, 1.0});
  (void)ce.on_update({0, 2, 5.0});
  const auto valid = encode_evaluator_state(ce);
  ASSERT_EQ(valid[0], 0x53);  // 'S'

  for (std::uint8_t major : {3, 99, 255}) {
    auto future = valid;
    future[1] = major;
    ConditionEvaluator scratch{cond};
    EXPECT_THROW(decode_evaluator_state(future, scratch),
                 UnsupportedVersion);
  }

  // Unknown extension tags — any tag, any payload — must be skipped
  // without disturbing the decoded state.
  util::Rng rng{21};
  for (int trial = 0; trial < 64; ++trial) {
    std::vector<std::uint8_t> extended{valid.begin(), valid.end() - 1};
    Writer w;
    w.varint(1);
    w.u8(static_cast<std::uint8_t>(rng.uniform_int(0, 255)));
    const auto blob = random_bytes(rng, 16);
    w.varint(blob.size());
    w.raw(blob);
    const auto section = w.bytes();
    extended.insert(extended.end(), section.begin(), section.end());
    ConditionEvaluator scratch{cond};
    decode_evaluator_state(extended, scratch);
    EXPECT_EQ(encode_evaluator_state(scratch), valid);
  }
}

TEST(DecodeFuzz, AdminRequest) {
  // A v2 request (with the version extension) and an unknown-command
  // request both fuzz clean. Semantically: unknown command + declared
  // version decodes to known=false; unknown command WITHOUT a version
  // (a v1 peer) stays a DecodeError, preserving the v1 contract.
  service::AdminRequest req;
  req.command = service::AdminCommand::kRestart;
  req.replica = 3;
  fuzz_decoder(
      [](const std::vector<std::uint8_t>& b) {
        (void)service::decode_admin_request(b);
      },
      service::encode_admin_request(req), 22);

  service::AdminRequest unknown;
  unknown.known = false;
  unknown.raw_command = 0x42;
  const auto bytes = service::encode_admin_request(unknown);
  const service::AdminRequest back = service::decode_admin_request(bytes);
  EXPECT_FALSE(back.known);
  EXPECT_EQ(back.raw_command, 0x42);
  EXPECT_EQ(back.version, service::kAdminVersion);
  fuzz_decoder(
      [](const std::vector<std::uint8_t>& b) {
        (void)service::decode_admin_request(b);
      },
      bytes, 23);

  EXPECT_THROW((void)service::decode_admin_request(
                   std::vector<std::uint8_t>{0x42, 0x00}),
               DecodeError);
}

TEST(DecodeFuzz, AdminResponseWithUnsupportedBlock) {
  service::AdminResponse resp;
  resp.ok = false;
  resp.error = "unsupported command";
  service::AdminUnsupported u;
  u.command = 0x42;
  u.server_version = service::kAdminVersion;
  u.min_major = service::kAdminMinMajor;
  u.max_major = service::kAdminMaxMajor;
  u.max_command =
      static_cast<std::uint8_t>(service::AdminCommand::kTraceDump);
  resp.unsupported = u;
  const auto valid = service::encode_admin_response(resp);
  const service::AdminResponse back = service::decode_admin_response(valid);
  ASSERT_TRUE(back.unsupported.has_value());
  EXPECT_EQ(back.unsupported->max_command, u.max_command);
  fuzz_decoder(
      [](const std::vector<std::uint8_t>& b) {
        (void)service::decode_admin_response(b);
      },
      valid, 24);
}

TEST(DecodeFuzz, ShardMap) {
  ShardMap m;
  m.epoch = 9;
  m.shards.push_back(ShardMapEntry{0, 32, {40001, 40002}});
  m.shards.push_back(ShardMapEntry{1, 32, {40003}});
  const auto valid = encode_shard_map(m);
  fuzz_decoder(
      [](const std::vector<std::uint8_t>& b) { (void)decode_shard_map(b); },
      valid, 25);

  // Future majors are a TYPED rejection, never a generic parse error.
  for (std::uint8_t major : {2, 99, 255}) {
    auto future = valid;
    future[1] = major;
    EXPECT_THROW((void)decode_shard_map(future), UnsupportedVersion);
  }
}

TEST(DecodeFuzz, HandoffPacket) {
  HandoffPacket p;
  p.epoch = 3;
  p.from = 0;
  p.to = 2;
  p.replica = 1;
  HandoffEntry e;
  e.var = 4;
  e.watermark = 17;
  e.window = {Update{4, 16, -1.25}, Update{4, 17, 8.5}};
  p.entries.push_back(e);
  const auto valid = encode_handoff(p);
  fuzz_decoder(
      [](const std::vector<std::uint8_t>& b) { (void)decode_handoff(b); },
      valid, 26);

  for (std::uint8_t major : {2, 99, 255}) {
    auto future = valid;
    future[1] = major;
    EXPECT_THROW((void)decode_handoff(future), UnsupportedVersion);
  }
}

TEST(DecodeFuzz, ShardOriginExtension) {
  const auto valid = encode_update_from_shard({3, 21, 4.5}, 1, 6);
  fuzz_decoder(
      [](const std::vector<std::uint8_t>& b) {
        ShardOrigin origin;
        (void)decode_shard_origin(b, origin);
      },
      valid, 27);
}

TEST(DecodeFuzz, LogRecoveryNeverThrowsExceptOnFutureMajor) {
  // recover_update_bytes / recover_log_bytes treat corruption as data
  // (counted, never thrown) — the ONLY exception that may escape is
  // UnsupportedVersion from a well-formed future-major header record.
  std::vector<std::uint8_t> wal = frame(store::encode_log_header(
      store::kUpdateLogFormatId, store::kLogFormatVersion));
  for (SeqNo s = 1; s <= 4; ++s) {
    const auto f = frame(encode_update({0, s, 1.0 * static_cast<double>(s)}));
    wal.insert(wal.end(), f.begin(), f.end());
  }
  std::vector<std::uint8_t> alog = frame(store::encode_log_header(
      store::kAlertLogFormatId, store::kLogFormatVersion));
  {
    Writer rec;
    rec.u8(store::kAlertRecord);
    rec.raw(encode_alert(sample_alert(), AlertEncoding::kFullHistories));
    const auto f = frame(rec.bytes());
    alog.insert(alog.end(), f.begin(), f.end());
  }

  util::Rng rng{25};
  const auto fuzz_recovery = [&](auto&& recover,
                                 const std::vector<std::uint8_t>& valid) {
    for (int i = 0; i < 300; ++i) {
      const auto bytes = random_bytes(rng, 128);
      try {
        (void)recover(bytes);
      } catch (const UnsupportedVersion&) {
      }
    }
    for (std::size_t len = 0; len < valid.size(); ++len) {
      try {
        (void)recover({valid.begin(),
                       valid.begin() + static_cast<std::ptrdiff_t>(len)});
      } catch (const UnsupportedVersion&) {
      }
    }
    for (std::size_t i = 0; i < valid.size(); ++i) {
      for (std::uint8_t delta : {0x01, 0x80, 0xff}) {
        auto mutated = valid;
        mutated[i] ^= delta;
        try {
          (void)recover(mutated);
        } catch (const UnsupportedVersion&) {
        }
      }
    }
  };
  fuzz_recovery(
      [](std::vector<std::uint8_t> b) {
        return store::recover_update_bytes(b);
      },
      wal);
  fuzz_recovery(
      [](std::vector<std::uint8_t> b) { return store::recover_log_bytes(b); },
      alog);
}

TEST(DecodeFuzz, FrameCursorOnGarbageStreams) {
  // The cursor must terminate and never emit a CRC-invalid payload,
  // whatever bytes arrive.
  util::Rng rng{8};
  for (int trial = 0; trial < 200; ++trial) {
    FrameCursor cursor;
    cursor.feed(random_bytes(rng, 512));
    int emitted = 0;
    while (auto payload = cursor.next()) {
      ++emitted;
      ASSERT_LT(emitted, 1000);  // termination sanity
    }
  }
}

}  // namespace
}  // namespace rcm::wire
