// Tests for the condition expression language: lexer, parser, static
// analyses (degree inference, type checking, conservativeness) and the
// compiled ExpressionCondition, including every condition the paper
// names written as an expression.
#include <gtest/gtest.h>

#include "core/expr/analysis.hpp"
#include "core/expr/expression_condition.hpp"
#include "core/expr/lexer.hpp"
#include "core/expr/parser.hpp"

namespace rcm::expr {
namespace {

// ------------------------------------------------------------- lexer ----

TEST(Lexer, TokenizesOperatorsAndNumbers) {
  const auto tokens = tokenize("x[0] >= 3.5e2 && !(y[-1] != 2)");
  std::vector<TokenKind> kinds;
  for (const Token& t : tokens) kinds.push_back(t.kind);
  EXPECT_EQ(kinds, (std::vector<TokenKind>{
                       TokenKind::kIdent, TokenKind::kLBracket,
                       TokenKind::kNumber, TokenKind::kRBracket,
                       TokenKind::kGe, TokenKind::kNumber, TokenKind::kAndAnd,
                       TokenKind::kNot, TokenKind::kLParen, TokenKind::kIdent,
                       TokenKind::kLBracket, TokenKind::kMinus,
                       TokenKind::kNumber, TokenKind::kRBracket,
                       TokenKind::kNotEq, TokenKind::kNumber,
                       TokenKind::kRParen, TokenKind::kEnd}));
}

TEST(Lexer, ScientificNotation) {
  const auto tokens = tokenize("1e3 2.5E-2 7e+1");
  EXPECT_DOUBLE_EQ(tokens[0].number, 1000.0);
  EXPECT_DOUBLE_EQ(tokens[1].number, 0.025);
  EXPECT_DOUBLE_EQ(tokens[2].number, 70.0);
}

TEST(Lexer, RejectsSingleAmpersandPipeEquals) {
  EXPECT_THROW(tokenize("a & b"), SyntaxError);
  EXPECT_THROW(tokenize("a | b"), SyntaxError);
  EXPECT_THROW(tokenize("a = b"), SyntaxError);
  EXPECT_THROW(tokenize("a # b"), SyntaxError);
}

TEST(Lexer, ReportsOffset) {
  try {
    (void)tokenize("x[0] $ 3");
    FAIL() << "expected SyntaxError";
  } catch (const SyntaxError& e) {
    EXPECT_EQ(e.pos(), 5u);
  }
}

// ------------------------------------------------------------ parser ----

TEST(Parser, PrecedenceArithmeticOverComparison) {
  const auto ast = parse("x[0] + 2 * 3 > 10");
  EXPECT_EQ(to_string(*ast), "((x[0] + (2 * 3)) > 10)");
}

TEST(Parser, PrecedenceAndOverOr) {
  const auto ast = parse("x[0] > 1 || x[0] > 2 && x[0] > 3");
  EXPECT_EQ(to_string(*ast), "((x[0] > 1) || ((x[0] > 2) && (x[0] > 3)))");
}

TEST(Parser, LeftAssociativity) {
  EXPECT_EQ(to_string(*parse("x[0] - 1 - 2 > 0")),
            "(((x[0] - 1) - 2) > 0)");
}

TEST(Parser, HistoryIndexForms) {
  EXPECT_EQ(to_string(*parse("x[0] > x[-2]")), "(x[0] > x[-2])");
  EXPECT_EQ(to_string(*parse("x[0].seqno == x[-1].seqno + 1")),
            "(x[0].seqno == (x[-1].seqno + 1))");
}

TEST(Parser, Intrinsics) {
  EXPECT_EQ(to_string(*parse("abs(x[0] - y[0]) > 100")),
            "(abs((x[0] - y[0])) > 100)");
  EXPECT_EQ(to_string(*parse("min(x[0], y[0]) < max(x[0], y[0])")),
            "(min(x[0], y[0]) < max(x[0], y[0]))");
}

TEST(Parser, ConsecutiveGuard) {
  EXPECT_EQ(to_string(*parse("consecutive(x) && x[0] > 1")),
            "(consecutive(x) && (x[0] > 1))");
}

TEST(Parser, RejectsPositiveIndex) {
  EXPECT_THROW(parse("x[1] > 0"), SyntaxError);
}

TEST(Parser, RejectsNonIntegerIndex) {
  EXPECT_THROW(parse("x[0.5] > 0"), SyntaxError);
  EXPECT_THROW(parse("x[y] > 0"), SyntaxError);
}

TEST(Parser, RejectsUnknownField) {
  EXPECT_THROW(parse("x[0].frobnicate > 0"), SyntaxError);
}

TEST(Parser, RejectsTrailingGarbage) {
  EXPECT_THROW(parse("x[0] > 0 x"), SyntaxError);
}

TEST(Parser, RejectsUnbalancedParens) {
  EXPECT_THROW(parse("(x[0] > 0"), SyntaxError);
  EXPECT_THROW(parse("x[0] > 0)"), SyntaxError);
}

TEST(Parser, RejectsEmptyInput) { EXPECT_THROW(parse(""), SyntaxError); }

TEST(Parser, BooleanLiterals) {
  EXPECT_EQ(to_string(*parse("true || false")), "(true || false)");
}

// ---------------------------------------------------------- analyses ----

TEST(Analysis, DegreeInferenceFollowsPaperRule) {
  // "a condition that uses only Hx[0] and Hx[-2] is of degree 3 to x".
  const auto ast = parse("x[0] - x[-2] > 5");
  const DegreeMap d = infer_degrees(*ast);
  EXPECT_EQ(d.at("x"), 3);
}

TEST(Analysis, DegreePerVariable) {
  const auto ast = parse("x[0] - x[-1] > 5 && y[0] > 2");
  const DegreeMap d = infer_degrees(*ast);
  EXPECT_EQ(d.at("x"), 2);
  EXPECT_EQ(d.at("y"), 1);
}

TEST(Analysis, ConsecutiveImpliesDegreeTwo) {
  const auto ast = parse("x[0] > 5 && consecutive(x)");
  EXPECT_EQ(infer_degrees(*ast).at("x"), 2);
}

TEST(Analysis, NoVariableIsAnError) {
  EXPECT_THROW(infer_degrees(*parse("1 > 2")), AnalysisError);
}

TEST(Analysis, TypeCheckAcceptsWellTyped) {
  EXPECT_EQ(check_types(*parse("x[0] > 1 && consecutive(x)")), Type::kBool);
  EXPECT_EQ(check_types(*parse("x[0] + 1")), Type::kNumber);
}

TEST(Analysis, TypeCheckRejectsMixedOperands) {
  EXPECT_THROW(check_types(*parse("x[0] && 3")), AnalysisError);
  EXPECT_THROW(check_types(*parse("(x[0] > 1) + 2")), AnalysisError);
  EXPECT_THROW(check_types(*parse("!x[0]")), AnalysisError);
  EXPECT_THROW(check_types(*parse("-(x[0] > 1)")), AnalysisError);
  EXPECT_THROW(check_types(*parse("abs(x[0] > 1)")), AnalysisError);
}

TEST(Analysis, ConservativeDetection) {
  // c3 is conservative: the historical variable is guarded.
  EXPECT_TRUE(is_conservative(*parse("x[0] - x[-1] > 200 && consecutive(x)")));
  // c2 is aggressive: no guard.
  EXPECT_FALSE(is_conservative(*parse("x[0] - x[-1] > 200")));
  // Degree-1 conditions are vacuously conservative.
  EXPECT_TRUE(is_conservative(*parse("x[0] > 3000")));
  // Guard under || does not make it conservative (the other branch can
  // still fire across a gap).
  EXPECT_FALSE(
      is_conservative(*parse("x[0] - x[-1] > 200 || consecutive(x)")));
  // Multi-variable: every historical variable needs its own guard.
  EXPECT_FALSE(is_conservative(
      *parse("x[0] - x[-1] + y[0] - y[-1] > 5 && consecutive(x)")));
  EXPECT_TRUE(is_conservative(*parse(
      "x[0] - x[-1] + y[0] - y[-1] > 5 && consecutive(x) && consecutive(y)")));
}

// ------------------------------------------------- compiled condition ----

HistorySet feed(const Condition& c, const std::vector<Update>& updates) {
  HistorySet h = c.make_history_set();
  for (const Update& u : updates) h.push(u);
  return h;
}

TEST(ExpressionCondition, C1Compiles) {
  VariableRegistry vars;
  auto c1 = compile_condition("overheat", "x[0] > 3000", vars);
  EXPECT_EQ(c1->name(), "overheat");
  EXPECT_EQ(c1->degree(c1->variables()[0]), 1);
  EXPECT_EQ(c1->triggering(), Triggering::kConservative);
  EXPECT_TRUE(c1->evaluate(feed(*c1, {{vars.intern("x"), 2, 3100.0}})));
  EXPECT_FALSE(c1->evaluate(feed(*c1, {{vars.intern("x"), 1, 2900.0}})));
}

TEST(ExpressionCondition, C2AndC3MatchBuiltinSemantics) {
  VariableRegistry vars;
  const VarId x = vars.intern("x");
  auto c2 = compile_condition("rise.aggr", "x[0] - x[-1] > 200", vars);
  auto c3 = compile_condition("rise.cons",
                              "x[0] - x[-1] > 200 && consecutive(x)", vars);
  EXPECT_EQ(c2->triggering(), Triggering::kAggressive);
  EXPECT_EQ(c3->triggering(), Triggering::kConservative);

  const std::vector<Update> gap = {{x, 5, 50.0}, {x, 7, 300.0}};
  EXPECT_TRUE(c2->evaluate(feed(*c2, gap)));
  EXPECT_FALSE(c3->evaluate(feed(*c3, gap)));

  const std::vector<Update> consec = {{x, 6, 50.0}, {x, 7, 300.0}};
  EXPECT_TRUE(c2->evaluate(feed(*c2, consec)));
  EXPECT_TRUE(c3->evaluate(feed(*c3, consec)));
}

TEST(ExpressionCondition, SeqnoFieldWorks) {
  VariableRegistry vars;
  const VarId x = vars.intern("x");
  auto c = compile_condition("explicit.c3",
                             "x[0] - x[-1] > 200 && "
                             "x[0].seqno == x[-1].seqno + 1",
                             vars);
  EXPECT_TRUE(c->evaluate(feed(*c, {{x, 6, 0.0}, {x, 7, 300.0}})));
  EXPECT_FALSE(c->evaluate(feed(*c, {{x, 5, 0.0}, {x, 7, 300.0}})));
}

TEST(ExpressionCondition, MultiVariableCm) {
  VariableRegistry vars;
  auto cm = compile_condition("diff", "abs(x[0] - y[0]) > 100", vars);
  const VarId x = vars.intern("x"), y = vars.intern("y");
  EXPECT_EQ(cm->variables().size(), 2u);
  EXPECT_TRUE(cm->evaluate(feed(*cm, {{x, 2, 1200.0}, {y, 1, 1050.0}})));
  EXPECT_FALSE(cm->evaluate(feed(*cm, {{x, 1, 1000.0}, {y, 1, 1050.0}})));
}

TEST(ExpressionCondition, ShortCircuitEvaluation) {
  VariableRegistry vars;
  const VarId x = vars.intern("x");
  // With a gap, the right operand would read x[-1] of a gap window —
  // legal — but short-circuiting must make the guard decisive first.
  auto c = compile_condition("g", "consecutive(x) && x[0] / x[-1] > 2", vars);
  EXPECT_FALSE(c->evaluate(feed(*c, {{x, 1, 0.0}, {x, 3, 10.0}})));
}

TEST(ExpressionCondition, RejectsNumericRoot) {
  VariableRegistry vars;
  EXPECT_THROW(compile_condition("bad", "x[0] + 1", vars), AnalysisError);
}

TEST(ExpressionCondition, SharesRegistryAcrossConditions) {
  VariableRegistry vars;
  auto a = compile_condition("a", "temp[0] > 1", vars);
  auto b = compile_condition("b", "temp[0] < 0", vars);
  EXPECT_EQ(a->variables(), b->variables());
  EXPECT_EQ(vars.size(), 1u);
}

TEST(ExpressionCondition, SourceRoundTrips) {
  VariableRegistry vars;
  auto c = compile_condition("c", "x[0]-x[-1]>200&&consecutive(x)", vars);
  const auto& ec = dynamic_cast<const ExpressionCondition&>(*c);
  EXPECT_EQ(ec.source(), "(((x[0] - x[-1]) > 200) && consecutive(x))");
}

}  // namespace
}  // namespace rcm::expr
