// Run recording: byte-level round trips, file round trips, verdict
// stability across save/load (an audit must reach the same conclusions
// as the live checker), and robustness against corrupted record files.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <memory>

#include "check/consistency.hpp"
#include "check/properties.hpp"
#include "check/run_record.hpp"
#include "core/builtin_conditions.hpp"
#include "exp/scenarios.hpp"
#include "sim/system.hpp"
#include "wire/buffer.hpp"

namespace rcm::check {
namespace {

namespace fs = std::filesystem;

class TempPath {
 public:
  explicit TempPath(const std::string& stem) {
    static int counter = 0;
    path_ = fs::temp_directory_path() /
            (stem + "." + std::to_string(::getpid()) + "." +
             std::to_string(counter++));
    fs::remove(path_);
  }
  ~TempPath() { fs::remove(path_); }
  [[nodiscard]] const fs::path& get() const noexcept { return path_; }

 private:
  fs::path path_;
};

SystemRun sample_run(std::uint64_t seed) {
  const auto spec =
      exp::single_var_scenario(exp::Scenario::kLossyAggressive);
  util::Rng trial{seed};
  sim::SystemConfig config;
  config.condition = spec.condition;
  config.dm_traces = spec.make_traces(30, trial);
  config.front.loss = spec.front_loss;
  config.filter = FilterKind::kAd1;
  config.seed = seed * 3;
  return sim::run_system(config).as_system_run(spec.condition);
}

TEST(RunRecord, BytesRoundTrip) {
  const SystemRun original = sample_run(1);
  const auto bytes = encode_system_run(original);
  const SystemRun loaded = decode_system_run(bytes, original.condition);
  EXPECT_EQ(loaded.ce_inputs, original.ce_inputs);
  ASSERT_EQ(loaded.displayed.size(), original.displayed.size());
  for (std::size_t i = 0; i < loaded.displayed.size(); ++i)
    EXPECT_EQ(loaded.displayed[i].key(), original.displayed[i].key());
}

TEST(RunRecord, FileRoundTripPreservesVerdicts) {
  TempPath path{"rcm_run"};
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    const SystemRun original = sample_run(seed);
    save_run(path.get(), original);
    const SystemRun loaded = load_run(path.get(), original.condition);

    const auto live = check_run(original);
    const auto audited = check_run(loaded);
    EXPECT_EQ(live.ordered, audited.ordered) << seed;
    EXPECT_EQ(live.complete, audited.complete) << seed;
    EXPECT_EQ(live.consistent, audited.consistent) << seed;
  }
}

TEST(RunRecord, EmptyRunRoundTrips) {
  SystemRun run;
  run.condition = std::make_shared<const ThresholdCondition>("t", 0, 1.0);
  const auto loaded =
      decode_system_run(encode_system_run(run), run.condition);
  EXPECT_TRUE(loaded.ce_inputs.empty());
  EXPECT_TRUE(loaded.displayed.empty());
}

TEST(RunRecord, RejectsGarbageBytes) {
  auto cond = std::make_shared<const ThresholdCondition>("t", 0, 1.0);
  const std::vector<std::uint8_t> garbage{1, 2, 3};
  EXPECT_THROW((void)decode_system_run(garbage, cond), wire::DecodeError);
}

TEST(RunRecord, CorruptedFileIsRejectedNotMisread) {
  TempPath path{"rcm_run"};
  const SystemRun original = sample_run(2);
  save_run(path.get(), original);
  // Flip a byte in the middle: the frame CRC must catch it.
  std::fstream f{path.get(),
                 std::ios::binary | std::ios::in | std::ios::out};
  const auto size = static_cast<std::streamoff>(fs::file_size(path.get()));
  char byte;
  f.seekg(size / 2);
  f.get(byte);
  f.seekp(size / 2);
  f.put(static_cast<char>(byte ^ 0x40));
  f.close();
  EXPECT_THROW((void)load_run(path.get(), original.condition),
               wire::DecodeError);
}

TEST(RunRecord, MissingFileThrows) {
  auto cond = std::make_shared<const ThresholdCondition>("t", 0, 1.0);
  EXPECT_THROW((void)load_run("/nonexistent/run.rcmrun", cond),
               std::runtime_error);
}

}  // namespace
}  // namespace rcm::check
