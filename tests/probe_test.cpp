// Availability probe tests.
//
// ProbeMonitor is pure, so its window/latency semantics are pinned with
// hand-driven clocks. The live test is the acceptance gate: run a real
// AlertService, kill its only replica for a window, and require the probe
// to (a) report an unavailability window covering the outage and (b)
// surface "the service is slow" as an alert produced by rcm's own
// condition language ("probe.latency.exceeded"), evaluated by an ordinary
// ConditionEvaluator over the latency samples.
#include <gtest/gtest.h>

#include <chrono>
#include <filesystem>
#include <string>
#include <thread>

#include "service/alert_service.hpp"
#include "service/probe.hpp"
#include "swarm/spec.hpp"

namespace rcm::service {
namespace {

using namespace std::chrono_literals;

ProbeMonitor::Options budget(double seconds) {
  ProbeMonitor::Options o;
  o.latency_budget = seconds;
  return o;
}

TEST(ProbeMonitor, AllAnswersInBudgetMeansFullAvailability) {
  ProbeMonitor m{budget(0.25)};
  for (SeqNo seq = 1; seq <= 5; ++seq) {
    const double at = 0.1 * static_cast<double>(seq);
    m.on_probe_sent(seq, at);
    m.on_answer(seq, at + 0.05);
  }
  m.on_time(1.0);
  const ProbeReport r = m.report();
  EXPECT_EQ(r.probes_sent, 5u);
  EXPECT_EQ(r.probes_answered, 5u);
  EXPECT_NEAR(r.max_latency, 0.05, 1e-12);
  EXPECT_EQ(r.availability, 1.0);
  EXPECT_TRUE(r.windows.empty());
  EXPECT_TRUE(r.latency_alerts.empty());
}

TEST(ProbeMonitor, LateProbeOpensAWindowAndRecoveryClosesIt) {
  ProbeMonitor m{budget(0.1)};
  m.on_probe_sent(1, 0.0);
  m.on_time(0.5);  // probe 1 is now 0.4s overdue
  m.on_probe_sent(2, 0.5);
  m.on_answer(2, 0.55);  // in budget: the service recovered
  m.on_time(1.0);

  const ProbeReport r = m.report();
  ASSERT_EQ(r.windows.size(), 1u);
  EXPECT_TRUE(r.windows[0].closed);
  EXPECT_EQ(r.windows[0].from, 0.0);  // the bad probe's send time
  EXPECT_EQ(r.windows[0].to, 0.55);   // the recovering probe's answer
  EXPECT_LT(r.availability, 1.0);
  EXPECT_GT(r.availability, 0.0);

  // The dogfooded alert: raised by the condition-language CE, once.
  ASSERT_EQ(r.latency_alerts.size(), 1u);
  EXPECT_EQ(r.latency_alerts[0].cond, "probe.latency.exceeded");
}

TEST(ProbeMonitor, LateAnswerCountsOnceAndDoesNotCloseTheWindow) {
  ProbeMonitor m{budget(0.1)};
  m.on_probe_sent(1, 0.0);
  m.on_time(0.5);
  m.on_answer(1, 0.6);  // answered, but 0.6s late: still unavailable
  m.on_time(1.0);
  const ProbeReport r = m.report();
  EXPECT_EQ(r.probes_answered, 1u);
  EXPECT_NEAR(r.max_latency, 0.6, 1e-12);
  ASSERT_EQ(r.windows.size(), 1u);
  EXPECT_FALSE(r.windows[0].closed);
  EXPECT_EQ(r.windows[0].to, 1.0);  // open windows extend to the horizon
  EXPECT_EQ(r.latency_alerts.size(), 1u);  // late-mark fed the sample once
}

TEST(ProbeMonitor, BackToBackOutagesYieldSeparateWindows) {
  ProbeMonitor m{budget(0.1)};
  m.on_probe_sent(1, 0.0);
  m.on_time(0.3);
  m.on_probe_sent(2, 0.3);
  m.on_answer(2, 0.35);  // closes window 1
  m.on_probe_sent(3, 0.5);
  m.on_time(0.9);
  m.on_probe_sent(4, 0.9);
  m.on_answer(4, 0.95);  // closes window 2
  const ProbeReport r = m.report();
  ASSERT_EQ(r.windows.size(), 2u);
  EXPECT_TRUE(r.windows[0].closed);
  EXPECT_TRUE(r.windows[1].closed);
  EXPECT_EQ(r.windows[1].from, 0.5);
  EXPECT_EQ(r.latency_alerts.size(), 2u);
}

TEST(ProbeMonitor, ReportIsDeterministicForACallSequence) {
  const auto drive = [] {
    ProbeMonitor m{budget(0.2)};
    for (SeqNo seq = 1; seq <= 20; ++seq) {
      const double at = 0.05 * static_cast<double>(seq);
      m.on_probe_sent(seq, at);
      if (seq % 3) m.on_answer(seq, at + (seq % 5 ? 0.01 : 0.5));
      m.on_time(at + 0.02);
    }
    m.on_time(2.0);
    return m.report();
  };
  const ProbeReport a = drive();
  const ProbeReport b = drive();
  EXPECT_EQ(a.probes_sent, b.probes_sent);
  EXPECT_EQ(a.probes_answered, b.probes_answered);
  EXPECT_EQ(a.availability, b.availability);
  ASSERT_EQ(a.windows.size(), b.windows.size());
  for (std::size_t i = 0; i < a.windows.size(); ++i) {
    EXPECT_EQ(a.windows[i].from, b.windows[i].from);
    EXPECT_EQ(a.windows[i].to, b.windows[i].to);
  }
  EXPECT_EQ(a.latency_alerts.size(), b.latency_alerts.size());
}

// ---- live: probe against a real service with an injected kill window ----

TEST(AvailabilityProbe, ReportsTheInjectedKillWindow) {
  const std::filesystem::path dir =
      std::filesystem::temp_directory_path() / "rcm_probe_kill";
  std::filesystem::remove_all(dir);

  ServiceConfig cfg;
  cfg.condition = swarm::build_condition(swarm::ConditionKind::kThreshold, 50.0);
  cfg.num_replicas = 1;
  cfg.filter = FilterKind::kAd1;
  cfg.data_dir = dir;
  cfg.auto_restart = false;
  cfg.poll_interval = 5ms;
  AlertService svc{cfg};

  ProbeOptions options;
  options.var = 0;
  options.trigger_value = 100.0;  // every probe trips the threshold
  options.interval = 25ms;
  options.latency_budget = 0.2;
  AvailabilityProbe probe{svc, options};
  probe.start();

  std::this_thread::sleep_for(400ms);  // healthy baseline
  svc.kill_replica(0);
  std::this_thread::sleep_for(800ms);  // outage: 4x the budget
  svc.restart_replica(0);
  std::this_thread::sleep_for(500ms);  // recovery
  probe.stop();

  const ProbeReport report = probe.report();
  EXPECT_GT(report.probes_sent, 20u);
  EXPECT_GT(report.probes_answered, 0u);

  // The kill window must surface as at least one unavailability window of
  // roughly the outage's length (the probe can only observe it once the
  // budget expires, so the bound is conservative).
  ASSERT_FALSE(report.windows.empty());
  double longest = 0.0;
  for (const UnavailabilityWindow& w : report.windows)
    longest = std::max(longest, w.duration());
  EXPECT_GE(longest, 0.3);
  EXPECT_LT(report.availability, 1.0);

  // ...and as the dogfooded condition-language alert.
  ASSERT_FALSE(report.latency_alerts.empty());
  EXPECT_EQ(report.latency_alerts.front().cond, "probe.latency.exceeded");

  svc.drain();
  std::filesystem::remove_all(dir);
}

TEST(AvailabilityProbe, HealthyServiceShowsNoWindows) {
  const std::filesystem::path dir =
      std::filesystem::temp_directory_path() / "rcm_probe_healthy";
  std::filesystem::remove_all(dir);

  ServiceConfig cfg;
  cfg.condition = swarm::build_condition(swarm::ConditionKind::kThreshold, 50.0);
  cfg.num_replicas = 1;
  cfg.filter = FilterKind::kAd1;
  cfg.data_dir = dir;
  cfg.auto_restart = false;
  cfg.poll_interval = 5ms;
  AlertService svc{cfg};

  ProbeOptions options;
  options.var = 0;
  options.trigger_value = 100.0;
  options.interval = 25ms;
  // Generous budget: loopback round trips are well under a second even on
  // a loaded CI box, so a healthy service must never look unavailable.
  options.latency_budget = 1.0;
  AvailabilityProbe probe{svc, options};
  probe.start();
  std::this_thread::sleep_for(500ms);
  probe.stop();

  const ProbeReport report = probe.report();
  EXPECT_GT(report.probes_sent, 5u);
  EXPECT_GT(report.probes_answered, 0u);
  EXPECT_TRUE(report.windows.empty());
  EXPECT_TRUE(report.latency_alerts.empty());
  EXPECT_EQ(report.availability, 1.0);

  svc.drain();
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace rcm::service
