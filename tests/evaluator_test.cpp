// Tests for the Condition Evaluator and the mapping T (paper §2, §3):
// triggering semantics, undefined-history suppression, out-of-order
// discard, alert contents, crash-reset behaviour.
#include <gtest/gtest.h>

#include <memory>

#include "core/builtin_conditions.hpp"
#include "core/evaluator.hpp"

namespace rcm {
namespace {

ConditionPtr overheat() {
  return std::make_shared<const ThresholdCondition>("overheat", 0, 3000.0);
}

ConditionPtr rise(Triggering trig) {
  return std::make_shared<const RiseCondition>("rise", 0, 200.0, trig);
}

TEST(ConditionEvaluator, NullConditionThrows) {
  EXPECT_THROW(ConditionEvaluator(nullptr), std::invalid_argument);
}

TEST(ConditionEvaluator, Example1Ce1ProducesTwoAlerts) {
  // U1 = <1x(2900), 2x(3100), 3x(3200)> under c1 -> alerts on 2x and 3x.
  ConditionEvaluator ce{overheat(), "CE1"};
  EXPECT_FALSE(ce.on_update({0, 1, 2900.0}).has_value());
  const auto a1 = ce.on_update({0, 2, 3100.0});
  ASSERT_TRUE(a1.has_value());
  EXPECT_EQ(a1->seqno(0), 2);
  const auto a2 = ce.on_update({0, 3, 3200.0});
  ASSERT_TRUE(a2.has_value());
  EXPECT_EQ(a2->seqno(0), 3);
  EXPECT_EQ(ce.emitted().size(), 2u);
  EXPECT_EQ(ce.received().size(), 3u);
}

TEST(ConditionEvaluator, Example1Ce2MissingUpdateProducesOneAlert) {
  // U2 = <1x, 3x>: one alert, on 3x.
  ConditionEvaluator ce{overheat(), "CE2"};
  EXPECT_FALSE(ce.on_update({0, 1, 2900.0}).has_value());
  const auto a = ce.on_update({0, 3, 3200.0});
  ASSERT_TRUE(a.has_value());
  EXPECT_EQ(a->seqno(0), 3);
}

TEST(ConditionEvaluator, HistoricalConditionWaitsForDefinedHistory) {
  // Degree-2 condition: the first update alone must never trigger, even
  // if the rise from "nothing" would be large.
  ConditionEvaluator ce{rise(Triggering::kAggressive)};
  EXPECT_FALSE(ce.on_update({0, 1, 10000.0}).has_value());
  EXPECT_TRUE(ce.on_update({0, 2, 10500.0}).has_value());
}

TEST(ConditionEvaluator, DiscardsStaleAndDuplicateSeqnos) {
  ConditionEvaluator ce{overheat()};
  EXPECT_TRUE(ce.would_accept({0, 5, 1.0}));
  (void)ce.on_update({0, 5, 1.0});
  EXPECT_FALSE(ce.would_accept({0, 5, 1.0}));  // duplicate
  EXPECT_FALSE(ce.would_accept({0, 3, 1.0}));  // stale
  EXPECT_FALSE(ce.on_update({0, 3, 9999.0}).has_value());
  EXPECT_EQ(ce.received().size(), 1u);
}

TEST(ConditionEvaluator, IgnoresForeignVariables) {
  ConditionEvaluator ce{overheat()};
  EXPECT_FALSE(ce.would_accept({7, 1, 5000.0}));
  EXPECT_FALSE(ce.on_update({7, 1, 5000.0}).has_value());
  EXPECT_TRUE(ce.received().empty());
}

TEST(ConditionEvaluator, AlertCarriesFullWindow) {
  ConditionEvaluator ce{rise(Triggering::kAggressive)};
  (void)ce.on_update({0, 1, 100.0});
  const auto a = ce.on_update({0, 3, 400.0});  // 2 lost; aggressive fires
  ASSERT_TRUE(a.has_value());
  EXPECT_EQ(a->cond, "rise");
  EXPECT_EQ(a->history_seqnos(0), (std::vector<SeqNo>{1, 3}));
  EXPECT_EQ(a->histories.at(0)[0].value, 100.0);
  EXPECT_EQ(a->histories.at(0)[1].value, 400.0);
}

TEST(ConditionEvaluator, CrashResetForgetsHistories) {
  ConditionEvaluator ce{rise(Triggering::kAggressive)};
  (void)ce.on_update({0, 1, 100.0});
  ce.crash_reset();
  // After restart the history is undefined again: the next update must
  // not trigger even though 400-100 > 200.
  EXPECT_FALSE(ce.on_update({0, 2, 400.0}).has_value());
  // But the received log (what the world saw delivered) is intact.
  EXPECT_EQ(ce.received().size(), 2u);
}

TEST(ConditionEvaluator, ReplicaIdIsMetadataOnly) {
  ConditionEvaluator a{overheat(), "CE1"};
  ConditionEvaluator b{overheat(), "CE2"};
  EXPECT_EQ(a.replica_id(), "CE1");
  const auto ra = a.on_update({0, 1, 3500.0});
  const auto rb = b.on_update({0, 1, 3500.0});
  ASSERT_TRUE(ra.has_value());
  ASSERT_TRUE(rb.has_value());
  EXPECT_EQ(ra->key(), rb->key());
}

TEST(EvaluateTrace, MatchesIncrementalEvaluator) {
  const std::vector<Update> u = {
      {0, 1, 2900.0}, {0, 2, 3100.0}, {0, 3, 2800.0}, {0, 4, 3300.0}};
  const auto alerts = evaluate_trace(overheat(), u);
  ASSERT_EQ(alerts.size(), 2u);
  EXPECT_EQ(alerts[0].seqno(0), 2);
  EXPECT_EQ(alerts[1].seqno(0), 4);
}

TEST(EvaluateTrace, EmptyInputEmptyOutput) {
  EXPECT_TRUE(evaluate_trace(overheat(), {}).empty());
}

TEST(EvaluateTrace, ConservativeSkipsGapWindows) {
  // c3 on U = <1(1000), 2(1500)> ⊔ <3(2000), 4(2500)> = <1,2,3,4>:
  // alerts on 2, 3, 4 (the Theorem 3 reference computation).
  const std::vector<Update> u = {
      {0, 1, 1000.0}, {0, 2, 1500.0}, {0, 3, 2000.0}, {0, 4, 2500.0}};
  const auto alerts = evaluate_trace(rise(Triggering::kConservative), u);
  ASSERT_EQ(alerts.size(), 3u);
  EXPECT_EQ(alerts[0].seqno(0), 2);
  EXPECT_EQ(alerts[1].seqno(0), 3);
  EXPECT_EQ(alerts[2].seqno(0), 4);
}

TEST(EvaluateTrace, MultiVariableEvaluatesOnEveryArrival) {
  auto cm = std::make_shared<const AbsDiffCondition>("diff", 0, 1, 100.0);
  // x=1000; y=1050 (no); x=1200 (|1200-1050|=150 yes); y=1150 (no).
  const std::vector<Update> u = {
      {0, 1, 1000.0}, {1, 1, 1050.0}, {0, 2, 1200.0}, {1, 2, 1150.0}};
  const auto alerts = evaluate_trace(cm, u);
  ASSERT_EQ(alerts.size(), 1u);
  EXPECT_EQ(alerts[0].seqno(0), 2);
  EXPECT_EQ(alerts[0].seqno(1), 1);
}

TEST(Alert, KeyEqualityIsHistoryEquality) {
  // AD-1's notion: same condition, same windows.
  ConditionEvaluator ce1{rise(Triggering::kAggressive), "CE1"};
  ConditionEvaluator ce2{rise(Triggering::kAggressive), "CE2"};
  (void)ce1.on_update({0, 2, 100.0});
  (void)ce2.on_update({0, 1, 100.0});
  const auto a1 = ce1.on_update({0, 3, 400.0});  // window {2,3}
  const auto a2 = ce2.on_update({0, 3, 400.0});  // window {1,3}
  ASSERT_TRUE(a1 && a2);
  EXPECT_NE(a1->key(), a2->key());  // "AD-1 will not recognize them"
  EXPECT_NE(a1->checksum(), a2->checksum());
}

TEST(Alert, ToStringUsesRegistryNames) {
  VariableRegistry vars;
  const VarId x = vars.intern("reactor");
  auto cond = std::make_shared<const ThresholdCondition>("hot", x, 1.0);
  ConditionEvaluator ce{cond};
  const auto a = ce.on_update({x, 4, 2.0});
  ASSERT_TRUE(a.has_value());
  EXPECT_EQ(to_string(*a, vars), "hot{reactor:[4]}");
}

}  // namespace
}  // namespace rcm
