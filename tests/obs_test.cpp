// Tests for the rcm::obs metrics layer: counter/histogram correctness
// (including the empty / single-sample / all-equal percentile edges),
// JSON snapshot round-trip, and lossless concurrent increments.
#include "obs/metrics.hpp"

#include <gtest/gtest.h>

#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

namespace rcm::obs {
namespace {

// Minimal JSON well-formedness check: balanced {}/[] outside strings and
// properly terminated strings. Not a full parser, but it catches every
// emitter bug a missing comma/brace/escape could introduce.
bool json_well_formed(const std::string& s) {
  std::vector<char> stack;
  bool in_string = false;
  for (std::size_t i = 0; i < s.size(); ++i) {
    const char c = s[i];
    if (in_string) {
      if (c == '\\') {
        ++i;  // skip the escaped character
      } else if (c == '"') {
        in_string = false;
      }
      continue;
    }
    switch (c) {
      case '"': in_string = true; break;
      case '{': stack.push_back('}'); break;
      case '[': stack.push_back(']'); break;
      case '}':
      case ']':
        if (stack.empty() || stack.back() != c) return false;
        stack.pop_back();
        break;
      default: break;
    }
  }
  return !in_string && stack.empty();
}

// Value-behavioral tests only make sense when recording is compiled in:
// under -DRCM_NO_METRICS inc()/record() are no-ops by design, and the
// structural tests below (bounds validation, empty-registry snapshots)
// plus the nometrics CI job carry the coverage.
#if RCM_METRICS_ENABLED
TEST(CounterTest, IncrementAndReset) {
  Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.inc();
  c.inc(41);
  EXPECT_EQ(c.value(), 42u);
  c.reset();
  EXPECT_EQ(c.value(), 0u);
}
#endif  // RCM_METRICS_ENABLED

TEST(HistogramTest, RejectsBadBounds) {
  EXPECT_THROW(Histogram({}), std::invalid_argument);
  EXPECT_THROW(Histogram({3.0, 2.0, 1.0}), std::invalid_argument);
  EXPECT_THROW(Histogram({1.0, 1.0, 2.0}), std::invalid_argument);
}

TEST(HistogramTest, ExponentialBounds) {
  const std::vector<double> b = Histogram::exponential_bounds(1.0, 2.0, 4);
  EXPECT_EQ(b, (std::vector<double>{1.0, 2.0, 4.0, 8.0}));
  EXPECT_THROW(Histogram::exponential_bounds(0.0, 2.0, 4),
               std::invalid_argument);
  EXPECT_THROW(Histogram::exponential_bounds(1.0, 1.0, 4),
               std::invalid_argument);
  EXPECT_THROW(Histogram::exponential_bounds(1.0, 2.0, 0),
               std::invalid_argument);
}

TEST(HistogramTest, EmptyHistogramEdgeCases) {
  Histogram h({1.0, 10.0});
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.sum(), 0.0);
  EXPECT_EQ(h.mean(), 0.0);
  EXPECT_EQ(h.observed_min(), 0.0);
  EXPECT_EQ(h.observed_max(), 0.0);
  EXPECT_EQ(h.percentile(0.0), 0.0);
  EXPECT_EQ(h.percentile(0.5), 0.0);
  EXPECT_EQ(h.percentile(1.0), 0.0);
}

#if RCM_METRICS_ENABLED
TEST(HistogramTest, SingleSample) {
  Histogram h({1.0, 10.0, 100.0});
  h.record(5.0);
  EXPECT_EQ(h.count(), 1u);
  EXPECT_EQ(h.sum(), 5.0);
  EXPECT_EQ(h.mean(), 5.0);
  EXPECT_EQ(h.observed_min(), 5.0);
  EXPECT_EQ(h.observed_max(), 5.0);
  // q = 0 and q = 1 are exact; interior quantiles report the covering
  // bucket's upper bound.
  EXPECT_EQ(h.percentile(0.0), 5.0);
  EXPECT_EQ(h.percentile(1.0), 5.0);
  EXPECT_EQ(h.percentile(0.5), 10.0);
  EXPECT_EQ(h.percentile(0.99), 10.0);
}

TEST(HistogramTest, AllEqualSamples) {
  Histogram h({1.0, 10.0, 100.0});
  for (int i = 0; i < 100; ++i) h.record(7.0);
  EXPECT_EQ(h.count(), 100u);
  EXPECT_EQ(h.mean(), 7.0);
  EXPECT_EQ(h.observed_min(), 7.0);
  EXPECT_EQ(h.observed_max(), 7.0);
  EXPECT_EQ(h.percentile(0.5), 10.0);
  EXPECT_EQ(h.percentile(0.95), 10.0);
  EXPECT_EQ(h.percentile(0.99), 10.0);
  EXPECT_EQ(h.percentile(0.0), 7.0);
  EXPECT_EQ(h.percentile(1.0), 7.0);
}

TEST(HistogramTest, BucketBoundsAreInclusiveUpper) {
  Histogram h({1.0, 10.0, 100.0});
  h.record(1.0);    // lands in the le=1 bucket, not le=10
  h.record(10.0);   // lands in the le=10 bucket
  h.record(10.5);   // lands in the le=100 bucket
  h.record(1000.0); // overflow
  const std::vector<std::uint64_t> counts = h.bucket_counts();
  ASSERT_EQ(counts.size(), 4u);  // 3 bounds + overflow
  EXPECT_EQ(counts[0], 1u);
  EXPECT_EQ(counts[1], 1u);
  EXPECT_EQ(counts[2], 1u);
  EXPECT_EQ(counts[3], 1u);
}

TEST(HistogramTest, PercentileSpreadAndOverflow) {
  Histogram h({1.0, 10.0, 100.0});
  // 90 samples <= 1, 9 samples <= 10, 1 sample in the overflow bucket.
  for (int i = 0; i < 90; ++i) h.record(0.5);
  for (int i = 0; i < 9; ++i) h.record(5.0);
  h.record(12345.0);
  EXPECT_EQ(h.percentile(0.50), 1.0);
  EXPECT_EQ(h.percentile(0.90), 1.0);
  EXPECT_EQ(h.percentile(0.95), 10.0);
  // The 0.999 rank lands in the overflow bucket, which has no upper
  // bound; the observed maximum is reported instead.
  EXPECT_EQ(h.percentile(0.999), 12345.0);
  EXPECT_EQ(h.percentile(1.0), 12345.0);
  // Out-of-range quantiles clamp.
  EXPECT_EQ(h.percentile(-0.5), 0.5);
  EXPECT_EQ(h.percentile(1.5), 12345.0);
}

TEST(HistogramTest, AllSamplesInOverflowBucket) {
  Histogram h({1.0, 10.0});
  // Every sample exceeds the largest bound, so every rank — not just the
  // tail — resolves to the +inf bucket. The bucket has no upper bound to
  // report, so every interior percentile must pin to the observed max
  // rather than inventing a bound or reading past the bucket array.
  h.record(50.0);
  h.record(75.0);
  h.record(99.0);
  const std::vector<std::uint64_t> counts = h.bucket_counts();
  ASSERT_EQ(counts.size(), 3u);
  EXPECT_EQ(counts[0], 0u);
  EXPECT_EQ(counts[1], 0u);
  EXPECT_EQ(counts[2], 3u);
  EXPECT_EQ(h.percentile(0.0), 50.0);  // observed min, exact
  EXPECT_EQ(h.percentile(0.50), 99.0);
  EXPECT_EQ(h.percentile(0.99), 99.0);
  EXPECT_EQ(h.percentile(1.0), 99.0);
}

TEST(HistogramTest, ResetDuringConcurrentRecordStaysCoherent) {
  // reset() racing record() must never corrupt the histogram: after the
  // writers finish, a final reset() must land it back at a pristine
  // state, and mid-race snapshots must never see more bucket entries
  // than records issued. (Counts may be torn *across* fields during the
  // race — that is documented — but each atomic field stays valid.)
  Histogram h({1.0, 2.0, 4.0});
  constexpr std::size_t kWriters = 4;
  constexpr std::size_t kPerThread = 5000;
  std::vector<std::thread> writers;
  writers.reserve(kWriters);
  for (std::size_t t = 0; t < kWriters; ++t) {
    writers.emplace_back([&h] {
      for (std::size_t i = 0; i < kPerThread; ++i)
        h.record(static_cast<double>(i % 5));
    });
  }
  for (int r = 0; r < 100; ++r) {
    h.reset();
    std::uint64_t bucket_total = 0;
    for (std::uint64_t b : h.bucket_counts()) bucket_total += b;
    EXPECT_LE(bucket_total, kWriters * kPerThread);
  }
  for (std::thread& t : writers) t.join();

  h.reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.sum(), 0.0);
  EXPECT_EQ(h.bucket_counts(), (std::vector<std::uint64_t>{0, 0, 0, 0}));
  h.record(3.0);  // still fully usable
  EXPECT_EQ(h.count(), 1u);
  EXPECT_EQ(h.observed_min(), 3.0);
  EXPECT_EQ(h.observed_max(), 3.0);
}

TEST(HistogramTest, ResetClearsEverything) {
  Histogram h({1.0, 10.0});
  h.record(3.0);
  h.record(30.0);
  h.reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.sum(), 0.0);
  EXPECT_EQ(h.observed_min(), 0.0);
  EXPECT_EQ(h.observed_max(), 0.0);
  EXPECT_EQ(h.bucket_counts(), (std::vector<std::uint64_t>{0, 0, 0}));
  h.record(2.0);  // usable after reset
  EXPECT_EQ(h.count(), 1u);
  EXPECT_EQ(h.observed_min(), 2.0);
  EXPECT_EQ(h.observed_max(), 2.0);
}

TEST(ScopedTimerTest, RecordsOneNonNegativeSample) {
  Histogram h(Histogram::exponential_bounds(1e-9, 10.0, 12));
  {
    ScopedTimer t{h};
  }
  EXPECT_EQ(h.count(), 1u);
  EXPECT_GE(h.observed_min(), 0.0);
}

TEST(MetricsRegistryTest, LookupIsStableAndNamesAreIndependent) {
  MetricsRegistry reg;
  Counter& a = reg.counter("a");
  Counter& b = reg.counter("b");
  EXPECT_NE(&a, &b);
  a.inc(3);
  EXPECT_EQ(reg.counter("a").value(), 3u);  // same metric on re-lookup
  EXPECT_EQ(&reg.counter("a"), &a);
  EXPECT_EQ(b.value(), 0u);
}
#endif  // RCM_METRICS_ENABLED

TEST(MetricsRegistryTest, FirstHistogramBoundsWin) {
  MetricsRegistry reg;
  Histogram& h = reg.histogram("h", {1.0, 2.0, 3.0});
  Histogram& again = reg.histogram("h", {99.0});
  EXPECT_EQ(&h, &again);
  EXPECT_EQ(again.bounds(), (std::vector<double>{1.0, 2.0, 3.0}));
  // Empty bounds select the default latency ladder.
  Histogram& lat = reg.histogram("latency");
  EXPECT_EQ(lat.bounds().size(), 16u);
  EXPECT_DOUBLE_EQ(lat.bounds().front(), 1e-7);
}

#if RCM_METRICS_ENABLED
TEST(MetricsRegistryTest, SnapshotJsonRoundTrip) {
  MetricsRegistry reg;
  reg.counter("swarm.runs").inc(200);
  reg.counter("with\"quote").inc(1);
  Histogram& h = reg.histogram("lat", {1.0, 10.0});
  h.record(0.5);
  h.record(0.5);
  h.record(100.0);

  const std::string json = reg.snapshot_json();
  EXPECT_TRUE(json_well_formed(json)) << json;
  // Exact values survive the trip into the snapshot.
  EXPECT_NE(json.find("\"swarm.runs\": 200"), std::string::npos) << json;
  EXPECT_NE(json.find("\"with\\\"quote\": 1"), std::string::npos) << json;
  EXPECT_NE(json.find("\"count\": 3"), std::string::npos) << json;
  EXPECT_NE(json.find("\"sum\": 101"), std::string::npos) << json;
  EXPECT_NE(json.find("\"max\": 100"), std::string::npos) << json;
  // The overflow bucket is emitted with le = "+inf".
  EXPECT_NE(json.find("{\"le\": \"+inf\", \"count\": 1}"), std::string::npos)
      << json;
  // Empty buckets are elided: the le=10 bucket holds nothing.
  EXPECT_EQ(json.find("\"le\": 10,"), std::string::npos) << json;

  // reset() zeroes the snapshot but keeps references valid.
  reg.reset();
  const std::string zeroed = reg.snapshot_json();
  EXPECT_TRUE(json_well_formed(zeroed)) << zeroed;
  EXPECT_NE(zeroed.find("\"swarm.runs\": 0"), std::string::npos) << zeroed;
  EXPECT_NE(zeroed.find("\"count\": 0"), std::string::npos) << zeroed;
  reg.counter("swarm.runs").inc();
  EXPECT_EQ(reg.counter("swarm.runs").value(), 1u);
}
#endif  // RCM_METRICS_ENABLED

TEST(MetricsRegistryTest, SnapshotOfEmptyRegistryIsWellFormed) {
  MetricsRegistry reg;
  const std::string json = reg.snapshot_json();
  EXPECT_TRUE(json_well_formed(json)) << json;
  EXPECT_NE(json.find("\"counters\": {}"), std::string::npos) << json;
  EXPECT_NE(json.find("\"histograms\": {}"), std::string::npos) << json;
}

#if RCM_METRICS_ENABLED
TEST(ObsConcurrencyTest, EightThreadsLoseNoCounts) {
  constexpr std::size_t kThreads = 8;
  constexpr std::size_t kPerThread = 10000;

  MetricsRegistry reg;
  Histogram& h = reg.histogram("conc", {0.0, 1.0, 2.0, 3.0});
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&reg, &h, t] {
      // Mix registration (map probe) with hot-path increments, as the
      // instrumentation macros do on their first execution.
      Counter& c = reg.counter("conc.counter");
      for (std::size_t i = 0; i < kPerThread; ++i) {
        c.inc();
        h.record(static_cast<double>((t + i) % 4));
      }
    });
  }
  for (std::thread& t : threads) t.join();

  EXPECT_EQ(reg.counter("conc.counter").value(), kThreads * kPerThread);
  EXPECT_EQ(h.count(), kThreads * kPerThread);
  std::uint64_t bucket_total = 0;
  for (std::uint64_t b : h.bucket_counts()) bucket_total += b;
  EXPECT_EQ(bucket_total, kThreads * kPerThread);
  EXPECT_EQ(h.observed_min(), 0.0);
  EXPECT_EQ(h.observed_max(), 3.0);
  EXPECT_EQ(h.sum(), static_cast<double>(kThreads * kPerThread) * 1.5);
}
#endif  // RCM_METRICS_ENABLED

TEST(ObsMacrosTest, MacrosFeedTheGlobalRegistry) {
#if RCM_METRICS_ENABLED
  const std::uint64_t before =
      registry().counter("obs_test.macro_counter").value();
  for (int i = 0; i < 5; ++i) RCM_COUNT("obs_test.macro_counter");
  RCM_COUNT_N("obs_test.macro_counter", 10);
  EXPECT_EQ(registry().counter("obs_test.macro_counter").value(),
            before + 15);

  Histogram& h =
      registry().histogram("obs_test.macro_histogram", {1.0, 2.0, 4.0});
  const std::uint64_t h_before = h.count();
  RCM_OBSERVE_WITH("obs_test.macro_histogram", ({1.0, 2.0, 4.0}), 3);
  EXPECT_EQ(h.count(), h_before + 1);
#else
  RCM_COUNT("obs_test.macro_counter");  // must still compile
#endif
}

}  // namespace
}  // namespace rcm::obs
