// Sharding foundations: the consistent-hash ring, the PartialCondition a
// shard hosts, and the versioned shard-map/handoff wire formats.
//
// The ring's placement function is a pure integer mix, so the tests pin
// literal hash values and owner assignments: feeders, shards, and the
// fuzz oracle on any platform must derive the SAME ownership from the
// same shard map, and an accidental change to the mix or the token salt
// would silently split the cluster.
#include <gtest/gtest.h>

#include <memory>
#include <stdexcept>
#include <vector>

#include "core/builtin_conditions.hpp"
#include "service/shard_ring.hpp"
#include "wire/codec.hpp"
#include "wire/shard.hpp"
#include "wire/version.hpp"

namespace rcm::service {
namespace {

constexpr std::size_t kKeys = 1u << 16;

TEST(ShardRing, OwnerIsDeterministicAcrossPlatforms) {
  // splitmix64 finalizer pins: these are pure integer results.
  EXPECT_EQ(ShardRing::mix64(0), 0xe220a8397b1dcdafULL);
  EXPECT_EQ(ShardRing::mix64(1), 0x910a2dec89025cc1ULL);
  EXPECT_EQ(ShardRing::mix64(0xdeadbeefULL), 0x4adfb90f68c9eb9bULL);

  ShardRing ring;
  ring.add_shard(0);
  ring.add_shard(1);
  ring.add_shard(2);
  const std::uint32_t expected[8] = {1, 2, 1, 2, 0, 0, 2, 2};
  for (VarId v = 0; v < 8; ++v) EXPECT_EQ(ring.owner(v), expected[v]);
}

TEST(ShardRing, LoadIsRoughlyUniformOverTheKeySpace) {
  ShardRing ring;
  ring.add_shard(0);
  ring.add_shard(1);
  ring.add_shard(2);
  std::size_t count[3] = {0, 0, 0};
  for (VarId v = 0; v < kKeys; ++v) ++count[ring.owner(v)];
  for (const std::size_t c : count) {
    const double share = static_cast<double>(c) / kKeys;
    EXPECT_GT(share, 0.2) << "a shard owns almost nothing";
    EXPECT_LT(share, 0.5) << "a shard owns half the key space";
  }
}

TEST(ShardRing, AddingAShardOnlyMovesKeysToTheNewcomer) {
  ShardRing before;
  before.add_shard(0);
  before.add_shard(1);
  before.add_shard(2);
  ShardRing after = before;
  after.add_shard(3);

  std::size_t moved = 0;
  for (VarId v = 0; v < kKeys; ++v) {
    if (after.owner(v) == before.owner(v)) continue;
    ++moved;
    // Minimal disruption: a key never moves between surviving shards.
    EXPECT_EQ(after.owner(v), 3u);
  }
  const double fraction = static_cast<double>(moved) / kKeys;
  EXPECT_GT(fraction, 0.1) << "the new shard got (almost) no keys";
  EXPECT_LT(fraction, 0.45) << "far more than 1/N of the keys moved";
}

TEST(ShardRing, RemovingAShardOnlyMovesItsOwnKeys) {
  ShardRing before;
  before.add_shard(0);
  before.add_shard(1);
  before.add_shard(2);
  ShardRing after = before;
  after.remove_shard(1);

  for (VarId v = 0; v < kKeys; ++v) {
    if (before.owner(v) != 1) {
      EXPECT_EQ(after.owner(v), before.owner(v))
          << "a key not owned by the removed shard moved";
    } else {
      EXPECT_NE(after.owner(v), 1u);
    }
  }
}

TEST(ShardRing, AddAndRemoveAreIdempotent) {
  ShardRing ring;
  ring.add_shard(7);
  ring.add_shard(7);
  EXPECT_EQ(ring.shard_count(), 1u);
  ring.remove_shard(3);  // absent: no-op
  EXPECT_EQ(ring.shard_count(), 1u);
  ring.remove_shard(7);
  EXPECT_TRUE(ring.empty());
  EXPECT_THROW((void)ring.owner(0), std::logic_error);
}

// ---- PartialCondition -------------------------------------------------

ConditionPtr abs_diff() {
  return std::make_shared<AbsDiffCondition>("absdiff", 0, 1, 5.0);
}

TEST(PartialCondition, RestrictsAdmissionToTheOwnedSubset) {
  const PartialCondition partial{abs_diff(), {1}};
  EXPECT_EQ(partial.variables(), (std::vector<VarId>{1}));
  EXPECT_EQ(partial.degree(1), abs_diff()->degree(1));
  EXPECT_EQ(partial.triggering(), Triggering::kAggressive);
  EXPECT_NE(partial.name().find("[partial]"), std::string_view::npos);
}

TEST(PartialCondition, NeverEvaluatesTheGlobalPredicate) {
  const auto base = abs_diff();
  const PartialCondition partial{base, {0, 1}};
  const auto h = base->make_history_set();
  EXPECT_FALSE(partial.evaluate(h));
}

TEST(PartialCondition, EmptyOwnedSetIsValid) {
  const PartialCondition partial{abs_diff(), {}};
  EXPECT_TRUE(partial.variables().empty());
}

TEST(PartialCondition, RejectsNonSubsetsAndDisorder) {
  EXPECT_THROW(PartialCondition(abs_diff(), {2}), std::invalid_argument);
  EXPECT_THROW(PartialCondition(abs_diff(), {1, 0}), std::invalid_argument);
  EXPECT_THROW(PartialCondition(abs_diff(), {0, 0}), std::invalid_argument);
}

TEST(PartialCondition, OwnedVariablesFollowsTheRing) {
  ShardRing ring;
  ring.add_shard(0);
  ring.add_shard(1);
  ring.add_shard(2);
  const auto base = abs_diff();
  std::size_t covered = 0;
  for (const std::uint32_t id : ring.shards()) {
    const std::vector<VarId> owned = owned_variables(ring, *base, id);
    for (const VarId v : owned) EXPECT_EQ(ring.owner(v), id);
    covered += owned.size();
  }
  EXPECT_EQ(covered, base->variables().size());
}

}  // namespace
}  // namespace rcm::service

namespace rcm::wire {
namespace {

ShardMap sample_map() {
  ShardMap m;
  m.epoch = 42;
  m.shards.push_back(ShardMapEntry{0, 32, {9001, 9002}});
  m.shards.push_back(ShardMapEntry{2, 32, {9003}});
  return m;
}

HandoffPacket sample_handoff() {
  HandoffPacket p;
  p.epoch = 7;
  p.from = 1;
  p.to = 3;
  p.replica = 0;
  HandoffEntry e;
  e.var = 5;
  e.watermark = 12;
  e.window = {Update{5, 11, 1.5}, Update{5, 12, 2.5}};
  p.entries.push_back(e);
  HandoffEntry empty;  // watermark known, window handed off empty
  empty.var = 9;
  empty.watermark = kNoSeqNo;
  p.entries.push_back(empty);
  return p;
}

TEST(ShardWire, ShardMapRoundTrips) {
  const ShardMap m = sample_map();
  EXPECT_EQ(decode_shard_map(encode_shard_map(m)), m);
}

TEST(ShardWire, HandoffRoundTrips) {
  const HandoffPacket p = sample_handoff();
  EXPECT_EQ(decode_handoff(encode_handoff(p)), p);
}

TEST(ShardWire, FutureMajorIsATypedRejection) {
  auto map_bytes = encode_shard_map(sample_map());
  map_bytes[1] = 2;  // tag | MAJOR | minor | ...
  try {
    (void)decode_shard_map(map_bytes);
    FAIL() << "future-major shard map decoded";
  } catch (const UnsupportedVersion& e) {
    EXPECT_EQ(e.format(), "shard map");
    EXPECT_EQ(e.got().major, 2);
    EXPECT_EQ(e.max_major(), kShardMapMaxMajor);
  }

  auto handoff_bytes = encode_handoff(sample_handoff());
  handoff_bytes[1] = 9;
  try {
    (void)decode_handoff(handoff_bytes);
    FAIL() << "future-major handoff decoded";
  } catch (const UnsupportedVersion& e) {
    EXPECT_EQ(e.format(), "handoff packet");
    EXPECT_EQ(e.got().major, 9);
  }
}

TEST(ShardWire, FutureMinorAndUnknownExtensionsAreSkipped) {
  // A v1.1 writer may append extension blocks; a v1.0 reader skips them.
  const ShardMap m = sample_map();
  Writer w;
  w.u8(0x4d);
  encode_version(w, VersionHeader{1, 1});
  w.varint(m.epoch);
  w.varint(m.shards.size());
  for (const ShardMapEntry& s : m.shards) {
    w.varint(s.shard_id);
    w.varint(s.vnodes);
    w.varint(s.replica_ports.size());
    for (const std::uint16_t port : s.replica_ports) w.varint(port);
  }
  const std::vector<Extension> exts{{0x7f, {1, 2, 3}}};
  encode_extension_section(w, exts);
  EXPECT_EQ(decode_shard_map(w.take()), m);
}

TEST(ShardWire, MalformedMapsAreRejected) {
  auto bytes = encode_shard_map(sample_map());
  bytes.resize(bytes.size() - 2);  // truncation
  EXPECT_THROW((void)decode_shard_map(bytes), DecodeError);

  ShardMap unsorted = sample_map();
  std::swap(unsorted.shards[0], unsorted.shards[1]);
  EXPECT_THROW((void)decode_shard_map(encode_shard_map(unsorted)),
               DecodeError);
}

TEST(ShardWire, NonAscendingHandoffWindowIsRejected) {
  HandoffPacket p = sample_handoff();
  std::swap(p.entries[0].window[0], p.entries[0].window[1]);
  EXPECT_THROW((void)decode_handoff(encode_handoff(p)), DecodeError);
}

TEST(ShardWire, ShardOriginExtensionSurvivesNormalDecoding) {
  const Update u{3, 17, 2.25};
  const auto bytes = encode_update_from_shard(u, 2, 5);

  // Ordinary decoders see a plain update: the extension is skippable.
  EXPECT_EQ(decode_update(bytes), u);

  ShardOrigin origin;
  ASSERT_TRUE(decode_shard_origin(bytes, origin));
  EXPECT_EQ(origin.shard_id, 2u);
  EXPECT_EQ(origin.epoch, 5u);

  ShardOrigin none;
  EXPECT_FALSE(decode_shard_origin(encode_update(u), none));
}

}  // namespace
}  // namespace rcm::wire
