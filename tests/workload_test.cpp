// Workload library tests: purity of unit traffic under composition and
// reordering, materialization invariants, serialization (including the
// unknown-kind and legacy-record paths), the shrinker's ability to drop
// an irrelevant unit — and one meta-test per workload kind proving that a
// planted violation of that unit's guarantee slice is caught by that
// unit's own checker (kBrokenAd2 style: the oracle is only trusted once
// it has been seen to fire).
#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <string>
#include <vector>

#include "swarm/fuzzer.hpp"
#include "swarm/record.hpp"
#include "swarm/runner.hpp"
#include "swarm/shrink.hpp"
#include "swarm/workload.hpp"
#include "wire/buffer.hpp"

namespace rcm::swarm {
namespace {

/// A lossless, single-variable, AD-1 base: the strictest cell of the
/// guarantee tables, so every per-unit checker's gate is open.
SwarmSpec benign_base() {
  SwarmSpec s;
  s.cond_kind = ConditionKind::kThreshold;
  s.cond_param = 60.0;
  s.num_ces = 2;
  s.filter = FilterKind::kAd1;
  s.seed = 5;
  trace::Trace t;
  for (int i = 1; i <= 8; ++i)
    t.push_back({0.4 * i, Update{0, i, i % 2 ? 30.0 : 75.0}});
  s.traces.push_back(std::move(t));
  return s;
}

struct Ran {
  ComposedSpec spec;
  MaterializedRun mat;
  Execution exec;
};

Ran run_unit(const WorkloadSpec& unit) {
  Ran r;
  r.spec = ComposedSpec{benign_base(), {unit}};
  r.mat = materialize(r.spec);
  r.exec = execute(r.spec);
  return r;
}

/// Asserts the benign run satisfies the unit's checker, then returns the
/// pieces for the test to corrupt.
Ran run_clean(const WorkloadSpec& unit) {
  Ran r = run_unit(unit);
  EXPECT_EQ(check_workload(r.spec, r.mat, r.exec.result, 0), "");
  return r;
}

WorkloadSpec flash_crowd() {
  WorkloadSpec u;
  u.kind = WorkloadKind::kFlashCrowd;
  u.salt = 3;
  u.count = 6;
  u.start = 0.5;
  u.duration = 2.0;
  u.magnitude = 80.0;
  return u;
}

// ---- purity / composition ----------------------------------------------

TEST(Workload, SamplingIsAPureFunctionOfSeedAndIndex) {
  FuzzOptions fuzz;
  fuzz.min_workloads = 3;
  for (std::uint64_t i = 0; i < 5; ++i) {
    const ComposedSpec a = sample_composed(17, i, fuzz);
    const ComposedSpec b = sample_composed(17, i, fuzz);
    EXPECT_TRUE(a == b) << "run " << i;
    EXPECT_GE(a.units.size(), 3u);
  }
}

TEST(Workload, ComposedBaseMatchesPlainSampling) {
  // Workload draws happen strictly after the base's, so composing must
  // never perturb the base spec a seed produces.
  FuzzOptions fuzz;
  fuzz.min_workloads = 2;
  for (std::uint64_t i = 0; i < 5; ++i)
    EXPECT_TRUE(sample_composed(17, i, fuzz).base == sample_spec(17, i, fuzz));
}

TEST(Workload, ReorderingUnitsChangesNoUnitsTraffic) {
  // Rng::derive stream independence: each unit's sampled traffic is a
  // function of the unit alone. Reversing the unit list must leave every
  // unit's generated updates and its materialized (time, value) slice
  // bit-identical; only the owner indices relabel.
  std::vector<WorkloadSpec> units;
  {
    WorkloadSpec u = flash_crowd();
    units.push_back(u);
    u.kind = WorkloadKind::kClockSkew;
    u.salt = 9;
    u.count = 5;
    u.magnitude = 0.7;
    units.push_back(u);
    u.kind = WorkloadKind::kAdaptiveHoldback;
    u.salt = 12;
    u.count = 7;
    u.magnitude = 0.3;
    units.push_back(u);
  }
  std::vector<WorkloadSpec> reversed{units.rbegin(), units.rend()};
  for (std::size_t i = 0; i < units.size(); ++i) {
    const trace::Trace a = workload_traffic(units[i]);
    const trace::Trace b = workload_traffic(reversed[units.size() - 1 - i]);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t j = 0; j < a.size(); ++j) {
      EXPECT_EQ(a[j].time, b[j].time);
      EXPECT_EQ(a[j].update.value, b[j].update.value);
    }
  }

  const MaterializedRun fwd = materialize({benign_base(), units});
  const MaterializedRun rev = materialize({benign_base(), reversed});
  ASSERT_EQ(fwd.owner.size(), rev.owner.size());
  for (std::size_t i = 0; i < units.size(); ++i) {
    const std::uint32_t fwd_idx = static_cast<std::uint32_t>(i);
    const std::uint32_t rev_idx =
        static_cast<std::uint32_t>(units.size() - 1 - i);
    std::vector<std::pair<double, double>> a, b;
    for (std::size_t k = 0; k < fwd.owner.size(); ++k) {
      if (fwd.owner[k] == fwd_idx)
        a.emplace_back(fwd.spec.traces[0][k].time,
                       fwd.spec.traces[0][k].update.value);
      if (rev.owner[k] == rev_idx)
        b.emplace_back(rev.spec.traces[0][k].time,
                       rev.spec.traces[0][k].update.value);
    }
    EXPECT_EQ(a, b) << "unit " << i << " slice moved with its position";
  }
}

TEST(Workload, MaterializeRenumbersSeqnosAndAssignsOwners) {
  const ComposedSpec spec{benign_base(), {flash_crowd()}};
  const MaterializedRun mat = materialize(spec);
  const trace::Trace& primary = mat.spec.traces[0];
  ASSERT_EQ(mat.owner.size(), primary.size());
  ASSERT_EQ(primary.size(), benign_base().traces[0].size() + 6);
  std::size_t unit_owned = 0;
  for (std::size_t k = 0; k < primary.size(); ++k) {
    EXPECT_EQ(primary[k].update.seqno, static_cast<SeqNo>(k) + 1);
    if (k) EXPECT_LE(primary[k - 1].time, primary[k].time);
    if (mat.owner[k] != kBaseTraffic) {
      EXPECT_LT(mat.owner[k], spec.units.size());
      ++unit_owned;
    }
  }
  EXPECT_EQ(unit_owned, 6u);
}

TEST(Workload, MaterializeWithoutTrafficUnitsLeavesTracesUntouched) {
  WorkloadSpec fault;
  fault.kind = WorkloadKind::kPartition;
  fault.replica = 1;
  fault.start = 1.0;
  fault.duration = 2.0;
  const ComposedSpec spec{benign_base(), {fault}};
  const MaterializedRun mat = materialize(spec);
  const std::vector<trace::Trace> base = benign_base().traces;
  ASSERT_EQ(mat.spec.traces.size(), base.size());
  for (std::size_t v = 0; v < base.size(); ++v) {
    ASSERT_EQ(mat.spec.traces[v].size(), base[v].size());
    for (std::size_t k = 0; k < base[v].size(); ++k) {
      EXPECT_EQ(mat.spec.traces[v][k].time, base[v][k].time);
      EXPECT_EQ(mat.spec.traces[v][k].update.seqno, base[v][k].update.seqno);
      EXPECT_EQ(mat.spec.traces[v][k].update.value, base[v][k].update.value);
    }
  }
  ASSERT_EQ(mat.front_shaping.size(), 2u);
  ASSERT_EQ(mat.front_shaping[1].outages.size(), 1u);
  EXPECT_TRUE(mat.front_shaping[1].cuts(1.5));
  EXPECT_FALSE(mat.front_shaping[1].cuts(3.5));
}

// ---- per-unit meta-tests: planted violations must be caught ------------

TEST(WorkloadMeta, FlashCrowdCatchesSuppressedSliceAlert) {
  Ran r = run_clean(flash_crowd());
  // Suppress every displayed alert triggered by a unit-owned update: the
  // unit's slice of completeness is now violated.
  std::vector<Alert> kept;
  for (const Alert& a : r.exec.result.displayed) {
    const SeqNo s = a.seqno(0);
    if (s >= 1 && static_cast<std::size_t>(s) <= r.mat.owner.size() &&
        r.mat.owner[static_cast<std::size_t>(s) - 1] == 0)
      continue;
    kept.push_back(a);
  }
  ASSERT_LT(kept.size(), r.exec.result.displayed.size())
      << "the flash crowd produced no displayed alerts to suppress";
  r.exec.result.displayed = std::move(kept);
  const std::string msg = check_workload(r.spec, r.mat, r.exec.result, 0);
  EXPECT_NE(msg.find("flash-crowd"), std::string::npos) << msg;
  EXPECT_NE(msg.find("slice incompleteness"), std::string::npos) << msg;
}

TEST(WorkloadMeta, SlowReplicaCatchesALostUpdate) {
  WorkloadSpec u;
  u.kind = WorkloadKind::kSlowReplica;
  u.replica = 1;
  u.magnitude = 0.8;
  Ran r = run_clean(u);
  auto& inputs = r.exec.result.ce_inputs[1];
  ASSERT_FALSE(inputs.empty());
  inputs.erase(inputs.begin() + static_cast<std::ptrdiff_t>(inputs.size() / 2));
  const std::string msg = check_workload(r.spec, r.mat, r.exec.result, 0);
  EXPECT_NE(msg.find("slow-replica"), std::string::npos) << msg;
  EXPECT_NE(msg.find("delayed replica"), std::string::npos) << msg;
}

TEST(WorkloadMeta, PartitionCatchesAnInWindowDelivery) {
  WorkloadSpec u;
  u.kind = WorkloadKind::kPartition;
  u.replica = 1;
  u.start = 1.0;
  u.duration = 2.0;
  Ran r = run_clean(u);
  // Deliver an update that was emitted inside the outage window (the
  // base trace has updates at t = 0.4 * i, several of which fall in
  // [1, 3)) straight into the partitioned replica's input log.
  const trace::Trace& primary = r.mat.spec.traces[0];
  const auto it = std::find_if(
      primary.begin(), primary.end(),
      [](const trace::TimedUpdate& tu) {
        return tu.time >= 1.0 && tu.time < 3.0;
      });
  ASSERT_NE(it, primary.end());
  r.exec.result.ce_inputs[1].push_back(it->update);
  const std::string msg = check_workload(r.spec, r.mat, r.exec.result, 0);
  EXPECT_NE(msg.find("partition"), std::string::npos) << msg;
  EXPECT_NE(msg.find("inside the outage"), std::string::npos) << msg;
}

TEST(WorkloadMeta, ClockSkewCatchesARewrittenValue) {
  WorkloadSpec u;
  u.kind = WorkloadKind::kClockSkew;
  u.salt = 9;
  u.count = 5;
  u.duration = 3.0;
  u.magnitude = 0.7;
  Ran r = run_clean(u);
  // Corrupt one materialized update the unit owns: the merge no longer
  // matches the unit's generated stream.
  for (std::size_t k = 0; k < r.mat.owner.size(); ++k) {
    if (r.mat.owner[k] != 0) continue;
    r.mat.spec.traces[0][k].update.value += 13.0;
    break;
  }
  const std::string msg = check_workload(r.spec, r.mat, r.exec.result, 0);
  EXPECT_NE(msg.find("clock-skew"), std::string::npos) << msg;
  EXPECT_NE(msg.find("diverges"), std::string::npos) << msg;
}

TEST(WorkloadMeta, CheapFleetCatchesAStaleAcceptedUpdate) {
  WorkloadSpec u;
  u.kind = WorkloadKind::kCheapFleet;
  u.salt = 4;
  u.count = 256;
  u.updates = 8;
  u.duration = 3.0;
  Ran r = run_clean(u);
  auto& inputs = r.exec.result.ce_inputs[0];
  ASSERT_FALSE(inputs.empty());
  inputs.push_back(Update{0, 1, 99.0});  // seq 1 again: stale re-acceptance
  const std::string msg = check_workload(r.spec, r.mat, r.exec.result, 0);
  EXPECT_NE(msg.find("cheap-fleet"), std::string::npos) << msg;
  EXPECT_NE(msg.find("stale"), std::string::npos) << msg;
}

TEST(WorkloadMeta, AdaptiveHoldbackCatchesALostArrival) {
  WorkloadSpec u;
  u.kind = WorkloadKind::kAdaptiveHoldback;
  u.salt = 6;
  u.count = 10;
  u.duration = 2.0;
  u.magnitude = 0.4;
  Ran r = run_clean(u);
  auto& arrived = r.exec.result.arrived;
  ASSERT_FALSE(arrived.empty());
  arrived.pop_back();
  const std::string msg = check_workload(r.spec, r.mat, r.exec.result, 0);
  EXPECT_NE(msg.find("adaptive-holdback"), std::string::npos) << msg;
  EXPECT_NE(msg.find("never arrived"), std::string::npos) << msg;
}

// ---- end-to-end: composed run through the real checker ------------------

TEST(Workload, BenignCompositionPassesTheFullChecker) {
  WorkloadSpec skew;
  skew.kind = WorkloadKind::kClockSkew;
  skew.salt = 9;
  skew.count = 5;
  skew.duration = 3.0;
  skew.magnitude = 0.7;
  WorkloadSpec slow;
  slow.kind = WorkloadKind::kSlowReplica;
  slow.replica = 1;
  slow.magnitude = 0.8;
  const ComposedSpec spec{benign_base(), {flash_crowd(), skew, slow}};
  const RunCheck chk = execute_and_check(spec);
  EXPECT_FALSE(chk.failed())
      << (chk.violations.empty() ? std::string{} : chk.violations[0]);
}

TEST(Workload, ShrinkerDropsAnIrrelevantUnit) {
  // Find a base spec that trips the planted AD-2 bug, then compose an
  // inert unit onto it (zero extra delay changes nothing about the run).
  // The shrinker's unit pass must eliminate it.
  FuzzOptions fuzz;
  fuzz.force_filter = FilterKind::kBrokenAd2;
  fuzz.max_workloads = 0;
  for (std::uint64_t i = 0; i < 50; ++i) {
    const SwarmSpec base = sample_spec(7, i, fuzz);
    const RunCheck chk = execute_and_check(base);
    if (!chk.failed()) continue;

    WorkloadSpec inert;
    inert.kind = WorkloadKind::kSlowReplica;
    inert.replica = 0;
    inert.magnitude = 0.0;
    const ComposedSpec composed{base, {inert}};
    const RunCheck composed_chk = execute_and_check(composed);
    ASSERT_TRUE(composed_chk.failed())
        << "an inert unit must not heal the violation";
    const ViolationKind kind = composed_chk.violation_kinds.front();

    const ShrinkResult result = shrink(composed, kind);
    EXPECT_TRUE(result.spec.units.empty())
        << "the shrinker kept a unit irrelevant to the failure";
    const RunCheck minimal = execute_and_check(result.spec);
    EXPECT_TRUE(minimal.has_kind(kind));
    return;
  }
  FAIL() << "seed 7 no longer trips the broken filter";
}

// ---- serialization ------------------------------------------------------

TEST(Workload, EveryKindRoundTripsThroughTheWire) {
  std::uint64_t salt = 2;
  for (WorkloadKind kind : kAllWorkloadKinds) {
    WorkloadSpec u;
    u.kind = kind;
    u.salt = salt++;
    u.replica = 1;
    u.count = 12;
    u.updates = 7;
    u.start = 0.25;
    u.duration = 1.5;
    u.magnitude = kind == WorkloadKind::kClockSkew ? -0.5 : 0.75;
    wire::Writer w;
    encode_workload(w, u);
    wire::Reader r{w.bytes()};
    const WorkloadSpec back = decode_workload(r);
    EXPECT_TRUE(back == u) << workload_kind_name(kind);
  }
}

TEST(Workload, UnknownKindIsRejected) {
  wire::Writer w;
  WorkloadSpec u = flash_crowd();
  encode_workload(w, u);
  std::vector<std::uint8_t> bytes = w.take();
  bytes[0] = 6;  // one past kAdaptiveHoldback
  wire::Reader r{bytes};
  EXPECT_THROW((void)decode_workload(r), wire::DecodeError);
}

TEST(Workload, ParseKindRejectsUnknownNames) {
  for (WorkloadKind kind : kAllWorkloadKinds)
    EXPECT_EQ(parse_workload_kind(workload_kind_name(kind)), kind);
  EXPECT_THROW((void)parse_workload_kind("thundering-herd"),
               std::invalid_argument);
}

TEST(Workload, ComposedRecordRoundTripsAndReplays) {
  FuzzOptions fuzz;
  fuzz.min_workloads = 2;
  const ComposedSpec spec = sample_composed(21, 0, fuzz);
  ASSERT_GE(spec.units.size(), 2u);
  const RunCheck chk = execute_and_check(spec);
  const CounterexampleRecord record = make_record(spec, chk);
  const std::vector<std::uint8_t> bytes = encode_record(record);
  const CounterexampleRecord back = decode_record(bytes);
  EXPECT_TRUE(back.spec == record.spec);
  EXPECT_TRUE(replay(back).reproduced);
}

}  // namespace
}  // namespace rcm::swarm
