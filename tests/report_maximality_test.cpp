// Tests for check::describe_run (the human-readable report) and the
// reusable local-maximality verifier.
#include <gtest/gtest.h>

#include <memory>

#include "check/consistency.hpp"
#include "check/maximality.hpp"
#include "check/report.hpp"
#include "core/builtin_conditions.hpp"
#include "core/evaluator.hpp"
#include "exp/scenarios.hpp"
#include "sim/system.hpp"

namespace rcm::check {
namespace {

Alert alert1(std::initializer_list<SeqNo> window) {
  Alert a;
  a.cond = "c";
  std::vector<Update> w;
  for (SeqNo s : window) w.push_back({0, s, static_cast<double>(s)});
  a.histories.emplace(0, std::move(w));
  return a;
}

// ------------------------------------------------------------- report ----

TEST(DescribeRun, RendersAllSections) {
  VariableRegistry vars;
  const VarId temp = vars.intern("temp");
  auto cond = std::make_shared<const RiseCondition>("spike", temp, 10.0,
                                                    Triggering::kAggressive);
  SystemRun run;
  run.condition = cond;
  run.ce_inputs = {
      {{temp, 1, 10.0}, {temp, 2, 30.0}},
      {{temp, 2, 30.0}},
  };
  run.displayed = evaluate_trace(cond, run.ce_inputs[0]);

  const std::string report = describe_run(run, vars);
  EXPECT_NE(report.find("condition spike"), std::string::npos);
  EXPECT_NE(report.find("temp (degree 2)"), std::string::npos);
  EXPECT_NE(report.find("aggressive triggering"), std::string::npos);
  EXPECT_NE(report.find("CE1: 2 updates received"), std::string::npos);
  EXPECT_NE(report.find("CE2: 1 updates received"), std::string::npos);
  EXPECT_NE(report.find("ordered    : holds"), std::string::npos);
  EXPECT_NE(report.find("consistent : holds"), std::string::npos);
  EXPECT_NE(report.find("witness input"), std::string::npos);
  EXPECT_NE(report.find("temp#1"), std::string::npos);
}

TEST(DescribeRun, ShowsViolationReason) {
  // The Theorem 4 conflicting pair.
  auto cond = std::make_shared<const RiseCondition>("rise", 0, 200.0,
                                                    Triggering::kAggressive);
  ConditionEvaluator ce1{cond, "CE1"}, ce2{cond, "CE2"};
  std::vector<Alert> displayed;
  (void)ce1.on_update({0, 1, 400.0});
  if (auto a = ce1.on_update({0, 2, 700.0})) displayed.push_back(*a);
  (void)ce2.on_update({0, 1, 400.0});
  if (auto a = ce2.on_update({0, 3, 720.0})) displayed.push_back(*a);

  SystemRun run;
  run.condition = cond;
  run.ce_inputs = {ce1.received(), ce2.received()};
  run.displayed = displayed;

  VariableRegistry vars;
  vars.intern("x");
  const std::string report = describe_run(run, vars);
  EXPECT_NE(report.find("consistent : VIOLATED"), std::string::npos);
  EXPECT_NE(report.find("both received and missed"), std::string::npos);
}

TEST(DescribeRun, TruncatesLongLists) {
  auto cond = std::make_shared<const ThresholdCondition>("t", 0, 0.0);
  SystemRun run;
  run.condition = cond;
  std::vector<Update> input;
  for (SeqNo s = 1; s <= 50; ++s) input.push_back({0, s, 1.0});
  run.ce_inputs = {input};
  run.displayed = evaluate_trace(cond, input);
  VariableRegistry vars;
  ReportOptions options;
  options.max_listed = 5;
  const std::string report = describe_run(run, vars, options);
  EXPECT_NE(report.find("... 45 more"), std::string::npos);
}

TEST(DescribeRun, UnknownVarIdsPrintPlaceholders) {
  auto cond = std::make_shared<const ThresholdCondition>("t", 7, 0.0);
  SystemRun run;
  run.condition = cond;
  run.ce_inputs = {{{7, 1, 1.0}}};
  run.displayed = evaluate_trace(cond, run.ce_inputs[0]);
  VariableRegistry empty;
  EXPECT_NE(describe_run(run, empty).find("v7"), std::string::npos);
}

// --------------------------------------------------------- maximality ----

TEST(VerifyLocallyMaximal, Ad2IsLocallyMaximalForOrderedness) {
  // Out-of-order arrivals: every AD-2 suppression must be justified.
  const std::vector<Alert> arrivals = {alert1({3}), alert1({1}), alert1({5}),
                                       alert1({4}), alert1({6})};
  Ad2OrderedFilter ad2{0};
  const auto violations = verify_locally_maximal(
      ad2, arrivals, {0}, [](std::span<const Alert> displayed, const Alert& c) {
        // Would displaying c break non-decreasing order?
        return !displayed.empty() && c.seqno(0) < displayed.back().seqno(0);
      });
  EXPECT_TRUE(violations.empty());
}

TEST(VerifyLocallyMaximal, DetectsOverSuppression) {
  // DropAll suppresses everything; nothing justifies it.
  const std::vector<Alert> arrivals = {alert1({1}), alert1({2})};
  DropAllFilter drop;
  const auto violations = verify_locally_maximal(
      drop, arrivals, {0},
      [](std::span<const Alert>, const Alert&) { return false; });
  ASSERT_EQ(violations.size(), 2u);
  EXPECT_EQ(violations[0].arrival_index, 0u);
  EXPECT_EQ(violations[1].alert.seqno(0), 2);
}

TEST(VerifyLocallyMaximal, Ad3JustifiedByConsistencyOnRealRuns) {
  const auto spec =
      exp::single_var_scenario(exp::Scenario::kLossyAggressive);
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    util::Rng trial{seed};
    sim::SystemConfig config;
    config.condition = spec.condition;
    config.dm_traces = spec.make_traces(30, trial);
    config.front.loss = spec.front_loss;
    config.front.delay_max = 0.8;
    config.back.delay_max = 0.8;
    config.filter = FilterKind::kPassAll;
    config.seed = seed * 73;
    const auto r = sim::run_system(config);

    Ad3ConsistentFilter ad3;
    const auto violations = verify_locally_maximal(
        ad3, r.arrived, spec.condition->variables(),
        [&](std::span<const Alert> displayed, const Alert& c) {
          SystemRun hypo;
          hypo.condition = spec.condition;
          hypo.ce_inputs = r.ce_inputs;
          hypo.displayed.assign(displayed.begin(), displayed.end());
          hypo.displayed.push_back(c);
          return !check_consistent(hypo).consistent;
        });
    EXPECT_TRUE(violations.empty()) << "seed " << seed;
  }
}

}  // namespace
}  // namespace rcm::check
