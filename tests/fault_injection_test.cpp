// Systematic fault-matrix tests on the simulator: crash windows x loss
// x filter x outage combinations, with the invariants that must survive
// any mix of faults:
//
//  - a crashed CE contributes nothing while down (inputs gap over the
//    window; no alerts raised from lost updates);
//  - every displayed alert was raised by SOME replica;
//  - the guaranteed filter properties (AD-2 orderedness, AD-3
//    consistency, AD-4 both) hold under every fault mix;
//  - display timestamps are monotone and within the simulation horizon;
//  - determinism: identical configs with faults produce identical runs.
#include <gtest/gtest.h>

#include <memory>
#include <set>

#include "check/consistency.hpp"
#include "check/properties.hpp"
#include "core/builtin_conditions.hpp"
#include "sim/disconnect.hpp"
#include "sim/system.hpp"
#include "trace/generators.hpp"

namespace rcm {
namespace {

constexpr VarId kX = 0;

sim::SystemConfig faulty_config(std::uint64_t seed, FilterKind filter) {
  sim::SystemConfig config;
  config.condition = std::make_shared<const RiseCondition>(
      "rise", kX, 15.0, Triggering::kAggressive);
  util::Rng rng{seed};
  trace::UniformParams p;
  p.base.var = kX;
  p.base.count = 60;
  p.lo = 0.0;
  p.hi = 100.0;
  config.dm_traces = {trace::uniform_trace(p, rng)};
  config.num_ces = 3;
  config.front.loss = 0.25;
  config.front.delay_max = 1.2;
  config.back.delay_max = 1.2;
  config.filter = filter;
  config.seed = seed;
  // Staggered crash windows: CE1 early, CE2 late, CE3 twice briefly.
  config.ce_crashes = {
      {sim::CrashWindow{5.0, 15.0, true}},
      {sim::CrashWindow{35.0, 50.0, false}},
      {sim::CrashWindow{10.0, 14.0, true}, sim::CrashWindow{40.0, 43.0, true}},
  };
  return config;
}

class FaultMatrix : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FaultMatrix, CrashedCesReceiveNothingWhileDown) {
  const auto config = faulty_config(GetParam(), FilterKind::kAd1);
  const auto r = sim::run_system(config);
  // CE1 down in [5, 15]: updates emitted in [5.0, 14.5] (allowing for
  // delivery delay up to 1.2s after emission) must be absent from its
  // input if they would arrive inside the window.
  for (const Update& u : r.ce_inputs[0]) {
    // Emission time == seqno (period 1.0, jitter <= 0.1): an update
    // received by CE1 cannot have arrived strictly inside the outage.
    // We can't see arrival times directly; assert the coarse gap: no
    // update with emission time in [6.5, 13.5] (which would arrive
    // within [6.5, 14.7]) is present.
    const double emission = static_cast<double>(u.seqno);
    EXPECT_FALSE(emission >= 6.6 && emission <= 13.4)
        << "seed " << GetParam() << " seqno " << u.seqno;
  }
}

TEST_P(FaultMatrix, EveryDisplayedAlertWasRaisedBySomeReplica) {
  const auto config = faulty_config(GetParam(), FilterKind::kAd1);
  const auto r = sim::run_system(config);
  std::set<AlertKey> raised;
  for (const auto& out : r.ce_outputs)
    for (const Alert& a : out) raised.insert(a.key());
  for (const Alert& a : r.displayed)
    EXPECT_TRUE(raised.count(a.key())) << a;
}

TEST_P(FaultMatrix, GuaranteesSurviveEveryFaultMix) {
  {
    const auto config = faulty_config(GetParam(), FilterKind::kAd2);
    const auto r = sim::run_system(config);
    EXPECT_TRUE(check::check_ordered(r.displayed, {kX}));
  }
  {
    const auto config = faulty_config(GetParam(), FilterKind::kAd3);
    const auto r = sim::run_system(config);
    EXPECT_TRUE(
        check::check_consistent(r.as_system_run(config.condition)).consistent);
  }
  {
    const auto config = faulty_config(GetParam(), FilterKind::kAd4);
    const auto r = sim::run_system(config);
    EXPECT_TRUE(check::check_ordered(r.displayed, {kX}));
    EXPECT_TRUE(
        check::check_consistent(r.as_system_run(config.condition)).consistent);
  }
}

TEST_P(FaultMatrix, DisplayTimesMonotoneAndBounded) {
  const auto config = faulty_config(GetParam(), FilterKind::kAd1);
  const auto r = sim::run_system(config);
  ASSERT_EQ(r.display_times.size(), r.displayed.size());
  double horizon = 0.0;
  for (const auto& tu : config.dm_traces[0])
    horizon = std::max(horizon, tu.time);
  horizon += 5.0;  // two hops at <= 1.2s each, generous slack
  double prev = 0.0;
  for (double t : r.display_times) {
    EXPECT_GE(t, prev);
    EXPECT_LE(t, horizon);
    prev = t;
  }
}

TEST_P(FaultMatrix, FaultyRunsAreDeterministic) {
  const auto a = sim::run_system(faulty_config(GetParam(), FilterKind::kAd4));
  const auto b = sim::run_system(faulty_config(GetParam(), FilterKind::kAd4));
  EXPECT_EQ(a.ce_inputs, b.ce_inputs);
  ASSERT_EQ(a.displayed.size(), b.displayed.size());
  for (std::size_t i = 0; i < a.displayed.size(); ++i)
    EXPECT_EQ(a.displayed[i].key(), b.displayed[i].key());
  EXPECT_EQ(a.display_times, b.display_times);
}

TEST_P(FaultMatrix, CrashesPlusAdOutagesStillLoseNothingRaised) {
  // Combine CE crashes with AD offline windows and the store-and-forward
  // back links: whatever the CEs managed to raise must still display.
  sim::DisconnectConfig config;
  config.base = faulty_config(GetParam(), FilterKind::kPassAll);
  config.ad_offline = {{8.0, 20.0}, {30.0, 45.0}};
  const auto result = sim::run_disconnectable_system(config);
  std::set<AlertKey> raised;
  for (const auto& out : result.run.ce_outputs)
    for (const Alert& a : out) raised.insert(a.key());
  std::set<AlertKey> displayed;
  for (const Alert& a : result.run.displayed) displayed.insert(a.key());
  EXPECT_EQ(displayed, raised) << "seed " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Seeds, FaultMatrix,
                         ::testing::Range<std::uint64_t>(1, 13));

}  // namespace
}  // namespace rcm
