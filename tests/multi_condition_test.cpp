// Appendix D: multi-condition systems.
//
//   - Example 4: two interdependent conditions A ("x > y") and B
//     ("y > x") on separate CEs can both fire on the same real-world
//     change, confusing the user — even without replication.
//   - The ConditionRouter realizes the separate-CEs configuration
//     (Figure D-7(c)): one filter instance per condition stream.
//   - The C = A OR B reduction handles the co-located configuration
//     (Figures D-7(d) / D-8).
#include <gtest/gtest.h>

#include <memory>

#include "check/properties.hpp"
#include "core/builtin_conditions.hpp"
#include "core/evaluator.hpp"
#include "core/multi_condition.hpp"
#include "sim/multi_condition.hpp"
#include "trace/scripted.hpp"

namespace rcm {
namespace {

constexpr VarId kX = 0;
constexpr VarId kY = 1;

ConditionPtr cond_a() {
  return std::make_shared<const GreaterThanCondition>("A", kX, kY);
}
ConditionPtr cond_b() {
  return std::make_shared<const GreaterThanCondition>("B", kY, kX);
}

// ----------------------------------------------------------- Example 4 ----

TEST(Example4, InterdependentConditionsConflictEvenUnreplicated) {
  // Both reactors at 2000, then both rise to 2100. The CE for A sees the
  // x change first and triggers; the CE for B sees the y change first
  // and triggers. The user gets both "x hotter than y" and "y hotter
  // than x".
  ConditionEvaluator ce_a{cond_a(), "CE-A"};
  ConditionEvaluator ce_b{cond_b(), "CE-B"};

  std::vector<Alert> alerts;
  // CE-A's interleaving: 1x(2000), 1y(2000), 2x(2100), 2y(2100).
  for (const Update& u : std::vector<Update>{
           {kX, 1, 2000.0}, {kY, 1, 2000.0}, {kX, 2, 2100.0}, {kY, 2, 2100.0}})
    if (auto a = ce_a.on_update(u)) alerts.push_back(*a);
  // CE-B's interleaving: 1x, 1y, 2y, 2x.
  for (const Update& u : std::vector<Update>{
           {kX, 1, 2000.0}, {kY, 1, 2000.0}, {kY, 2, 2100.0}, {kX, 2, 2100.0}})
    if (auto a = ce_b.on_update(u)) alerts.push_back(*a);

  ASSERT_EQ(alerts.size(), 2u);
  EXPECT_EQ(alerts[0].cond, "A");
  EXPECT_EQ(alerts[1].cond, "B");
  // A per-condition router passes both: the conflict is inherent to
  // interdependent conditions, not an artifact of replication.
  ConditionRouter router;
  router.add_condition("A", std::make_unique<Ad1DuplicateFilter>());
  router.add_condition("B", std::make_unique<Ad1DuplicateFilter>());
  EXPECT_TRUE(router.on_alert(alerts[0]));
  EXPECT_TRUE(router.on_alert(alerts[1]));
}

// ------------------------------------------------------ ConditionRouter ----

Alert make_alert_for(const std::string& cond, SeqNo x) {
  Alert a;
  a.cond = cond;
  a.histories.emplace(kX, std::vector<Update>{{kX, x, 1.0}});
  return a;
}

TEST(ConditionRouter, RoutesToPerConditionFilters) {
  ConditionRouter router;
  router.add_condition("A", std::make_unique<Ad2OrderedFilter>(kX));
  router.add_condition("B", std::make_unique<Ad2OrderedFilter>(kX));
  // Out-of-order within A is dropped; B's filter state is independent.
  EXPECT_TRUE(router.on_alert(make_alert_for("A", 5)));
  EXPECT_FALSE(router.on_alert(make_alert_for("A", 3)));
  EXPECT_TRUE(router.on_alert(make_alert_for("B", 3)));
  EXPECT_EQ(router.displayed().size(), 2u);
  EXPECT_EQ(router.displayed_for("A").size(), 1u);
  EXPECT_EQ(router.displayed_for("B").size(), 1u);
  EXPECT_EQ(router.arrived(), 3u);
}

TEST(ConditionRouter, UnknownConditionPolicy) {
  ConditionRouter dropper{ConditionRouter::UnknownPolicy::kDrop};
  EXPECT_FALSE(dropper.on_alert(make_alert_for("mystery", 1)));
  ConditionRouter passer{ConditionRouter::UnknownPolicy::kPass};
  EXPECT_TRUE(passer.on_alert(make_alert_for("mystery", 1)));
}

TEST(ConditionRouter, NullFilterThrows) {
  ConditionRouter router;
  EXPECT_THROW(router.add_condition("A", nullptr), std::invalid_argument);
}

TEST(ConditionRouter, ResetClearsEverything) {
  ConditionRouter router;
  router.add_condition("A", std::make_unique<Ad1DuplicateFilter>());
  (void)router.on_alert(make_alert_for("A", 1));
  router.reset();
  EXPECT_TRUE(router.displayed().empty());
  EXPECT_EQ(router.arrived(), 0u);
  EXPECT_TRUE(router.on_alert(make_alert_for("A", 1)));  // filter reset
}

// -------------------------------------------------- simulated system ----

trace::Trace temp_trace(VarId v, std::initializer_list<double> values) {
  std::vector<std::pair<SeqNo, double>> pts;
  SeqNo s = 1;
  for (double val : values) pts.emplace_back(s++, val);
  return trace::scripted(v, pts);
}

TEST(MultiConditionSystem, ValidatesConfig) {
  sim::MultiConditionConfig config;
  EXPECT_THROW((void)sim::run_multi_condition_system(config),
               std::invalid_argument);
  config.groups = {{cond_a(), 2, FilterKind::kAd5},
                   {cond_a(), 2, FilterKind::kAd5}};  // duplicate name
  config.dm_traces = {temp_trace(kX, {1.0}), temp_trace(kY, {1.0})};
  EXPECT_THROW((void)sim::run_multi_condition_system(config),
               std::invalid_argument);
  config.groups = {{cond_a(), 2, FilterKind::kAd5}};
  config.dm_traces = {temp_trace(kX, {1.0})};  // y missing
  EXPECT_THROW((void)sim::run_multi_condition_system(config),
               std::invalid_argument);
}

TEST(MultiConditionSystem, SeparateCesPerConditionRun) {
  sim::MultiConditionConfig config;
  config.groups = {{cond_a(), 2, FilterKind::kAd5},
                   {cond_b(), 2, FilterKind::kAd5}};
  config.dm_traces = {temp_trace(kX, {2000.0, 2100.0, 2050.0}),
                      temp_trace(kY, {2000.0, 2040.0, 2090.0})};
  config.seed = 9;
  const auto result = sim::run_multi_condition_system(config);

  // Per-condition streams individually obey AD-5's orderedness.
  EXPECT_TRUE(
      check::check_ordered(result.per_condition.at("A"), {kX, kY}));
  EXPECT_TRUE(
      check::check_ordered(result.per_condition.at("B"), {kX, kY}));
  // Two replicas per condition recorded their inputs.
  EXPECT_EQ(result.ce_inputs.at("A").size(), 2u);
  EXPECT_EQ(result.ce_inputs.at("B").size(), 2u);
}

TEST(MultiConditionSystem, ColocatedReductionToDisjunction) {
  // Figure D-8: C = A OR B monitored by one replicated fleet behaves as
  // a single-condition system, so the single-condition machinery (and
  // guarantees) applies directly.
  auto c = std::make_shared<const DisjunctionCondition>(
      "C", std::vector<ConditionPtr>{cond_a(), cond_b()});
  sim::MultiConditionConfig config;
  config.groups = {{c, 2, FilterKind::kAd5}};
  config.dm_traces = {temp_trace(kX, {2000.0, 2100.0, 2050.0}),
                      temp_trace(kY, {2010.0, 2040.0, 2090.0})};
  config.seed = 10;
  const auto result = sim::run_multi_condition_system(config);
  EXPECT_TRUE(check::check_ordered(result.per_condition.at("C"), {kX, kY}));
  // C fires whenever the temperatures differ at all, so alerts exist.
  EXPECT_FALSE(result.per_condition.at("C").empty());
}

TEST(MultiConditionSystem, DisplayedIsMergeOfPerConditionStreams) {
  sim::MultiConditionConfig config;
  config.groups = {{cond_a(), 1, FilterKind::kAd1},
                   {cond_b(), 1, FilterKind::kAd1}};
  config.dm_traces = {temp_trace(kX, {2100.0, 1900.0}),
                      temp_trace(kY, {2000.0, 2000.0})};
  config.seed = 11;
  const auto result = sim::run_multi_condition_system(config);
  std::size_t total = 0;
  for (const auto& [name, alerts] : result.per_condition)
    total += alerts.size();
  EXPECT_EQ(result.displayed.size(), total);
}

}  // namespace
}  // namespace rcm
