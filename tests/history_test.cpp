// Unit tests for the fundamental model types: updates, the variable
// registry, History ring buffers and HistorySet (paper §2).
#include <gtest/gtest.h>

#include <sstream>

#include "core/history.hpp"
#include "core/types.hpp"

namespace rcm {
namespace {

TEST(VariableRegistry, InternIsIdempotent) {
  VariableRegistry reg;
  const VarId x = reg.intern("x");
  EXPECT_EQ(reg.intern("x"), x);
  const VarId y = reg.intern("y");
  EXPECT_NE(x, y);
  EXPECT_EQ(reg.size(), 2u);
}

TEST(VariableRegistry, LookupAndName) {
  VariableRegistry reg;
  const VarId x = reg.intern("reactor_temp");
  VarId out = 999;
  EXPECT_TRUE(reg.lookup("reactor_temp", out));
  EXPECT_EQ(out, x);
  EXPECT_FALSE(reg.lookup("unknown", out));
  EXPECT_EQ(reg.name(x), "reactor_temp");
  EXPECT_THROW((void)reg.name(42), std::out_of_range);
}

TEST(Update, StreamOutput) {
  std::ostringstream os;
  os << Update{1, 7, 3000.0};
  EXPECT_EQ(os.str(), "7@1(3000)");
}

TEST(History, RejectsZeroDegree) {
  EXPECT_THROW(History{0}, std::invalid_argument);
  EXPECT_THROW(History{-2}, std::invalid_argument);
}

TEST(History, UndefinedUntilFull) {
  History h{3};
  EXPECT_FALSE(h.defined());
  h.push({0, 1, 10.0});
  h.push({0, 2, 20.0});
  EXPECT_FALSE(h.defined());
  h.push({0, 3, 30.0});
  EXPECT_TRUE(h.defined());
}

TEST(History, PaperIndexingConvention) {
  // "immediately after update 7x arrives, Hx[0] will be 7x, and Hx[-1]
  // will be 6x provided 6x was not lost, or 5x if it was"
  History h{2};
  h.push({0, 5, 50.0});
  h.push({0, 7, 70.0});
  EXPECT_EQ(h.at(0).seqno, 7);
  EXPECT_EQ(h.at(-1).seqno, 5);
}

TEST(History, EvictsOldestWhenFull) {
  History h{2};
  h.push({0, 1, 1.0});
  h.push({0, 2, 2.0});
  h.push({0, 3, 3.0});
  EXPECT_EQ(h.at(0).seqno, 3);
  EXPECT_EQ(h.at(-1).seqno, 2);
  EXPECT_EQ(h.size(), 2u);
}

TEST(History, AtOutOfRangeThrows) {
  History h{3};
  h.push({0, 1, 1.0});
  EXPECT_NO_THROW((void)h.at(0));
  EXPECT_THROW((void)h.at(-1), std::out_of_range);
  EXPECT_THROW((void)h.at(1), std::out_of_range);
}

TEST(History, SeqnosAscending) {
  History h{3};
  h.push({0, 2, 0.0});
  h.push({0, 5, 0.0});
  h.push({0, 6, 0.0});
  EXPECT_EQ(h.seqnos_ascending(), (std::vector<SeqNo>{2, 5, 6}));
}

TEST(History, ConsecutiveDetection) {
  History h{3};
  h.push({0, 4, 0.0});
  h.push({0, 5, 0.0});
  h.push({0, 6, 0.0});
  EXPECT_TRUE(h.consecutive());
  h.push({0, 8, 0.0});  // window now 5,6,8
  EXPECT_FALSE(h.consecutive());
}

TEST(History, SingleUpdateIsVacuouslyConsecutive) {
  History h{1};
  h.push({0, 42, 0.0});
  EXPECT_TRUE(h.consecutive());
}

TEST(History, ClearEmptiesWindow) {
  History h{2};
  h.push({0, 1, 0.0});
  h.push({0, 2, 0.0});
  h.clear();
  EXPECT_EQ(h.size(), 0u);
  EXPECT_FALSE(h.defined());
}

TEST(HistorySet, RoutesByVariable) {
  HistorySet hs;
  hs.add_variable(0, 1);
  hs.add_variable(1, 2);
  hs.push({0, 1, 10.0});
  hs.push({1, 1, 20.0});
  hs.push({1, 2, 30.0});
  EXPECT_EQ(hs.of(0).at(0).value, 10.0);
  EXPECT_EQ(hs.of(1).at(0).value, 30.0);
  EXPECT_EQ(hs.of(1).at(-1).value, 20.0);
}

TEST(HistorySet, IgnoresUnknownVariables) {
  HistorySet hs;
  hs.add_variable(0, 1);
  hs.push({9, 1, 10.0});  // not in set; must not throw or create state
  EXPECT_FALSE(hs.contains(9));
}

TEST(HistorySet, AllDefinedRequiresEveryVariable) {
  HistorySet hs;
  hs.add_variable(0, 1);
  hs.add_variable(1, 1);
  hs.push({0, 1, 1.0});
  EXPECT_FALSE(hs.all_defined());
  hs.push({1, 1, 1.0});
  EXPECT_TRUE(hs.all_defined());
}

TEST(HistorySet, WideningDegreeKeepsLarger) {
  HistorySet hs;
  hs.add_variable(0, 1);
  hs.add_variable(0, 3);  // widen
  EXPECT_EQ(hs.of(0).degree(), 3);
  hs.add_variable(0, 2);  // narrower request keeps 3
  EXPECT_EQ(hs.of(0).degree(), 3);
}

TEST(HistorySet, OfUnknownThrows) {
  HistorySet hs;
  EXPECT_THROW((void)hs.of(0), std::out_of_range);
}

TEST(HistorySet, VariablesSortedAscending) {
  HistorySet hs;
  hs.add_variable(5, 1);
  hs.add_variable(2, 1);
  hs.add_variable(9, 1);
  EXPECT_EQ(hs.variables(), (std::vector<VarId>{2, 5, 9}));
}

}  // namespace
}  // namespace rcm
