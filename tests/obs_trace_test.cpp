// Tests for rcm::obs::trace: span recording, context propagation and
// nesting, deterministic trace ids, ring wrap, concurrent export under a
// live producer, and the Chrome trace_event JSON shape (including the
// newest-wins byte budget). Every test is a no-op-but-compiles check
// when the tracer is compiled out.
#include "obs/trace.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

namespace rcm::obs::trace {
namespace {

#if RCM_TRACING_ENABLED

// Tests share the process-global tracer; serialize them through a
// fixture that leaves it disabled and empty.
class TraceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    clear();
    set_enabled(true);
  }
  void TearDown() override {
    set_enabled(false);
    clear();
    set_current_context(TraceContext{});
  }
};

TEST_F(TraceTest, DeriveTraceIdIsDeterministicAndNeverZero) {
  static_assert(derive_trace_id(0, 0) == derive_trace_id(0, 0));
  static_assert(derive_trace_id(0, 0) != 0);
  EXPECT_EQ(derive_trace_id(3, 41), derive_trace_id(3, 41));
  EXPECT_NE(derive_trace_id(3, 41), derive_trace_id(3, 42));
  EXPECT_NE(derive_trace_id(3, 41), derive_trace_id(4, 41));
  // var and seqno feed distinct hash words: (0, 1) must not collide
  // with (1, 0).
  EXPECT_NE(derive_trace_id(0, 1), derive_trace_id(1, 0));
}

TEST_F(TraceTest, SpanRecordsOnlyWhileEnabled) {
  const std::uint64_t before = total_spans();
  { RCM_TRACE_SPAN(span, "test.enabled"); }
  EXPECT_EQ(total_spans(), before + 1);

  set_enabled(false);
  { RCM_TRACE_SPAN(span, "test.disabled"); }
  EXPECT_EQ(total_spans(), before + 1);
  EXPECT_EQ(export_chrome_json().find("test.disabled"), std::string::npos);
}

TEST_F(TraceTest, ContextScopeInstallsAndRestores) {
  EXPECT_EQ(current_context(), TraceContext{});
  {
    ContextScope outer{TraceContext{7, 0}};
    EXPECT_EQ(current_context().trace_id, 7u);
    {
      ContextScope inner{TraceContext{9, 3}};
      EXPECT_EQ(current_context().trace_id, 9u);
      EXPECT_EQ(current_context().span_id, 3u);
    }
    EXPECT_EQ(current_context().trace_id, 7u);
  }
  EXPECT_EQ(current_context(), TraceContext{});
}

TEST_F(TraceTest, NestedSpansFormAParentChain) {
  const TraceContext ctx{derive_trace_id(1, 1), 0};
  ContextScope scope{ctx};
  {
    RCM_TRACE_SPAN(parent, "test.parent");
    // The open parent became the current context's span id, so a nested
    // span must report it as parent (checked via the export below: both
    // spans carry the same trace id).
    EXPECT_EQ(current_context().trace_id, ctx.trace_id);
    EXPECT_NE(current_context().span_id, 0u);
    { RCM_TRACE_SPAN(child, "test.child"); }
  }
  const std::string json = export_chrome_json();
  EXPECT_NE(json.find("\"test.parent\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"test.child\""), std::string::npos) << json;
}

TEST_F(TraceTest, SpanCarriesVarSeqAndReason) {
  {
    RCM_TRACE_SPAN(span, "test.fields");
    span.var(5).seq(12).reason("accepted");
  }
  const std::string json = export_chrome_json();
  EXPECT_NE(json.find("\"test.fields\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"var\": 5"), std::string::npos) << json;
  EXPECT_NE(json.find("\"seq\": 12"), std::string::npos) << json;
  EXPECT_NE(json.find("\"reason\": \"accepted\""), std::string::npos) << json;
}

TEST_F(TraceTest, ClearDropsRecordedSpans) {
  { RCM_TRACE_SPAN(span, "test.cleared"); }
  EXPECT_GT(total_spans(), 0u);
  clear();
  EXPECT_EQ(total_spans(), 0u);
  EXPECT_EQ(export_chrome_json().find("test.cleared"), std::string::npos);
}

TEST_F(TraceTest, RingWrapKeepsNewestSpans) {
  for (std::size_t i = 0; i < kRingCapacity + 16; ++i) {
    RCM_TRACE_SPAN(span, "test.wrap");
    span.var(0).seq(static_cast<std::int64_t>(i));
  }
  // total_spans counts every record ever pushed; the ring retains only
  // the newest kRingCapacity of them.
  EXPECT_EQ(total_spans(), kRingCapacity + 16);
  const std::string json = export_chrome_json();
  const auto last_seq =
      "\"seq\": " + std::to_string(kRingCapacity + 15);
  EXPECT_NE(json.find(last_seq), std::string::npos);
  EXPECT_EQ(json.find("\"seq\": 2}"), std::string::npos);  // overwritten
}

TEST_F(TraceTest, ExportIsChromeTraceShape) {
  set_thread_name("trace-test");
  {
    ContextScope scope{TraceContext{derive_trace_id(2, 7), 0}};
    RCM_TRACE_SPAN(span, "test.shape");
  }
  const std::string json = export_chrome_json();
  EXPECT_EQ(json.find("{\"displayTimeUnit\""), 0u) << json;
  EXPECT_NE(json.find("\"traceEvents\": ["), std::string::npos) << json;
  EXPECT_NE(json.find("\"ph\": \"X\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"ph\": \"M\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"thread_name\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"trace-test\""), std::string::npos) << json;
  EXPECT_EQ(json.find("\"truncated\""), std::string::npos) << json;
}

TEST_F(TraceTest, ExportBudgetKeepsNewestAndMarksTruncation) {
  for (int i = 0; i < 64; ++i) {
    RCM_TRACE_SPAN(span, "test.budget");
    span.var(0).seq(i);
  }
  const std::string json = export_chrome_json(1024);
  EXPECT_LE(json.size(), 1024u + 256u);  // budget plus envelope slack
  EXPECT_NE(json.find("\"truncated\": true"), std::string::npos) << json;
  // Newest span survives the cut, the oldest does not.
  EXPECT_NE(json.find("\"seq\": 63"), std::string::npos) << json;
  EXPECT_EQ(json.find("\"seq\": 0}"), std::string::npos) << json;
}

TEST_F(TraceTest, ExportWhileProducerRunsSeesOnlyWholeSpans) {
  std::atomic<bool> stop{false};
  std::thread producer{[&] {
    set_thread_name("producer");
    std::int64_t i = 0;
    while (!stop.load(std::memory_order_relaxed)) {
      RCM_TRACE_SPAN(span, "test.live");
      span.var(1).seq(i++).reason("accepted");
    }
  }};
  // Concurrent dumps must stay well formed and never surface a torn
  // record (a span with the right name but a garbage pointer would
  // crash the exporter; mixed fields would fail the seqlock re-check).
  for (int i = 0; i < 50; ++i) {
    const std::string json = export_chrome_json();
    EXPECT_EQ(json.find("(null)"), std::string::npos);
    EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  }
  stop.store(true);
  producer.join();
}

TEST_F(TraceTest, SpansFromManyThreadsAllLand) {
  constexpr std::size_t kThreads = 4;
  constexpr std::size_t kPerThread = 100;
  clear();
  // Hold every worker at a barrier until all have bound their rings:
  // otherwise a worker that finishes before the next one starts donates
  // its ring to the free list and the counts collapse onto one ring
  // (which is the recycling design working, but not what this test
  // wants to observe).
  std::atomic<std::size_t> ready{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([t, &ready] {
      set_thread_name("worker-" + std::to_string(t));  // binds the ring
      ready.fetch_add(1);
      while (ready.load() < kThreads) std::this_thread::yield();
      ContextScope scope{TraceContext{derive_trace_id(t, 0), 0}};
      for (std::size_t i = 0; i < kPerThread; ++i) {
        RCM_TRACE_SPAN(span, "test.multi");
        span.seq(static_cast<std::int64_t>(i));
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(total_spans(), kThreads * kPerThread);
  const std::string json = export_chrome_json();
  for (std::size_t t = 0; t < kThreads; ++t)
    EXPECT_NE(json.find("worker-" + std::to_string(t)), std::string::npos);
}

#else  // RCM_TRACING_ENABLED

TEST(TraceCompiledOutTest, ApiIsANoOp) {
  set_enabled(true);
  EXPECT_FALSE(enabled());
  ContextScope scope{TraceContext{1, 2}};
  {
    RCM_TRACE_SPAN(span, "noop");
    span.var(1).seq(2).reason("accepted");
  }
  EXPECT_EQ(total_spans(), 0u);
  EXPECT_EQ(export_chrome_json(), "{\"traceEvents\": []}\n");
}

#endif  // RCM_TRACING_ENABLED

}  // namespace
}  // namespace rcm::obs::trace
