// Swarm harness end-to-end tests: a fixed-seed batch over the guaranteed
// cells must be clean, the fuzzer must be a pure function of (seed,
// index), and a deliberately broken filter (kBrokenAd2, which drops the
// AD-2 holdback) must be caught, shrunk to a handful of updates, and
// packaged into a record that replays bit-for-bit.
#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>

#include "swarm/swarm.hpp"

namespace rcm::swarm {
namespace {

// A small aimed batch that provably hits the planted bug (verified below).
SwarmOptions broken_filter_options() {
  SwarmOptions options;
  options.seed = 7;
  options.runs = 20;
  options.fuzz.force_filter = FilterKind::kBrokenAd2;
  return options;
}

TEST(Swarm, FixedSeedBatchIsCleanOnGuaranteedCells) {
  SwarmOptions options;
  options.seed = 1;
  options.runs = 200;
  const SwarmReport report = run_swarm(options);

  EXPECT_EQ(report.runs_executed, 200u);
  EXPECT_EQ(report.failures, 0u) << "guaranteed cell violated — either a "
                                    "real bug or an unsound oracle cell";
  EXPECT_TRUE(report.counterexamples.empty());
  // The batch must be substantive, not vacuous: most runs raise alerts and
  // the sampler spreads across many (filter, scenario) cells.
  EXPECT_GT(report.runs_with_alerts, 100u);
  EXPECT_GE(report.cell_runs.size(), 20u);
}

TEST(Swarm, SampleSpecIsPureFunctionOfSeedAndIndex) {
  for (std::uint64_t i : {0u, 3u, 17u}) {
    EXPECT_TRUE(sample_spec(5, i) == sample_spec(5, i));
    EXPECT_FALSE(sample_spec(5, i) == sample_spec(6, i));
  }
  EXPECT_FALSE(sample_spec(5, 0) == sample_spec(5, 1));
}

TEST(Swarm, ExecutionIsDeterministic) {
  const SwarmSpec spec = sample_spec(42, 3);
  const RunCheck a = execute_and_check(spec);
  const RunCheck b = execute_and_check(spec);
  EXPECT_EQ(a.digest, b.digest);
  EXPECT_EQ(a.displayed, b.displayed);
  EXPECT_EQ(a.violations, b.violations);
}

TEST(Swarm, ProgressCallbackCanStopTheBatch) {
  SwarmOptions options;
  options.seed = 1;
  options.runs = 100;
  const SwarmReport report = run_swarm(
      options, [](std::uint64_t i, const RunCheck&) { return i < 4; });
  EXPECT_EQ(report.runs_executed, 5u);
  EXPECT_TRUE(report.time_budget_exhausted);
}

TEST(Swarm, BrokenFilterIsCaughtAndShrunkSmall) {
  const SwarmReport report = run_swarm(broken_filter_options());

  ASSERT_GT(report.failures, 0u) << "the planted AD-2 bug went undetected";
  ASSERT_FALSE(report.counterexamples.empty());

  const Counterexample& ce = report.counterexamples.front();
  // Dropping the holdback breaks orderedness under replication.
  EXPECT_TRUE(std::count(ce.record.violation_kinds.begin(),
                         ce.record.violation_kinds.end(),
                         ViolationKind::kOrderedness) > 0);
  // The minimized spec is tiny compared to the sampled one.
  EXPECT_LE(ce.record.spec.total_updates(), 10u);
  EXPECT_LT(ce.record.spec.size(), ce.original.size());
  EXPECT_GE(ce.record.spec.base.num_ces, 2u)
      << "single-replica runs cannot interleave; the shrinker must keep "
         "at least two CEs for an orderedness break";
}

TEST(Swarm, BrokenFilterCounterexampleReplaysBitForBit) {
  const SwarmReport report = run_swarm(broken_filter_options());
  ASSERT_FALSE(report.counterexamples.empty());
  const CounterexampleRecord& record = report.counterexamples.front().record;

  const ReplayResult result = replay(record);
  EXPECT_TRUE(result.digest_matched);
  EXPECT_TRUE(result.violations_matched);
  EXPECT_TRUE(result.reproduced);
}

TEST(Swarm, RecordRoundTripsThroughDisk) {
  const SwarmReport report = run_swarm(broken_filter_options());
  ASSERT_FALSE(report.counterexamples.empty());
  const CounterexampleRecord& record = report.counterexamples.front().record;

  const auto path =
      std::filesystem::temp_directory_path() / "rcm_swarm_test_record.bin";
  save_record(path, record);
  const CounterexampleRecord loaded = load_record(path);
  std::filesystem::remove(path);

  EXPECT_TRUE(loaded.spec == record.spec);
  EXPECT_EQ(loaded.digest, record.digest);
  EXPECT_EQ(loaded.run_bytes, record.run_bytes);
  EXPECT_TRUE(replay(loaded).reproduced);
}

TEST(Swarm, CleanFiltersPassWhereBrokenOneFails) {
  // The exact configuration that trips kBrokenAd2 must be clean under the
  // real AD-2: the violation comes from the planted bug, not the harness.
  const SwarmReport report = run_swarm(broken_filter_options());
  ASSERT_FALSE(report.counterexamples.empty());
  ComposedSpec fixed = report.counterexamples.front().record.spec;
  fixed.base.filter = FilterKind::kAd2;
  const RunCheck chk = execute_and_check(fixed);
  EXPECT_FALSE(chk.failed())
      << (chk.violations.empty() ? std::string{} : chk.violations[0]);
}

}  // namespace
}  // namespace rcm::swarm
