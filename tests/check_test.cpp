// Tests for the property checkers in rcm::check, including randomized
// cross-validation of the exact polynomial consistency/completeness
// checkers against the brute-force oracles that enumerate witnesses
// straight from the definitions.
#include <gtest/gtest.h>

#include <memory>

#include "check/completeness.hpp"
#include "check/consistency.hpp"
#include "check/domination.hpp"
#include "check/oracle.hpp"
#include "check/properties.hpp"
#include "core/builtin_conditions.hpp"
#include "core/displayer.hpp"
#include "core/evaluator.hpp"
#include "core/filters.hpp"
#include "util/rng.hpp"

namespace rcm::check {
namespace {

constexpr VarId kX = 0;
constexpr VarId kY = 1;

ConditionPtr threshold(double t = 50.0) {
  return std::make_shared<const ThresholdCondition>("thr", kX, t);
}
ConditionPtr rise(Triggering trig, double delta = 10.0) {
  return std::make_shared<const RiseCondition>("rise", kX, delta, trig);
}
ConditionPtr diff(double delta = 30.0) {
  return std::make_shared<const AbsDiffCondition>("diff", kX, kY, delta);
}

SystemRun make_run(ConditionPtr cond,
                   std::vector<std::vector<Update>> inputs,
                   std::vector<Alert> displayed) {
  SystemRun run;
  run.condition = std::move(cond);
  run.ce_inputs = std::move(inputs);
  run.displayed = std::move(displayed);
  return run;
}

// -------------------------------------------------------- orderedness ----

TEST(CheckOrdered, EmptyAndSingleAreOrdered) {
  EXPECT_TRUE(check_ordered({}, {kX}));
}

TEST(CheckOrdered, DetectsInversionPerVariable) {
  ConditionEvaluator ce{diff(), "CE"};
  std::vector<Alert> alerts;
  (void)ce.on_update({kX, 1, 0.0});
  if (auto a = ce.on_update({kY, 1, 100.0})) alerts.push_back(*a);
  if (auto a = ce.on_update({kY, 2, 200.0})) alerts.push_back(*a);
  ASSERT_EQ(alerts.size(), 2u);
  EXPECT_TRUE(check_ordered(alerts, {kX, kY}));
  std::swap(alerts[0], alerts[1]);
  EXPECT_FALSE(check_ordered(alerts, {kX, kY}));
}

// ----------------------------------------------------- combined inputs ----

TEST(CombinedInputs, MergesPerVariable) {
  const std::vector<Update> u1 = {{kX, 1, 10.0}, {kY, 1, 1.0}, {kX, 3, 30.0}};
  const std::vector<Update> u2 = {{kX, 2, 20.0}, {kY, 1, 1.0}};
  const auto combined = combined_inputs({u1, u2});
  ASSERT_EQ(combined.size(), 2u);
  EXPECT_EQ(combined[0].first, kX);
  ASSERT_EQ(combined[0].second.size(), 3u);
  EXPECT_EQ(combined[0].second[1].seqno, 2);
  EXPECT_EQ(combined[1].first, kY);
  EXPECT_EQ(combined[1].second.size(), 1u);
}

// -------------------------------------------------------- consistency ----

TEST(CheckConsistent, EmptyOutputIsConsistent) {
  const auto run = make_run(threshold(), {{{kX, 1, 60.0}}}, {});
  EXPECT_TRUE(check_consistent(run).consistent);
}

TEST(CheckConsistent, RejectsAlertThatCannotRetrigger) {
  // A degree-1 alert whose value is below the threshold: no T(U') can
  // contain it.
  Alert bogus;
  bogus.cond = "thr";
  bogus.histories.emplace(kX, std::vector<Update>{{kX, 1, 10.0}});
  const auto run = make_run(threshold(), {{{kX, 1, 10.0}}}, {bogus});
  const auto v = check_consistent(run);
  EXPECT_FALSE(v.consistent);
  EXPECT_NE(v.reason.find("re-evaluate"), std::string::npos);
}

TEST(CheckConsistent, RejectsAlertOnUnknownUpdate) {
  Alert a;
  a.cond = "thr";
  a.histories.emplace(kX, std::vector<Update>{{kX, 7, 99.0}});
  const auto run = make_run(threshold(), {{{kX, 1, 60.0}}}, {a});
  const auto v = check_consistent(run);
  EXPECT_FALSE(v.consistent);
  EXPECT_NE(v.reason.find("no CE received"), std::string::npos);
}

TEST(CheckConsistent, RejectsMalformedWindow) {
  Alert a;
  a.cond = "rise";
  a.histories.emplace(kX,
                      std::vector<Update>{{kX, 3, 0.0}, {kX, 3, 100.0}});
  const auto run =
      make_run(rise(Triggering::kAggressive), {{{kX, 3, 0.0}}}, {a});
  EXPECT_FALSE(check_consistent(run).consistent);
}

TEST(CheckConsistent, PresentAbsentConflictDetected) {
  // Window {1,3} demands 2 absent; window {2,3} demands 2 present.
  auto cond = rise(Triggering::kAggressive);
  ConditionEvaluator ce1{cond, "CE1"}, ce2{cond, "CE2"};
  (void)ce1.on_update({kX, 1, 0.0});
  const auto a1 = ce1.on_update({kX, 3, 100.0});
  (void)ce2.on_update({kX, 2, 0.0});
  const auto a2 = ce2.on_update({kX, 3, 100.0});
  ASSERT_TRUE(a1 && a2);
  const auto run = make_run(
      cond, {{{kX, 1, 0.0}, {kX, 3, 100.0}}, {{kX, 2, 0.0}, {kX, 3, 100.0}}},
      {*a1, *a2});
  EXPECT_FALSE(check_consistent(run).consistent);
}

// ------------------------------------------------------- completeness ----

TEST(CheckComplete, SingleVarDirectComparison) {
  auto cond = threshold();
  const std::vector<Update> u1 = {{kX, 1, 60.0}, {kX, 2, 40.0}};
  const std::vector<Update> u2 = {{kX, 3, 70.0}};
  // T(union) alerts on 1 and 3.
  const auto union_alerts =
      evaluate_trace(cond, std::vector<Update>{u1[0], u1[1], u2[0]});
  ASSERT_EQ(union_alerts.size(), 2u);
  EXPECT_EQ(check_complete(make_run(cond, {u1, u2}, union_alerts)),
            Verdict::kHolds);
  EXPECT_EQ(check_complete(make_run(cond, {u1, u2}, {union_alerts[0]})),
            Verdict::kViolated);
  // Extra (duplicated key) alerts don't matter — Phi is a set — but an
  // alert outside Phi(T(union)) violates.
  Alert foreign;
  foreign.cond = "thr";
  foreign.histories.emplace(kX, std::vector<Update>{{kX, 2, 40.0}});
  auto with_extra = union_alerts;
  with_extra.push_back(foreign);
  EXPECT_EQ(check_complete(make_run(cond, {u1, u2}, with_extra)),
            Verdict::kViolated);
}

TEST(CheckComplete, MultiVarFindsWitnessInterleaving) {
  auto cond = diff();
  const std::vector<Update> ux = {{kX, 1, 0.0}, {kX, 2, 100.0}};
  const std::vector<Update> uy = {{kY, 1, 10.0}};
  // Interleaving <1x, 1y, 2x>: 1y vs 0 -> |0-10|=10 no; 2x: |100-10| yes.
  ConditionEvaluator ce{cond, "CE"};
  std::vector<Alert> alerts;
  for (const Update& u : {ux[0], uy[0], ux[1]})
    if (auto a = ce.on_update(u)) alerts.push_back(*a);
  ASSERT_EQ(alerts.size(), 1u);
  EXPECT_EQ(check_complete(make_run(cond, {{ux[0], uy[0], ux[1]}}, alerts)),
            Verdict::kHolds);
}

TEST(CheckComplete, ZeroBudgetReportsUnknown) {
  auto cond = diff();
  const std::vector<Update> u = {{kX, 1, 0.0}, {kY, 1, 50.0}};
  ConditionEvaluator ce{cond, "CE"};
  std::vector<Alert> alerts;
  for (const Update& up : u)
    if (auto a = ce.on_update(up)) alerts.push_back(*a);
  EXPECT_EQ(check_complete(make_run(cond, {u}, alerts), 0), Verdict::kUnknown);
}

// ------------------------------------------- oracle cross-validation ----

/// Runs a small randomized replicated single-variable system entirely
/// in-memory: random loss per CE, random alert interleaving at the AD,
/// random filter. Returns the SystemRun.
SystemRun random_single_var_run(util::Rng& rng, ConditionPtr cond) {
  const std::size_t n = static_cast<std::size_t>(rng.uniform_int(3, 9));
  std::vector<Update> u;
  for (std::size_t i = 0; i < n; ++i)
    u.push_back({kX, static_cast<SeqNo>(i + 1), rng.uniform(0.0, 100.0)});

  std::vector<std::vector<Update>> inputs(2);
  for (auto& input : inputs)
    for (const Update& up : u)
      if (!rng.bernoulli(0.3)) input.push_back(up);

  std::vector<std::vector<Alert>> outputs;
  for (const auto& input : inputs) outputs.push_back(evaluate_trace(cond, input));

  // Random merge of the two alert streams.
  std::vector<Alert> arrivals;
  std::size_t i = 0, j = 0;
  while (i < outputs[0].size() || j < outputs[1].size()) {
    const bool take_first =
        j >= outputs[1].size() ||
        (i < outputs[0].size() && rng.bernoulli(0.5));
    arrivals.push_back(take_first ? outputs[0][i++] : outputs[1][j++]);
  }

  // Random filter from the single-variable family.
  const FilterKind kinds[] = {FilterKind::kPassAll, FilterKind::kAd1,
                              FilterKind::kAd2, FilterKind::kAd3,
                              FilterKind::kAd4};
  const FilterPtr filter =
      make_filter(kinds[rng.uniform_int(0, 4)], {kX});
  std::vector<Alert> displayed;
  for (const Alert& a : arrivals)
    if (filter->offer(a)) displayed.push_back(a);

  return make_run(std::move(cond), std::move(inputs), std::move(displayed));
}

class OracleAgreement : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(OracleAgreement, SingleVarConsistencyMatchesOracle) {
  util::Rng rng{GetParam()};
  for (int trial = 0; trial < 40; ++trial) {
    const bool aggressive = rng.bernoulli(0.5);
    auto cond = aggressive ? rise(Triggering::kAggressive)
                           : rise(Triggering::kConservative);
    const SystemRun run = random_single_var_run(rng, cond);
    const auto oracle = oracle_consistent(run);
    ASSERT_TRUE(oracle.has_value());
    EXPECT_EQ(check_consistent(run).consistent, *oracle)
        << "seed=" << GetParam() << " trial=" << trial;
  }
}

TEST_P(OracleAgreement, SingleVarCompletenessMatchesOracle) {
  util::Rng rng{GetParam()};
  for (int trial = 0; trial < 40; ++trial) {
    auto cond = threshold();
    const SystemRun run = random_single_var_run(rng, cond);
    const auto oracle = oracle_complete(run);
    ASSERT_TRUE(oracle.has_value());
    const Verdict v = check_complete(run);
    ASSERT_NE(v, Verdict::kUnknown);
    EXPECT_EQ(v == Verdict::kHolds, *oracle)
        << "seed=" << GetParam() << " trial=" << trial;
  }
}

/// Random two-variable runs, small enough for the oracles.
SystemRun random_multi_var_run(util::Rng& rng) {
  auto cond = diff(20.0);
  std::vector<Update> ux, uy;
  const std::size_t nx = static_cast<std::size_t>(rng.uniform_int(2, 4));
  const std::size_t ny = static_cast<std::size_t>(rng.uniform_int(2, 4));
  for (std::size_t i = 0; i < nx; ++i)
    ux.push_back({kX, static_cast<SeqNo>(i + 1), rng.uniform(0.0, 60.0)});
  for (std::size_t i = 0; i < ny; ++i)
    uy.push_back({kY, static_cast<SeqNo>(i + 1), rng.uniform(0.0, 60.0)});

  // Each CE receives a random subset in a random interleaving.
  std::vector<std::vector<Update>> inputs;
  std::vector<std::vector<Alert>> outputs;
  for (int ce = 0; ce < 2; ++ce) {
    std::vector<Update> sx, sy;
    for (const Update& u : ux)
      if (!rng.bernoulli(0.25)) sx.push_back(u);
    for (const Update& u : uy)
      if (!rng.bernoulli(0.25)) sy.push_back(u);
    std::vector<Update> interleaved;
    std::size_t i = 0, j = 0;
    while (i < sx.size() || j < sy.size()) {
      const bool take_x = j >= sy.size() || (i < sx.size() && rng.bernoulli(0.5));
      interleaved.push_back(take_x ? sx[i++] : sy[j++]);
    }
    outputs.push_back(evaluate_trace(cond, interleaved));
    inputs.push_back(std::move(interleaved));
  }

  std::vector<Alert> arrivals;
  std::size_t i = 0, j = 0;
  while (i < outputs[0].size() || j < outputs[1].size()) {
    const bool take_first =
        j >= outputs[1].size() || (i < outputs[0].size() && rng.bernoulli(0.5));
    arrivals.push_back(take_first ? outputs[0][i++] : outputs[1][j++]);
  }
  const FilterKind kinds[] = {FilterKind::kPassAll, FilterKind::kAd1,
                              FilterKind::kAd5, FilterKind::kAd6};
  const FilterPtr filter =
      make_filter(kinds[rng.uniform_int(0, 3)], {kX, kY});
  std::vector<Alert> displayed;
  for (const Alert& a : arrivals)
    if (filter->offer(a)) displayed.push_back(a);

  return make_run(std::move(cond), std::move(inputs), std::move(displayed));
}

TEST_P(OracleAgreement, MultiVarConsistencyMatchesOracle) {
  util::Rng rng{GetParam() + 1000};
  for (int trial = 0; trial < 15; ++trial) {
    const SystemRun run = random_multi_var_run(rng);
    const auto oracle = oracle_consistent(run);
    if (!oracle.has_value()) continue;  // too large for the oracle
    EXPECT_EQ(check_consistent(run).consistent, *oracle)
        << "seed=" << GetParam() << " trial=" << trial;
  }
}

TEST_P(OracleAgreement, MultiVarCompletenessMatchesOracle) {
  util::Rng rng{GetParam() + 2000};
  for (int trial = 0; trial < 15; ++trial) {
    const SystemRun run = random_multi_var_run(rng);
    const auto oracle = oracle_complete(run);
    if (!oracle.has_value()) continue;
    const Verdict v = check_complete(run);
    if (v == Verdict::kUnknown) continue;
    EXPECT_EQ(v == Verdict::kHolds, *oracle)
        << "seed=" << GetParam() << " trial=" << trial;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, OracleAgreement,
                         ::testing::Range<std::uint64_t>(1, 11));

// --------------------------------------------------------- domination ----

TEST(Domination, SubsequenceByKey) {
  ConditionEvaluator ce{threshold(), "CE"};
  std::vector<Alert> alerts;
  for (SeqNo s = 1; s <= 3; ++s)
    if (auto a = ce.on_update({kX, s, 80.0})) alerts.push_back(*a);
  ASSERT_EQ(alerts.size(), 3u);
  EXPECT_TRUE(is_alert_subsequence({alerts.begin() + 1, alerts.end()},
                                   alerts));
  EXPECT_TRUE(is_alert_subsequence({}, alerts));
  std::vector<Alert> reversed = {alerts[2], alerts[0]};
  EXPECT_FALSE(is_alert_subsequence(reversed, alerts));
}

TEST(Domination, ObservationAccumulates) {
  Ad1DuplicateFilter g1;
  Ad2OrderedFilter g2{kX};
  ConditionEvaluator ce{threshold(), "CE"};
  std::vector<Alert> arrivals;
  for (SeqNo s : {2, 1, 3})
    if (auto a = ce.on_update({kX, s, 80.0})) arrivals.push_back(*a);
  // The CE dedups stale seqnos, so craft arrivals manually instead.
  arrivals.clear();
  for (SeqNo s : {2, 1, 3}) {
    Alert a;
    a.cond = "thr";
    a.histories.emplace(kX, std::vector<Update>{{kX, s, 80.0}});
    arrivals.push_back(a);
  }
  DominationObservation obs;
  observe_domination(g1, g2, arrivals, obs);
  EXPECT_EQ(obs.runs, 1u);
  EXPECT_TRUE(obs.dominates());
  EXPECT_TRUE(obs.strictly_dominates());
  EXPECT_EQ(obs.g1_alerts, 3u);
  EXPECT_EQ(obs.g2_alerts, 2u);
}

}  // namespace
}  // namespace rcm::check
