// Tests for the §4.2 "delayed displaying" extension: the reorder-buffer
// HoldbackDisplayer and its simulation runner. Verifies the paper's
// qualitative claims about the scheme: it reorders stragglers that
// arrive within the timeout, it is forced to display out of order when
// delays exceed the timeout, and it never discards an alert (so it
// trades AD-2's completeness loss for a latency cost and a weaker,
// probabilistic orderedness).
#include <gtest/gtest.h>

#include <memory>
#include <numeric>
#include <set>

#include "check/properties.hpp"
#include "core/builtin_conditions.hpp"
#include "core/holdback.hpp"
#include "sim/holdback_run.hpp"
#include "trace/generators.hpp"

namespace rcm {
namespace {

Alert alert_at(SeqNo s) {
  Alert a;
  a.cond = "c";
  a.histories.emplace(0, std::vector<Update>{{0, s, static_cast<double>(s)}});
  return a;
}

std::vector<SeqNo> seqnos(const std::vector<Alert>& alerts) {
  std::vector<SeqNo> out;
  for (const Alert& a : alerts) out.push_back(a.seqno(0));
  return out;
}

TEST(HoldbackDisplayer, NegativeTimeoutThrows) {
  EXPECT_THROW((HoldbackDisplayer{0, -1.0}), std::invalid_argument);
}

TEST(HoldbackDisplayer, ZeroTimeoutDisplaysImmediately) {
  HoldbackDisplayer hb{0, 0.0};
  const auto released = hb.on_alert(alert_at(2), 1.0);
  ASSERT_EQ(released.size(), 1u);
  EXPECT_EQ(released[0].seqno(0), 2);
}

TEST(HoldbackDisplayer, ReordersWithinTimeout) {
  // Alert 2 arrives before alert 1; both deadlines expire together and
  // release in seqno order — the straggler is repaired.
  HoldbackDisplayer hb{0, 1.0};
  EXPECT_TRUE(hb.on_alert(alert_at(2), 0.0).empty());
  EXPECT_TRUE(hb.on_alert(alert_at(1), 0.5).empty());
  const auto released = hb.on_time(1.5);
  EXPECT_EQ(seqnos(released), (std::vector<SeqNo>{1, 2}));
  EXPECT_EQ(hb.late_displays(), 0u);
}

TEST(HoldbackDisplayer, TimeoutForcesOutOfOrderDisplay) {
  // Alert 2's deadline fires before alert 1 arrives: 1 then displays
  // late, breaking orderedness — the paper's objection to the scheme.
  HoldbackDisplayer hb{0, 1.0};
  (void)hb.on_alert(alert_at(2), 0.0);
  const auto first = hb.on_time(1.0);
  EXPECT_EQ(seqnos(first), (std::vector<SeqNo>{2}));
  (void)hb.on_alert(alert_at(1), 2.0);
  const auto second = hb.on_time(3.0);
  EXPECT_EQ(seqnos(second), (std::vector<SeqNo>{1}));
  EXPECT_EQ(hb.late_displays(), 1u);
  EXPECT_EQ(hb.displayed().size(), 2u);  // nothing was dropped
}

TEST(HoldbackDisplayer, AbsorbsExactDuplicates) {
  HoldbackDisplayer hb{0, 1.0};
  (void)hb.on_alert(alert_at(1), 0.0);
  (void)hb.on_alert(alert_at(1), 0.1);
  (void)hb.on_time(2.0);
  EXPECT_EQ(hb.displayed().size(), 1u);
  EXPECT_EQ(hb.duplicates(), 1u);
}

TEST(HoldbackDisplayer, NextDeadlineTracksOldestEntry) {
  HoldbackDisplayer hb{0, 2.0};
  EXPECT_FALSE(hb.next_deadline().has_value());
  (void)hb.on_alert(alert_at(1), 1.0);
  ASSERT_TRUE(hb.next_deadline().has_value());
  EXPECT_DOUBLE_EQ(*hb.next_deadline(), 3.0);
  (void)hb.on_alert(alert_at(2), 1.5);
  EXPECT_DOUBLE_EQ(*hb.next_deadline(), 3.0);  // still the oldest
  (void)hb.on_time(3.0);
  ASSERT_TRUE(hb.next_deadline().has_value());
  EXPECT_DOUBLE_EQ(*hb.next_deadline(), 3.5);
}

TEST(HoldbackDisplayer, FlushReleasesEverythingInOrder) {
  HoldbackDisplayer hb{0, 100.0};
  (void)hb.on_alert(alert_at(3), 0.0);
  (void)hb.on_alert(alert_at(1), 0.1);
  (void)hb.on_alert(alert_at(2), 0.2);
  const auto released = hb.flush();
  EXPECT_EQ(seqnos(released), (std::vector<SeqNo>{1, 2, 3}));
  EXPECT_EQ(hb.buffered(), 0u);
}

// ----------------------------------------------------------- sim runs ----

sim::SystemConfig holdback_config(std::uint64_t seed) {
  sim::SystemConfig config;
  config.condition =
      std::make_shared<const ThresholdCondition>("hot", 0, 55.0);
  util::Rng rng{seed};
  trace::UniformParams p;
  p.base.var = 0;
  p.base.count = 80;
  p.lo = 0.0;
  p.hi = 100.0;
  config.dm_traces = {trace::uniform_trace(p, rng)};
  config.num_ces = 2;
  config.front.loss = 0.25;
  // Delay spread wider than the 1s update period, so alerts from the
  // two replicas genuinely invert at the AD.
  config.front.delay_max = 2.5;
  config.back.delay_max = 2.5;
  config.seed = seed;
  return config;
}

TEST(HoldbackRun, RejectsMultiVariableConditions) {
  sim::SystemConfig config = holdback_config(1);
  config.condition =
      std::make_shared<const AbsDiffCondition>("d", 0, 1, 1.0);
  EXPECT_THROW((void)sim::run_holdback_system(config, 1.0),
               std::invalid_argument);
}

TEST(HoldbackRun, NothingIsEverDropped) {
  // Hold-back never discards: the displayed key set must equal the
  // union of raised keys — i.e. the scheme is complete where AD-2 is
  // not (its price is latency, not alerts).
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    const sim::SystemConfig config = holdback_config(seed);
    const auto result = sim::run_holdback_system(config, 1.0);
    const auto ref = evaluate_trace(
        config.condition,
        check::combined_inputs(result.ce_inputs).front().second);
    std::set<AlertKey> displayed;
    for (const Alert& a : result.displayed) displayed.insert(a.key());
    std::set<AlertKey> expected;
    for (const Alert& a : ref) expected.insert(a.key());
    EXPECT_EQ(displayed, expected) << "seed " << seed;
  }
}

TEST(HoldbackRun, LargeTimeoutRestoresOrderSmallOneDoesNot) {
  // With a timeout comfortably above the delay spread, reordering is
  // always repaired; with a tiny timeout, late displays occur somewhere
  // in the sweep.
  std::size_t late_with_large = 0;
  std::size_t late_with_tiny = 0;
  for (std::uint64_t seed = 1; seed <= 12; ++seed) {
    const sim::SystemConfig config = holdback_config(seed * 7);
    late_with_large +=
        sim::run_holdback_system(config, 5.0).late_displays;
    late_with_tiny +=
        sim::run_holdback_system(config, 0.01).late_displays;
  }
  EXPECT_EQ(late_with_large, 0u);
  EXPECT_GT(late_with_tiny, 0u);
}

TEST(HoldbackRun, LatencyScalesWithTimeout) {
  const sim::SystemConfig config = holdback_config(3);
  auto mean_latency = [&](double timeout) {
    const auto result = sim::run_holdback_system(config, timeout);
    if (result.display_latency.empty()) return 0.0;
    return std::accumulate(result.display_latency.begin(),
                           result.display_latency.end(), 0.0) /
           static_cast<double>(result.display_latency.size());
  };
  const double small = mean_latency(0.2);
  const double large = mean_latency(3.0);
  EXPECT_LT(small, large);
  EXPECT_NEAR(large, 3.0, 0.5);  // latency is dominated by the timeout
}

}  // namespace
}  // namespace rcm
