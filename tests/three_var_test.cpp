// Three-variable systems: the paper analyzes |V| = 2 and notes the
// algorithms "can be easily extended for conditions with more than two
// variables". These tests exercise that extension end to end: AD-5/AD-6
// over three variables, the multi-variable consistency checker's
// precedence graph over three per-variable chains, and the completeness
// search over three-way interleavings.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <memory>

#include "check/completeness.hpp"
#include "check/consistency.hpp"
#include "check/oracle.hpp"
#include "check/properties.hpp"
#include "core/builtin_conditions.hpp"
#include "core/evaluator.hpp"
#include "core/filters.hpp"
#include "exp/scenarios.hpp"
#include "sim/system.hpp"
#include "trace/generators.hpp"

namespace rcm {
namespace {

constexpr VarId kX = 0, kY = 1, kZ = 2;

/// max(x, y, z) - min(x, y, z) > delta: degree 1 in all three.
ConditionPtr spread_condition(double delta) {
  return std::make_shared<const PredicateCondition>(
      "spread", std::vector<std::pair<VarId, int>>{{kX, 1}, {kY, 1}, {kZ, 1}},
      Triggering::kAggressive, [delta](const HistorySet& h) {
        const double x = h.of(kX).at(0).value;
        const double y = h.of(kY).at(0).value;
        const double z = h.of(kZ).at(0).value;
        return std::max({x, y, z}) - std::min({x, y, z}) > delta;
      });
}

std::vector<trace::Trace> three_traces(std::size_t n, util::Rng& rng) {
  std::vector<trace::Trace> traces;
  for (VarId v : {kX, kY, kZ}) {
    trace::UniformParams p;
    p.base.var = v;
    p.base.count = n;
    p.lo = 0.0;
    p.hi = 100.0;
    traces.push_back(trace::uniform_trace(p, rng));
  }
  return traces;
}

TEST(ThreeVariables, EvaluatorWaitsForAllThree) {
  auto cond = spread_condition(10.0);
  ConditionEvaluator ce{cond};
  EXPECT_FALSE(ce.on_update({kX, 1, 0.0}).has_value());
  EXPECT_FALSE(ce.on_update({kY, 1, 50.0}).has_value());
  const auto a = ce.on_update({kZ, 1, 100.0});
  ASSERT_TRUE(a.has_value());
  EXPECT_EQ(a->histories.size(), 3u);
  EXPECT_EQ(a->seqno(kZ), 1);
}

TEST(ThreeVariables, Ad5OrderedInEveryVariable) {
  util::Rng rng{3};
  sim::SystemConfig config;
  config.condition = spread_condition(60.0);
  config.dm_traces = three_traces(20, rng);
  config.num_ces = 3;
  config.front.loss = 0.2;
  config.front.delay_max = 2.0;
  config.back.delay_max = 2.0;
  config.filter = FilterKind::kAd5;
  config.seed = 3;
  const auto r = sim::run_system(config);
  EXPECT_TRUE(check::check_ordered(r.displayed, {kX, kY, kZ}));
}

TEST(ThreeVariables, Ad6ConsistentAcrossSweep) {
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    util::Rng rng{seed};
    sim::SystemConfig config;
    config.condition = spread_condition(60.0);
    config.dm_traces = three_traces(15, rng);
    config.num_ces = 2;
    config.front.loss = 0.2;
    config.front.delay_max = 2.0;
    config.back.delay_max = 2.0;
    config.filter = FilterKind::kAd6;
    config.seed = seed;
    const auto r = sim::run_system(config);
    const auto verdict =
        check::check_consistent(r.as_system_run(config.condition));
    EXPECT_TRUE(verdict.consistent) << "seed " << seed << ": "
                                    << verdict.reason;
    EXPECT_TRUE(check::check_ordered(r.displayed, {kX, kY, kZ}));
  }
}

TEST(ThreeVariables, Ad1InconsistencyStillWitnessed) {
  // Theorem 10's interleaving anomaly generalizes to three variables.
  std::size_t violations = 0;
  for (std::uint64_t seed = 1; seed <= 30; ++seed) {
    util::Rng rng{seed * 13};
    sim::SystemConfig config;
    config.condition = spread_condition(60.0);
    config.dm_traces = three_traces(12, rng);
    config.num_ces = 2;
    config.front.delay_max = 2.5;
    config.back.delay_max = 2.5;
    config.filter = FilterKind::kAd1;
    config.seed = seed;
    const auto r = sim::run_system(config);
    if (!check::check_consistent(r.as_system_run(config.condition))
             .consistent)
      ++violations;
  }
  EXPECT_GT(violations, 0u);
}

TEST(ThreeVariables, ConsistencyCheckerAgreesWithOracleOnTinyRuns) {
  auto cond = spread_condition(40.0);
  util::Rng rng{99};
  for (int trial = 0; trial < 25; ++trial) {
    // Tiny three-variable run: 2 updates per variable, random subsets
    // and interleavings per CE.
    std::vector<std::vector<Update>> inputs;
    std::vector<Update> all;
    for (VarId v : {kX, kY, kZ})
      for (SeqNo s = 1; s <= 2; ++s)
        all.push_back({v, s, rng.uniform(0.0, 100.0)});
    std::vector<std::vector<Alert>> outputs;
    for (int ce = 0; ce < 2; ++ce) {
      std::vector<Update> input;
      for (const Update& u : all)
        if (!rng.bernoulli(0.2)) input.push_back(u);
      // Shuffle across variables while keeping per-variable order.
      for (std::size_t i = 1; i < input.size(); ++i) {
        const auto j = static_cast<std::size_t>(
            rng.uniform_int(0, static_cast<std::int64_t>(i)));
        if (input[i].var != input[j].var) std::swap(input[i], input[j]);
      }
      // Re-sort each variable's seqnos into order within the stream.
      std::vector<Update> fixed;
      std::map<VarId, std::vector<Update>> per_var;
      for (const Update& u : input) per_var[u.var].push_back(u);
      for (auto& [v, seq] : per_var)
        std::sort(seq.begin(), seq.end(),
                  [](const Update& a, const Update& b) {
                    return a.seqno < b.seqno;
                  });
      std::map<VarId, std::size_t> idx;
      for (const Update& u : input) fixed.push_back(per_var[u.var][idx[u.var]++]);
      outputs.push_back(evaluate_trace(cond, fixed));
      inputs.push_back(std::move(fixed));
    }
    std::vector<Alert> displayed;
    for (const auto& out : outputs)
      for (const Alert& a : out)
        if (rng.bernoulli(0.7)) displayed.push_back(a);

    check::SystemRun run;
    run.condition = cond;
    run.ce_inputs = inputs;
    run.displayed = displayed;
    const auto oracle = check::oracle_consistent(run, {.max_multi_var_updates = 6});
    if (!oracle.has_value()) continue;
    EXPECT_EQ(check::check_consistent(run).consistent, *oracle)
        << "trial " << trial;
  }
}

TEST(ThreeVariables, CompletenessSearchHandlesThreeStreams) {
  auto cond = spread_condition(40.0);
  // One CE, lossless: its own interleaving is a witness; completeness
  // must hold.
  util::Rng rng{7};
  std::vector<Update> input;
  for (SeqNo s = 1; s <= 3; ++s)
    for (VarId v : {kX, kY, kZ})
      input.push_back({v, s, rng.uniform(0.0, 100.0)});
  const auto alerts = evaluate_trace(cond, input);
  check::SystemRun run;
  run.condition = cond;
  run.ce_inputs = {input};
  run.displayed = alerts;
  EXPECT_EQ(check::check_complete(run), check::Verdict::kHolds);
  // Removing one displayed alert (if any) must break completeness.
  if (!run.displayed.empty()) {
    run.displayed.pop_back();
    EXPECT_EQ(check::check_complete(run), check::Verdict::kViolated);
  }
}

}  // namespace
}  // namespace rcm
