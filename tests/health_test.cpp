// Cluster-wide health: the versioned InstanceHealth wire codec, the
// time-series sampler's windowed rates, the stall watchdog's dogfooded
// alert channel, shard-document aggregation (including unreachable
// peers), Prometheus text exposition, and the live admin kHealth /
// kMetricsProm path against a real AlertService.
#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <filesystem>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "net/deployment.hpp"
#include "net/socket.hpp"
#include "obs/metrics.hpp"
#include "obs/timeseries.hpp"
#include "service/admin.hpp"
#include "service/alert_service.hpp"
#include "service/health.hpp"
#include "swarm/spec.hpp"
#include "wire/codec.hpp"
#include "wire/frame.hpp"
#include "wire/health.hpp"

namespace rcm {
namespace {

using namespace std::chrono_literals;

wire::InstanceHealth sample_doc() {
  wire::InstanceHealth h;
  h.role = wire::InstanceRole::kShard;
  h.shard_id = 3;
  h.epoch = 9;
  h.healthy = false;
  h.uptime_ns = 123456789;
  h.sessions = 2;
  h.max_session_lag = 17;
  h.alert_queue_depth = 4;
  h.replicas.push_back(wire::ReplicaHealth{0, true, 1, 1500000, 40, 41});
  h.replicas.push_back(wire::ReplicaHealth{1, false, 3, 0, 12, 13});
  h.rates.push_back(
      wire::RateSample{"service.ingest.datagrams", 120.5, 60.25, 12.0});
  h.degradations.push_back(wire::Degradation{
      wire::DegradationKind::kReplicaDown, "replica 1 down", 1});
  h.degradations.push_back(wire::Degradation{
      wire::DegradationKind::kWalFlushSlow, "p99 over budget", 310000});
  return h;
}

// ---- wire codec ---------------------------------------------------------

TEST(HealthWireTest, RoundTripFullDocument) {
  const wire::InstanceHealth h = sample_doc();
  const auto bytes = wire::encode_instance_health(h);
  const wire::InstanceHealth back = wire::decode_instance_health(bytes);
  EXPECT_EQ(back, h);
}

TEST(HealthWireTest, RoundTripDefaultDocument) {
  const wire::InstanceHealth h;
  const wire::InstanceHealth back =
      wire::decode_instance_health(wire::encode_instance_health(h));
  EXPECT_EQ(back, h);
  EXPECT_EQ(back.role, wire::InstanceRole::kStandalone);
  EXPECT_TRUE(back.replicas.empty());
}

TEST(HealthWireTest, EveryTruncationThrowsCleanly) {
  const auto bytes = wire::encode_instance_health(sample_doc());
  for (std::size_t len = 0; len < bytes.size(); ++len) {
    EXPECT_THROW(
        wire::decode_instance_health(std::span{bytes.data(), len}),
        wire::DecodeError)
        << "prefix of length " << len << " must not decode";
  }
}

TEST(HealthWireTest, RejectsUnknownRoleAndKind) {
  auto bytes = wire::encode_instance_health(sample_doc());
  // Layout: tag, version major, version minor, role.
  auto bad_role = bytes;
  bad_role[3] = 0x7f;
  EXPECT_THROW(wire::decode_instance_health(bad_role), wire::DecodeError);
}

TEST(HealthWireTest, RejectsFutureMajor) {
  auto bytes = wire::encode_instance_health(sample_doc());
  bytes[1] = static_cast<std::uint8_t>(wire::kHealthMaxMajor + 1);
  EXPECT_THROW(wire::decode_instance_health(bytes),
               wire::UnsupportedVersion);
}

TEST(HealthWireTest, DegradationKindNamesAreStable) {
  // These strings are part of the JSON schema operators scrape; renames
  // are format breaks.
  EXPECT_STREQ(
      wire::degradation_kind_name(wire::DegradationKind::kReplicaDown),
      "replica_down");
  EXPECT_STREQ(
      wire::degradation_kind_name(wire::DegradationKind::kUnreachable),
      "unreachable");
}

// ---- time-series sampler ------------------------------------------------

#if RCM_METRICS_ENABLED
TEST(TimeSeriesSamplerTest, WindowedRateFromManualSamples) {
  obs::TimeSeriesSampler sampler;
  obs::Counter& c = obs::registry().counter("health_test.rate_counter");
  sampler.sample_now();
  std::this_thread::sleep_for(30ms);
  c.inc(300);
  sampler.sample_now();

  const double r = sampler.rate("health_test.rate_counter", 10s);
  // 300 events over ~30ms: anywhere in (300/10s, 300/1ms) is sane; the
  // point is that it is the *windowed* rate, not zero and not the total.
  EXPECT_GT(r, 30.0);
  EXPECT_LT(r, 300000.0);
  EXPECT_GE(sampler.latest("health_test.rate_counter"), 300u);
  EXPECT_EQ(sampler.samples_taken(), 2u);
}

TEST(TimeSeriesSamplerTest, UnknownAndSingleSampleNamesReportZero) {
  obs::TimeSeriesSampler sampler;
  EXPECT_EQ(sampler.rate("health_test.never_registered", 10s), 0.0);
  obs::registry().counter("health_test.single_sample").inc(5);
  sampler.sample_now();
  EXPECT_EQ(sampler.rate("health_test.single_sample", 10s), 0.0);
}

TEST(TimeSeriesSamplerTest, BackgroundThreadSamplesAndStopsIdempotently) {
  obs::TimeSeriesSampler::Options opts;
  opts.interval = 5ms;
  obs::TimeSeriesSampler sampler{opts};
  sampler.start();
  sampler.start();  // idempotent
  std::this_thread::sleep_for(40ms);
  sampler.stop();
  sampler.stop();  // idempotent
  EXPECT_GE(sampler.samples_taken(), 2u);
  const std::uint64_t frozen = sampler.samples_taken();
  std::this_thread::sleep_for(20ms);
  EXPECT_EQ(sampler.samples_taken(), frozen) << "stop() must stop sampling";
}

TEST(TimeSeriesSamplerTest, SnapshotJsonIsWellFormed) {
  obs::TimeSeriesSampler sampler;
  obs::registry().counter("health_test.snapshot_counter").inc(1);
  sampler.sample_now();
  const std::string json = sampler.snapshot_json();
  EXPECT_NE(json.find("\"interval_ms\""), std::string::npos);
  EXPECT_NE(json.find("\"health_test.snapshot_counter\""),
            std::string::npos);
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
}

// ---- snapshot_json escaping (regression) --------------------------------

TEST(MetricsEscapeTest, SnapshotJsonEscapesHostileNames) {
  // Metric names are free-form strings; a quote or backslash in one must
  // not corrupt the JSON document.
  obs::registry().counter("health_test.\"quoted\\name\nx").inc();
  const std::string json = obs::registry().snapshot_json();
  EXPECT_NE(json.find("health_test.\\\"quoted\\\\name\\nx"),
            std::string::npos)
      << "hostile name must appear escaped, got: " << json;
}
#endif  // RCM_METRICS_ENABLED

// ---- watchdog alert channel ---------------------------------------------

TEST(WatchdogAlertsTest, EdgeTriggeredOnDegradationCountChanges) {
  service::WatchdogAlerts wd;
  EXPECT_FALSE(wd.on_check(0).has_value());
  const auto first = wd.on_check(2);
  ASSERT_TRUE(first.has_value());
  EXPECT_EQ(first->cond, "service.watchdog.degraded");
  EXPECT_FALSE(wd.on_check(2).has_value()) << "same count: edge-triggered";
  EXPECT_FALSE(wd.on_check(0).has_value()) << "recovery raises nothing";
  EXPECT_TRUE(wd.on_check(1).has_value()) << "a fresh stall re-raises";
  EXPECT_EQ(wd.emitted().size(), 2u);
}

// ---- aggregation ---------------------------------------------------------

TEST(HealthAggregateTest, AllHealthyInstancesMakeAHealthyCluster) {
  wire::InstanceHealth a;
  a.healthy = true;
  wire::InstanceHealth b = a;
  b.role = wire::InstanceRole::kMerge;
  const std::vector<service::ScrapedInstance> scraped = {{7001, a},
                                                         {7002, b}};
  const std::string json = service::aggregate_health_json(scraped);
  EXPECT_NE(json.find("\"healthy\": true"), std::string::npos) << json;
  EXPECT_NE(json.find("\"unreachable\": 0"), std::string::npos) << json;
  EXPECT_NE(json.find("\"degradations\": 0"), std::string::npos) << json;
  EXPECT_NE(json.find("\"admin_port\": 7001"), std::string::npos) << json;
  EXPECT_NE(json.find("\"role\": \"merge\""), std::string::npos) << json;
}

TEST(HealthAggregateTest, UnreachablePeerDegradesTheCluster) {
  wire::InstanceHealth a;
  a.healthy = true;
  const std::vector<service::ScrapedInstance> scraped = {
      {7001, a}, {7002, std::nullopt}};
  const std::string json = service::aggregate_health_json(scraped);
  EXPECT_NE(json.find("\"healthy\": false"), std::string::npos) << json;
  EXPECT_NE(json.find("\"unreachable\": 1"), std::string::npos) << json;
  EXPECT_NE(json.find("\"health\": null"), std::string::npos) << json;
}

TEST(HealthAggregateTest, InstanceDegradationsCountTowardTheVerdict) {
  const std::vector<service::ScrapedInstance> scraped = {
      {7001, sample_doc()}};
  const std::string json = service::aggregate_health_json(scraped);
  EXPECT_NE(json.find("\"healthy\": false"), std::string::npos) << json;
  EXPECT_NE(json.find("\"degradations\": 2"), std::string::npos) << json;
  EXPECT_NE(json.find("replica_down"), std::string::npos) << json;
}

// ---- Prometheus exposition ----------------------------------------------

// One line of exposition: `# TYPE name kind`, or `name value`, or
// `name{label="v"} value`. Metric-name characters are [a-zA-Z0-9_:].
void expect_prom_line_sane(const std::string& line) {
  if (line.empty()) return;
  if (line.rfind("# TYPE ", 0) == 0) return;
  const std::size_t space = line.rfind(' ');
  ASSERT_NE(space, std::string::npos) << "no value separator: " << line;
  std::string series = line.substr(0, space);
  const std::size_t brace = series.find('{');
  if (brace != std::string::npos) {
    ASSERT_EQ(series.back(), '}') << line;
    series = series.substr(0, brace);
  }
  ASSERT_FALSE(series.empty()) << line;
  for (const char c : series) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == ':';
    ASSERT_TRUE(ok) << "bad metric-name char '" << c << "' in: " << line;
  }
  const std::string value = line.substr(space + 1);
  ASSERT_FALSE(value.empty()) << line;
}

TEST(PrometheusTest, SnapshotPassesPerLineFormatSanity) {
#if RCM_METRICS_ENABLED
  obs::registry().counter("health_test.prom ok\"name").inc();
  obs::registry()
      .histogram("health_test.prom_hist", {0.1, 1.0})
      .record(0.5);
#endif
  const std::string text = obs::registry().snapshot_prometheus();
  std::istringstream lines{text};
  std::string line;
  std::size_t checked = 0;
  while (std::getline(lines, line)) {
    expect_prom_line_sane(line);
    ++checked;
  }
#if RCM_METRICS_ENABLED
  EXPECT_GT(checked, 0u);
  EXPECT_NE(text.find("health_test.prom") == std::string::npos
                ? text.find("health_test_prom")
                : 0,
            std::string::npos)
      << "hostile name must be sanitized into the exposition";
  EXPECT_NE(text.find("health_test_prom_hist_bucket"), std::string::npos);
  EXPECT_NE(text.find("le=\"+Inf\""), std::string::npos);
#else
  EXPECT_TRUE(text.empty()) << "no-metrics build exposes nothing";
#endif
}

TEST(PrometheusTest, ExporterServesGetMetrics) {
  // ctest runs each test in a fresh process; make sure the registry has
  // at least one series so the body carries a # TYPE line to find.
  RCM_COUNT("health_test.exporter_probe");
  service::PromExporter exporter{0};
  exporter.start();
  ASSERT_NE(exporter.port(), 0);

  net::TcpStream conn = net::TcpStream::connect(exporter.port());
  const std::string get = "GET /metrics HTTP/1.0\r\n\r\n";
  conn.write_all(std::span{
      reinterpret_cast<const std::uint8_t*>(get.data()), get.size()});
  std::string resp;
  const auto deadline = std::chrono::steady_clock::now() + 5s;
  while (std::chrono::steady_clock::now() < deadline) {
    auto bytes = conn.read_some(100ms);
    if (!bytes) continue;
    if (bytes->empty()) break;  // server closed: full response received
    resp.append(reinterpret_cast<const char*>(bytes->data()),
                bytes->size());
  }
  exporter.stop();
  EXPECT_NE(resp.find("HTTP/1.0 200 OK"), std::string::npos);
  EXPECT_NE(resp.find("text/plain; version=0.0.4"), std::string::npos);
#if RCM_METRICS_ENABLED
  EXPECT_NE(resp.find("# TYPE"), std::string::npos);
#endif
}

// ---- live admin path ----------------------------------------------------

std::filesystem::path fresh_dir(const std::string& name) {
  const std::filesystem::path dir =
      std::filesystem::temp_directory_path() / ("rcm_health_" + name);
  std::filesystem::remove_all(dir);
  return dir;  // the service creates it
}

service::AdminResponse admin_exchange(std::uint16_t port,
                                      const service::AdminRequest& req) {
  net::TcpStream conn = net::TcpStream::connect(port);
  conn.write_all(wire::frame(service::encode_admin_request(req)));
  wire::FrameCursor cursor;
  const auto deadline = std::chrono::steady_clock::now() + 5s;
  while (std::chrono::steady_clock::now() < deadline) {
    auto bytes = conn.read_some(50ms);
    if (!bytes) continue;
    if (bytes->empty()) break;
    cursor.feed(*bytes);
    if (auto payload = cursor.next())
      return service::decode_admin_response(*payload);
  }
  throw std::runtime_error("admin response timed out");
}

TEST(AdminHealthTest, InstanceScopeReportsKillAndRecovery) {
  service::ServiceConfig cfg;
  cfg.condition = swarm::build_condition(swarm::ConditionKind::kThreshold,
                                         50.0);
  cfg.num_replicas = 2;
  cfg.data_dir = fresh_dir("admin_instance");
  cfg.auto_restart = false;
  cfg.poll_interval = 5ms;
  service::AlertService svc{cfg};

  auto doc = service::scrape_instance_health(svc.admin_port(), 2000ms);
  ASSERT_TRUE(doc.has_value());
  EXPECT_EQ(doc->role, wire::InstanceRole::kStandalone);
  EXPECT_EQ(doc->replicas.size(), 2u);
  EXPECT_TRUE(doc->healthy);
  EXPECT_TRUE(doc->degradations.empty());
  EXPECT_FALSE(doc->rates.empty()) << "rate names ride even when zero";

  svc.kill_replica(1);
  doc = service::scrape_instance_health(svc.admin_port(), 2000ms);
  ASSERT_TRUE(doc.has_value());
  EXPECT_FALSE(doc->healthy);
  ASSERT_EQ(doc->degradations.size(), 1u);
  EXPECT_EQ(doc->degradations[0].kind,
            wire::DegradationKind::kReplicaDown);
  EXPECT_FALSE(doc->replicas[1].up);

  svc.restart_replica(1);
  doc = service::scrape_instance_health(svc.admin_port(), 2000ms);
  ASSERT_TRUE(doc.has_value());
  EXPECT_TRUE(doc->healthy) << "restart must clear the degradation";
  svc.drain();
}

TEST(AdminHealthTest, ClusterScopeReturnsAggregatedJson) {
  service::ServiceConfig cfg;
  cfg.condition = swarm::build_condition(swarm::ConditionKind::kThreshold,
                                         50.0);
  cfg.num_replicas = 1;
  cfg.data_dir = fresh_dir("admin_cluster");
  cfg.poll_interval = 5ms;
  service::AlertService svc{cfg};

  service::AdminRequest req;
  req.command = service::AdminCommand::kHealth;  // default: cluster scope
  const service::AdminResponse resp = admin_exchange(svc.admin_port(), req);
  ASSERT_TRUE(resp.ok) << resp.error;
  ASSERT_TRUE(resp.body.has_value());
  EXPECT_NE(resp.body->find("\"healthy\": true"), std::string::npos)
      << *resp.body;
  EXPECT_NE(resp.body->find("\"instances\": ["), std::string::npos);
  EXPECT_NE(resp.body->find("\"verdict_rule\""), std::string::npos);
  EXPECT_NE(resp.body->find(
                "\"admin_port\": " + std::to_string(svc.admin_port())),
            std::string::npos)
      << "an unsharded instance aggregates itself";
  svc.drain();
}

TEST(AdminHealthTest, MetricsPromAndEmptyDocsAreWellFormed) {
  service::ServiceConfig cfg;
  cfg.condition = swarm::build_condition(swarm::ConditionKind::kThreshold,
                                         50.0);
  cfg.num_replicas = 1;
  cfg.data_dir = fresh_dir("admin_prom");
  cfg.poll_interval = 5ms;
  service::AlertService svc{cfg};

  service::AdminRequest prom;
  prom.command = service::AdminCommand::kMetricsProm;
  const service::AdminResponse presp = admin_exchange(svc.admin_port(), prom);
  ASSERT_TRUE(presp.ok) << presp.error;
  ASSERT_TRUE(presp.body.has_value());
  {
    std::istringstream lines{*presp.body};
    std::string line;
    while (std::getline(lines, line)) expect_prom_line_sane(line);
  }
#if RCM_METRICS_ENABLED
  EXPECT_NE(presp.body->find("# TYPE"), std::string::npos);
#endif

  // `metrics` (JSON) must be a well-formed document in every build —
  // under -DRCM_NO_METRICS it is simply empty of series.
  service::AdminRequest met;
  met.command = service::AdminCommand::kMetrics;
  const service::AdminResponse mresp = admin_exchange(svc.admin_port(), met);
  ASSERT_TRUE(mresp.ok);
  ASSERT_TRUE(mresp.body.has_value());
  EXPECT_EQ(mresp.body->front(), '{');

  // Same contract for `trace-dump`: a well-formed (possibly span-free)
  // Chrome trace document in every build, never an error.
  service::AdminRequest dump;
  dump.command = service::AdminCommand::kTraceDump;
  const service::AdminResponse dresp = admin_exchange(svc.admin_port(), dump);
  ASSERT_TRUE(dresp.ok) << dresp.error;
  ASSERT_TRUE(dresp.body.has_value());
  EXPECT_EQ(dresp.body->front(), '{');
  EXPECT_NE(dresp.body->find("\"traceEvents\""), std::string::npos);
  svc.drain();
}

TEST(AdminHealthTest, ConcurrentAdminConnectionsAreServed) {
  // The aggregation path depends on the admin loop serving connections
  // concurrently (a cluster-scoped request scrapes peers while its own
  // connection is held open). Pin the thread-per-connection behavior: a
  // stalled half-open connection must not block a second client.
  service::ServiceConfig cfg;
  cfg.condition = swarm::build_condition(swarm::ConditionKind::kThreshold,
                                         50.0);
  cfg.num_replicas = 1;
  cfg.data_dir = fresh_dir("admin_concurrent");
  cfg.poll_interval = 5ms;
  service::AlertService svc{cfg};

  // Idle connection that never sends a request.
  net::TcpStream idle = net::TcpStream::connect(svc.admin_port());
  const auto doc = service::scrape_instance_health(svc.admin_port(), 2000ms);
  EXPECT_TRUE(doc.has_value())
      << "second admin connection must be served while the first idles";
  svc.drain();
}

}  // namespace
}  // namespace rcm
