// Tests for the CE anti-entropy extension: repair mechanics, the
// stale-discard race, and its effect on the paper's properties
// (gossip shrinks the anomaly source; it cannot create new anomalies).
#include <gtest/gtest.h>

#include <memory>
#include <set>

#include "check/completeness.hpp"
#include "check/properties.hpp"
#include "core/builtin_conditions.hpp"
#include "core/sequence.hpp"
#include "exp/scenarios.hpp"
#include "sim/gossip_run.hpp"
#include "trace/generators.hpp"

namespace rcm {
namespace {

constexpr VarId kX = 0;

sim::SystemConfig lossy_config(std::uint64_t seed, std::size_t updates = 50,
                               double loss = 0.3) {
  sim::SystemConfig config;
  config.condition =
      std::make_shared<const ThresholdCondition>("hot", kX, 55.0);
  util::Rng rng{seed};
  trace::UniformParams p;
  p.base.var = kX;
  p.base.count = updates;
  p.lo = 0.0;
  p.hi = 100.0;
  config.dm_traces = {trace::uniform_trace(p, rng)};
  config.num_ces = 2;
  config.front.loss = loss;
  config.filter = FilterKind::kAd1;
  config.seed = seed;
  return config;
}

TEST(Gossip, ValidatesConfig) {
  sim::GossipParams g;
  g.interval = 0.0;
  EXPECT_THROW((void)sim::run_gossip_system(lossy_config(1), g),
               std::invalid_argument);
}

TEST(Gossip, DisabledMatchesPlainRun) {
  const auto config = lossy_config(2);
  sim::GossipParams off;
  off.enabled = false;
  const auto with_gossip_off = sim::run_gossip_system(config, off);
  const auto plain = sim::run_system(config);
  EXPECT_EQ(with_gossip_off.run.ce_inputs, plain.ce_inputs);
  EXPECT_EQ(with_gossip_off.announcements, 0u);
  EXPECT_EQ(with_gossip_off.repairs_sent, 0u);
}

TEST(Gossip, FastGossipRepairsLosses) {
  const auto config = lossy_config(3, 80);
  sim::GossipParams fast;
  fast.interval = 0.2;  // well below the 1s update period
  const auto repaired = sim::run_gossip_system(config, fast);
  const auto plain = sim::run_system(config);

  EXPECT_GT(repaired.repairs_accepted, 0u);
  // Each CE ends up with (weakly) more updates than without gossip.
  std::size_t plain_total = 0, repaired_total = 0;
  for (const auto& in : plain.ce_inputs) plain_total += in.size();
  for (const auto& in : repaired.run.ce_inputs) repaired_total += in.size();
  EXPECT_GT(repaired_total, plain_total);
}

TEST(Gossip, RepairedInputsRemainValidStreams) {
  // Repair must never corrupt the model invariants: each U_i stays
  // ordered and a subsequence of the DM's emission.
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    const auto config = lossy_config(seed, 40);
    sim::GossipParams fast;
    fast.interval = 0.2;
    const auto r = sim::run_gossip_system(config, fast);
    const auto emitted =
        project(std::span<const Update>{r.run.dm_emitted[0]}, kX);
    for (const auto& input : r.run.ce_inputs) {
      const auto seqs = project(std::span<const Update>{input}, kX);
      EXPECT_TRUE(is_ordered(std::span<const SeqNo>{seqs})) << seed;
      EXPECT_TRUE(is_subsequence(seqs, emitted)) << seed;
    }
  }
}

TEST(Gossip, SlowGossipLosesTheRace) {
  // With announcements far slower than the update period, nearly every
  // repair arrives stale (the next direct update already advanced the
  // watermark) and is discarded.
  const auto config = lossy_config(5, 60);
  sim::GossipParams slow;
  slow.interval = 20.0;
  const auto r = sim::run_gossip_system(config, slow);
  sim::GossipParams fast;
  fast.interval = 0.2;
  const auto f = sim::run_gossip_system(config, fast);
  EXPECT_LT(r.repairs_accepted, f.repairs_accepted / 2 + 1);
}

TEST(Gossip, RestoresCompletenessForHistoricalConditions) {
  // The headline effect. For non-historical conditions gossip cannot
  // change the displayed key set at all: any replica that holds the
  // update already alerts on it. The anomaly gossip actually attacks is
  // *split knowledge* under historical conditions (Theorem 3's root
  // cause: CE1 has update i, CE2 has i+1, neither has the pair). With
  // repair faster than the update period, each replica's input
  // converges to the combined knowledge and AD-1's completeness
  // violations largely disappear.
  const auto spec =
      exp::single_var_scenario(exp::Scenario::kLossyConservative, 0.3);
  std::size_t violations_plain = 0, violations_gossip = 0;
  for (std::uint64_t seed = 1; seed <= 25; ++seed) {
    util::Rng trial{seed * 11};
    sim::SystemConfig config;
    config.condition = spec.condition;
    config.dm_traces = spec.make_traces(40, trial);
    config.num_ces = 2;
    config.front.loss = spec.front_loss;
    config.filter = FilterKind::kAd1;
    config.seed = seed * 13;

    const auto plain = sim::run_system(config);
    if (check::check_complete(plain.as_system_run(spec.condition)) ==
        check::Verdict::kViolated)
      ++violations_plain;

    sim::GossipParams fast;
    fast.interval = 0.15;
    const auto gossiped = sim::run_gossip_system(config, fast);
    if (check::check_complete(
            gossiped.run.as_system_run(spec.condition)) ==
        check::Verdict::kViolated)
      ++violations_gossip;
  }
  EXPECT_GT(violations_plain, 5u);  // Theorem 3 bites without repair
  EXPECT_LT(violations_gossip * 2, violations_plain);
}

TEST(Gossip, CrashedCesDoNotGossip) {
  auto config = lossy_config(9, 40);
  config.ce_crashes = {{sim::CrashWindow{0.0, 1e6, true}}};  // CE1 dead
  sim::GossipParams fast;
  fast.interval = 0.2;
  const auto r = sim::run_gossip_system(config, fast);
  // CE1 received nothing and repaired nothing into itself.
  EXPECT_TRUE(r.run.ce_inputs[0].empty());
  // CE2 still ran normally.
  EXPECT_FALSE(r.run.ce_inputs[1].empty());
}

}  // namespace
}  // namespace rcm
