// Tests for the durable alert log, the store-and-forward outbox and the
// disconnectable-displayer simulation: end-to-end losslessness of the
// back-link path across AD outages, crash-durability of the log, and
// retransmission/deduplication accounting.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <set>

#include "core/builtin_conditions.hpp"
#include "sim/disconnect.hpp"
#include "store/alert_log.hpp"
#include "store/outbox.hpp"
#include "trace/generators.hpp"
#include "trace/scripted.hpp"
#include "wire/buffer.hpp"

namespace rcm::store {
namespace {

Alert make_alert(SeqNo s) {
  Alert a;
  a.cond = "c";
  a.histories.emplace(0, std::vector<Update>{{0, s, static_cast<double>(s)}});
  return a;
}

// ----------------------------------------------------------- AlertLog ----

TEST(AlertLog, AppendAssignsSequentialIndices) {
  AlertLog log;
  EXPECT_EQ(log.append(make_alert(1)), 0u);
  EXPECT_EQ(log.append(make_alert(2)), 1u);
  EXPECT_EQ(log.size(), 2u);
  EXPECT_EQ(log.next_index(), 2u);
}

TEST(AlertLog, PendingShrinksWithAcks) {
  AlertLog log;
  for (SeqNo s = 1; s <= 5; ++s) (void)log.append(make_alert(s));
  EXPECT_EQ(log.pending().size(), 5u);
  log.ack(1);
  const auto pending = log.pending();
  ASSERT_EQ(pending.size(), 3u);
  EXPECT_EQ(pending.front().first, 2u);
  log.ack(4);
  EXPECT_TRUE(log.pending().empty());
}

TEST(AlertLog, AckIsIdempotentAndMonotone) {
  AlertLog log;
  (void)log.append(make_alert(1));
  (void)log.append(make_alert(2));
  log.ack(1);
  log.ack(0);  // lower ack must not regress
  EXPECT_TRUE(log.pending().empty());
  log.ack(99);  // beyond the log: harmless
  EXPECT_EQ(log.ack_level(), 2u);
}

TEST(AlertLog, AtBoundsChecked) {
  AlertLog log;
  (void)log.append(make_alert(7));
  EXPECT_EQ(log.at(0).seqno(0), 7);
  EXPECT_THROW((void)log.at(1), std::out_of_range);
}

TEST(AlertLog, SerializeRestoreRoundTrip) {
  AlertLog log;
  for (SeqNo s = 1; s <= 4; ++s) (void)log.append(make_alert(s));
  log.ack(1);
  const AlertLog restored = AlertLog::deserialize(log.serialize());
  EXPECT_EQ(restored.size(), 4u);
  EXPECT_EQ(restored.ack_level(), 2u);
  EXPECT_EQ(restored.pending().size(), 2u);
  EXPECT_EQ(restored.at(3).key(), make_alert(4).key());
}

TEST(AlertLog, DeserializeRejectsGarbage) {
  const std::vector<std::uint8_t> garbage{0xff, 0xff, 0xff, 0x01};
  EXPECT_THROW((void)AlertLog::deserialize(garbage), wire::DecodeError);
}

// --------------------------------------------------------- AlertOutbox ----

struct SendRecorder {
  std::vector<std::pair<AlertLog::Index, SeqNo>> sent;
  AlertOutbox::SendFn fn() {
    return [this](AlertLog::Index i, const Alert& a) {
      sent.emplace_back(i, a.seqno(0));
    };
  }
};

TEST(AlertOutbox, NullSendThrows) {
  EXPECT_THROW(AlertOutbox{nullptr}, std::invalid_argument);
}

TEST(AlertOutbox, SendsImmediatelyWhileConnected) {
  SendRecorder rec;
  AlertOutbox outbox{rec.fn()};
  outbox.set_connected(true);
  (void)outbox.submit(make_alert(1));
  (void)outbox.submit(make_alert(2));
  ASSERT_EQ(rec.sent.size(), 2u);
  EXPECT_EQ(rec.sent[0], (std::pair<AlertLog::Index, SeqNo>{0, 1}));
  EXPECT_EQ(outbox.retransmissions(), 0u);
}

TEST(AlertOutbox, BuffersWhileDisconnectedAndFlushesInOrder) {
  SendRecorder rec;
  AlertOutbox outbox{rec.fn()};
  (void)outbox.submit(make_alert(1));
  (void)outbox.submit(make_alert(2));
  EXPECT_TRUE(rec.sent.empty());  // paper: CE logs, sends later
  outbox.set_connected(true);
  ASSERT_EQ(rec.sent.size(), 2u);
  EXPECT_EQ(rec.sent[0].second, 1);
  EXPECT_EQ(rec.sent[1].second, 2);
  EXPECT_EQ(outbox.retransmissions(), 0u);  // first transmission, not re-
}

TEST(AlertOutbox, ReconnectRetransmitsUnackedOnly) {
  SendRecorder rec;
  AlertOutbox outbox{rec.fn()};
  outbox.set_connected(true);
  (void)outbox.submit(make_alert(1));
  (void)outbox.submit(make_alert(2));
  outbox.on_ack(0);  // alert 1 acknowledged
  outbox.set_connected(false);
  (void)outbox.submit(make_alert(3));  // buffered
  rec.sent.clear();
  outbox.set_connected(true);
  ASSERT_EQ(rec.sent.size(), 2u);  // index 1 (retransmit) + index 2 (new)
  EXPECT_EQ(rec.sent[0].first, 1u);
  EXPECT_EQ(rec.sent[1].first, 2u);
  EXPECT_EQ(outbox.retransmissions(), 1u);
}

TEST(AlertOutbox, RepeatedConnectWithoutNewsIsQuiet) {
  SendRecorder rec;
  AlertOutbox outbox{rec.fn()};
  outbox.set_connected(true);
  (void)outbox.submit(make_alert(1));
  outbox.on_ack(0);
  rec.sent.clear();
  outbox.set_connected(true);  // already connected: no-op
  outbox.set_connected(false);
  outbox.set_connected(true);  // nothing pending: nothing sent
  EXPECT_TRUE(rec.sent.empty());
}

TEST(AlertOutbox, RestoreAfterCrashKeepsDurableState) {
  SendRecorder rec;
  AlertOutbox outbox{rec.fn()};
  outbox.set_connected(true);
  (void)outbox.submit(make_alert(1));
  (void)outbox.submit(make_alert(2));
  outbox.on_ack(0);
  const auto snapshot = outbox.log().serialize();

  // Crash: a new outbox restored from the durable snapshot.
  SendRecorder rec2;
  AlertOutbox revived{rec2.fn()};
  revived.restore(AlertLog::deserialize(snapshot));
  EXPECT_FALSE(revived.connected());
  revived.set_connected(true);
  ASSERT_EQ(rec2.sent.size(), 1u);  // only the unacked entry resends
  EXPECT_EQ(rec2.sent[0].first, 1u);
}

// ---------------------------------------------- disconnectable system ----

sim::DisconnectConfig base_disconnect_config(std::uint64_t seed = 3) {
  auto cond = std::make_shared<const ThresholdCondition>("hot", 0, 60.0);
  sim::DisconnectConfig config;
  config.base.condition = cond;
  util::Rng rng{seed};
  trace::UniformParams p;
  p.base.var = 0;
  p.base.count = 60;
  p.lo = 0.0;
  p.hi = 100.0;
  config.base.dm_traces = {trace::uniform_trace(p, rng)};
  config.base.num_ces = 2;
  config.base.filter = FilterKind::kAd1;
  config.base.seed = seed;
  return config;
}

TEST(DisconnectableSystem, ValidatesWindows) {
  auto config = base_disconnect_config();
  config.ad_offline = {{10.0, 5.0}};
  EXPECT_THROW((void)run_disconnectable_system(config),
               std::invalid_argument);
  config.ad_offline = {{5.0, 10.0}, {8.0, 12.0}};  // overlap
  EXPECT_THROW((void)run_disconnectable_system(config),
               std::invalid_argument);
}

TEST(DisconnectableSystem, NoOutageMatchesPlainRun) {
  auto config = base_disconnect_config();
  const auto result = sim::run_disconnectable_system(config);
  EXPECT_EQ(result.retransmissions, 0u);
  EXPECT_EQ(result.offline_drops, 0u);
  EXPECT_EQ(result.duplicate_deliveries, 0u);
  EXPECT_EQ(result.display_times.size(), result.run.displayed.size());
  EXPECT_FALSE(result.run.displayed.empty());
}

TEST(DisconnectableSystem, AlertsSurviveOutage) {
  // AD offline through the middle of the run; every alert any CE raised
  // must still be displayed eventually (AD-1 dedups identical copies,
  // so compare by key).
  auto config = base_disconnect_config(5);
  config.ad_offline = {{10.0, 40.0}};
  const auto result = sim::run_disconnectable_system(config);

  std::set<AlertKey> raised;
  for (const auto& output : result.run.ce_outputs)
    for (const Alert& a : output) raised.insert(a.key());
  std::set<AlertKey> displayed;
  for (const Alert& a : result.run.displayed) displayed.insert(a.key());
  EXPECT_EQ(displayed, raised);
  // Alerts raised during the outage were buffered and displayed only
  // after reconnection at t = 40.
  const bool some_late = std::any_of(result.display_times.begin(),
                                     result.display_times.end(),
                                     [](double t) { return t >= 40.0; });
  EXPECT_TRUE(some_late);
}

TEST(DisconnectableSystem, OutageCoveringTraceEndStillDrains) {
  auto config = base_disconnect_config(7);
  config.ad_offline = {{30.0, 1e6}};  // offline long past the trace end
  const auto result = sim::run_disconnectable_system(config);
  std::set<AlertKey> raised;
  for (const auto& output : result.run.ce_outputs)
    for (const Alert& a : output) raised.insert(a.key());
  std::set<AlertKey> displayed;
  for (const Alert& a : result.run.displayed) displayed.insert(a.key());
  EXPECT_EQ(displayed, raised);  // the final drain delivers the tail
}

TEST(DisconnectableSystem, DisplayLatencyReflectsOutage) {
  // Alerts raised during the outage display only after reconnection.
  auto config = base_disconnect_config(9);
  config.ad_offline = {{10.0, 45.0}};
  const auto result = sim::run_disconnectable_system(config);
  for (double t : result.display_times) {
    EXPECT_TRUE(t < 10.0 + 1.0 || t >= 45.0)
        << "alert displayed at " << t << ", inside the offline window";
  }
}

TEST(DisconnectableSystem, RepeatedOutagesDeduplicateByIndex) {
  auto config = base_disconnect_config(11);
  config.base.filter = FilterKind::kPassAll;  // count raw deliveries
  config.ad_offline = {{5.0, 12.0}, {20.0, 30.0}, {40.0, 48.0}};
  const auto result = sim::run_disconnectable_system(config);
  // With PassAll, displayed must equal the union of raised entries
  // exactly once per (replica, index): no duplicate displays.
  std::size_t raised_total = 0;
  for (const auto& output : result.run.ce_outputs)
    raised_total += output.size();
  EXPECT_EQ(result.run.displayed.size(), raised_total);
}

TEST(DisconnectableSystem, CrashedCeLosesAlertsButOtherCovers) {
  auto config = base_disconnect_config(13);
  config.base.ce_crashes = {{sim::CrashWindow{15.0, 45.0, true}}};
  config.ad_offline = {{20.0, 35.0}};
  const auto result = sim::run_disconnectable_system(config);
  // CE1 was down 15-45: it received fewer updates than CE2.
  EXPECT_LT(result.run.ce_inputs[0].size(), result.run.ce_inputs[1].size());
  // Everything CE2 raised still displays despite the overlapping outage.
  std::set<AlertKey> displayed;
  for (const Alert& a : result.run.displayed) displayed.insert(a.key());
  for (const Alert& a : result.run.ce_outputs[1])
    EXPECT_TRUE(displayed.count(a.key())) << "lost alert " << a;
}

}  // namespace
}  // namespace rcm::store
