// Unit tests for the built-in conditions (paper §2's c1/c2/c3, Theorem
// 10's cm, Appendix D's disjunction) and the Condition metadata contract
// (variables, degree, triggering, history class).
#include <gtest/gtest.h>

#include "core/builtin_conditions.hpp"

namespace rcm {
namespace {

HistorySet feed(const Condition& c, const std::vector<Update>& updates) {
  HistorySet h = c.make_history_set();
  for (const Update& u : updates) h.push(u);
  return h;
}

TEST(ThresholdCondition, C1FromThePaper) {
  ThresholdCondition c1{"overheat", 0, 3000.0};
  EXPECT_EQ(c1.name(), "overheat");
  EXPECT_EQ(c1.variables(), std::vector<VarId>{0});
  EXPECT_EQ(c1.degree(0), 1);
  EXPECT_EQ(c1.history_class(), HistoryClass::kNonHistorical);

  EXPECT_FALSE(c1.evaluate(feed(c1, {{0, 1, 2900.0}})));
  EXPECT_TRUE(c1.evaluate(feed(c1, {{0, 1, 3100.0}})));
  EXPECT_FALSE(c1.evaluate(feed(c1, {{0, 1, 3000.0}})));  // strict >
}

TEST(ThresholdCondition, BelowVariant) {
  ThresholdCondition c{"low", 0, 10.0, /*above=*/false};
  EXPECT_TRUE(c.evaluate(feed(c, {{0, 1, 5.0}})));
  EXPECT_FALSE(c.evaluate(feed(c, {{0, 1, 15.0}})));
}

TEST(ThresholdCondition, WrongVariableDegreeThrows) {
  ThresholdCondition c{"t", 0, 1.0};
  EXPECT_THROW((void)c.degree(1), std::invalid_argument);
}

TEST(RiseCondition, C2AggressiveTriggersAcrossGap) {
  // c2: "risen more than 200 since last reading *received*".
  RiseCondition c2{"rise", 0, 200.0, Triggering::kAggressive};
  EXPECT_EQ(c2.degree(0), 2);
  EXPECT_EQ(c2.history_class(), HistoryClass::kHistorical);
  // Window {1, 3}: gap, but aggressive still compares values.
  EXPECT_TRUE(c2.evaluate(feed(c2, {{0, 1, 400.0}, {0, 3, 720.0}})));
}

TEST(RiseCondition, C3ConservativeIsFalseAcrossGap) {
  // c3 adds the seqno-consecutive guard.
  RiseCondition c3{"rise", 0, 200.0, Triggering::kConservative};
  EXPECT_FALSE(c3.evaluate(feed(c3, {{0, 1, 400.0}, {0, 3, 720.0}})));
  EXPECT_TRUE(c3.evaluate(feed(c3, {{0, 2, 400.0}, {0, 3, 720.0}})));
}

TEST(RiseCondition, ExactDeltaDoesNotTrigger) {
  RiseCondition c{"rise", 0, 200.0, Triggering::kAggressive};
  EXPECT_FALSE(c.evaluate(feed(c, {{0, 1, 100.0}, {0, 2, 300.0}})));
}

TEST(RelativeDropCondition, SharpDropFromIntro) {
  // ">20% drop between two consecutive quotes": 100 -> 50 triggers.
  RelativeDropCondition drop{"sharp", 0, 0.20};
  EXPECT_TRUE(drop.evaluate(feed(drop, {{0, 1, 100.0}, {0, 2, 50.0}})));
  // 100 -> 85 is a 15% drop: no trigger.
  EXPECT_FALSE(drop.evaluate(feed(drop, {{0, 1, 100.0}, {0, 2, 85.0}})));
  // The CE2 anomaly: 100 -> 52 with quote 2 lost still triggers
  // aggressively — the inconsistency engine of the intro example.
  EXPECT_TRUE(drop.evaluate(feed(drop, {{0, 1, 100.0}, {0, 3, 52.0}})));
}

TEST(RelativeDropCondition, ConservativeVariantChecksSeqnos) {
  RelativeDropCondition drop{"sharp", 0, 0.20, Triggering::kConservative};
  EXPECT_FALSE(drop.evaluate(feed(drop, {{0, 1, 100.0}, {0, 3, 52.0}})));
  EXPECT_TRUE(drop.evaluate(feed(drop, {{0, 2, 100.0}, {0, 3, 52.0}})));
}

TEST(RelativeDropCondition, ZeroBaseNeverTriggers) {
  RelativeDropCondition drop{"sharp", 0, 0.20};
  EXPECT_FALSE(drop.evaluate(feed(drop, {{0, 1, 0.0}, {0, 2, -5.0}})));
}

TEST(AbsDiffCondition, CmFromTheorem10) {
  AbsDiffCondition cm{"diff", 0, 1, 100.0};
  EXPECT_EQ(cm.variables(), (std::vector<VarId>{0, 1}));
  EXPECT_EQ(cm.degree(0), 1);
  EXPECT_EQ(cm.degree(1), 1);
  EXPECT_EQ(cm.history_class(), HistoryClass::kNonHistorical);
  // 1200 vs 1050: |diff| = 150 > 100.
  EXPECT_TRUE(cm.evaluate(feed(cm, {{0, 2, 1200.0}, {1, 1, 1050.0}})));
  // 1000 vs 1050: no.
  EXPECT_FALSE(cm.evaluate(feed(cm, {{0, 1, 1000.0}, {1, 1, 1050.0}})));
}

TEST(AbsDiffCondition, RejectsSameVariableTwice) {
  EXPECT_THROW((AbsDiffCondition{"d", 3, 3, 1.0}), std::invalid_argument);
}

TEST(GreaterThanCondition, ExampleFourSemantics) {
  GreaterThanCondition a{"A", 0, 1};  // x > y
  GreaterThanCondition b{"B", 1, 0};  // y > x
  auto h = [&](double x, double y) {
    HistorySet hs = a.make_history_set();
    hs.push({0, 1, x});
    hs.push({1, 1, y});
    return hs;
  };
  EXPECT_TRUE(a.evaluate(h(2100.0, 2000.0)));
  EXPECT_FALSE(b.evaluate(h(2100.0, 2000.0)));
  EXPECT_FALSE(a.evaluate(h(2000.0, 2000.0)));
}

TEST(PredicateCondition, DeclaredMetadata) {
  PredicateCondition c{
      "custom",
      {{2, 3}, {0, 1}},
      Triggering::kAggressive,
      [](const HistorySet& h) { return h.of(0).at(0).value > 0; }};
  EXPECT_EQ(c.variables(), (std::vector<VarId>{0, 2}));
  EXPECT_EQ(c.degree(0), 1);
  EXPECT_EQ(c.degree(2), 3);
  EXPECT_THROW((void)c.degree(1), std::invalid_argument);
}

TEST(PredicateCondition, ConservativeWrapperShortCircuitsOnGap) {
  bool called = false;
  PredicateCondition c{"g",
                       {{0, 2}},
                       Triggering::kConservative,
                       [&](const HistorySet&) {
                         called = true;
                         return true;
                       }};
  HistorySet h = c.make_history_set();
  h.push({0, 1, 1.0});
  h.push({0, 3, 2.0});  // gap
  EXPECT_FALSE(c.evaluate(h));
  EXPECT_FALSE(called);  // the predicate must not even run
}

TEST(PredicateCondition, RejectsBadConstruction) {
  auto pred = [](const HistorySet&) { return true; };
  EXPECT_THROW(
      (PredicateCondition{"x", {}, Triggering::kAggressive, pred}),
      std::invalid_argument);
  EXPECT_THROW((PredicateCondition{
                   "x", {{0, 0}}, Triggering::kAggressive, pred}),
               std::invalid_argument);
  EXPECT_THROW((PredicateCondition{
                   "x", {{0, 1}, {0, 2}}, Triggering::kAggressive, pred}),
               std::invalid_argument);
}

TEST(DisjunctionCondition, CombinesAppendixDConditions) {
  auto a = std::make_shared<const GreaterThanCondition>("A", 0, 1);
  auto b = std::make_shared<const GreaterThanCondition>("B", 1, 0);
  DisjunctionCondition c{"C", {a, b}};
  EXPECT_EQ(c.variables(), (std::vector<VarId>{0, 1}));
  EXPECT_EQ(c.degree(0), 1);

  HistorySet h = c.make_history_set();
  h.push({0, 1, 2100.0});
  h.push({1, 1, 2000.0});
  EXPECT_TRUE(c.evaluate(h));  // A holds
  h.push({1, 2, 2200.0});
  EXPECT_TRUE(c.evaluate(h));  // B holds
  h.push({0, 2, 2200.0});
  EXPECT_FALSE(c.evaluate(h));  // equal: neither holds
}

TEST(DisjunctionCondition, TriggeringIsWorstOfParts) {
  auto cons = std::make_shared<const RiseCondition>("c", 0, 1.0,
                                                    Triggering::kConservative);
  auto aggr = std::make_shared<const RiseCondition>("a", 0, 1.0,
                                                    Triggering::kAggressive);
  EXPECT_EQ((DisjunctionCondition{"cc", {cons, cons}}).triggering(),
            Triggering::kConservative);
  EXPECT_EQ((DisjunctionCondition{"ca", {cons, aggr}}).triggering(),
            Triggering::kAggressive);
}

TEST(DisjunctionCondition, DegreeIsMaxOfParts) {
  auto deg1 = std::make_shared<const ThresholdCondition>("t", 0, 5.0);
  auto deg2 = std::make_shared<const RiseCondition>("r", 0, 1.0,
                                                    Triggering::kAggressive);
  DisjunctionCondition c{"m", {deg1, deg2}};
  EXPECT_EQ(c.degree(0), 2);
  EXPECT_EQ(c.history_class(), HistoryClass::kHistorical);
}

TEST(DisjunctionCondition, EmptyPartsThrows) {
  EXPECT_THROW((DisjunctionCondition{"e", {}}), std::invalid_argument);
}

TEST(Condition, MakeHistorySetSizesBuffers) {
  RiseCondition c{"r", 7, 1.0, Triggering::kAggressive};
  HistorySet h = c.make_history_set();
  EXPECT_TRUE(h.contains(7));
  EXPECT_EQ(h.of(7).degree(), 2);
}

}  // namespace
}  // namespace rcm
