// Unit tests for rcm::util: RNG determinism and distributions, statistics
// accumulators, table rendering, flag parsing.
#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "util/args.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace rcm::util {
namespace {

TEST(Rng, SameSeedSameStream) {
  Rng a{123}, b{123};
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDifferentStreams) {
  Rng a{1}, b{2};
  int differing = 0;
  for (int i = 0; i < 100; ++i)
    if (a() != b()) ++differing;
  EXPECT_GT(differing, 90);
}

TEST(Rng, SmallConsecutiveSeedsAreWellMixed) {
  // splitmix64 seeding should decorrelate seeds 0,1,2,...
  std::set<std::uint64_t> firsts;
  for (std::uint64_t seed = 0; seed < 100; ++seed) {
    Rng r{seed};
    firsts.insert(r());
  }
  EXPECT_EQ(firsts.size(), 100u);
}

TEST(Rng, ReseedRestartsStream) {
  Rng r{7};
  const auto first = r();
  r.reseed(7);
  EXPECT_EQ(r(), first);
}

TEST(Rng, UniformInUnitInterval) {
  Rng r{42};
  for (int i = 0; i < 10000; ++i) {
    const double u = r.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformRangeRespectsBounds) {
  Rng r{42};
  for (int i = 0; i < 10000; ++i) {
    const double u = r.uniform(-5.0, 3.0);
    EXPECT_GE(u, -5.0);
    EXPECT_LT(u, 3.0);
  }
}

TEST(Rng, UniformMeanIsCentered) {
  Rng r{42};
  Accumulator acc;
  for (int i = 0; i < 100000; ++i) acc.add(r.uniform());
  EXPECT_NEAR(acc.mean(), 0.5, 0.01);
}

TEST(Rng, UniformIntCoversRangeInclusive) {
  Rng r{42};
  std::set<std::int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const auto v = r.uniform_int(3, 7);
    EXPECT_GE(v, 3);
    EXPECT_LE(v, 7);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);
}

TEST(Rng, UniformIntSingleton) {
  Rng r{42};
  for (int i = 0; i < 100; ++i) EXPECT_EQ(r.uniform_int(9, 9), 9);
}

TEST(Rng, BernoulliEdges) {
  Rng r{42};
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(r.bernoulli(0.0));
    EXPECT_TRUE(r.bernoulli(1.0));
  }
}

TEST(Rng, BernoulliRate) {
  Rng r{42};
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i)
    if (r.bernoulli(0.3)) ++hits;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(Rng, NormalMoments) {
  Rng r{42};
  Accumulator acc;
  for (int i = 0; i < 100000; ++i) acc.add(r.normal(10.0, 2.0));
  EXPECT_NEAR(acc.mean(), 10.0, 0.05);
  EXPECT_NEAR(acc.stddev(), 2.0, 0.05);
}

TEST(Rng, ExponentialMean) {
  Rng r{42};
  Accumulator acc;
  for (int i = 0; i < 100000; ++i) acc.add(r.exponential(2.0));
  EXPECT_NEAR(acc.mean(), 0.5, 0.02);
}

TEST(Rng, ForkIsDeterministicPerSalt) {
  Rng a{5}, b{5};
  Rng fa = a.fork(1), fb = b.fork(1);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(fa(), fb());
}

TEST(Rng, ForksWithDifferentSaltsDiffer) {
  Rng a{5};
  Rng f1 = a.fork(1);
  Rng b{5};
  Rng f2 = b.fork(2);
  int differing = 0;
  for (int i = 0; i < 100; ++i)
    if (f1() != f2()) ++differing;
  EXPECT_GT(differing, 90);
}

TEST(Accumulator, EmptyIsZero) {
  Accumulator acc;
  EXPECT_EQ(acc.count(), 0u);
  EXPECT_EQ(acc.mean(), 0.0);
  EXPECT_EQ(acc.variance(), 0.0);
}

TEST(Accumulator, SingleValue) {
  Accumulator acc;
  acc.add(4.0);
  EXPECT_EQ(acc.count(), 1u);
  EXPECT_EQ(acc.mean(), 4.0);
  EXPECT_EQ(acc.variance(), 0.0);
  EXPECT_EQ(acc.min(), 4.0);
  EXPECT_EQ(acc.max(), 4.0);
}

TEST(Accumulator, KnownStatistics) {
  Accumulator acc;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) acc.add(v);
  EXPECT_DOUBLE_EQ(acc.mean(), 5.0);
  EXPECT_NEAR(acc.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_EQ(acc.min(), 2.0);
  EXPECT_EQ(acc.max(), 9.0);
  EXPECT_NEAR(acc.sum(), 40.0, 1e-12);
}

TEST(Ratio, Basics) {
  Ratio r;
  EXPECT_EQ(r.value(), 0.0);
  r.add(true);
  r.add(false);
  r.add(true);
  r.add(true);
  EXPECT_DOUBLE_EQ(r.value(), 0.75);
  EXPECT_EQ(r.hits(), 3u);
  EXPECT_EQ(r.trials(), 4u);
}

TEST(Percentiles, NearestRank) {
  Percentiles p;
  for (int i = 1; i <= 100; ++i) p.add(static_cast<double>(i));
  EXPECT_EQ(p.percentile(0.0), 1.0);
  EXPECT_EQ(p.percentile(1.0), 100.0);
  EXPECT_NEAR(p.percentile(0.5), 50.0, 1.0);
  EXPECT_NEAR(p.percentile(0.9), 90.0, 1.0);
}

// Regression pins for the exact boundary behavior: rank is
// round(q * (n - 1)), so p0/p100 always return the extremes, every q maps
// to an actual sample (never an interpolated value), and out-of-range
// quantiles clamp. Benches compare percentile columns across runs, so
// these must not drift.
TEST(Percentiles, BoundaryBehaviorPins) {
  Percentiles empty;
  EXPECT_EQ(empty.percentile(0.0), 0.0);
  EXPECT_EQ(empty.percentile(0.5), 0.0);
  EXPECT_EQ(empty.percentile(1.0), 0.0);

  Percentiles one;
  one.add(42.0);
  EXPECT_EQ(one.percentile(0.0), 42.0);
  EXPECT_EQ(one.percentile(0.5), 42.0);
  EXPECT_EQ(one.percentile(1.0), 42.0);

  Percentiles p;  // added out of order: percentile() must sort
  p.add(30.0);
  p.add(10.0);
  p.add(40.0);
  p.add(20.0);
  EXPECT_EQ(p.percentile(0.0), 10.0);
  EXPECT_EQ(p.percentile(1.0), 40.0);
  // rank = round(q * 3): q just below 0.5 rounds down to sample index 1,
  // q = 0.5 lands exactly on index 2 (1.5 + 0.5 = 2.0).
  EXPECT_EQ(p.percentile(0.49), 20.0);
  EXPECT_EQ(p.percentile(0.5), 30.0);
  EXPECT_EQ(p.percentile(1.0 / 3.0), 20.0);
  EXPECT_EQ(p.percentile(2.0 / 3.0), 30.0);
  // Out-of-range quantiles clamp to the extremes instead of indexing out
  // of bounds.
  EXPECT_EQ(p.percentile(-1.0), 10.0);
  EXPECT_EQ(p.percentile(2.0), 40.0);

  // Adding after a query re-sorts before the next query.
  p.add(5.0);
  EXPECT_EQ(p.percentile(0.0), 5.0);
  EXPECT_EQ(p.percentile(1.0), 40.0);
}

TEST(Table, RendersAlignedColumns) {
  Table t({"a", "longheader"});
  t.add_row({"xx", "y"});
  const std::string s = t.render();
  EXPECT_NE(s.find("a   longheader"), std::string::npos);
  EXPECT_NE(s.find("xx  y"), std::string::npos);
  EXPECT_NE(s.find("---"), std::string::npos);
}

TEST(Table, PadsShortRows) {
  Table t({"a", "b", "c"});
  t.add_row({"1"});
  EXPECT_NO_THROW(t.render());
  EXPECT_EQ(t.rows(), 1u);
}

TEST(TableFormat, Helpers) {
  EXPECT_EQ(fmt_double(1.23456, 2), "1.23");
  EXPECT_EQ(fmt_percent(0.125, 1), "12.5%");
  EXPECT_EQ(fmt_property(true), "yes");
  EXPECT_EQ(fmt_property(false), "NO");
}

TEST(Args, DefaultsAndOverrides) {
  Args args;
  args.add_flag("runs", "100", "number of runs");
  args.add_flag("loss", "0.2", "loss rate");
  args.add_flag("verbose", "false", "chatty output");
  const char* argv[] = {"prog", "--runs", "500", "--verbose"};
  ASSERT_TRUE(args.parse(4, argv));
  EXPECT_EQ(args.get_int("runs"), 500);
  EXPECT_DOUBLE_EQ(args.get_double("loss"), 0.2);
  EXPECT_TRUE(args.get_bool("verbose"));
}

TEST(Args, EqualsSyntax) {
  Args args;
  args.add_flag("seed", "1", "seed");
  const char* argv[] = {"prog", "--seed=99"};
  ASSERT_TRUE(args.parse(2, argv));
  EXPECT_EQ(args.get_int("seed"), 99);
}

TEST(Args, UnknownFlagIsError) {
  Args args;
  args.add_flag("seed", "1", "seed");
  const char* argv[] = {"prog", "--sed=99"};
  EXPECT_FALSE(args.parse(2, argv));
  EXPECT_NE(args.error().find("unknown flag"), std::string::npos);
}

TEST(Args, HelpRequested) {
  Args args;
  const char* argv[] = {"prog", "--help"};
  ASSERT_TRUE(args.parse(2, argv));
  EXPECT_TRUE(args.help_requested());
  EXPECT_NE(args.usage("prog").find("usage: prog"), std::string::npos);
}

TEST(Args, UnregisteredGetThrows) {
  Args args;
  EXPECT_THROW((void)args.get("nope"), std::invalid_argument);
}

}  // namespace
}  // namespace rcm::util
