// Tests for the wire protocol: buffer primitives, varints, the message
// codec (all three alert encodings), CRC-32 and stream framing with
// corruption recovery — including randomized round-trip sweeps and a
// mutation sweep verifying that no single-byte corruption ever yields a
// successfully-decoded wrong message (the CRC catches it).
#include <gtest/gtest.h>

#include <cmath>

#include "util/rng.hpp"
#include "wire/buffer.hpp"
#include "wire/codec.hpp"
#include "wire/frame.hpp"

namespace rcm::wire {
namespace {

TEST(Buffer, FixedWidthRoundTrip) {
  Writer w;
  w.u8(0xab);
  w.u32(0xdeadbeef);
  w.u64(0x0123456789abcdefULL);
  w.f64(-3.5);
  Reader r{w.bytes()};
  EXPECT_EQ(r.u8(), 0xab);
  EXPECT_EQ(r.u32(), 0xdeadbeefu);
  EXPECT_EQ(r.u64(), 0x0123456789abcdefULL);
  EXPECT_EQ(r.f64(), -3.5);
  EXPECT_TRUE(r.done());
}

TEST(Buffer, VarintBoundaries) {
  for (std::uint64_t v :
       {0ULL, 1ULL, 127ULL, 128ULL, 16383ULL, 16384ULL,
        0xffffffffULL, 0xffffffffffffffffULL}) {
    Writer w;
    w.varint(v);
    Reader r{w.bytes()};
    EXPECT_EQ(r.varint(), v);
    EXPECT_TRUE(r.done());
  }
}

TEST(Buffer, VarintSizes) {
  Writer w;
  w.varint(127);
  EXPECT_EQ(w.size(), 1u);
  Writer w2;
  w2.varint(128);
  EXPECT_EQ(w2.size(), 2u);
}

TEST(Buffer, SignedVarintZigzag) {
  for (std::int64_t v :
       std::initializer_list<std::int64_t>{0, -1, 1, -64, 64, -1000000,
                                           INT64_MAX, INT64_MIN}) {
    Writer w;
    w.svarint(v);
    Reader r{w.bytes()};
    EXPECT_EQ(r.svarint(), v);
  }
  // Small magnitudes use one byte regardless of sign.
  Writer w;
  w.svarint(-5);
  EXPECT_EQ(w.size(), 1u);
}

TEST(Buffer, StringRoundTripAndLimit) {
  Writer w;
  w.string("reactor overheat");
  Reader r{w.bytes()};
  EXPECT_EQ(r.string(), "reactor overheat");
  Writer w2;
  w2.string("toolong");
  Reader r2{w2.bytes()};
  EXPECT_THROW((void)r2.string(3), DecodeError);
}

TEST(Buffer, TruncationThrows) {
  Writer w;
  w.u32(5);
  Reader r{std::span<const std::uint8_t>{w.bytes().data(), 2}};
  EXPECT_THROW((void)r.u32(), DecodeError);
}

TEST(Buffer, MalformedVarintThrows) {
  std::vector<std::uint8_t> bad(11, 0x80);  // continuation forever
  Reader r{bad};
  EXPECT_THROW((void)r.varint(), DecodeError);
}

TEST(Buffer, ExpectDoneCatchesTrailingBytes) {
  Writer w;
  w.u8(1);
  w.u8(2);
  Reader r{w.bytes()};
  (void)r.u8();
  EXPECT_THROW(r.expect_done(), DecodeError);
}

// --------------------------------------------------------------- codec ----

TEST(Codec, UpdateRoundTrip) {
  const Update u{42, 123456789, 2999.75};
  const auto bytes = encode_update(u);
  EXPECT_EQ(decode_update(bytes), u);
}

TEST(Codec, UpdateRejectsAlertBytes) {
  Alert a;
  a.cond = "c";
  a.histories.emplace(0, std::vector<Update>{{0, 1, 1.0}});
  const auto bytes = encode_alert(a, AlertEncoding::kFullHistories);
  EXPECT_THROW((void)decode_update(bytes), DecodeError);
}

TEST(Codec, UpdateTraceExtensionRoundTrips) {
  const Update u{42, 123456789, 2999.75};
  const obs::trace::TraceContext ctx{
      obs::trace::derive_trace_id(42, 123456789), 77};
  const auto bytes = encode_update(u, ctx);

  const UpdateMessage msg = decode_update_message(bytes);
  EXPECT_EQ(msg.update, u);
  EXPECT_EQ(msg.trace, ctx);

  // Old decoders skip the extension and see the same update.
  EXPECT_EQ(decode_update(bytes), u);
}

TEST(Codec, ZeroTraceContextEncodesIdenticallyToLegacy) {
  const Update u{7, 21, 1.5};
  EXPECT_EQ(encode_update(u, obs::trace::TraceContext{}), encode_update(u));
  const UpdateMessage msg = decode_update_message(encode_update(u));
  EXPECT_EQ(msg.update, u);
  EXPECT_EQ(msg.trace, obs::trace::TraceContext{});
}

TEST(Codec, UnknownUpdateExtensionIsSkipped) {
  // A future extension block (tag 0x7a, 3 payload bytes) appended after
  // the trace extension: both decoders ignore it, the trace survives.
  const Update u{3, 9, 0.25};
  const obs::trace::TraceContext ctx{obs::trace::derive_trace_id(3, 9), 0};
  auto bytes = encode_update(u, ctx);
  bytes.push_back(0x7a);
  bytes.push_back(3);
  bytes.insert(bytes.end(), {0xde, 0xad, 0xbf});

  EXPECT_EQ(decode_update(bytes), u);
  const UpdateMessage msg = decode_update_message(bytes);
  EXPECT_EQ(msg.update, u);
  EXPECT_EQ(msg.trace, ctx);
}

TEST(Codec, TruncatedOrOversizedExtensionThrows) {
  const Update u{3, 9, 0.25};
  // Length byte promises more payload than the buffer holds.
  auto truncated = encode_update(u);
  truncated.push_back(0x7a);
  truncated.push_back(5);
  truncated.push_back(0x01);
  EXPECT_THROW((void)decode_update(truncated), DecodeError);
  EXPECT_THROW((void)decode_update_message(truncated), DecodeError);

  // Declared extension length above the per-extension cap.
  auto oversized = encode_update(u);
  oversized.push_back(0x7a);
  {
    Writer w;
    w.varint(1000);
    const auto len = w.take();
    oversized.insert(oversized.end(), len.begin(), len.end());
  }
  oversized.resize(oversized.size() + 1000, 0);
  EXPECT_THROW((void)decode_update(oversized), DecodeError);
}

Alert sample_alert() {
  Alert a;
  a.cond = "rise";
  a.histories.emplace(3, std::vector<Update>{{3, 7, 100.5}, {3, 9, 310.25}});
  a.histories.emplace(5, std::vector<Update>{{5, 2, -4.0}});
  return a;
}

TEST(Codec, AlertFullHistoriesRoundTrip) {
  const Alert a = sample_alert();
  const auto decoded = decode_alert(encode_alert(a, AlertEncoding::kFullHistories));
  EXPECT_EQ(decoded.encoding, AlertEncoding::kFullHistories);
  EXPECT_EQ(decoded.alert.cond, "rise");
  EXPECT_EQ(decoded.alert.key(), a.key());
  EXPECT_EQ(decoded.alert.histories.at(3)[1].value, 310.25);
}

TEST(Codec, AlertSeqnosOnlyPreservesKeyNotValues) {
  const Alert a = sample_alert();
  const auto decoded = decode_alert(encode_alert(a, AlertEncoding::kSeqnosOnly));
  EXPECT_EQ(decoded.encoding, AlertEncoding::kSeqnosOnly);
  EXPECT_EQ(decoded.alert.key(), a.key());
  EXPECT_TRUE(std::isnan(decoded.alert.histories.at(3)[0].value));
}

TEST(Codec, AlertChecksumOnly) {
  const Alert a = sample_alert();
  const auto decoded = decode_alert(encode_alert(a, AlertEncoding::kChecksumOnly));
  EXPECT_EQ(decoded.encoding, AlertEncoding::kChecksumOnly);
  EXPECT_EQ(decoded.checksum, a.checksum());
  EXPECT_TRUE(decoded.alert.histories.empty());
}

TEST(Codec, EncodingSizesOrdered) {
  const Alert a = sample_alert();
  const auto full = encode_alert(a, AlertEncoding::kFullHistories);
  const auto seqs = encode_alert(a, AlertEncoding::kSeqnosOnly);
  const auto sum = encode_alert(a, AlertEncoding::kChecksumOnly);
  EXPECT_LT(seqs.size(), full.size());
  EXPECT_LT(sum.size(), seqs.size() + 8);  // checksum is near-constant size
}

TEST(Codec, RandomizedUpdateRoundTrips) {
  util::Rng rng{17};
  for (int i = 0; i < 2000; ++i) {
    Update u;
    u.var = static_cast<VarId>(rng.uniform_int(0, 1 << 20));
    u.seqno = rng.uniform_int(0, 1LL << 40);
    u.value = rng.normal(0.0, 1e6);
    EXPECT_EQ(decode_update(encode_update(u)), u);
  }
}

TEST(Codec, RandomizedAlertRoundTrips) {
  util::Rng rng{18};
  for (int i = 0; i < 500; ++i) {
    Alert a;
    a.cond = "c" + std::to_string(rng.uniform_int(0, 99));
    const int vars = static_cast<int>(rng.uniform_int(1, 3));
    for (int v = 0; v < vars; ++v) {
      std::vector<Update> window;
      SeqNo s = rng.uniform_int(1, 100);
      const int degree = static_cast<int>(rng.uniform_int(1, 5));
      for (int d = 0; d < degree; ++d) {
        window.push_back({static_cast<VarId>(v), s, rng.uniform(-1e3, 1e3)});
        s += rng.uniform_int(1, 10);
      }
      a.histories.emplace(static_cast<VarId>(v), std::move(window));
    }
    const auto decoded =
        decode_alert(encode_alert(a, AlertEncoding::kFullHistories));
    EXPECT_EQ(decoded.alert.key(), a.key());
  }
}

// --------------------------------------------------------------- frame ----

TEST(Frame, Crc32KnownVector) {
  // CRC-32("123456789") = 0xCBF43926, the classic check value.
  const std::string s = "123456789";
  const std::span<const std::uint8_t> bytes{
      reinterpret_cast<const std::uint8_t*>(s.data()), s.size()};
  EXPECT_EQ(crc32(bytes), 0xCBF43926u);
}

TEST(Frame, RoundTripSingle) {
  const std::vector<std::uint8_t> payload{1, 2, 3, 4, 5};
  FrameCursor cursor;
  cursor.feed(frame(payload));
  const auto out = cursor.next();
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(*out, payload);
  EXPECT_FALSE(cursor.next().has_value());
  EXPECT_EQ(cursor.corrupt_frames(), 0u);
}

TEST(Frame, EmptyPayload) {
  FrameCursor cursor;
  cursor.feed(frame(std::vector<std::uint8_t>{}));
  const auto out = cursor.next();
  ASSERT_TRUE(out.has_value());
  EXPECT_TRUE(out->empty());
}

TEST(Frame, ByteAtATimeDelivery) {
  const std::vector<std::uint8_t> payload{9, 8, 7};
  const auto framed = frame(payload);
  FrameCursor cursor;
  for (std::size_t i = 0; i < framed.size(); ++i) {
    cursor.feed(std::span<const std::uint8_t>{&framed[i], 1});
    const auto out = cursor.next();
    if (i + 1 < framed.size()) {
      EXPECT_FALSE(out.has_value());
    } else {
      ASSERT_TRUE(out.has_value());
      EXPECT_EQ(*out, payload);
    }
  }
}

TEST(Frame, BackToBackFrames) {
  FrameCursor cursor;
  std::vector<std::uint8_t> stream;
  for (std::uint8_t i = 0; i < 10; ++i) {
    const auto f = frame(std::vector<std::uint8_t>{i, i, i});
    stream.insert(stream.end(), f.begin(), f.end());
  }
  cursor.feed(stream);
  for (std::uint8_t i = 0; i < 10; ++i) {
    const auto out = cursor.next();
    ASSERT_TRUE(out.has_value());
    EXPECT_EQ((*out)[0], i);
  }
  EXPECT_FALSE(cursor.next().has_value());
}

TEST(Frame, CorruptPayloadIsDetectedAndSkipped) {
  const auto good1 = frame(std::vector<std::uint8_t>{1, 1, 1});
  auto bad = frame(std::vector<std::uint8_t>{2, 2, 2});
  bad[4] ^= 0xff;  // flip a payload byte; CRC must catch it
  const auto good2 = frame(std::vector<std::uint8_t>{3, 3, 3});

  FrameCursor cursor;
  cursor.feed(good1);
  cursor.feed(bad);
  cursor.feed(good2);
  const auto a = cursor.next();
  ASSERT_TRUE(a.has_value());
  EXPECT_EQ((*a)[0], 1);
  const auto b = cursor.next();
  ASSERT_TRUE(b.has_value());
  EXPECT_EQ((*b)[0], 3);  // the corrupted middle frame was skipped
  EXPECT_GE(cursor.corrupt_frames(), 1u);
}

TEST(Frame, GarbagePrefixResync) {
  FrameCursor cursor;
  cursor.feed(std::vector<std::uint8_t>{0x00, 0x42, 0x13});
  cursor.feed(frame(std::vector<std::uint8_t>{7}));
  const auto out = cursor.next();
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ((*out)[0], 7);
  EXPECT_GE(cursor.corrupt_frames(), 1u);
}

TEST(Frame, SingleByteMutationNeverYieldsWrongPayload) {
  // Flip every byte position in a framed message one at a time; the
  // cursor must never emit a payload different from the original (it
  // may emit nothing, or resynchronize and emit nothing).
  const std::vector<std::uint8_t> payload{10, 20, 30, 40, 50};
  const auto framed = frame(payload);
  for (std::size_t i = 0; i < framed.size(); ++i) {
    auto mutated = framed;
    mutated[i] ^= 0x5a;
    FrameCursor cursor;
    cursor.feed(mutated);
    while (const auto out = cursor.next()) {
      EXPECT_EQ(*out, payload) << "byte " << i;  // only exact survivals
    }
  }
}

TEST(Frame, FinishRecoversFrameWhoseMagicHidesInACorruptLengthVarint) {
  // Regression: a corrupted length varint can decode to a plausible
  // length that "swallows" the bytes after it — bytes that contain the
  // magic pair of a real frame. A streaming cursor rightly waits for
  // more input, but at end-of-stream the pending frame can never
  // complete; finish() must turn it into a corrupt frame and resync at
  // the embedded magic so the real frame is recovered.
  const std::vector<std::uint8_t> payload{42, 43, 44};
  const auto good = frame(payload);
  // magic | varint 0xCE 0x01 (= length 206, far past the stream end);
  // those two varint bytes are themselves a magic pair.
  std::vector<std::uint8_t> stream{kFrameMagic0, kFrameMagic1,
                                   kFrameMagic0, kFrameMagic1};
  stream.insert(stream.end(), good.begin(), good.end());

  FrameCursor cursor;
  cursor.feed(stream);
  EXPECT_FALSE(cursor.next().has_value());  // streaming: still waiting
  cursor.finish();
  const auto out = cursor.next();
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(*out, payload);
  EXPECT_GE(cursor.corrupt_frames(), 1u);
  EXPECT_FALSE(cursor.next().has_value());  // and terminates
}

TEST(Frame, FinishCountsTornTailAsCorrupt) {
  const auto good = frame(std::vector<std::uint8_t>{9, 9});
  auto torn = frame(std::vector<std::uint8_t>{1, 2, 3, 4});
  torn.resize(torn.size() / 2);

  FrameCursor cursor;
  cursor.feed(good);
  cursor.feed(torn);
  cursor.finish();
  const auto out = cursor.next();
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(out->size(), 2u);
  EXPECT_FALSE(cursor.next().has_value());
  EXPECT_GE(cursor.corrupt_frames(), 1u);
}

TEST(Frame, FinishOnCleanStreamChangesNothing) {
  const std::vector<std::uint8_t> payload{5, 6, 7};
  FrameCursor cursor;
  cursor.feed(frame(payload));
  cursor.finish();
  const auto out = cursor.next();
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(*out, payload);
  EXPECT_FALSE(cursor.next().has_value());
  EXPECT_EQ(cursor.corrupt_frames(), 0u);
}

TEST(Frame, RandomizedStreamWithInterspersedNoise) {
  util::Rng rng{23};
  FrameCursor cursor;
  std::vector<std::vector<std::uint8_t>> sent;
  std::vector<std::uint8_t> stream;
  for (int i = 0; i < 200; ++i) {
    std::vector<std::uint8_t> payload(
        static_cast<std::size_t>(rng.uniform_int(1, 64)));
    for (auto& b : payload) b = static_cast<std::uint8_t>(rng.uniform_int(0, 255));
    const auto f = frame(payload);
    stream.insert(stream.end(), f.begin(), f.end());
    sent.push_back(std::move(payload));
  }
  // Feed in random-sized chunks.
  std::size_t pos = 0;
  std::vector<std::vector<std::uint8_t>> received;
  while (pos < stream.size()) {
    const std::size_t n = std::min<std::size_t>(
        static_cast<std::size_t>(rng.uniform_int(1, 97)), stream.size() - pos);
    cursor.feed(std::span<const std::uint8_t>{stream.data() + pos, n});
    pos += n;
    while (auto out = cursor.next()) received.push_back(std::move(*out));
  }
  EXPECT_EQ(received, sent);
  EXPECT_EQ(cursor.corrupt_frames(), 0u);
}

}  // namespace
}  // namespace rcm::wire
