// Differential tests: independent implementations of the same semantics
// must agree on randomized inputs.
//
//  - expression-compiled conditions vs their hand-written built-in
//    equivalents, swept over random traces (the expression language's
//    evaluator versus direct C++);
//  - Ad1 filtering vs naive set-based deduplication;
//  - evaluate_trace vs an incremental ConditionEvaluator loop;
//  - sim duplicate-variable validation introduced for the DM model.
#include <gtest/gtest.h>

#include <memory>
#include <set>

#include "core/rcm.hpp"
#include "sim/system.hpp"
#include "trace/generators.hpp"
#include "trace/scripted.hpp"
#include "util/rng.hpp"

namespace rcm {
namespace {

std::vector<Update> random_lossy_stream(util::Rng& rng, VarId var,
                                        std::size_t n, double lo, double hi) {
  std::vector<Update> out;
  SeqNo s = 1;
  for (std::size_t i = 0; i < n; ++i, ++s) {
    if (rng.bernoulli(0.25)) continue;  // lost
    out.push_back({var, s, rng.uniform(lo, hi)});
  }
  return out;
}

class Differential : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(Differential, ExpressionThresholdMatchesBuiltin) {
  util::Rng rng{GetParam()};
  VariableRegistry vars;
  auto compiled = expr::compile_condition("t", "x[0] > 50", vars);
  VarId x = 0;
  ASSERT_TRUE(vars.lookup("x", x));
  auto builtin = std::make_shared<const ThresholdCondition>("t", x, 50.0);

  const auto stream = random_lossy_stream(rng, x, 60, 0.0, 100.0);
  const auto a = evaluate_trace(compiled, stream);
  const auto b = evaluate_trace(builtin, stream);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i)
    EXPECT_EQ(a[i].key(), b[i].key());
}

TEST_P(Differential, ExpressionRiseMatchesBuiltinBothTriggerings) {
  util::Rng rng{GetParam() * 3};
  VariableRegistry vars;
  auto compiled_aggr = expr::compile_condition("r", "x[0] - x[-1] > 20", vars);
  auto compiled_cons = expr::compile_condition(
      "r", "x[0] - x[-1] > 20 && consecutive(x)", vars);
  VarId x = 0;
  ASSERT_TRUE(vars.lookup("x", x));
  auto builtin_aggr = std::make_shared<const RiseCondition>(
      "r", x, 20.0, Triggering::kAggressive);
  auto builtin_cons = std::make_shared<const RiseCondition>(
      "r", x, 20.0, Triggering::kConservative);

  const auto stream = random_lossy_stream(rng, x, 60, 0.0, 100.0);
  for (auto [compiled, builtin] :
       {std::pair{compiled_aggr, ConditionPtr(builtin_aggr)},
        std::pair{compiled_cons, ConditionPtr(builtin_cons)}}) {
    const auto a = evaluate_trace(compiled, stream);
    const auto b = evaluate_trace(builtin, stream);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i)
      EXPECT_EQ(a[i].key(), b[i].key());
  }
}

TEST_P(Differential, ExpressionAbsDiffMatchesBuiltin) {
  util::Rng rng{GetParam() * 7};
  VariableRegistry vars;
  auto compiled = expr::compile_condition("d", "abs(x[0] - y[0]) > 30", vars);
  VarId x = 0, y = 0;
  ASSERT_TRUE(vars.lookup("x", x));
  ASSERT_TRUE(vars.lookup("y", y));
  auto builtin = std::make_shared<const AbsDiffCondition>("d", x, y, 30.0);

  // Random interleaving of two per-variable streams.
  auto sx = random_lossy_stream(rng, x, 30, 0.0, 100.0);
  auto sy = random_lossy_stream(rng, y, 30, 0.0, 100.0);
  std::vector<Update> mixed;
  std::size_t i = 0, j = 0;
  while (i < sx.size() || j < sy.size()) {
    const bool take_x = j >= sy.size() || (i < sx.size() && rng.bernoulli(0.5));
    mixed.push_back(take_x ? sx[i++] : sy[j++]);
  }
  const auto a = evaluate_trace(compiled, mixed);
  const auto b = evaluate_trace(builtin, mixed);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t k = 0; k < a.size(); ++k)
    EXPECT_EQ(a[k].key(), b[k].key());
}

TEST_P(Differential, Ad1MatchesNaiveSetDedup) {
  util::Rng rng{GetParam() * 11};
  auto cond = std::make_shared<const RiseCondition>("r", 0, 10.0,
                                                    Triggering::kAggressive);
  // Two replicas' alert streams, randomly merged.
  std::vector<Alert> arrivals;
  for (int ce = 0; ce < 2; ++ce) {
    const auto stream = random_lossy_stream(rng, 0, 40, 0.0, 100.0);
    for (const Alert& a : evaluate_trace(cond, stream))
      arrivals.push_back(a);
  }
  for (std::size_t i = arrivals.size(); i > 1; --i) {
    const auto j = static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(i - 1)));
    std::swap(arrivals[i - 1], arrivals[j]);
  }

  Ad1DuplicateFilter ad1;
  std::set<AlertKey> naive;
  for (const Alert& a : arrivals)
    EXPECT_EQ(ad1.offer(a), naive.insert(a.key()).second);
}

TEST_P(Differential, EvaluateTraceMatchesIncrementalLoop) {
  util::Rng rng{GetParam() * 13};
  auto cond = std::make_shared<const RiseCondition>("r", 0, 15.0,
                                                    Triggering::kConservative);
  const auto stream = random_lossy_stream(rng, 0, 50, 0.0, 100.0);
  const auto batch = evaluate_trace(cond, stream);
  ConditionEvaluator ce{cond};
  std::vector<Alert> incremental;
  for (const Update& u : stream)
    if (auto a = ce.on_update(u)) incremental.push_back(*a);
  ASSERT_EQ(batch.size(), incremental.size());
  for (std::size_t i = 0; i < batch.size(); ++i)
    EXPECT_EQ(batch[i].key(), incremental[i].key());
}

INSTANTIATE_TEST_SUITE_P(Seeds, Differential,
                         ::testing::Range<std::uint64_t>(1, 16));

TEST(SimValidation, RejectsDuplicateVariableAcrossDms) {
  auto cond = std::make_shared<const ThresholdCondition>("t", 0, 50.0);
  sim::SystemConfig config;
  config.condition = cond;
  config.dm_traces = {trace::scripted(0, {{1, 60.0}}),
                      trace::scripted(0, {{2, 70.0}})};  // same variable!
  EXPECT_THROW((void)sim::run_system(config), std::invalid_argument);
}

}  // namespace
}  // namespace rcm
