// Tests for the loopback socket substrate and the socket-deployed
// monitoring system: raw socket semantics, framed traffic over UDP and
// TCP, and full networked runs validated with the same property checkers
// as the simulator's.
#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <thread>

#include "check/consistency.hpp"
#include "check/properties.hpp"
#include "core/builtin_conditions.hpp"
#include "core/sequence.hpp"
#include "net/deployment.hpp"
#include "net/socket.hpp"
#include "trace/generators.hpp"
#include "trace/scripted.hpp"
#include "wire/codec.hpp"
#include "wire/frame.hpp"

namespace rcm::net {
namespace {

using namespace std::chrono_literals;

constexpr VarId kX = 0;

TEST(UdpSocket, RoundTripDatagram) {
  UdpSocket receiver;
  UdpSocket sender;
  const std::vector<std::uint8_t> payload{1, 2, 3, 4};
  sender.send_to(receiver.port(), payload);
  const auto got = receiver.receive(1000ms);
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(*got, payload);
}

TEST(UdpSocket, ReceiveTimesOutCleanly) {
  UdpSocket receiver;
  const auto got = receiver.receive(20ms);
  EXPECT_FALSE(got.has_value());
}

TEST(UdpSocket, DatagramBoundariesPreserved) {
  UdpSocket receiver;
  UdpSocket sender;
  sender.send_to(receiver.port(), std::vector<std::uint8_t>{1});
  sender.send_to(receiver.port(), std::vector<std::uint8_t>{2, 2});
  const auto first = receiver.receive(1000ms);
  const auto second = receiver.receive(1000ms);
  ASSERT_TRUE(first && second);
  EXPECT_EQ(first->size(), 1u);
  EXPECT_EQ(second->size(), 2u);
}

TEST(Tcp, ConnectAcceptExchange) {
  TcpListener listener;
  std::thread client{[&] {
    TcpStream stream = TcpStream::connect(listener.port());
    stream.write_all(std::vector<std::uint8_t>{10, 20, 30});
    stream.shutdown_write();
    // Keep the socket alive briefly so the FIN carries the data.
    std::this_thread::sleep_for(50ms);
  }};
  auto accepted = listener.accept(2000ms);
  ASSERT_TRUE(accepted.has_value());
  std::vector<std::uint8_t> received;
  while (true) {
    const auto chunk = accepted->read_some(1000ms);
    ASSERT_TRUE(chunk.has_value());
    if (chunk->empty()) break;  // EOF
    received.insert(received.end(), chunk->begin(), chunk->end());
  }
  EXPECT_EQ(received, (std::vector<std::uint8_t>{10, 20, 30}));
  client.join();
}

TEST(Tcp, AcceptTimesOutWithoutClient) {
  TcpListener listener;
  EXPECT_FALSE(listener.accept(20ms).has_value());
}

TEST(Tcp, FramedAlertsSurviveChunking) {
  TcpListener listener;
  Alert alert;
  alert.cond = "c";
  alert.histories.emplace(
      kX, std::vector<Update>{{kX, 1, 10.0}, {kX, 2, 20.0}});
  const auto framed =
      wire::frame(wire::encode_alert(alert, wire::AlertEncoding::kFullHistories));

  std::thread client{[&] {
    TcpStream stream = TcpStream::connect(listener.port());
    // Byte-at-a-time writes: the reader's FrameCursor must reassemble.
    for (std::uint8_t b : framed)
      stream.write_all(std::vector<std::uint8_t>{b});
    stream.shutdown_write();
    std::this_thread::sleep_for(50ms);
  }};
  auto accepted = listener.accept(2000ms);
  ASSERT_TRUE(accepted.has_value());
  wire::FrameCursor cursor;
  std::vector<Alert> decoded;
  while (true) {
    const auto chunk = accepted->read_some(1000ms);
    ASSERT_TRUE(chunk.has_value());
    if (chunk->empty()) break;
    cursor.feed(*chunk);
    while (auto payload = cursor.next())
      decoded.push_back(wire::decode_alert(*payload).alert);
  }
  ASSERT_EQ(decoded.size(), 1u);
  EXPECT_EQ(decoded[0].key(), alert.key());
  client.join();
}

// --------------------------------------------------------- deployments ----

NetworkConfig base_config(std::uint64_t seed, std::size_t updates = 60) {
  NetworkConfig config;
  config.condition =
      std::make_shared<const ThresholdCondition>("hot", kX, 55.0);
  util::Rng rng{seed};
  trace::UniformParams p;
  p.base.var = kX;
  p.base.count = updates;
  p.lo = 0.0;
  p.hi = 100.0;
  config.dm_traces = {trace::uniform_trace(p, rng)};
  config.num_ces = 2;
  config.filter = FilterKind::kAd1;
  config.seed = seed;
  return config;
}

TEST(RunNetworked, ValidatesConfig) {
  EXPECT_THROW((void)run_networked(NetworkConfig{}), std::invalid_argument);
  auto config = base_config(1);
  config.num_ces = 0;
  EXPECT_THROW((void)run_networked(config), std::invalid_argument);
  config = base_config(1);
  config.dm_traces.clear();
  EXPECT_THROW((void)run_networked(config), std::invalid_argument);
}

TEST(RunNetworked, LosslessRunMatchesReference) {
  const auto config = base_config(2);
  const auto r = run_networked(config);
  EXPECT_EQ(r.wire_corrupt_frames, 0u);
  EXPECT_EQ(r.front_messages_dropped, 0u);
  // Loopback UDP: both CEs received everything, in order.
  for (const auto& input : r.ce_inputs) {
    EXPECT_EQ(input.size(), 60u);
    EXPECT_TRUE(is_ordered(std::span<const Update>{input}, kX));
  }
  // Displayed key set == the reference evaluation (AD-1 dedups copies).
  const auto ref = evaluate_trace(config.condition, r.dm_emitted[0]);
  std::set<AlertKey> displayed;
  for (const Alert& a : r.displayed) displayed.insert(a.key());
  std::set<AlertKey> expected;
  for (const Alert& a : ref) expected.insert(a.key());
  EXPECT_EQ(displayed, expected);
  // The run satisfies Theorem 1 end to end, across real sockets.
  const auto report = check::check_run(r.as_system_run(config.condition));
  EXPECT_EQ(report.complete, check::Verdict::kHolds);
  EXPECT_EQ(report.consistent, check::Verdict::kHolds);
}

TEST(RunNetworked, InjectedLossDropsDatagrams) {
  auto config = base_config(3, 200);
  config.front_loss = 0.3;
  const auto r = run_networked(config);
  EXPECT_GT(r.front_messages_dropped, 50u);
  const auto emitted = project(std::span<const Update>{r.dm_emitted[0]}, kX);
  for (const auto& input : r.ce_inputs) {
    const auto seqs = project(std::span<const Update>{input}, kX);
    EXPECT_TRUE(is_subsequence(seqs, emitted));
    EXPECT_LT(seqs.size(), emitted.size());
  }
}

TEST(RunNetworked, Ad4GuaranteesHoldOverRealSockets) {
  auto rise = std::make_shared<const RiseCondition>("rise", kX, 10.0,
                                                    Triggering::kAggressive);
  for (std::uint64_t seed = 1; seed <= 3; ++seed) {
    auto config = base_config(seed, 120);
    config.condition = rise;
    config.num_ces = 3;
    config.front_loss = 0.25;
    config.filter = FilterKind::kAd4;
    const auto r = run_networked(config);
    EXPECT_TRUE(check::check_ordered(r.displayed, {kX})) << "seed " << seed;
    EXPECT_TRUE(
        check::check_consistent(r.as_system_run(rise)).consistent)
        << "seed " << seed;
  }
}

TEST(RunNetworked, MultiDmMultiVariable) {
  auto cm = std::make_shared<const AbsDiffCondition>("cm", 0, 1, 30.0);
  NetworkConfig config;
  config.condition = cm;
  util::Rng rng{7};
  trace::UniformParams px, py;
  px.base.var = 0;
  px.base.count = 60;
  px.lo = 0.0;
  px.hi = 100.0;
  py.base.var = 1;
  py.base.count = 60;
  py.lo = 0.0;
  py.hi = 100.0;
  config.dm_traces = {trace::uniform_trace(px, rng),
                      trace::uniform_trace(py, rng)};
  config.num_ces = 2;
  config.filter = FilterKind::kAd5;
  const auto r = run_networked(config);
  EXPECT_TRUE(check::check_ordered(r.displayed, {0, 1}));  // Lemma 4
  EXPECT_EQ(r.wire_corrupt_frames, 0u);
}

}  // namespace
}  // namespace rcm::net
