// Persistence features: the file-backed alert log (write-ahead records,
// torn-tail recovery), trace file I/O, and evaluator state snapshots for
// warm crash recovery.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <memory>
#include <sstream>

#include "core/builtin_conditions.hpp"
#include "core/evaluator.hpp"
#include "store/file_log.hpp"
#include "trace/generators.hpp"
#include "trace/trace_io.hpp"
#include "util/rng.hpp"
#include "wire/snapshot.hpp"

namespace rcm {
namespace {

namespace fs = std::filesystem;

/// RAII temp file path (removed on destruction).
class TempPath {
 public:
  explicit TempPath(const std::string& stem) {
    static int counter = 0;
    path_ = fs::temp_directory_path() /
            (stem + "." + std::to_string(::getpid()) + "." +
             std::to_string(counter++));
    fs::remove(path_);
  }
  ~TempPath() { fs::remove(path_); }
  [[nodiscard]] const fs::path& get() const noexcept { return path_; }

 private:
  fs::path path_;
};

Alert make_alert(SeqNo s) {
  Alert a;
  a.cond = "c";
  a.histories.emplace(0, std::vector<Update>{{0, s, static_cast<double>(s)}});
  return a;
}

// -------------------------------------------------------- FileAlertLog ----

TEST(FileAlertLog, FreshFileStartsEmpty) {
  TempPath path{"rcm_log"};
  store::FileAlertLog log{path.get()};
  EXPECT_EQ(log.log().size(), 0u);
  EXPECT_EQ(log.recovered_corrupt_frames(), 0u);
}

TEST(FileAlertLog, SurvivesReopen) {
  TempPath path{"rcm_log"};
  {
    store::FileAlertLog log{path.get()};
    EXPECT_EQ(log.append(make_alert(1)), 0u);
    EXPECT_EQ(log.append(make_alert(2)), 1u);
    log.ack(0);
  }
  store::FileAlertLog revived{path.get()};
  EXPECT_EQ(revived.log().size(), 2u);
  EXPECT_EQ(revived.log().ack_level(), 1u);
  const auto pending = revived.log().pending();
  ASSERT_EQ(pending.size(), 1u);
  EXPECT_EQ(pending[0].second.key(), make_alert(2).key());
  // The revived log keeps appending where the old one stopped.
  EXPECT_EQ(revived.append(make_alert(3)), 2u);
}

TEST(FileAlertLog, ManyReopensAccumulate) {
  TempPath path{"rcm_log"};
  for (SeqNo s = 1; s <= 5; ++s) {
    store::FileAlertLog log{path.get()};
    EXPECT_EQ(log.append(make_alert(s)), static_cast<std::uint64_t>(s - 1));
  }
  EXPECT_EQ(store::recover_log(path.get()).log.size(), 5u);
}

TEST(FileAlertLog, TornTailIsDetectedAndDropped) {
  TempPath path{"rcm_log"};
  {
    store::FileAlertLog log{path.get()};
    (void)log.append(make_alert(1));
    (void)log.append(make_alert(2));
  }
  // Simulate a crash mid-write: truncate the last few bytes.
  const auto size = fs::file_size(path.get());
  fs::resize_file(path.get(), size - 3);

  const auto recovered = store::recover_log(path.get());
  EXPECT_EQ(recovered.log.size(), 1u);  // first record intact
  // A torn tail is simply missing bytes, not necessarily a CRC failure;
  // what matters is that the prefix survived and nothing bogus appeared.
  EXPECT_EQ(recovered.log.at(0).key(), make_alert(1).key());
}

TEST(FileAlertLog, CorruptMiddleRecordIsSkipped) {
  TempPath path{"rcm_log"};
  {
    store::FileAlertLog log{path.get()};
    (void)log.append(make_alert(1));
    (void)log.append(make_alert(2));
    (void)log.append(make_alert(3));
  }
  // Flip one byte near the middle of the file.
  std::fstream f{path.get(), std::ios::binary | std::ios::in | std::ios::out};
  const auto size = static_cast<std::streamoff>(fs::file_size(path.get()));
  f.seekp(size / 2);
  char byte;
  f.seekg(size / 2);
  f.get(byte);
  f.seekp(size / 2);
  f.put(static_cast<char>(byte ^ 0x5a));
  f.close();

  const auto recovered = store::recover_log(path.get());
  EXPECT_GE(recovered.corrupt_frames, 1u);
  EXPECT_LT(recovered.log.size(), 3u);  // the damaged record is gone
  for (std::size_t i = 0; i < recovered.log.size(); ++i) {
    const SeqNo s = recovered.log.at(i).seqno(0);
    EXPECT_TRUE(s >= 1 && s <= 3);  // never a fabricated record
  }
}

TEST(FileAlertLog, MissingFileRecoversEmpty) {
  TempPath path{"rcm_log_nonexistent"};
  const auto recovered = store::recover_log(path.get());
  EXPECT_EQ(recovered.log.size(), 0u);
  EXPECT_EQ(recovered.records, 0u);
}

// ------------------------------------------------------------ trace IO ----

TEST(TraceIo, RoundTripThroughText) {
  util::Rng rng{5};
  trace::ReactorParams p;
  p.base.var = 3;
  p.base.count = 50;
  const trace::Trace original = trace::reactor_trace(p, rng);

  std::ostringstream os;
  trace::write_trace(os, original);
  const trace::Trace parsed = trace::parse_trace(os.str());
  ASSERT_EQ(parsed.size(), original.size());
  for (std::size_t i = 0; i < parsed.size(); ++i) {
    EXPECT_EQ(parsed[i].update, original[i].update);
    EXPECT_DOUBLE_EQ(parsed[i].time, original[i].time);
  }
}

TEST(TraceIo, RoundTripThroughFile) {
  TempPath path{"rcm_trace"};
  util::Rng rng{6};
  trace::UniformParams p;
  p.base.count = 20;
  const trace::Trace original = trace::uniform_trace(p, rng);
  trace::save_trace(path.get(), original);
  const trace::Trace loaded = trace::load_trace(path.get());
  ASSERT_EQ(loaded.size(), 20u);
  EXPECT_EQ(loaded[7].update, original[7].update);
}

TEST(TraceIo, CommentsAndBlanksIgnored) {
  const auto t = trace::parse_trace(
      "# header\n\n1.0 0 1 10.5\n  # indented comment\n2.0 0 2 11.0\n");
  ASSERT_EQ(t.size(), 2u);
  EXPECT_EQ(t[1].update.seqno, 2);
}

TEST(TraceIo, MalformedLinesRejected) {
  EXPECT_THROW((void)trace::parse_trace("1.0 0 1\n"), trace::TraceParseError);
  EXPECT_THROW((void)trace::parse_trace("1.0 0 1 2.0 extra\n"),
               trace::TraceParseError);
  EXPECT_THROW((void)trace::parse_trace("abc 0 1 2.0\n"),
               trace::TraceParseError);
  EXPECT_THROW((void)trace::parse_trace("1.0 -2 1 2.0\n"),
               trace::TraceParseError);
}

TEST(TraceIo, InvariantViolationsRejected) {
  // Non-increasing times.
  EXPECT_THROW((void)trace::parse_trace("2.0 0 1 1.0\n1.0 0 2 1.0\n"),
               trace::TraceParseError);
  // Non-increasing per-variable seqnos.
  EXPECT_THROW((void)trace::parse_trace("1.0 0 2 1.0\n2.0 0 2 1.0\n"),
               trace::TraceParseError);
  // Different variables may interleave seqnos freely.
  EXPECT_NO_THROW((void)trace::parse_trace("1.0 0 5 1.0\n2.0 1 1 1.0\n"));
}

TEST(TraceIo, ErrorCarriesLineNumber) {
  try {
    (void)trace::parse_trace("1.0 0 1 2.0\nbogus\n");
    FAIL() << "expected TraceParseError";
  } catch (const trace::TraceParseError& e) {
    EXPECT_EQ(e.line(), 2u);
  }
}

// ---------------------------------------------------------- snapshots ----

TEST(EvaluatorSnapshot, WarmRestartPreservesBehaviour) {
  auto cond = std::make_shared<const RiseCondition>("rise", 0, 100.0,
                                                    Triggering::kAggressive);
  ConditionEvaluator original{cond, "CE1"};
  (void)original.on_update({0, 1, 50.0});
  (void)original.on_update({0, 2, 80.0});
  const auto snapshot = wire::encode_evaluator_state(original);

  // Cold restart misses the next alert (history must refill)...
  ConditionEvaluator cold{cond, "CE1"};
  EXPECT_FALSE(cold.on_update({0, 3, 200.0}).has_value());

  // ...warm restart fires exactly like the uncrashed original.
  ConditionEvaluator warm{cond, "CE1"};
  wire::decode_evaluator_state(snapshot, warm);
  ConditionEvaluator uncrashed{cond, "CE1"};
  (void)uncrashed.on_update({0, 1, 50.0});
  (void)uncrashed.on_update({0, 2, 80.0});
  const auto from_warm = warm.on_update({0, 3, 200.0});
  const auto from_uncrashed = uncrashed.on_update({0, 3, 200.0});
  ASSERT_TRUE(from_warm.has_value());
  ASSERT_TRUE(from_uncrashed.has_value());
  EXPECT_EQ(from_warm->key(), from_uncrashed->key());
}

TEST(EvaluatorSnapshot, RestorePreservesStaleSeqnoDiscard) {
  auto cond = std::make_shared<const ThresholdCondition>("t", 0, 10.0);
  ConditionEvaluator original{cond};
  (void)original.on_update({0, 5, 50.0});
  const auto snapshot = wire::encode_evaluator_state(original);

  ConditionEvaluator warm{cond};
  wire::decode_evaluator_state(snapshot, warm);
  EXPECT_FALSE(warm.would_accept({0, 5, 60.0}));  // watermark restored
  EXPECT_FALSE(warm.would_accept({0, 3, 60.0}));
  EXPECT_TRUE(warm.would_accept({0, 6, 60.0}));
}

TEST(EvaluatorSnapshot, RejectsMismatchedCondition) {
  auto rise = std::make_shared<const RiseCondition>("r", 0, 1.0,
                                                    Triggering::kAggressive);
  auto threshold = std::make_shared<const ThresholdCondition>("t", 0, 1.0);
  ConditionEvaluator a{rise};
  (void)a.on_update({0, 1, 1.0});
  const auto snapshot = wire::encode_evaluator_state(a);
  ConditionEvaluator b{threshold};  // degree 1, snapshot says degree 2
  EXPECT_THROW(wire::decode_evaluator_state(snapshot, b), wire::DecodeError);
}

TEST(EvaluatorSnapshot, RejectsGarbage) {
  auto cond = std::make_shared<const ThresholdCondition>("t", 0, 1.0);
  ConditionEvaluator ce{cond};
  const std::vector<std::uint8_t> garbage{0x00, 0x01, 0x02};
  EXPECT_THROW(wire::decode_evaluator_state(garbage, ce), wire::DecodeError);
}

TEST(EvaluatorSnapshot, EmptyStateRoundTrips) {
  auto cond = std::make_shared<const ThresholdCondition>("t", 0, 1.0);
  ConditionEvaluator fresh{cond};
  const auto snapshot = wire::encode_evaluator_state(fresh);
  ConditionEvaluator restored{cond};
  EXPECT_NO_THROW(wire::decode_evaluator_state(snapshot, restored));
  EXPECT_TRUE(restored.would_accept({0, 1, 5.0}));
}

}  // namespace
}  // namespace rcm
