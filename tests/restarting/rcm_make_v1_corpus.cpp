// Regenerates (or verifies) the checked-in v1 durable-format corpus
// under tests/data/v1/.
//
//   rcm_make_v1_corpus <dir>          # (re)write every fixture
//   rcm_make_v1_corpus --check <dir>  # fail if any fixture differs
//
// --check is wired into ctest (label `restarting`): a change to any
// encoder that would alter the v1 bytes fails CI instead of silently
// rewriting history. Exit codes: 0 = ok, 1 = mismatch, 2 = usage/IO.
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>

#include "v1_corpus.hpp"

namespace {

std::vector<std::uint8_t> read_file(const std::filesystem::path& path) {
  std::ifstream in{path, std::ios::binary};
  return std::vector<std::uint8_t>{std::istreambuf_iterator<char>(in),
                                   std::istreambuf_iterator<char>()};
}

}  // namespace

int main(int argc, char** argv) {
  bool check = false;
  const char* dir_arg = nullptr;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--check") == 0) {
      check = true;
    } else if (dir_arg == nullptr) {
      dir_arg = argv[i];
    } else {
      std::fprintf(stderr, "usage: %s [--check] <dir>\n", argv[0]);
      return 2;
    }
  }
  if (dir_arg == nullptr) {
    std::fprintf(stderr, "usage: %s [--check] <dir>\n", argv[0]);
    return 2;
  }
  const std::filesystem::path dir{dir_arg};

  try {
    int mismatches = 0;
    if (!check) std::filesystem::create_directories(dir);
    for (const rcm::testing::V1Fixture& fixture :
         rcm::testing::build_v1_corpus()) {
      const std::filesystem::path path = dir / fixture.name;
      if (check) {
        if (read_file(path) != fixture.bytes) {
          std::fprintf(stderr,
                       "v1 corpus drift: %s regenerates with different "
                       "bytes (the v1 format is frozen — fix the encoder, "
                       "do not regenerate the fixture)\n",
                       path.string().c_str());
          ++mismatches;
        }
      } else {
        std::ofstream out{path, std::ios::binary | std::ios::trunc};
        out.write(reinterpret_cast<const char*>(fixture.bytes.data()),
                  static_cast<std::streamsize>(fixture.bytes.size()));
        if (!out.good()) {
          std::fprintf(stderr, "cannot write %s\n", path.string().c_str());
          return 2;
        }
        std::printf("wrote %s (%zu bytes)\n", path.string().c_str(),
                    fixture.bytes.size());
      }
    }
    return mismatches == 0 ? 0 : 1;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "rcm_make_v1_corpus: %s\n", e.what());
    return 2;
  }
}
