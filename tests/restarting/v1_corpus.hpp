// The v1 durable-format corpus: byte-exact images of every durable
// artifact a pre-versioning (v1) binary left on disk, regenerated
// deterministically from the frozen legacy encoders (wire/legacy.hpp)
// and hand-written v1 byte layouts.
//
// The checked-in copies live under tests/data/v1/. Three consumers:
//
//   golden_format_test  regenerates each fixture and requires it to be
//                       byte-identical to the checked-in file — the v1
//                       layout can never drift silently;
//   rcm_make_v1_corpus  writes (or --check's) the fixture files, the
//                       only sanctioned way to (re)generate them;
//   restarting_test     installs the fixtures as a replica data
//                       directory and recovers it with the CURRENT
//                       binary, live, under kills.
//
// The canonical scenario behind the evaluator-state fixtures: a
// RiseAggressive(10) condition on variable 0, ten updates alternating
// 80/20 (so alerts actually fire), checkpointed after seqno 6, WAL
// holding 7..9 plus a torn half-written frame of seqno 10 — i.e. a v1
// replica that crashed mid-append.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/evaluator.hpp"
#include "core/types.hpp"
#include "wire/health.hpp"
#include "wire/shard.hpp"

namespace rcm::testing {

struct V1Fixture {
  std::string name;  ///< file name under tests/data/v1/
  std::vector<std::uint8_t> bytes;
};

/// Every fixture, in a fixed order, with deterministic bytes.
[[nodiscard]] std::vector<V1Fixture> build_v1_corpus();

/// The corpus scenario, shared with restarting_test's live recovery.
[[nodiscard]] ConditionPtr corpus_condition();
/// Updates seq 1..10 on variable 0, alternating 80/20.
[[nodiscard]] std::vector<Update> corpus_updates();
/// How many of corpus_updates() the snapshot fixture covers (6).
[[nodiscard]] std::size_t corpus_checkpointed();
/// How many land in the WAL fixture after the checkpoint (3: seq 7..9;
/// seq 10 is the torn tail and must NOT be recovered).
[[nodiscard]] std::size_t corpus_walled();

/// The structured contents of the shardmap.v1.bin / handoff.v1.bin
/// fixtures, shared with golden_format_test's semantic-decode checks.
[[nodiscard]] wire::ShardMap corpus_shard_map();
[[nodiscard]] wire::HandoffPacket corpus_handoff();

/// The structured contents of the health.v1.bin fixture: a degraded
/// shard instance (replica 1 down), shared with golden_format_test's
/// semantic-decode check.
[[nodiscard]] wire::InstanceHealth corpus_instance_health();

}  // namespace rcm::testing
