// Golden-format pinning of the checked-in v1 corpus (tests/data/v1/).
//
// Two layers per fixture:
//   1. byte exactness — the deterministic corpus builder regenerates
//      the exact checked-in bytes, so neither the legacy encoders nor
//      the hand-written layouts can drift;
//   2. semantic decode — the CURRENT decoders read every fixture and
//      recover exactly the state the v1 binary persisted, which is the
//      backward-compatibility half of the versioning contract.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "service/admin.hpp"
#include "store/file_log.hpp"
#include "swarm/fuzzer.hpp"
#include "swarm/record.hpp"
#include "v1_corpus.hpp"
#include "wire/frame.hpp"
#include "wire/health.hpp"
#include "wire/legacy.hpp"
#include "wire/session.hpp"
#include "wire/snapshot.hpp"

namespace rcm::testing {
namespace {

std::filesystem::path corpus_dir() {
  return std::filesystem::path{RCM_V1_CORPUS_DIR};
}

std::vector<std::uint8_t> read_file(const std::filesystem::path& path) {
  std::ifstream in{path, std::ios::binary};
  EXPECT_TRUE(in.is_open()) << "missing fixture " << path
                            << " — run rcm_make_v1_corpus to create it";
  return std::vector<std::uint8_t>{std::istreambuf_iterator<char>(in),
                                   std::istreambuf_iterator<char>()};
}

std::vector<std::uint8_t> fixture_bytes(const std::string& name) {
  return read_file(corpus_dir() / name);
}

TEST(GoldenFormat, EveryFixtureIsByteExact) {
  for (const V1Fixture& fixture : build_v1_corpus()) {
    const auto on_disk = read_file(corpus_dir() / fixture.name);
    EXPECT_EQ(on_disk, fixture.bytes)
        << fixture.name
        << " drifted: the v1 format is frozen — fix the encoder that "
           "changed, never regenerate the fixture";
  }
}

TEST(GoldenFormat, SnapshotDecodesOnBothSidesOfTheBoundary) {
  const auto bytes = fixture_bytes("snapshot.v1.bin");
  wire::FrameCursor cursor;
  cursor.feed(bytes);
  cursor.finish();
  const auto payload = cursor.next();
  ASSERT_TRUE(payload.has_value());

  // The reference state the fixture froze.
  ConditionEvaluator expect{corpus_condition()};
  const std::vector<Update> updates = corpus_updates();
  for (std::size_t i = 0; i < corpus_checkpointed(); ++i)
    (void)expect.on_update(updates[i]);

  // Current reader accepts v1 and recovers the identical state.
  ConditionEvaluator current{corpus_condition()};
  wire::decode_evaluator_state(*payload, current);
  EXPECT_EQ(wire::encode_evaluator_state(current),
            wire::encode_evaluator_state(expect));

  // The simulated v1 reader agrees with itself...
  ConditionEvaluator old_reader{corpus_condition()};
  wire::legacy::decode_evaluator_state_v1(*payload, old_reader);
  EXPECT_EQ(wire::encode_evaluator_state(old_reader),
            wire::encode_evaluator_state(expect));

  // ...and the current ENCODER no longer writes v1 bytes (it writes the
  // versioned 'S' form), which is exactly why this corpus is checked in.
  EXPECT_NE(wire::encode_evaluator_state(expect),
            std::vector<std::uint8_t>(payload->begin(), payload->end()));
}

TEST(GoldenFormat, WalRecoversPrefixAndCountsTornTail) {
  const store::RecoveredUpdates rec =
      store::recover_update_bytes(fixture_bytes("wal_torn_tail.v1.bin"));
  EXPECT_FALSE(rec.versioned);
  EXPECT_EQ(rec.version, (wire::VersionHeader{1, 0}));
  ASSERT_EQ(rec.updates.size(), corpus_walled());
  const std::vector<Update> updates = corpus_updates();
  for (std::size_t i = 0; i < rec.updates.size(); ++i) {
    EXPECT_EQ(rec.updates[i].seqno,
              updates[corpus_checkpointed() + i].seqno);
    EXPECT_EQ(rec.updates[i].value,
              updates[corpus_checkpointed() + i].value);
  }
  EXPECT_GE(rec.corrupt_frames, 1u);  // the torn seqno-10 frame
  EXPECT_EQ(rec.skipped_records, 0u);
}

TEST(GoldenFormat, JournalRecoversEveryAcceptedUpdate) {
  const store::RecoveredUpdates rec =
      store::recover_update_bytes(fixture_bytes("journal.v1.bin"));
  EXPECT_FALSE(rec.versioned);
  ASSERT_EQ(rec.updates.size(), 9u);
  for (std::size_t i = 0; i < rec.updates.size(); ++i)
    EXPECT_EQ(rec.updates[i].seqno, static_cast<SeqNo>(i + 1));
  EXPECT_EQ(rec.corrupt_frames, 0u);
}

TEST(GoldenFormat, AlertLogReplaysEntriesAndAck) {
  const store::RecoveredLog rec =
      store::recover_log_bytes(fixture_bytes("alert_log.v1.bin"));
  EXPECT_FALSE(rec.versioned);
  EXPECT_EQ(rec.corrupt_frames, 0u);
  EXPECT_EQ(rec.skipped_records, 0u);
  // RiseAggressive(10) fires on every 20 -> 80 rise in the checkpointed
  // prefix 80,20,80,20,80,20.
  EXPECT_GE(rec.log.size(), 1u);
  EXPECT_EQ(rec.log.ack_level(), 1u);  // entry 0 was acknowledged
  EXPECT_EQ(rec.records, rec.log.size() + 1);  // entries + the ack record
}

TEST(GoldenFormat, AdminRequestsDecodeAsV1Peers) {
  const auto status = fixture_bytes("admin_request_status.v1.bin");
  const service::AdminRequest req = service::decode_admin_request(status);
  EXPECT_TRUE(req.known);
  EXPECT_EQ(req.command, service::AdminCommand::kStatus);
  EXPECT_EQ(req.replica, 0u);
  // No version extension = a v1 peer.
  EXPECT_EQ(req.version, (wire::VersionHeader{1, 0}));

  const auto restart = fixture_bytes("admin_request_restart_r1.v1.bin");
  const service::AdminRequest req2 = service::decode_admin_request(restart);
  EXPECT_TRUE(req2.known);
  EXPECT_EQ(req2.command, service::AdminCommand::kRestart);
  EXPECT_EQ(req2.replica, 1u);
}

TEST(GoldenFormat, PlainAdminResponseStaysByteIdenticalToV1) {
  const auto v1 = fixture_bytes("admin_response_ok.v1.bin");
  const service::AdminResponse back = service::decode_admin_response(v1);
  EXPECT_TRUE(back.ok);
  EXPECT_FALSE(back.unsupported.has_value());
  // The compatibility keystone: the current encoder emits EXACTLY the v1
  // bytes for a plain response, so v1 clients keep decoding v2 servers.
  EXPECT_EQ(service::encode_admin_response(service::AdminResponse{}), v1);
}

TEST(GoldenFormat, CursorFileReplaysLastWriterWins) {
  const wire::RecoveredCursors rec =
      wire::recover_cursor_bytes(fixture_bytes("cursors.v1.bin"));
  EXPECT_TRUE(rec.versioned);
  EXPECT_EQ(rec.version, (wire::VersionHeader{1, 0}));
  EXPECT_EQ(rec.records, 3u);
  EXPECT_EQ(rec.corrupt_frames, 0u);
  EXPECT_EQ(rec.skipped_records, 0u);
  ASSERT_EQ(rec.cursors.size(), 2u);
  // worker-1 was written twice; the later record (acked 7, evicted) wins.
  EXPECT_EQ(rec.cursors.at("worker-1"), (wire::CursorEntry{7, true}));
  EXPECT_EQ(rec.cursors.at("worker-2"), (wire::CursorEntry{1, false}));
}

TEST(GoldenFormat, SwarmRecordDecodesWithEmptyUnitSection) {
  const auto bytes = fixture_bytes("swarm_record.v1.bin");
  wire::FrameCursor cursor;
  cursor.feed(bytes);
  cursor.finish();
  const auto payload = cursor.next();
  ASSERT_TRUE(payload.has_value());
  const swarm::CounterexampleRecord record =
      swarm::decode_record(*payload);
  EXPECT_TRUE(record.spec.units.empty());
  EXPECT_TRUE(record.spec.base == swarm::sample_spec(11, 0));
}

TEST(GoldenFormat, ShardMapDecodesToTheFrozenLayout) {
  const auto bytes = fixture_bytes("shardmap.v1.bin");
  EXPECT_EQ(wire::decode_shard_map(bytes), corpus_shard_map());
  // Version header sanity: the fixture is v1 of a gated major.
  ASSERT_GE(bytes.size(), 3u);
  EXPECT_EQ(bytes[0], 0x4d);  // 'M'
  EXPECT_EQ(bytes[1], wire::kShardMapVersion.major);
}

TEST(GoldenFormat, HandoffDecodesToTheFrozenState) {
  const auto bytes = fixture_bytes("handoff.v1.bin");
  EXPECT_EQ(wire::decode_handoff(bytes), corpus_handoff());
  ASSERT_GE(bytes.size(), 3u);
  EXPECT_EQ(bytes[0], 0x58);  // 'X'
  EXPECT_EQ(bytes[1], wire::kHandoffVersion.major);
}

TEST(GoldenFormat, HealthRequestDecodesWithInstanceScope) {
  // The hand-written 2.3 health exchange: a request carrying both the
  // version extension and the non-default (instance) scope extension
  // must decode to exactly that — and the current encoder must still
  // produce these bytes, pinning the scope-extension layout.
  const auto bytes = fixture_bytes("admin_request_health_instance.v1.bin");
  const service::AdminRequest req = service::decode_admin_request(bytes);
  EXPECT_TRUE(req.known);
  EXPECT_EQ(req.command, service::AdminCommand::kHealth);
  EXPECT_EQ(req.replica, 0u);
  EXPECT_EQ(req.version, (wire::VersionHeader{2, 3}));
  EXPECT_EQ(req.scope, service::HealthScope::kInstance);

  service::AdminRequest out;
  out.command = service::AdminCommand::kHealth;
  out.scope = service::HealthScope::kInstance;
  EXPECT_EQ(service::encode_admin_request(out), bytes);
}

TEST(GoldenFormat, HealthDocumentDecodesToTheFrozenState) {
  const auto bytes = fixture_bytes("health.v1.bin");
  EXPECT_EQ(wire::decode_instance_health(bytes), corpus_instance_health());
  ASSERT_GE(bytes.size(), 3u);
  EXPECT_EQ(bytes[0], 0x68);  // 'h'
  EXPECT_EQ(bytes[1], wire::kHealthVersion.major);
}

}  // namespace
}  // namespace rcm::testing
