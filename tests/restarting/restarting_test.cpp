// Mixed-version restarting tests (ctest label `restarting`): the
// checked-in v1 corpus is installed as a replica data directory and
// recovered by the CURRENT binary — cold, live under kills, and over
// the admin socket — plus the forward-compatibility direction, where
// output of the current encoders must degrade cleanly in the hands of
// an older (simulated v1) reader.
#include <gtest/gtest.h>

#include <chrono>
#include <filesystem>
#include <fstream>
#include <map>
#include <set>
#include <thread>

#include "core/evaluator.hpp"
#include "net/deployment.hpp"
#include "net/socket.hpp"
#include "service/admin.hpp"
#include "service/alert_service.hpp"
#include "service/durable_replica.hpp"
#include "store/file_log.hpp"
#include "v1_corpus.hpp"
#include "wire/buffer.hpp"
#include "wire/codec.hpp"
#include "wire/frame.hpp"
#include "wire/legacy.hpp"
#include "wire/snapshot.hpp"
#include "wire/version.hpp"

namespace rcm::testing {
namespace {

using namespace std::chrono_literals;

std::filesystem::path fresh_dir(const std::string& name) {
  const std::filesystem::path dir =
      std::filesystem::temp_directory_path() / ("rcm_restarting_" + name);
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir;
}

void write_file(const std::filesystem::path& path,
                std::span<const std::uint8_t> bytes) {
  std::ofstream out{path, std::ios::binary | std::ios::trunc};
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
  ASSERT_TRUE(out.good()) << "cannot write " << path;
}

std::map<std::string, std::vector<std::uint8_t>> corpus_by_name() {
  std::map<std::string, std::vector<std::uint8_t>> map;
  for (V1Fixture& fixture : build_v1_corpus())
    map.emplace(std::move(fixture.name), std::move(fixture.bytes));
  return map;
}

/// Installs the corpus as replica `index`'s data files: a v1 binary's
/// checkpoint, its torn WAL, and its journal.
void install_v1_replica(const std::filesystem::path& dir,
                        std::size_t index) {
  const auto corpus = corpus_by_name();
  write_file(service::DurableReplica::checkpoint_path(dir, index),
             corpus.at("snapshot.v1.bin"));
  write_file(service::DurableReplica::wal_path(dir, index),
             corpus.at("wal_torn_tail.v1.bin"));
  write_file(service::DurableReplica::journal_path(dir, index),
             corpus.at("journal.v1.bin"));
}

/// State an evaluator reaches accepting the first `n` corpus updates.
std::vector<std::uint8_t> reference_state(std::size_t n) {
  ConditionEvaluator ce{corpus_condition()};
  const std::vector<Update> updates = corpus_updates();
  for (std::size_t i = 0; i < n; ++i) (void)ce.on_update(updates[i]);
  return wire::encode_evaluator_state(ce);
}

TEST(Restarting, V1DataDirRecoversThroughCurrentBinary) {
  const auto dir = fresh_dir("recover");
  install_v1_replica(dir, 0);

  service::DurabilityOptions opts;
  opts.dir = dir;
  opts.checkpoint_every = 0;
  service::DurableReplica replica{corpus_condition(), 0, opts};

  // Checkpoint (1..6) + WAL prefix (7..9); the torn seqno-10 frame is
  // detected, counted, and dropped.
  EXPECT_TRUE(replica.recovery().had_checkpoint);
  EXPECT_EQ(replica.recovery().wal_replayed, corpus_walled());
  EXPECT_GE(replica.recovery().corrupt_frames, 1u);
  EXPECT_EQ(wire::encode_evaluator_state(replica.evaluator()),
            reference_state(corpus_checkpointed() + corpus_walled()));
}

TEST(Restarting, RecoveryMigratesTheDirToVersionedFormats) {
  const auto dir = fresh_dir("migrate");
  install_v1_replica(dir, 0);

  service::DurabilityOptions opts;
  opts.dir = dir;
  opts.checkpoint_every = 0;
  {
    service::DurableReplica replica{corpus_condition(), 0, opts};
    ASSERT_GT(replica.recovery().wal_replayed, 0u);
    // The recovery compaction checkpoint rewrites both files in the
    // CURRENT format — this is the rolling upgrade happening.
  }
  std::ifstream ckpt{service::DurableReplica::checkpoint_path(dir, 0),
                     std::ios::binary};
  std::vector<std::uint8_t> ckpt_bytes{std::istreambuf_iterator<char>(ckpt),
                                       std::istreambuf_iterator<char>()};
  wire::FrameCursor cursor;
  cursor.feed(ckpt_bytes);
  cursor.finish();
  const auto payload = cursor.next();
  ASSERT_TRUE(payload.has_value());
  EXPECT_EQ((*payload)[0], 0x53);  // versioned 'S' snapshot, not v1 's'

  const store::RecoveredUpdates wal = store::recover_updates(
      service::DurableReplica::wal_path(dir, 0));
  EXPECT_TRUE(wal.versioned);
  EXPECT_EQ(wal.version, store::kLogFormatVersion);
  EXPECT_TRUE(wal.updates.empty());  // truncated by the compaction

  // Second restart: pure checkpoint load of the SAME state.
  service::DurableReplica again{corpus_condition(), 0, opts};
  EXPECT_TRUE(again.recovery().had_checkpoint);
  EXPECT_EQ(again.recovery().wal_replayed, 0u);
  EXPECT_EQ(wire::encode_evaluator_state(again.evaluator()),
            reference_state(corpus_checkpointed() + corpus_walled()));
}

TEST(Restarting, LiveServiceOverV1StateUnderKillsAndDuplicates) {
  const auto dir = fresh_dir("live");
  install_v1_replica(dir, 0);
  install_v1_replica(dir, 1);

  service::ServiceConfig cfg;
  cfg.condition = corpus_condition();
  cfg.num_replicas = 2;
  cfg.filter = FilterKind::kAd1;
  cfg.data_dir = dir;
  cfg.checkpoint_every = 4;
  cfg.record_journal = true;
  cfg.auto_restart = false;
  cfg.poll_interval = 5ms;

  std::vector<std::vector<Update>> journals;
  std::vector<Alert> displayed;
  {
    service::AlertService svc{cfg};
    const std::vector<std::uint16_t> ports = svc.replica_ports();
    net::UdpSocket udp{0};
    const auto send_all = [&](std::span<const std::uint8_t> payload) {
      const auto framed = wire::frame(payload);
      for (std::uint16_t port : ports) {
        try {
          udp.send_to(port, framed);
        } catch (const std::system_error&) {
        }
      }
    };

    // Every update the v1 epoch already accepted comes around again —
    // the recovered v1 watermarks must drop all of them.
    const std::vector<Update> old_epoch = corpus_updates();
    for (std::size_t i = 0; i + 1 < old_epoch.size(); ++i)
      send_all(wire::encode_update(old_epoch[i]));

    // Fresh updates 10..40 with a kill/restart mid-stream: recovery
    // crosses the version boundary AND a crash boundary in one run.
    for (SeqNo s = 10; s <= 40; ++s) {
      if (s == 18) svc.kill_replica(1);
      if (s == 28) svc.restart_replica(1);
      send_all(wire::encode_update(
          Update{0, s, (s % 2 == 1) ? 80.0 : 20.0}));
      std::this_thread::sleep_for(1ms);
    }
    const auto marker = net::encode_end_marker(0);
    for (int attempt = 0; attempt < 50; ++attempt) {
      send_all(marker);
      if (svc.await_dm_ends(1, 100ms)) break;
    }
    ASSERT_TRUE(svc.await_idle(60ms, 5s));
    svc.drain();
    displayed = svc.displayed();
    journals.push_back(svc.replica_journal(0));
    journals.push_back(svc.replica_journal(1));
  }

  // Each journal: the v1 epoch's 1..9 exactly once, then a strictly
  // increasing subsequence of 10..40 — a single watermark regression
  // across the boundary would re-journal a duplicate here.
  for (const std::vector<Update>& journal : journals) {
    ASSERT_GE(journal.size(), 9u);
    for (std::size_t i = 0; i < 9; ++i)
      EXPECT_EQ(journal[i].seqno, static_cast<SeqNo>(i + 1));
    SeqNo last = 9;
    for (std::size_t i = 9; i < journal.size(); ++i) {
      EXPECT_GT(journal[i].seqno, last);
      EXPECT_LE(journal[i].seqno, 40u);
      last = journal[i].seqno;
    }
  }
  // Replica 0 was never killed: it accepts the whole fresh stream.
  EXPECT_EQ(journals[0].size(), 9u + 31u);

  // Displayed ⊆ raised over the full cross-version journals.
  std::set<AlertKey> raised;
  for (const std::vector<Update>& journal : journals)
    for (const Alert& a : evaluate_trace(corpus_condition(), journal))
      raised.insert(a.key());
  EXPECT_FALSE(displayed.empty());
  for (const Alert& a : displayed) EXPECT_TRUE(raised.contains(a.key()));
}

// ---- forward compatibility: current output, older reader ----------------

TEST(Restarting, V1ReaderRejectsVersionedSnapshotCleanly) {
  ConditionEvaluator ce{corpus_condition()};
  for (const Update& u : corpus_updates()) (void)ce.on_update(u);
  const auto v2 = wire::encode_evaluator_state(ce);
  ConditionEvaluator old_reader{corpus_condition()};
  EXPECT_THROW(wire::legacy::decode_evaluator_state_v1(v2, old_reader),
               wire::DecodeError);
}

TEST(Restarting, UnknownSnapshotExtensionIsSkipped) {
  ConditionEvaluator ce{corpus_condition()};
  for (const Update& u : corpus_updates()) (void)ce.on_update(u);
  const auto v2 = wire::encode_evaluator_state(ce);

  // Replace the trailing empty extension section with one unknown entry
  // — the shape of a v2.x writer this binary predates.
  std::vector<std::uint8_t> extended{v2.begin(), v2.end() - 1};
  wire::Writer w;
  w.varint(1);
  w.u8(0x7E);
  const std::uint8_t blob[] = {1, 2, 3, 4};
  w.varint(std::size(blob));
  w.raw(blob);
  const auto section = w.bytes();
  extended.insert(extended.end(), section.begin(), section.end());

  ConditionEvaluator got{corpus_condition()};
  wire::decode_evaluator_state(extended, got);
  EXPECT_EQ(wire::encode_evaluator_state(got), v2);
}

TEST(Restarting, FutureMajorSnapshotIsRejectedTyped) {
  ConditionEvaluator ce{corpus_condition()};
  const auto v2 = wire::encode_evaluator_state(ce);
  std::vector<std::uint8_t> future = v2;
  future[1] = 99;  // the major byte
  ConditionEvaluator got{corpus_condition()};
  try {
    wire::decode_evaluator_state(future, got);
    FAIL() << "major-99 snapshot was accepted";
  } catch (const wire::UnsupportedVersion& e) {
    EXPECT_EQ(e.got().major, 99);
    EXPECT_EQ(e.max_major(), wire::kSnapshotMaxMajor);
  }
}

TEST(Restarting, VersionedWalSkipsUnknownRecordTypesV1CountsThemCorrupt) {
  const Update u{0, 1, 42.0};
  wire::Writer unknown;
  unknown.u8(0x7A);  // record type no current reader knows
  unknown.u8(0xFF);

  // In a versioned file the record is skipped and counted...
  std::vector<std::uint8_t> versioned = wire::frame(store::encode_log_header(
      store::kUpdateLogFormatId, store::kLogFormatVersion));
  {
    const auto f = wire::frame(wire::encode_update(u));
    versioned.insert(versioned.end(), f.begin(), f.end());
    const auto g = wire::frame(unknown.bytes());
    versioned.insert(versioned.end(), g.begin(), g.end());
  }
  const store::RecoveredUpdates from_v2 =
      store::recover_update_bytes(versioned);
  EXPECT_EQ(from_v2.updates.size(), 1u);
  EXPECT_EQ(from_v2.skipped_records, 1u);
  EXPECT_EQ(from_v2.corrupt_frames, 0u);

  // ...in a headerless v1 file the same frame counts as corruption,
  // exactly as the v1 binary treated it.
  std::vector<std::uint8_t> v1 =
      wire::legacy::encode_update_log_v1(std::vector<Update>{u});
  const auto g = wire::frame(unknown.bytes());
  v1.insert(v1.end(), g.begin(), g.end());
  const store::RecoveredUpdates from_v1 = store::recover_update_bytes(v1);
  EXPECT_EQ(from_v1.updates.size(), 1u);
  EXPECT_EQ(from_v1.skipped_records, 0u);
  EXPECT_GE(from_v1.corrupt_frames, 1u);
}

TEST(Restarting, FutureMajorLogHeaderIsRejectedTyped) {
  for (const std::uint8_t format_id :
       {store::kUpdateLogFormatId, store::kAlertLogFormatId}) {
    const std::vector<std::uint8_t> file = wire::frame(
        store::encode_log_header(format_id, wire::VersionHeader{3, 0}));
    if (format_id == store::kUpdateLogFormatId) {
      EXPECT_THROW((void)store::recover_update_bytes(file),
                   wire::UnsupportedVersion);
    } else {
      EXPECT_THROW((void)store::recover_log_bytes(file),
                   wire::UnsupportedVersion);
    }
  }
}

// ---- the admin socket across a version boundary -------------------------

service::AdminResponse admin_exchange(net::TcpStream& conn,
                                      const service::AdminRequest& req) {
  conn.write_all(wire::frame(service::encode_admin_request(req)));
  wire::FrameCursor cursor;
  const auto deadline = std::chrono::steady_clock::now() + 5s;
  for (;;) {
    if (auto payload = cursor.next())
      return service::decode_admin_response(*payload);
    if (std::chrono::steady_clock::now() > deadline)
      throw std::runtime_error("admin response timed out");
    const auto chunk = conn.read_some(1s);
    if (chunk && chunk->empty())
      throw std::runtime_error("admin connection closed");
    if (chunk) cursor.feed(*chunk);
  }
}

TEST(Restarting, UnknownAdminCommandGetsStructuredUnsupportedReply) {
  service::ServiceConfig cfg;
  cfg.condition = corpus_condition();
  cfg.num_replicas = 1;
  cfg.data_dir = fresh_dir("admin");
  cfg.auto_restart = false;
  cfg.poll_interval = 5ms;
  service::AlertService svc{cfg};

  net::TcpStream conn = net::TcpStream::connect(svc.admin_port());

  // A "newer client" sends command 42 with its version declared. The
  // server must answer with the structured unsupported block — and the
  // connection must survive for the downgraded retry.
  service::AdminRequest unknown;
  unknown.known = false;
  unknown.raw_command = 42;
  const service::AdminResponse resp = admin_exchange(conn, unknown);
  EXPECT_FALSE(resp.ok);
  ASSERT_TRUE(resp.unsupported.has_value());
  EXPECT_EQ(resp.unsupported->command, 42);
  EXPECT_EQ(resp.unsupported->server_version, service::kAdminVersion);
  EXPECT_EQ(resp.unsupported->min_major, service::kAdminMinMajor);
  EXPECT_EQ(resp.unsupported->max_major, service::kAdminMaxMajor);
  EXPECT_EQ(resp.unsupported->max_command,
            static_cast<std::uint8_t>(service::AdminCommand::kMetricsProm));

  const service::AdminResponse status = admin_exchange(
      conn, service::AdminRequest{service::AdminCommand::kStatus, 0});
  ASSERT_TRUE(status.ok);
  ASSERT_TRUE(status.status.has_value());
  EXPECT_EQ(status.status->replicas.size(), 1u);

  svc.drain();
  std::filesystem::remove_all(cfg.data_dir);
}

}  // namespace
}  // namespace rcm::testing
