#include "v1_corpus.hpp"

#include "store/file_log.hpp"
#include "swarm/fuzzer.hpp"
#include "swarm/record.hpp"
#include "swarm/runner.hpp"
#include "swarm/spec.hpp"
#include "wire/buffer.hpp"
#include "wire/codec.hpp"
#include "wire/frame.hpp"
#include "wire/legacy.hpp"
#include "wire/session.hpp"
#include "wire/shard.hpp"

namespace rcm::testing {
namespace {

/// One headerless framed record, exactly as a v1 FileAlertLog wrote it.
void append_v1_record(std::vector<std::uint8_t>& file, std::uint8_t type,
                      std::span<const std::uint8_t> body) {
  wire::Writer w;
  w.u8(type);
  w.raw(body);
  const auto framed = wire::frame(w.bytes());
  file.insert(file.end(), framed.begin(), framed.end());
}

std::vector<std::uint8_t> build_snapshot_fixture() {
  ConditionEvaluator ce{corpus_condition()};
  const std::vector<Update> updates = corpus_updates();
  for (std::size_t i = 0; i < corpus_checkpointed(); ++i)
    (void)ce.on_update(updates[i]);
  return wire::frame(wire::legacy::encode_evaluator_state_v1(ce));
}

std::vector<std::uint8_t> build_wal_fixture() {
  const std::vector<Update> updates = corpus_updates();
  const std::vector<Update> walled{
      updates.begin() + static_cast<std::ptrdiff_t>(corpus_checkpointed()),
      updates.begin() + static_cast<std::ptrdiff_t>(corpus_checkpointed() +
                                                    corpus_walled())};
  std::vector<std::uint8_t> file =
      wire::legacy::encode_update_log_v1(walled);
  // The torn tail: the crash cut the append of seqno 10 mid-frame.
  const auto torn = wire::frame(wire::encode_update(updates.back()));
  file.insert(file.end(), torn.begin(), torn.begin() +
              static_cast<std::ptrdiff_t>(torn.size() / 2));
  return file;
}

std::vector<std::uint8_t> build_journal_fixture() {
  const std::vector<Update> updates = corpus_updates();
  // The journal records everything the replica ever ACCEPTED: 1..9. The
  // torn seqno 10 never made it.
  const std::vector<Update> accepted{updates.begin(), updates.end() - 1};
  return wire::legacy::encode_update_log_v1(accepted);
}

std::vector<std::uint8_t> build_alert_log_fixture() {
  // Replay the checkpointed prefix and log every alert it fired, plus a
  // cumulative ack of entry 0 — the shape a v1 CE that delivered its
  // first alert and then crashed leaves behind.
  ConditionEvaluator ce{corpus_condition()};
  const std::vector<Update> updates = corpus_updates();
  std::vector<std::uint8_t> file;
  for (std::size_t i = 0; i < corpus_checkpointed(); ++i) {
    if (const auto alert = ce.on_update(updates[i])) {
      append_v1_record(file, store::kAlertRecord,
                       wire::encode_alert(
                           *alert, wire::AlertEncoding::kFullHistories));
    }
  }
  wire::Writer ack;
  ack.varint(0);
  append_v1_record(file, store::kAckRecord, ack.bytes());
  return file;
}

std::vector<std::uint8_t> build_swarm_record_fixture() {
  // A version-1 counterexample record (no workload-unit section), framed
  // exactly as v1 save_record wrote it. sample_spec and the simulator
  // are deterministic, so these bytes are stable.
  const swarm::SwarmSpec spec = swarm::sample_spec(11, 0);
  const swarm::RunCheck chk = swarm::execute_and_check(spec);
  const swarm::CounterexampleRecord record = swarm::make_record(spec, chk);
  wire::Writer w;
  w.u8(0x57);  // record tag
  w.u8(1);     // version 1: spec | violation kinds | digest | run bytes
  swarm::encode_spec(w, record.spec.base);
  w.varint(record.violation_kinds.size());
  for (swarm::ViolationKind k : record.violation_kinds)
    w.u8(static_cast<std::uint8_t>(k));
  w.u64(record.digest);
  w.varint(record.run_bytes.size());
  w.raw(record.run_bytes);
  return wire::frame(w.bytes());
}

std::vector<std::uint8_t> build_cursor_file_fixture() {
  // A v1 session cursor file: versioned header, then per-session records
  // with a duplicate for worker-1 (last writer wins: acked 7, evicted).
  // Pins both the byte layout and the LWW replay semantics.
  std::vector<std::uint8_t> file;
  const auto append = [&file](std::span<const std::uint8_t> payload) {
    const auto framed = wire::frame(payload);
    file.insert(file.end(), framed.begin(), framed.end());
  };
  append(wire::encode_cursor_file_header());
  append(wire::encode_cursor_record("worker-1", {3, false}));
  append(wire::encode_cursor_record("worker-2", {1, false}));
  append(wire::encode_cursor_record("worker-1", {7, true}));
  return file;
}

std::vector<std::uint8_t> build_shard_map_fixture() {
  // The v1 shard map the current encoder writes today. Once checked in,
  // these bytes are frozen: any future layout change must go through a
  // new major (or a skippable extension), never a silent rewrite.
  return wire::encode_shard_map(corpus_shard_map());
}

std::vector<std::uint8_t> build_handoff_fixture() {
  return wire::encode_handoff(corpus_handoff());
}

std::vector<std::uint8_t> build_health_fixture() {
  // v1 of the instance-health document the current encoder writes today
  // (rates use exactly-representable doubles so the f64 bytes are
  // deterministic). Frozen like shardmap/handoff: layout changes go
  // through a new major or a skippable extension.
  return wire::encode_instance_health(corpus_instance_health());
}

}  // namespace

wire::ShardMap corpus_shard_map() {
  wire::ShardMap m;
  m.epoch = 3;
  m.shards.push_back(wire::ShardMapEntry{0, 32, {40001, 40002}});
  m.shards.push_back(wire::ShardMapEntry{2, 32, {40003}});
  return m;
}

wire::HandoffPacket corpus_handoff() {
  wire::HandoffPacket p;
  p.epoch = 3;
  p.from = 1;
  p.to = 2;
  p.replica = 0;
  wire::HandoffEntry e;
  e.var = 0;
  e.watermark = 9;
  e.window = {Update{0, 8, 20.0}, Update{0, 9, 80.0}};
  p.entries.push_back(e);
  return p;
}

wire::InstanceHealth corpus_instance_health() {
  wire::InstanceHealth h;
  h.role = wire::InstanceRole::kShard;
  h.shard_id = 1;
  h.epoch = 3;
  h.healthy = false;
  h.uptime_ns = 5'000'000'000;
  h.sessions = 2;
  h.max_session_lag = 4;
  h.alert_queue_depth = 1;
  h.replicas.push_back(wire::ReplicaHealth{0, true, 1, 12'000'000, 9, 3});
  h.replicas.push_back(wire::ReplicaHealth{1, false, 2, 0, 6, 2});
  h.rates.push_back(
      wire::RateSample{"service.ingest.datagrams", 120.0, 95.5, 40.25});
  h.degradations.push_back(wire::Degradation{
      wire::DegradationKind::kReplicaDown, "replica 1 down", 1});
  return h;
}

ConditionPtr corpus_condition() {
  return swarm::build_condition(swarm::ConditionKind::kRiseAggressive, 10.0);
}

std::vector<Update> corpus_updates() {
  std::vector<Update> updates;
  for (SeqNo s = 1; s <= 10; ++s)
    updates.push_back(Update{0, s, (s % 2 == 1) ? 80.0 : 20.0});
  return updates;
}

std::size_t corpus_checkpointed() { return 6; }
std::size_t corpus_walled() { return 3; }

std::vector<V1Fixture> build_v1_corpus() {
  std::vector<V1Fixture> corpus;
  corpus.push_back({"snapshot.v1.bin", build_snapshot_fixture()});
  corpus.push_back({"wal_torn_tail.v1.bin", build_wal_fixture()});
  corpus.push_back({"journal.v1.bin", build_journal_fixture()});
  corpus.push_back({"alert_log.v1.bin", build_alert_log_fixture()});
  // v1 admin bytes are short enough to write by hand — and writing them
  // by hand is the point: they pin the layout independently of any
  // encoder, current or legacy.
  corpus.push_back({"admin_request_status.v1.bin", {0x00, 0x00}});
  corpus.push_back({"admin_request_restart_r1.v1.bin", {0x02, 0x01}});
  // 'O' | empty error string | no status | no body — and nothing else:
  // the v2 encoder MUST keep plain responses byte-identical to this.
  corpus.push_back({"admin_response_ok.v1.bin", {0x4F, 0x00, 0x00, 0x00}});
  corpus.push_back({"swarm_record.v1.bin", build_swarm_record_fixture()});
  corpus.push_back({"cursors.v1.bin", build_cursor_file_fixture()});
  corpus.push_back({"shardmap.v1.bin", build_shard_map_fixture()});
  corpus.push_back({"handoff.v1.bin", build_handoff_fixture()});
  // A 2.3 peer's instance-scope health request, written by hand:
  // kHealth (9) | replica 0 | 2 extensions — version {2,3} under tag
  // 'V', scope kInstance (1) under tag 'C'.
  corpus.push_back({"admin_request_health_instance.v1.bin",
                    {0x09, 0x00, 0x02, 0x56, 0x02, 0x02, 0x03, 0x43, 0x01,
                     0x01}});
  corpus.push_back({"health.v1.bin", build_health_fixture()});
  return corpus;
}

}  // namespace rcm::testing
