// rcm::service — replicated alert service over real sockets.
//
// The end-to-end test here is the PR's acceptance gate: kill a CE
// replica mid-stream, restart it, and require the exact checkers in
// src/check/ to report the SAME completeness/consistency verdicts as
// the corresponding non-replicated run, for both AD-1 and AD-4.
#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <filesystem>
#include <string_view>
#include <system_error>
#include <thread>
#include <vector>

#include "check/properties.hpp"
#include "core/displayer.hpp"
#include "core/evaluator.hpp"
#include "core/filters.hpp"
#include "net/deployment.hpp"
#include "net/socket.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "service/admin.hpp"
#include "service/alert_service.hpp"
#include "service/supervisor.hpp"
#include "swarm/spec.hpp"
#include "wire/codec.hpp"
#include "wire/frame.hpp"

namespace rcm::service {
namespace {

using namespace std::chrono_literals;

std::filesystem::path fresh_dir(const std::string& name) {
  const std::filesystem::path dir =
      std::filesystem::temp_directory_path() / ("rcm_service_" + name);
  std::filesystem::remove_all(dir);
  return dir;  // the service creates it
}

ConditionPtr threshold_condition() {
  return swarm::build_condition(swarm::ConditionKind::kThreshold, 50.0);
}

/// Single-variable trace; every even index fires the threshold alert.
std::vector<Update> make_trace(std::size_t n) {
  std::vector<Update> trace;
  for (std::size_t i = 0; i < n; ++i)
    trace.push_back(Update{0, static_cast<SeqNo>(i + 1),
                           (i % 2 == 0) ? 80.0 : 20.0});
  return trace;
}

/// Sends one framed payload to every port. Datagrams to a killed
/// replica's closed port may surface ECONNREFUSED (the ICMP echo of the
/// paper's lossy link) — that loss is exactly what we are testing.
void send_frame(net::UdpSocket& udp, const std::vector<std::uint16_t>& ports,
                std::span<const std::uint8_t> payload) {
  const std::vector<std::uint8_t> framed = wire::frame(payload);
  for (std::uint16_t port : ports) {
    try {
      udp.send_to(port, framed);
    } catch (const std::system_error&) {
    }
  }
}

/// Sends END markers until the service acknowledges them durably.
void deliver_ends(net::UdpSocket& udp, AlertService& svc,
                  const std::vector<std::uint16_t>& ports) {
  const std::vector<std::uint8_t> marker = net::encode_end_marker(0);
  for (int attempt = 0; attempt < 50; ++attempt) {
    send_frame(udp, ports, marker);
    if (svc.await_dm_ends(1, 100ms)) return;
  }
  FAIL() << "END marker never acknowledged";
}

/// The non-replicated reference: one CE, one AD, the full stream.
check::PropertyReport reference_verdicts(const ConditionPtr& cond,
                                         FilterKind filter,
                                         const std::vector<Update>& trace) {
  ConditionEvaluator ce{cond};
  AlertDisplayer ad{make_filter(filter, {0})};
  for (const Update& u : trace)
    if (auto alert = ce.on_update(u)) ad.on_alert(*alert);
  check::SystemRun run;
  run.condition = cond;
  run.ce_inputs = {trace};
  run.displayed = ad.displayed();
  return check::check_run(run);
}

// ---- supervisor ---------------------------------------------------------

TEST(ReplicaSupervisor, BackoffDoublesAndCaps) {
  BackoffPolicy policy;
  policy.initial = 10ms;
  policy.factor = 2.0;
  policy.max = 80ms;
  policy.reset_after = 100ms;
  ReplicaSupervisor sup{policy, 2};

  EXPECT_EQ(sup.next_delay(0), 10ms);
  EXPECT_EQ(sup.next_delay(0), 20ms);
  EXPECT_EQ(sup.next_delay(0), 40ms);
  EXPECT_EQ(sup.next_delay(0), 80ms);
  EXPECT_EQ(sup.next_delay(0), 80ms);  // capped
  EXPECT_EQ(sup.consecutive_failures(0), 5u);
  EXPECT_EQ(sup.restarts(0), 5u);

  // Replica 1's streak is independent.
  EXPECT_EQ(sup.next_delay(1), 10ms);

  // A short uptime does not clear the streak; a healthy one does.
  sup.note_healthy(0, 50ms);
  EXPECT_EQ(sup.next_delay(0), 80ms);
  sup.note_healthy(0, 100ms);
  EXPECT_EQ(sup.consecutive_failures(0), 0u);
  EXPECT_EQ(sup.next_delay(0), 10ms);
  EXPECT_EQ(sup.restarts(0), 7u);
}

TEST(ReplicaSupervisor, RejectsDegeneratePolicies) {
  BackoffPolicy zero;
  zero.initial = 0ms;
  EXPECT_THROW((ReplicaSupervisor{zero, 1}), std::invalid_argument);

  BackoffPolicy shrink;
  shrink.factor = 0.5;
  EXPECT_THROW((ReplicaSupervisor{shrink, 1}), std::invalid_argument);

  BackoffPolicy inverted;
  inverted.initial = 100ms;
  inverted.max = 10ms;
  EXPECT_THROW((ReplicaSupervisor{inverted, 1}), std::invalid_argument);
}

// ---- admin codec --------------------------------------------------------

TEST(AdminCodec, RequestRoundTripsEveryCommand) {
  for (AdminCommand cmd :
       {AdminCommand::kStatus, AdminCommand::kKill, AdminCommand::kRestart,
        AdminCommand::kCheckpoint, AdminCommand::kDrain,
        AdminCommand::kMetrics, AdminCommand::kTraceDump}) {
    AdminRequest req;
    req.command = cmd;
    req.replica = 7;
    const AdminRequest back = decode_admin_request(encode_admin_request(req));
    EXPECT_EQ(back.command, cmd);
    EXPECT_EQ(back.replica, 7u);
  }
}

TEST(AdminCodec, ResponseRoundTripsFullStatus) {
  AdminResponse resp;
  resp.ok = true;
  ServiceStatus status;
  status.ingested_datagrams = 1234;
  status.displayed = 56;
  status.subscribers = 2;
  status.dm_ends = 3;
  ReplicaStatus r0;
  r0.state = ReplicaState::kRunning;
  r0.port = 40001;
  r0.incarnation = 1;
  r0.accepted = 600;
  r0.wal_records = 88;
  r0.checkpoints = 2;
  ReplicaStatus r1;
  r1.state = ReplicaState::kDown;
  r1.port = 40002;
  r1.incarnation = 3;
  r1.recovered_wal = 17;
  status.replicas = {r0, r1};
  resp.status = status;

  const AdminResponse back =
      decode_admin_response(encode_admin_response(resp));
  ASSERT_TRUE(back.ok);
  ASSERT_TRUE(back.status.has_value());
  EXPECT_EQ(back.status->ingested_datagrams, 1234u);
  EXPECT_EQ(back.status->displayed, 56u);
  EXPECT_EQ(back.status->subscribers, 2u);
  EXPECT_EQ(back.status->dm_ends, 3u);
  ASSERT_EQ(back.status->replicas.size(), 2u);
  EXPECT_EQ(back.status->replicas[0].state, ReplicaState::kRunning);
  EXPECT_EQ(back.status->replicas[0].port, 40001);
  EXPECT_EQ(back.status->replicas[0].accepted, 600u);
  EXPECT_EQ(back.status->replicas[0].wal_records, 88u);
  EXPECT_EQ(back.status->replicas[0].checkpoints, 2u);
  EXPECT_EQ(back.status->replicas[1].state, ReplicaState::kDown);
  EXPECT_EQ(back.status->replicas[1].incarnation, 3u);
  EXPECT_EQ(back.status->replicas[1].recovered_wal, 17u);
}

TEST(AdminCodec, BodyResponseRoundTrips) {
  AdminResponse resp;
  resp.ok = true;
  resp.body = "{\"counters\": {\"a\": 1}}";
  const AdminResponse back =
      decode_admin_response(encode_admin_response(resp));
  ASSERT_TRUE(back.ok);
  EXPECT_FALSE(back.status.has_value());
  ASSERT_TRUE(back.body.has_value());
  EXPECT_EQ(*back.body, "{\"counters\": {\"a\": 1}}");

  // Absent body stays absent (the has_body flag round-trips).
  AdminResponse plain;
  plain.ok = true;
  const AdminResponse plain_back =
      decode_admin_response(encode_admin_response(plain));
  EXPECT_TRUE(plain_back.ok);
  EXPECT_FALSE(plain_back.body.has_value());
}

TEST(AdminCodec, RejectsOversizedBody) {
  AdminResponse resp;
  resp.ok = true;
  resp.body = std::string((1u << 20) + 1, 'x');
  EXPECT_THROW((void)decode_admin_response(encode_admin_response(resp)),
               wire::DecodeError);
}

TEST(AdminCodec, ErrorResponseRoundTrips) {
  AdminResponse resp;
  resp.ok = false;
  resp.error = "no such replica";
  const AdminResponse back =
      decode_admin_response(encode_admin_response(resp));
  EXPECT_FALSE(back.ok);
  EXPECT_EQ(back.error, "no such replica");
  EXPECT_FALSE(back.status.has_value());
}

TEST(AdminCodec, RejectsMalformedInput) {
  EXPECT_THROW((void)decode_admin_request({}), wire::DecodeError);

  // 11 is one past kMetricsProm, the newest command this binary knows.
  std::vector<std::uint8_t> unknown_cmd = {11, 0};
  EXPECT_THROW((void)decode_admin_request(unknown_cmd), wire::DecodeError);

  std::vector<std::uint8_t> trailing =
      encode_admin_request(AdminRequest{AdminCommand::kStatus, 0});
  trailing.push_back(0xff);
  EXPECT_THROW((void)decode_admin_request(trailing), wire::DecodeError);

  std::vector<std::uint8_t> bad_status =
      encode_admin_response(AdminResponse{});
  bad_status[0] = 'X';
  EXPECT_THROW((void)decode_admin_response(bad_status), wire::DecodeError);

  std::vector<std::uint8_t> short_resp = {'O'};
  EXPECT_THROW((void)decode_admin_response(short_resp), wire::DecodeError);
}

// ---- end-to-end crash recovery (ISSUE acceptance test) ------------------

TEST(AlertServiceE2E, KillRestartMatchesNonReplicatedVerdicts) {
  const ConditionPtr cond = threshold_condition();
  const std::vector<Update> trace = make_trace(40);

  for (FilterKind filter : {FilterKind::kAd1, FilterKind::kAd4}) {
    const std::string tag =
        std::string(filter_kind_name(filter));
    SCOPED_TRACE(tag);

    ServiceConfig cfg;
    cfg.condition = cond;
    cfg.num_replicas = 2;
    cfg.filter = filter;
    cfg.data_dir = fresh_dir("e2e_" + tag);
    cfg.checkpoint_every = 4;
    cfg.record_journal = true;
    cfg.auto_restart = false;
    cfg.poll_interval = 5ms;
    AlertService svc{cfg};
    const std::vector<std::uint16_t> ports = svc.replica_ports();

    net::UdpSocket udp{0};
    for (std::size_t k = 0; k < trace.size(); ++k) {
      if (k == 15) svc.kill_replica(1);   // crash mid-stream
      if (k == 25) svc.restart_replica(1);  // rejoin from checkpoint+WAL
      send_frame(udp, ports, wire::encode_update(trace[k]));
      // Pace the stream so live replicas keep up in lockstep; the AD-4
      // verdict comparison assumes no cross-replica alert reordering.
      std::this_thread::sleep_for(2ms);
    }
    deliver_ends(udp, svc, ports);
    ASSERT_TRUE(svc.await_idle(80ms, 5s));
    svc.drain();

    // The killed replica restarted once and demonstrably lost stream.
    EXPECT_EQ(svc.replica_restarts(1), 1u);
    std::vector<std::vector<Update>> journals = {svc.replica_journal(0),
                                                 svc.replica_journal(1)};
    ASSERT_EQ(journals[0].size(), trace.size())
        << "surviving replica must have seen the whole stream";
    EXPECT_LT(journals[1].size(), trace.size())
        << "killed replica must have missed its downtime window";
    EXPECT_GT(journals[1].size(), 0u);

    const std::vector<Alert> displayed = svc.displayed();
    ASSERT_FALSE(displayed.empty());

    check::SystemRun run;
    run.condition = cond;
    run.ce_inputs = journals;
    run.displayed = displayed;
    const check::PropertyReport replicated = check::check_run(run);
    const check::PropertyReport reference =
        reference_verdicts(cond, filter, trace);

    // The acceptance bar: replication + crash + recovery must be
    // invisible to the paper's exact property checkers.
    EXPECT_EQ(replicated.complete, reference.complete);
    EXPECT_EQ(replicated.consistent, reference.consistent);
    EXPECT_EQ(replicated.ordered, check::Verdict::kHolds);
    EXPECT_EQ(reference.ordered, check::Verdict::kHolds);
    // For a threshold condition both filters guarantee these outright.
    EXPECT_EQ(replicated.complete, check::Verdict::kHolds);
    EXPECT_EQ(replicated.consistent, check::Verdict::kHolds);

    std::filesystem::remove_all(cfg.data_dir);
  }
}

// ---- subscribers --------------------------------------------------------

TEST(AlertService, SubscriberReceivesEveryDisplayedAlertFramed) {
  ServiceConfig cfg;
  cfg.condition = threshold_condition();
  cfg.num_replicas = 1;
  cfg.filter = FilterKind::kAd1;
  cfg.data_dir = fresh_dir("subscriber");
  cfg.auto_restart = false;
  cfg.poll_interval = 5ms;
  AlertService svc{cfg};

  net::TcpStream sub = net::TcpStream::connect(svc.subscriber_port());
  // The acceptor polls at 50ms; wait until the service has the fan-out
  // registered before feeding, so no alert misses the subscriber.
  for (int i = 0; i < 100 && svc.status().subscribers == 0; ++i)
    std::this_thread::sleep_for(10ms);
  ASSERT_EQ(svc.status().subscribers, 1u);

  const std::vector<Update> trace = make_trace(20);
  const std::vector<std::uint16_t> ports = svc.replica_ports();
  net::UdpSocket udp{0};
  for (const Update& u : trace) send_frame(udp, ports, wire::encode_update(u));
  deliver_ends(udp, svc, ports);
  ASSERT_TRUE(svc.await_idle(80ms, 5s));
  svc.drain();  // closes subscriber connections -> EOF below

  const std::vector<Alert> displayed = svc.displayed();
  ASSERT_FALSE(displayed.empty());

  wire::FrameCursor cursor;
  std::vector<Alert> received;
  for (;;) {
    const auto chunk = sub.read_some(2s);
    ASSERT_TRUE(chunk.has_value()) << "subscriber read timed out";
    if (chunk->empty()) break;  // EOF
    cursor.feed(*chunk);
    while (auto payload = cursor.next())
      received.push_back(wire::decode_alert(*payload).alert);
  }
  ASSERT_EQ(received.size(), displayed.size());
  for (std::size_t i = 0; i < received.size(); ++i)
    EXPECT_EQ(received[i].key(), displayed[i].key());
}

// ---- durable END markers ------------------------------------------------

TEST(AlertService, EndMarkersSurviveWholeServiceRestart) {
  const auto dir = fresh_dir("ends");
  ServiceConfig cfg;
  cfg.condition = threshold_condition();
  cfg.num_replicas = 1;
  cfg.data_dir = dir;
  cfg.auto_restart = false;
  cfg.poll_interval = 5ms;
  {
    AlertService svc{cfg};
    net::UdpSocket udp{0};
    deliver_ends(udp, svc, svc.replica_ports());
    svc.drain();
  }
  AlertService revived{cfg};
  // Loaded from ends.log before any datagram arrives.
  EXPECT_TRUE(revived.await_dm_ends(1, 0ms));
  revived.drain();
  std::filesystem::remove_all(dir);
}

// ---- admin protocol over a live socket ----------------------------------

AdminResponse admin_exchange(net::TcpStream& conn, const AdminRequest& req) {
  conn.write_all(wire::frame(encode_admin_request(req)));
  wire::FrameCursor cursor;
  const auto deadline = std::chrono::steady_clock::now() + 5s;
  for (;;) {
    if (auto payload = cursor.next())
      return decode_admin_response(*payload);
    if (std::chrono::steady_clock::now() > deadline)
      throw std::runtime_error("admin response timed out");
    const auto chunk = conn.read_some(1s);
    if (chunk && chunk->empty())
      throw std::runtime_error("admin connection closed");
    if (chunk) cursor.feed(*chunk);
  }
}

TEST(AlertService, AdminProtocolDrivesReplicaLifecycle) {
  ServiceConfig cfg;
  cfg.condition = threshold_condition();
  cfg.num_replicas = 2;
  cfg.data_dir = fresh_dir("admin");
  cfg.auto_restart = false;
  cfg.poll_interval = 5ms;
  AlertService svc{cfg};

  net::TcpStream conn = net::TcpStream::connect(svc.admin_port());

  AdminResponse resp =
      admin_exchange(conn, AdminRequest{AdminCommand::kStatus, 0});
  ASSERT_TRUE(resp.ok);
  ASSERT_TRUE(resp.status.has_value());
  ASSERT_EQ(resp.status->replicas.size(), 2u);
  EXPECT_EQ(resp.status->replicas[0].state, ReplicaState::kRunning);
  EXPECT_EQ(resp.status->replicas[1].state, ReplicaState::kRunning);
  EXPECT_EQ(resp.status->replicas[0].port, svc.replica_port(0));
  EXPECT_EQ(resp.status->replicas[1].port, svc.replica_port(1));

  resp = admin_exchange(conn, AdminRequest{AdminCommand::kKill, 1});
  ASSERT_TRUE(resp.ok);
  resp = admin_exchange(conn, AdminRequest{AdminCommand::kStatus, 0});
  ASSERT_TRUE(resp.ok && resp.status);
  EXPECT_EQ(resp.status->replicas[1].state, ReplicaState::kDown);

  resp = admin_exchange(conn, AdminRequest{AdminCommand::kRestart, 1});
  ASSERT_TRUE(resp.ok);
  resp = admin_exchange(conn, AdminRequest{AdminCommand::kStatus, 0});
  ASSERT_TRUE(resp.ok && resp.status);
  EXPECT_EQ(resp.status->replicas[1].state, ReplicaState::kRunning);
  EXPECT_EQ(resp.status->replicas[1].incarnation, 2u);

  resp = admin_exchange(conn, AdminRequest{AdminCommand::kCheckpoint, 0});
  EXPECT_TRUE(resp.ok);

  // Out-of-range replica comes back as a protocol error, not a crash.
  resp = admin_exchange(conn, AdminRequest{AdminCommand::kKill, 9});
  EXPECT_FALSE(resp.ok);
  EXPECT_FALSE(resp.error.empty());

  EXPECT_FALSE(svc.drain_requested());
  resp = admin_exchange(conn, AdminRequest{AdminCommand::kDrain, 0});
  ASSERT_TRUE(resp.ok);
  EXPECT_TRUE(svc.await_drain_request(2s));
  svc.drain();
  std::filesystem::remove_all(cfg.data_dir);
}

// ---- live telemetry + alert provenance ----------------------------------

TEST(AlertService, MetricsTraceDumpAndProvenanceEndToEnd) {
  obs::trace::clear();
  obs::trace::set_enabled(true);

  ServiceConfig cfg;
  cfg.condition = threshold_condition();
  cfg.num_replicas = 1;
  cfg.filter = FilterKind::kAd1;
  cfg.data_dir = fresh_dir("telemetry");
  cfg.record_journal = true;
  cfg.auto_restart = false;
  cfg.poll_interval = 5ms;
  AlertService svc{cfg};

  // Feed with trace contexts attached, the way rcm_service_client does.
  const std::vector<Update> trace = make_trace(20);
  net::UdpSocket udp{0};
  for (const Update& u : trace) {
    const obs::trace::TraceContext ctx{
        obs::trace::derive_trace_id(u.var, u.seqno), 0};
    send_frame(udp, svc.replica_ports(), wire::encode_update(u, ctx));
  }
  deliver_ends(udp, svc, svc.replica_ports());
  ASSERT_TRUE(svc.await_idle(80ms, 5s));

  // Live admin telemetry, queried before drain.
  net::TcpStream conn = net::TcpStream::connect(svc.admin_port());
  AdminResponse metrics =
      admin_exchange(conn, AdminRequest{AdminCommand::kMetrics, 0});
  ASSERT_TRUE(metrics.ok);
  ASSERT_TRUE(metrics.body.has_value());
  EXPECT_NE(metrics.body->find("\"counters\""), std::string::npos);
#if RCM_METRICS_ENABLED
  // Counter contents are compiled out under -DRCM_NO_METRICS; the doc
  // above must still be well-formed, which is all the no-metrics build
  // can promise.
  EXPECT_NE(metrics.body->find("service.wal.appends"), std::string::npos);
#endif

  AdminResponse dump =
      admin_exchange(conn, AdminRequest{AdminCommand::kTraceDump, 0});
  ASSERT_TRUE(dump.ok);
  ASSERT_TRUE(dump.body.has_value());
  EXPECT_NE(dump.body->find("\"traceEvents\""), std::string::npos);
#if RCM_TRACING_ENABLED
  // Every hop of the ingest→WAL→evaluate→filter→fan-out path shows up.
  for (const char* span : {"service.ingest", "wal.append", "ce.evaluate",
                           "ad.filter", "service.fanout"}) {
    EXPECT_NE(dump.body->find(span), std::string::npos)
        << "span missing from trace dump: " << span;
  }
#endif

  svc.drain();
  obs::trace::set_enabled(false);

  // Provenance: every emitted alert names the (var, seq) updates that
  // triggered it, the filter that judged it, and the verdict path.
  const std::vector<Alert> displayed = svc.displayed();
  ASSERT_FALSE(displayed.empty());
  const std::vector<AlertProvenance> prov = svc.provenance();
  ASSERT_GE(prov.size(), displayed.size());

  const std::vector<Update> journal = svc.replica_journal(0);
  std::size_t shown = 0;
  for (const AlertProvenance& p : prov) {
    EXPECT_EQ(p.filter, "AD-1");
    ASSERT_NE(p.reason, nullptr);
    EXPECT_NE(std::string_view{p.reason}, "");
    ASSERT_FALSE(p.triggers.empty());
    for (const auto& [var, seq] : p.triggers) {
      const bool journaled =
          std::any_of(journal.begin(), journal.end(), [&](const Update& u) {
            return u.var == var && u.seqno == seq;
          });
      EXPECT_TRUE(journaled)
          << "provenance trigger (" << var << ", " << seq
          << ") not in the accepted-update journal";
    }
    if (!p.displayed) continue;
    ASSERT_LT(shown, displayed.size());
    const Alert& a = displayed[shown];
    EXPECT_EQ(p.cond, a.cond);
    EXPECT_EQ(p.trace_id, a.trace_id);
#if RCM_TRACING_ENABLED
    EXPECT_NE(p.trace_id, 0u)
        << "fed with trace contexts, so the alert must carry one";
#endif
    ++shown;
  }
  EXPECT_EQ(shown, displayed.size());

  std::filesystem::remove_all(cfg.data_dir);
  obs::trace::clear();
}

// ---- duplicate-delivery idempotence -------------------------------------

TEST(AlertService, RestartedServiceDropsDuplicateStream) {
  const auto dir = fresh_dir("dup");
  ServiceConfig cfg;
  cfg.condition = threshold_condition();
  cfg.num_replicas = 1;
  cfg.data_dir = dir;
  cfg.record_journal = true;
  cfg.auto_restart = false;
  cfg.poll_interval = 5ms;
  const std::vector<Update> trace = make_trace(16);

  std::vector<Alert> first_displayed;
  {
    AlertService svc{cfg};
    net::UdpSocket udp{0};
    for (const Update& u : trace)
      send_frame(udp, svc.replica_ports(), wire::encode_update(u));
    deliver_ends(udp, svc, svc.replica_ports());
    ASSERT_TRUE(svc.await_idle(80ms, 5s));
    svc.drain();
    first_displayed = svc.displayed();
    ASSERT_EQ(svc.replica_journal(0).size(), trace.size());
  }
  {
    // Same data dir: the durable watermarks must reject the entire
    // replayed stream, journaling nothing and displaying nothing new.
    AlertService svc{cfg};
    net::UdpSocket udp{0};
    for (const Update& u : trace)
      send_frame(udp, svc.replica_ports(), wire::encode_update(u));
    ASSERT_TRUE(svc.await_idle(80ms, 5s));
    svc.drain();
    EXPECT_TRUE(svc.displayed().empty());
    EXPECT_EQ(svc.replica_journal(0).size(), trace.size());
  }
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace rcm::service
