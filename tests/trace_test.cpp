// Tests for the workload generators: structural invariants (consecutive
// seqnos from 1, strictly increasing emission times, value ranges),
// determinism under a fixed RNG, and the scripted paper traces.
#include <gtest/gtest.h>

#include "trace/generators.hpp"
#include "trace/scripted.hpp"

namespace rcm::trace {
namespace {

void expect_well_formed(const Trace& t, VarId var, SeqNo first = 1) {
  SeqNo expected = first;
  double last_time = 0.0;
  for (const TimedUpdate& tu : t) {
    EXPECT_EQ(tu.update.var, var);
    EXPECT_EQ(tu.update.seqno, expected++);
    EXPECT_GT(tu.time, last_time);
    last_time = tu.time;
  }
}

TEST(Generators, ReactorTraceShape) {
  util::Rng rng{1};
  ReactorParams p;
  p.base.var = 3;
  p.base.count = 500;
  const Trace t = reactor_trace(p, rng);
  ASSERT_EQ(t.size(), 500u);
  expect_well_formed(t, 3);
  // Mean-reverting walk must mostly hover near the baseline...
  std::size_t near_baseline = 0;
  std::size_t excursions = 0;
  for (const TimedUpdate& tu : t) {
    if (std::abs(tu.update.value - p.baseline) < 4 * p.stddev) ++near_baseline;
    if (tu.update.value > p.baseline + p.excursion_min) ++excursions;
  }
  EXPECT_GT(near_baseline, 350u);
  // ...and with excursion_prob = 0.05 over 500 steps, excursions happen.
  EXPECT_GT(excursions, 5u);
}

TEST(Generators, ReactorWithoutExcursionsStaysBounded) {
  util::Rng rng{2};
  ReactorParams p;
  p.base.count = 1000;
  p.excursion_prob = 0.0;
  const Trace t = reactor_trace(p, rng);
  for (const TimedUpdate& tu : t) {
    EXPECT_GT(tu.update.value, p.baseline - 10 * p.stddev);
    EXPECT_LT(tu.update.value, p.baseline + 10 * p.stddev);
  }
}

TEST(Generators, StockTracePositivePrices) {
  util::Rng rng{3};
  StockParams p;
  p.base.count = 1000;
  const Trace t = stock_trace(p, rng);
  ASSERT_EQ(t.size(), 1000u);
  expect_well_formed(t, 0);
  for (const TimedUpdate& tu : t) EXPECT_GT(tu.update.value, 0.0);
}

TEST(Generators, StockTraceHasSharpDrops) {
  util::Rng rng{4};
  StockParams p;
  p.base.count = 2000;
  p.crash_prob = 0.05;
  p.drift = 0.03;  // offsets the crashes so the price stays off the floor
  const Trace t = stock_trace(p, rng);
  std::size_t sharp_drops = 0;
  for (std::size_t i = 1; i < t.size(); ++i) {
    const double prev = t[i - 1].update.value;
    const double cur = t[i].update.value;
    if ((prev - cur) / prev > 0.14) ++sharp_drops;
  }
  EXPECT_GT(sharp_drops, 30u);  // ~100 expected
}

TEST(Generators, EventTraceRate) {
  util::Rng rng{5};
  EventParams p;
  p.base.count = 10000;
  p.event_prob = 0.2;
  const Trace t = event_trace(p, rng);
  std::size_t events = 0;
  for (const TimedUpdate& tu : t) {
    EXPECT_TRUE(tu.update.value == 0.0 || tu.update.value == 1.0);
    if (tu.update.value == 1.0) ++events;
  }
  EXPECT_NEAR(static_cast<double>(events) / 10000.0, 0.2, 0.02);
}

TEST(Generators, UniformTraceRange) {
  util::Rng rng{6};
  UniformParams p;
  p.base.count = 5000;
  p.lo = -2.0;
  p.hi = 7.0;
  const Trace t = uniform_trace(p, rng);
  for (const TimedUpdate& tu : t) {
    EXPECT_GE(tu.update.value, -2.0);
    EXPECT_LT(tu.update.value, 7.0);
  }
}

TEST(Generators, DeterministicUnderSameRng) {
  UniformParams p;
  p.base.count = 100;
  util::Rng r1{42}, r2{42};
  const Trace a = uniform_trace(p, r1);
  const Trace b = uniform_trace(p, r2);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].update, b[i].update);
    EXPECT_EQ(a[i].time, b[i].time);
  }
}

TEST(Generators, CustomFirstSeqno) {
  util::Rng rng{7};
  UniformParams p;
  p.base.count = 5;
  p.base.first_seqno = 10;
  const Trace t = uniform_trace(p, rng);
  expect_well_formed(t, 0, 10);
}

TEST(Generators, UpdatesOfStripsTimes) {
  util::Rng rng{8};
  UniformParams p;
  p.base.count = 7;
  const Trace t = uniform_trace(p, rng);
  const auto u = updates_of(t);
  ASSERT_EQ(u.size(), 7u);
  for (std::size_t i = 0; i < u.size(); ++i) EXPECT_EQ(u[i], t[i].update);
}

TEST(Scripted, BuildsExactPoints) {
  const Trace t = scripted(4, {{2, 1.5}, {5, -3.0}});
  ASSERT_EQ(t.size(), 2u);
  EXPECT_EQ(t[0].update, (Update{4, 2, 1.5}));
  EXPECT_EQ(t[1].update, (Update{4, 5, -3.0}));
  EXPECT_LT(t[0].time, t[1].time);
}

TEST(Scripted, PaperTracesMatchThePaper) {
  const auto e1 = example1_updates(0);
  ASSERT_EQ(e1.size(), 3u);
  EXPECT_EQ(e1[1].update, (Update{0, 2, 3100.0}));

  const auto stock = intro_stock_updates(1);
  ASSERT_EQ(stock.size(), 3u);
  EXPECT_EQ(stock[0].update.value, 100.0);
  EXPECT_EQ(stock[1].update.value, 50.0);
  EXPECT_EQ(stock[2].update.value, 52.0);

  const auto t3a = theorem3_u1(0), t3b = theorem3_u2(0);
  EXPECT_EQ(t3a[0].update.seqno, 1);
  EXPECT_EQ(t3b[0].update.seqno, 3);

  const auto t4 = theorem4_updates(0);
  ASSERT_EQ(t4.size(), 3u);
  EXPECT_EQ(t4[2].update.value, 720.0);

  const auto ux = theorem10_ux(0), uy = theorem10_uy(1);
  EXPECT_EQ(ux[1].update.value, 1200.0);
  EXPECT_EQ(uy[0].update.value, 1050.0);
}

}  // namespace
}  // namespace rcm::trace
