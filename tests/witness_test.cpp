// Witness extraction: consistent runs yield a witness input U' and
// complete runs a witness interleaving UV. These tests validate the
// witnesses *semantically* — by re-running the reference evaluator T
// over them and checking the defining Phi relations — across randomized
// single-, two- and three-variable runs. A checker whose witnesses
// always verify cannot be silently over-approving.
#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <set>

#include "check/completeness.hpp"
#include "check/consistency.hpp"
#include "check/properties.hpp"
#include "core/builtin_conditions.hpp"
#include "core/evaluator.hpp"
#include "core/filters.hpp"
#include "core/sequence.hpp"
#include "exp/scenarios.hpp"
#include "sim/system.hpp"

namespace rcm::check {
namespace {

std::set<AlertKey> key_set(const std::vector<Alert>& alerts) {
  std::set<AlertKey> out;
  for (const Alert& a : alerts) out.insert(a.key());
  return out;
}

/// Witness must be ordered per variable (a legal input stream).
void expect_valid_stream(const std::vector<Update>& witness,
                         const std::vector<VarId>& vars) {
  for (VarId v : vars)
    EXPECT_TRUE(is_ordered(std::span<const Update>{witness}, v));
}

/// Witness per-variable projection must be a subsequence of the combined
/// inputs' projection (U' ⊑ the replicas' combined knowledge).
void expect_subsequence_of_union(
    const std::vector<Update>& witness,
    const std::vector<std::vector<Update>>& ce_inputs) {
  const auto unions = combined_inputs(ce_inputs);
  for (const auto& [var, seq] : unions) {
    const auto wit_proj = project(std::span<const Update>{witness}, var);
    const auto union_proj = project(std::span<const Update>{seq}, var);
    EXPECT_TRUE(is_subsequence(wit_proj, union_proj));
  }
}

class WitnessTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(WitnessTest, ConsistencyWitnessVerifiesSingleVar) {
  const auto spec =
      exp::single_var_scenario(exp::Scenario::kLossyAggressive);
  util::Rng trial{GetParam()};
  sim::SystemConfig config;
  config.condition = spec.condition;
  config.dm_traces = spec.make_traces(25, trial);
  config.front.loss = spec.front_loss;
  config.front.delay_max = 0.8;
  config.back.delay_max = 0.8;
  config.filter = FilterKind::kAd3;  // consistent by construction
  config.seed = GetParam() * 17;
  const auto r = sim::run_system(config);
  const auto run = r.as_system_run(spec.condition);

  const auto result = check_consistent(run);
  ASSERT_TRUE(result.consistent);
  expect_valid_stream(result.witness, spec.condition->variables());
  expect_subsequence_of_union(result.witness, run.ce_inputs);
  // Phi(A) ⊆ Phi(T(witness)) — the definition of consistency.
  const auto ref = key_set(evaluate_trace(spec.condition, result.witness));
  for (const Alert& a : r.displayed)
    EXPECT_TRUE(ref.count(a.key())) << "unexplained alert " << a;
}

TEST_P(WitnessTest, ConsistencyWitnessVerifiesMultiVar) {
  const auto spec =
      exp::multi_var_scenario(exp::Scenario::kLossyConservative);
  util::Rng trial{GetParam() + 500};
  sim::SystemConfig config;
  config.condition = spec.condition;
  config.dm_traces = spec.make_traces(10, trial);
  config.front.loss = spec.front_loss;
  config.front.delay_max = 2.0;
  config.back.delay_max = 2.0;
  config.filter = FilterKind::kAd6;
  config.seed = GetParam() * 29;
  const auto r = sim::run_system(config);
  const auto run = r.as_system_run(spec.condition);

  const auto result = check_consistent(run);
  ASSERT_TRUE(result.consistent) << result.reason;
  expect_valid_stream(result.witness, spec.condition->variables());
  expect_subsequence_of_union(result.witness, run.ce_inputs);
  const auto ref = key_set(evaluate_trace(spec.condition, result.witness));
  for (const Alert& a : r.displayed)
    EXPECT_TRUE(ref.count(a.key())) << "unexplained alert " << a;
}

TEST_P(WitnessTest, CompletenessWitnessVerifiesSingleVar) {
  const auto spec =
      exp::single_var_scenario(exp::Scenario::kLossyNonHistorical);
  util::Rng trial{GetParam() + 1000};
  sim::SystemConfig config;
  config.condition = spec.condition;
  config.dm_traces = spec.make_traces(25, trial);
  config.front.loss = spec.front_loss;
  config.filter = FilterKind::kAd1;  // complete for non-historical
  config.seed = GetParam() * 37;
  const auto r = sim::run_system(config);
  const auto run = r.as_system_run(spec.condition);

  std::vector<Update> witness;
  ASSERT_EQ(check_complete(run, 200000, &witness), Verdict::kHolds);
  // Phi(T(witness)) == Phi(A), exactly.
  EXPECT_EQ(key_set(evaluate_trace(spec.condition, witness)),
            key_set(r.displayed));
}

TEST_P(WitnessTest, CompletenessWitnessVerifiesMultiVar) {
  const auto spec = exp::multi_var_scenario(exp::Scenario::kLossless);
  util::Rng trial{GetParam() + 2000};
  sim::SystemConfig config;
  config.condition = spec.condition;
  config.dm_traces = spec.make_traces(7, trial);
  config.front.loss = 0.0;
  config.front.delay_max = 2.0;
  config.back.delay_max = 2.0;
  config.filter = FilterKind::kAd5;
  config.seed = GetParam() * 41;
  const auto r = sim::run_system(config);
  const auto run = r.as_system_run(spec.condition);

  std::vector<Update> witness;
  const Verdict v = check_complete(run, 400000, &witness);
  if (v != Verdict::kHolds) return;  // incomplete runs have no witness
  expect_valid_stream(witness, spec.condition->variables());
  EXPECT_EQ(key_set(evaluate_trace(spec.condition, witness)),
            key_set(r.displayed));
  // A multi-variable completeness witness interleaves the FULL unions.
  const auto unions = combined_inputs(run.ce_inputs);
  std::size_t total = 0;
  for (const auto& [var, seq] : unions) total += seq.size();
  EXPECT_EQ(witness.size(), total);
}

INSTANTIATE_TEST_SUITE_P(Seeds, WitnessTest,
                         ::testing::Range<std::uint64_t>(1, 16));

TEST(WitnessTest, EmptyDisplayedHasEmptyConsistencyWitness) {
  auto cond = std::make_shared<const ThresholdCondition>("t", 0, 50.0);
  SystemRun run;
  run.condition = cond;
  run.ce_inputs = {{{0, 1, 10.0}}};
  const auto result = check_consistent(run);
  EXPECT_TRUE(result.consistent);
  EXPECT_TRUE(result.witness.empty());
}

}  // namespace
}  // namespace rcm::check
