// Property-based tests of the AD filtering algorithms on adversarial
// (fuzzed) alert streams — not just streams real CEs produce. Invariants
// checked across random seeds:
//
//   - every filter's output is a subsequence of its input;
//   - every filter is replay-stable: filtering its own output changes
//     nothing (the suppression decisions are self-consistent);
//   - AD-2/AD-5 outputs are ordered on ANY input;
//   - AD-3/AD-4/AD-6 outputs carry conflict-free Received/Missed
//     demands on ANY input (the algorithmic core of consistency);
//   - reset() restores the exact initial behaviour.
#include <gtest/gtest.h>

#include <map>
#include <set>

#include "check/domination.hpp"
#include "check/properties.hpp"
#include "core/filters.hpp"
#include "util/rng.hpp"

namespace rcm {
namespace {

/// Fuzzed single-variable alert: random window of 1-3 ascending seqnos.
Alert fuzz_alert(util::Rng& rng, VarId var = 0) {
  Alert a;
  a.cond = "c";
  std::vector<Update> window;
  SeqNo s = rng.uniform_int(1, 20);
  const int width = static_cast<int>(rng.uniform_int(1, 3));
  for (int i = 0; i < width; ++i) {
    window.push_back({var, s, static_cast<double>(s)});
    s += rng.uniform_int(1, 3);
  }
  a.histories.emplace(var, std::move(window));
  return a;
}

/// Fuzzed two-variable alert (degree 1 each).
Alert fuzz_alert2(util::Rng& rng) {
  Alert a;
  a.cond = "c";
  a.histories.emplace(
      0, std::vector<Update>{{0, rng.uniform_int(1, 15), 0.0}});
  a.histories.emplace(
      1, std::vector<Update>{{1, rng.uniform_int(1, 15), 0.0}});
  return a;
}

std::vector<Alert> fuzz_stream(util::Rng& rng, std::size_t n,
                               bool two_vars) {
  std::vector<Alert> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i)
    out.push_back(two_vars ? fuzz_alert2(rng) : fuzz_alert(rng));
  return out;
}

/// All single-variable filter kinds plus the multi-variable ones run on
/// the matching stream type.
struct FilterCase {
  FilterKind kind;
  bool two_vars;
};

const FilterCase kCases[] = {
    {FilterKind::kAd1, false}, {FilterKind::kAd2, false},
    {FilterKind::kAd3, false}, {FilterKind::kAd4, false},
    {FilterKind::kAd1, true},  {FilterKind::kAd5, true},
    {FilterKind::kAd6, true},
};

std::vector<VarId> vars_for(bool two_vars) {
  return two_vars ? std::vector<VarId>{0, 1} : std::vector<VarId>{0};
}

class FilterFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FilterFuzz, OutputIsSubsequenceOfInput) {
  for (const FilterCase& fc : kCases) {
    util::Rng rng{GetParam() * 31 + static_cast<std::uint64_t>(fc.kind)};
    const auto stream = fuzz_stream(rng, 60, fc.two_vars);
    const FilterPtr f = make_filter(fc.kind, vars_for(fc.two_vars));
    const auto out = run_filter(*f, stream);
    EXPECT_TRUE(check::is_alert_subsequence(out, stream))
        << filter_kind_name(fc.kind);
  }
}

TEST_P(FilterFuzz, ReplayStable) {
  for (const FilterCase& fc : kCases) {
    util::Rng rng{GetParam() * 37 + static_cast<std::uint64_t>(fc.kind)};
    const auto stream = fuzz_stream(rng, 60, fc.two_vars);
    const FilterPtr f = make_filter(fc.kind, vars_for(fc.two_vars));
    const auto once = run_filter(*f, stream);
    const auto twice = run_filter(*f, once);
    ASSERT_EQ(once.size(), twice.size()) << filter_kind_name(fc.kind);
    for (std::size_t i = 0; i < once.size(); ++i)
      EXPECT_EQ(once[i].key(), twice[i].key());
  }
}

TEST_P(FilterFuzz, OrderednessFiltersProduceOrderedOutput) {
  util::Rng rng{GetParam() * 41};
  {
    const auto stream = fuzz_stream(rng, 80, false);
    Ad2OrderedFilter ad2{0};
    const auto out = run_filter(ad2, stream);
    EXPECT_TRUE(check::check_ordered(out, {0}));
    Ad4OrderedConsistentFilter ad4{0};
    EXPECT_TRUE(check::check_ordered(run_filter(ad4, stream), {0}));
  }
  {
    const auto stream = fuzz_stream(rng, 80, true);
    Ad5MultiOrderedFilter ad5{{0, 1}};
    EXPECT_TRUE(check::check_ordered(run_filter(ad5, stream), {0, 1}));
    Ad6MultiOrderedConsistentFilter ad6{{0, 1}};
    EXPECT_TRUE(check::check_ordered(run_filter(ad6, stream), {0, 1}));
  }
}

/// Conflict-freedom of the displayed set's demands: no seqno demanded
/// both received and missed, per variable — the core of consistency,
/// checkable without a condition.
bool demands_conflict_free(const std::vector<Alert>& alerts) {
  std::map<VarId, std::set<SeqNo>> present, absent;
  for (const Alert& a : alerts) {
    for (const auto& [var, window] : a.histories) {
      for (std::size_t i = 0; i < window.size(); ++i) {
        present[var].insert(window[i].seqno);
        if (i > 0)
          for (SeqNo s = window[i - 1].seqno + 1; s < window[i].seqno; ++s)
            absent[var].insert(s);
      }
    }
  }
  for (const auto& [var, pres] : present) {
    auto it = absent.find(var);
    if (it == absent.end()) continue;
    for (SeqNo s : pres)
      if (it->second.count(s)) return false;
  }
  return true;
}

TEST_P(FilterFuzz, ConsistencyFiltersKeepDemandsConflictFree) {
  util::Rng rng{GetParam() * 43};
  {
    const auto stream = fuzz_stream(rng, 80, false);
    Ad3ConsistentFilter ad3;
    EXPECT_TRUE(demands_conflict_free(run_filter(ad3, stream)));
    Ad4OrderedConsistentFilter ad4{0};
    EXPECT_TRUE(demands_conflict_free(run_filter(ad4, stream)));
  }
  {
    const auto stream = fuzz_stream(rng, 80, true);
    Ad6MultiOrderedConsistentFilter ad6{{0, 1}};
    EXPECT_TRUE(demands_conflict_free(run_filter(ad6, stream)));
  }
}

TEST_P(FilterFuzz, ResetRestoresInitialBehaviour) {
  for (const FilterCase& fc : kCases) {
    util::Rng rng{GetParam() * 47 + static_cast<std::uint64_t>(fc.kind)};
    const auto stream = fuzz_stream(rng, 40, fc.two_vars);
    const FilterPtr f = make_filter(fc.kind, vars_for(fc.two_vars));
    const auto first = run_filter(*f, stream);   // run_filter resets first
    const auto second = run_filter(*f, stream);  // and again
    ASSERT_EQ(first.size(), second.size()) << filter_kind_name(fc.kind);
    for (std::size_t i = 0; i < first.size(); ++i)
      EXPECT_EQ(first[i].key(), second[i].key());
  }
}

TEST_P(FilterFuzz, AcceptsIsPureAndConsistentWithOffer) {
  for (const FilterCase& fc : kCases) {
    util::Rng rng{GetParam() * 53 + static_cast<std::uint64_t>(fc.kind)};
    const auto stream = fuzz_stream(rng, 40, fc.two_vars);
    const FilterPtr f = make_filter(fc.kind, vars_for(fc.two_vars));
    for (const Alert& a : stream) {
      const bool first = f->accepts(a);
      const bool again = f->accepts(a);  // accepts must not mutate state
      EXPECT_EQ(first, again) << filter_kind_name(fc.kind);
      EXPECT_EQ(f->offer(a), first) << filter_kind_name(fc.kind);
    }
  }
}

TEST_P(FilterFuzz, SingleVariableCoherenceAcrossFamilies) {
  // On single-variable streams the multi-variable algorithms collapse
  // onto their single-variable counterparts: AD-5's "inversion in any
  // variable or duplicate-in-all" test over one variable is exactly
  // AD-2's `seqno <= last`, and AD-6 (AD-5 + ledger + dedup) makes the
  // same decisions as AD-4 (AD-2 + AD-3).
  util::Rng rng{GetParam() * 59};
  const auto stream = fuzz_stream(rng, 80, false);
  Ad2OrderedFilter ad2{0};
  Ad5MultiOrderedFilter ad5{{0}};
  Ad4OrderedConsistentFilter ad4{0};
  Ad6MultiOrderedConsistentFilter ad6{{0}};
  for (const Alert& a : stream) {
    EXPECT_EQ(ad2.offer(a), ad5.offer(a));
    EXPECT_EQ(ad4.offer(a), ad6.offer(a));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FilterFuzz,
                         ::testing::Range<std::uint64_t>(1, 21));

}  // namespace
}  // namespace rcm
