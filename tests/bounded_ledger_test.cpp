// Tests for the bounded-memory AD-3 variant: exact agreement with
// unbounded AD-3 inside the horizon, bounded ledger growth, and the
// documented divergence window (facts older than the horizon can be
// forgotten — an honest trade-off, demonstrated by construction).
#include <gtest/gtest.h>

#include <memory>

#include "check/properties.hpp"
#include "core/bounded_ledger.hpp"
#include "core/filters.hpp"
#include "exp/scenarios.hpp"
#include "sim/system.hpp"
#include "util/rng.hpp"

namespace rcm {
namespace {

Alert alert_window(std::initializer_list<SeqNo> seqnos) {
  Alert a;
  a.cond = "c";
  std::vector<Update> w;
  for (SeqNo s : seqnos) w.push_back({0, s, static_cast<double>(s)});
  a.histories.emplace(0, std::move(w));
  return a;
}

TEST(Ad3Bounded, RejectsBadHorizon) {
  EXPECT_THROW(Ad3BoundedFilter{0}, std::invalid_argument);
  EXPECT_THROW(Ad3BoundedFilter{-5}, std::invalid_argument);
}

TEST(Ad3Bounded, MatchesUnboundedWithinHorizon) {
  // Adversarial single-variable streams whose windows stay within the
  // horizon: decisions must be identical to Algorithm AD-3.
  util::Rng rng{5};
  for (int trial = 0; trial < 50; ++trial) {
    Ad3ConsistentFilter reference;
    Ad3BoundedFilter bounded{1000};  // effectively infinite here
    SeqNo base = 1;
    for (int i = 0; i < 60; ++i) {
      const SeqNo s1 = base + rng.uniform_int(0, 5);
      const SeqNo s2 = s1 + rng.uniform_int(1, 3);
      const Alert a = alert_window({s1, s2});
      EXPECT_EQ(reference.offer(a), bounded.offer(a))
          << "trial " << trial << " step " << i;
      if (rng.bernoulli(0.3)) base += rng.uniform_int(0, 3);
    }
  }
}

TEST(Ad3Bounded, ConflictDetectionInsideHorizon) {
  Ad3BoundedFilter f{100};
  EXPECT_TRUE(f.offer(alert_window({1, 3})));   // records 2 missed
  EXPECT_FALSE(f.offer(alert_window({2, 3})));  // conflict, like AD-3
  EXPECT_FALSE(f.offer(alert_window({1, 3})));  // duplicate
}

TEST(Ad3Bounded, ForgetsBeyondHorizonByDesign) {
  // The documented divergence: a conflicting alert arriving more than
  // `horizon` seqnos later is accepted because the facts were evicted.
  Ad3BoundedFilter f{10};
  EXPECT_TRUE(f.offer(alert_window({1, 3})));      // 2 in Missed
  EXPECT_TRUE(f.offer(alert_window({500, 501})));  // advances max_seen
  // A straggler alert claiming update 2 was received: unbounded AD-3
  // rejects it (2 is still in Missed); bounded forgot that fact.
  EXPECT_TRUE(f.offer(alert_window({2, 4})));
  // The unbounded filter, for contrast:
  Ad3ConsistentFilter reference;
  EXPECT_TRUE(reference.offer(alert_window({1, 3})));
  EXPECT_TRUE(reference.offer(alert_window({500, 501})));
  EXPECT_FALSE(reference.offer(alert_window({2, 4})));
}

TEST(Ad3Bounded, LedgerSizeStaysBounded) {
  // Stream thousands of alerts with ever-growing seqnos; the unbounded
  // ledger grows linearly, the bounded one plateaus.
  Ad3ConsistentFilter unbounded_filter;
  Ad3BoundedFilter bounded{64};
  std::size_t unbounded_entries_proxy = 0;
  for (SeqNo s = 1; s <= 5000; s += 2) {
    const Alert a = alert_window({s, s + 1});
    (void)unbounded_filter.offer(a);
    (void)bounded.offer(a);
    ++unbounded_entries_proxy;
  }
  EXPECT_GT(unbounded_entries_proxy, 2000u);   // unbounded keeps them all
  EXPECT_LE(bounded.ledger_entries(), 130u);   // ~horizon entries retained
}

TEST(Ad3Bounded, DuplicateSetAlsoBounded) {
  Ad3BoundedFilter f{32};
  for (SeqNo s = 1; s <= 2000; s += 2)
    (void)f.offer(alert_window({s, s + 1}));
  // A duplicate of a very old alert is no longer recognized as such —
  // but its ledger facts are gone too, so it is judged like a fresh
  // (late) alert; what matters here is that memory did not grow.
  EXPECT_LE(f.ledger_entries(), 70u);
}

TEST(Ad3Bounded, ResetClearsEverything) {
  Ad3BoundedFilter f{10};
  EXPECT_TRUE(f.offer(alert_window({1, 3})));
  f.reset();
  EXPECT_EQ(f.ledger_entries(), 0u);
  EXPECT_TRUE(f.offer(alert_window({2, 3})));  // no leftover conflict
}

TEST(Ad3Bounded, ConsistencyHoldsOnRealRunsWithGenerousHorizon) {
  // On simulated lossy aggressive runs whose alert windows are narrow,
  // a generous horizon behaves exactly like AD-3: output stays
  // consistent. (The theoretical divergence needs horizon-spanning
  // stragglers, which these runs do not produce.)
  const auto spec =
      exp::single_var_scenario(exp::Scenario::kLossyAggressive);
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    util::Rng trial{seed};
    sim::SystemConfig config;
    config.condition = spec.condition;
    config.dm_traces = spec.make_traces(40, trial);
    config.front.loss = spec.front_loss;
    config.front.delay_max = 0.8;
    config.back.delay_max = 0.8;
    config.filter = FilterKind::kPassAll;  // capture raw arrivals
    config.seed = seed * 101;
    const auto r = sim::run_system(config);

    Ad3BoundedFilter bounded{50};
    Ad3ConsistentFilter reference;
    for (const Alert& a : r.arrived)
      EXPECT_EQ(reference.accepts(a), bounded.accepts(a)) << "seed " << seed;
    // (accepts() is pure; drive the state forward identically.)
    bounded.reset();
    reference.reset();
    std::vector<Alert> bounded_out;
    for (const Alert& a : r.arrived) {
      const bool keep_ref = reference.offer(a);
      const bool keep_bounded = bounded.offer(a);
      EXPECT_EQ(keep_ref, keep_bounded) << "seed " << seed;
      if (keep_bounded) bounded_out.push_back(a);
    }
    check::SystemRun run;
    run.condition = spec.condition;
    run.ce_inputs = r.ce_inputs;
    run.displayed = bounded_out;
    EXPECT_EQ(check::check_run(run).consistent, check::Verdict::kHolds)
        << "seed " << seed;
  }
}

}  // namespace
}  // namespace rcm
