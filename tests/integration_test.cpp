// Cross-cutting integration tests:
//  - substrate agreement: the simulator, the threaded runtime and the
//    socket deployment display the same alert key set for the same
//    lossless workload (the simulator's conclusions transfer);
//  - a soak run: a large simulated system exercising every filter on
//    one big workload, with every invariant the library promises
//    checked at the end;
//  - the guarantees matrix: for each filter, the property its algorithm
//    guarantees holds across a randomized sweep regardless of scenario.
#include <gtest/gtest.h>

#include <memory>
#include <set>

#include "check/consistency.hpp"
#include "check/properties.hpp"
#include "core/rcm.hpp"
#include "core/sequence.hpp"
#include "net/deployment.hpp"
#include "runtime/system.hpp"
#include "sim/system.hpp"
#include "trace/generators.hpp"

namespace rcm {
namespace {

constexpr VarId kX = 0;

std::set<AlertKey> key_set(const std::vector<Alert>& alerts) {
  std::set<AlertKey> out;
  for (const Alert& a : alerts) out.insert(a.key());
  return out;
}

TEST(SubstrateAgreement, LosslessRunsDisplayIdenticalKeySets) {
  auto condition =
      std::make_shared<const ThresholdCondition>("hot", kX, 55.0);
  util::Rng rng{31};
  trace::UniformParams p;
  p.base.var = kX;
  p.base.count = 400;
  p.lo = 0.0;
  p.hi = 100.0;
  const auto trace = trace::uniform_trace(p, rng);

  sim::SystemConfig sc;
  sc.condition = condition;
  sc.dm_traces = {trace};
  sc.num_ces = 2;
  sc.filter = FilterKind::kAd1;
  sc.seed = 31;
  const auto sim_keys = key_set(sim::run_system(sc).displayed);

  runtime::ThreadedConfig tc;
  tc.condition = condition;
  tc.dm_traces = {trace};
  tc.num_ces = 2;
  tc.filter = FilterKind::kAd1;
  tc.seed = 31;
  const auto thread_keys = key_set(runtime::run_threaded(tc).displayed);

  net::NetworkConfig nc;
  nc.condition = condition;
  nc.dm_traces = {trace};
  nc.num_ces = 2;
  nc.filter = FilterKind::kAd1;
  nc.seed = 31;
  const auto socket_keys = key_set(net::run_networked(nc).displayed);

  EXPECT_EQ(sim_keys, thread_keys);
  EXPECT_EQ(thread_keys, socket_keys);
  EXPECT_FALSE(sim_keys.empty());
}

TEST(Soak, LargeSimulatedSystemUpholdsEveryInvariant) {
  // 10k updates, 4 replicas, heavy loss, aggressive condition: the most
  // anomaly-prone configuration, one large deterministic run per filter.
  auto condition = std::make_shared<const RiseCondition>(
      "rise", kX, 25.0, Triggering::kAggressive);
  util::Rng rng{77};
  trace::UniformParams p;
  p.base.var = kX;
  p.base.count = 10000;
  p.lo = 0.0;
  p.hi = 100.0;
  const auto trace = trace::uniform_trace(p, rng);

  for (FilterKind filter : {FilterKind::kAd1, FilterKind::kAd2,
                            FilterKind::kAd3, FilterKind::kAd4}) {
    sim::SystemConfig config;
    config.condition = condition;
    config.dm_traces = {trace};
    config.num_ces = 4;
    config.front.loss = 0.3;
    config.front.delay_max = 0.8;
    config.back.delay_max = 0.8;
    config.filter = filter;
    config.seed = 77;
    const auto r = sim::run_system(config);
    const auto label = std::string(filter_kind_name(filter));

    // Structural invariants.
    ASSERT_EQ(r.display_times.size(), r.displayed.size()) << label;
    for (std::size_t i = 1; i < r.display_times.size(); ++i)
      EXPECT_LE(r.display_times[i - 1], r.display_times[i]) << label;
    const auto emitted = project(std::span<const Update>{r.dm_emitted[0]}, kX);
    for (const auto& input : r.ce_inputs) {
      const auto seqs = project(std::span<const Update>{input}, kX);
      EXPECT_TRUE(is_subsequence(seqs, emitted)) << label;
    }
    EXPECT_LE(r.displayed.size(), r.arrived.size()) << label;

    // Algorithmic guarantees (checked exactly, at scale).
    if (filter == FilterKind::kAd2 || filter == FilterKind::kAd4) {
      EXPECT_TRUE(check::check_ordered(r.displayed, {kX})) << label;
    }
    if (filter == FilterKind::kAd3 || filter == FilterKind::kAd4) {
      EXPECT_TRUE(
          check::check_consistent(r.as_system_run(condition)).consistent)
          << label;
    }
  }
}

TEST(GuaranteeMatrix, EachAlgorithmsPropertyHoldsInEveryScenario) {
  // Whatever the scenario, AD-2/AD-4 outputs must be ordered and
  // AD-3/AD-4 outputs consistent — the unconditional halves of the
  // paper's tables, swept across all conditions and seeds at once.
  struct Case {
    ConditionPtr condition;
  };
  const std::vector<Case> cases = {
      {std::make_shared<const ThresholdCondition>("t", kX, 50.0)},
      {std::make_shared<const RiseCondition>("rc", kX, 15.0,
                                             Triggering::kConservative)},
      {std::make_shared<const RiseCondition>("ra", kX, 15.0,
                                             Triggering::kAggressive)},
  };
  for (const auto& c : cases) {
    for (std::uint64_t seed = 1; seed <= 6; ++seed) {
      util::Rng rng{seed * 19};
      trace::UniformParams p;
      p.base.var = kX;
      p.base.count = 50;
      p.lo = 0.0;
      p.hi = 100.0;
      sim::SystemConfig config;
      config.condition = c.condition;
      config.dm_traces = {trace::uniform_trace(p, rng)};
      config.num_ces = 3;
      config.front.loss = 0.25;
      config.front.delay_max = 1.5;
      config.back.delay_max = 1.5;
      config.seed = seed * 23;

      config.filter = FilterKind::kAd2;
      EXPECT_TRUE(check::check_ordered(sim::run_system(config).displayed,
                                       {kX}))
          << c.condition->name() << " seed " << seed;

      config.filter = FilterKind::kAd3;
      {
        const auto r = sim::run_system(config);
        EXPECT_TRUE(check::check_consistent(r.as_system_run(c.condition))
                        .consistent)
            << c.condition->name() << " seed " << seed;
      }

      config.filter = FilterKind::kAd4;
      {
        const auto r = sim::run_system(config);
        EXPECT_TRUE(check::check_ordered(r.displayed, {kX}));
        EXPECT_TRUE(check::check_consistent(r.as_system_run(c.condition))
                        .consistent)
            << c.condition->name() << " seed " << seed;
      }
    }
  }
}

}  // namespace
}  // namespace rcm
