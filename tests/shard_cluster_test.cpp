// ShardedCluster end-to-end: cross-shard conditions through the merge
// tier, single-variable ownership moves, durable handoff exactness, and
// the admin shard-map distribution path — each checked across a mid-run
// reshard with the same oracle the fuzzer uses (swarm::check_service_run),
// so the paper's AD table rows are asserted, not just "no crash".
#include <gtest/gtest.h>

#include <chrono>
#include <filesystem>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "net/deployment.hpp"
#include "net/socket.hpp"
#include "service/admin.hpp"
#include "service/shard_cluster.hpp"
#include "swarm/fuzz_plan.hpp"
#include "swarm/spec.hpp"
#include "wire/codec.hpp"
#include "wire/frame.hpp"
#include "wire/shard.hpp"

namespace rcm::service {
namespace {

using namespace std::chrono_literals;

std::filesystem::path fresh_dir(const std::string& name) {
  const std::filesystem::path dir =
      std::filesystem::temp_directory_path() / ("rcm_shard_" + name);
  std::filesystem::remove_all(dir);
  return dir;  // the cluster creates it
}

/// Routes one update to every replica port of its owner shard, via the
/// wire map exactly as an external feeder would.
void send_routed(net::UdpSocket& udp, ShardedCluster& cluster,
                 const Update& u) {
  const wire::ShardMap map = cluster.shard_map();
  const std::uint32_t owner = cluster.owner(u.var);
  const auto framed = wire::frame(wire::encode_update(u));
  for (const wire::ShardMapEntry& e : map.shards) {
    if (e.shard_id != owner) continue;
    for (const std::uint16_t port : e.replica_ports) {
      try {
        udp.send_to(port, framed);
      } catch (const std::system_error&) {
      }
    }
  }
}

/// Sends END markers for vars [0, arity) to every shard and merge port
/// until the evaluating instance has acknowledged them all.
void deliver_ends(net::UdpSocket& udp, ShardedCluster& cluster,
                  std::size_t arity) {
  for (int attempt = 0; attempt < 50; ++attempt) {
    const wire::ShardMap map = cluster.shard_map();
    for (std::size_t var = 0; var < arity; ++var) {
      const auto end =
          wire::frame(net::encode_end_marker(static_cast<VarId>(var)));
      for (const wire::ShardMapEntry& e : map.shards)
        for (const std::uint16_t port : e.replica_ports) {
          try {
            udp.send_to(port, end);
          } catch (const std::system_error&) {
          }
        }
      if (AlertService* merge = cluster.merge())
        for (const std::uint16_t port : merge->replica_ports()) {
          try {
            udp.send_to(port, end);
          } catch (const std::system_error&) {
          }
        }
    }
    if (cluster.evaluating_service().await_dm_ends(arity, 100ms)) return;
  }
  FAIL() << "END markers never acknowledged";
}

void expect_clean_oracle(const swarm::RunPlan& plan,
                         const std::vector<Update>& sent,
                         ShardedCluster& cluster, std::size_t kills = 0) {
  const std::vector<std::string> violations = swarm::check_service_run(
      plan, sent, cluster.journals(), cluster.displayed(),
      cluster.provenance(), kills, cluster.displayer_epochs());
  for (const std::string& v : violations) ADD_FAILURE() << v;
}

// The acceptance-criterion scenario: a degree-2 condition spanning
// shards, AD-5 on the merge tier, and a reshard in the middle of the
// stream. The oracle checks the AD-5 table row (orderedness +
// consistency per displayer epoch) over journals that span the move.
TEST(ShardedCluster, CrossShardAd5SurvivesAMidRunReshard) {
  swarm::RunPlan plan;
  plan.choice = {swarm::ConditionKind::kAbsDiff, 30.0,
                 exp::Scenario::kLossyNonHistorical};
  plan.filter = FilterKind::kAd5;
  for (SeqNo s = 1; s <= 30; ++s) {
    // |x - y| = 60 > 30 on every pair: alerts keep flowing on both
    // sides of the reshard.
    plan.feed.push_back(Update{0, s, 80.0});
    plan.feed.push_back(Update{1, s, 20.0});
  }

  ShardClusterConfig cfg;
  cfg.condition =
      swarm::build_condition(plan.choice.kind, plan.choice.param);
  cfg.filter = plan.filter;
  cfg.num_shards = 3;
  cfg.replicas_per_shard = 2;
  cfg.data_dir = fresh_dir("cross_ad5");
  cfg.checkpoint_every = 4;
  cfg.record_journal = true;
  cfg.poll_interval = 5ms;
  ShardedCluster cluster{std::move(cfg)};
  ASSERT_TRUE(cluster.cross_shard());
  ASSERT_NE(cluster.merge(), nullptr);

  net::UdpSocket udp;
  const std::size_t half = plan.feed.size() / 2;
  for (std::size_t i = 0; i < half; ++i)
    send_routed(udp, cluster, plan.feed[i]);
  ASSERT_TRUE(cluster.await_idle(60ms, 5s));
  const std::size_t displayed_before = cluster.displayed().size();
  EXPECT_GT(displayed_before, 0u);

  const std::uint64_t epoch_before = cluster.epoch();
  cluster.add_shard(3);  // mid-run reshard with updates in flight
  EXPECT_GT(cluster.epoch(), epoch_before);

  for (std::size_t i = half; i < plan.feed.size(); ++i)
    send_routed(udp, cluster, plan.feed[i]);
  deliver_ends(udp, cluster, 2);
  ASSERT_TRUE(cluster.await_idle(60ms, 5s));
  cluster.drain();

  // Alerts on both sides of the move, one merge-tier displayer epoch.
  EXPECT_GT(cluster.displayed().size(), displayed_before);
  expect_clean_oracle(plan, plan.feed, cluster);
}

// AD-6's cross-alert guarantee (orderedness AND consistency) through the
// merge tier, with a shard REMOVAL instead of an addition.
TEST(ShardedCluster, CrossShardAd6SurvivesShardRemoval) {
  swarm::RunPlan plan;
  plan.choice = {swarm::ConditionKind::kAbsDiff, 30.0,
                 exp::Scenario::kLossyNonHistorical};
  plan.filter = FilterKind::kAd6;
  for (SeqNo s = 1; s <= 24; ++s) {
    plan.feed.push_back(Update{0, s, 90.0});
    plan.feed.push_back(Update{1, s, 10.0});
  }

  ShardClusterConfig cfg;
  cfg.condition =
      swarm::build_condition(plan.choice.kind, plan.choice.param);
  cfg.filter = plan.filter;
  cfg.num_shards = 3;
  cfg.replicas_per_shard = 1;
  cfg.data_dir = fresh_dir("cross_ad6");
  cfg.record_journal = true;
  cfg.poll_interval = 5ms;
  ShardedCluster cluster{std::move(cfg)};
  ASSERT_TRUE(cluster.cross_shard());

  net::UdpSocket udp;
  const std::size_t half = plan.feed.size() / 2;
  for (std::size_t i = 0; i < half; ++i)
    send_routed(udp, cluster, plan.feed[i]);
  ASSERT_TRUE(cluster.await_idle(60ms, 5s));

  // Remove whichever shard owns variable 0: its durable state hands off.
  cluster.remove_shard(cluster.owner(0));

  for (std::size_t i = half; i < plan.feed.size(); ++i)
    send_routed(udp, cluster, plan.feed[i]);
  deliver_ends(udp, cluster, 2);
  ASSERT_TRUE(cluster.await_idle(60ms, 5s));
  cluster.drain();

  EXPECT_GT(cluster.displayed().size(), 0u);
  expect_clean_oracle(plan, plan.feed, cluster);
}

// A single-variable condition has no merge tier: the owning shard IS the
// displayer. Moving ownership retires one displayer incarnation and
// starts another — displayer_epochs() must partition the displayed
// stream accordingly, and the oracle checks each epoch separately.
TEST(ShardedCluster, SingleVariableOwnershipMoveSplitsDisplayerEpochs) {
  swarm::RunPlan plan;
  plan.choice = {swarm::ConditionKind::kThreshold, 60.0,
                 exp::Scenario::kLossyNonHistorical};
  plan.filter = FilterKind::kAd1;
  for (SeqNo s = 1; s <= 40; ++s)
    plan.feed.push_back(Update{0, s, s % 2 == 1 ? 80.0 : 20.0});

  ShardClusterConfig cfg;
  cfg.condition =
      swarm::build_condition(plan.choice.kind, plan.choice.param);
  cfg.filter = plan.filter;
  cfg.num_shards = 2;
  cfg.replicas_per_shard = 2;
  cfg.data_dir = fresh_dir("single_move");
  cfg.record_journal = true;
  cfg.poll_interval = 5ms;
  ShardedCluster cluster{std::move(cfg)};
  ASSERT_FALSE(cluster.cross_shard());
  ASSERT_EQ(cluster.merge(), nullptr);

  net::UdpSocket udp;
  for (std::size_t i = 0; i < 20; ++i)
    send_routed(udp, cluster, plan.feed[i]);
  ASSERT_TRUE(cluster.await_idle(60ms, 5s));
  const std::size_t displayed_before = cluster.displayed().size();
  EXPECT_GT(displayed_before, 0u);

  const std::uint32_t old_owner = cluster.owner(0);
  cluster.remove_shard(old_owner);  // forces the ownership move
  EXPECT_NE(cluster.owner(0), old_owner);

  for (std::size_t i = 20; i < plan.feed.size(); ++i)
    send_routed(udp, cluster, plan.feed[i]);
  deliver_ends(udp, cluster, 1);
  ASSERT_TRUE(cluster.await_idle(60ms, 5s));
  cluster.drain();

  const std::vector<std::size_t> epochs = cluster.displayer_epochs();
  ASSERT_EQ(epochs.size(), 2u);
  EXPECT_EQ(epochs[0], displayed_before);
  EXPECT_GT(epochs[1], 0u) << "no alerts after the ownership move";
  EXPECT_EQ(epochs[0] + epochs[1], cluster.displayed().size());
  expect_clean_oracle(plan, plan.feed, cluster);
}

// Handoff exactness for a historical (degree-2, conservative) condition:
// the alert that needs the pre-move history fires at the NEW owner, and
// a stale replay of an already-accepted seqno is discarded by the
// restored watermark.
TEST(ShardedCluster, HandoffRestoresHistoricalStateExactly) {
  swarm::RunPlan plan;
  plan.choice = {swarm::ConditionKind::kRiseConservative, 20.0,
                 exp::Scenario::kLossyConservative};
  plan.filter = FilterKind::kAd1;
  // A slow climb: no rise exceeds 20 until seqno 5 arrives post-move.
  plan.feed = {Update{0, 1, 10.0}, Update{0, 2, 12.0}, Update{0, 3, 14.0},
               Update{0, 4, 16.0}, Update{0, 5, 50.0}};

  ShardClusterConfig cfg;
  cfg.condition =
      swarm::build_condition(plan.choice.kind, plan.choice.param);
  cfg.filter = plan.filter;
  cfg.num_shards = 2;
  cfg.replicas_per_shard = 1;
  cfg.data_dir = fresh_dir("handoff_exact");
  cfg.checkpoint_every = 2;  // handoff spans checkpoint AND WAL state
  cfg.record_journal = true;
  cfg.poll_interval = 5ms;
  ShardedCluster cluster{std::move(cfg)};

  net::UdpSocket udp;
  for (std::size_t i = 0; i + 1 < plan.feed.size(); ++i)
    send_routed(udp, cluster, plan.feed[i]);
  ASSERT_TRUE(cluster.await_idle(60ms, 5s));
  EXPECT_TRUE(cluster.displayed().empty());

  cluster.remove_shard(cluster.owner(0));

  // The stale replay must be discarded by the handed-off watermark…
  send_routed(udp, cluster, Update{0, 3, 99.0});
  // …and the rise (4: 16.0) → (5: 50.0) must alert, which requires the
  // new owner to hold the seqno-4 history entry it never ingested live.
  send_routed(udp, cluster, plan.feed.back());
  deliver_ends(udp, cluster, 1);
  ASSERT_TRUE(cluster.await_idle(60ms, 5s));
  cluster.drain();

  ASSERT_EQ(cluster.displayed().size(), 1u);
  expect_clean_oracle(plan, plan.feed, cluster);
}

// The admin `shardmap` command serves the same versioned bytes the
// cluster derives its own routing from, and re-serves the new layout
// (bumped epoch) after a reshard.
TEST(ShardedCluster, AdminShardMapMatchesTheClusterLayout) {
  ShardClusterConfig cfg;
  cfg.condition =
      swarm::build_condition(swarm::ConditionKind::kAbsDiff, 30.0);
  cfg.num_shards = 2;
  cfg.data_dir = fresh_dir("admin_map");
  cfg.poll_interval = 5ms;
  ShardedCluster cluster{std::move(cfg)};

  const auto fetch_map = [&](std::uint16_t admin_port) {
    net::TcpStream conn = net::TcpStream::connect(admin_port);
    conn.write_all(wire::frame(service::encode_admin_request(
        AdminRequest{AdminCommand::kShardMap, 0})));
    wire::FrameCursor cursor;
    const auto deadline = std::chrono::steady_clock::now() + 5s;
    for (;;) {
      if (auto payload = cursor.next()) {
        const AdminResponse resp = decode_admin_response(*payload);
        EXPECT_TRUE(resp.ok);
        EXPECT_TRUE(resp.body.has_value());
        return wire::decode_shard_map(std::span{
            reinterpret_cast<const std::uint8_t*>(resp.body->data()),
            resp.body->size()});
      }
      if (std::chrono::steady_clock::now() > deadline)
        throw std::runtime_error("admin response timed out");
      const auto chunk = conn.read_some(1s);
      if (chunk) cursor.feed(*chunk);
    }
  };

  const std::uint16_t admin0 = cluster.shard(0).admin_port();
  EXPECT_EQ(fetch_map(admin0), cluster.shard_map());

  cluster.add_shard(2);
  const wire::ShardMap after = fetch_map(cluster.shard(2).admin_port());
  EXPECT_EQ(after, cluster.shard_map());
  EXPECT_EQ(after.shards.size(), 3u);
  EXPECT_GT(after.epoch, 1u);

  // The status extension names each instance's shard identity.
  const ServiceStatus s0 = cluster.shard(0).status();
  ASSERT_TRUE(s0.shard.has_value());
  EXPECT_EQ(s0.shard->shard_id, 0u);
  ASSERT_NE(cluster.merge(), nullptr);
  const ServiceStatus sm = cluster.merge()->status();
  ASSERT_TRUE(sm.shard.has_value());
  EXPECT_EQ(sm.shard->shard_id, kMergeShardId);
  cluster.drain();
}

// A drain request landing on ANY instance's admin port drains the whole
// cluster — this is what `rcm_service --shards N` polls for.
TEST(ShardedCluster, DrainRequestOnOneShardDrainsTheCluster) {
  ShardClusterConfig cfg;
  cfg.condition =
      swarm::build_condition(swarm::ConditionKind::kThreshold, 60.0);
  cfg.num_shards = 2;
  cfg.data_dir = fresh_dir("drain_req");
  cfg.poll_interval = 5ms;
  ShardedCluster cluster{std::move(cfg)};
  EXPECT_FALSE(cluster.drain_requested());

  net::TcpStream conn =
      net::TcpStream::connect(cluster.shard(1).admin_port());
  conn.write_all(wire::frame(service::encode_admin_request(
      AdminRequest{AdminCommand::kDrain, 0})));
  const auto deadline = std::chrono::steady_clock::now() + 5s;
  while (!cluster.drain_requested() &&
         std::chrono::steady_clock::now() < deadline)
    std::this_thread::sleep_for(10ms);
  EXPECT_TRUE(cluster.drain_requested());
  cluster.drain();
}

}  // namespace
}  // namespace rcm::service
