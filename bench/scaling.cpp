// Scaling sweeps: how the core data path costs grow with the model's
// two size parameters —
//
//   (a) condition degree (history window width): CE evaluation cost and
//       alert wire size for degree 1..64;
//   (b) run length: the AD-3 ledger's memory growth, unbounded vs the
//       horizon-bounded variant (the engineering trade-off of
//       core/bounded_ledger.hpp, measured).
//
//   ./bench/scaling [--seed 15]
#include <chrono>
#include <iostream>
#include <memory>

#include "core/rcm.hpp"
#include "util/rng.hpp"
#include "util/args.hpp"
#include "util/table.hpp"
#include "wire/codec.hpp"

namespace {

using namespace rcm;

/// Degree-d condition: value rose relative to the window minimum.
ConditionPtr degree_condition(int degree) {
  return std::make_shared<const PredicateCondition>(
      "deg" + std::to_string(degree),
      std::vector<std::pair<VarId, int>>{{0, degree}},
      Triggering::kAggressive, [degree](const HistorySet& h) {
        const History& hist = h.of(0);
        double lo = hist.at(0).value;
        for (int i = 1; i < degree; ++i) lo = std::min(lo, hist.at(-i).value);
        return hist.at(0).value - lo > 30.0;
      });
}

}  // namespace

int main(int argc, char** argv) {
  util::Args args;
  args.add_flag("seed", "15", "seed");
  if (!args.parse(argc, argv)) {
    std::cerr << args.error() << "\n" << args.usage("scaling");
    return 2;
  }
  if (args.help_requested()) {
    std::cout << args.usage("scaling");
    return 0;
  }

  std::cout << "(a) condition degree sweep: per-update evaluation cost and "
               "alert wire size\n";
  util::Table degree_table({"degree", "ns/update", "alert bytes (full)",
                            "alert bytes (seqnos)", "alert bytes (checksum)"});
  std::size_t benchmark_alert_count = 0;  // defeats dead-code elimination
  for (int degree : {1, 2, 4, 8, 16, 32, 64}) {
    auto cond = degree_condition(degree);
    ConditionEvaluator ce{cond};
    util::Rng rng{static_cast<std::uint64_t>(args.get_int("seed"))};
    constexpr int kUpdates = 200000;
    // Wire sizes are measured on a representative full-degree alert
    // (independent of whether the timing workload happens to trigger).
    Alert sample;
    sample.cond = cond->name();
    {
      std::vector<Update> window;
      for (int i = 0; i < degree; ++i)
        window.push_back({0, static_cast<SeqNo>(i + 1), 50.0 + i});
      sample.histories.emplace(0, std::move(window));
    }
    const auto start = std::chrono::steady_clock::now();
    for (SeqNo s = 1; s <= kUpdates; ++s) {
      if (auto a = ce.on_update({0, s, rng.uniform(0.0, 100.0)}))
        benchmark_alert_count += a->histories.size();
    }
    const double ns =
        std::chrono::duration<double, std::nano>(
            std::chrono::steady_clock::now() - start)
            .count() /
        kUpdates;
    degree_table.add_row(
        {std::to_string(degree), util::fmt_double(ns, 1),
         std::to_string(
             wire::encode_alert(sample, wire::AlertEncoding::kFullHistories)
                 .size()),
         std::to_string(
             wire::encode_alert(sample, wire::AlertEncoding::kSeqnosOnly)
                 .size()),
         std::to_string(
             wire::encode_alert(sample, wire::AlertEncoding::kChecksumOnly)
                 .size())});
  }
  std::cout << degree_table.render() << "\n";
  if (benchmark_alert_count == SIZE_MAX) std::cout << "";  // keep the counter observable

  std::cout << "(b) AD-3 ledger growth over run length (degree-2 alerts, "
               "25% gaps), unbounded vs horizon 128\n";
  util::Table ledger_table({"alerts processed", "AD-3 entries (lower bound)",
                            "AD-3b entries (horizon 128)"});
  Ad3BoundedFilter bounded{128};
  Ad3ConsistentFilter unbounded;
  util::Rng rng{static_cast<std::uint64_t>(args.get_int("seed")) + 1};
  SeqNo s = 1;
  std::size_t processed = 0;
  for (std::size_t checkpoint : {1000u, 10000u, 100000u}) {
    while (processed < checkpoint) {
      s += rng.bernoulli(0.25) ? 2 : 1;  // occasional gap
      Alert a;
      a.cond = "c";
      a.histories.emplace(
          0, std::vector<Update>{{0, s - 1 - (rng.bernoulli(0.2) ? 1 : 0), 0.0},
                                 {0, s, 1.0}});
      (void)unbounded.offer(a);
      (void)bounded.offer(a);
      ++processed;
    }
    // The unbounded ledger holds at least one entry per distinct seqno
    // touched; report the seqno span as the lower bound.
    ledger_table.add_row({std::to_string(processed),
                          ">= " + std::to_string(s),
                          std::to_string(bounded.ledger_entries())});
  }
  std::cout << ledger_table.render()
            << "\nReading: evaluation cost and full-history wire size grow "
               "linearly with degree (seqno delta-encoding keeps the seqnos "
               "form compact; the checksum form is constant); the unbounded "
               "AD-3 ledger grows with the run while the bounded variant "
               "plateaus at ~horizon entries.\n";
  return 0;
}
