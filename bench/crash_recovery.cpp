// Ablation: what a CE outage *means* changes the anomaly profile.
//
// The paper's fault model says a CE "can go down, causing it to miss
// updates". Two distinct real-world events fit that sentence:
//
//   process crash      — the CE loses its volatile state (histories);
//                        after restart, historical conditions stay quiet
//                        until the window refills;
//   network partition  — the CE keeps its state but misses the updates
//                        sent during the outage; for an aggressive
//                        condition, the first post-outage update is then
//                        compared against a reading from BEFORE the
//                        outage, manufacturing huge deltas.
//
// This bench sweeps outage duration under both semantics (the
// CrashWindow::lose_state flag) for an aggressive rise condition and
// reports alerts displayed, runs with consistency violations under AD-1,
// and the fraction of "bridge" alerts (window spans the outage).
//
//   ./bench/crash_recovery [--runs 150] [--updates 60] [--seed 14]
#include <iostream>
#include <memory>

#include "check/consistency.hpp"
#include "check/properties.hpp"
#include "core/rcm.hpp"
#include "sim/system.hpp"
#include "trace/generators.hpp"
#include "util/args.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace rcm;
  util::Args args;
  args.add_flag("runs", "150", "runs per cell");
  args.add_flag("updates", "60", "updates per run");
  args.add_flag("seed", "14", "master seed");
  if (!args.parse(argc, argv)) {
    std::cerr << args.error() << "\n" << args.usage("crash_recovery");
    return 2;
  }
  if (args.help_requested()) {
    std::cout << args.usage("crash_recovery");
    return 0;
  }
  const auto runs = static_cast<std::size_t>(args.get_int("runs"));
  const auto updates = static_cast<std::size_t>(args.get_int("updates"));

  auto condition = std::make_shared<const RiseCondition>(
      "rise20", 0, 20.0, Triggering::kAggressive);

  std::cout << "CE outage semantics: process crash (state lost) vs "
               "partition (state kept)\n"
            << "aggressive rise condition, 2 CEs, one suffers the outage, "
               "lossless links otherwise, AD-1; "
            << runs << " runs per cell\n\n";

  util::Table table({"outage (updates)", "semantics", "alerts/run",
                     "bridge alerts/run", "inconsistent runs"});
  for (std::size_t outage : {5u, 15u, 30u}) {
    for (bool lose_state : {true, false}) {
      util::Accumulator alerts, bridges;
      std::size_t inconsistent = 0;
      util::Rng master{static_cast<std::uint64_t>(args.get_int("seed")) +
                       outage * 2 + (lose_state ? 1 : 0)};
      for (std::size_t run = 0; run < runs; ++run) {
        util::Rng trial = master.fork(run + 1);
        trace::UniformParams p;
        p.base.var = 0;
        p.base.count = updates;
        p.lo = 0.0;
        p.hi = 100.0;

        sim::SystemConfig config;
        config.condition = condition;
        config.dm_traces = {trace::uniform_trace(p, trial)};
        config.num_ces = 2;
        config.filter = FilterKind::kAd1;
        config.seed = trial();
        const double down_at =
            trial.uniform(2.0, static_cast<double>(updates - outage - 2));
        config.ce_crashes = {{sim::CrashWindow{
            down_at, down_at + static_cast<double>(outage), lose_state}}};

        const auto r = sim::run_system(config);
        alerts.add(static_cast<double>(r.displayed.size()));
        std::size_t bridge = 0;
        for (const Alert& a : r.displayed) {
          const auto& window = a.histories.at(0);
          if (window.size() == 2 &&
              window[1].seqno - window[0].seqno >
                  static_cast<SeqNo>(outage) / 2)
            ++bridge;
        }
        bridges.add(static_cast<double>(bridge));
        if (!check::check_consistent(r.as_system_run(condition)).consistent)
          ++inconsistent;
      }
      table.add_row({std::to_string(outage),
                     lose_state ? "crash (state lost)" : "partition",
                     util::fmt_double(alerts.mean(), 1),
                     util::fmt_double(bridges.mean(), 2),
                     std::to_string(inconsistent) + "/" +
                         std::to_string(runs)});
    }
  }
  std::cout
      << table.render()
      << "\nReading: under partition semantics the recovering CE raises "
         "'bridge' alerts whose window spans the whole outage — exactly "
         "the aggressive-triggering hazard of §2 — and AD-1 runs become "
         "inconsistent; a crash that clears volatile state avoids bridge "
         "alerts entirely (the history refills before evaluation resumes). "
         "Conservative conditions are immune either way.\n";
  return 0;
}
