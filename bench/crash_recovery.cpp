// Ablation: what a CE outage *means* changes the anomaly profile.
//
// The paper's fault model says a CE "can go down, causing it to miss
// updates". Two distinct real-world events fit that sentence:
//
//   process crash      — the CE loses its volatile state (histories);
//                        after restart, historical conditions stay quiet
//                        until the window refills;
//   network partition  — the CE keeps its state but misses the updates
//                        sent during the outage; for an aggressive
//                        condition, the first post-outage update is then
//                        compared against a reading from BEFORE the
//                        outage, manufacturing huge deltas.
//
// This bench sweeps outage duration under both semantics (the
// CrashWindow::lose_state flag) for an aggressive rise condition and
// reports alerts displayed, runs with consistency violations under AD-1,
// and the fraction of "bridge" alerts (window spans the outage).
//
// Part two measures what the rcm::service durability layer buys on the
// way back up: for a fixed ingest stream it compares cold-start recovery
// (re-evaluating the whole stream, i.e. what a replica without durable
// state needs from its peers) against checkpoint+WAL recovery across a
// sweep of checkpoint cadences, and emits a JSON artifact
// (BENCH_crash_recovery.json) with ingest cost, recovery time, and WAL
// replay length per cadence.
//
//   ./bench/crash_recovery [--runs 150] [--updates 60] [--seed 14]
//                          [--durable-updates 20000] [--out FILE]
#include <chrono>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>
#include <vector>

#include "check/consistency.hpp"
#include "check/properties.hpp"
#include "core/evaluator.hpp"
#include "core/rcm.hpp"
#include "service/durable_replica.hpp"
#include "sim/system.hpp"
#include "trace/generators.hpp"
#include "util/args.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace {

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

struct DurableCell {
  std::size_t checkpoint_every = 0;  ///< 0 = WAL only, never checkpoints
  double ingest_seconds = 0.0;
  double recovery_seconds = 0.0;
  std::uint64_t wal_replayed = 0;
  std::uint64_t checkpoints = 0;
};

}  // namespace

int main(int argc, char** argv) {
  using namespace rcm;
  util::Args args;
  args.add_flag("runs", "150", "runs per cell");
  args.add_flag("updates", "60", "updates per run");
  args.add_flag("seed", "14", "master seed");
  args.add_flag("durable-updates", "20000",
                "ingest stream length for the recovery-time sweep");
  args.add_flag("out", "BENCH_crash_recovery.json",
                "path for the JSON artifact ('' = skip writing)");
  if (!args.parse(argc, argv)) {
    std::cerr << args.error() << "\n" << args.usage("crash_recovery");
    return 2;
  }
  if (args.help_requested()) {
    std::cout << args.usage("crash_recovery");
    return 0;
  }
  const auto runs = static_cast<std::size_t>(args.get_int("runs"));
  const auto updates = static_cast<std::size_t>(args.get_int("updates"));

  auto condition = std::make_shared<const RiseCondition>(
      "rise20", 0, 20.0, Triggering::kAggressive);

  std::cout << "CE outage semantics: process crash (state lost) vs "
               "partition (state kept)\n"
            << "aggressive rise condition, 2 CEs, one suffers the outage, "
               "lossless links otherwise, AD-1; "
            << runs << " runs per cell\n\n";

  util::Table table({"outage (updates)", "semantics", "alerts/run",
                     "bridge alerts/run", "inconsistent runs"});
  for (std::size_t outage : {5u, 15u, 30u}) {
    for (bool lose_state : {true, false}) {
      util::Accumulator alerts, bridges;
      std::size_t inconsistent = 0;
      util::Rng master{static_cast<std::uint64_t>(args.get_int("seed")) +
                       outage * 2 + (lose_state ? 1 : 0)};
      for (std::size_t run = 0; run < runs; ++run) {
        util::Rng trial = master.fork(run + 1);
        trace::UniformParams p;
        p.base.var = 0;
        p.base.count = updates;
        p.lo = 0.0;
        p.hi = 100.0;

        sim::SystemConfig config;
        config.condition = condition;
        config.dm_traces = {trace::uniform_trace(p, trial)};
        config.num_ces = 2;
        config.filter = FilterKind::kAd1;
        config.seed = trial();
        const double down_at =
            trial.uniform(2.0, static_cast<double>(updates - outage - 2));
        config.ce_crashes = {{sim::CrashWindow{
            down_at, down_at + static_cast<double>(outage), lose_state}}};

        const auto r = sim::run_system(config);
        alerts.add(static_cast<double>(r.displayed.size()));
        std::size_t bridge = 0;
        for (const Alert& a : r.displayed) {
          const auto& window = a.histories.at(0);
          if (window.size() == 2 &&
              window[1].seqno - window[0].seqno >
                  static_cast<SeqNo>(outage) / 2)
            ++bridge;
        }
        bridges.add(static_cast<double>(bridge));
        if (!check::check_consistent(r.as_system_run(condition)).consistent)
          ++inconsistent;
      }
      table.add_row({std::to_string(outage),
                     lose_state ? "crash (state lost)" : "partition",
                     util::fmt_double(alerts.mean(), 1),
                     util::fmt_double(bridges.mean(), 2),
                     std::to_string(inconsistent) + "/" +
                         std::to_string(runs)});
    }
  }
  std::cout
      << table.render()
      << "\nReading: under partition semantics the recovering CE raises "
         "'bridge' alerts whose window spans the whole outage — exactly "
         "the aggressive-triggering hazard of §2 — and AD-1 runs become "
         "inconsistent; a crash that clears volatile state avoids bridge "
         "alerts entirely (the history refills before evaluation resumes). "
         "Conservative conditions are immune either way.\n";

  // ---- part two: cold start vs checkpoint+WAL recovery ------------------
  const auto durable_updates =
      static_cast<std::size_t>(args.get_int("durable-updates"));
  util::Rng durable_rng{static_cast<std::uint64_t>(args.get_int("seed")) +
                        9001};
  trace::UniformParams dp;
  dp.base.var = 0;
  dp.base.count = durable_updates;
  dp.lo = 0.0;
  dp.hi = 100.0;
  const std::vector<Update> stream =
      trace::updates_of(trace::uniform_trace(dp, durable_rng));

  const std::filesystem::path root =
      std::filesystem::temp_directory_path() / "rcm_bench_crash_recovery";
  std::filesystem::remove_all(root);

  // Cold start: no durable state; the replica would have to re-evaluate
  // the entire stream (fetched from peers / the source) to rebuild state.
  const auto cold_start = std::chrono::steady_clock::now();
  {
    ConditionEvaluator cold{condition};
    for (const Update& u : stream) cold.replay_update(u);
  }
  const double cold_seconds = seconds_since(cold_start);

  std::vector<DurableCell> cells;
  for (std::size_t every : {std::size_t{0}, std::size_t{64},
                            std::size_t{256}, std::size_t{1024},
                            std::size_t{4096}}) {
    DurableCell cell;
    cell.checkpoint_every = every;
    service::DurabilityOptions opts;
    opts.dir = root / ("every_" + std::to_string(every));
    opts.checkpoint_every = every;
    std::filesystem::create_directories(opts.dir);
    {
      service::DurableReplica replica{condition, 0, opts};
      const auto ingest = std::chrono::steady_clock::now();
      for (const Update& u : stream) replica.on_update(u);
      cell.ingest_seconds = seconds_since(ingest);
      cell.checkpoints = replica.checkpoints_taken();
      // Destruction without a final checkpoint == crash.
    }
    const auto recover = std::chrono::steady_clock::now();
    service::DurableReplica recovered{condition, 0, opts};
    cell.recovery_seconds = seconds_since(recover);
    cell.wal_replayed = recovered.recovery().wal_replayed;
    cells.push_back(cell);
  }

  std::cout << "\nDurable recovery: " << durable_updates
            << "-update ingest, crash, restart (cold replay "
            << util::fmt_double(cold_seconds * 1e3, 2) << " ms)\n\n";
  util::Table durable_table({"checkpoint every", "ingest (ms)",
                             "checkpoints", "WAL replayed", "recovery (ms)",
                             "speedup vs cold"});
  for (const DurableCell& c : cells) {
    durable_table.add_row(
        {c.checkpoint_every == 0 ? "never (WAL only)"
                                 : std::to_string(c.checkpoint_every),
         util::fmt_double(c.ingest_seconds * 1e3, 2),
         std::to_string(c.checkpoints), std::to_string(c.wal_replayed),
         util::fmt_double(c.recovery_seconds * 1e3, 2),
         util::fmt_double(
             c.recovery_seconds > 0.0 ? cold_seconds / c.recovery_seconds
                                      : 0.0,
             1) +
             "x"});
  }
  std::cout
      << durable_table.render()
      << "\nReading: a checkpoint bounds recovery to decoding one snapshot "
         "plus replaying at most checkpoint_every WAL records, so restart "
         "time is flat in stream length, while the WAL-only row grows with "
         "it; tighter cadences trade ingest-path checkpoint writes for "
         "shorter replay. The cold column times in-memory re-evaluation "
         "only — a real cold start also re-acquires the whole stream from "
         "peers, which durable recovery never needs.\n";

  const std::string out_path = args.get("out");
  if (!out_path.empty()) {
    std::ostringstream json;
    json << "{\n"
         << "  \"bench\": \"crash_recovery\",\n"
         << "  \"durable_updates\": " << durable_updates << ",\n"
         << "  \"seed\": " << args.get_int("seed") << ",\n"
         << "  \"cold_replay_seconds\": " << cold_seconds << ",\n"
         << "  \"cells\": [\n";
    for (std::size_t i = 0; i < cells.size(); ++i) {
      const DurableCell& c = cells[i];
      json << "    {\"checkpoint_every\": " << c.checkpoint_every
           << ", \"ingest_seconds\": " << c.ingest_seconds
           << ", \"checkpoints\": " << c.checkpoints
           << ", \"wal_replayed\": " << c.wal_replayed
           << ", \"recovery_seconds\": " << c.recovery_seconds
           << ", \"speedup_vs_cold\": "
           << (c.recovery_seconds > 0.0 ? cold_seconds / c.recovery_seconds
                                        : 0.0)
           << "}" << (i + 1 < cells.size() ? "," : "") << "\n";
    }
    json << "  ]\n}\n";
    std::ofstream out(out_path);
    out << json.str();
    if (!out) {
      std::cerr << "failed to write " << out_path << "\n";
      return 2;
    }
    std::cout << "\nwrote " << out_path << "\n";
  }
  std::filesystem::remove_all(root);
  return 0;
}
