// Shared driver for the property-table benches (Tables 1-3 and the
// AD-3/AD-4/AD-6 variants stated in the paper's prose).
//
// Each bench binary fixes (filter, single-or-multi-variable) and calls
// run_table_bench(), which Monte-Carlo sweeps the four scenario rows and
// prints the paper's claimed cells next to the measured violation counts.
// Exit status is 0 iff every row agrees with the paper.
#pragma once

#include <cstdint>
#include <iostream>
#include <string>
#include <vector>

#include "exp/scenarios.hpp"
#include "exp/table_experiment.hpp"
#include "util/args.hpp"

namespace rcm::bench {

inline int run_table_bench(const std::string& title, FilterKind filter,
                           bool multi_variable, int argc, char** argv) {
  util::Args args;
  args.add_flag("runs", "150", "Monte-Carlo runs per scenario row");
  args.add_flag("updates", multi_variable ? "8" : "40",
                "updates per variable per run");
  args.add_flag("loss", "0.2", "front-link loss for the lossy rows");
  args.add_flag("seed", "42", "master seed");
  args.add_flag("jobs", "1",
                "worker threads (1 = serial, 0 = hardware concurrency); "
                "the measured counts are identical for every value");
  if (!args.parse(argc, argv)) {
    std::cerr << args.error() << "\n" << args.usage(title);
    return 2;
  }
  if (args.help_requested()) {
    std::cout << args.usage(title);
    return 0;
  }

  exp::SweepParams params;
  params.runs = static_cast<std::size_t>(args.get_int("runs"));
  params.updates_per_var = static_cast<std::size_t>(args.get_int("updates"));
  params.seed = static_cast<std::uint64_t>(args.get_int("seed"));
  params.jobs = static_cast<std::size_t>(args.get_int("jobs"));

  std::cout << title << "\n"
            << "(" << params.runs << " randomized runs per row, "
            << params.updates_per_var << " updates/variable, loss "
            << args.get("loss") << "; a property cell 'held' means no "
            << "violation in any run, 'VIOLATED (k/n)' means k runs "
            << "violated it)\n\n";

  std::vector<std::pair<exp::Scenario, exp::PropertyCounts>> rows;
  bool all_agree = true;
  for (exp::Scenario s : exp::kAllScenarios) {
    const exp::ScenarioSpec spec =
        multi_variable ? exp::multi_var_scenario(s, args.get_double("loss"))
                       : exp::single_var_scenario(s, args.get_double("loss"));
    const exp::PropertyCounts counts = sweep_scenario(spec, filter, params);
    all_agree = all_agree &&
                agrees_with_paper(paper_claim(filter, s, multi_variable), counts);
    rows.emplace_back(s, counts);
  }
  std::cout << render_property_table(filter, multi_variable, rows) << "\n"
            << (all_agree ? "RESULT: every row agrees with the paper\n"
                          : "RESULT: MISMATCH with the paper (see table)\n");
  return all_agree ? 0 : 1;
}

}  // namespace rcm::bench
