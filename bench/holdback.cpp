// Ablation of the §4.2 "delayed displaying" alternative against AD-2.
//
// The paper rejects the hold-back scheme because, with unbounded delays,
// a timeout forces out-of-order displays. This bench quantifies the
// whole trade-off surface the discussion implies:
//
//   - AD-2 guarantees orderedness, displays instantly, but discards
//     out-of-order alerts (incomplete);
//   - hold-back(t) never discards, costs ~t of display latency, and its
//     orderedness degrades as t shrinks below the delay spread.
//
//   ./bench/holdback [--runs 100] [--updates 60] [--seed 5]
#include <iostream>
#include <memory>

#include "core/rcm.hpp"
#include "sim/holdback_run.hpp"
#include "sim/system.hpp"
#include "trace/generators.hpp"
#include "util/args.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace rcm;
  util::Args args;
  args.add_flag("runs", "100", "runs per timeout");
  args.add_flag("updates", "60", "updates per run");
  args.add_flag("seed", "5", "master seed");
  if (!args.parse(argc, argv)) {
    std::cerr << args.error() << "\n" << args.usage("holdback");
    return 2;
  }
  if (args.help_requested()) {
    std::cout << args.usage("holdback");
    return 0;
  }
  const auto runs = static_cast<std::size_t>(args.get_int("runs"));
  const auto updates = static_cast<std::size_t>(args.get_int("updates"));
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed"));

  auto make_config = [&](std::uint64_t run_seed) {
    sim::SystemConfig config;
    config.condition =
        std::make_shared<const ThresholdCondition>("hot", 0, 55.0);
    util::Rng rng{run_seed};
    trace::UniformParams p;
    p.base.var = 0;
    p.base.count = updates;
    p.lo = 0.0;
    p.hi = 100.0;
    config.dm_traces = {trace::uniform_trace(p, rng)};
    config.num_ces = 2;
    config.front.loss = 0.25;
    config.front.delay_max = 2.5;  // wider than the 1s update period
    config.back.delay_max = 2.5;
    config.seed = run_seed;
    return config;
  };

  std::cout << "Hold-back vs AD-2 (the §4.2 'delayed displaying' "
               "discussion, quantified)\n"
            << "update period 1s, link delays up to 2.5s, 25% loss, 2 CEs, "
            << runs << " runs per row\n\n";

  util::Table table({"displayer", "displayed/run", "discarded/run",
                     "late (unordered) displays/run", "mean latency",
                     "p99 latency"});

  // AD-2 baseline.
  {
    util::Accumulator displayed, discarded;
    util::Rng master{seed};
    for (std::size_t run = 0; run < runs; ++run) {
      auto config = make_config(master.fork(run)());
      config.filter = FilterKind::kAd2;
      const auto r = sim::run_system(config);
      displayed.add(static_cast<double>(r.displayed.size()));
      discarded.add(static_cast<double>(r.arrived.size() - r.displayed.size()));
    }
    table.add_row({"AD-2", util::fmt_double(displayed.mean(), 1),
                   util::fmt_double(discarded.mean(), 1), "0.0 (guaranteed)",
                   "0.00s", "0.00s"});
  }

  for (double timeout : {0.0, 0.5, 1.0, 2.5, 5.0}) {
    util::Accumulator displayed, late;
    util::Percentiles latency;
    util::Rng master{seed};
    for (std::size_t run = 0; run < runs; ++run) {
      const auto config = make_config(master.fork(run)());
      const auto r = sim::run_holdback_system(config, timeout);
      displayed.add(static_cast<double>(r.displayed.size()));
      late.add(static_cast<double>(r.late_displays));
      for (double l : r.display_latency) latency.add(l);
    }
    table.add_row({"hold-back t=" + util::fmt_double(timeout, 1) + "s",
                   util::fmt_double(displayed.mean(), 1), "0.0 (never)",
                   util::fmt_double(late.mean(), 2),
                   util::fmt_double(latency.percentile(0.5), 2) + "s",
                   util::fmt_double(latency.percentile(0.99), 2) + "s"});
  }

  std::cout << table.render()
            << "\nReading: AD-2 pays in discarded alerts; hold-back pays in "
               "latency, and below the delay spread (2.5s) it also pays in "
               "order violations — the paper's objection. At t >= the delay "
               "bound it matches AD-2's orderedness while staying complete, "
               "which is why 'delayed displaying' only helps when delays "
               "are bounded.\n";
  return 0;
}
