// Reproduces Table 2: single-variable systems under Algorithm AD-2
// (Theorem 5: maximally ordered). Paper rows: Lossless ✓✓✓; every lossy
// row ordered; completeness lost everywhere lossy; aggressive also loses
// consistency.
#include "table_common.hpp"

int main(int argc, char** argv) {
  return rcm::bench::run_table_bench(
      "Table 2 — single-variable systems under Algorithm AD-2",
      rcm::FilterKind::kAd2, /*multi_variable=*/false, argc, argv);
}
