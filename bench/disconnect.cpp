// Store-and-forward back links under Alert Displayer outages (paper §1:
// the PDA is "powered off or disconnected from the network most of the
// time"; §2.1: the CE "is expected to buffer and store the alerts
// anyway").
//
// Sweeps the fraction of time the AD is offline and reports, per
// configuration: alert coverage (every alert some CE raised that was
// eventually displayed), retransmissions, duplicate deliveries absorbed
// by (replica, index) dedup, and display-latency percentiles. Coverage
// must be 100% at every outage level — that is the losslessness the
// paper's back-link model assumes, here actually implemented.
//
//   ./bench/disconnect [--runs 60] [--updates 80] [--seed 21]
#include <iostream>
#include <memory>
#include <set>

#include "core/rcm.hpp"
#include "sim/disconnect.hpp"
#include "trace/generators.hpp"
#include "util/args.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace rcm;
  util::Args args;
  args.add_flag("runs", "60", "runs per outage level");
  args.add_flag("updates", "80", "updates per run");
  args.add_flag("seed", "21", "master seed");
  if (!args.parse(argc, argv)) {
    std::cerr << args.error() << "\n" << args.usage("disconnect");
    return 2;
  }
  if (args.help_requested()) {
    std::cout << args.usage("disconnect");
    return 0;
  }
  const auto runs = static_cast<std::size_t>(args.get_int("runs"));
  const auto updates = static_cast<std::size_t>(args.get_int("updates"));
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed"));

  std::cout << "Alert Displayer outages with store-and-forward back links\n"
            << "2 CEs, 20% front loss, AD-1 filter; " << runs
            << " runs per row; periodic offline windows\n\n";

  util::Table table({"offline fraction", "coverage", "retransmits/run",
                     "dup deliveries/run", "median latency", "p99 latency"});
  bool all_covered = true;
  for (double offline_frac : {0.0, 0.25, 0.5, 0.75, 0.9}) {
    util::Ratio coverage;
    util::Accumulator retransmits, dups;
    util::Percentiles latency;
    util::Rng master{seed + static_cast<std::uint64_t>(offline_frac * 100)};
    for (std::size_t run = 0; run < runs; ++run) {
      util::Rng trial = master.fork(run + 1);
      sim::DisconnectConfig config;
      config.base.condition =
          std::make_shared<const ThresholdCondition>("hot", 0, 55.0);
      trace::UniformParams p;
      p.base.var = 0;
      p.base.count = updates;
      p.lo = 0.0;
      p.hi = 100.0;
      config.base.dm_traces = {trace::uniform_trace(p, trial)};
      config.base.num_ces = 2;
      config.base.front.loss = 0.2;
      config.base.filter = FilterKind::kAd1;
      config.base.seed = trial();
      // Periodic outages: each 10s cycle is offline for offline_frac.
      const double horizon = static_cast<double>(updates) + 5.0;
      for (double t = 2.0; t < horizon && offline_frac > 0.0; t += 10.0)
        config.ad_offline.emplace_back(t, t + 10.0 * offline_frac);

      const auto result = sim::run_disconnectable_system(config);
      std::set<AlertKey> displayed;
      for (const Alert& a : result.run.displayed) displayed.insert(a.key());
      std::set<AlertKey> raised;
      for (const auto& output : result.run.ce_outputs)
        for (const Alert& a : output) raised.insert(a.key());
      for (const AlertKey& k : raised) coverage.add(displayed.count(k) != 0);
      retransmits.add(static_cast<double>(result.retransmissions));
      dups.add(static_cast<double>(result.duplicate_deliveries));
      // Latency relative to a zero-outage ideal is dominated by the
      // wait for reconnection; report raw display-time deltas against
      // the alert's own display time in this run (arrival->display is
      // not observable here, so report absolute display times spread).
      for (std::size_t i = 0; i + 1 < result.display_times.size(); ++i) {
        const double gap =
            result.display_times[i + 1] - result.display_times[i];
        if (gap >= 0) latency.add(gap);
      }
    }
    all_covered = all_covered && coverage.value() == 1.0;
    table.add_row({util::fmt_percent(offline_frac, 0),
                   util::fmt_percent(coverage.value()),
                   util::fmt_double(retransmits.mean(), 1),
                   util::fmt_double(dups.mean(), 1),
                   util::fmt_double(latency.percentile(0.5), 2) + "s",
                   util::fmt_double(latency.percentile(0.99), 2) + "s"});
  }
  std::cout << table.render()
            << "\n(coverage = raised alerts eventually displayed; 100% at "
               "every outage level is the implemented version of the "
               "paper's lossless, buffered back links. The p99 inter-"
               "display gap grows with outages: alerts bunch up at "
               "reconnection.)\n"
            << (all_covered ? "RESULT: no alert was ever lost\n"
                            : "RESULT: ALERT LOSS DETECTED\n");
  return all_covered ? 0 : 1;
}
