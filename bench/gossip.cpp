// CE anti-entropy sweep (extension beyond the paper): how fast must
// replica-to-replica repair run to neutralize the anomalies the paper's
// AD algorithms exist to manage?
//
// For a conservative historical condition under AD-1 at 30% loss:
// Theorem 3 predicts completeness violations (split knowledge: each
// replica holds a different half of a consecutive pair). Repair plugs
// gaps only while they are fresh — a forwarded update older than the
// recipient's watermark is discarded (the CE model cannot rewrite its
// history) — so the repair interval races the update period.
//
//   ./bench/gossip [--runs 100] [--updates 40] [--seed 19]
#include <iostream>
#include <memory>

#include "check/completeness.hpp"
#include "check/properties.hpp"
#include "exp/scenarios.hpp"
#include "sim/gossip_run.hpp"
#include "util/args.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace rcm;
  util::Args args;
  args.add_flag("runs", "100", "runs per repair interval");
  args.add_flag("updates", "40", "updates per run");
  args.add_flag("seed", "19", "master seed");
  if (!args.parse(argc, argv)) {
    std::cerr << args.error() << "\n" << args.usage("gossip");
    return 2;
  }
  if (args.help_requested()) {
    std::cout << args.usage("gossip");
    return 0;
  }
  const auto runs = static_cast<std::size_t>(args.get_int("runs"));
  const auto updates = static_cast<std::size_t>(args.get_int("updates"));

  const auto spec =
      exp::single_var_scenario(exp::Scenario::kLossyConservative, 0.3);

  std::cout << "CE anti-entropy vs Theorem 3's incompleteness\n"
            << "conservative historical condition, 2 CEs, 30% loss, AD-1, "
               "update period 1s; "
            << runs << " runs per row\n\n";

  util::Table table({"repair interval", "incomplete runs", "repairs/run",
                     "accepted/run", "mean updates per CE"});
  for (double interval : {-1.0, 4.0, 1.0, 0.5, 0.25, 0.1}) {
    std::size_t incomplete = 0;
    util::Accumulator repairs, accepted, inputs;
    util::Rng master{static_cast<std::uint64_t>(args.get_int("seed")) +
                     static_cast<std::uint64_t>((interval + 2) * 100)};
    for (std::size_t run = 0; run < runs; ++run) {
      util::Rng trial = master.fork(run + 1);
      sim::SystemConfig config;
      config.condition = spec.condition;
      config.dm_traces = spec.make_traces(updates, trial);
      config.num_ces = 2;
      config.front.loss = spec.front_loss;
      config.filter = FilterKind::kAd1;
      config.seed = trial();

      sim::GossipParams gossip;
      gossip.enabled = interval > 0.0;
      gossip.interval = gossip.enabled ? interval : 1.0;

      const auto r = sim::run_gossip_system(config, gossip);
      if (check::check_complete(r.run.as_system_run(spec.condition)) ==
          check::Verdict::kViolated)
        ++incomplete;
      repairs.add(static_cast<double>(r.repairs_sent));
      accepted.add(static_cast<double>(r.repairs_accepted));
      double total = 0;
      for (const auto& in : r.run.ce_inputs)
        total += static_cast<double>(in.size());
      inputs.add(total / 2.0);
    }
    table.add_row({interval > 0 ? util::fmt_double(interval, 2) + "s"
                                : "off",
                   std::to_string(incomplete) + "/" + std::to_string(runs),
                   util::fmt_double(repairs.mean(), 1),
                   util::fmt_double(accepted.mean(), 1),
                   util::fmt_double(inputs.mean(), 1)});
  }
  std::cout
      << table.render()
      << "\nReading: a repair can only land in the window between a loss "
         "and the next direct delivery, so slow gossip repairs only a "
         "fraction of gaps (stale forwards are discarded); at or below "
         "the update period each replica converges to the combined "
         "knowledge and Theorem 3's completeness violations vanish. "
         "Gossip complements, not replaces, the AD algorithms: "
         "both-replica losses and alerts raised mid-repair still need "
         "them.\n";
  return 0;
}
