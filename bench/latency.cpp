// Alert delivery latency: time from the Data Monitor emitting the
// triggering update to the user seeing the alert, per AD algorithm and
// per replication degree.
//
// The paper's AD algorithms are pass/drop decisions — they add no
// queueing delay — so their latency distributions should coincide and be
// dominated by the two link hops. What replication changes is the
// latency of FIRST display for alerts one replica would have missed or
// delivered late: the fastest replica wins the race. The §4.2 hold-back
// displayer is included as the contrast: its guarantees cost a full
// timeout of latency.
//
//   ./bench/latency [--runs 80] [--updates 60] [--seed 27]
#include <iostream>
#include <map>
#include <memory>
#include <set>

#include "core/rcm.hpp"
#include "sim/holdback_run.hpp"
#include "sim/system.hpp"
#include "trace/generators.hpp"
#include "util/args.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace {

using namespace rcm;

/// Emission time of each (seqno) of the single DM trace.
std::map<SeqNo, double> emission_times(const trace::Trace& trace) {
  std::map<SeqNo, double> out;
  for (const auto& tu : trace) out[tu.update.seqno] = tu.time;
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  util::Args args;
  args.add_flag("runs", "80", "runs per configuration");
  args.add_flag("updates", "60", "updates per run");
  args.add_flag("seed", "27", "master seed");
  if (!args.parse(argc, argv)) {
    std::cerr << args.error() << "\n" << args.usage("latency");
    return 2;
  }
  if (args.help_requested()) {
    std::cout << args.usage("latency");
    return 0;
  }
  const auto runs = static_cast<std::size_t>(args.get_int("runs"));
  const auto updates = static_cast<std::size_t>(args.get_int("updates"));
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed"));

  auto condition =
      std::make_shared<const ThresholdCondition>("hot", 0, 55.0);

  std::cout << "Emission-to-display latency (link delays 5-300ms per hop, "
               "20% front loss)\n"
            << runs << " runs per row, " << updates << " updates each\n\n";

  util::Table table({"configuration", "alerts/run", "median", "p95", "p99"});

  auto make_config = [&](std::size_t ces, FilterKind filter,
                         std::uint64_t run_seed) {
    sim::SystemConfig config;
    config.condition = condition;
    util::Rng rng{run_seed};
    trace::UniformParams p;
    p.base.var = 0;
    p.base.count = updates;
    p.lo = 0.0;
    p.hi = 100.0;
    config.dm_traces = {trace::uniform_trace(p, rng)};
    config.num_ces = ces;
    config.front.loss = 0.2;
    config.front.delay_min = 0.005;
    config.front.delay_max = 0.300;
    config.back.delay_min = 0.005;
    config.back.delay_max = 0.300;
    config.filter = filter;
    config.seed = run_seed;
    return config;
  };

  struct Row {
    std::string label;
    std::size_t ces;
    FilterKind filter;
  };
  const Row rows[] = {
      {"1 CE, pass-all (non-replicated)", 1, FilterKind::kPassAll},
      {"2 CEs, AD-1", 2, FilterKind::kAd1},
      {"2 CEs, AD-4", 2, FilterKind::kAd4},
      {"3 CEs, AD-1", 3, FilterKind::kAd1},
      {"3 CEs, AD-4", 3, FilterKind::kAd4},
  };
  for (const Row& row : rows) {
    util::Percentiles latency;
    util::Accumulator alerts;
    util::Rng master{seed};
    for (std::size_t run = 0; run < runs; ++run) {
      const auto config = make_config(row.ces, row.filter, master.fork(run)());
      const auto r = sim::run_system(config);
      const auto emitted = emission_times(config.dm_traces[0]);
      alerts.add(static_cast<double>(r.displayed.size()));
      // First display per alert key, against the trigger's emission.
      std::set<AlertKey> seen;
      for (std::size_t i = 0; i < r.displayed.size(); ++i) {
        const Alert& a = r.displayed[i];
        if (!seen.insert(a.key()).second) continue;
        const auto it = emitted.find(a.seqno(0));
        if (it != emitted.end())
          latency.add(r.display_times[i] - it->second);
      }
    }
    table.add_row({row.label, util::fmt_double(alerts.mean(), 1),
                   util::fmt_double(latency.percentile(0.5) * 1000, 0) + "ms",
                   util::fmt_double(latency.percentile(0.95) * 1000, 0) + "ms",
                   util::fmt_double(latency.percentile(0.99) * 1000, 0) + "ms"});
  }

  // Hold-back contrast.
  for (double timeout : {0.5, 2.0}) {
    util::Percentiles latency;
    util::Accumulator alerts;
    util::Rng master{seed};
    for (std::size_t run = 0; run < runs; ++run) {
      const auto config =
          make_config(2, FilterKind::kPassAll, master.fork(run)());
      const auto r = sim::run_holdback_system(config, timeout);
      const auto emitted = emission_times(config.dm_traces[0]);
      alerts.add(static_cast<double>(r.displayed.size()));
      // Hold-back latency is arrival->display; add the emission->arrival
      // part by reconstruction: total = (arrival - emission) + held time.
      // run_holdback_system reports held time directly; approximate the
      // first hop with the configured mean link delay for the report.
      for (double held : r.display_latency)
        latency.add(held + 2 * 0.1525);  // two hops, mean delay each
    }
    table.add_row({"2 CEs, hold-back t=" + util::fmt_double(timeout, 1) + "s",
                   util::fmt_double(alerts.mean(), 1),
                   util::fmt_double(latency.percentile(0.5) * 1000, 0) + "ms",
                   util::fmt_double(latency.percentile(0.95) * 1000, 0) + "ms",
                   util::fmt_double(latency.percentile(0.99) * 1000, 0) + "ms"});
  }

  std::cout << table.render()
            << "\nReading: the AD-i algorithms add no latency — replication "
               "even shaves the tail, since the fastest replica's alert "
               "displays first. Only the hold-back variant pays latency "
               "for its (probabilistic) orderedness.\n";
  return 0;
}
