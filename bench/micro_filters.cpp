// Micro-benchmarks (google-benchmark): the per-alert cost of each AD
// algorithm, the per-update cost of condition evaluation (built-in vs
// expression-compiled), and the property checkers. The paper argues the
// AD algorithms are cheap enough for PDA-class alert displayers; these
// numbers substantiate that for this implementation.
#include <benchmark/benchmark.h>

#include <memory>

#include "check/consistency.hpp"
#include "core/rcm.hpp"
#include "sim/simulator.hpp"
#include "sim/link.hpp"
#include "util/rng.hpp"
#include "wire/codec.hpp"
#include "wire/frame.hpp"

namespace {

using namespace rcm;

// A realistic alert mix: degree-2 windows over a lossy stream, some
// duplicated, some out of order — produced once and replayed.
std::vector<Alert> make_alert_mix(std::size_t n) {
  util::Rng rng{7};
  auto cond = std::make_shared<const RiseCondition>("rise", 0, 10.0,
                                                    Triggering::kAggressive);
  ConditionEvaluator ce1{cond, "CE1"}, ce2{cond, "CE2"};
  std::vector<Alert> out;
  SeqNo s = 1;
  while (out.size() < n) {
    const Update u{0, s++, rng.uniform(0.0, 100.0)};
    if (!rng.bernoulli(0.2))
      if (auto a = ce1.on_update(u)) out.push_back(*a);
    if (!rng.bernoulli(0.2))
      if (auto a = ce2.on_update(u)) out.push_back(*a);
  }
  out.resize(n);
  return out;
}

const std::vector<Alert>& alert_mix() {
  static const std::vector<Alert> mix = make_alert_mix(4096);
  return mix;
}

template <typename Filter>
void run_filter_bench(benchmark::State& state, Filter& filter) {
  const auto& mix = alert_mix();
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(filter.offer(mix[i]));
    if (++i == mix.size()) {
      i = 0;
      state.PauseTiming();
      filter.reset();
      state.ResumeTiming();
    }
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}

void BM_FilterAd1(benchmark::State& state) {
  Ad1DuplicateFilter f;
  run_filter_bench(state, f);
}
BENCHMARK(BM_FilterAd1);

void BM_FilterAd2(benchmark::State& state) {
  Ad2OrderedFilter f{0};
  run_filter_bench(state, f);
}
BENCHMARK(BM_FilterAd2);

void BM_FilterAd3(benchmark::State& state) {
  Ad3ConsistentFilter f;
  run_filter_bench(state, f);
}
BENCHMARK(BM_FilterAd3);

void BM_FilterAd4(benchmark::State& state) {
  Ad4OrderedConsistentFilter f{0};
  run_filter_bench(state, f);
}
BENCHMARK(BM_FilterAd4);

void BM_FilterAd5(benchmark::State& state) {
  Ad5MultiOrderedFilter f{{0}};
  run_filter_bench(state, f);
}
BENCHMARK(BM_FilterAd5);

void BM_FilterAd6(benchmark::State& state) {
  Ad6MultiOrderedConsistentFilter f{{0}};
  run_filter_bench(state, f);
}
BENCHMARK(BM_FilterAd6);

// ------------------------------------------------- condition evaluation ----

void BM_EvaluateBuiltinRise(benchmark::State& state) {
  auto cond = std::make_shared<const RiseCondition>("rise", 0, 10.0,
                                                    Triggering::kAggressive);
  ConditionEvaluator ce{cond};
  util::Rng rng{3};
  SeqNo s = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(ce.on_update({0, s++, rng.uniform(0.0, 100.0)}));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_EvaluateBuiltinRise);

void BM_EvaluateExpressionRise(benchmark::State& state) {
  VariableRegistry vars;
  auto cond = expr::compile_condition("rise", "x[0] - x[-1] > 10", vars);
  ConditionEvaluator ce{cond};
  util::Rng rng{3};
  SeqNo s = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(ce.on_update({0, s++, rng.uniform(0.0, 100.0)}));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_EvaluateExpressionRise);

void BM_EvaluateExpressionConservative(benchmark::State& state) {
  VariableRegistry vars;
  auto cond = expr::compile_condition(
      "rise", "x[0] - x[-1] > 10 && consecutive(x)", vars);
  ConditionEvaluator ce{cond};
  util::Rng rng{3};
  SeqNo s = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(ce.on_update({0, s++, rng.uniform(0.0, 100.0)}));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_EvaluateExpressionConservative);

// ------------------------------------------------------- alert digests ----

void BM_AlertKey(benchmark::State& state) {
  const auto& mix = alert_mix();
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(mix[i].key());
    if (++i == mix.size()) i = 0;
  }
}
BENCHMARK(BM_AlertKey);

void BM_AlertChecksum(benchmark::State& state) {
  const auto& mix = alert_mix();
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(mix[i].checksum());
    if (++i == mix.size()) i = 0;
  }
}
BENCHMARK(BM_AlertChecksum);

// ------------------------------------------------------ property check ----

// ----------------------------------------------------- sim primitives ----

void BM_SimulatorEventThroughput(benchmark::State& state) {
  for (auto _ : state) {
    sim::Simulator sim;
    int counter = 0;
    for (int i = 0; i < 1000; ++i)
      sim.schedule_at(static_cast<double>(i), [&counter] { ++counter; });
    sim.run();
    benchmark::DoNotOptimize(counter);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          1000);
}
BENCHMARK(BM_SimulatorEventThroughput);

void BM_LossyLinkThroughput(benchmark::State& state) {
  for (auto _ : state) {
    sim::Simulator sim;
    std::size_t delivered = 0;
    sim::Link<Update> link{sim,
                           {0.001, 0.01, 0.2},
                           util::Rng{5},
                           [&delivered](const Update&) { ++delivered; }};
    for (SeqNo s = 1; s <= 1000; ++s)
      sim.schedule_at(static_cast<double>(s) * 0.001,
                      [&link, s] { link.send({0, s, 1.0}); });
    sim.run();
    benchmark::DoNotOptimize(delivered);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          1000);
}
BENCHMARK(BM_LossyLinkThroughput);

// ------------------------------------------------------- wire protocol ----

void BM_WireEncodeDecodeUpdate(benchmark::State& state) {
  const Update u{3, 123456, 2999.5};
  for (auto _ : state) {
    const auto bytes = wire::encode_update(u);
    benchmark::DoNotOptimize(wire::decode_update(bytes));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_WireEncodeDecodeUpdate);

void BM_WireFrameRoundTrip(benchmark::State& state) {
  const auto payload = wire::encode_update({3, 123456, 2999.5});
  for (auto _ : state) {
    const auto framed = wire::frame(payload);
    wire::FrameCursor cursor;
    cursor.feed(framed);
    benchmark::DoNotOptimize(cursor.next());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_WireFrameRoundTrip);

// ------------------------------------------------------ property check ----

void BM_ConsistencyCheck(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  auto cond = std::make_shared<const RiseCondition>("rise", 0, 10.0,
                                                    Triggering::kAggressive);
  util::Rng rng{5};
  std::vector<Update> u;
  for (std::size_t i = 0; i < n; ++i)
    u.push_back({0, static_cast<SeqNo>(i + 1), rng.uniform(0.0, 100.0)});
  check::SystemRun run;
  run.condition = cond;
  run.ce_inputs = {u};
  run.displayed = evaluate_trace(cond, u);
  for (auto _ : state) {
    benchmark::DoNotOptimize(check::check_consistent(run));
  }
  state.SetComplexityN(static_cast<std::int64_t>(n));
}
BENCHMARK(BM_ConsistencyCheck)->Range(16, 1024)->Complexity();

}  // namespace
