// Reproduces Theorem 10 as a table: multi-variable systems under
// Algorithm AD-1 are neither ordered nor consistent (hence incomplete)
// in every scenario — interleaving divergence alone breaks them, even
// with lossless links.
#include "table_common.hpp"

int main(int argc, char** argv) {
  return rcm::bench::run_table_bench(
      "Theorem 10 — multi-variable systems under Algorithm AD-1",
      rcm::FilterKind::kAd1, /*multi_variable=*/true, argc, argv);
}
