// Substrate comparison: the same monitoring workload executed on the
// three data paths this library provides —
//
//   sim      deterministic discrete-event simulator (virtual time),
//   threads  in-process threaded runtime, serialized + framed messages,
//   sockets  loopback UDP/TCP deployment through the kernel stack,
//
// reporting wall-clock runtime, update throughput, and (the important
// part) that all three display the SAME alert key set for a lossless
// run — the simulator's results transfer to the real data paths.
//
//   ./bench/substrates [--updates 5000] [--ces 2] [--seed 10]
#include <chrono>
#include <iostream>
#include <memory>
#include <set>

#include "core/rcm.hpp"
#include "net/deployment.hpp"
#include "runtime/system.hpp"
#include "sim/system.hpp"
#include "trace/generators.hpp"
#include "util/args.hpp"
#include "util/table.hpp"

namespace {

using namespace rcm;

std::set<AlertKey> key_set(const std::vector<Alert>& alerts) {
  std::set<AlertKey> out;
  for (const Alert& a : alerts) out.insert(a.key());
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  util::Args args;
  args.add_flag("updates", "5000", "updates in the workload");
  args.add_flag("ces", "2", "CE replicas");
  args.add_flag("seed", "10", "seed");
  if (!args.parse(argc, argv)) {
    std::cerr << args.error() << "\n" << args.usage("substrates");
    return 2;
  }
  if (args.help_requested()) {
    std::cout << args.usage("substrates");
    return 0;
  }
  const auto updates = static_cast<std::size_t>(args.get_int("updates"));
  const auto ces = static_cast<std::size_t>(args.get_int("ces"));
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed"));

  auto condition =
      std::make_shared<const ThresholdCondition>("hot", 0, 55.0);
  util::Rng rng{seed};
  trace::UniformParams p;
  p.base.var = 0;
  p.base.count = updates;
  p.lo = 0.0;
  p.hi = 100.0;
  const auto trace = trace::uniform_trace(p, rng);

  std::cout << "One workload, three data paths (lossless, " << updates
            << " updates, " << ces << " CEs, AD-1)\n\n";
  util::Table table(
      {"substrate", "wall time", "updates/s (per CE)", "alerts displayed"});

  std::set<AlertKey> sim_keys;
  {
    sim::SystemConfig config;
    config.condition = condition;
    config.dm_traces = {trace};
    config.num_ces = ces;
    config.filter = FilterKind::kAd1;
    config.seed = seed;
    const auto t0 = std::chrono::steady_clock::now();
    const auto r = sim::run_system(config);
    const double secs =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
    sim_keys = key_set(r.displayed);
    table.add_row({"simulator", util::fmt_double(secs * 1000, 1) + "ms",
                   util::fmt_double(static_cast<double>(updates) / secs, 0),
                   std::to_string(r.displayed.size())});
  }
  std::set<AlertKey> thread_keys;
  {
    runtime::ThreadedConfig config;
    config.condition = condition;
    config.dm_traces = {trace};
    config.num_ces = ces;
    config.filter = FilterKind::kAd1;
    config.seed = seed;
    const auto t0 = std::chrono::steady_clock::now();
    const auto r = runtime::run_threaded(config);
    const double secs =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
    thread_keys = key_set(r.displayed);
    table.add_row({"threads+wire", util::fmt_double(secs * 1000, 1) + "ms",
                   util::fmt_double(static_cast<double>(updates) / secs, 0),
                   std::to_string(r.displayed.size())});
  }
  std::set<AlertKey> socket_keys;
  {
    net::NetworkConfig config;
    config.condition = condition;
    config.dm_traces = {trace};
    config.num_ces = ces;
    config.filter = FilterKind::kAd1;
    config.seed = seed;
    const auto t0 = std::chrono::steady_clock::now();
    const auto r = net::run_networked(config);
    const double secs =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
    socket_keys = key_set(r.displayed);
    table.add_row({"loopback sockets", util::fmt_double(secs * 1000, 1) + "ms",
                   util::fmt_double(static_cast<double>(updates) / secs, 0),
                   std::to_string(r.displayed.size())});
  }

  std::cout << table.render() << "\nalert key sets agree across substrates: "
            << ((sim_keys == thread_keys && thread_keys == socket_keys)
                    ? "YES"
                    : "NO — BUG")
            << "\n";
  return (sim_keys == thread_keys && thread_keys == socket_keys) ? 0 : 1;
}
