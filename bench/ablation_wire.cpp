// Wire-format ablation for §2's observation that alerts need not carry
// full histories: "some systems do not need this information at all.
// Others need only the update sequence numbers... in which case it may
// be sufficient to send just a checksum of the histories."
//
// For each AD algorithm this bench reports (a) which alert encoding is
// sufficient for its decisions, (b) the mean bytes/alert on the back
// links under the three encodings for a degree sweep, and (c) an
// empirical equivalence check: AD-1 driven by checksums only makes
// exactly the same decisions as AD-1 on full histories across thousands
// of randomized alerts.
//
//   ./bench/ablation_wire [--runs 60] [--updates 50] [--seed 12]
#include <cstdint>
#include <iostream>
#include <memory>
#include <unordered_set>

#include "core/rcm.hpp"
#include "exp/scenarios.hpp"
#include "sim/system.hpp"
#include "util/args.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace {

using namespace rcm;

// Encoded sizes, mirroring a compact binary wire format:
//   header: condname id (4) + per-variable count (2)
//   full:   per update: var (4) + seqno (8) + value (8)
//   seqnos: per update: var (4) + seqno (8)
//   checksum: fixed 8-byte digest (plus header)
std::size_t bytes_full(const Alert& a) {
  std::size_t n = 6;
  for (const auto& [var, window] : a.histories) n += window.size() * 20;
  return n;
}
std::size_t bytes_seqnos(const Alert& a) {
  std::size_t n = 6;
  for (const auto& [var, window] : a.histories) n += window.size() * 12;
  return n;
}
std::size_t bytes_checksum(const Alert&) { return 6 + 8; }

}  // namespace

int main(int argc, char** argv) {
  util::Args args;
  args.add_flag("runs", "60", "randomized runs for the equivalence check");
  args.add_flag("updates", "50", "updates per run");
  args.add_flag("seed", "12", "master seed");
  if (!args.parse(argc, argv)) {
    std::cerr << args.error() << "\n" << args.usage("ablation_wire");
    return 2;
  }
  if (args.help_requested()) {
    std::cout << args.usage("ablation_wire");
    return 0;
  }

  std::cout << "Wire-format ablation (paper §2): what must an alert carry?\n\n"
            << "algorithm   needs\n"
            << "---------   -----------------------------------------\n"
            << "pass/drop   nothing (condname only)\n"
            << "AD-1        equality of histories -> checksum suffices\n"
            << "AD-2/AD-5   a.seqno per variable -> last seqnos suffice\n"
            << "AD-3/AD-4/AD-6  full history seqnos (Received/Missed sets)\n\n";

  // Bytes/alert for conditions of increasing degree.
  std::cout << "bytes per alert vs condition degree (single variable):\n";
  util::Table bytes_table({"degree", "full histories", "seqnos only",
                           "checksum", "checksum saving"});
  for (int degree = 1; degree <= 8; ++degree) {
    Alert a;
    a.cond = "c";
    std::vector<Update> window;
    for (int i = 0; i < degree; ++i)
      window.push_back({0, static_cast<SeqNo>(i + 1), 1.0});
    a.histories.emplace(0, std::move(window));
    bytes_table.add_row(
        {std::to_string(degree), std::to_string(bytes_full(a)),
         std::to_string(bytes_seqnos(a)), std::to_string(bytes_checksum(a)),
         util::fmt_percent(1.0 - static_cast<double>(bytes_checksum(a)) /
                                     static_cast<double>(bytes_full(a)))});
  }
  std::cout << bytes_table.render() << "\n";

  // Equivalence check: AD-1 by checksum == AD-1 by full key, over
  // randomized aggressive-condition runs (the alert mix with the most
  // distinct windows).
  const auto runs = static_cast<std::size_t>(args.get_int("runs"));
  const auto spec =
      rcm::exp::single_var_scenario(rcm::exp::Scenario::kLossyAggressive);
  util::Rng master{static_cast<std::uint64_t>(args.get_int("seed"))};
  std::size_t alerts_checked = 0, mismatches = 0;
  util::Accumulator full_bytes, checksum_bytes;
  for (std::size_t run = 0; run < runs; ++run) {
    util::Rng trial = master.fork(run + 1);
    sim::SystemConfig config;
    config.condition = spec.condition;
    config.dm_traces = spec.make_traces(
        static_cast<std::size_t>(args.get_int("updates")), trial);
    config.num_ces = 3;
    config.front.loss = 0.25;
    config.filter = FilterKind::kPassAll;
    config.seed = trial();
    const auto r = sim::run_system(config);

    Ad1DuplicateFilter by_key;
    std::unordered_set<std::uint64_t> by_checksum;
    for (const Alert& a : r.arrived) {
      const bool key_decision = by_key.offer(a);
      const bool checksum_decision = by_checksum.insert(a.checksum()).second;
      if (key_decision != checksum_decision) ++mismatches;
      ++alerts_checked;
      full_bytes.add(static_cast<double>(bytes_full(a)));
      checksum_bytes.add(static_cast<double>(bytes_checksum(a)));
    }
  }
  std::cout << "AD-1 equivalence: " << alerts_checked
            << " alerts filtered by full-history keys vs 64-bit checksums: "
            << mismatches << " decision mismatches\n"
            << "mean wire bytes/alert: " << util::fmt_double(full_bytes.mean(), 1)
            << " (full) vs " << util::fmt_double(checksum_bytes.mean(), 1)
            << " (checksum)\n"
            << "\n(64-bit digests can collide in principle; at monitoring "
               "alert rates the expected time to a collision is astronomical, "
               "matching the paper's suggestion.)\n";
  return mismatches == 0 ? 0 : 1;
}
