// Shard-routing bench: ingest throughput and alert latency vs shard
// count, for a cross-shard (degree-2) condition whose updates route
// through the consistent-hash map and join at the merge tier.
//
// For each shard count N in the sweep, builds a ShardedCluster on a
// scratch directory (|x - y| > 30, one replica per shard, merge tier
// evaluating the global condition) and measures:
//
//   updates/sec   — wall time to route `--updates` updates through the
//                   shard map and drain every queue (await_idle), i.e.
//                   the full admit → forward → merge-evaluate pipeline;
//   alert latency — `--probes` rounds of: send one triggering pair to
//                   the owning shards, poll the evaluating instance's
//                   displayed counter until the alert lands. Reported as
//                   mean/max milliseconds — the price of the extra
//                   cross-shard hop, visible next to the N=1 row.
//
// Exit status is 1 if any sweep point times out or displays nothing
// (the bench doubles as a routing correctness check). Emits a JSON
// artifact (BENCH_shard_routing.json); `ctest -L bench_smoke` runs a
// tiny sweep.
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/builtin_conditions.hpp"
#include "net/socket.hpp"
#include "service/shard_cluster.hpp"
#include "util/args.hpp"
#include "wire/codec.hpp"
#include "wire/frame.hpp"
#include "wire/shard.hpp"

namespace {

using namespace rcm;
using Clock = std::chrono::steady_clock;

struct SweepRow {
  std::size_t shards = 0;
  std::size_t updates = 0;
  double ingest_seconds = 0.0;
  std::size_t probes = 0;
  double mean_latency_ms = 0.0;
  double max_latency_ms = 0.0;
  std::uint64_t displayed = 0;
  bool complete = false;
};

std::vector<std::size_t> parse_counts(const std::string& csv) {
  std::vector<std::size_t> out;
  std::stringstream ss{csv};
  std::string item;
  while (std::getline(ss, item, ','))
    if (!item.empty()) out.push_back(std::stoul(item));
  return out;
}

/// Sends `u` to every replica port of its owner shard, routed by the
/// wire map like an external feeder.
void send_routed(net::UdpSocket& udp, const wire::ShardMap& map,
                 service::ShardedCluster& cluster, const Update& u) {
  const std::uint32_t owner = cluster.owner(u.var);
  const auto framed = wire::frame(wire::encode_update(u));
  for (const wire::ShardMapEntry& e : map.shards) {
    if (e.shard_id != owner) continue;
    for (const std::uint16_t port : e.replica_ports) {
      try {
        udp.send_to(port, framed);
      } catch (const std::system_error&) {
      }
    }
  }
}

SweepRow run_sweep_point(std::size_t shards, std::size_t updates,
                         std::size_t probes,
                         const std::filesystem::path& scratch) {
  SweepRow row;
  row.shards = shards;
  row.updates = updates;
  row.probes = probes;

  const std::filesystem::path dir =
      scratch / ("n" + std::to_string(shards));
  std::filesystem::remove_all(dir);

  service::ShardClusterConfig cfg;
  cfg.condition =
      std::make_shared<AbsDiffCondition>("bench.absdiff", 0, 1, 30.0);
  cfg.filter = FilterKind::kPassAll;  // measure the pipeline, not the AD
  cfg.num_shards = shards;
  cfg.replicas_per_shard = 1;
  cfg.merge_replicas = 1;
  cfg.data_dir = dir;
  cfg.checkpoint_every = 1u << 20;  // no mid-run checkpoints
  cfg.poll_interval = std::chrono::milliseconds{2};
  service::ShardedCluster cluster{std::move(cfg)};
  const wire::ShardMap map = cluster.shard_map();

  net::UdpSocket udp;
  SeqNo seq = 0;

  // Ingest phase: alternating triggering pairs, routed by the map.
  const auto ingest_start = Clock::now();
  for (std::size_t i = 0; i < updates; i += 2) {
    ++seq;
    send_routed(udp, map, cluster, Update{0, seq, 90.0});
    send_routed(udp, map, cluster, Update{1, seq, 10.0});
  }
  const bool idle = cluster.await_idle(std::chrono::milliseconds{20},
                                       std::chrono::seconds{60});
  row.ingest_seconds =
      std::chrono::duration<double>(Clock::now() - ingest_start).count();

  // Latency probes: one triggering pair, then poll the evaluating
  // instance's displayed counter until the alert surfaces.
  double total_ms = 0.0;
  std::size_t landed = 0;
  for (std::size_t p = 0; p < probes; ++p) {
    const std::uint64_t before =
        cluster.evaluating_service().status().displayed;
    ++seq;
    const auto probe_start = Clock::now();
    send_routed(udp, map, cluster, Update{0, seq, 90.0});
    send_routed(udp, map, cluster, Update{1, seq, 10.0});
    const auto deadline = Clock::now() + std::chrono::seconds{5};
    while (cluster.evaluating_service().status().displayed <= before &&
           Clock::now() < deadline)
      std::this_thread::sleep_for(std::chrono::microseconds{50});
    const double ms = std::chrono::duration<double, std::milli>(
                          Clock::now() - probe_start)
                          .count();
    if (cluster.evaluating_service().status().displayed > before) {
      ++landed;
      total_ms += ms;
      row.max_latency_ms = std::max(row.max_latency_ms, ms);
    }
  }
  if (landed > 0) row.mean_latency_ms = total_ms / static_cast<double>(landed);

  row.displayed = cluster.evaluating_service().status().displayed;
  row.complete = idle && landed == probes && row.displayed > 0;
  cluster.drain();
  std::error_code ec;
  std::filesystem::remove_all(dir, ec);
  return row;
}

}  // namespace

int main(int argc, char** argv) {
  rcm::util::Args args;
  args.add_flag("shards", "1,2,4,8", "comma-separated shard counts");
  args.add_flag("updates", "20000", "updates per sweep point");
  args.add_flag("probes", "20", "alert-latency probe rounds per point");
  args.add_flag("scratch", "", "scratch dir (default: system temp)");
  args.add_flag("out", "BENCH_shard_routing.json",
                "path for the JSON artifact ('' = skip writing)");
  if (!args.parse(argc, argv)) {
    std::cerr << args.error() << "\n" << args.usage("shard_routing");
    return 2;
  }
  if (args.help_requested()) {
    std::cout << args.usage("shard_routing");
    return 0;
  }

  const std::vector<std::size_t> counts = parse_counts(args.get("shards"));
  const auto updates = static_cast<std::size_t>(args.get_int("updates"));
  const auto probes = static_cast<std::size_t>(args.get_int("probes"));
  const std::filesystem::path scratch =
      args.get("scratch").empty()
          ? std::filesystem::temp_directory_path() / "rcm_bench_shard"
          : std::filesystem::path{args.get("scratch")};
  std::filesystem::create_directories(scratch);

  std::cout << "shard_routing: " << updates << " updates per point, "
            << probes << " latency probes\n"
            << "  shards   k-updates/s   mean-lat ms   max-lat ms"
            << "   complete\n";

  std::vector<SweepRow> rows;
  bool all_complete = true;
  for (const std::size_t n : counts) {
    if (n == 0) continue;
    const SweepRow row = run_sweep_point(n, updates, probes, scratch);
    rows.push_back(row);
    all_complete = all_complete && row.complete;
    std::printf("  %6zu   %11.1f   %11.3f   %10.3f   %s\n", row.shards,
                row.ingest_seconds > 0
                    ? static_cast<double>(row.updates) /
                          row.ingest_seconds / 1e3
                    : 0.0,
                row.mean_latency_ms, row.max_latency_ms,
                row.complete ? "yes" : "NO");
  }

  const std::string out_path = args.get("out");
  if (!out_path.empty()) {
    std::ostringstream json;
    json << "{\n"
         << "  \"bench\": \"shard_routing\",\n"
         << "  \"updates\": " << updates << ",\n"
         << "  \"probes\": " << probes << ",\n"
         << "  \"rows\": [";
    for (std::size_t i = 0; i < rows.size(); ++i) {
      const SweepRow& r = rows[i];
      json << (i == 0 ? "\n" : ",\n")
           << "    {\"shards\": " << r.shards
           << ", \"ingest_seconds\": " << r.ingest_seconds
           << ", \"updates_per_sec\": "
           << (r.ingest_seconds > 0
                   ? static_cast<double>(r.updates) / r.ingest_seconds
                   : 0.0)
           << ", \"mean_latency_ms\": " << r.mean_latency_ms
           << ", \"max_latency_ms\": " << r.max_latency_ms
           << ", \"displayed\": " << r.displayed
           << ", \"complete\": " << (r.complete ? "true" : "false") << "}";
    }
    json << "\n  ]\n}\n";
    std::ofstream out(out_path);
    out << json.str();
    if (!out) {
      std::cerr << "failed to write " << out_path << "\n";
      return 2;
    }
    std::cout << "  wrote " << out_path << "\n";
  }

  return all_complete ? 0 : 1;
}
