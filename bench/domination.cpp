// Reproduces the domination results of §4 (Theorems 6 and 8, plus the
// DropAll anchor of §4.1): on shared arrival interleavings,
//
//   AD-1 > AD-2,  AD-1 > AD-3,  AD-1 > AD-4 > drop-all,
//
// measured as (a) a supersequence check on every run and (b) the mean
// fraction of arriving alerts each algorithm lets through, swept over
// front-link loss rates. The paper proves the relation; this bench shows
// the *magnitude* of the trade-off each guarantee costs.
//
//   ./bench/domination [--runs 120] [--updates 40] [--seed 3]
#include <iostream>
#include <memory>

#include "check/domination.hpp"
#include "exp/scenarios.hpp"
#include "sim/system.hpp"
#include "util/args.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace rcm;
  util::Args args;
  args.add_flag("runs", "120", "runs per loss rate");
  args.add_flag("updates", "40", "updates per run");
  args.add_flag("seed", "3", "master seed");
  if (!args.parse(argc, argv)) {
    std::cerr << args.error() << "\n" << args.usage("domination");
    return 2;
  }
  if (args.help_requested()) {
    std::cout << args.usage("domination");
    return 0;
  }
  const auto runs = static_cast<std::size_t>(args.get_int("runs"));
  const auto updates = static_cast<std::size_t>(args.get_int("updates"));

  std::cout
      << "Domination of AD algorithms (Theorems 6 and 8)\n"
      << "aggressive historical condition, 2 CEs; per loss rate: " << runs
      << " randomized runs; pass-through = alerts displayed / alerts "
         "arrived at the AD\n\n";

  util::Table table({"loss", "pass AD-1", "pass AD-2", "pass AD-3",
                     "pass AD-4", "AD-1>AD-2", "AD-1>AD-3", "AD-1>AD-4",
                     "AD-4>drop"});
  bool all_hold = true;
  for (double loss : {0.0, 0.1, 0.2, 0.3, 0.4}) {
    const auto spec =
        exp::single_var_scenario(exp::Scenario::kLossyAggressive, loss);
    const VarId x = spec.condition->variables()[0];
    util::Rng master{static_cast<std::uint64_t>(args.get_int("seed")) +
                     static_cast<std::uint64_t>(loss * 1000)};

    check::DominationObservation obs12, obs13, obs14, obs4d;
    util::Ratio pass1, pass2, pass3, pass4;
    for (std::size_t run = 0; run < runs; ++run) {
      util::Rng trial = master.fork(run + 1);
      sim::SystemConfig config;
      config.condition = spec.condition;
      config.dm_traces = spec.make_traces(updates, trial);
      config.num_ces = 2;
      config.front.loss = loss;
      config.front.delay_max = 0.8;
      config.back.delay_max = 0.8;
      config.filter = FilterKind::kPassAll;  // capture the interleaving
      config.seed = trial();
      const auto r = sim::run_system(config);
      if (r.arrived.empty()) continue;

      Ad1DuplicateFilter ad1;
      Ad2OrderedFilter ad2{x};
      Ad3ConsistentFilter ad3;
      Ad4OrderedConsistentFilter ad4{x};
      DropAllFilter drop;
      check::observe_domination(ad1, ad2, r.arrived, obs12);
      check::observe_domination(ad1, ad3, r.arrived, obs13);
      check::observe_domination(ad1, ad4, r.arrived, obs14);
      check::observe_domination(ad4, drop, r.arrived, obs4d);
      pass1.add(run_filter(ad1, r.arrived).size(), r.arrived.size());
      pass2.add(run_filter(ad2, r.arrived).size(), r.arrived.size());
      pass3.add(run_filter(ad3, r.arrived).size(), r.arrived.size());
      pass4.add(run_filter(ad4, r.arrived).size(), r.arrived.size());
    }
    auto verdict = [](const check::DominationObservation& o) {
      if (!o.dominates()) return std::string("REFUTED");
      return std::string(o.strictly_dominates() ? "strict" : ">= only");
    };
    table.add_row({util::fmt_percent(loss, 0), util::fmt_percent(pass1.value()),
                   util::fmt_percent(pass2.value()),
                   util::fmt_percent(pass3.value()),
                   util::fmt_percent(pass4.value()), verdict(obs12),
                   verdict(obs13), verdict(obs14), verdict(obs4d)});
    all_hold = all_hold && obs12.dominates() && obs13.dominates() &&
               obs14.dominates() && obs4d.dominates();
  }
  std::cout << table.render()
            << "\n('strict' = supersequence in every run and strictly more "
               "alerts in at least one;\n at 0% loss the algorithms often "
               "coincide, matching the paper: domination is >= with strict "
               "cases arising under loss)\n"
            << (all_hold ? "RESULT: domination holds in every run\n"
                         : "RESULT: DOMINATION REFUTED somewhere\n");
  return all_hold ? 0 : 1;
}
