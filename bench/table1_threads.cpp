// Realism check: Table 1's single-variable scenarios re-run on the
// THREADED runtime (real OS threads, serialized + CRC-framed messages,
// scheduler-driven interleavings) instead of the simulator.
//
// What must transfer exactly: every "yes" cell — the properties the
// paper guarantees can never be violated, on any substrate, under any
// interleaving; a single violation here would be a library bug.
// What is informational: the violation RATES in "NO" cells — without
// the simulator's delay model, thread scheduling produces different
// (typically fewer) reorderings, so witnessed counts differ; zero
// witnessed violations in a NO cell on this substrate is reported, not
// failed.
//
//   ./bench/table1_threads [--runs 60] [--updates 40] [--seed 42]
#include <iostream>

#include "check/properties.hpp"
#include "exp/scenarios.hpp"
#include "exp/table_experiment.hpp"
#include "runtime/system.hpp"
#include "util/args.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace rcm;
  util::Args args;
  args.add_flag("runs", "60", "runs per scenario row");
  args.add_flag("updates", "40", "updates per run");
  args.add_flag("seed", "42", "master seed");
  if (!args.parse(argc, argv)) {
    std::cerr << args.error() << "\n" << args.usage("table1_threads");
    return 2;
  }
  if (args.help_requested()) {
    std::cout << args.usage("table1_threads");
    return 0;
  }
  const auto runs = static_cast<std::size_t>(args.get_int("runs"));
  const auto updates = static_cast<std::size_t>(args.get_int("updates"));

  std::cout << "Table 1 on the threaded runtime (AD-1, 2 CE threads, real "
               "wire protocol)\n"
            << runs << " runs per row; guaranteed ('yes') cells must show "
               "zero violations; 'NO' cells are informational on this "
               "substrate (no delay model)\n\n";

  util::Table table({"Scenario", "Ord", "Comp", "Cons", "paper",
                     "guaranteed cells ok?"});
  bool all_guaranteed_ok = true;
  for (exp::Scenario s : exp::kAllScenarios) {
    const auto spec = exp::single_var_scenario(s, 0.2);
    const auto claim = exp::paper_claim(FilterKind::kAd1, s, false);
    exp::PropertyCounts counts;
    util::Rng master{static_cast<std::uint64_t>(args.get_int("seed"))};
    for (std::size_t run = 0; run < runs; ++run) {
      util::Rng trial = master.fork(run + 1);
      runtime::ThreadedConfig config;
      config.condition = spec.condition;
      config.dm_traces = spec.make_traces(updates, trial);
      config.num_ces = 2;
      config.front_loss = spec.front_loss;
      config.filter = FilterKind::kAd1;
      config.seed = trial();
      const auto r = runtime::run_threaded(config);
      const auto report =
          check::check_run(r.as_system_run(spec.condition));
      ++counts.runs;
      if (report.ordered == check::Verdict::kViolated)
        ++counts.ordered_violations;
      if (report.complete == check::Verdict::kViolated)
        ++counts.complete_violations;
      if (report.consistent == check::Verdict::kViolated)
        ++counts.consistent_violations;
    }
    const bool guaranteed_ok =
        (!claim.ordered || counts.ordered_violations == 0) &&
        (!claim.complete || counts.complete_violations == 0) &&
        (!claim.consistent || counts.consistent_violations == 0);
    all_guaranteed_ok = all_guaranteed_ok && guaranteed_ok;
    auto cell = [&](std::size_t violations) {
      return std::to_string(violations) + "/" + std::to_string(counts.runs);
    };
    auto paper_cell = [&] {
      std::string out;
      out += claim.ordered ? 'O' : '-';
      out += claim.complete ? 'C' : '-';
      out += claim.consistent ? 'K' : '-';
      return out;
    };
    table.add_row({exp::scenario_name(s), cell(counts.ordered_violations),
                   cell(counts.complete_violations),
                   cell(counts.consistent_violations), paper_cell(),
                   guaranteed_ok ? "yes" : "NO"});
  }
  std::cout << table.render()
            << "\n(paper column: O/C/K = ordered/complete/consistent "
               "guaranteed by Table 1)\n"
            << (all_guaranteed_ok
                    ? "RESULT: every guaranteed cell holds on real threads\n"
                    : "RESULT: GUARANTEED CELL VIOLATED — bug\n");
  return all_guaranteed_ok ? 0 : 1;
}
