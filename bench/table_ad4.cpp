// Reproduces the AD-4 variant table stated in §4.4: "very similar to
// Table 2 except that Aggressive Triggering also becomes consistent"
// (Theorem 9: maximally ordered-and-consistent).
#include "table_common.hpp"

int main(int argc, char** argv) {
  return rcm::bench::run_table_bench(
      "§4.4 variant — single-variable systems under Algorithm AD-4",
      rcm::FilterKind::kAd4, /*multi_variable=*/false, argc, argv);
}
