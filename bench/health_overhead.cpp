// Health overhead bench: sampler + watchdog on vs off over the swarm
// workload.
//
// Runs the same fixed-seed swarm batch twice — once with the health
// machinery quiet (no time-series sampler thread, stall watchdog
// disabled: the library default) and once with the process sampler
// running at a service-like 250ms interval — times both, and
// cross-checks that the two batches produced bit-identical per-run
// digests: the sampler only *reads* the registry's relaxed atomics and
// must observe the pipeline, never participate in it. The overhead is
// recorded against the issue's 5% throughput target.
//
// Exit status is 0 iff the digests match. The overhead percentage is
// reported but not gated: single-core CI boxes are noisy, and the
// digest check is the correctness claim.
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "obs/timeseries.hpp"
#include "swarm/swarm.hpp"
#include "util/args.hpp"

namespace {

struct BatchResult {
  rcm::swarm::SwarmReport report;
  std::vector<std::uint64_t> digests;
  double seconds = 0.0;
  std::uint64_t samples = 0;  ///< sampler snapshots taken during the batch
};

BatchResult run_batch(const rcm::swarm::SwarmOptions& options, bool health) {
  rcm::obs::TimeSeriesSampler::Options sopts;
  sopts.interval = std::chrono::milliseconds{250};
  rcm::obs::TimeSeriesSampler sampler{sopts};
  if (health) sampler.start();

  BatchResult out;
  out.digests.reserve(options.runs);
  const auto start = std::chrono::steady_clock::now();
  out.report = rcm::swarm::run_swarm(
      options, [&](std::uint64_t, const rcm::swarm::RunCheck& check) {
        out.digests.push_back(check.digest);
        return true;
      });
  out.seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  sampler.stop();
  out.samples = sampler.samples_taken();
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  rcm::util::Args args;
  args.add_flag("runs", "120", "swarm runs per batch");
  args.add_flag("seed", "1", "swarm master seed");
  args.add_flag("jobs", "1",
                "worker threads (1 = serial; keep 1 for stable timing)");
  args.add_flag("out", "BENCH_health_overhead.json",
                "path for the JSON artifact ('' = skip writing)");
  if (!args.parse(argc, argv)) {
    std::cerr << args.error() << "\n" << args.usage("health_overhead");
    return 2;
  }
  if (args.help_requested()) {
    std::cout << args.usage("health_overhead");
    return 0;
  }

  rcm::swarm::SwarmOptions options;
  options.runs = static_cast<std::size_t>(args.get_int("runs"));
  options.seed = static_cast<std::uint64_t>(args.get_int("seed"));
  options.jobs = static_cast<std::size_t>(args.get_int("jobs"));

  std::cout << "health_overhead: " << options.runs << " runs, seed "
            << options.seed << ", jobs " << options.jobs << "\n";

  // Warm-up batch (untimed): touch the allocator, page in the code.
  {
    rcm::swarm::SwarmOptions warm = options;
    warm.runs = std::min<std::size_t>(warm.runs, 10);
    run_batch(warm, false);
  }

  const BatchResult off = run_batch(options, false);
  std::cout << "  sampler off: " << off.seconds << " s  ("
            << off.report.runs_executed / off.seconds << " runs/s)\n";

  const BatchResult on = run_batch(options, true);
  std::cout << "  sampler on:  " << on.seconds << " s  ("
            << on.report.runs_executed / on.seconds << " runs/s), "
            << on.samples << " samples taken\n";

  const bool digests_match = off.digests == on.digests;
  const double overhead_pct =
      off.seconds > 0.0 ? (on.seconds - off.seconds) / off.seconds * 100.0
                        : 0.0;

  std::cout << "  overhead:    " << overhead_pct << "% (target <= 5%)\n"
            << "  digests "
            << (digests_match ? "MATCH" : "DIFFER (sampler perturbed a run)")
            << "\n";

  const std::string out_path = args.get("out");
  if (!out_path.empty()) {
    std::ostringstream json;
    json << "{\n"
         << "  \"bench\": \"health_overhead\",\n"
         << "  \"runs\": " << options.runs << ",\n"
         << "  \"seed\": " << options.seed << ",\n"
         << "  \"jobs\": " << options.jobs << ",\n"
         << "  \"off_seconds\": " << off.seconds << ",\n"
         << "  \"on_seconds\": " << on.seconds << ",\n"
         << "  \"off_runs_per_sec\": "
         << off.report.runs_executed / off.seconds << ",\n"
         << "  \"on_runs_per_sec\": " << on.report.runs_executed / on.seconds
         << ",\n"
         << "  \"overhead_pct\": " << overhead_pct << ",\n"
         << "  \"overhead_target_pct\": 5.0,\n"
         << "  \"samples_taken\": " << on.samples << ",\n"
         << "  \"digests_match\": " << (digests_match ? "true" : "false")
         << "\n"
         << "}\n";
    std::ofstream out(out_path);
    out << json.str();
    if (!out) {
      std::cerr << "failed to write " << out_path << "\n";
      return 2;
    }
    std::cout << "  wrote " << out_path << "\n";
  }

  return digests_match ? 0 : 1;
}
