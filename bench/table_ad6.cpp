// Reproduces the AD-6 variant stated in §5.2: Table 3 with the
// Aggressive Triggering row also consistent.
#include "table_common.hpp"

int main(int argc, char** argv) {
  return rcm::bench::run_table_bench(
      "§5.2 variant — multi-variable systems under Algorithm AD-6",
      rcm::FilterKind::kAd6, /*multi_variable=*/true, argc, argv);
}
