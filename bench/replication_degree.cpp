// Replication-degree sweep: how the paper's properties and the alert
// volume behave as the number of CE replicas grows beyond the two the
// paper analyzes ("Analysis for systems with more than two CEs can be
// easily extended", §2.1).
//
// For k = 1..5 replicas under an aggressive historical condition and
// lossy links, reports: delivery coverage of the combined-knowledge
// reference, violation rates of the three properties under AD-1 and
// under AD-4, and the AD's suppression workload. The paper's qualitative
// claims should extend: more replicas -> better coverage, but under AD-1
// also more inconsistency; AD-4 stays clean at any k.
//
//   ./bench/replication_degree [--runs 100] [--updates 40] [--seed 33]
#include <iostream>
#include <set>

#include "check/consistency.hpp"
#include "check/properties.hpp"
#include "exp/scenarios.hpp"
#include "sim/system.hpp"
#include "util/args.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace rcm;
  util::Args args;
  args.add_flag("runs", "100", "runs per replica count");
  args.add_flag("updates", "40", "updates per run");
  args.add_flag("seed", "33", "master seed");
  if (!args.parse(argc, argv)) {
    std::cerr << args.error() << "\n" << args.usage("replication_degree");
    return 2;
  }
  if (args.help_requested()) {
    std::cout << args.usage("replication_degree");
    return 0;
  }
  const auto runs = static_cast<std::size_t>(args.get_int("runs"));
  const auto updates = static_cast<std::size_t>(args.get_int("updates"));

  std::cout << "Scaling the number of CE replicas (aggressive historical "
               "condition, 20% loss)\n"
            << runs << " runs per row; coverage = displayed alert keys / "
            << "keys of T(combined inputs)\n\n";

  util::Table table({"replicas", "filter", "coverage", "unordered runs",
                     "inconsistent runs", "suppressed/run"});
  const auto spec =
      exp::single_var_scenario(exp::Scenario::kLossyAggressive, 0.2);
  for (std::size_t k = 1; k <= 5; ++k) {
    for (FilterKind filter : {FilterKind::kAd1, FilterKind::kAd4}) {
      util::Ratio coverage;
      std::size_t unordered = 0, inconsistent = 0;
      util::Accumulator suppressed;
      util::Rng master{static_cast<std::uint64_t>(args.get_int("seed")) +
                       k * 977 + (filter == FilterKind::kAd1 ? 0 : 1)};
      for (std::size_t run = 0; run < runs; ++run) {
        util::Rng trial = master.fork(run + 1);
        sim::SystemConfig config;
        config.condition = spec.condition;
        config.dm_traces = spec.make_traces(updates, trial);
        config.num_ces = k;
        config.front.loss = spec.front_loss;
        config.front.delay_max = 0.8;
        config.back.delay_max = 0.8;
        config.filter = filter;
        config.seed = trial();
        const auto r = sim::run_system(config);

        const auto sys_run = r.as_system_run(spec.condition);
        const auto combined = check::combined_inputs(r.ce_inputs);
        const auto reference = evaluate_trace(
            spec.condition,
            combined.empty() ? std::vector<Update>{} : combined.front().second);
        std::set<AlertKey> displayed;
        for (const Alert& a : r.displayed) displayed.insert(a.key());
        for (const Alert& a : reference)
          coverage.add(displayed.count(a.key()) != 0);

        if (!check::check_ordered(r.displayed,
                                  spec.condition->variables()))
          ++unordered;
        if (!check::check_consistent(sys_run).consistent) ++inconsistent;
        suppressed.add(
            static_cast<double>(r.arrived.size() - r.displayed.size()));
      }
      table.add_row({std::to_string(k),
                     std::string(filter_kind_name(filter)),
                     util::fmt_percent(coverage.value()),
                     std::to_string(unordered) + "/" + std::to_string(runs),
                     std::to_string(inconsistent) + "/" + std::to_string(runs),
                     util::fmt_double(suppressed.mean(), 1)});
    }
  }
  std::cout << table.render()
            << "\nReading: coverage climbs with k under AD-1 (each replica "
               "plugs the others' losses) while unordered/inconsistent runs "
               "grow too; AD-4 holds its guarantees at every k at the cost "
               "of coverage — the paper's two-replica trade-off, extended.\n";
  return 0;
}
