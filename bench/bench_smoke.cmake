# bench_smoke.cmake — run one bench binary with tiny iteration counts and
# validate that the JSON artifact it emits actually parses. Invoked by the
# `bench_smoke`-labelled ctest entries (see bench/CMakeLists.txt) as
#
#   cmake -DBENCH_EXE=... -DBENCH_ARGS="--runs 10" -DBENCH_JSON=...
#         -DBENCH_WORKDIR=... -P bench_smoke.cmake
#
# Fails (FATAL_ERROR) if the binary exits nonzero, writes no artifact, or
# writes an artifact that is not valid JSON.
if(NOT DEFINED BENCH_EXE OR NOT DEFINED BENCH_JSON OR NOT DEFINED BENCH_WORKDIR)
  message(FATAL_ERROR "bench_smoke: BENCH_EXE, BENCH_JSON and BENCH_WORKDIR are required")
endif()

separate_arguments(bench_args NATIVE_COMMAND "${BENCH_ARGS}")

file(MAKE_DIRECTORY "${BENCH_WORKDIR}")
file(REMOVE "${BENCH_JSON}")

execute_process(
  COMMAND "${BENCH_EXE}" ${bench_args}
  WORKING_DIRECTORY "${BENCH_WORKDIR}"
  RESULT_VARIABLE exit_code
  OUTPUT_VARIABLE run_output
  ERROR_VARIABLE run_output)
if(NOT exit_code EQUAL 0)
  message(FATAL_ERROR
    "bench_smoke: ${BENCH_EXE} ${BENCH_ARGS} exited ${exit_code}\n${run_output}")
endif()

if(NOT EXISTS "${BENCH_JSON}")
  message(FATAL_ERROR
    "bench_smoke: ${BENCH_EXE} did not write ${BENCH_JSON}\n${run_output}")
endif()

file(READ "${BENCH_JSON}" json_content)
string(JSON root_type ERROR_VARIABLE json_error TYPE "${json_content}")
if(json_error)
  message(FATAL_ERROR
    "bench_smoke: ${BENCH_JSON} is not valid JSON: ${json_error}")
endif()
if(NOT root_type STREQUAL "OBJECT")
  message(FATAL_ERROR
    "bench_smoke: ${BENCH_JSON} root is ${root_type}, expected OBJECT")
endif()

message(STATUS "bench_smoke: ${BENCH_JSON} ok (${root_type})")
