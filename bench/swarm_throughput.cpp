// Swarm throughput bench: serial vs parallel batch execution.
//
// Runs the same fixed-seed swarm batch twice — once with --jobs 1 and
// once with --jobs N — times both, and cross-checks that the parallel
// executor reproduced the serial batch bit-for-bit (per-run digests,
// violation descriptions, and the aggregate report). Emits a JSON
// artifact (BENCH_swarm_throughput.json by default) with runs/sec for
// both modes and the rcm::obs per-phase latency histograms.
//
// Exit status is 0 iff the parallel batch is bit-identical to the serial
// one. The speedup is reported but not gated: it depends on the host's
// core count (recorded in the artifact as hardware_concurrency).
#include <chrono>
#include <cstdint>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.hpp"
#include "runtime/thread_pool.hpp"
#include "swarm/swarm.hpp"
#include "util/args.hpp"

namespace {

struct BatchResult {
  rcm::swarm::SwarmReport report;
  std::vector<std::uint64_t> digests;
  std::vector<std::string> violations;  ///< flattened, in run order
  double seconds = 0.0;
  std::string metrics_json;
};

BatchResult run_batch(const rcm::swarm::SwarmOptions& base, std::size_t jobs) {
  rcm::swarm::SwarmOptions options = base;
  options.jobs = jobs;

  BatchResult out;
  out.digests.reserve(options.runs);
  rcm::obs::registry().reset();
  const auto start = std::chrono::steady_clock::now();
  out.report = rcm::swarm::run_swarm(
      options, [&](std::uint64_t, const rcm::swarm::RunCheck& check) {
        out.digests.push_back(check.digest);
        out.violations.insert(out.violations.end(), check.violations.begin(),
                              check.violations.end());
        return true;
      });
  out.seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  out.metrics_json = rcm::obs::registry().snapshot_json();
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  rcm::util::Args args;
  args.add_flag("runs", "200", "swarm runs per batch");
  args.add_flag("seed", "1", "swarm master seed");
  args.add_flag("jobs", "0",
                "worker threads for the parallel batch "
                "(0 = hardware concurrency)");
  args.add_flag("out", "BENCH_swarm_throughput.json",
                "path for the JSON artifact ('' = skip writing)");
  if (!args.parse(argc, argv)) {
    std::cerr << args.error() << "\n" << args.usage("swarm_throughput");
    return 2;
  }
  if (args.help_requested()) {
    std::cout << args.usage("swarm_throughput");
    return 0;
  }

  rcm::swarm::SwarmOptions options;
  options.runs = static_cast<std::size_t>(args.get_int("runs"));
  options.seed = static_cast<std::uint64_t>(args.get_int("seed"));

  const std::size_t jobs = rcm::runtime::ThreadPool::resolve_jobs(
      static_cast<std::size_t>(args.get_int("jobs")));
  const unsigned hw = std::thread::hardware_concurrency();

  std::cout << "swarm_throughput: " << options.runs << " runs, seed "
            << options.seed << ", parallel jobs " << jobs
            << " (hardware_concurrency " << hw << ")\n";

  const BatchResult serial = run_batch(options, 1);
  std::cout << "  serial:   " << serial.seconds << " s  ("
            << serial.report.runs_executed / serial.seconds << " runs/s)\n";

  const BatchResult parallel = run_batch(options, jobs);
  std::cout << "  parallel: " << parallel.seconds << " s  ("
            << parallel.report.runs_executed / parallel.seconds
            << " runs/s)\n";

  const bool digests_match = serial.digests == parallel.digests;
  const bool violations_match = serial.violations == parallel.violations;
  const bool report_matches =
      serial.report.runs_executed == parallel.report.runs_executed &&
      serial.report.runs_with_alerts == parallel.report.runs_with_alerts &&
      serial.report.failures == parallel.report.failures &&
      serial.report.cell_runs == parallel.report.cell_runs;
  const double speedup =
      parallel.seconds > 0.0 ? serial.seconds / parallel.seconds : 0.0;

  std::cout << "  speedup:  " << speedup << "x\n"
            << "  digests "
            << (digests_match ? "MATCH" : "DIFFER (determinism bug)")
            << ", violations " << (violations_match ? "match" : "DIFFER")
            << ", report " << (report_matches ? "matches" : "DIFFERS") << "\n";

  const std::string out_path = args.get("out");
  if (!out_path.empty()) {
    std::ostringstream json;
    json << "{\n"
         << "  \"bench\": \"swarm_throughput\",\n"
         << "  \"runs\": " << options.runs << ",\n"
         << "  \"seed\": " << options.seed << ",\n"
         << "  \"hardware_concurrency\": " << hw << ",\n"
         << "  \"jobs_parallel\": " << jobs << ",\n"
         << "  \"serial_seconds\": " << serial.seconds << ",\n"
         << "  \"parallel_seconds\": " << parallel.seconds << ",\n"
         << "  \"serial_runs_per_sec\": "
         << serial.report.runs_executed / serial.seconds << ",\n"
         << "  \"parallel_runs_per_sec\": "
         << parallel.report.runs_executed / parallel.seconds << ",\n"
         << "  \"speedup\": " << speedup << ",\n"
         << "  \"digests_match\": " << (digests_match ? "true" : "false")
         << ",\n"
         << "  \"violations_match\": " << (violations_match ? "true" : "false")
         << ",\n"
         << "  \"report_matches\": " << (report_matches ? "true" : "false")
         << ",\n"
         << "  \"failures\": " << serial.report.failures << ",\n"
         << "  \"serial_metrics\": " << serial.metrics_json << ",\n"
         << "  \"parallel_metrics\": " << parallel.metrics_json << "\n"
         << "}\n";
    std::ofstream out(out_path);
    out << json.str();
    if (!out) {
      std::cerr << "failed to write " << out_path << "\n";
      return 2;
    }
    std::cout << "  wrote " << out_path << "\n";
  }

  return (digests_match && violations_match && report_matches) ? 0 : 1;
}
