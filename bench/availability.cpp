// Quantifies the paper's §1 motivation for replication ("the redundancy
// in the system reduces the probability that a critical alert will not
// be delivered"): alert delivery rate as a function of the number of CE
// replicas, swept over (a) front-link loss and (b) CE crash/recovery
// cycles.
//
// Delivery rate = |displayed alert keys ∩ reference keys| / |reference
// keys| where the reference is T(U) of everything the DM emitted — what
// a perfect, loss-free, always-up evaluator would have reported.
//
//   ./bench/availability [--runs 100] [--updates 60] [--seed 9]
#include <iostream>
#include <memory>
#include <set>

#include "core/rcm.hpp"
#include "sim/system.hpp"
#include "trace/generators.hpp"
#include "util/args.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace {

using namespace rcm;

struct Sweep {
  std::size_t runs;
  std::size_t updates;
  std::uint64_t seed;
};

double delivery_rate(const Sweep& sweep, std::size_t num_ces, double loss,
                     double crash_rate) {
  const auto condition =
      std::make_shared<const ThresholdCondition>("hot", 0, 60.0);
  util::Rng master{sweep.seed + num_ces * 131 +
                   static_cast<std::uint64_t>(loss * 1000) +
                   static_cast<std::uint64_t>(crash_rate * 7919)};
  util::Ratio delivered;
  for (std::size_t run = 0; run < sweep.runs; ++run) {
    util::Rng trial = master.fork(run + 1);
    trace::UniformParams workload;
    workload.base.var = 0;
    workload.base.count = sweep.updates;
    workload.lo = 0.0;
    workload.hi = 100.0;

    sim::SystemConfig config;
    config.condition = condition;
    config.dm_traces = {trace::uniform_trace(workload, trial)};
    config.num_ces = num_ces;
    config.front.loss = loss;
    config.filter = FilterKind::kAd1;
    config.seed = trial();

    // Independent crash/recovery cycles: each CE, per run, is down for a
    // window covering `crash_rate` of the trace with probability 1/2.
    const double horizon = static_cast<double>(sweep.updates);
    for (std::size_t ce = 0; ce < num_ces; ++ce) {
      if (crash_rate > 0.0 && trial.bernoulli(0.5)) {
        const double down = trial.uniform(0.0, horizon * (1.0 - crash_rate));
        config.ce_crashes.push_back(
            {sim::CrashWindow{down, down + crash_rate * horizon, true}});
      } else {
        config.ce_crashes.push_back({});
      }
    }

    const auto result = sim::run_system(config);
    const auto reference = evaluate_trace(condition, result.dm_emitted[0]);
    std::set<AlertKey> displayed;
    for (const Alert& a : result.displayed) displayed.insert(a.key());
    for (const Alert& a : reference)
      delivered.add(displayed.count(a.key()) != 0);
  }
  return delivered.value();
}

}  // namespace

int main(int argc, char** argv) {
  util::Args args;
  args.add_flag("runs", "100", "runs per configuration");
  args.add_flag("updates", "60", "updates per run");
  args.add_flag("seed", "9", "master seed");
  if (!args.parse(argc, argv)) {
    std::cerr << args.error() << "\n" << args.usage("availability");
    return 2;
  }
  if (args.help_requested()) {
    std::cout << args.usage("availability");
    return 0;
  }
  const Sweep sweep{static_cast<std::size_t>(args.get_int("runs")),
                    static_cast<std::size_t>(args.get_int("updates")),
                    static_cast<std::uint64_t>(args.get_int("seed"))};

  std::cout << "Alert delivery rate vs replication (the paper's Figure 1 "
               "motivation)\n"
            << "non-historical condition, AD-1; " << sweep.runs
            << " runs per cell\n\n";

  std::cout << "(a) lossy front links, no crashes\n";
  util::Table loss_table(
      {"front loss", "1 CE", "2 CEs", "3 CEs", "4 CEs"});
  for (double loss : {0.05, 0.1, 0.2, 0.3, 0.5}) {
    std::vector<std::string> row{util::fmt_percent(loss, 0)};
    for (std::size_t ces = 1; ces <= 4; ++ces)
      row.push_back(util::fmt_percent(delivery_rate(sweep, ces, loss, 0.0)));
    loss_table.add_row(row);
  }
  std::cout << loss_table.render() << "\n";

  std::cout << "(b) CE crash windows (each CE down for the given fraction "
               "of the run with probability 1/2), lossless links\n";
  util::Table crash_table(
      {"down fraction", "1 CE", "2 CEs", "3 CEs", "4 CEs"});
  for (double frac : {0.2, 0.4, 0.6}) {
    std::vector<std::string> row{util::fmt_percent(frac, 0)};
    for (std::size_t ces = 1; ces <= 4; ++ces)
      row.push_back(util::fmt_percent(delivery_rate(sweep, ces, 0.0, frac)));
    crash_table.add_row(row);
  }
  std::cout << crash_table.render()
            << "\nEach added replica should raise the delivery rate toward "
               "100% — the availability argument for replicated monitoring, "
               "whose consistency side effects the rest of the paper "
               "addresses.\n";
  return 0;
}
