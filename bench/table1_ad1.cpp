// Reproduces Table 1: single-variable systems under Algorithm AD-1
// (Theorems 1-4). Paper rows: Lossless ✓✓✓; Lossy Non-historical ✗✓✓;
// Lossy Conservative ✗✗✓; Lossy Aggressive ✗✗✗.
#include "table_common.hpp"

int main(int argc, char** argv) {
  return rcm::bench::run_table_bench(
      "Table 1 — single-variable systems under Algorithm AD-1",
      rcm::FilterKind::kAd1, /*multi_variable=*/false, argc, argv);
}
