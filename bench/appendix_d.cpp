// Appendix D quantified: interdependent conditions on separate CEs
// (Figure D-7(a)/(c)) vs the co-located reduction C = A OR B
// (Figure D-8).
//
// Conditions A: "x > y" and B: "y > x" on two drifting reactor
// temperatures. When both temperatures move together, the two CEs can
// see the changes in opposite orders and the user receives both "x is
// hotter" and "y is hotter" within a short window — Example 4's
// conflict, which exists even WITHOUT replication. The bench sweeps the
// interleaving divergence (link delay spread) and reports the rate of
// such conflicting pairs, for the separate-CE architecture and for the
// C = A OR B reduction (which serializes the decision in one evaluator
// and cannot contradict itself).
//
//   ./bench/appendix_d [--runs 120] [--updates 30] [--seed 23]
#include <iostream>
#include <cstdlib>
#include <memory>

#include "core/rcm.hpp"
#include "sim/multi_condition.hpp"
#include "trace/generators.hpp"
#include "util/args.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace {

using namespace rcm;

constexpr VarId kX = 0;
constexpr VarId kY = 1;

/// A conflicting pair (Example 4's confusion): an A-alert and a B-alert
/// about essentially the same moment — their x and y sequence numbers
/// each within one update of each other — telling the user "x is
/// hotter" and "y is hotter" at once. (Identical seqno pairs cannot
/// conflict: same values, one verdict; the conflict lives in the
/// adjacent-update skew the two CEs' interleavings create.)
std::size_t conflicting_pairs(const std::vector<Alert>& displayed) {
  std::size_t conflicts = 0;
  for (std::size_t i = 0; i < displayed.size(); ++i) {
    for (std::size_t j = i + 1; j < displayed.size(); ++j) {
      const Alert& a = displayed[i];
      const Alert& b = displayed[j];
      if (a.cond == b.cond) continue;
      if (std::abs(a.seqno(kX) - b.seqno(kX)) <= 1 &&
          std::abs(a.seqno(kY) - b.seqno(kY)) <= 1)
        ++conflicts;
    }
  }
  return conflicts;
}

}  // namespace

int main(int argc, char** argv) {
  util::Args args;
  args.add_flag("runs", "120", "runs per delay spread");
  args.add_flag("updates", "30", "updates per reactor");
  args.add_flag("seed", "23", "master seed");
  if (!args.parse(argc, argv)) {
    std::cerr << args.error() << "\n" << args.usage("multi_condition");
    return 2;
  }
  if (args.help_requested()) {
    std::cout << args.usage("multi_condition");
    return 0;
  }
  const auto runs = static_cast<std::size_t>(args.get_int("runs"));
  const auto updates = static_cast<std::size_t>(args.get_int("updates"));

  auto cond_a = std::make_shared<const GreaterThanCondition>("A", kX, kY);
  auto cond_b = std::make_shared<const GreaterThanCondition>("B", kY, kX);
  auto cond_c = std::make_shared<const DisjunctionCondition>(
      "C", std::vector<ConditionPtr>{cond_a, cond_b});

  std::cout << "Appendix D: interdependent conditions A ('x > y') and "
               "B ('y > x')\n"
            << "two co-moving reactors, 2 CEs per condition, AD-1 per "
               "stream; "
            << runs << " runs per row\n\n";

  util::Table table({"delay spread", "A+B alerts/run",
                     "conflicting pairs/run (separate CEs)",
                     "C alerts/run", "conflicts (C = A or B)"});
  for (double spread : {0.1, 0.8, 2.0, 4.0}) {
    util::Accumulator ab_alerts, ab_conflicts, c_alerts;
    util::Rng master{static_cast<std::uint64_t>(args.get_int("seed")) +
                     static_cast<std::uint64_t>(spread * 10)};
    for (std::size_t run = 0; run < runs; ++run) {
      util::Rng trial = master.fork(run + 1);
      auto make_traces = [&] {
        std::vector<trace::Trace> traces;
        for (VarId v : {kX, kY}) {
          trace::ReactorParams p;
          p.base.var = v;
          p.base.count = updates;
          p.baseline = 2000.0;
          p.stddev = 60.0;
          p.excursion_prob = 0.0;
          traces.push_back(trace::reactor_trace(p, trial));
        }
        return traces;
      };
      const auto traces = make_traces();

      sim::MultiConditionConfig separate;
      separate.groups = {{cond_a, 2, FilterKind::kAd1},
                         {cond_b, 2, FilterKind::kAd1}};
      separate.dm_traces = traces;
      separate.front.delay_max = spread;
      separate.back.delay_max = spread;
      separate.seed = trial();
      const auto sep = sim::run_multi_condition_system(separate);
      ab_alerts.add(static_cast<double>(sep.displayed.size()));
      ab_conflicts.add(static_cast<double>(conflicting_pairs(sep.displayed)));

      sim::MultiConditionConfig colocated;
      colocated.groups = {{cond_c, 2, FilterKind::kAd1}};
      colocated.dm_traces = traces;
      colocated.front.delay_max = spread;
      colocated.back.delay_max = spread;
      colocated.seed = trial();
      const auto col = sim::run_multi_condition_system(colocated);
      c_alerts.add(static_cast<double>(col.displayed.size()));
      // C cannot contradict itself by construction: one condition, one
      // verdict per moment. (Conflicting_pairs needs two condition
      // names, so it is structurally zero here.)
    }
    table.add_row({util::fmt_double(spread, 1) + "s",
                   util::fmt_double(ab_alerts.mean(), 1),
                   util::fmt_double(ab_conflicts.mean(), 2),
                   util::fmt_double(c_alerts.mean(), 1), "0 (by construction)"});
  }
  std::cout << table.render()
            << "\nReading: Example 4's confusion — the same (x,y) state "
               "reported as both 'x hotter' and 'y hotter' — grows with "
               "interleaving divergence and needs no replication at all; "
               "folding the conditions into C = A or B (Figure D-8) removes "
               "the contradiction at the cost of not knowing WHICH way the "
               "comparison fired without inspecting the alert payload.\n";
  return 0;
}
