// Fan-out bench: alerts/sec through the durable session layer vs
// subscriber count.
//
// For each subscriber count N in the sweep, builds a SessionManager on a
// scratch directory, connects N durable-session subscribers — a mixed
// population where a `--slow-fraction` share never reads a byte during
// the measurement (stalled peers) — publishes `--alerts` alerts from one
// thread, and measures two things:
//
//   publish rate  — alerts/sec through SessionManager::publish(), i.e.
//                   the cost the AD thread pays (durable append + window
//                   push + wake). The tentpole claim is that this rate
//                   is independent of stalled peers: publish() never
//                   touches a socket.
//   delivery rate — alerts/sec until every FAST subscriber has received
//                   the complete, gap-free alert sequence.
//
// Exit status is 1 if any fast subscriber failed to receive every alert
// in order (the bench doubles as an end-to-end fan-out correctness
// check). Emits a JSON artifact (BENCH_fanout.json) with one row per
// sweep point; `ctest -L bench_smoke` runs a tiny sweep.
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <optional>
#include <sstream>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "core/alert.hpp"
#include "net/socket.hpp"
#include "service/session.hpp"
#include "util/args.hpp"
#include "wire/frame.hpp"
#include "wire/session.hpp"

namespace {

using namespace rcm;
using Clock = std::chrono::steady_clock;

struct SweepRow {
  std::size_t subscribers = 0;
  std::size_t slow = 0;
  double publish_seconds = 0.0;
  double delivery_seconds = 0.0;
  std::size_t evictions = 0;
  bool complete = false;  ///< every fast subscriber got every alert in order
};

std::vector<std::size_t> parse_counts(const std::string& csv) {
  std::vector<std::size_t> out;
  std::stringstream ss{csv};
  std::string item;
  while (std::getline(ss, item, ','))
    if (!item.empty()) out.push_back(std::stoul(item));
  return out;
}

/// One fast subscriber's receive state, drained round-robin by the
/// reader thread.
struct FastClient {
  net::TcpStream stream;
  wire::FrameCursor frames;
  std::uint64_t next_expected = 0;
  bool ordered = true;
  bool eof = false;

  explicit FastClient(net::TcpStream s) : stream(std::move(s)) {}
};

SweepRow run_sweep_point(std::size_t subscribers, double slow_fraction,
                         std::size_t alerts,
                         const std::filesystem::path& scratch) {
  namespace fs = std::filesystem;

  SweepRow row;
  row.subscribers = subscribers;
  row.slow = static_cast<std::size_t>(
      static_cast<double>(subscribers) * slow_fraction);
  if (row.slow >= subscribers && subscribers > 0) row.slow = subscribers - 1;
  const std::size_t fast = subscribers - row.slow;

  const fs::path dir = scratch / ("n" + std::to_string(subscribers));
  fs::remove_all(dir);
  fs::create_directories(dir);

  service::SessionLimits limits;
  limits.max_backlog = alerts + 1;  // stalled peers stay (measured, not
  limits.retention = alerts + 1;    // evicted) unless the sweep overrides
  limits.lag_alert_budget = 0;
  service::SessionManager manager{dir, wire::AlertEncoding::kFullHistories,
                                  limits};

  net::TcpListener listener;
  std::vector<FastClient> fast_clients;
  fast_clients.reserve(fast);
  std::vector<net::TcpStream> slow_clients;
  slow_clients.reserve(row.slow);

  for (std::size_t i = 0; i < subscribers; ++i) {
    net::TcpStream client = net::TcpStream::connect(listener.port());
    auto accepted = listener.accept(std::chrono::milliseconds{1000});
    if (!accepted) throw std::runtime_error("accept timed out");
    manager.adopt(std::move(*accepted));
    wire::SessionHello hello;
    hello.session_id = "sub-" + std::to_string(i);
    hello.from = 0;
    client.write_all(wire::frame(wire::encode_session_hello(hello)));
    if (i < fast) {
      client.set_nonblocking(true);
      fast_clients.emplace_back(std::move(client));
    } else {
      slow_clients.push_back(std::move(client));  // never read: stalled
    }
  }

  // Barrier: every hello processed before the clock starts.
  const auto setup_deadline = Clock::now() + std::chrono::seconds{30};
  while (manager.sessions().size() < subscribers &&
         Clock::now() < setup_deadline)
    std::this_thread::sleep_for(std::chrono::milliseconds{1});

  // Reader thread: drain every fast client until each has the full
  // gap-free sequence (or EOF/deadline).
  std::atomic<bool> reader_stop{false};
  std::atomic<std::size_t> done_count{0};
  std::thread reader{[&] {
    while (!reader_stop.load(std::memory_order_acquire)) {
      bool any = false;
      std::size_t done = 0;
      for (FastClient& c : fast_clients) {
        if (c.eof || c.next_expected >= alerts) {
          ++done;
          continue;
        }
        const auto chunk = c.stream.read_available();
        if (!chunk) continue;
        if (chunk->empty()) {
          c.eof = true;
          continue;
        }
        any = true;
        c.frames.feed(*chunk);
        while (auto payload = c.frames.next()) {
          if (payload->empty() ||
              (*payload)[0] != wire::kSessionAlertTag)
            continue;  // welcome / evicted notices are not alerts
          const wire::SessionRecord rec =
              wire::decode_session_record(*payload);
          if (rec.index != c.next_expected) c.ordered = false;
          c.next_expected = rec.index + 1;
        }
      }
      done_count.store(done, std::memory_order_release);
      if (done == fast_clients.size()) return;
      if (!any) std::this_thread::sleep_for(std::chrono::microseconds{100});
    }
  }};

  // The measured section: publish() from a single "AD" thread.
  Alert alert;
  alert.cond = "bench.fanout";
  alert.histories[0] = {Update{0, 1, 42.0}};
  const auto publish_start = Clock::now();
  for (std::size_t i = 0; i < alerts; ++i) {
    alert.histories[0][0].seqno = static_cast<SeqNo>(i + 1);
    manager.publish(alert);
  }
  row.publish_seconds =
      std::chrono::duration<double>(Clock::now() - publish_start).count();

  const auto delivery_deadline = Clock::now() + std::chrono::seconds{60};
  while (done_count.load(std::memory_order_acquire) < fast_clients.size() &&
         Clock::now() < delivery_deadline)
    std::this_thread::sleep_for(std::chrono::milliseconds{1});
  row.delivery_seconds =
      std::chrono::duration<double>(Clock::now() - publish_start).count();
  reader_stop.store(true, std::memory_order_release);
  reader.join();

  row.complete = true;
  for (const FastClient& c : fast_clients)
    if (!c.ordered || c.next_expected != alerts) row.complete = false;
  for (const service::SessionInfo& info : manager.sessions())
    if (info.evicted) ++row.evictions;

  manager.stop(std::chrono::milliseconds{100});
  fast_clients.clear();
  slow_clients.clear();
  std::error_code ec;
  fs::remove_all(dir, ec);
  return row;
}

}  // namespace

int main(int argc, char** argv) {
  rcm::util::Args args;
  args.add_flag("subscribers", "1,4,16,64,256,1024,4096",
                "comma-separated subscriber counts to sweep");
  args.add_flag("alerts", "1000", "alerts published per sweep point");
  args.add_flag("slow-fraction", "0.1",
                "share of subscribers that never read (stalled peers)");
  args.add_flag("scratch", "", "scratch dir (default: system temp)");
  args.add_flag("out", "BENCH_fanout.json",
                "path for the JSON artifact ('' = skip writing)");
  if (!args.parse(argc, argv)) {
    std::cerr << args.error() << "\n" << args.usage("fanout");
    return 2;
  }
  if (args.help_requested()) {
    std::cout << args.usage("fanout");
    return 0;
  }

  const std::vector<std::size_t> counts = parse_counts(args.get("subscribers"));
  const auto alerts = static_cast<std::size_t>(args.get_int("alerts"));
  const double slow_fraction = args.get_double("slow-fraction");
  const std::filesystem::path scratch =
      args.get("scratch").empty()
          ? std::filesystem::temp_directory_path() / "rcm_bench_fanout"
          : std::filesystem::path{args.get("scratch")};
  std::filesystem::create_directories(scratch);

  std::cout << "fanout: " << alerts << " alerts per point, slow fraction "
            << slow_fraction << "\n"
            << "  subs   slow   publish k-alerts/s   delivery k-alerts/s"
            << "   complete\n";

  std::vector<SweepRow> rows;
  bool all_complete = true;
  for (const std::size_t n : counts) {
    if (n == 0) continue;
    const SweepRow row = run_sweep_point(n, slow_fraction, alerts, scratch);
    rows.push_back(row);
    all_complete = all_complete && row.complete;
    std::printf("  %5zu  %5zu   %18.1f   %19.1f   %s\n", row.subscribers,
                row.slow,
                row.publish_seconds > 0
                    ? static_cast<double>(alerts) / row.publish_seconds / 1e3
                    : 0.0,
                row.delivery_seconds > 0
                    ? static_cast<double>(alerts) / row.delivery_seconds / 1e3
                    : 0.0,
                row.complete ? "yes" : "NO");
  }

  const std::string out_path = args.get("out");
  if (!out_path.empty()) {
    std::ostringstream json;
    json << "{\n"
         << "  \"bench\": \"fanout\",\n"
         << "  \"alerts\": " << alerts << ",\n"
         << "  \"slow_fraction\": " << slow_fraction << ",\n"
         << "  \"rows\": [";
    for (std::size_t i = 0; i < rows.size(); ++i) {
      const SweepRow& r = rows[i];
      json << (i == 0 ? "\n" : ",\n")
           << "    {\"subscribers\": " << r.subscribers
           << ", \"slow\": " << r.slow
           << ", \"publish_seconds\": " << r.publish_seconds
           << ", \"publish_alerts_per_sec\": "
           << (r.publish_seconds > 0
                   ? static_cast<double>(alerts) / r.publish_seconds
                   : 0.0)
           << ", \"delivery_seconds\": " << r.delivery_seconds
           << ", \"delivery_alerts_per_sec\": "
           << (r.delivery_seconds > 0
                   ? static_cast<double>(alerts) / r.delivery_seconds
                   : 0.0)
           << ", \"evictions\": " << r.evictions
           << ", \"complete\": " << (r.complete ? "true" : "false") << "}";
    }
    json << "\n  ]\n}\n";
    std::ofstream out(out_path);
    out << json.str();
    if (!out) {
      std::cerr << "failed to write " << out_path << "\n";
      return 2;
    }
    std::cout << "  wrote " << out_path << "\n";
  }

  return all_complete ? 0 : 1;
}
