// Reproduces Table 3: multi-variable systems under Algorithm AD-5
// (Lemmas 4-6): ordered everywhere, complete nowhere, consistent except
// under aggressive triggering.
#include "table_common.hpp"

int main(int argc, char** argv) {
  return rcm::bench::run_table_bench(
      "Table 3 — multi-variable systems under Algorithm AD-5",
      rcm::FilterKind::kAd5, /*multi_variable=*/true, argc, argv);
}
