// Reproduces the AD-3 variant table stated in §4.3: "very similar to
// Table 1 except that the last row (Aggressive Triggering) is also
// consistent" (Theorem 7: maximally consistent).
#include "table_common.hpp"

int main(int argc, char** argv) {
  return rcm::bench::run_table_bench(
      "§4.3 variant — single-variable systems under Algorithm AD-3",
      rcm::FilterKind::kAd3, /*multi_variable=*/false, argc, argv);
}
