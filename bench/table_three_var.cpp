// k-variable generalization check: the paper analyzes |V| = 2 and notes
// the multi-variable algorithms extend to more variables. This bench
// runs the Table 3 scenario structure with THREE variables under AD-5
// and AD-6: the guaranteed cells (orderedness everywhere; consistency
// except aggressive under AD-5; consistency everywhere under AD-6) must
// hold with zero violations; incompleteness and the aggressive
// inconsistency are reported as witnessed.
//
//   ./bench/table_three_var [--runs 80] [--updates 6] [--seed 47]
#include <iostream>
#include <memory>

#include "check/properties.hpp"
#include "core/rcm.hpp"
#include "sim/system.hpp"
#include "trace/generators.hpp"
#include "util/args.hpp"
#include "util/table.hpp"

namespace {

using namespace rcm;

constexpr VarId kX = 0, kY = 1, kZ = 2;

ConditionPtr spread(Triggering trig) {
  // max-min spread over the three latest values; degree 2 per variable
  // in the historical variants (rise of the spread).
  if (trig == Triggering::kConservative) {
    return std::make_shared<const PredicateCondition>(
        "spread3.cons",
        std::vector<std::pair<VarId, int>>{{kX, 2}, {kY, 2}, {kZ, 2}},
        Triggering::kConservative, [](const HistorySet& h) {
          const double now = std::max({h.of(kX).at(0).value,
                                       h.of(kY).at(0).value,
                                       h.of(kZ).at(0).value});
          const double before = std::max({h.of(kX).at(-1).value,
                                          h.of(kY).at(-1).value,
                                          h.of(kZ).at(-1).value});
          return now - before > 20.0;
        });
  }
  return std::make_shared<const PredicateCondition>(
      "spread3.aggr",
      std::vector<std::pair<VarId, int>>{{kX, 2}, {kY, 2}, {kZ, 2}},
      Triggering::kAggressive, [](const HistorySet& h) {
        const double now = std::max({h.of(kX).at(0).value,
                                     h.of(kY).at(0).value,
                                     h.of(kZ).at(0).value});
        const double before = std::max({h.of(kX).at(-1).value,
                                        h.of(kY).at(-1).value,
                                        h.of(kZ).at(-1).value});
        return now - before > 20.0;
      });
}

ConditionPtr band3() {
  return std::make_shared<const PredicateCondition>(
      "band3", std::vector<std::pair<VarId, int>>{{kX, 1}, {kY, 1}, {kZ, 1}},
      Triggering::kAggressive, [](const HistorySet& h) {
        const double spread_now =
            std::max({h.of(kX).at(0).value, h.of(kY).at(0).value,
                      h.of(kZ).at(0).value}) -
            std::min({h.of(kX).at(0).value, h.of(kY).at(0).value,
                      h.of(kZ).at(0).value});
        return spread_now > 30.0 && spread_now < 60.0;
      });
}

}  // namespace

int main(int argc, char** argv) {
  util::Args args;
  args.add_flag("runs", "80", "runs per cell");
  args.add_flag("updates", "6", "updates per variable per run");
  args.add_flag("seed", "47", "master seed");
  if (!args.parse(argc, argv)) {
    std::cerr << args.error() << "\n" << args.usage("table_three_var");
    return 2;
  }
  if (args.help_requested()) {
    std::cout << args.usage("table_three_var");
    return 0;
  }
  const auto runs = static_cast<std::size_t>(args.get_int("runs"));
  const auto updates = static_cast<std::size_t>(args.get_int("updates"));

  std::cout << "Three-variable systems under AD-5 and AD-6 (k-variable "
               "generalization of Table 3)\n"
            << runs << " runs per row, " << updates
            << " updates per variable, 20% loss on the lossy rows\n\n";

  struct Row {
    const char* label;
    ConditionPtr condition;
    double loss;
    bool ad5_consistent_guaranteed;
  };
  const Row rows[] = {
      {"Lossless (non-his.)", band3(), 0.0, true},
      {"Lossy Non-his.", band3(), 0.2, true},
      {"Lossy His. Cons.", spread(Triggering::kConservative), 0.2, true},
      {"Lossy His. Aggr.", spread(Triggering::kAggressive), 0.2, false},
  };

  util::Table table({"Scenario", "filter", "Ord viol.", "Comp viol.",
                     "Cons viol.", "guaranteed cells ok?"});
  bool all_ok = true;
  for (const Row& row : rows) {
    for (FilterKind filter : {FilterKind::kAd5, FilterKind::kAd6}) {
      std::size_t unordered = 0, incomplete = 0, inconsistent = 0;
      util::Rng master{static_cast<std::uint64_t>(args.get_int("seed")) +
                       (filter == FilterKind::kAd5 ? 0u : 1u)};
      for (std::size_t run = 0; run < runs; ++run) {
        util::Rng trial = master.fork(run + 1);
        sim::SystemConfig config;
        config.condition = row.condition;
        std::vector<trace::Trace> traces;
        for (VarId v : {kX, kY, kZ}) {
          trace::UniformParams p;
          p.base.var = v;
          p.base.count = updates;
          p.base.jitter = 0.4;
          p.lo = 0.0;
          p.hi = 100.0;
          traces.push_back(trace::uniform_trace(p, trial));
        }
        config.dm_traces = std::move(traces);
        config.num_ces = 2;
        config.front.loss = row.loss;
        config.front.delay_max = 2.5;
        config.back.delay_max = 2.5;
        config.filter = filter;
        config.seed = trial();
        const auto r = sim::run_system(config);
        const auto report = check::check_run(
            r.as_system_run(row.condition), 400000);
        if (report.ordered == check::Verdict::kViolated) ++unordered;
        if (report.complete == check::Verdict::kViolated) ++incomplete;
        if (report.consistent == check::Verdict::kViolated) ++inconsistent;
      }
      const bool cons_guaranteed =
          filter == FilterKind::kAd6 || row.ad5_consistent_guaranteed;
      const bool ok =
          unordered == 0 && (!cons_guaranteed || inconsistent == 0);
      all_ok = all_ok && ok;
      auto cell = [&](std::size_t n) {
        return std::to_string(n) + "/" + std::to_string(runs);
      };
      table.add_row({row.label, std::string(filter_kind_name(filter)),
                     cell(unordered), cell(incomplete), cell(inconsistent),
                     ok ? "yes" : "NO"});
    }
  }
  std::cout << table.render()
            << "\n(guaranteed: orderedness everywhere for both filters; "
               "consistency everywhere under AD-6 and on non-aggressive "
               "rows under AD-5 — exactly Table 3's pattern, now with "
               "three variables)\n"
            << (all_ok ? "RESULT: the k-variable generalization holds\n"
                       : "RESULT: GUARANTEED CELL VIOLATED — bug\n");
  return all_ok ? 0 : 1;
}
