// Workload-mix bench: throughput and cleanliness of the composable
// workload library.
//
// Runs one fixed-seed swarm batch per workload kind (every run carrying
// exactly one unit of that kind) plus one composed batch where every run
// carries at least three units, times each, and emits a JSON artifact
// (BENCH_workload_mix.json) with runs/sec and violation counts per batch.
//
// Exit status is 0 iff every batch is violation-free: with the default
// fuzz options the sampler only claims properties the paper's tables
// guarantee, so any violation is a harness or checker bug.
#include <chrono>
#include <cstdint>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "swarm/swarm.hpp"
#include "swarm/workload.hpp"
#include "util/args.hpp"

namespace {

struct BatchRow {
  std::string name;
  std::size_t runs = 0;
  std::size_t with_alerts = 0;
  std::size_t failures = 0;
  double seconds = 0.0;
};

BatchRow run_batch(std::string name, const rcm::swarm::SwarmOptions& options) {
  BatchRow row;
  row.name = std::move(name);
  const auto start = std::chrono::steady_clock::now();
  const rcm::swarm::SwarmReport report = rcm::swarm::run_swarm(options);
  row.seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  row.runs = report.runs_executed;
  row.with_alerts = report.runs_with_alerts;
  row.failures = report.failures;
  return row;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace rcm;

  util::Args args;
  args.add_flag("runs", "40", "swarm runs per batch");
  args.add_flag("seed", "3", "swarm master seed");
  args.add_flag("jobs", "0", "worker threads (0 = hardware concurrency)");
  args.add_flag("out", "BENCH_workload_mix.json",
                "path for the JSON artifact ('' = skip writing)");
  if (!args.parse(argc, argv)) {
    std::cerr << args.error() << "\n" << args.usage("workload_mix");
    return 2;
  }
  if (args.help_requested()) {
    std::cout << args.usage("workload_mix");
    return 0;
  }

  swarm::SwarmOptions base;
  base.runs = static_cast<std::size_t>(args.get_int("runs"));
  base.seed = static_cast<std::uint64_t>(args.get_int("seed"));
  base.jobs = static_cast<std::size_t>(args.get_int("jobs"));

  std::vector<BatchRow> rows;
  for (const swarm::WorkloadKind kind : swarm::kAllWorkloadKinds) {
    swarm::SwarmOptions options = base;
    options.fuzz.force_workload = kind;
    rows.push_back(run_batch(std::string(swarm::workload_kind_name(kind)),
                             options));
  }
  {
    swarm::SwarmOptions options = base;
    options.fuzz.min_workloads = 3;
    rows.push_back(run_batch("composed-3plus", options));
  }

  std::size_t total_failures = 0;
  std::cout << "workload_mix: " << base.runs << " runs/batch, seed "
            << base.seed << "\n";
  for (const BatchRow& row : rows) {
    total_failures += row.failures;
    std::cout << "  " << row.name << ": " << row.seconds << " s  ("
              << static_cast<double>(row.runs) / row.seconds << " runs/s), "
              << row.with_alerts << " runs with alerts, " << row.failures
              << " violation(s)\n";
  }

  const std::string out_path = args.get("out");
  if (!out_path.empty()) {
    std::ostringstream json;
    json << "{\n"
         << "  \"bench\": \"workload_mix\",\n"
         << "  \"runs_per_batch\": " << base.runs << ",\n"
         << "  \"seed\": " << base.seed << ",\n"
         << "  \"total_failures\": " << total_failures << ",\n"
         << "  \"batches\": [\n";
    for (std::size_t i = 0; i < rows.size(); ++i) {
      const BatchRow& row = rows[i];
      json << "    {\"name\": \"" << row.name << "\", \"seconds\": "
           << row.seconds << ", \"runs_per_sec\": "
           << static_cast<double>(row.runs) / row.seconds
           << ", \"runs_with_alerts\": " << row.with_alerts
           << ", \"failures\": " << row.failures << "}"
           << (i + 1 < rows.size() ? "," : "") << "\n";
    }
    json << "  ]\n}\n";
    std::ofstream out(out_path);
    out << json.str();
    if (!out) {
      std::cerr << "failed to write " << out_path << "\n";
      return 2;
    }
    std::cout << "  wrote " << out_path << "\n";
  }

  return total_failures == 0 ? 0 : 1;
}
