#include "sim/system.hpp"

#include <algorithm>
#include <set>
#include <stdexcept>
#include <string>

namespace rcm::sim {

check::SystemRun RunResult::as_system_run(ConditionPtr condition) const {
  check::SystemRun run;
  run.condition = std::move(condition);
  run.ce_inputs = ce_inputs;
  run.displayed = displayed;
  return run;
}

RunResult run_system(const SystemConfig& config) {
  if (!config.condition)
    throw std::invalid_argument("run_system: null condition");
  if (config.num_ces == 0)
    throw std::invalid_argument("run_system: need at least one CE");
  if (config.back.loss != 0.0)
    throw std::invalid_argument(
        "run_system: back links are lossless in the paper's model");

  // Every condition variable must be produced by some DM trace, and no
  // variable by more than one DM — two sources minting sequence numbers
  // for the same variable would break the per-variable counter model
  // (paper §2: one DM per variable; a multi-target sensor is modeled as
  // co-located DMs, each with its own variable).
  {
    std::set<VarId> produced;
    for (const auto& trace : config.dm_traces) {
      std::set<VarId> in_this_trace;
      for (const auto& tu : trace) in_this_trace.insert(tu.update.var);
      for (VarId v : in_this_trace)
        if (!produced.insert(v).second)
          throw std::invalid_argument(
              "run_system: variable " + std::to_string(v) +
              " is produced by more than one DM trace");
    }
    for (VarId v : config.condition->variables())
      if (!produced.count(v))
        throw std::invalid_argument(
            "run_system: no DM trace produces condition variable " +
            std::to_string(v));
  }

  Simulator sim;
  util::Rng master{config.seed};

  std::vector<double> display_times;
  DisplayerNode ad{make_filter(config.filter, config.condition->variables()),
                   [&](const Alert&) { display_times.push_back(sim.now()); }};

  std::vector<std::unique_ptr<EvaluatorNode>> ces;
  ces.reserve(config.num_ces);
  for (std::size_t i = 0; i < config.num_ces; ++i) {
    ces.push_back(std::make_unique<EvaluatorNode>(
        sim, config.condition, "CE" + std::to_string(i + 1)));
    if (i < config.ce_crashes.size())
      ces.back()->inject_crashes(config.ce_crashes[i]);
  }

  std::vector<std::unique_ptr<DataMonitorNode>> dms;
  dms.reserve(config.dm_traces.size());
  for (const auto& trace : config.dm_traces)
    dms.push_back(std::make_unique<DataMonitorNode>(sim, trace));

  // Links. Each gets its own forked RNG stream so adding a CE does not
  // perturb the loss pattern of existing links.
  std::vector<std::unique_ptr<Link<Update>>> front_links;
  std::vector<std::unique_ptr<Link<Alert>>> back_links;
  std::uint64_t salt = 0;
  for (auto& dm : dms) {
    for (std::size_t c = 0; c < ces.size(); ++c) {
      EvaluatorNode* target = ces[c].get();
      const LinkShaping shaping = c < config.front_shaping.size()
                                      ? config.front_shaping[c]
                                      : LinkShaping{};
      front_links.push_back(std::make_unique<Link<Update>>(
          sim, config.front, master.fork(++salt),
          [target](const Update& u) { target->on_update(u); }, shaping));
      dm->attach(front_links.back().get());
    }
  }
  for (auto& ce : ces) {
    back_links.push_back(std::make_unique<Link<Alert>>(
        sim, config.back, master.fork(++salt),
        [&ad](const Alert& a) { ad.on_alert(a); }));
    ce->set_back_link(back_links.back().get());
  }

  for (auto& dm : dms) dm->start();
  const std::size_t events = sim.run();

  RunResult result;
  result.displayed = ad.displayer().displayed();
  result.arrived = ad.displayer().arrived();
  result.display_times = std::move(display_times);
  for (const auto& ce : ces) {
    result.ce_inputs.push_back(ce->evaluator().received());
    result.ce_outputs.push_back(ce->evaluator().emitted());
  }
  for (const auto& dm : dms) result.dm_emitted.push_back(dm->emitted());
  for (const auto& link : front_links)
    result.front_messages_dropped += link->dropped();
  result.events_executed = events;
  return result;
}

}  // namespace rcm::sim
