#include "sim/simulator.hpp"

#include <algorithm>
#include <utility>

#include "obs/metrics.hpp"

namespace rcm::sim {

void Simulator::schedule_at(double at, Action action) {
  queue_.push(Event{std::max(at, now_), next_seq_++, std::move(action)});
}

void Simulator::schedule_after(double delay, Action action) {
  schedule_at(now_ + std::max(delay, 0.0), std::move(action));
}

std::size_t Simulator::run() {
  std::size_t executed = 0;
  while (!queue_.empty()) {
    // Move the action out before popping so it may schedule new events.
    Event ev = queue_.top();
    queue_.pop();
    now_ = ev.time;
    ev.action();
    ++executed;
  }
  // One amortized increment per run, not per event — the dispatch loop
  // itself stays untouched.
  RCM_COUNT_N("sim.events_dispatched", executed);
  return executed;
}

std::size_t Simulator::run_until(double until) {
  std::size_t executed = 0;
  while (!queue_.empty() && queue_.top().time <= until) {
    Event ev = queue_.top();
    queue_.pop();
    now_ = ev.time;
    ev.action();
    ++executed;
  }
  now_ = std::max(now_, until);
  RCM_COUNT_N("sim.events_dispatched", executed);
  return executed;
}

}  // namespace rcm::sim
