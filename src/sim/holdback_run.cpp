#include "sim/holdback_run.hpp"

#include <functional>
#include <map>
#include <memory>
#include <stdexcept>
#include <string>

namespace rcm::sim {

HoldbackResult run_holdback_system(const SystemConfig& base, double timeout) {
  if (!base.condition)
    throw std::invalid_argument("run_holdback_system: null condition");
  if (base.condition->variables().size() != 1)
    throw std::invalid_argument(
        "run_holdback_system: hold-back displayer is single-variable");
  if (base.back.loss != 0.0)
    throw std::invalid_argument("run_holdback_system: lossy back links");

  Simulator sim;
  util::Rng master{base.seed};
  const VarId var = base.condition->variables()[0];

  HoldbackResult result;
  HoldbackDisplayer holdback{var, timeout};
  std::map<AlertKey, double> arrival_time;

  auto record_displays = [&](const std::vector<Alert>& released) {
    for (const Alert& a : released) {
      result.displayed.push_back(a);
      auto it = arrival_time.find(a.key());
      result.display_latency.push_back(
          it == arrival_time.end() ? 0.0 : sim.now() - it->second);
    }
  };

  // Deadline pump: releases expired entries and reschedules itself for
  // the next pending deadline.
  std::function<void()> pump = [&] {
    record_displays(holdback.on_time(sim.now()));
    if (const auto deadline = holdback.next_deadline())
      sim.schedule_at(*deadline, pump);
  };

  auto on_alert_arrival = [&](const Alert& a) {
    ++result.arrived;
    arrival_time.try_emplace(a.key(), sim.now());
    record_displays(holdback.on_alert(a, sim.now()));
    if (const auto deadline = holdback.next_deadline())
      sim.schedule_at(*deadline, pump);
  };

  std::vector<std::unique_ptr<EvaluatorNode>> ces;
  for (std::size_t i = 0; i < base.num_ces; ++i) {
    ces.push_back(std::make_unique<EvaluatorNode>(
        sim, base.condition, "CE" + std::to_string(i + 1)));
    if (i < base.ce_crashes.size())
      ces.back()->inject_crashes(base.ce_crashes[i]);
  }
  std::vector<std::unique_ptr<DataMonitorNode>> dms;
  for (const auto& trace : base.dm_traces)
    dms.push_back(std::make_unique<DataMonitorNode>(sim, trace));

  std::vector<std::unique_ptr<Link<Update>>> front_links;
  std::vector<std::unique_ptr<Link<Alert>>> back_links;
  std::uint64_t salt = 0;
  for (auto& dm : dms) {
    for (auto& ce : ces) {
      EvaluatorNode* target = ce.get();
      front_links.push_back(std::make_unique<Link<Update>>(
          sim, base.front, master.fork(++salt),
          [target](const Update& u) { target->on_update(u); }));
      dm->attach(front_links.back().get());
    }
  }
  for (auto& ce : ces) {
    back_links.push_back(std::make_unique<Link<Alert>>(
        sim, base.back, master.fork(++salt), on_alert_arrival));
    ce->set_back_link(back_links.back().get());
  }

  for (auto& dm : dms) dm->start();
  sim.run();
  record_displays(holdback.flush());

  for (const auto& ce : ces)
    result.ce_inputs.push_back(ce->evaluator().received());
  result.late_displays = holdback.late_displays();
  result.duplicates = holdback.duplicates();
  return result;
}

}  // namespace rcm::sim
