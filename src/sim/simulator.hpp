// Deterministic discrete-event simulator.
//
// Single-threaded: events execute strictly in timestamp order, ties broken
// by insertion order, so a run is a pure function of (configuration, seed).
// Every experiment in bench/ is therefore reproducible bit-for-bit, and the
// property checkers can be applied to exact, replayable interleavings.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

namespace rcm::sim {

/// Event-queue simulator with a virtual clock.
class Simulator {
 public:
  using Action = std::function<void()>;

  /// Schedules `action` at absolute virtual time `at`. Scheduling in the
  /// past (before now()) clamps to now(): the action runs at the current
  /// time, but AFTER any actions already queued at now() — ties are broken
  /// first-scheduled-first-run, and clamping does not jump that queue.
  void schedule_at(double at, Action action);

  /// Schedules `action` `delay` seconds after the current virtual time.
  void schedule_after(double delay, Action action);

  /// Runs until the event queue is empty. Returns the number of events
  /// executed.
  std::size_t run();

  /// Runs events with time <= `until` (events scheduled beyond stay
  /// queued). Returns the number of events executed.
  std::size_t run_until(double until);

  /// Current virtual time: the timestamp of the last executed event.
  [[nodiscard]] double now() const noexcept { return now_; }

  /// Events currently queued.
  [[nodiscard]] std::size_t pending() const noexcept { return queue_.size(); }

 private:
  struct Event {
    double time;
    std::uint64_t seq;  // tie-break: FIFO among equal timestamps
    Action action;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const noexcept {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  std::priority_queue<Event, std::vector<Event>, Later> queue_;
  double now_ = 0.0;
  std::uint64_t next_seq_ = 0;
};

}  // namespace rcm::sim
