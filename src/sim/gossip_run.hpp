// CE anti-entropy ("gossip repair") — an extension beyond the paper.
//
// The paper's replicas are fully independent: each misses whatever its
// own front link drops, and the AD-side algorithms then manage the
// resulting anomalies. A natural systems question the paper leaves open
// is whether cheap CE-to-CE repair shrinks the anomaly source itself.
//
// Protocol (deliberately minimal): every `interval` seconds each CE
// announces its per-variable high watermark (last accepted seqno) to
// every peer over a reliable CE-CE link; a peer receiving an
// announcement forwards every update it holds above the announcer's
// watermark. Forwarded updates enter the regular on_update path, where
// the stale-seqno discard applies — so repair only helps when it wins
// the race against the next direct update (the CE model cannot splice
// an old update into its history after newer ones arrived). The
// experiment in bench/gossip quantifies exactly that race: repair
// intervals well below the update period recover most losses; slower
// gossip recovers nothing.
#pragma once

#include "sim/system.hpp"

namespace rcm::sim {

/// Gossip protocol parameters.
struct GossipParams {
  bool enabled = true;
  double interval = 0.5;        ///< seconds between announcements per CE
  LinkParams ce_links{0.002, 0.020, 0.0};  ///< reliable CE-CE links
  double start_at = 0.5;        ///< first announcement time
  double stop_after = 1e9;      ///< stop gossiping after this time
};

/// Observables of a gossip run.
struct GossipResult {
  RunResult run;
  std::size_t announcements = 0;     ///< watermark messages sent
  std::size_t repairs_sent = 0;      ///< updates forwarded between CEs
  std::size_t repairs_accepted = 0;  ///< forwarded updates a CE accepted
};

/// Runs the replicated system of `base` with the gossip protocol layered
/// on top of the CE fleet.
[[nodiscard]] GossipResult run_gossip_system(const SystemConfig& base,
                                             const GossipParams& gossip);

}  // namespace rcm::sim
