#include "sim/nodes.hpp"

#include <stdexcept>

namespace rcm::sim {

DataMonitorNode::DataMonitorNode(Simulator& sim, trace::Trace trace)
    : sim_(sim), trace_(std::move(trace)) {}

void DataMonitorNode::attach(Link<Update>* front_link) {
  if (!front_link) throw std::invalid_argument("DataMonitorNode: null link");
  links_.push_back(front_link);
}

void DataMonitorNode::start() {
  for (const trace::TimedUpdate& tu : trace_) {
    sim_.schedule_at(tu.time, [this, u = tu.update] {
      for (Link<Update>* link : links_) link->send(u);
    });
  }
}

std::vector<Update> DataMonitorNode::emitted() const {
  return trace::updates_of(trace_);
}

EvaluatorNode::EvaluatorNode(Simulator& sim, ConditionPtr condition,
                             std::string id)
    : sim_(sim), ce_(std::move(condition), std::move(id)) {}

void EvaluatorNode::inject_crashes(const std::vector<CrashWindow>& windows) {
  for (const CrashWindow& w : windows) {
    if (w.up_at < w.down_at)
      throw std::invalid_argument("CrashWindow: up_at before down_at");
    sim_.schedule_at(w.down_at, [this, lose = w.lose_state] {
      down_ = true;
      if (lose) ce_.crash_reset();
    });
    sim_.schedule_at(w.up_at, [this] { down_ = false; });
  }
}

void EvaluatorNode::on_update(const Update& u) {
  if (down_) return;  // a crashed CE misses updates entirely
  if (auto alert = ce_.on_update(u)) {
    if (back_) back_->send(*alert);
  }
}

DisplayerNode::DisplayerNode(FilterPtr filter,
                             std::function<void(const Alert&)> sink)
    : ad_(std::move(filter), std::move(sink)) {}

}  // namespace rcm::sim
