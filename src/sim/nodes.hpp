// Simulated system nodes: Data Monitor, Condition Evaluator, Alert
// Displayer (Figure 1 of the paper), wired by sim/system.hpp.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/displayer.hpp"
#include "core/evaluator.hpp"
#include "sim/link.hpp"
#include "sim/simulator.hpp"
#include "trace/generators.hpp"

namespace rcm::sim {

/// A Data Monitor: replays a trace, broadcasting each update on every
/// attached front link at the update's emission time.
class DataMonitorNode {
 public:
  DataMonitorNode(Simulator& sim, trace::Trace trace);

  /// Attaches a front link toward one CE replica. Must be called before
  /// start().
  void attach(Link<Update>* front_link);

  /// Schedules the whole trace on the simulator.
  void start();

  /// The updates this DM emitted (the paper's U for its variable).
  [[nodiscard]] std::vector<Update> emitted() const;

 private:
  Simulator& sim_;
  trace::Trace trace_;
  std::vector<Link<Update>*> links_;
};

/// Crash/recovery window for fault injection on a CE.
struct CrashWindow {
  double down_at = 0.0;
  double up_at = 0.0;
  /// Whether the crash wipes the CE's volatile state (histories). A
  /// process crash does; a network partition of the same duration would
  /// not.
  bool lose_state = true;
};

/// A Condition Evaluator replica: feeds received updates to its
/// ConditionEvaluator and forwards raised alerts on the back link.
/// While crashed it drops incoming updates.
class EvaluatorNode {
 public:
  EvaluatorNode(Simulator& sim, ConditionPtr condition, std::string id);

  /// Sets the back link toward the AD. Must be set before traffic flows.
  void set_back_link(Link<Alert>* back_link) { back_ = back_link; }

  /// Schedules the crash windows on the simulator.
  void inject_crashes(const std::vector<CrashWindow>& windows);

  /// Front-link delivery callback.
  void on_update(const Update& u);

  [[nodiscard]] const ConditionEvaluator& evaluator() const noexcept {
    return ce_;
  }
  [[nodiscard]] bool down() const noexcept { return down_; }

 private:
  Simulator& sim_;
  ConditionEvaluator ce_;
  Link<Alert>* back_ = nullptr;
  bool down_ = false;
};

/// The Alert Displayer node: one AlertDisplayer fed by all back links.
class DisplayerNode {
 public:
  /// `sink`, if given, observes every displayed alert (the runners use
  /// it to timestamp displays with the virtual clock).
  explicit DisplayerNode(FilterPtr filter,
                         std::function<void(const Alert&)> sink = nullptr);

  void on_alert(const Alert& a) { ad_.on_alert(a); }

  [[nodiscard]] const AlertDisplayer& displayer() const noexcept { return ad_; }

 private:
  AlertDisplayer ad_;
};

}  // namespace rcm::sim
