#include "sim/disconnect.hpp"

#include <memory>
#include <set>
#include <stdexcept>
#include <string>

namespace rcm::sim {
namespace {

/// One CE replica with a durable store-and-forward outbox.
class StoredEvaluatorNode {
 public:
  StoredEvaluatorNode(Simulator& sim, ConditionPtr condition, std::string id,
                      store::AlertOutbox::SendFn send)
      : sim_(sim),
        ce_(std::move(condition), std::move(id)),
        outbox_(std::move(send)) {}

  void inject_crashes(const std::vector<CrashWindow>& windows) {
    for (const CrashWindow& w : windows) {
      if (w.up_at < w.down_at)
        throw std::invalid_argument("CrashWindow: up_at before down_at");
      sim_.schedule_at(w.down_at, [this, lose = w.lose_state] {
        down_ = true;
        if (lose) ce_.crash_reset();  // volatile state dies; the log lives
      });
      sim_.schedule_at(w.up_at, [this] { down_ = false; });
    }
  }

  void on_update(const Update& u) {
    if (down_) return;
    if (auto alert = ce_.on_update(u)) outbox_.submit(*alert);
  }

  [[nodiscard]] const ConditionEvaluator& evaluator() const noexcept {
    return ce_;
  }
  [[nodiscard]] store::AlertOutbox& outbox() noexcept { return outbox_; }

 private:
  Simulator& sim_;
  ConditionEvaluator ce_;
  store::AlertOutbox outbox_;
  bool down_ = false;
};

/// Message on the back links: a log entry from one replica.
struct BackMsg {
  std::size_t replica;
  store::AlertLog::Index index;
  Alert alert;
};

}  // namespace

DisconnectResult run_disconnectable_system(const DisconnectConfig& config) {
  const SystemConfig& base = config.base;
  if (!base.condition)
    throw std::invalid_argument("run_disconnectable_system: null condition");
  if (base.num_ces == 0)
    throw std::invalid_argument("run_disconnectable_system: need a CE");
  if (base.back.loss != 0.0)
    throw std::invalid_argument(
        "run_disconnectable_system: back links are lossless");
  double prev_end = 0.0;
  for (const auto& [from, to] : config.ad_offline) {
    if (from < prev_end || to < from)
      throw std::invalid_argument(
          "run_disconnectable_system: offline windows must be "
          "non-overlapping and ascending");
    prev_end = to;
  }

  Simulator sim;
  util::Rng master{base.seed};

  DisconnectResult result;

  // --- the AD gate -------------------------------------------------------
  AlertDisplayer displayer{
      make_filter(base.filter, base.condition->variables())};
  bool ad_online = true;
  std::vector<std::set<store::AlertLog::Index>> delivered_index(base.num_ces);

  // Outboxes are created below; the ack path needs to reach them.
  std::vector<std::unique_ptr<StoredEvaluatorNode>> ces;

  auto deliver_to_ad = [&](const BackMsg& msg) {
    if (!ad_online) {
      ++result.offline_drops;  // sender will retransmit after reconnect
      return;
    }
    // Acknowledge (cumulatively) whether or not it is a duplicate.
    sim.schedule_after(config.ack_delay, [&ces, msg] {
      ces[msg.replica]->outbox().on_ack(msg.index);
    });
    if (!delivered_index[msg.replica].insert(msg.index).second) {
      ++result.duplicate_deliveries;
      return;
    }
    if (displayer.on_alert(msg.alert))
      result.display_times.push_back(sim.now());
  };

  // --- links and nodes ---------------------------------------------------
  std::vector<std::unique_ptr<Link<BackMsg>>> back_links;
  std::uint64_t salt = 0;
  for (std::size_t c = 0; c < base.num_ces; ++c) {
    back_links.push_back(std::make_unique<Link<BackMsg>>(
        sim, base.back, master.fork(0x9000 + ++salt), deliver_to_ad));
  }

  for (std::size_t c = 0; c < base.num_ces; ++c) {
    Link<BackMsg>* link = back_links[c].get();
    ces.push_back(std::make_unique<StoredEvaluatorNode>(
        sim, base.condition, "CE" + std::to_string(c + 1),
        [link, c](store::AlertLog::Index index, const Alert& a) {
          link->send(BackMsg{c, index, a});
        }));
    if (c < base.ce_crashes.size())
      ces.back()->inject_crashes(base.ce_crashes[c]);
    ces.back()->outbox().set_connected(true);  // AD starts online
  }

  std::vector<std::unique_ptr<DataMonitorNode>> dms;
  for (const auto& trace : base.dm_traces)
    dms.push_back(std::make_unique<DataMonitorNode>(sim, trace));

  std::vector<std::unique_ptr<Link<Update>>> front_links;
  for (auto& dm : dms) {
    for (std::size_t c = 0; c < ces.size(); ++c) {
      StoredEvaluatorNode* target = ces[c].get();
      const LinkShaping shaping = c < base.front_shaping.size()
                                      ? base.front_shaping[c]
                                      : LinkShaping{};
      front_links.push_back(std::make_unique<Link<Update>>(
          sim, base.front, master.fork(++salt),
          [target](const Update& u) { target->on_update(u); }, shaping));
      dm->attach(front_links.back().get());
    }
  }

  // --- offline schedule --------------------------------------------------
  for (const auto& [from, to] : config.ad_offline) {
    sim.schedule_at(from, [&] {
      ad_online = false;
      for (auto& ce : ces) ce->outbox().set_connected(false);
    });
    sim.schedule_at(to, [&] {
      ad_online = true;
      for (auto& ce : ces) ce->outbox().set_connected(true);
    });
  }

  for (auto& dm : dms) dm->start();
  result.run.events_executed = sim.run();

  // If the trace ended inside an offline window, bring the AD back once
  // more so the logged tail drains (the paper's "sends it later").
  if (!ad_online) {
    ad_online = true;
    for (auto& ce : ces) ce->outbox().set_connected(true);
    result.run.events_executed += sim.run();
  }

  result.run.displayed = displayer.displayed();
  result.run.arrived = displayer.arrived();
  for (const auto& ce : ces) {
    result.run.ce_inputs.push_back(ce->evaluator().received());
    result.run.ce_outputs.push_back(ce->evaluator().emitted());
    result.retransmissions += ce->outbox().retransmissions();
  }
  for (const auto& dm : dms) result.run.dm_emitted.push_back(dm->emitted());
  for (const auto& link : front_links)
    result.run.front_messages_dropped += link->dropped();
  return result;
}

}  // namespace rcm::sim
