#include "sim/multi_condition.hpp"

#include <memory>
#include <set>
#include <stdexcept>
#include <string>

namespace rcm::sim {

MultiConditionResult run_multi_condition_system(
    const MultiConditionConfig& config) {
  if (config.groups.empty())
    throw std::invalid_argument("run_multi_condition_system: no conditions");
  if (config.back.loss != 0.0)
    throw std::invalid_argument(
        "run_multi_condition_system: back links are lossless");
  {
    std::set<std::string> names;
    for (const auto& g : config.groups) {
      if (!g.condition || g.num_ces == 0)
        throw std::invalid_argument(
            "run_multi_condition_system: bad condition group");
      if (!names.insert(std::string{g.condition->name()}).second)
        throw std::invalid_argument(
            "run_multi_condition_system: duplicate condition name");
    }
    std::set<VarId> produced;
    for (const auto& trace : config.dm_traces)
      for (const auto& tu : trace) produced.insert(tu.update.var);
    for (const auto& g : config.groups)
      for (VarId v : g.condition->variables())
        if (!produced.count(v))
          throw std::invalid_argument(
              "run_multi_condition_system: no DM produces variable " +
              std::to_string(v));
  }

  Simulator sim;
  util::Rng master{config.seed};

  ConditionRouter router;
  for (const auto& g : config.groups)
    router.add_condition(std::string{g.condition->name()},
                         make_filter(g.filter, g.condition->variables()));

  // CE replicas, flat list with their group index.
  struct CeSlot {
    std::unique_ptr<EvaluatorNode> node;
    std::size_t group;
  };
  std::vector<CeSlot> ces;
  for (std::size_t g = 0; g < config.groups.size(); ++g) {
    const auto& group = config.groups[g];
    for (std::size_t i = 0; i < group.num_ces; ++i) {
      auto node = std::make_unique<EvaluatorNode>(
          sim, group.condition,
          std::string{group.condition->name()} + ".CE" + std::to_string(i + 1));
      ces.push_back(CeSlot{std::move(node), g});
    }
  }

  std::vector<std::unique_ptr<DataMonitorNode>> dms;
  for (const auto& trace : config.dm_traces)
    dms.push_back(std::make_unique<DataMonitorNode>(sim, trace));

  std::vector<std::unique_ptr<Link<Update>>> front_links;
  std::vector<std::unique_ptr<Link<Alert>>> back_links;
  std::uint64_t salt = 0;
  for (auto& dm : dms) {
    for (auto& slot : ces) {
      EvaluatorNode* target = slot.node.get();
      front_links.push_back(std::make_unique<Link<Update>>(
          sim, config.front, master.fork(++salt),
          [target](const Update& u) { target->on_update(u); }));
      dm->attach(front_links.back().get());
    }
  }
  for (auto& slot : ces) {
    back_links.push_back(std::make_unique<Link<Alert>>(
        sim, config.back, master.fork(++salt),
        [&router](const Alert& a) { (void)router.on_alert(a); }));
    slot.node->set_back_link(back_links.back().get());
  }

  for (auto& dm : dms) dm->start();
  sim.run();

  MultiConditionResult result;
  result.displayed = router.displayed();
  for (const auto& g : config.groups) {
    const std::string name{g.condition->name()};
    result.per_condition[name] = router.displayed_for(name);
  }
  for (const auto& slot : ces) {
    const std::string name{config.groups[slot.group].condition->name()};
    result.ce_inputs[name].push_back(slot.node->evaluator().received());
  }
  return result;
}

}  // namespace rcm::sim
