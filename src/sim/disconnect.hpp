// Disconnectable-displayer simulation (paper §1: the PDA "can be powered
// off or disconnected from the network most of the time").
//
// Extends the basic replicated system with Alert Displayer offline
// windows and the store-and-forward back-link protocol from rcm::store:
// every CE logs alerts durably in an AlertOutbox, transmits while the AD
// is reachable, and retransmits the unacknowledged suffix on
// reconnection. The AD deduplicates retransmissions by (replica, log
// index) and acknowledges cumulatively after a configurable delay.
//
// End-to-end losslessness — every alert a CE ever raised is eventually
// displayed (modulo the AD filter), no matter how the offline windows
// fall — is asserted by the tests and quantified by bench/disconnect.
#pragma once

#include <utility>
#include <vector>

#include "sim/system.hpp"
#include "store/outbox.hpp"

namespace rcm::sim {

/// Configuration: the base system plus the AD's offline schedule.
struct DisconnectConfig {
  SystemConfig base;

  /// [offline_from, online_again) windows, non-overlapping ascending.
  /// Outside every window the AD is reachable.
  std::vector<std::pair<double, double>> ad_offline;

  /// One-way delay of the cumulative acknowledgement from AD to CE.
  double ack_delay = 0.02;
};

/// Observables of a disconnectable run.
struct DisconnectResult {
  RunResult run;  ///< same fields as a plain system run

  /// Virtual display time of each alert in run.displayed (parallel array).
  std::vector<double> display_times;

  /// Entries re-sent by reconnection flushes, summed over CEs.
  std::size_t retransmissions = 0;

  /// Retransmitted entries the AD recognized by (replica, index) and did
  /// not re-offer to the filter.
  std::size_t duplicate_deliveries = 0;

  /// Deliveries that arrived while the AD was offline (dropped by the
  /// gate; covered by later retransmission).
  std::size_t offline_drops = 0;
};

/// Builds and runs the system. Throws std::invalid_argument on malformed
/// configs (including overlapping or inverted offline windows).
[[nodiscard]] DisconnectResult run_disconnectable_system(
    const DisconnectConfig& config);

}  // namespace rcm::sim
