#include "sim/gossip_run.hpp"

#include <algorithm>
#include <map>
#include <memory>
#include <stdexcept>
#include <string>

namespace rcm::sim {
namespace {

/// CE-to-CE message: a watermark announcement or a batch of repairs.
struct GossipMsg {
  enum class Kind { kAnnounce, kRepair };
  Kind kind = Kind::kAnnounce;
  std::size_t from = 0;
  std::map<VarId, SeqNo> watermarks;  // kAnnounce
  std::vector<Update> updates;        // kRepair
};

}  // namespace

GossipResult run_gossip_system(const SystemConfig& base,
                               const GossipParams& gossip) {
  if (!base.condition)
    throw std::invalid_argument("run_gossip_system: null condition");
  if (base.num_ces == 0)
    throw std::invalid_argument("run_gossip_system: need at least one CE");
  if (base.back.loss != 0.0)
    throw std::invalid_argument("run_gossip_system: lossy back links");
  if (gossip.interval <= 0.0)
    throw std::invalid_argument("run_gossip_system: interval must be > 0");

  Simulator sim;
  util::Rng master{base.seed};
  GossipResult result;

  DisplayerNode ad{make_filter(base.filter, base.condition->variables())};

  std::vector<std::unique_ptr<EvaluatorNode>> ces;
  for (std::size_t i = 0; i < base.num_ces; ++i) {
    ces.push_back(std::make_unique<EvaluatorNode>(
        sim, base.condition, "CE" + std::to_string(i + 1)));
    if (i < base.ce_crashes.size())
      ces.back()->inject_crashes(base.ce_crashes[i]);
  }

  std::vector<std::unique_ptr<DataMonitorNode>> dms;
  double horizon = 0.0;
  for (const auto& trace : base.dm_traces) {
    for (const auto& tu : trace) horizon = std::max(horizon, tu.time);
    dms.push_back(std::make_unique<DataMonitorNode>(sim, trace));
  }
  horizon += 5.0;  // slack for in-flight deliveries and a last repair round

  // Front and back links, as in run_system.
  std::vector<std::unique_ptr<Link<Update>>> front_links;
  std::vector<std::unique_ptr<Link<Alert>>> back_links;
  std::uint64_t salt = 0;
  for (auto& dm : dms) {
    for (auto& ce : ces) {
      EvaluatorNode* target = ce.get();
      front_links.push_back(std::make_unique<Link<Update>>(
          sim, base.front, master.fork(++salt),
          [target](const Update& u) { target->on_update(u); }));
      dm->attach(front_links.back().get());
    }
  }
  for (auto& ce : ces) {
    back_links.push_back(std::make_unique<Link<Alert>>(
        sim, base.back, master.fork(++salt),
        [&ad](const Alert& a) { ad.on_alert(a); }));
    ce->set_back_link(back_links.back().get());
  }

  // CE-CE gossip links, one per ordered pair.
  std::map<std::pair<std::size_t, std::size_t>,
           std::unique_ptr<Link<GossipMsg>>>
      gossip_links;

  auto handle_gossip = [&](std::size_t at, const GossipMsg& msg) {
    if (msg.kind == GossipMsg::Kind::kRepair) {
      for (const Update& u : msg.updates) {
        const bool fresh = ces[at]->evaluator().would_accept(u);
        ces[at]->on_update(u);
        if (fresh && !ces[at]->down()) ++result.repairs_accepted;
      }
      return;
    }
    // Announcement from msg.from: forward everything it lacks.
    GossipMsg repair;
    repair.kind = GossipMsg::Kind::kRepair;
    repair.from = at;
    for (const Update& u : ces[at]->evaluator().received()) {
      auto it = msg.watermarks.find(u.var);
      const SeqNo their_watermark =
          it == msg.watermarks.end() ? kNoSeqNo : it->second;
      if (u.seqno > their_watermark) repair.updates.push_back(u);
    }
    if (!repair.updates.empty()) {
      result.repairs_sent += repair.updates.size();
      gossip_links.at({at, msg.from})->send(repair);
    }
  };

  if (gossip.enabled && base.num_ces > 1) {
    for (std::size_t i = 0; i < base.num_ces; ++i) {
      for (std::size_t j = 0; j < base.num_ces; ++j) {
        if (i == j) continue;
        gossip_links.emplace(
            std::make_pair(i, j),
            std::make_unique<Link<GossipMsg>>(
                sim, gossip.ce_links, master.fork(0x6000 + ++salt),
                [&handle_gossip, j](const GossipMsg& m) {
                  handle_gossip(j, m);
                }));
      }
    }
    // Periodic announcements until the horizon.
    const double stop = std::min(horizon, gossip.stop_after);
    for (std::size_t i = 0; i < base.num_ces; ++i) {
      for (double t = gossip.start_at; t <= stop; t += gossip.interval) {
        sim.schedule_at(t, [&, i] {
          if (ces[i]->down()) return;  // crashed CEs do not gossip
          GossipMsg announce;
          announce.kind = GossipMsg::Kind::kAnnounce;
          announce.from = i;
          announce.watermarks = ces[i]->evaluator().last_seen();
          ++result.announcements;
          for (std::size_t j = 0; j < base.num_ces; ++j)
            if (j != i) gossip_links.at({i, j})->send(announce);
        });
      }
    }
  }

  for (auto& dm : dms) dm->start();
  result.run.events_executed = sim.run();

  result.run.displayed = ad.displayer().displayed();
  result.run.arrived = ad.displayer().arrived();
  for (const auto& ce : ces) {
    result.run.ce_inputs.push_back(ce->evaluator().received());
    result.run.ce_outputs.push_back(ce->evaluator().emitted());
  }
  for (const auto& dm : dms) result.run.dm_emitted.push_back(dm->emitted());
  for (const auto& link : front_links)
    result.run.front_messages_dropped += link->dropped();
  return result;
}

}  // namespace rcm::sim
