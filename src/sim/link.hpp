// Simulated communication links (paper §2.1).
//
// Both front links (DM -> CE) and back links (CE -> AD) deliver messages
// *in order*: the paper obtains this with per-link sender sequence numbers
// and receiver-side discard of out-of-order arrivals; we model the result
// directly by never scheduling a delivery before the previously scheduled
// one on the same link.
//
// Front links are *potentially lossy* (UDP-like datagrams from cheap
// multicast sensors); back links are lossless (TCP-like, low traffic,
// alerts too important to drop). Loss is i.i.d. Bernoulli per message;
// delay is uniform in [delay_min, delay_max]. Each link owns a forked RNG
// stream so experiments stay deterministic under reconfiguration.
#pragma once

#include <algorithm>
#include <cstddef>
#include <functional>
#include <stdexcept>
#include <utility>
#include <vector>

#include "sim/simulator.hpp"
#include "util/rng.hpp"

namespace rcm::sim {

/// Loss / delay parameters of one link.
struct LinkParams {
  double delay_min = 0.005;  ///< seconds
  double delay_max = 0.050;  ///< seconds
  double loss = 0.0;         ///< per-message drop probability
};

/// Degradations layered on top of LinkParams by fault-injecting
/// workloads: a constant extra delay (a slow / lagging receiver) and
/// send-time outage windows during which every message is dropped (an
/// asymmetric partition of this link only). Kept out of LinkParams so a
/// shaped link consumes exactly the same RNG stream as an unshaped one
/// outside the outage windows: outage drops are decided before any
/// random draw, and the extra delay is deterministic.
struct LinkShaping {
  double extra_delay = 0.0;  ///< seconds, added to every delivery
  /// Messages *sent* at time t with from <= t < to are dropped.
  std::vector<std::pair<double, double>> outages;

  [[nodiscard]] bool cuts(double at) const noexcept {
    for (const auto& [from, to] : outages)
      if (at >= from && at < to) return true;
    return false;
  }
};

/// In-order, optionally lossy, unidirectional message channel carrying
/// messages of type M. Delivery happens via the callback passed at
/// construction; the Link must outlive the simulation run.
template <typename M>
class Link {
 public:
  using Deliver = std::function<void(const M&)>;

  Link(Simulator& sim, LinkParams params, util::Rng rng, Deliver deliver,
       LinkShaping shaping = {})
      : sim_(sim),
        params_(params),
        shaping_(std::move(shaping)),
        rng_(rng),
        deliver_(std::move(deliver)) {
    if (params_.delay_min < 0 || params_.delay_max < params_.delay_min)
      throw std::invalid_argument("Link: bad delay range");
    if (params_.loss < 0.0 || params_.loss > 1.0)
      throw std::invalid_argument("Link: loss must be in [0,1]");
    if (shaping_.extra_delay < 0.0)
      throw std::invalid_argument("Link: extra delay must be >= 0");
    for (const auto& [from, to] : shaping_.outages)
      if (!(from >= 0.0) || !(to >= from))
        throw std::invalid_argument("Link: bad outage window");
    if (!deliver_) throw std::invalid_argument("Link: null deliver callback");
  }

  Link(const Link&) = delete;
  Link& operator=(const Link&) = delete;

  /// Submits a message. It is either dropped (with probability
  /// params.loss) or scheduled for delivery after a random delay, no
  /// earlier than the previously scheduled delivery (FIFO order).
  void send(const M& message) {
    ++sent_;
    // Outage drops come first and consume no randomness, so the loss and
    // delay pattern outside the windows is the same as without shaping.
    if (shaping_.cuts(sim_.now())) {
      ++dropped_;
      return;
    }
    if (rng_.bernoulli(params_.loss)) {
      ++dropped_;
      return;
    }
    const double delay = shaping_.extra_delay +
                         rng_.uniform(params_.delay_min, params_.delay_max);
    double at = sim_.now() + delay;
    // Enforce in-order delivery: never before the last scheduled arrival.
    at = std::max(at, last_delivery_ + kOrderingEpsilon);
    last_delivery_ = at;
    sim_.schedule_at(at, [this, message] {
      ++delivered_;
      deliver_(message);
    });
  }

  [[nodiscard]] std::size_t sent() const noexcept { return sent_; }
  [[nodiscard]] std::size_t dropped() const noexcept { return dropped_; }
  [[nodiscard]] std::size_t delivered() const noexcept { return delivered_; }

 private:
  static constexpr double kOrderingEpsilon = 1e-9;

  Simulator& sim_;
  LinkParams params_;
  LinkShaping shaping_;
  util::Rng rng_;
  Deliver deliver_;
  double last_delivery_ = 0.0;
  std::size_t sent_ = 0;
  std::size_t dropped_ = 0;
  std::size_t delivered_ = 0;
};

}  // namespace rcm::sim
