// Simulation runner for the §4.2 "delayed displaying" extension: the
// replicated system of sim/system.hpp with a HoldbackDisplayer (reorder
// buffer with timeout) in place of an AD-i filter.
#pragma once

#include <vector>

#include "core/holdback.hpp"
#include "sim/system.hpp"

namespace rcm::sim {

/// Observables of a hold-back run.
struct HoldbackResult {
  std::vector<Alert> displayed;               ///< display order
  std::vector<std::vector<Update>> ce_inputs; ///< U_i per CE
  std::size_t late_displays = 0;   ///< displays that broke seqno order
  std::size_t duplicates = 0;      ///< exact duplicates absorbed
  std::size_t arrived = 0;         ///< alerts that reached the AD
  /// Per displayed alert: virtual time from AD arrival to display.
  std::vector<double> display_latency;
};

/// Runs `base` (which must have a single-variable condition; the filter
/// field is ignored) with a hold-back displayer using `timeout`.
[[nodiscard]] HoldbackResult run_holdback_system(const SystemConfig& base,
                                                 double timeout);

}  // namespace rcm::sim
