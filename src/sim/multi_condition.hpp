// Multi-condition simulated systems (Appendix D).
//
// Each condition group gets its own replicated CE fleet (Figure D-7(c)
// with num_ces = 2 per group); the single AD demultiplexes alert streams
// by condition name and runs one filter instance per condition. To model
// the co-located configuration of Figure D-7(d), pass one group whose
// condition is a DisjunctionCondition C = A OR B.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "core/multi_condition.hpp"
#include "sim/system.hpp"

namespace rcm::sim {

/// One monitored condition and its replication/filtering policy.
struct ConditionGroup {
  ConditionPtr condition;
  std::size_t num_ces = 2;
  FilterKind filter = FilterKind::kAd1;
};

/// Configuration of a multi-condition system.
struct MultiConditionConfig {
  std::vector<ConditionGroup> groups;
  std::vector<trace::Trace> dm_traces;  ///< every DM broadcasts to every CE
  LinkParams front{0.005, 0.050, 0.0};
  LinkParams back{0.005, 0.050, 0.0};
  std::uint64_t seed = 1;
};

/// Observables of one multi-condition run.
struct MultiConditionResult {
  /// Everything displayed, across conditions, in display order.
  std::vector<Alert> displayed;

  /// Displayed alerts per condition name (each is that condition's A and
  /// can be fed to the single-condition property checkers).
  std::map<std::string, std::vector<Alert>> per_condition;

  /// Received update sequences per condition name, one per CE replica.
  std::map<std::string, std::vector<std::vector<Update>>> ce_inputs;
};

/// Builds, runs and observes the system. Throws std::invalid_argument on
/// malformed configs (duplicate condition names, missing variables, lossy
/// back links).
[[nodiscard]] MultiConditionResult run_multi_condition_system(
    const MultiConditionConfig& config);

}  // namespace rcm::sim
