// Whole-system builder: wires DMs, replicated CEs, links and the AD into
// one simulation (Figure 1(b) / Figure 2(a) / Figure 3 of the paper) and
// runs it to completion.
//
// A SystemConfig with num_ces = 1 and FilterKind::kPassAll is exactly the
// paper's "corresponding non-replicated system" N.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "check/properties.hpp"
#include "core/condition.hpp"
#include "core/filters.hpp"
#include "sim/nodes.hpp"

namespace rcm::sim {

/// Full description of one simulated monitoring system.
struct SystemConfig {
  ConditionPtr condition;

  /// One trace per Data Monitor. Every DM broadcasts to every CE. The
  /// traces' VarIds must cover the condition's variable set.
  std::vector<trace::Trace> dm_traces;

  /// Number of CE replicas (1 = non-replicated).
  std::size_t num_ces = 2;

  /// Parameters applied to every front link (DM -> CE). Loss allowed.
  LinkParams front{0.005, 0.050, 0.0};

  /// Parameters applied to every back link (CE -> AD). Loss must be 0 —
  /// the paper assumes TCP-like lossless back links.
  LinkParams back{0.005, 0.050, 0.0};

  /// AD filtering algorithm.
  FilterKind filter = FilterKind::kAd1;

  /// Crash windows per CE (outer index = CE replica; may be shorter than
  /// num_ces, remaining CEs never crash).
  std::vector<std::vector<CrashWindow>> ce_crashes;

  /// Per-CE degradation of every front link INTO that replica (index =
  /// replica; may be shorter than num_ces, remaining links unshaped):
  /// extra delay models a slow/lagging replica, outage windows an
  /// asymmetric front-link partition. Back links are never shaped.
  std::vector<LinkShaping> front_shaping;

  /// Master seed; every link forks its own stream from it.
  std::uint64_t seed = 1;
};

/// Everything observable about one finished run, in the paper's
/// vocabulary. Feed directly into the rcm::check property checkers.
struct RunResult {
  std::vector<Alert> displayed;                ///< A
  std::vector<Alert> arrived;                  ///< merged arrivals at AD
  std::vector<std::vector<Update>> ce_inputs;  ///< U_i per CE
  std::vector<std::vector<Alert>> ce_outputs;  ///< A_i = T(U_i) per CE
  std::vector<std::vector<Update>> dm_emitted; ///< U per DM
  /// Virtual display time of each alert in `displayed` (parallel array;
  /// empty for threaded-runtime runs, which have no virtual clock).
  std::vector<double> display_times;
  std::size_t front_messages_dropped = 0;
  std::size_t events_executed = 0;
  /// Frames the threaded runtime's decoders rejected (0 for simulator
  /// runs and for healthy transports; nonzero indicates corruption).
  std::size_t wire_corrupt_frames = 0;
  /// CEs that gave up waiting for the per-DM END markers and finished on
  /// the idle timeout instead (socket deployments only; see
  /// net/deployment.hpp). Nonzero means the run's end-of-stream signal
  /// was lost, not that data was — the observables are still usable.
  std::size_t ce_end_timeouts = 0;

  /// Packages the run for the property checkers.
  [[nodiscard]] check::SystemRun as_system_run(ConditionPtr condition) const;
};

/// Builds the system described by `config`, runs it until all traffic has
/// drained, and collects the result. Throws std::invalid_argument on
/// malformed configs (no CEs, lossy back links, missing variables).
[[nodiscard]] RunResult run_system(const SystemConfig& config);

}  // namespace rcm::sim
