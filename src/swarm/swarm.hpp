// The swarm driver: FoundationDB-style randomized simulation testing for
// the replicated monitoring system.
//
// One swarm batch executes `runs` fuzzed configurations (see fuzzer.hpp),
// checks each against the paper's guarantee tables and the cross-replica
// invariants (see runner.hpp), greedily minimizes every failure (see
// shrink.hpp), and packages each minimized counterexample as a replayable
// record (see record.hpp). The whole batch is a pure function of
// (seed, runs, options) up to the optional wall-clock time budget, which
// can only truncate the batch, never reorder it.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "swarm/fuzzer.hpp"
#include "swarm/record.hpp"
#include "swarm/runner.hpp"
#include "swarm/shrink.hpp"

namespace rcm::swarm {

struct SwarmOptions {
  std::uint64_t seed = 1;
  std::size_t runs = 100;

  /// Worker threads executing runs: 1 = serial (the default for library
  /// callers), 0 = hardware concurrency, N = N workers. Parallel
  /// execution is sharded deterministically: run i is sampled with the
  /// stateless util::Rng::derive(seed, i) and simulated in isolation, so
  /// any jobs value produces bit-for-bit the per-run digests, verdicts,
  /// and report of the serial executor (shrinking and the progress
  /// callback always happen on the calling thread, in run-index order).
  /// Only a time budget or an early-stopping callback can make jobs
  /// matter: both truncate the batch, and the parallel executor checks
  /// the budget between blocks of runs rather than between runs.
  std::size_t jobs = 1;

  /// Wall-clock budget in seconds; 0 = unlimited. Checked between runs
  /// (serial) or between blocks of runs (parallel).
  double time_budget_seconds = 0.0;

  /// Minimize failures before recording them.
  bool do_shrink = true;
  std::size_t shrink_attempts = 3000;

  FuzzOptions fuzz;
  CheckOptions check;
};

/// One found-and-processed failure.
struct Counterexample {
  std::uint64_t run_index = 0;     ///< index within the batch
  ComposedSpec original;           ///< as sampled
  CounterexampleRecord record;     ///< shrunk spec + observed run
  std::vector<std::string> violations;  ///< original descriptions
  std::size_t shrink_attempts = 0;
};

/// Batch outcome.
struct SwarmReport {
  std::size_t runs_executed = 0;
  std::size_t runs_with_alerts = 0;  ///< non-vacuous runs
  std::size_t failures = 0;
  bool time_budget_exhausted = false;

  /// Coverage: runs per (filter, scenario) cell, keyed by display name.
  std::map<std::string, std::size_t> cell_runs;

  std::vector<Counterexample> counterexamples;  ///< capped at kMaxRecorded

  static constexpr std::size_t kMaxRecorded = 8;
};

/// Progress callback, invoked after each run. Return false to stop the
/// batch early (the report marks time_budget_exhausted).
using ProgressFn =
    std::function<bool(std::uint64_t index, const RunCheck& check)>;

/// Executes a batch. Deterministic for a fixed (options.seed,
/// options.runs) when no time budget or early-stopping callback cuts it
/// short.
[[nodiscard]] SwarmReport run_swarm(const SwarmOptions& options,
                                    const ProgressFn& progress = nullptr);

/// Human-readable one-counterexample summary (spec shape + violations).
[[nodiscard]] std::string describe_counterexample(const Counterexample& ce);

}  // namespace rcm::swarm
