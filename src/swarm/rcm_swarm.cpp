// rcm_swarm — randomized simulation-testing CLI (see docs/SWARM.md).
//
//   rcm_swarm --runs 500 --seed 1            # fuzz 500 configurations
//   rcm_swarm --runs 0 --time-budget 60      # fuzz until the budget ends
//   rcm_swarm --filter ad-2-broken --save .  # catch the planted bug
//   rcm_swarm --replay swarm-ce-17.bin       # re-execute a counterexample
//   rcm_swarm --service-fuzz --runs 200      # kill/restart fuzz against
//                                            # the real AlertService
//   rcm_swarm --upgrade-fuzz --runs 100      # mixed-version restarting
//                                            # fuzz across the v1/v2
//                                            # durable-format boundary
//
// Exit codes: 0 = no violations (or replay reproduced), 1 = violations
// found (or replay did not reproduce), 2 = usage/IO error.
#include <cstdio>
#include <exception>
#include <string>

#include "swarm/service_fuzz.hpp"
#include "swarm/upgrade_fuzz.hpp"
#include "swarm/swarm.hpp"
#include "util/args.hpp"

namespace {

int replay_file(const std::string& path) {
  using namespace rcm;
  const swarm::CounterexampleRecord record = swarm::load_record(path);
  std::printf("replaying %s: %s, %zu updates, %u CEs, %zu workload "
              "unit(s), seed %llu\n",
              path.c_str(),
              std::string(filter_kind_name(record.spec.base.filter)).c_str(),
              record.spec.total_updates(), record.spec.base.num_ces,
              record.spec.units.size(),
              static_cast<unsigned long long>(record.spec.base.seed));
  for (const swarm::WorkloadSpec& unit : record.spec.units)
    std::printf("  workload: %s\n",
                std::string(swarm::workload_kind_name(unit.kind)).c_str());
  for (swarm::ViolationKind k : record.violation_kinds)
    std::printf("  recorded violation: %s\n",
                std::string(swarm::violation_kind_name(k)).c_str());

  const swarm::ReplayResult result = swarm::replay(record);
  std::printf("  digest match: %s\n", result.digest_matched ? "yes" : "NO");
  std::printf("  violations reproduced: %s\n",
              result.violations_matched ? "yes" : "NO");
  for (const std::string& v : result.check.violations)
    std::printf("  observed: %s\n", v.c_str());
  std::printf(result.reproduced
                  ? "REPRODUCED bit-for-bit\n"
                  : "replay DID NOT reproduce the recording\n");
  return result.reproduced ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace rcm;

  util::Args args;
  args.add_flag("seed", "1", "master seed for the batch");
  args.add_flag("runs", "100",
                "number of fuzzed runs (0 = unlimited, use --time-budget)");
  args.add_flag("time-budget", "0",
                "wall-clock budget in seconds (0 = none)");
  args.add_flag("jobs", "0",
                "worker threads (0 = hardware concurrency, 1 = serial); "
                "any value yields bit-identical digests and verdicts");
  args.add_flag("replay", "", "replay a counterexample record and exit");
  args.add_flag("save", "",
                "directory to write counterexample records into");
  args.add_flag("filter", "",
                "restrict every run to one filter (AD-1..AD-6, ad-2-broken)");
  args.add_flag("workload", "",
                "give every run exactly one workload unit of this kind "
                "(flash-crowd, slow-replica, partition, clock-skew, "
                "cheap-fleet, adaptive-holdback)");
  args.add_flag("min-workloads", "0",
                "guarantee at least this many workload units per run");
  args.add_flag("max-workloads", "3",
                "cap on workload units per run (0 = plain base specs)");
  args.add_flag("no-shrink", "false", "record failures without minimizing");
  args.add_flag("no-determinism", "false",
                "skip the re-execution determinism check (halves the cost)");
  args.add_flag("service-fuzz", "false",
                "crash-recovery fuzz of the real AlertService instead of "
                "simulator runs (uses --runs, --seed, --scratch-dir)");
  args.add_flag("upgrade-fuzz", "false",
                "mixed-version restarting fuzz: recover v1-transcoded "
                "durable state with the current binary under kills and "
                "duplicate resends (uses --runs, --seed, --scratch-dir)");
  args.add_flag("scratch-dir", "",
                "service-fuzz scratch root (default: system temp)");
  args.add_flag("sharded-fraction", "0.3",
                "service-fuzz: fraction of runs against a sharded cluster "
                "(2-3 shards + merge tier, mid-run reshard events)");
  args.add_flag("verbose", "false", "print a line per run");

  if (!args.parse(argc, argv)) {
    std::fprintf(stderr, "%s\n%s", args.error().c_str(),
                 args.usage(argv[0]).c_str());
    return 2;
  }
  if (args.help_requested()) {
    std::printf("%s", args.usage(argv[0]).c_str());
    return 0;
  }

  try {
    if (!args.get("replay").empty()) return replay_file(args.get("replay"));

    if (args.get_bool("service-fuzz")) {
      swarm::ServiceFuzzOptions options;
      options.seed = static_cast<std::uint64_t>(args.get_int("seed"));
      options.runs = static_cast<std::size_t>(args.get_int("runs"));
      options.scratch_dir = args.get("scratch-dir");
      options.sharded_fraction = args.get_double("sharded-fraction");
      options.verbose = args.get_bool("verbose");
      const swarm::ServiceFuzzReport report =
          swarm::run_service_fuzz(options);
      std::printf("service-fuzz: %zu runs (%zu with kills, %zu with "
                  "alerts), %zu kill(s), %zu restart(s), %zu violation(s)\n",
                  report.runs_executed, report.runs_with_kills,
                  report.runs_with_alerts, report.total_kills,
                  report.total_restarts, report.violations.size());
      std::printf("  sessions: %zu run(s) with subscribers, %zu welcomed "
                  "conn(s), %zu subscriber kill(s), %zu truncation(s), "
                  "%zu eviction(s), %zu bad cursor(s), %zu lag alert(s), "
                  "%zu reopen leg(s)\n",
                  report.runs_with_subscribers, report.subscriber_conns,
                  report.subscriber_kills, report.session_truncations,
                  report.session_evictions, report.session_bad_cursors,
                  report.session_lag_alerts, report.service_reopens);
      std::printf("  sharding: %zu sharded run(s) (%zu cross-shard), "
                  "%zu reshard(s), %zu shard kill(s)\n",
                  report.sharded_runs, report.cross_shard_runs,
                  report.shard_reshards, report.shard_kills);
      std::printf("  health: %zu scrape(s), %zu kill(s) confirmed "
                  "degraded\n",
                  report.health_scrapes, report.health_degraded_seen);
      for (const swarm::ServiceFuzzViolation& v : report.violations)
        std::printf("  run %zu (seed %llu): %s\n    state kept: %s\n",
                    v.run_index,
                    static_cast<unsigned long long>(v.seed),
                    v.description.c_str(), v.data_dir.string().c_str());
      return report.failed() ? 1 : 0;
    }

    if (args.get_bool("upgrade-fuzz")) {
      swarm::UpgradeFuzzOptions options;
      options.seed = static_cast<std::uint64_t>(args.get_int("seed"));
      options.runs = static_cast<std::size_t>(args.get_int("runs"));
      options.scratch_dir = args.get("scratch-dir");
      options.verbose = args.get_bool("verbose");
      const swarm::UpgradeFuzzReport report =
          swarm::run_upgrade_fuzz(options);
      std::printf("upgrade-fuzz: %zu runs (%zu with kills, %zu with "
                  "alerts), %zu kill(s), %zu restart(s), %zu file(s) "
                  "transcoded to v1, %zu torn tail(s), %zu stale WAL "
                  "record(s), %zu duplicate resend(s), %zu violation(s)\n",
                  report.runs_executed, report.runs_with_kills,
                  report.runs_with_alerts, report.total_kills,
                  report.total_restarts, report.transcoded_files,
                  report.torn_tails_injected, report.stale_wal_records,
                  report.duplicate_resends, report.violations.size());
      for (const swarm::UpgradeFuzzViolation& v : report.violations)
        std::printf("  run %zu (seed %llu): %s\n    state kept: %s\n",
                    v.run_index,
                    static_cast<unsigned long long>(v.seed),
                    v.description.c_str(), v.data_dir.string().c_str());
      return report.failed() ? 1 : 0;
    }

    swarm::SwarmOptions options;
    options.seed = static_cast<std::uint64_t>(args.get_int("seed"));
    options.runs = static_cast<std::size_t>(args.get_int("runs"));
    options.time_budget_seconds = args.get_double("time-budget");
    if (options.runs == 0) {
      if (options.time_budget_seconds <= 0.0) {
        std::fprintf(stderr, "--runs 0 requires --time-budget\n");
        return 2;
      }
      options.runs = static_cast<std::size_t>(-1);  // budget-bounded
    }
    options.jobs = static_cast<std::size_t>(args.get_int("jobs"));
    options.do_shrink = !args.get_bool("no-shrink");
    options.check.check_determinism = !args.get_bool("no-determinism");
    if (!args.get("filter").empty())
      options.fuzz.force_filter = parse_filter_kind(args.get("filter"));
    if (!args.get("workload").empty())
      options.fuzz.force_workload =
          swarm::parse_workload_kind(args.get("workload"));
    options.fuzz.min_workloads =
        static_cast<std::size_t>(args.get_int("min-workloads"));
    options.fuzz.max_workloads =
        static_cast<std::size_t>(args.get_int("max-workloads"));

    const bool verbose = args.get_bool("verbose");
    const swarm::SwarmReport report = swarm::run_swarm(
        options, [&](std::uint64_t i, const swarm::RunCheck& chk) {
          if (verbose)
            std::printf("run %llu: %zu displayed / %zu raised%s\n",
                        static_cast<unsigned long long>(i), chk.displayed,
                        chk.raised, chk.failed() ? "  ** VIOLATION **" : "");
          return true;
        });

    std::printf("swarm: %zu runs (%zu with alerts), %zu violation(s)%s\n",
                report.runs_executed, report.runs_with_alerts,
                report.failures,
                report.time_budget_exhausted ? ", time budget exhausted"
                                             : "");
    for (const auto& [cell, n] : report.cell_runs)
      std::printf("  %-30s %zu runs\n", cell.c_str(), n);

    const std::string save_dir = args.get("save");
    for (const swarm::Counterexample& ce : report.counterexamples) {
      std::printf("\n%s\n", swarm::describe_counterexample(ce).c_str());
      if (!save_dir.empty()) {
        const std::string path = save_dir + "/swarm-ce-" +
                                 std::to_string(ce.run_index) + ".bin";
        swarm::save_record(path, ce.record);
        std::printf("  saved: %s  (replay with --replay)\n", path.c_str());
      }
    }
    return report.failures == 0 ? 0 : 1;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "rcm_swarm: %s\n", e.what());
    return 2;
  }
}
