#include "swarm/shrink.hpp"

#include <algorithm>
#include <stdexcept>

namespace rcm::swarm {
namespace {

/// One shrink session; carries the predicate state.
class Shrinker {
 public:
  Shrinker(ViolationKind kind, const CheckOptions& options,
           std::size_t max_attempts)
      : kind_(kind), options_(options), max_attempts_(max_attempts) {}

  /// True iff `candidate` still fails with the preserved kind. Malformed
  /// candidates (e.g. a variable left with no producing trace) count as
  /// non-failing.
  bool still_fails(const ComposedSpec& candidate) {
    if (attempts_ >= max_attempts_) return false;
    ++attempts_;
    try {
      return execute_and_check(candidate, options_).has_kind(kind_);
    } catch (const std::invalid_argument&) {
      return false;
    }
  }

  [[nodiscard]] bool budget_left() const noexcept {
    return attempts_ < max_attempts_;
  }
  [[nodiscard]] std::size_t attempts() const noexcept { return attempts_; }

 private:
  ViolationKind kind_;
  CheckOptions options_;
  std::size_t max_attempts_;
  std::size_t attempts_ = 0;
};

/// Drop whole workload units: the coarsest edit, tried first — a unit
/// irrelevant to the failure disappears in one accepted candidate.
bool shrink_units(ComposedSpec& spec, Shrinker& sh) {
  bool any = false;
  std::size_t i = 0;
  while (i < spec.units.size() && sh.budget_left()) {
    ComposedSpec candidate = spec;
    candidate.units.erase(candidate.units.begin() +
                          static_cast<std::ptrdiff_t>(i));
    if (sh.still_fails(candidate)) {
      spec = std::move(candidate);
      any = true;
    } else {
      ++i;
    }
  }
  return any;
}

/// Halve the traffic of surviving units (count for bursty kinds, updates
/// for the fleet). Only fields that feed traffic_count() are shrunk, so
/// every accepted edit strictly decreases ComposedSpec::size().
bool shrink_unit_traffic(ComposedSpec& spec, Shrinker& sh) {
  bool any = false;
  for (std::size_t i = 0; i < spec.units.size() && sh.budget_left(); ++i) {
    for (std::uint32_t WorkloadSpec::*field :
         {&WorkloadSpec::count, &WorkloadSpec::updates}) {
      while (spec.units[i].*field > 0 && sh.budget_left()) {
        ComposedSpec candidate = spec;
        candidate.units[i].*field /= 2;
        if (candidate.units[i].traffic_count() >=
            spec.units[i].traffic_count())
          break;  // field does not feed this kind's traffic
        if (!sh.still_fails(candidate)) break;
        spec = std::move(candidate);
        any = true;
      }
    }
  }
  return any;
}

/// ddmin-style pass over one base trace: try removing chunks of size
/// |trace|/2, then /4, ... down to 1. Returns true if anything was
/// removed from `spec.base.traces[ti]`.
bool shrink_trace(ComposedSpec& spec, std::size_t ti, Shrinker& sh) {
  bool any = false;
  std::size_t chunk =
      std::max<std::size_t>(spec.base.traces[ti].size() / 2, 1);
  while (chunk >= 1 && sh.budget_left()) {
    bool removed_at_this_granularity = false;
    std::size_t start = 0;
    while (start < spec.base.traces[ti].size() && sh.budget_left()) {
      ComposedSpec candidate = spec;
      auto& t = candidate.base.traces[ti];
      const std::size_t end = std::min(start + chunk, t.size());
      t.erase(t.begin() + static_cast<std::ptrdiff_t>(start),
              t.begin() + static_cast<std::ptrdiff_t>(end));
      if (sh.still_fails(candidate)) {
        spec = std::move(candidate);
        any = removed_at_this_granularity = true;
        // Same start now names the next chunk; do not advance.
      } else {
        start += chunk;
      }
    }
    if (chunk == 1 && !removed_at_this_granularity) break;
    if (!removed_at_this_granularity)
      chunk = std::max<std::size_t>(chunk / 2, 1);
  }
  return any;
}

bool shrink_crashes(ComposedSpec& spec, Shrinker& sh) {
  bool any = false;
  for (std::size_t ce = 0; ce < spec.base.crashes.size() && sh.budget_left();
       ++ce) {
    std::size_t w = 0;
    while (w < spec.base.crashes[ce].size() && sh.budget_left()) {
      ComposedSpec candidate = spec;
      candidate.base.crashes[ce].erase(candidate.base.crashes[ce].begin() +
                                       static_cast<std::ptrdiff_t>(w));
      if (sh.still_fails(candidate)) {
        spec = std::move(candidate);
        any = true;
      } else {
        ++w;
      }
    }
  }
  // Empty trailing rows are free to drop (no size change, but keeps the
  // spec tidy); only drop truly empty ones so size never increases.
  while (!spec.base.crashes.empty() && spec.base.crashes.back().empty())
    spec.base.crashes.pop_back();
  return any;
}

bool shrink_offline(ComposedSpec& spec, Shrinker& sh) {
  bool any = false;
  std::size_t w = 0;
  while (w < spec.base.ad_offline.size() && sh.budget_left()) {
    ComposedSpec candidate = spec;
    candidate.base.ad_offline.erase(candidate.base.ad_offline.begin() +
                                    static_cast<std::ptrdiff_t>(w));
    if (sh.still_fails(candidate)) {
      spec = std::move(candidate);
      any = true;
    } else {
      ++w;
    }
  }
  return any;
}

bool shrink_replicas(ComposedSpec& spec, Shrinker& sh) {
  bool any = false;
  while (spec.base.num_ces > 1 && sh.budget_left()) {
    ComposedSpec candidate = spec;
    --candidate.base.num_ces;
    if (candidate.base.crashes.size() > candidate.base.num_ces)
      candidate.base.crashes.resize(candidate.base.num_ces);
    if (!sh.still_fails(candidate)) break;
    spec = std::move(candidate);
    any = true;
  }
  return any;
}

}  // namespace

ShrinkResult shrink(const ComposedSpec& failing, ViolationKind kind,
                    const CheckOptions& options, std::size_t max_attempts) {
  Shrinker sh{kind, options, max_attempts};
  ShrinkResult out;
  out.spec = failing;

  bool progress = true;
  while (progress && sh.budget_left()) {
    progress = false;
    // Coarsest structural reductions first: dropping a workload unit,
    // a replica, or a fault window makes every subsequent trace-shrink
    // re-execution cheaper.
    progress |= shrink_units(out.spec, sh);
    progress |= shrink_replicas(out.spec, sh);
    progress |= shrink_crashes(out.spec, sh);
    progress |= shrink_offline(out.spec, sh);
    progress |= shrink_unit_traffic(out.spec, sh);
    for (std::size_t ti = 0; ti < out.spec.base.traces.size(); ++ti)
      progress |= shrink_trace(out.spec, ti, sh);
  }

  out.attempts = sh.attempts();
  // Every accepted edit removed at least one size unit.
  out.accepted = failing.size() - out.spec.size();
  return out;
}

ShrinkResult shrink(const SwarmSpec& failing, ViolationKind kind,
                    const CheckOptions& options, std::size_t max_attempts) {
  return shrink(ComposedSpec{failing, {}}, kind, options, max_attempts);
}

}  // namespace rcm::swarm
