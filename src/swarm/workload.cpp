#include "swarm/workload.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <set>
#include <sstream>
#include <stdexcept>

#include "check/properties.hpp"
#include "core/evaluator.hpp"
#include "util/rng.hpp"
#include "wire/buffer.hpp"

namespace rcm::swarm {
namespace {

constexpr std::uint64_t kMaxWorkloadCount = 1u << 16;

/// Emission time of every (var, seqno) in the materialized traces — the
/// fault checkers need to know when an update left its DM.
std::map<std::pair<VarId, SeqNo>, double> emission_times(
    const SwarmSpec& spec) {
  std::map<std::pair<VarId, SeqNo>, double> times;
  for (const trace::Trace& tr : spec.traces)
    for (const trace::TimedUpdate& tu : tr)
      times[{tu.update.var, tu.update.seqno}] = tu.time;
  return times;
}

std::string violation(const WorkloadSpec& unit, std::size_t unit_index,
                      const std::string& msg) {
  std::ostringstream out;
  out << "workload[" << unit_index << "] " << workload_kind_name(unit.kind)
      << ": " << msg;
  return out.str();
}

/// Slice completeness: in cells where the paper guarantees completeness
/// and the reference T(U) is exact (single variable, lossless scenario),
/// every reference alert triggered by an update this unit emitted must
/// have been displayed. A projection of the global completeness equality
/// onto the unit's own traffic — sound whenever that equality is claimed.
std::string check_traffic_slice(const ComposedSpec& spec,
                                const MaterializedRun& mat,
                                const sim::RunResult& result,
                                std::size_t unit_index) {
  const SwarmSpec& run_spec = mat.spec;
  if (condition_arity(run_spec.cond_kind) != 1) return "";
  if (classify_scenario(spec) != exp::Scenario::kLossless) return "";
  if (!guaranteed_properties(spec).complete) return "";
  if (mat.owner.empty() || run_spec.traces.empty()) return "";

  std::set<SeqNo> slice;
  for (std::size_t k = 0; k < mat.owner.size(); ++k)
    if (mat.owner[k] == unit_index) slice.insert(static_cast<SeqNo>(k) + 1);
  if (slice.empty()) return "";

  const ConditionPtr condition =
      build_condition(run_spec.cond_kind, run_spec.cond_param);
  const std::vector<Update> u = trace::updates_of(run_spec.traces[0]);
  const std::vector<Alert> reference = evaluate_trace(condition, u);
  const std::vector<Alert> expected =
      check::restrict_to_seqnos(reference, 0, slice);

  std::set<AlertKey> displayed;
  for (const Alert& a : result.displayed) displayed.insert(a.key());
  std::size_t missing = 0;
  SeqNo first_missing = kNoSeqNo;
  for (const Alert& a : expected) {
    if (displayed.count(a.key())) continue;
    ++missing;
    if (first_missing == kNoSeqNo) first_missing = a.seqno(0);
  }
  if (missing == 0) return "";
  std::ostringstream out;
  out << "slice incompleteness: " << missing << " of " << expected.size()
      << " reference alerts owned by this unit were never displayed (first"
         " missing trigger seqno "
      << first_missing << ")";
  return out.str();
}

/// Materialization invariant for clock-skewed traffic: the merge must
/// keep the unit's updates in generated (emission-time) order with their
/// values intact — the skew moves the whole stream, it must not shuffle
/// or rewrite it.
std::string check_skew_order(const WorkloadSpec& unit,
                             const MaterializedRun& mat,
                             std::size_t unit_index) {
  const trace::Trace generated = workload_traffic(unit);
  std::vector<const trace::TimedUpdate*> owned;
  if (!mat.spec.traces.empty()) {
    const trace::Trace& primary = mat.spec.traces[0];
    for (std::size_t k = 0; k < mat.owner.size() && k < primary.size(); ++k)
      if (mat.owner[k] == unit_index) owned.push_back(&primary[k]);
  }
  if (owned.size() != generated.size()) {
    std::ostringstream out;
    out << "materialized slice has " << owned.size() << " updates, the unit"
        << " generated " << generated.size();
    return out.str();
  }
  for (std::size_t j = 0; j < owned.size(); ++j) {
    if (owned[j]->time == generated[j].time &&
        owned[j]->update.value == generated[j].update.value)
      continue;
    std::ostringstream out;
    out << "materialized update " << j << " diverges from the generated"
        << " stream (time " << owned[j]->time << " vs " << generated[j].time
        << ", value " << owned[j]->update.value << " vs "
        << generated[j].update.value << ")";
    return out.str();
  }
  return "";
}

/// Slow replica: extra delay must never lose or reorder anything. With a
/// lossless composed scenario (no link loss, no crashes, no effective
/// partitions) and FIFO links, the delayed replica's per-variable input
/// must be exactly the full emitted trace of that variable.
std::string check_slow_replica(const ComposedSpec& spec,
                               const MaterializedRun& mat,
                               const sim::RunResult& result,
                               const WorkloadSpec& unit) {
  const SwarmSpec& run_spec = mat.spec;
  if (unit.replica >= run_spec.num_ces) return "";  // inert unit
  if (classify_scenario(spec) != exp::Scenario::kLossless) return "";
  if (unit.replica >= result.ce_inputs.size())
    return "replica missing from the run result";
  const std::vector<Update>& got = result.ce_inputs[unit.replica];
  for (VarId v = 0; v < run_spec.traces.size(); ++v) {
    const std::vector<Update> want = trace::updates_of(run_spec.traces[v]);
    std::vector<Update> got_v;
    for (const Update& u : got)
      if (u.var == v) got_v.push_back(u);
    if (got_v == want) continue;
    std::ostringstream out;
    out << "delayed replica " << unit.replica << " received " << got_v.size()
        << "/" << want.size() << " var-" << v
        << " updates or saw them reordered; constant delay must lose nothing";
    return out.str();
  }
  return "";
}

/// Partition: no update emitted inside the outage window may reach the
/// partitioned replica — the link drops at send time, so an in-window
/// arrival is a hole in the fault injection itself.
std::string check_partition(const MaterializedRun& mat,
                            const sim::RunResult& result,
                            const WorkloadSpec& unit) {
  const SwarmSpec& run_spec = mat.spec;
  if (unit.replica >= run_spec.num_ces) return "";  // inert unit
  if (unit.replica >= result.ce_inputs.size()) return "";
  const double from = std::max(unit.start, 0.0);
  const double to = from + std::max(unit.duration, 0.0);
  const auto times = emission_times(run_spec);
  for (const Update& u : result.ce_inputs[unit.replica]) {
    const auto it = times.find({u.var, u.seqno});
    if (it == times.end()) continue;
    if (it->second < from || it->second >= to) continue;
    std::ostringstream out;
    out << "partitioned replica " << unit.replica << " received (var "
        << u.var << ", seq " << u.seqno << ") emitted at t=" << it->second
        << " inside the outage [" << from << ", " << to << ")";
    return out.str();
  }
  return "";
}

/// Cheap fleet: sweep a fleet of `count` threshold conditions over what
/// CE0 received. The per-threshold trigger counts are computed directly
/// (values above the threshold) and cross-checked against the real
/// evaluator on a sample of the fleet. Skipped when CE0 has crash
/// windows: a reborn CE legitimately re-accepts sequence numbers, which
/// makes the raw input log non-monotone.
std::string check_cheap_fleet(const MaterializedRun& mat,
                              const sim::RunResult& result,
                              const WorkloadSpec& unit) {
  const SwarmSpec& run_spec = mat.spec;
  if (result.ce_inputs.empty()) return "";
  const bool ce0_crashes =
      !run_spec.crashes.empty() && !run_spec.crashes[0].empty();
  if (ce0_crashes) return "";

  std::vector<Update> var0;
  for (const Update& u : result.ce_inputs[0])
    if (u.var == 0) var0.push_back(u);
  SeqNo last = kNoSeqNo;
  for (const Update& u : var0) {
    if (u.seqno > last) {
      last = u.seqno;
      continue;
    }
    std::ostringstream out;
    out << "CE0 logged a stale var-0 update (seq " << u.seqno
        << " after seq " << last << ") without any crash window";
    return out.str();
  }

  double lo = 0.0;
  double hi = 100.0;
  if (!var0.empty()) {
    lo = hi = var0[0].value;
    for (const Update& u : var0) {
      lo = std::min(lo, u.value);
      hi = std::max(hi, u.value);
    }
  }
  lo -= 1.0;
  hi += 1.0;

  const std::size_t fleet = std::max<std::size_t>(
      1, std::min<std::uint64_t>(unit.count, kMaxWorkloadCount));
  std::vector<std::size_t> direct(fleet, 0);
  for (std::size_t j = 0; j < fleet; ++j) {
    const double p =
        lo + (hi - lo) * (static_cast<double>(j) + 0.5) /
                 static_cast<double>(fleet);
    for (const Update& u : var0)
      if (u.value > p) ++direct[j];
  }
  // Deep-check a sample of the fleet against the real evaluator; the
  // direct counts above give the fleet-scale sweep, the evaluator runs
  // confirm the cheap model matches T.
  const std::size_t stride = std::max<std::size_t>(1, fleet / 32);
  for (std::size_t j = 0; j < fleet; j += stride) {
    const double p =
        lo + (hi - lo) * (static_cast<double>(j) + 0.5) /
                 static_cast<double>(fleet);
    const ConditionPtr cond =
        std::make_shared<const ThresholdCondition>("workload.fleet", 0, p);
    const std::size_t via_evaluator =
        evaluate_trace(cond, std::span<const Update>{var0}).size();
    if (via_evaluator == direct[j]) continue;
    std::ostringstream out;
    out << "fleet condition " << j << " (v0 > " << p << ") triggered "
        << via_evaluator << " times via the evaluator but " << direct[j]
        << " times by direct count";
    return out.str();
  }
  return "";
}

/// Adaptive holdback: (a) the AD's arrival stream must carry every alert
/// any CE ever logged exactly once (lossless back links; the disconnect
/// runner dedups redeliveries), and (b) replaying the arrivals through
/// the adaptive controller must release every alert with the timeout
/// staying inside its clamp — the controller retunes, it never drops.
std::string check_adaptive_holdback(const MaterializedRun& mat,
                                    const sim::RunResult& result,
                                    const WorkloadSpec& unit) {
  std::map<AlertKey, long> delta;
  for (const std::vector<Alert>& outputs : result.ce_outputs)
    for (const Alert& a : outputs) ++delta[a.key()];
  for (const Alert& a : result.arrived) --delta[a.key()];
  for (const auto& [key, n] : delta) {
    if (n == 0) continue;
    return n > 0 ? "an alert a CE emitted never arrived at the AD"
                 : "an alert arrived at the AD that no CE emitted";
  }

  AdaptiveHoldback::Params params;
  if (unit.magnitude > 0.0) params.initial_timeout = unit.magnitude;
  AdaptiveHoldback holdback(0, params);
  // The checker has no arrival clock, so it drives the controller with
  // the emission time of each alert's primary trigger, made monotone.
  const auto times = emission_times(mat.spec);
  double now = 0.0;
  std::map<AlertKey, long> balance;
  for (const Alert& a : result.arrived) {
    const auto h = a.histories.find(0);
    if (h != a.histories.end() && !h->second.empty()) {
      const auto it = times.find({0, a.seqno(0)});
      if (it != times.end()) now = std::max(now, it->second);
    }
    ++balance[a.key()];
    for (const Alert& released : holdback.on_alert(a, now))
      --balance[released.key()];
    if (holdback.timeout() < params.min_timeout ||
        holdback.timeout() > params.max_timeout) {
      std::ostringstream out;
      out << "holdback timeout retuned to " << holdback.timeout()
          << ", outside [" << params.min_timeout << ", "
          << params.max_timeout << "]";
      return out.str();
    }
  }
  for (const Alert& released : holdback.flush()) --balance[released.key()];
  for (const auto& [key, n] : balance)
    if (n != 0)
      return "the adaptive holdback dropped or duplicated an alert";
  return "";
}

}  // namespace

std::string_view workload_kind_name(WorkloadKind k) noexcept {
  switch (k) {
    case WorkloadKind::kFlashCrowd: return "flash-crowd";
    case WorkloadKind::kSlowReplica: return "slow-replica";
    case WorkloadKind::kPartition: return "partition";
    case WorkloadKind::kClockSkew: return "clock-skew";
    case WorkloadKind::kCheapFleet: return "cheap-fleet";
    case WorkloadKind::kAdaptiveHoldback: return "adaptive-holdback";
  }
  return "?";
}

WorkloadKind parse_workload_kind(std::string_view name) {
  for (WorkloadKind k : kAllWorkloadKinds)
    if (workload_kind_name(k) == name) return k;
  throw std::invalid_argument("unknown workload kind: " + std::string(name));
}

std::size_t WorkloadSpec::traffic_count() const noexcept {
  switch (kind) {
    case WorkloadKind::kFlashCrowd:
    case WorkloadKind::kClockSkew:
    case WorkloadKind::kAdaptiveHoldback:
      return count;
    case WorkloadKind::kCheapFleet:
      return updates;
    case WorkloadKind::kSlowReplica:
    case WorkloadKind::kPartition:
      return 0;
  }
  return 0;
}

trace::Trace workload_traffic(const WorkloadSpec& unit) {
  trace::Trace out;
  const std::size_t n = unit.traffic_count();
  if (n == 0) return out;
  // The unit's private stream: a pure function of (salt, kind), blind to
  // every other unit and to the unit's position in the list.
  util::Rng rng =
      util::Rng::derive(unit.salt, static_cast<std::uint64_t>(unit.kind));
  const double window = std::max(unit.duration, 1e-6);
  const auto emit = [&out](double time, double value) {
    out.push_back({std::max(time, 0.0),
                   Update{0, 0, std::clamp(value, 0.0, 100.0)}});
  };
  switch (unit.kind) {
    case WorkloadKind::kFlashCrowd:
      // A burst of near-`magnitude` values inside the window.
      for (std::size_t i = 0; i < n; ++i)
        emit(unit.start + rng.uniform(0.0, window),
             rng.uniform(unit.magnitude - 10.0, unit.magnitude + 10.0));
      break;
    case WorkloadKind::kClockSkew:
      // Nominal times in the window, emitted on a clock offset by
      // `magnitude` (which may be negative; times clamp at 0).
      for (std::size_t i = 0; i < n; ++i)
        emit(unit.start + rng.uniform(0.0, window) + unit.magnitude,
             rng.uniform(0.0, 100.0));
      break;
    case WorkloadKind::kCheapFleet:
      for (std::size_t i = 0; i < n; ++i)
        emit(unit.start + rng.uniform(0.0, window), rng.uniform(0.0, 100.0));
      break;
    case WorkloadKind::kAdaptiveHoldback:
      // Front-loaded: half the updates land in the first fifth of the
      // window so the alert rate genuinely spikes, then tails off.
      for (std::size_t i = 0; i < n; ++i) {
        const double span = i < (n + 1) / 2 ? 0.2 * window : window;
        emit(unit.start + rng.uniform(0.0, span), rng.uniform(55.0, 100.0));
      }
      break;
    case WorkloadKind::kSlowReplica:
    case WorkloadKind::kPartition:
      break;
  }
  std::stable_sort(out.begin(), out.end(),
                   [](const trace::TimedUpdate& a, const trace::TimedUpdate& b) {
                     return a.time < b.time;
                   });
  return out;
}

std::size_t ComposedSpec::size() const {
  std::size_t n = base.size();
  for (const WorkloadSpec& unit : units) n += unit.size();
  return n;
}

std::size_t ComposedSpec::total_updates() const {
  std::size_t n = base.total_updates();
  for (const WorkloadSpec& unit : units) n += unit.traffic_count();
  return n;
}

MaterializedRun materialize(const ComposedSpec& spec) {
  MaterializedRun m;
  m.spec = spec.base;

  // Fault units become front-link shaping on their target replica. Units
  // aimed at a replica the base does not have are inert.
  for (const WorkloadSpec& unit : spec.units) {
    if (unit.replica >= spec.base.num_ces) continue;
    if (unit.kind == WorkloadKind::kSlowReplica) {
      if (m.front_shaping.size() <= unit.replica)
        m.front_shaping.resize(unit.replica + 1);
      m.front_shaping[unit.replica].extra_delay += std::max(unit.magnitude, 0.0);
    } else if (unit.kind == WorkloadKind::kPartition) {
      if (m.front_shaping.size() <= unit.replica)
        m.front_shaping.resize(unit.replica + 1);
      const double from = std::max(unit.start, 0.0);
      m.front_shaping[unit.replica].outages.emplace_back(
          from, from + std::max(unit.duration, 0.0));
    }
  }

  // Traffic units merge into the primary (var 0) trace. The tie-break key
  // is (time, salt, index-within-unit) — never the unit's list position —
  // so reordering the unit list cannot change the merge.
  struct Entry {
    double time;
    double value;
    std::uint64_t tie;
    std::uint32_t idx;
    std::uint32_t owner;
  };
  std::vector<Entry> entries;
  bool any_unit_traffic = false;
  for (std::size_t i = 0; i < spec.units.size(); ++i) {
    const trace::Trace tr = workload_traffic(spec.units[i]);
    for (std::size_t k = 0; k < tr.size(); ++k)
      entries.push_back({tr[k].time, tr[k].update.value, spec.units[i].salt,
                         static_cast<std::uint32_t>(k),
                         static_cast<std::uint32_t>(i)});
    any_unit_traffic = any_unit_traffic || !tr.empty();
  }
  // With no unit traffic the base traces (sequence numbers included) are
  // left byte-identical — legacy specs replay to their recorded digests.
  if (!any_unit_traffic) return m;

  if (m.spec.traces.empty()) m.spec.traces.resize(1);
  const trace::Trace& base_primary = spec.base.traces.empty()
                                         ? m.spec.traces[0]
                                         : spec.base.traces[0];
  for (std::size_t k = 0; k < base_primary.size(); ++k)
    entries.push_back({base_primary[k].time, base_primary[k].update.value, 0,
                       static_cast<std::uint32_t>(k), kBaseTraffic});

  std::stable_sort(entries.begin(), entries.end(),
                   [](const Entry& a, const Entry& b) {
                     if (a.time != b.time) return a.time < b.time;
                     if (a.tie != b.tie) return a.tie < b.tie;
                     return a.idx < b.idx;
                   });

  trace::Trace merged;
  merged.reserve(entries.size());
  m.owner.reserve(entries.size());
  for (std::size_t k = 0; k < entries.size(); ++k) {
    merged.push_back({entries[k].time,
                      Update{0, static_cast<SeqNo>(k) + 1, entries[k].value}});
    m.owner.push_back(entries[k].owner);
  }
  m.spec.traces[0] = std::move(merged);
  return m;
}

exp::Scenario classify_scenario(const ComposedSpec& spec) {
  const exp::Scenario base = classify_scenario(spec.base);
  if (base != exp::Scenario::kLossless) return base;
  for (const WorkloadSpec& unit : spec.units) {
    if (unit.kind != WorkloadKind::kPartition) continue;
    if (unit.replica >= spec.base.num_ces || unit.duration <= 0.0) continue;
    // A partition loses updates exactly like link loss or a crash window.
    return lossy_row(spec.base.cond_kind);
  }
  return base;
}

exp::PaperClaim guaranteed_properties(const ComposedSpec& spec) {
  const bool multi = condition_arity(spec.base.cond_kind) > 1;
  const FilterKind claimed = spec.base.filter == FilterKind::kBrokenAd2
                                 ? FilterKind::kAd2
                                 : spec.base.filter;
  return exp::paper_claim(claimed, classify_scenario(spec), multi);
}

std::string check_workload(const ComposedSpec& spec,
                           const MaterializedRun& mat,
                           const sim::RunResult& result,
                           std::size_t unit_index) {
  const WorkloadSpec& unit = spec.units.at(unit_index);
  std::string msg;
  switch (unit.kind) {
    case WorkloadKind::kFlashCrowd:
      msg = check_traffic_slice(spec, mat, result, unit_index);
      break;
    case WorkloadKind::kClockSkew:
      msg = check_skew_order(unit, mat, unit_index);
      if (msg.empty()) msg = check_traffic_slice(spec, mat, result, unit_index);
      break;
    case WorkloadKind::kSlowReplica:
      msg = check_slow_replica(spec, mat, result, unit);
      break;
    case WorkloadKind::kPartition:
      msg = check_partition(mat, result, unit);
      break;
    case WorkloadKind::kCheapFleet:
      msg = check_cheap_fleet(mat, result, unit);
      if (msg.empty()) msg = check_traffic_slice(spec, mat, result, unit_index);
      break;
    case WorkloadKind::kAdaptiveHoldback:
      msg = check_adaptive_holdback(mat, result, unit);
      if (msg.empty()) msg = check_traffic_slice(spec, mat, result, unit_index);
      break;
  }
  return msg.empty() ? msg : violation(unit, unit_index, msg);
}

void encode_workload(wire::Writer& w, const WorkloadSpec& unit) {
  w.u8(static_cast<std::uint8_t>(unit.kind));
  w.u64(unit.salt);
  w.varint(unit.replica);
  w.varint(unit.count);
  w.varint(unit.updates);
  w.f64(unit.start);
  w.f64(unit.duration);
  w.f64(unit.magnitude);
}

WorkloadSpec decode_workload(wire::Reader& r) {
  WorkloadSpec unit;
  const std::uint8_t kind = r.u8();
  if (kind > static_cast<std::uint8_t>(WorkloadKind::kAdaptiveHoldback))
    throw wire::DecodeError("unknown workload kind");
  unit.kind = static_cast<WorkloadKind>(kind);
  unit.salt = r.u64();
  const std::uint64_t replica = r.varint();
  if (replica > 64) throw wire::DecodeError("bad workload replica");
  unit.replica = static_cast<std::uint32_t>(replica);
  const std::uint64_t count = r.varint();
  if (count > kMaxWorkloadCount)
    throw wire::DecodeError("workload count too large");
  unit.count = static_cast<std::uint32_t>(count);
  const std::uint64_t updates = r.varint();
  if (updates > kMaxWorkloadCount)
    throw wire::DecodeError("workload updates too large");
  unit.updates = static_cast<std::uint32_t>(updates);
  unit.start = r.f64();
  unit.duration = r.f64();
  unit.magnitude = r.f64();
  if (!(unit.start >= 0.0) || !(unit.duration >= 0.0) ||
      !std::isfinite(unit.magnitude))
    throw wire::DecodeError("bad workload window");
  if (unit.kind != WorkloadKind::kClockSkew && unit.magnitude < 0.0)
    throw wire::DecodeError("bad workload magnitude");
  return unit;
}

AdaptiveHoldback::AdaptiveHoldback(VarId var, const Params& params)
    : var_(var),
      params_(params),
      timeout_(std::clamp(params.initial_timeout, params.min_timeout,
                          params.max_timeout)) {}

std::vector<Alert> AdaptiveHoldback::release_due(double now) {
  std::vector<Alert> out;
  std::vector<std::pair<Alert, double>> keep;
  for (auto& [alert, deadline] : buffer_) {
    if (deadline <= now)
      out.push_back(std::move(alert));
    else
      keep.emplace_back(std::move(alert), deadline);
  }
  buffer_ = std::move(keep);
  // §4.2 holdback semantics: release in primary-seqno order so the AD
  // output stays ordered even when the arrival interleaving was not.
  std::stable_sort(out.begin(), out.end(),
                   [this](const Alert& a, const Alert& b) {
                     return a.seqno(var_) < b.seqno(var_);
                   });
  released_.insert(released_.end(), out.begin(), out.end());
  return out;
}

std::vector<Alert> AdaptiveHoldback::on_alert(const Alert& a, double now) {
  last_now_ = std::max(last_now_, now);
  std::vector<Alert> out = release_due(last_now_);
  buffer_.emplace_back(a, last_now_ + timeout_);
  ++fed_in_window_;
  maybe_retune(last_now_);
  return out;
}

std::vector<Alert> AdaptiveHoldback::flush() {
  std::vector<Alert> out;
  for (auto& [alert, deadline] : buffer_) out.push_back(std::move(alert));
  buffer_.clear();
  std::stable_sort(out.begin(), out.end(),
                   [this](const Alert& a, const Alert& b) {
                     return a.seqno(var_) < b.seqno(var_);
                   });
  released_.insert(released_.end(), out.begin(), out.end());
  return out;
}

void AdaptiveHoldback::maybe_retune(double now) {
  if (fed_in_window_ < params_.window) return;
  const double span = std::max(now - window_started_, 1e-9);
  const double rate = static_cast<double>(fed_in_window_) / span;
  // Faster than the AD can absorb -> lengthen the holdback so bursts
  // coalesce; slower -> shorten it toward responsiveness. One window's
  // evidence moves the timeout at most 2x either way.
  const double factor = std::clamp(rate / params_.target_rate, 0.5, 2.0);
  timeout_ = std::clamp(timeout_ * factor, params_.min_timeout,
                        params_.max_timeout);
  ++retunes_;
  fed_in_window_ = 0;
  window_started_ = now;
}

}  // namespace rcm::swarm
