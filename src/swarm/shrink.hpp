// Greedy counterexample shrinker.
//
// Given a failing ComposedSpec and the violation kind to preserve,
// repeatedly tries structural edits — drop a whole workload unit, halve a
// unit's traffic, remove a chunk of a trace (ddmin-style: halves, then
// quarters, ... down to single updates), drop a crash window, drop an
// AD offline window, drop the last replica — keeping an edit only if the
// edited spec still exhibits the same violation kind. Every kept edit
// strictly decreases ComposedSpec::size(), so the process terminates, and
// the edit order is fixed with no randomness, so shrinking is
// deterministic: the same failing spec always minimizes to the same spec.
//
// The result is locally minimal: no single remaining edit from the move
// set preserves the failure. (Global minimality is NP-hard and not
// attempted — FoundationDB and QuickCheck shrinkers make the same trade.)
#pragma once

#include <cstddef>

#include "swarm/runner.hpp"
#include "swarm/spec.hpp"

namespace rcm::swarm {

struct ShrinkResult {
  ComposedSpec spec;         ///< the minimized failing spec
  std::size_t attempts = 0;  ///< candidate re-executions performed
  std::size_t accepted = 0;  ///< size units removed by kept edits
};

/// Minimizes `failing` while preserving a violation of kind `kind`.
/// Precondition: executing `failing` exhibits `kind`. `max_attempts`
/// bounds the candidate executions (the greedy loop stops early if
/// exhausted; the spec returned is still failing). The SwarmSpec overload
/// shrinks the spec as a unit-less composition.
[[nodiscard]] ShrinkResult shrink(const ComposedSpec& failing,
                                  ViolationKind kind,
                                  const CheckOptions& options = {},
                                  std::size_t max_attempts = 3000);
[[nodiscard]] ShrinkResult shrink(const SwarmSpec& failing,
                                  ViolationKind kind,
                                  const CheckOptions& options = {},
                                  std::size_t max_attempts = 3000);

}  // namespace rcm::swarm
