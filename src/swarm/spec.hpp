// SwarmSpec: a fully self-contained, serializable description of one
// randomized simulation run — the unit the swarm harness generates,
// executes, shrinks, and replays.
//
// Everything the deterministic simulator needs is value data here: the
// condition is named by a closed enum (plus one numeric parameter) rather
// than a ConditionPtr, and the DM traces are materialized update lists
// rather than generator seeds. That is what makes a spec (a) byte-
// serializable into a replayable counterexample record and (b) shrinkable
// by structural edits (drop an update, drop a crash window, drop a
// replica) with the failure re-checked after every edit.
#pragma once

#include <cstdint>
#include <vector>

#include "core/builtin_conditions.hpp"
#include "core/filters.hpp"
#include "exp/scenarios.hpp"
#include "exp/table_experiment.hpp"
#include "sim/system.hpp"
#include "trace/generators.hpp"

namespace rcm::wire {
class Writer;
class Reader;
}  // namespace rcm::wire

namespace rcm::sim {
// In sim's namespace so ADL finds it from std::vector's operator==.
bool operator==(const CrashWindow& a, const CrashWindow& b);
}  // namespace rcm::sim

namespace rcm::swarm {

/// Closed set of condition shapes the fuzzer samples. Each kind, together
/// with `cond_param`, deterministically rebuilds the same Condition — the
/// serialization property ConditionPtr itself cannot offer. The kinds
/// cover the paper's whole taxonomy: single/multi variable, degree 1/2,
/// conservative/aggressive triggering.
enum class ConditionKind : std::uint8_t {
  kThreshold = 0,       ///< v0 > p                  (single, non-historical)
  kRiseAggressive = 1,  ///< v0 - v(-1) > p          (single, hist. aggr.)
  kRiseConservative = 2,///< same with consecutive() (single, hist. cons.)
  kAbsDiff = 3,         ///< |x - y| > p             (multi, non-historical)
  kBand = 4,            ///< p < |x - y| < p + 25    (multi, non-historical)
  kRise2dAggressive = 5,///< dx + dy > p             (multi, hist. aggr.)
  kRise2dConservative = 6,  ///< same, both guarded  (multi, hist. cons.)
};

/// Number of variables the condition kind monitors (1 or 2).
[[nodiscard]] std::size_t condition_arity(ConditionKind kind);

/// Builds the condition for (kind, param). Variable ids are fixed: 0 for
/// single-variable kinds, {0, 1} for two-variable kinds.
[[nodiscard]] ConditionPtr build_condition(ConditionKind kind, double param);

/// One fuzzed system configuration. All fields are plain values.
struct SwarmSpec {
  ConditionKind cond_kind = ConditionKind::kThreshold;
  double cond_param = 60.0;

  /// One trace per condition variable, index == VarId.
  std::vector<trace::Trace> traces;

  std::uint32_t num_ces = 2;
  sim::LinkParams front{0.01, 0.5, 0.0};
  sim::LinkParams back{0.01, 0.5, 0.0};  ///< loss must stay 0
  FilterKind filter = FilterKind::kAd1;

  /// Crash windows per CE (outer index = replica, like SystemConfig).
  std::vector<std::vector<sim::CrashWindow>> crashes;

  /// AD offline windows; non-empty selects the store-and-forward
  /// disconnectable runner instead of the plain one.
  std::vector<std::pair<double, double>> ad_offline;

  /// Master seed for the simulated links.
  std::uint64_t seed = 1;

  /// Materializes the sim::SystemConfig (condition included).
  [[nodiscard]] sim::SystemConfig to_system_config() const;

  /// Shrink metric: total trace updates + crash windows + offline windows
  /// + extra replicas. The shrinker only accepts edits that strictly
  /// decrease this, which both bounds its runtime and makes "minimal"
  /// well-defined.
  [[nodiscard]] std::size_t size() const;

  /// Total updates across all traces (the headline minimality number).
  [[nodiscard]] std::size_t total_updates() const;

  friend bool operator==(const SwarmSpec&, const SwarmSpec&);
};

/// The paper-table cell this spec falls into: lossless only when the
/// front links are lossless AND no CE ever crashes (a crash window makes
/// a replica miss updates exactly like link loss does). Otherwise the
/// lossy row matching the condition's class.
[[nodiscard]] exp::Scenario classify_scenario(const SwarmSpec& spec);

/// The lossy table row a condition kind falls into once any mechanism can
/// make replicas miss updates (exp::lossy_scenario over the kind's class).
[[nodiscard]] exp::Scenario lossy_row(ConditionKind kind);

/// The properties the paper guarantees for this spec's (filter, scenario)
/// cell — the swarm's oracle. kBrokenAd2 inherits AD-2's claims (that is
/// the point of injecting it). Properties the table does NOT guarantee
/// are never treated as violations when absent.
[[nodiscard]] exp::PaperClaim guaranteed_properties(const SwarmSpec& spec);

/// Binary serialization (wire::Writer/Reader). decode throws
/// wire::DecodeError on malformed bytes, unknown enum values, lossy back
/// links, or out-of-range counts.
void encode_spec(wire::Writer& w, const SwarmSpec& spec);
[[nodiscard]] SwarmSpec decode_spec(wire::Reader& r);

}  // namespace rcm::swarm
