// Crash-recovery fuzz mode: randomized kill/restart schedules against a
// REAL AlertService (kernel sockets, worker threads, durable files) —
// the service-layer sibling of the simulator-based swarm harness.
//
// Each seeded iteration builds a service in a scratch directory with
// journals enabled, feeds randomized update streams over UDP while
// killing and restarting replicas at random points, drains, and then
// checks the observables against two layers of oracle:
//
//   1. Mechanical invariants that hold for every run:
//      - each replica's journal is, per variable, a strictly-increasing-
//        seqno subsequence of the sent stream (durability never invents
//        or reorders updates, across any number of incarnations);
//      - every displayed alert was raised by some replica, i.e. its key
//        appears in T(journal_i) for some i (recovery never re-emits or
//        fabricates alerts).
//   2. The paper's property table for the run's (filter, scenario) cell,
//      where the scenario is classified from the OBSERVED journals: if
//      every replica accepted every sent update the run is lossless;
//      otherwise it is the lossy row of the condition's class (a kill's
//      downtime loss is exactly the paper's lossy front link).
//
// Most runs additionally attach durable-session subscribers
// (wire/session.hpp) and inject subscriber faults: abrupt kills
// mid-stream (the server sees a peer die with a frame half-written),
// stale cursors (always rejoin from 0), garbage cursors (from far
// beyond the log end), slow readers (tiny session limits make them
// evictable), and duplicate session ids fighting over one slot. A third
// oracle layer then asserts the session contract: every received alert
// matches the displayed alert at its log index, indices within a
// connection ascend contiguously from the welcome's start_index, an
// exact-resume welcome starts exactly at the requested index, and every
// skipped range was explicitly named by a kTruncated welcome — gaps are
// typed, never silent. Some runs reopen the service on the same durable
// state afterwards and replay a session cursor across the restart
// boundary (kills of BOTH ends of the session).
//
// Unlike SwarmSpec runs, these executions are wall-clock nondeterministic
// (real threads and sockets), so there is no digest or shrinking — the
// per-iteration seed is reported instead so a failure can be re-run.
#pragma once

#include <cstdint>
#include <filesystem>
#include <string>
#include <vector>

namespace rcm::swarm {

struct ServiceFuzzOptions {
  std::uint64_t seed = 1;
  std::size_t runs = 200;
  /// Scratch root for per-run data dirs; empty = system temp. Each run's
  /// directory is removed after a clean check, kept on violation.
  std::filesystem::path scratch_dir;
  bool verbose = false;
  /// Attach durable-session subscribers with injected faults (kills,
  /// stale/garbage cursors, slow readers, duplicate ids) to most runs.
  bool subscriber_faults = true;
  /// Fraction of runs executed against a ShardedCluster (2-3 shards +
  /// merge tier) instead of a single service: feeds route through the
  /// wire shard map, kills hit shard AND merge replicas, and 0-2 mid-run
  /// reshard events (shard add/remove with durable handoff) fire while
  /// updates are in flight. Sharded runs skip subscriber faults — the
  /// evaluating instance can be retired by a reshard mid-stream.
  double sharded_fraction = 0.3;
};

struct ServiceFuzzViolation {
  std::size_t run_index = 0;
  std::uint64_t seed = 0;  ///< batch seed; run_index re-derives the run
  std::string description;
  std::filesystem::path data_dir;  ///< durable state kept for post-mortem
};

struct ServiceFuzzReport {
  std::size_t runs_executed = 0;
  std::size_t runs_with_kills = 0;
  std::size_t runs_with_alerts = 0;
  std::size_t total_kills = 0;
  std::size_t total_restarts = 0;
  // Durable-session fault coverage (see header comment).
  std::size_t runs_with_subscribers = 0;
  std::size_t subscriber_conns = 0;      ///< welcomed session connections
  std::size_t subscriber_kills = 0;      ///< client-initiated abrupt closes
  std::size_t session_truncations = 0;   ///< kTruncated welcomes observed
  std::size_t session_evictions = 0;     ///< evicted notices observed
  std::size_t session_bad_cursors = 0;   ///< kBadCursor welcomes observed
  std::size_t session_lag_alerts = 0;    ///< dogfooded CE lag alerts fired
  std::size_t service_reopens = 0;       ///< cross-restart replay legs
  // Sharded-cluster coverage (see ServiceFuzzOptions::sharded_fraction).
  std::size_t sharded_runs = 0;
  std::size_t cross_shard_runs = 0;      ///< degree >= 2 condition spanning shards
  std::size_t shard_reshards = 0;        ///< mid-run add/remove events
  std::size_t shard_kills = 0;           ///< replica kills inside sharded runs
  // Health-oracle coverage: the fuzzer scrapes the admin health document
  // around kill/recovery on manual-restart runs and asserts the watchdog
  // reported (then cleared) the replica-down degradation.
  std::size_t health_scrapes = 0;        ///< admin health documents fetched
  std::size_t health_degraded_seen = 0;  ///< kills confirmed degraded
  std::vector<ServiceFuzzViolation> violations;

  [[nodiscard]] bool failed() const noexcept { return !violations.empty(); }
};

/// Runs the batch. Throws std::runtime_error on environment errors
/// (scratch dir not writable); violations are reported, not thrown.
[[nodiscard]] ServiceFuzzReport run_service_fuzz(
    const ServiceFuzzOptions& options);

}  // namespace rcm::swarm
