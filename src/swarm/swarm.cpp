#include "swarm/swarm.hpp"

#include <algorithm>
#include <chrono>
#include <optional>
#include <sstream>
#include <vector>

#include "obs/metrics.hpp"
#include "runtime/thread_pool.hpp"

namespace rcm::swarm {
namespace {

/// What one executed run contributes to the report, before aggregation.
struct RunOutcome {
  ComposedSpec spec;
  RunCheck check;
};

/// Executes run `index` in isolation. Pure function of (options, index):
/// the spec comes from the stateless per-run stream derivation and the
/// simulation touches no shared state, so outcomes are identical no
/// matter which thread runs them, in what order.
RunOutcome run_one(const SwarmOptions& options, std::uint64_t index) {
  RunOutcome out;
  out.spec = sample_composed(options.seed, index, options.fuzz);
  out.check = execute_and_check(out.spec, options.check);
  return out;
}

/// Folds one outcome into the report, in run-index order, on the calling
/// thread — shrinking included, so minimization is identical under any
/// jobs count. Returns false when the progress callback stops the batch.
bool aggregate_run(const SwarmOptions& options, std::uint64_t index,
                   RunOutcome outcome, SwarmReport& report,
                   const ProgressFn& progress) {
  const ComposedSpec& spec = outcome.spec;
  const RunCheck& chk = outcome.check;

  RCM_COUNT("swarm.runs");
  ++report.runs_executed;
  if (chk.had_alerts) ++report.runs_with_alerts;
  {
    const std::string cell = std::string(filter_kind_name(spec.base.filter)) +
                             " / " +
                             exp::scenario_name(classify_scenario(spec));
    ++report.cell_runs[cell];
  }

  if (chk.failed()) {
    RCM_COUNT("swarm.violations");
    ++report.failures;
    if (report.counterexamples.size() < SwarmReport::kMaxRecorded) {
      Counterexample ce;
      ce.run_index = index;
      ce.original = spec;
      ce.violations = chk.violations;

      ComposedSpec minimal = spec;
      RunCheck minimal_chk = chk;
      if (options.do_shrink) {
        const ShrinkResult shrunk =
            shrink(spec, chk.violation_kinds.front(), options.check,
                   options.shrink_attempts);
        RCM_COUNT_N("swarm.shrink_attempts", shrunk.attempts);
        ce.shrink_attempts = shrunk.attempts;
        minimal = shrunk.spec;
        minimal_chk = execute_and_check(minimal, options.check);
      }
      ce.record = make_record(minimal, minimal_chk);
      report.counterexamples.push_back(std::move(ce));
    }
  }

  return !progress || progress(index, chk);
}

bool budget_exhausted(const SwarmOptions& options,
                      std::chrono::steady_clock::time_point started) {
  if (options.time_budget_seconds <= 0.0) return false;
  const std::chrono::duration<double> elapsed =
      std::chrono::steady_clock::now() - started;
  return elapsed.count() >= options.time_budget_seconds;
}

SwarmReport run_swarm_serial(const SwarmOptions& options,
                             const ProgressFn& progress) {
  SwarmReport report;
  const auto started = std::chrono::steady_clock::now();
  for (std::uint64_t i = 0; i < options.runs; ++i) {
    if (budget_exhausted(options, started)) {
      report.time_budget_exhausted = true;
      break;
    }
    if (!aggregate_run(options, i, run_one(options, i), report, progress)) {
      report.time_budget_exhausted = true;
      break;
    }
  }
  return report;
}

SwarmReport run_swarm_parallel(const SwarmOptions& options, std::size_t jobs,
                               const ProgressFn& progress) {
  SwarmReport report;
  const auto started = std::chrono::steady_clock::now();

  runtime::ThreadPool pool(jobs, /*queue_capacity=*/jobs * 8);
  // Blocks bound the buffered results (a budget-bounded batch can name
  // 2^64 runs) while keeping every worker busy within a block. Outcomes
  // land in their run-index slot and are aggregated in order, so the
  // report is bit-for-bit the serial one.
  const std::uint64_t block =
      static_cast<std::uint64_t>(std::max<std::size_t>(jobs * 4, 1));
  std::vector<std::optional<RunOutcome>> slots;

  for (std::uint64_t base = 0; base < options.runs; base += block) {
    if (budget_exhausted(options, started)) {
      report.time_budget_exhausted = true;
      break;
    }
    const std::uint64_t n = std::min<std::uint64_t>(block,
                                                    options.runs - base);
    slots.assign(static_cast<std::size_t>(n), std::nullopt);
    for (std::uint64_t i = 0; i < n; ++i) {
      pool.submit([&options, &slots, base, i] {
        slots[static_cast<std::size_t>(i)] = run_one(options, base + i);
      });
    }
    pool.wait();  // barrier; rethrows the first task exception
    for (std::uint64_t i = 0; i < n; ++i) {
      if (!aggregate_run(options, base + i,
                         std::move(*slots[static_cast<std::size_t>(i)]),
                         report, progress)) {
        report.time_budget_exhausted = true;
        return report;
      }
    }
  }
  return report;
}

}  // namespace

SwarmReport run_swarm(const SwarmOptions& options, const ProgressFn& progress) {
  const std::size_t jobs = runtime::ThreadPool::resolve_jobs(options.jobs);
  return jobs <= 1 ? run_swarm_serial(options, progress)
                   : run_swarm_parallel(options, jobs, progress);
}

std::string describe_counterexample(const Counterexample& ce) {
  std::ostringstream out;
  const ComposedSpec& c = ce.record.spec;
  const SwarmSpec& s = c.base;
  out << "run #" << ce.run_index << ": "
      << filter_kind_name(s.filter) << " / "
      << exp::scenario_name(classify_scenario(c)) << "\n";
  for (const std::string& v : ce.violations) out << "  - " << v << "\n";
  out << "  original: " << ce.original.total_updates() << " updates, "
      << ce.original.base.num_ces << " CEs, " << ce.original.units.size()
      << " workload units (size " << ce.original.size() << ")\n";
  out << "  shrunk:   " << c.total_updates() << " updates, " << s.num_ces
      << " CEs, " << c.units.size() << " workload units (size " << c.size()
      << "; " << ce.shrink_attempts << " shrink executions)\n";
  if (!c.units.empty()) {
    out << "  workloads:";
    for (const WorkloadSpec& unit : c.units)
      out << ' ' << workload_kind_name(unit.kind);
    out << '\n';
  }
  out << "  traces:";
  for (const auto& trace : s.traces) {
    out << " [";
    for (std::size_t i = 0; i < trace.size(); ++i) {
      if (i) out << ' ';
      out << trace[i].update.seqno << '('
          << trace[i].update.value << ')';
    }
    out << ']';
  }
  out << "\n  digest: 0x" << std::hex << ce.record.digest << std::dec;
  return out.str();
}

}  // namespace rcm::swarm
