#include "swarm/swarm.hpp"

#include <chrono>
#include <sstream>

namespace rcm::swarm {

SwarmReport run_swarm(const SwarmOptions& options, const ProgressFn& progress) {
  SwarmReport report;
  const auto started = std::chrono::steady_clock::now();

  for (std::uint64_t i = 0; i < options.runs; ++i) {
    if (options.time_budget_seconds > 0.0) {
      const std::chrono::duration<double> elapsed =
          std::chrono::steady_clock::now() - started;
      if (elapsed.count() >= options.time_budget_seconds) {
        report.time_budget_exhausted = true;
        break;
      }
    }

    const SwarmSpec spec = sample_spec(options.seed, i, options.fuzz);
    const RunCheck chk = execute_and_check(spec, options.check);

    ++report.runs_executed;
    if (chk.had_alerts) ++report.runs_with_alerts;
    {
      const std::string cell =
          std::string(filter_kind_name(spec.filter)) + " / " +
          exp::scenario_name(classify_scenario(spec));
      ++report.cell_runs[cell];
    }

    if (chk.failed()) {
      ++report.failures;
      if (report.counterexamples.size() < SwarmReport::kMaxRecorded) {
        Counterexample ce;
        ce.run_index = i;
        ce.original = spec;
        ce.violations = chk.violations;

        SwarmSpec minimal = spec;
        RunCheck minimal_chk = chk;
        if (options.do_shrink) {
          const ShrinkResult shrunk =
              shrink(spec, chk.violation_kinds.front(), options.check,
                     options.shrink_attempts);
          ce.shrink_attempts = shrunk.attempts;
          minimal = shrunk.spec;
          minimal_chk = execute_and_check(minimal, options.check);
        }
        ce.record = make_record(minimal, minimal_chk);
        report.counterexamples.push_back(std::move(ce));
      }
    }

    if (progress && !progress(i, chk)) {
      report.time_budget_exhausted = true;
      break;
    }
  }
  return report;
}

std::string describe_counterexample(const Counterexample& ce) {
  std::ostringstream out;
  const SwarmSpec& s = ce.record.spec;
  out << "run #" << ce.run_index << ": "
      << filter_kind_name(s.filter) << " / "
      << exp::scenario_name(classify_scenario(s)) << "\n";
  for (const std::string& v : ce.violations) out << "  - " << v << "\n";
  out << "  original: " << ce.original.total_updates() << " updates, "
      << ce.original.num_ces << " CEs (size " << ce.original.size() << ")\n";
  out << "  shrunk:   " << s.total_updates() << " updates, " << s.num_ces
      << " CEs (size " << s.size() << "; " << ce.shrink_attempts
      << " shrink executions)\n";
  out << "  traces:";
  for (const auto& trace : s.traces) {
    out << " [";
    for (std::size_t i = 0; i < trace.size(); ++i) {
      if (i) out << ' ';
      out << trace[i].update.seqno << '('
          << trace[i].update.value << ')';
    }
    out << ']';
  }
  out << "\n  digest: 0x" << std::hex << ce.record.digest << std::dec;
  return out.str();
}

}  // namespace rcm::swarm
