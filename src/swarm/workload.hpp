// Composable workload library (FoundationDB-style).
//
// A WorkloadSpec is one independent, serializable unit of traffic or
// fault injection that composes with a base SwarmSpec into a single run:
//
//   flash-crowd        a burst of high-valued updates in a time window
//   slow-replica       constant extra delay on every front link into one CE
//   partition          asymmetric front-link outage into one CE for a window
//   clock-skew         a DM whose emission clock is offset by a constant
//   cheap-fleet        modest traffic plus a fleet of thousands of cheap
//                      threshold conditions evaluated over what CE0 received
//   adaptive-holdback  burst traffic driving a holdback displayer whose
//                      timeout is retuned from the observed alert rate
//
// Each unit's traffic is a pure function of (kind, params, salt) via the
// stateless util::Rng::derive — reordering the unit list never changes
// any unit's sampled updates — and each unit carries its own check()
// verifying its slice of the paper's guarantee tables on top of the
// cross-replica invariants the runner always checks. A ComposedSpec (base
// + units) is what the swarm samples, executes, shrinks (the shrinker can
// drop a whole unit) and serializes into counterexample records.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "sim/system.hpp"
#include "swarm/spec.hpp"

namespace rcm::swarm {

/// Closed set of workload unit kinds. Wire-stable: values are serialized
/// in counterexample records; append only.
enum class WorkloadKind : std::uint8_t {
  kFlashCrowd = 0,
  kSlowReplica = 1,
  kPartition = 2,
  kClockSkew = 3,
  kCheapFleet = 4,
  kAdaptiveHoldback = 5,
};

inline constexpr WorkloadKind kAllWorkloadKinds[] = {
    WorkloadKind::kFlashCrowd,   WorkloadKind::kSlowReplica,
    WorkloadKind::kPartition,    WorkloadKind::kClockSkew,
    WorkloadKind::kCheapFleet,   WorkloadKind::kAdaptiveHoldback,
};

[[nodiscard]] std::string_view workload_kind_name(WorkloadKind k) noexcept;
/// Parses the CLI spelling ("flash-crowd", "slow-replica", ...). Throws
/// std::invalid_argument on unknown names.
[[nodiscard]] WorkloadKind parse_workload_kind(std::string_view name);

/// One workload unit. Plain values only, like SwarmSpec. The fields are
/// shared across kinds; which ones matter depends on `kind`:
///
///   kind              replica  count        updates  start/duration  magnitude
///   flash-crowd       -        #updates     -        burst window    value level
///   slow-replica      target   -            -        -               extra delay (s)
///   partition         target   -            -        outage window   -
///   clock-skew        -        #updates     -        nominal window  clock offset (s)
///   cheap-fleet       -        #conditions  #updates traffic window  -
///   adaptive-holdback -        #updates     -        burst window    initial timeout (s)
struct WorkloadSpec {
  WorkloadKind kind = WorkloadKind::kFlashCrowd;

  /// Private RNG stream id: the unit's traffic is a pure function of
  /// (kind, params, salt) via util::Rng::derive(salt, ...), independent
  /// of the unit's position in the list and of every other unit.
  std::uint64_t salt = 1;

  std::uint32_t replica = 0;
  std::uint32_t count = 0;
  std::uint32_t updates = 0;
  double start = 0.0;
  double duration = 1.0;
  double magnitude = 0.0;

  /// Updates this unit merges into the primary (var 0) trace.
  [[nodiscard]] std::size_t traffic_count() const noexcept;

  /// Shrink weight: 1 for existing plus the traffic contributed, so
  /// dropping a unit always strictly decreases ComposedSpec::size().
  [[nodiscard]] std::size_t size() const noexcept {
    return 1 + traffic_count();
  }

  friend bool operator==(const WorkloadSpec&, const WorkloadSpec&) = default;
};

/// The unit's traffic on variable 0, sorted by emission time (clock skew
/// already applied). Sequence numbers are NOT assigned here — they come
/// from the merge in materialize(). Pure function of the spec.
[[nodiscard]] trace::Trace workload_traffic(const WorkloadSpec& unit);

/// A base spec plus the workload units composed onto it. The unit the
/// swarm pipeline samples, executes, shrinks, and records. An empty unit
/// list behaves exactly like the base SwarmSpec alone.
struct ComposedSpec {
  SwarmSpec base;
  std::vector<WorkloadSpec> units;

  [[nodiscard]] std::size_t size() const;
  [[nodiscard]] std::size_t total_updates() const;

  friend bool operator==(const ComposedSpec&, const ComposedSpec&) = default;
};

/// Owner sentinel for base-spec traffic in MaterializedRun::owner.
inline constexpr std::uint32_t kBaseTraffic = 0xffffffffu;

/// The runnable form of a ComposedSpec: unit traffic merged into the
/// primary trace (sequence numbers renumbered 1..N in emission order when
/// any unit contributed traffic), fault units turned into per-replica
/// front-link shaping, and a provenance map assigning every primary-
/// variable sequence number to the unit that emitted it.
struct MaterializedRun {
  SwarmSpec spec;
  std::vector<sim::LinkShaping> front_shaping;  ///< index = CE replica
  /// owner[s - 1] = unit index owning var-0 seqno s, or kBaseTraffic.
  std::vector<std::uint32_t> owner;
};

[[nodiscard]] MaterializedRun materialize(const ComposedSpec& spec);

/// Scenario / guarantee classification of the composed run: the base
/// cell, downgraded to the matching lossy row when any partition unit
/// can actually drop traffic (a partition loses updates exactly like
/// link loss or a crash window does).
[[nodiscard]] exp::Scenario classify_scenario(const ComposedSpec& spec);
[[nodiscard]] exp::PaperClaim guaranteed_properties(const ComposedSpec& spec);

/// Per-unit checker: verifies unit `unit_index`'s slice of the paper's
/// guarantee tables against the observed run. Returns an empty string
/// when the unit is satisfied, otherwise a violation description. Every
/// check is gated so it is sound for ANY spec the fuzzer can sample; a
/// non-empty return is a real bug (or a planted one), never noise.
[[nodiscard]] std::string check_workload(const ComposedSpec& spec,
                                         const MaterializedRun& mat,
                                         const sim::RunResult& result,
                                         std::size_t unit_index);

/// Serialization of one unit (used inside counterexample records).
/// decode throws wire::DecodeError on unknown kinds ("unknown workload
/// kind"), non-finite or out-of-range parameters.
void encode_workload(wire::Writer& w, const WorkloadSpec& unit);
[[nodiscard]] WorkloadSpec decode_workload(wire::Reader& r);

/// The §4.2 holdback displayer with its timeout retuned from the
/// observed alert rate: every `window` alerts, the timeout is scaled
/// toward `target_rate` alerts per second and clamped to
/// [min_timeout, max_timeout]. Deterministic; never drops an alert.
/// The adaptive-holdback workload replays the run's arrival stream
/// through one of these and checks the controller's guarantees.
class AdaptiveHoldback {
 public:
  struct Params {
    double initial_timeout = 0.5;  ///< seconds; clamped into [min, max]
    double min_timeout = 0.05;
    double max_timeout = 2.0;
    double target_rate = 2.0;      ///< alerts per second the AD can absorb
    std::size_t window = 8;        ///< alerts per retune
  };

  AdaptiveHoldback(VarId var, const Params& params);

  /// Feeds one arriving alert at time `now` (non-decreasing) and returns
  /// whatever the holdback released.
  std::vector<Alert> on_alert(const Alert& a, double now);
  /// Releases everything still buffered (end of stream).
  std::vector<Alert> flush();

  [[nodiscard]] double timeout() const noexcept { return timeout_; }
  [[nodiscard]] std::size_t retunes() const noexcept { return retunes_; }
  [[nodiscard]] const std::vector<Alert>& released() const noexcept {
    return released_;
  }

 private:
  std::vector<Alert> release_due(double now);
  void maybe_retune(double now);

  VarId var_;
  Params params_;
  double timeout_;
  std::size_t retunes_ = 0;
  std::size_t fed_in_window_ = 0;
  double window_started_ = 0.0;
  std::vector<Alert> released_;
  /// (alert, release deadline); the deadline is fixed at arrival with the
  /// then-current timeout, so a retune affects only later arrivals.
  std::vector<std::pair<Alert, double>> buffer_;
  double last_now_ = 0.0;
};

}  // namespace rcm::swarm
