// Mixed-version restarting fuzz: the FoundationDB-style upgrade test,
// run as a sibling of service_fuzz.hpp's crash fuzz.
//
// Each seeded run is one simulated rolling upgrade of a live service:
//
//   phase A  a real AlertService ingests the first half of the feed
//            over UDP (no kills), drains gracefully, and leaves its
//            durable state (checkpoints, WALs, journals, ends log)
//            behind;
//   transcode  that state is rewritten BYTE-FOR-BYTE as a v1 binary
//            would have left it (wire/legacy.hpp encoders): headerless
//            WALs and journals, 's'-tagged snapshots — plus the two
//            artifacts a real crash leaves, a stale WAL prefix of
//            already-checkpointed records and an optional torn tail;
//   phase B  a second AlertService (the "upgraded binary") recovers
//            that v1 state, ingests the rest of the feed under random
//            kill/restart schedules and duplicate resends of phase-A
//            updates, then terminates with the END protocol.
//
// The oracle is EXACTLY the crash-fuzz oracle (swarm/fuzz_plan.hpp) over
// the concatenated observables of both phases: journal invariants,
// displayed ⊆ raised, provenance consistency, and the paper's AD-1..AD-6
// guarantee table for the cell classified from the full journals. Any
// watermark regression across the version boundary shows up as a
// journal-monotonicity or duplicate-display violation; any state
// mistranslation shows up as a displayed-but-never-raised alert.
//
// One boundary subtlety: the AD's ledger (what AD-2/AD-3 use to
// guarantee orderedness/consistency across alerts) is volatile, so the
// two phases are two displayer incarnations and the ledger-backed
// guarantees are claimed per incarnation — the oracle's
// `displayer_epochs` parameter encodes exactly this. Completeness and
// every mechanical invariant still hold over the union.
//
// Each run also performs direct forward-compat checks on the snapshot
// codec: a v2 snapshot carrying an unknown skippable extension must
// decode to identical state, a simulated v1 reader must reject v2 bytes
// with DecodeError, and a future-major header must be rejected with the
// typed UnsupportedVersion, never a crash or a misparse.
#pragma once

#include <cstdint>
#include <filesystem>
#include <string>
#include <vector>

namespace rcm::swarm {

struct UpgradeFuzzOptions {
  std::uint64_t seed = 1;
  std::size_t runs = 50;
  /// Scratch root for per-run data dirs; empty = system temp. Each run's
  /// directory is removed after a clean check, kept on violation.
  std::filesystem::path scratch_dir;
  bool verbose = false;
};

struct UpgradeFuzzViolation {
  std::size_t run_index = 0;
  std::uint64_t seed = 0;  ///< batch seed; run_index re-derives the run
  std::string description;
  std::filesystem::path data_dir;  ///< durable state kept for post-mortem
};

struct UpgradeFuzzReport {
  std::size_t runs_executed = 0;
  std::size_t runs_with_kills = 0;
  std::size_t runs_with_alerts = 0;
  std::size_t total_kills = 0;
  std::size_t total_restarts = 0;
  std::size_t transcoded_files = 0;    ///< durable files rewritten as v1
  std::size_t torn_tails_injected = 0; ///< v1 WALs left with a torn frame
  std::size_t stale_wal_records = 0;   ///< already-checkpointed records
                                       ///< re-planted in v1 WALs
  std::size_t duplicate_resends = 0;   ///< phase-A updates resent in B
  std::vector<UpgradeFuzzViolation> violations;

  [[nodiscard]] bool failed() const noexcept { return !violations.empty(); }
};

/// Runs the batch. Throws std::runtime_error on environment errors
/// (scratch dir not writable); violations are reported, not thrown.
[[nodiscard]] UpgradeFuzzReport run_upgrade_fuzz(
    const UpgradeFuzzOptions& options);

}  // namespace rcm::swarm
