#include "swarm/record.hpp"

#include <algorithm>
#include <fstream>

#include "check/run_record.hpp"
#include "wire/buffer.hpp"
#include "wire/frame.hpp"
#include "wire/version.hpp"

namespace rcm::swarm {
namespace {

constexpr std::uint8_t kRecordTag = 0x57;  // 'W'
// Version 1: base spec only. Version 2: workload units follow the spec.
constexpr std::uint8_t kVersion = 2;

}  // namespace

CounterexampleRecord make_record(const ComposedSpec& spec,
                                 const RunCheck& chk) {
  CounterexampleRecord record;
  record.spec = spec;
  record.violation_kinds = chk.violation_kinds;
  record.digest = chk.digest;
  const Execution exec = execute(spec);
  record.run_bytes = check::encode_system_run(exec.result.as_system_run(
      build_condition(spec.base.cond_kind, spec.base.cond_param)));
  return record;
}

CounterexampleRecord make_record(const SwarmSpec& spec, const RunCheck& chk) {
  return make_record(ComposedSpec{spec, {}}, chk);
}

std::vector<std::uint8_t> encode_record(const CounterexampleRecord& record) {
  wire::Writer w;
  w.u8(kRecordTag);
  w.u8(kVersion);
  encode_spec(w, record.spec.base);
  w.varint(record.spec.units.size());
  for (const WorkloadSpec& unit : record.spec.units) encode_workload(w, unit);
  w.varint(record.violation_kinds.size());
  for (ViolationKind k : record.violation_kinds)
    w.u8(static_cast<std::uint8_t>(k));
  w.u64(record.digest);
  w.varint(record.run_bytes.size());
  w.raw(record.run_bytes);
  return w.take();
}

CounterexampleRecord decode_record(std::span<const std::uint8_t> bytes) {
  wire::Reader r{bytes};
  if (r.u8() != kRecordTag)
    throw wire::DecodeError("not a swarm counterexample record");
  const std::uint8_t version = r.u8();
  if (version < 1 || version > kVersion)
    throw wire::UnsupportedVersion("swarm counterexample record",
                                   {version, 0}, 1, kVersion);
  CounterexampleRecord record;
  record.spec.base = decode_spec(r);
  if (version >= 2) {
    const std::uint64_t units = r.varint();
    if (units > 64) throw wire::DecodeError("too many workload units");
    for (std::uint64_t i = 0; i < units; ++i)
      record.spec.units.push_back(decode_workload(r));
  }
  // kWorkload needs a unit section, so it only exists in v2 records.
  const ViolationKind max_kind = version >= 2
                                     ? ViolationKind::kWorkload
                                     : ViolationKind::kNonDeterminism;
  const std::uint64_t kinds = r.varint();
  if (kinds > 64) throw wire::DecodeError("too many violation kinds");
  for (std::uint64_t i = 0; i < kinds; ++i) {
    const std::uint8_t k = r.u8();
    if (k > static_cast<std::uint8_t>(max_kind))
      throw wire::DecodeError("unknown violation kind");
    record.violation_kinds.push_back(static_cast<ViolationKind>(k));
  }
  record.digest = r.u64();
  const std::uint64_t len = r.varint();
  if (len > (1u << 26)) throw wire::DecodeError("run record too large");
  // Reserve conservatively: `len` is attacker-controlled until the reads
  // below prove the bytes exist.
  record.run_bytes.reserve(static_cast<std::size_t>(std::min<std::uint64_t>(len, 4096)));
  for (std::uint64_t i = 0; i < len; ++i) record.run_bytes.push_back(r.u8());
  r.expect_done();
  // The embedded run must itself decode (condition identity is carried by
  // the spec); rejecting here keeps corrupt records from surfacing later.
  (void)check::decode_system_run(
      record.run_bytes,
      build_condition(record.spec.base.cond_kind,
                      record.spec.base.cond_param));
  return record;
}

void save_record(const std::filesystem::path& path,
                 const CounterexampleRecord& record) {
  const auto framed = wire::frame(encode_record(record));
  std::ofstream out{path, std::ios::binary | std::ios::trunc};
  if (!out.is_open())
    throw std::runtime_error("save_record: cannot open " + path.string());
  out.write(reinterpret_cast<const char*>(framed.data()),
            static_cast<std::streamsize>(framed.size()));
  if (!out.good())
    throw std::runtime_error("save_record: write failed on " + path.string());
}

CounterexampleRecord load_record(const std::filesystem::path& path) {
  std::ifstream in{path, std::ios::binary};
  if (!in.is_open())
    throw std::runtime_error("load_record: cannot open " + path.string());
  std::vector<std::uint8_t> bytes{std::istreambuf_iterator<char>(in),
                                  std::istreambuf_iterator<char>()};
  wire::FrameCursor cursor;
  cursor.feed(bytes);
  cursor.finish();
  const auto payload = cursor.next();
  if (!payload)
    throw wire::DecodeError("load_record: no complete frame in file");
  return decode_record(*payload);
}

ReplayResult replay(const CounterexampleRecord& record,
                    const CheckOptions& options) {
  ReplayResult out;
  out.check = execute_and_check(record.spec, options);

  const Execution exec = execute(record.spec);
  const auto fresh_bytes = check::encode_system_run(exec.result.as_system_run(
      build_condition(record.spec.base.cond_kind,
                      record.spec.base.cond_param)));
  out.digest_matched =
      out.check.digest == record.digest && fresh_bytes == record.run_bytes;

  out.violations_matched = std::all_of(
      record.violation_kinds.begin(), record.violation_kinds.end(),
      [&](ViolationKind k) { return out.check.has_kind(k); });
  out.reproduced = out.digest_matched && out.violations_matched;
  return out;
}

}  // namespace rcm::swarm
