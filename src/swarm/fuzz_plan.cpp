#include "swarm/fuzz_plan.hpp"

#include <algorithm>
#include <map>
#include <set>
#include <sstream>
#include <system_error>

#include "check/properties.hpp"
#include "core/evaluator.hpp"
#include "exp/table_experiment.hpp"

namespace rcm::swarm {
namespace {

constexpr KindChoice kKinds[] = {
    {ConditionKind::kThreshold, 60.0, exp::Scenario::kLossyNonHistorical},
    {ConditionKind::kRiseAggressive, 20.0, exp::Scenario::kLossyAggressive},
    {ConditionKind::kRiseConservative, 20.0,
     exp::Scenario::kLossyConservative},
    {ConditionKind::kAbsDiff, 30.0, exp::Scenario::kLossyNonHistorical},
    {ConditionKind::kBand, 30.0, exp::Scenario::kLossyNonHistorical},
    {ConditionKind::kRise2dAggressive, 25.0,
     exp::Scenario::kLossyAggressive},
    {ConditionKind::kRise2dConservative, 25.0,
     exp::Scenario::kLossyConservative},
};

// Filters with a paper-claim table for the arity (see exp::paper_claim).
constexpr FilterKind kSingleVarFilters[] = {FilterKind::kAd1, FilterKind::kAd2,
                                            FilterKind::kAd3,
                                            FilterKind::kAd4};
constexpr FilterKind kMultiVarFilters[] = {FilterKind::kAd1, FilterKind::kAd5,
                                           FilterKind::kAd6};

}  // namespace

RunPlan make_service_plan(util::Rng& rng) {
  RunPlan plan;
  plan.choice = kKinds[static_cast<std::size_t>(
      rng.uniform_int(0, std::size(kKinds) - 1))];
  const std::size_t arity = condition_arity(plan.choice.kind);
  if (arity == 1) {
    plan.filter = kSingleVarFilters[static_cast<std::size_t>(
        rng.uniform_int(0, std::size(kSingleVarFilters) - 1))];
  } else {
    plan.filter = kMultiVarFilters[static_cast<std::size_t>(
        rng.uniform_int(0, std::size(kMultiVarFilters) - 1))];
  }
  plan.replicas = static_cast<std::size_t>(rng.uniform_int(1, 3));
  constexpr std::size_t kCheckpointChoices[] = {1, 3, 8, 32, 117};
  plan.checkpoint_every = kCheckpointChoices[static_cast<std::size_t>(
      rng.uniform_int(0, std::size(kCheckpointChoices) - 1))];
  plan.updates_per_var = static_cast<std::size_t>(rng.uniform_int(30, 120));
  plan.auto_restart = rng.bernoulli(0.5);
  plan.dup_prob = rng.bernoulli(0.5) ? 0.05 : 0.0;

  // Interleaved feed: per-variable seqnos ascend; the interleaving across
  // variables is random.
  std::vector<SeqNo> next_seqno(arity, 1);
  std::vector<std::size_t> remaining(arity, plan.updates_per_var);
  std::size_t total = arity * plan.updates_per_var;
  plan.feed.reserve(total);
  while (total > 0) {
    std::size_t var;
    do {
      var = static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(arity) - 1));
    } while (remaining[var] == 0);
    plan.feed.push_back(Update{static_cast<VarId>(var), next_seqno[var]++,
                               rng.uniform(0.0, 100.0)});
    --remaining[var];
    --total;
  }

  const std::size_t kill_count =
      static_cast<std::size_t>(rng.uniform_int(0, 3));
  for (std::size_t k = 0; k < kill_count; ++k) {
    KillEvent e;
    e.at_step = static_cast<std::size_t>(
        rng.uniform_int(1, static_cast<std::int64_t>(plan.feed.size()) - 1));
    e.replica = static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(plan.replicas) - 1));
    e.restart_after = static_cast<std::size_t>(rng.uniform_int(1, 20));
    plan.kills.push_back(e);
  }
  std::sort(plan.kills.begin(), plan.kills.end(),
            [](const KillEvent& a, const KillEvent& b) {
              return a.at_step < b.at_step;
            });
  return plan;
}

void send_ignoring_errors(net::UdpSocket& socket, std::uint16_t port,
                          std::span<const std::uint8_t> bytes) {
  try {
    socket.send_to(port, bytes);
  } catch (const std::system_error&) {
    // A closed replica port can surface as ECONNREFUSED on a later send
    // (ICMP unreachable); that IS the lossy link, not an error.
  }
}

std::vector<std::string> check_service_run(
    const RunPlan& plan, const std::vector<Update>& sent,
    std::vector<std::vector<Update>> journals, std::vector<Alert> displayed,
    const std::vector<AlertProvenance>& provenance, std::size_t kills,
    std::vector<std::size_t> displayer_epochs) {
  std::vector<std::string> violations;
  const ConditionPtr condition =
      build_condition(plan.choice.kind, plan.choice.param);
  const std::size_t arity = condition_arity(plan.choice.kind);

  // Index the sent stream: (var, seqno) -> value.
  std::map<std::pair<VarId, SeqNo>, double> sent_index;
  for (const Update& u : sent) sent_index[{u.var, u.seqno}] = u.value;

  // Invariant 1: journals are per-variable strictly-increasing
  // subsequences of the sent stream.
  for (std::size_t i = 0; i < journals.size(); ++i) {
    std::map<VarId, SeqNo> last;
    for (const Update& u : journals[i]) {
      const auto it = sent_index.find({u.var, u.seqno});
      if (it == sent_index.end() || it->second != u.value) {
        std::ostringstream out;
        out << "journal " << i << " contains update (var " << u.var
            << ", seq " << u.seqno << ") that was never sent";
        violations.push_back(out.str());
        continue;
      }
      const auto lit = last.find(u.var);
      if (lit != last.end() && u.seqno <= lit->second) {
        std::ostringstream out;
        out << "journal " << i << " not strictly increasing for var "
            << u.var << " at seq " << u.seqno;
        violations.push_back(out.str());
      }
      last[u.var] = u.seqno;
    }
  }

  // Invariant 2: every displayed alert was raised by some incarnation of
  // some replica — displayed keys ⊆ ∪_i keys(T(journal_i)).
  std::set<AlertKey> raised;
  std::size_t raised_count = 0;
  for (const auto& journal : journals) {
    for (const Alert& a : evaluate_trace(condition, journal)) {
      raised.insert(a.key());
      ++raised_count;
    }
  }
  for (const Alert& a : displayed) {
    if (!raised.contains(a.key())) {
      violations.push_back("displayed alert no replica raised: " +
                           a.key().cond);
      break;
    }
  }

  // Invariant 3: provenance records stay consistent with the journal
  // invariants — every displayed alert has exactly one displayed=true
  // record (in order) whose triggering (var, seq) updates all appear in
  // at least one replica journal, i.e. provenance never names an update
  // the durable layer does not know about.
  std::set<std::pair<VarId, SeqNo>> journaled;
  for (const auto& journal : journals)
    for (const Update& u : journal) journaled.emplace(u.var, u.seqno);
  std::vector<const AlertProvenance*> shown;
  for (const AlertProvenance& p : provenance)
    if (p.displayed) shown.push_back(&p);
  if (shown.size() != displayed.size()) {
    std::ostringstream out;
    out << "provenance shows " << shown.size() << " displayed record(s) but "
        << displayed.size() << " alert(s) were displayed";
    violations.push_back(out.str());
  } else {
    for (std::size_t k = 0; k < displayed.size(); ++k) {
      const AlertProvenance& p = *shown[k];
      std::vector<std::pair<VarId, SeqNo>> expect;
      for (const auto& [var, seqs] : displayed[k].key().signature)
        for (SeqNo s : seqs) expect.emplace_back(var, s);
      if (p.cond != displayed[k].cond || p.triggers != expect) {
        std::ostringstream out;
        out << "provenance record " << p.arrival_index
            << " does not match displayed alert " << k << " ("
            << displayed[k].cond << ")";
        violations.push_back(out.str());
        break;
      }
      bool unjournaled = false;
      for (const auto& trig : p.triggers)
        if (!journaled.contains(trig)) unjournaled = true;
      if (unjournaled) {
        std::ostringstream out;
        out << "provenance of displayed alert " << k
            << " names a trigger absent from every replica journal";
        violations.push_back(out.str());
        break;
      }
    }
  }
  for (const AlertProvenance& p : provenance) {
    if (p.reason == nullptr || p.reason[0] == '\0' ||
        p.filter != std::string(filter_kind_name(plan.filter))) {
      violations.push_back("provenance record missing verdict reason or "
                           "filter name");
      break;
    }
  }

  // Paper-table oracle for the observed scenario. A replica that
  // accepted every sent update makes no difference from a lossless one,
  // whether or not it was killed; any miss puts the run in the lossy row
  // of the condition's class.
  bool missed = false;
  for (const auto& journal : journals)
    if (journal.size() != sent.size()) missed = true;
  const exp::Scenario scenario =
      missed ? plan.choice.lossy_row : exp::Scenario::kLossless;
  const exp::PaperClaim claim =
      exp::paper_claim(plan.filter, scenario, arity > 1);

  if (displayer_epochs.empty()) displayer_epochs = {displayed.size()};

  const auto note = [&](const char* property, bool claimed,
                        check::Verdict verdict) {
    if (claimed && verdict == check::Verdict::kViolated) {
      std::ostringstream out;
      out << "guaranteed " << property << " violated ("
          << std::string(filter_kind_name(plan.filter)) << ", "
          << exp::scenario_name(scenario) << ", " << kills << " kill(s), "
          << raised_count << " raised)";
      violations.push_back(out.str());
    }
  };

  // Completeness is ledger-free (journal replay vs the displayed union).
  check::SystemRun run;
  run.condition = condition;
  run.ce_inputs = journals;
  run.displayed = displayed;
  note("completeness", claim.complete,
       check::check_run(run).complete);

  // Orderedness and consistency are guaranteed by the AD's volatile
  // ledger, so each displayer incarnation is its own claim scope: a
  // service restart (the upgrade fuzz boundary) starts a fresh ledger
  // that cannot know what the previous incarnation displayed.
  std::size_t begin = 0;
  for (const std::size_t epoch : displayer_epochs) {
    check::SystemRun slice;
    slice.condition = condition;
    slice.ce_inputs = journals;
    slice.displayed = {displayed.begin() + static_cast<std::ptrdiff_t>(begin),
                       displayed.begin() +
                           static_cast<std::ptrdiff_t>(begin + epoch)};
    begin += epoch;
    const check::PropertyReport report = check::check_run(slice);
    note("orderedness", claim.ordered, report.ordered);
    note("consistency", claim.consistent, report.consistent);
  }
  if (begin != displayed.size())
    violations.push_back("displayer epochs do not partition the displayed "
                         "alert sequence");
  return violations;
}

}  // namespace rcm::swarm
