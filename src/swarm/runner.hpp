// Swarm run executor: runs one SwarmSpec on the deterministic simulator
// (plain or disconnectable, depending on the spec) and checks everything
// the harness knows how to falsify:
//
//   - the paper's property guarantees for the spec's (filter, scenario)
//     cell — orderedness / completeness / consistency verdicts from the
//     exact checkers, compared against exp::paper_claim;
//   - cross-replica invariants that hold for EVERY cell: each displayed
//     alert was raised by some replica, display timestamps are monotone
//     non-decreasing, and the run is a pure function of the spec
//     (re-execution produces a bit-for-bit identical run).
//
// A completeness verdict of kUnknown (bounded interleaving search
// exhausted) is never a violation.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "check/properties.hpp"
#include "sim/system.hpp"
#include "swarm/spec.hpp"
#include "swarm/workload.hpp"

namespace rcm::swarm {

/// What went wrong in a failing run. Shrinking preserves the *first*
/// violation's kind, so a minimized spec demonstrates the same class of
/// bug as the original.
enum class ViolationKind : std::uint8_t {
  kOrderedness = 0,     ///< guaranteed orderedness violated
  kCompleteness = 1,    ///< guaranteed completeness violated
  kConsistency = 2,     ///< guaranteed consistency violated
  kUnraisedAlert = 3,   ///< displayed alert no replica raised
  kNonMonotoneDisplay = 4,  ///< display timestamps regressed
  kNonDeterminism = 5,  ///< re-execution diverged from first execution
  kWorkload = 6,        ///< a workload unit's own checker failed
};

[[nodiscard]] std::string_view violation_kind_name(ViolationKind k) noexcept;

/// Execution knobs.
struct CheckOptions {
  /// Re-run every spec and require a bit-for-bit identical run. Doubles
  /// simulation cost; the cheapest invariant to drop under a time budget.
  bool check_determinism = true;

  /// Budget for the multi-variable completeness search.
  std::size_t interleaving_budget = 200000;
};

/// Everything observed about one executed-and-checked run.
struct RunCheck {
  check::PropertyReport report;
  std::vector<ViolationKind> violation_kinds;   ///< empty = clean run
  std::vector<std::string> violations;          ///< parallel descriptions
  std::uint64_t digest = 0;  ///< run fingerprint incl. display times
  std::size_t displayed = 0;
  std::size_t raised = 0;  ///< alerts raised across all replicas
  bool had_alerts = false;

  [[nodiscard]] bool failed() const noexcept { return !violations.empty(); }
  [[nodiscard]] bool has_kind(ViolationKind k) const;
};

/// Runs the spec once (twice with check_determinism) and checks it.
/// Propagates std::invalid_argument from malformed specs — the shrinker
/// treats that as "candidate rejected", and the fuzzer never produces
/// them. The composed overload additionally runs every workload unit's
/// own checker (violations surface as kWorkload); the SwarmSpec overload
/// is exactly the composed one with no units.
[[nodiscard]] RunCheck execute_and_check(const ComposedSpec& spec,
                                         const CheckOptions& options = {});
[[nodiscard]] RunCheck execute_and_check(const SwarmSpec& spec,
                                         const CheckOptions& options = {});

/// The raw simulator observables of one execution of the spec, with
/// display times normalized across the plain and disconnectable runners.
struct Execution {
  sim::RunResult result;
  std::vector<double> display_times;
};
[[nodiscard]] Execution execute(const ComposedSpec& spec);
[[nodiscard]] Execution execute(const SwarmSpec& spec);

/// Fingerprint of an execution: check::run_digest over the SystemRun,
/// chained with the IEEE-754 bits of every display timestamp.
[[nodiscard]] std::uint64_t execution_digest(const Execution& exec,
                                             const ConditionPtr& condition);

}  // namespace rcm::swarm
