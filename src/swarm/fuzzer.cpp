#include "swarm/fuzzer.hpp"

#include <algorithm>
#include <iterator>

#include "util/rng.hpp"

namespace rcm::swarm {
namespace {

/// Trace shapes the fuzzer draws from. All shapes keep values roughly in
/// [0, 100] so the sampled condition parameters give useful (neither
/// zero nor saturating) trigger rates.
enum class TraceShape { kUniform, kDrift, kStock };

trace::Trace make_trace(TraceShape shape, VarId var, std::size_t count,
                        double jitter, util::Rng& rng) {
  switch (shape) {
    case TraceShape::kUniform: {
      trace::UniformParams p;
      p.base.var = var;
      p.base.count = count;
      p.base.period = 1.0;
      p.base.jitter = jitter;
      p.lo = 0.0;
      p.hi = 100.0;
      return trace::uniform_trace(p, rng);
    }
    case TraceShape::kDrift: {
      trace::ReactorParams p;  // slow mean-reverting walk around 50
      p.base.var = var;
      p.base.count = count;
      p.base.period = 1.0;
      p.base.jitter = jitter;
      p.baseline = 50.0;
      p.stddev = 8.0;
      p.reversion = 0.15;
      p.excursion_prob = 0.04;
      p.excursion_min = 20.0;
      p.excursion_max = 45.0;
      return trace::reactor_trace(p, rng);
    }
    case TraceShape::kStock: {
      trace::StockParams p;  // multiplicative walk with sharp drops
      p.base.var = var;
      p.base.count = count;
      p.base.period = 1.0;
      p.base.jitter = jitter;
      p.initial = 60.0;
      p.volatility = 0.08;
      p.crash_prob = 0.05;
      return trace::stock_trace(p, rng);
    }
  }
  return {};
}

ConditionKind sample_condition(bool multi, util::Rng& rng, double& param) {
  if (!multi) {
    switch (rng.uniform_int(0, 2)) {
      case 0:
        param = rng.uniform(45.0, 70.0);
        return ConditionKind::kThreshold;
      case 1:
        param = rng.uniform(15.0, 30.0);
        return ConditionKind::kRiseAggressive;
      default:
        param = rng.uniform(15.0, 30.0);
        return ConditionKind::kRiseConservative;
    }
  }
  switch (rng.uniform_int(0, 3)) {
    case 0:
      param = rng.uniform(20.0, 40.0);
      return ConditionKind::kAbsDiff;
    case 1:
      param = rng.uniform(20.0, 35.0);
      return ConditionKind::kBand;
    case 2:
      param = rng.uniform(15.0, 30.0);
      return ConditionKind::kRise2dAggressive;
    default:
      param = rng.uniform(15.0, 30.0);
      return ConditionKind::kRise2dConservative;
  }
}

FilterKind sample_filter(bool multi, util::Rng& rng) {
  if (multi) {
    // The paper states multi-variable claims for AD-1 (Theorem 10), AD-5
    // (Table 3) and AD-6 (§5.2) only.
    constexpr FilterKind kMulti[] = {FilterKind::kAd1, FilterKind::kAd5,
                                     FilterKind::kAd6};
    return kMulti[rng.uniform_int(0, 2)];
  }
  constexpr FilterKind kSingle[] = {FilterKind::kAd1, FilterKind::kAd2,
                                    FilterKind::kAd3, FilterKind::kAd4};
  return kSingle[rng.uniform_int(0, 3)];
}

/// Samples one base spec from an already-positioned run stream. Factored
/// out so sample_composed can consume exactly the same prefix of draws
/// and keep the base bit-identical to sample_spec.
SwarmSpec sample_base(util::Rng& rng, const FuzzOptions& options) {
  SwarmSpec spec;

  // Filters pinned to a single-variable algorithm constrain the
  // condition's arity; sample arity accordingly.
  bool multi = rng.bernoulli(0.35);
  if (options.force_filter) {
    switch (*options.force_filter) {
      case FilterKind::kAd2:
      case FilterKind::kAd4:
      case FilterKind::kBrokenAd2:
        multi = false;
        break;
      default:
        break;
    }
  }
  spec.cond_kind = sample_condition(multi, rng, spec.cond_param);
  spec.filter = options.force_filter ? *options.force_filter
                                     : sample_filter(multi, rng);

  const auto arity = condition_arity(spec.cond_kind);
  const double jitter = rng.uniform(0.0, 0.45);
  double horizon = 0.0;
  for (VarId v = 0; v < arity; ++v) {
    const std::size_t count = static_cast<std::size_t>(rng.uniform_int(
        static_cast<std::int64_t>(options.min_updates),
        static_cast<std::int64_t>(options.max_updates)));
    // Secondary variables drift slowly (the Lemma 6 shape that makes
    // multi-variable anomalies observable); the primary one jumps.
    const TraceShape shape =
        v == 0 ? (rng.bernoulli(0.8) ? TraceShape::kUniform
                                     : TraceShape::kStock)
               : (rng.bernoulli(0.7) ? TraceShape::kDrift
                                     : TraceShape::kUniform);
    spec.traces.push_back(make_trace(shape, v, count, jitter, rng));
    for (const auto& tu : spec.traces.back())
      horizon = std::max(horizon, tu.time);
  }

  spec.num_ces = static_cast<std::uint32_t>(
      rng.uniform_int(1, static_cast<std::int64_t>(
                             std::max<std::uint32_t>(options.max_ces, 1))));

  spec.front.loss =
      rng.bernoulli(options.lossless_prob) ? 0.0 : rng.uniform(0.05, 0.35);
  spec.front.delay_min = 0.01;
  spec.front.delay_max = rng.uniform(0.1, 2.5);
  spec.back.loss = 0.0;
  spec.back.delay_min = 0.01;
  spec.back.delay_max = rng.uniform(0.1, 2.5);

  if (rng.bernoulli(options.crash_prob)) {
    for (std::uint32_t ce = 0; ce < spec.num_ces; ++ce) {
      std::vector<sim::CrashWindow> windows;
      if (rng.bernoulli(0.5)) {
        sim::CrashWindow cw;
        cw.down_at = rng.uniform(0.0, std::max(horizon, 1.0));
        cw.up_at = cw.down_at + rng.uniform(1.0, horizon / 2.0 + 2.0);
        cw.lose_state = rng.bernoulli(0.5);
        windows.push_back(cw);
      }
      spec.crashes.push_back(std::move(windows));
    }
  }

  if (rng.bernoulli(options.offline_prob)) {
    const int count = static_cast<int>(rng.uniform_int(1, 2));
    double at = 0.0;
    for (int i = 0; i < count; ++i) {
      const double from = at + rng.uniform(0.5, horizon / 2.0 + 1.0);
      const double to = from + rng.uniform(1.0, horizon / 2.0 + 2.0);
      spec.ad_offline.emplace_back(from, to);
      at = to;
    }
  }

  spec.seed = rng();
  return spec;
}

/// Samples one workload unit sized to the base spec's shape.
WorkloadSpec sample_unit(util::Rng& rng, const SwarmSpec& base,
                         double horizon, const FuzzOptions& options) {
  WorkloadSpec unit;
  unit.kind = options.force_workload
                  ? *options.force_workload
                  : kAllWorkloadKinds[rng.uniform_int(
                        0, static_cast<std::int64_t>(
                               std::size(kAllWorkloadKinds)) -
                               1)];
  unit.salt = rng();
  switch (unit.kind) {
    case WorkloadKind::kFlashCrowd:
      unit.count = static_cast<std::uint32_t>(rng.uniform_int(4, 12));
      unit.start = rng.uniform(0.0, horizon * 0.7);
      unit.duration = rng.uniform(0.5, 3.0);
      unit.magnitude = rng.uniform(60.0, 95.0);
      break;
    case WorkloadKind::kSlowReplica:
      unit.replica = static_cast<std::uint32_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(base.num_ces) - 1));
      unit.magnitude = rng.uniform(0.5, 3.0);
      break;
    case WorkloadKind::kPartition:
      unit.replica = static_cast<std::uint32_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(base.num_ces) - 1));
      unit.start = rng.uniform(0.0, horizon * 0.7);
      unit.duration = rng.uniform(1.0, horizon / 2.0 + 2.0);
      break;
    case WorkloadKind::kClockSkew:
      unit.count = static_cast<std::uint32_t>(rng.uniform_int(4, 12));
      unit.start = rng.uniform(0.0, horizon * 0.7);
      unit.duration = rng.uniform(1.0, 4.0);
      unit.magnitude = rng.uniform(-1.5, 1.5);
      break;
    case WorkloadKind::kCheapFleet:
      unit.count = static_cast<std::uint32_t>(rng.uniform_int(64, 1024));
      unit.updates = static_cast<std::uint32_t>(rng.uniform_int(6, 20));
      unit.start = rng.uniform(0.0, horizon * 0.5);
      unit.duration = rng.uniform(2.0, horizon + 1.0);
      break;
    case WorkloadKind::kAdaptiveHoldback:
      unit.count = static_cast<std::uint32_t>(rng.uniform_int(8, 24));
      unit.start = rng.uniform(0.0, horizon * 0.5);
      unit.duration = rng.uniform(2.0, 6.0);
      unit.magnitude = rng.uniform(0.1, 1.0);
      break;
  }
  return unit;
}

}  // namespace

SwarmSpec sample_spec(std::uint64_t master_seed, std::uint64_t index,
                      const FuzzOptions& options) {
  // Stateless derivation (bit-compatible with the historical
  // Rng{seed}.fork(index + 1)): run i's stream does not depend on which
  // runs were sampled before it, so parallel executors sharding a batch
  // across workers sample exactly the serial batch.
  util::Rng rng = util::Rng::derive(master_seed, index);
  return sample_base(rng, options);
}

ComposedSpec sample_composed(std::uint64_t master_seed, std::uint64_t index,
                             const FuzzOptions& options) {
  util::Rng rng = util::Rng::derive(master_seed, index);
  ComposedSpec spec;
  spec.base = sample_base(rng, options);

  double horizon = 1.0;
  for (const trace::Trace& tr : spec.base.traces)
    for (const trace::TimedUpdate& tu : tr)
      horizon = std::max(horizon, tu.time);

  std::size_t n = 0;
  if (options.force_workload) {
    n = 1;
  } else if (options.max_workloads > 0) {
    const std::size_t hi =
        std::max(options.max_workloads, options.min_workloads);
    if (options.min_workloads > 0)
      n = static_cast<std::size_t>(
          rng.uniform_int(static_cast<std::int64_t>(options.min_workloads),
                          static_cast<std::int64_t>(hi)));
    else if (rng.bernoulli(options.workload_prob))
      n = static_cast<std::size_t>(
          rng.uniform_int(1, static_cast<std::int64_t>(hi)));
  }
  for (std::size_t i = 0; i < n; ++i)
    spec.units.push_back(sample_unit(rng, spec.base, horizon, options));
  return spec;
}

}  // namespace rcm::swarm
