#include "swarm/upgrade_fuzz.hpp"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <set>
#include <utility>

#include "core/evaluator.hpp"
#include "net/deployment.hpp"
#include "net/socket.hpp"
#include "service/alert_service.hpp"
#include "service/durable_replica.hpp"
#include "store/file_log.hpp"
#include "swarm/fuzz_plan.hpp"
#include "util/rng.hpp"
#include "wire/buffer.hpp"
#include "wire/codec.hpp"
#include "wire/frame.hpp"
#include "wire/legacy.hpp"
#include "wire/snapshot.hpp"
#include "wire/version.hpp"

namespace rcm::swarm {
namespace {

std::vector<std::uint8_t> read_file(const std::filesystem::path& path) {
  std::ifstream in{path, std::ios::binary};
  return std::vector<std::uint8_t>{std::istreambuf_iterator<char>(in),
                                   std::istreambuf_iterator<char>()};
}

void write_file(const std::filesystem::path& path,
                std::span<const std::uint8_t> bytes) {
  std::ofstream out{path, std::ios::binary | std::ios::trunc};
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
  if (!out.good())
    throw std::runtime_error("upgrade-fuzz: cannot write " + path.string());
}

/// Rewrites one replica's durable files exactly as a v1 binary that
/// crashed between checkpoint rename and WAL truncate would have left
/// them: v1 snapshot, headerless WAL with `stale` already-checkpointed
/// records re-planted before the live tail (replay must drop them via
/// the recovered watermarks) and optionally a torn final frame, and a
/// headerless journal.
void transcode_replica_to_v1(const std::filesystem::path& dir,
                             const ConditionPtr& condition, std::size_t r,
                             util::Rng& rng, UpgradeFuzzReport& report) {
  const std::vector<Update> journal =
      service::DurableReplica::read_journal(dir, r);

  const auto ckpt_path = service::DurableReplica::checkpoint_path(dir, r);
  if (std::filesystem::exists(ckpt_path)) {
    wire::FrameCursor cursor;
    cursor.feed(read_file(ckpt_path));
    cursor.finish();
    if (const auto payload = cursor.next()) {
      ConditionEvaluator ce{condition, "CE" + std::to_string(r + 1)};
      wire::decode_evaluator_state(*payload, ce);
      write_file(ckpt_path,
                 wire::frame(wire::legacy::encode_evaluator_state_v1(ce)));
      ++report.transcoded_files;
    }
  }

  const auto wal_path = service::DurableReplica::wal_path(dir, r);
  const store::RecoveredUpdates wal = store::recover_updates(wal_path);
  std::set<std::pair<VarId, SeqNo>> in_wal;
  for (const Update& u : wal.updates) in_wal.emplace(u.var, u.seqno);
  std::vector<Update> v1_records;
  const std::size_t want_stale =
      static_cast<std::size_t>(rng.uniform_int(0, 5));
  for (auto it = journal.rbegin();
       it != journal.rend() && v1_records.size() < want_stale; ++it) {
    if (!in_wal.contains({it->var, it->seqno})) v1_records.push_back(*it);
  }
  std::reverse(v1_records.begin(), v1_records.end());
  report.stale_wal_records += v1_records.size();
  v1_records.insert(v1_records.end(), wal.updates.begin(), wal.updates.end());
  std::vector<std::uint8_t> wal_bytes =
      wire::legacy::encode_update_log_v1(v1_records);
  if (!journal.empty() && rng.bernoulli(0.5)) {
    const auto torn = wire::frame(wire::encode_update(journal.back()));
    const std::size_t cut = static_cast<std::size_t>(
        rng.uniform_int(1, static_cast<std::int64_t>(torn.size()) - 1));
    wal_bytes.insert(wal_bytes.end(), torn.begin(), torn.begin() + cut);
    ++report.torn_tails_injected;
  }
  write_file(wal_path, wal_bytes);
  ++report.transcoded_files;

  write_file(service::DurableReplica::journal_path(dir, r),
             wire::legacy::encode_update_log_v1(journal));
  ++report.transcoded_files;
}

/// Direct codec checks at the version boundary, on the state replica 0
/// actually reached: unknown skippable extensions, old-reader rejection
/// of new bytes, and typed rejection of a future major.
std::vector<std::string> forward_compat_checks(
    const ConditionPtr& condition, const std::vector<Update>& journal) {
  std::vector<std::string> violations;
  ConditionEvaluator ce{condition, "CE1"};
  for (const Update& u : journal) ce.replay_update(u);
  const std::vector<std::uint8_t> v2 = wire::encode_evaluator_state(ce);

  // 1. A v(N+1) writer adding an unknown skippable extension must not
  // change what a v(N=current) reader recovers. The current encoding
  // ends with an empty extension section (a single 0x00 count); replace
  // it with one unknown entry.
  {
    std::vector<std::uint8_t> extended{v2.begin(), v2.end() - 1};
    wire::Writer w;
    w.varint(1);
    w.u8(0x7E);  // tag no current reader knows
    const std::uint8_t blob[] = {0xDE, 0xAD, 0xBE};
    w.varint(std::size(blob));
    w.raw(blob);
    const auto section = w.take();
    extended.insert(extended.end(), section.begin(), section.end());
    try {
      ConditionEvaluator got{condition, "CE1"};
      wire::decode_evaluator_state(extended, got);
      if (wire::encode_evaluator_state(got) != v2)
        violations.push_back(
            "snapshot with unknown extension decoded to different state");
    } catch (const wire::DecodeError&) {
      violations.push_back(
          "snapshot with unknown skippable extension was rejected");
    }
  }

  // 2. A simulated v1 reader must reject v2 bytes cleanly (DecodeError,
  // not a misparse into bogus state).
  try {
    ConditionEvaluator old_reader{condition, "CE1"};
    wire::legacy::decode_evaluator_state_v1(v2, old_reader);
    violations.push_back("v1 reader accepted v2 snapshot bytes");
  } catch (const wire::DecodeError&) {
  }

  // 3. A future major must be rejected with the TYPED error so callers
  // can distinguish "upgrade me" from "corrupt file".
  {
    std::vector<std::uint8_t> future = v2;
    future[1] = 99;  // major byte of the version header
    try {
      ConditionEvaluator got{condition, "CE1"};
      wire::decode_evaluator_state(future, got);
      violations.push_back("major-99 snapshot was accepted");
    } catch (const wire::UnsupportedVersion&) {
    } catch (const wire::DecodeError&) {
      violations.push_back(
          "major-99 snapshot rejected with untyped DecodeError");
    }
  }

  // 4. v1 bytes written by the legacy encoder must round-trip through
  // the current reader to the same state the current encoder describes.
  try {
    ConditionEvaluator got{condition, "CE1"};
    wire::decode_evaluator_state(wire::legacy::encode_evaluator_state_v1(ce),
                                 got);
    if (wire::encode_evaluator_state(got) != v2)
      violations.push_back("v1 snapshot round-trip changed evaluator state");
  } catch (const wire::DecodeError&) {
    violations.push_back("current reader rejected v1 snapshot bytes");
  }
  return violations;
}

service::ServiceConfig make_config(const RunPlan& plan,
                                   const std::filesystem::path& data_dir) {
  service::ServiceConfig config;
  config.condition = build_condition(plan.choice.kind, plan.choice.param);
  config.num_replicas = plan.replicas;
  config.filter = plan.filter;
  config.data_dir = data_dir;
  config.checkpoint_every = plan.checkpoint_every;
  config.record_journal = true;
  config.auto_restart = plan.auto_restart;
  config.backoff.initial = std::chrono::milliseconds{1};
  config.backoff.max = std::chrono::milliseconds{50};
  config.backoff.reset_after = std::chrono::milliseconds{1};
  config.poll_interval = std::chrono::milliseconds{5};
  return config;
}

}  // namespace

UpgradeFuzzReport run_upgrade_fuzz(const UpgradeFuzzOptions& options) {
  UpgradeFuzzReport report;
  const std::filesystem::path scratch =
      options.scratch_dir.empty()
          ? std::filesystem::temp_directory_path() / "rcm_upgrade_fuzz"
          : options.scratch_dir;
  std::filesystem::create_directories(scratch);

  for (std::size_t i = 0; i < options.runs; ++i) {
    util::Rng rng = util::Rng::derive(options.seed, i);
    const RunPlan plan = make_service_plan(rng);
    const std::size_t arity = condition_arity(plan.choice.kind);
    const ConditionPtr condition =
        build_condition(plan.choice.kind, plan.choice.param);
    const std::filesystem::path data_dir =
        scratch / ("run-" + std::to_string(options.seed) + "-" +
                   std::to_string(i));
    std::filesystem::remove_all(data_dir);

    // The feed splits at the upgrade point: phase A is the v1 epoch,
    // phase B everything after the binary swap.
    const std::size_t split = plan.feed.size() / 2;
    const std::size_t phase_b_len = plan.feed.size() - split;

    std::size_t kills_done = 0;
    std::size_t restarts = 0;
    std::vector<Alert> displayed;
    std::vector<AlertProvenance> provenance;
    std::vector<std::vector<Update>> journals;

    // ---- phase A: build the pre-upgrade epoch, then drain cleanly ----
    {
      service::AlertService svc{make_config(plan, data_dir)};
      const std::vector<std::uint16_t> ports = svc.replica_ports();
      net::UdpSocket feeder;
      for (std::size_t step = 0; step < split; ++step) {
        const auto framed = wire::frame(wire::encode_update(plan.feed[step]));
        for (const std::uint16_t port : ports)
          send_ignoring_errors(feeder, port, framed);
      }
      (void)svc.await_idle(std::chrono::milliseconds{60},
                           std::chrono::milliseconds{5000});
      svc.drain();
      const auto shown = svc.displayed();
      displayed.insert(displayed.end(), shown.begin(), shown.end());
      const auto prov = svc.provenance();
      provenance.insert(provenance.end(), prov.begin(), prov.end());
      for (std::size_t r = 0; r < plan.replicas; ++r)
        restarts += svc.replica_restarts(r);
    }
    const std::size_t phase_a_displayed = displayed.size();

    // ---- transcode: back-date every durable file to the v1 format ----
    for (std::size_t r = 0; r < plan.replicas; ++r)
      transcode_replica_to_v1(data_dir, condition, r, rng, report);

    std::vector<std::string> violations = forward_compat_checks(
        condition, service::DurableReplica::read_journal(data_dir, 0));

    // The phase-B kill schedule reuses the plan's kills, remapped onto
    // the post-upgrade half of the feed.
    std::vector<KillEvent> kills;
    for (const KillEvent& e : plan.kills) {
      KillEvent mapped = e;
      mapped.at_step = e.at_step % phase_b_len;
      kills.push_back(mapped);
    }
    std::sort(kills.begin(), kills.end(),
              [](const KillEvent& a, const KillEvent& b) {
                return a.at_step < b.at_step;
              });

    // ---- phase B: the upgraded binary over the v1 state ----
    {
      service::AlertService svc{make_config(plan, data_dir)};
      const std::vector<std::uint16_t> ports = svc.replica_ports();
      net::UdpSocket feeder;
      std::vector<std::pair<std::size_t, std::size_t>> manual_restarts;
      std::size_t next_kill = 0;
      for (std::size_t step = 0; step < phase_b_len; ++step) {
        while (next_kill < kills.size() &&
               kills[next_kill].at_step == step) {
          const KillEvent& e = kills[next_kill++];
          svc.kill_replica(e.replica);
          ++kills_done;
          if (!plan.auto_restart)
            manual_restarts.emplace_back(step + e.restart_after, e.replica);
        }
        for (auto it = manual_restarts.begin();
             it != manual_restarts.end();) {
          if (it->first <= step) {
            svc.restart_replica(it->second);
            it = manual_restarts.erase(it);
          } else {
            ++it;
          }
        }
        const auto framed =
            wire::frame(wire::encode_update(plan.feed[split + step]));
        for (const std::uint16_t port : ports)
          send_ignoring_errors(feeder, port, framed);
        // Cross-version duplicate: resend a phase-A update the replicas
        // accepted under the OLD format. The recovered v1 watermarks
        // must drop it; a regression shows up as a journal-monotonicity
        // violation.
        if (split > 0 && rng.bernoulli(0.1)) {
          const Update& dup = plan.feed[static_cast<std::size_t>(
              rng.uniform_int(0, static_cast<std::int64_t>(split) - 1))];
          send_ignoring_errors(
              feeder,
              ports[static_cast<std::size_t>(rng.uniform_int(
                  0, static_cast<std::int64_t>(ports.size()) - 1))],
              wire::frame(wire::encode_update(dup)));
          ++report.duplicate_resends;
        }
      }

      for (std::size_t r = 0; r < plan.replicas; ++r) svc.restart_replica(r);
      for (int attempt = 0; attempt < 40; ++attempt) {
        for (std::size_t var = 0; var < arity; ++var) {
          const auto end = wire::frame(net::encode_end_marker(var));
          for (const std::uint16_t port : ports)
            send_ignoring_errors(feeder, port, end);
        }
        if (svc.await_dm_ends(arity, std::chrono::milliseconds{100})) break;
      }
      (void)svc.await_idle(std::chrono::milliseconds{60},
                           std::chrono::milliseconds{5000});
      svc.drain();

      const auto shown = svc.displayed();
      displayed.insert(displayed.end(), shown.begin(), shown.end());
      const auto prov = svc.provenance();
      provenance.insert(provenance.end(), prov.begin(), prov.end());
      for (std::size_t r = 0; r < plan.replicas; ++r) {
        journals.push_back(svc.replica_journal(r));
        restarts += svc.replica_restarts(r);
      }
    }

    ++report.runs_executed;
    report.total_kills += kills_done;
    report.total_restarts += restarts;
    if (kills_done > 0) ++report.runs_with_kills;
    if (!displayed.empty()) ++report.runs_with_alerts;

    // Same oracle as the crash fuzz, over the concatenated observables
    // of both version epochs. The service restart at the boundary starts
    // a fresh (volatile) AD ledger, so the displayed sequence is two
    // displayer incarnations — ledger-backed guarantees are per epoch.
    std::vector<std::size_t> epochs{phase_a_displayed,
                                    displayed.size() - phase_a_displayed};
    const std::vector<std::string> oracle = check_service_run(
        plan, plan.feed, std::move(journals), std::move(displayed),
        provenance, kills_done, std::move(epochs));
    violations.insert(violations.end(), oracle.begin(), oracle.end());
    if (options.verbose) {
      std::printf("upgrade-fuzz run %zu: %zu+%zu updates, %zu kill(s), "
                  "%zu restart(s)%s\n",
                  i, split, phase_b_len, kills_done, restarts,
                  violations.empty() ? "" : "  ** VIOLATION **");
    }
    if (violations.empty()) {
      std::error_code ec;
      std::filesystem::remove_all(data_dir, ec);  // clean run: no debris
    } else {
      for (const std::string& v : violations)
        report.violations.push_back(
            UpgradeFuzzViolation{i, options.seed, v, data_dir});
    }
  }
  return report;
}

}  // namespace rcm::swarm
