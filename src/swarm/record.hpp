// Replayable swarm counterexample records.
//
// A record packages everything needed to reproduce and audit one failing
// run: the (shrunk) SwarmSpec, the violation kinds observed, the digest
// of the observed execution, and the observed run itself serialized via
// check::encode_system_run. Replaying re-executes the spec on the
// deterministic simulator and compares the fresh execution bit-for-bit
// (digest and serialized run bytes) against the recorded one, then
// re-checks the violations — so a record is simultaneously a regression
// test and an incident report.
//
// On-disk format: one CRC frame (wire/frame.hpp) containing
//   tag 'W' | version | base spec | #units | units (v2+) | #kinds | kinds |
//   digest | run-record bytes (length-prefixed, check::encode_system_run
//   format)
// Version 1 records (written before workload composition existed) have no
// unit section; they decode to a ComposedSpec with an empty unit list and
// replay exactly as recorded.
#pragma once

#include <cstdint>
#include <filesystem>
#include <span>
#include <vector>

#include "swarm/runner.hpp"
#include "swarm/spec.hpp"

namespace rcm::swarm {

/// One packaged counterexample.
struct CounterexampleRecord {
  ComposedSpec spec;
  std::vector<ViolationKind> violation_kinds;
  std::uint64_t digest = 0;            ///< execution_digest of the run
  std::vector<std::uint8_t> run_bytes; ///< check::encode_system_run bytes
};

/// Builds the record for a spec whose execution produced `chk`.
/// Re-executes once to capture the run bytes.
[[nodiscard]] CounterexampleRecord make_record(const ComposedSpec& spec,
                                               const RunCheck& chk);
[[nodiscard]] CounterexampleRecord make_record(const SwarmSpec& spec,
                                               const RunCheck& chk);

[[nodiscard]] std::vector<std::uint8_t> encode_record(
    const CounterexampleRecord& record);
[[nodiscard]] CounterexampleRecord decode_record(
    std::span<const std::uint8_t> bytes);

/// File conveniences (framed, CRC-checked). save overwrites.
void save_record(const std::filesystem::path& path,
                 const CounterexampleRecord& record);
[[nodiscard]] CounterexampleRecord load_record(
    const std::filesystem::path& path);

/// Outcome of replaying a record.
struct ReplayResult {
  bool reproduced = false;     ///< digest matched AND violations re-observed
  bool digest_matched = false; ///< fresh execution == recorded, bit-for-bit
  bool violations_matched = false;  ///< every recorded kind re-observed
  RunCheck check;              ///< the fresh execution's verdicts
};

/// Re-executes the record's spec and compares against the recording.
[[nodiscard]] ReplayResult replay(const CounterexampleRecord& record,
                                  const CheckOptions& options = {});

}  // namespace rcm::swarm
