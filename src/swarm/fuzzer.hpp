// Seeded configuration fuzzer: samples SwarmSpecs across the whole
// scenario space of the paper — condition degree and triggering class,
// trace shape, replica count, filter algorithm, loss/delay spreads, CE
// crash schedules and AD offline windows.
//
// Sampling is a pure function of (master seed, run index): run i of a
// swarm with seed s is the same spec on every machine, every time, which
// is what makes a failing run index reportable and the whole batch
// replayable from two integers.
#pragma once

#include <cstdint>
#include <optional>

#include "swarm/spec.hpp"

namespace rcm::swarm {

/// Knobs restricting the sampled space. Defaults cover everything.
struct FuzzOptions {
  /// Force every spec to use this filter (it must be compatible with the
  /// sampled condition arity; incompatible combinations re-sample the
  /// condition as single-variable). Used to aim the swarm at one
  /// algorithm — e.g. the broken test-only filter.
  std::optional<FilterKind> force_filter;

  /// Bounds on trace length per variable.
  std::size_t min_updates = 8;
  std::size_t max_updates = 50;

  /// Maximum replica count (>= 1).
  std::uint32_t max_ces = 4;

  /// Probability that a spec is lossless / has crashes / has AD offline
  /// windows.
  double lossless_prob = 0.3;
  double crash_prob = 0.4;
  double offline_prob = 0.25;
};

/// Samples the spec for run `index` of the swarm seeded with
/// `master_seed`.
[[nodiscard]] SwarmSpec sample_spec(std::uint64_t master_seed,
                                    std::uint64_t index,
                                    const FuzzOptions& options = {});

}  // namespace rcm::swarm
