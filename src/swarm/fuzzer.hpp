// Seeded configuration fuzzer: samples SwarmSpecs across the whole
// scenario space of the paper — condition degree and triggering class,
// trace shape, replica count, filter algorithm, loss/delay spreads, CE
// crash schedules and AD offline windows.
//
// Sampling is a pure function of (master seed, run index): run i of a
// swarm with seed s is the same spec on every machine, every time, which
// is what makes a failing run index reportable and the whole batch
// replayable from two integers.
#pragma once

#include <cstdint>
#include <optional>

#include "swarm/spec.hpp"
#include "swarm/workload.hpp"

namespace rcm::swarm {

/// Knobs restricting the sampled space. Defaults cover everything.
struct FuzzOptions {
  /// Force every spec to use this filter (it must be compatible with the
  /// sampled condition arity; incompatible combinations re-sample the
  /// condition as single-variable). Used to aim the swarm at one
  /// algorithm — e.g. the broken test-only filter.
  std::optional<FilterKind> force_filter;

  /// Bounds on trace length per variable.
  std::size_t min_updates = 8;
  std::size_t max_updates = 50;

  /// Maximum replica count (>= 1).
  std::uint32_t max_ces = 4;

  /// Probability that a spec is lossless / has crashes / has AD offline
  /// windows.
  double lossless_prob = 0.3;
  double crash_prob = 0.4;
  double offline_prob = 0.25;

  /// Workload composition (sample_composed only). When no workload is
  /// forced, a spec gets units with probability `workload_prob`, uniformly
  /// 1..max_workloads of them; min_workloads > 0 instead guarantees at
  /// least that many on every spec. force_workload pins every spec to
  /// exactly one unit of that kind (the per-kind smoke/meta-test mode).
  double workload_prob = 0.35;
  std::size_t min_workloads = 0;
  std::size_t max_workloads = 3;
  std::optional<WorkloadKind> force_workload;
};

/// Samples the spec for run `index` of the swarm seeded with
/// `master_seed`.
[[nodiscard]] SwarmSpec sample_spec(std::uint64_t master_seed,
                                    std::uint64_t index,
                                    const FuzzOptions& options = {});

/// Samples the composed spec (base + workload units) for run `index`.
/// The base is bit-identical to sample_spec with the same arguments: the
/// workload draws happen strictly after the base's on the run's stream.
[[nodiscard]] ComposedSpec sample_composed(std::uint64_t master_seed,
                                           std::uint64_t index,
                                           const FuzzOptions& options = {});

}  // namespace rcm::swarm
