#include "swarm/spec.hpp"

#include <cmath>
#include <memory>
#include <stdexcept>

#include "trace/trace_io.hpp"
#include "wire/buffer.hpp"

namespace rcm::sim {

bool operator==(const CrashWindow& a, const CrashWindow& b) {
  return a.down_at == b.down_at && a.up_at == b.up_at &&
         a.lose_state == b.lose_state;
}

}  // namespace rcm::sim

namespace rcm::swarm {
namespace {

constexpr VarId kX = 0;
constexpr VarId kY = 1;
constexpr std::uint8_t kSpecVersion = 1;
constexpr std::uint64_t kMaxCount = 1u << 16;

ConditionPtr band_condition(double param) {
  return std::make_shared<const PredicateCondition>(
      "swarm.band", std::vector<std::pair<VarId, int>>{{kX, 1}, {kY, 1}},
      Triggering::kAggressive, [param](const HistorySet& h) {
        const double d = std::abs(h.of(kX).at(0).value - h.of(kY).at(0).value);
        return d > param && d < param + 25.0;
      });
}

ConditionPtr rise2d_condition(double param, Triggering trig) {
  const char* name = trig == Triggering::kConservative ? "swarm.rise2d.cons"
                                                       : "swarm.rise2d.aggr";
  return std::make_shared<const PredicateCondition>(
      name, std::vector<std::pair<VarId, int>>{{kX, 2}, {kY, 2}}, trig,
      [param](const HistorySet& h) {
        const double dx = h.of(kX).at(0).value - h.of(kX).at(-1).value;
        const double dy = h.of(kY).at(0).value - h.of(kY).at(-1).value;
        return dx + dy > param;
      });
}

}  // namespace

std::size_t condition_arity(ConditionKind kind) {
  switch (kind) {
    case ConditionKind::kThreshold:
    case ConditionKind::kRiseAggressive:
    case ConditionKind::kRiseConservative:
      return 1;
    case ConditionKind::kAbsDiff:
    case ConditionKind::kBand:
    case ConditionKind::kRise2dAggressive:
    case ConditionKind::kRise2dConservative:
      return 2;
  }
  throw std::invalid_argument("condition_arity: unknown kind");
}

ConditionPtr build_condition(ConditionKind kind, double param) {
  switch (kind) {
    case ConditionKind::kThreshold:
      return std::make_shared<const ThresholdCondition>("swarm.over", kX,
                                                        param);
    case ConditionKind::kRiseAggressive:
      return std::make_shared<const RiseCondition>("swarm.rise.aggr", kX,
                                                   param,
                                                   Triggering::kAggressive);
    case ConditionKind::kRiseConservative:
      return std::make_shared<const RiseCondition>("swarm.rise.cons", kX,
                                                   param,
                                                   Triggering::kConservative);
    case ConditionKind::kAbsDiff:
      return std::make_shared<const AbsDiffCondition>("swarm.diff", kX, kY,
                                                      param);
    case ConditionKind::kBand:
      return band_condition(param);
    case ConditionKind::kRise2dAggressive:
      return rise2d_condition(param, Triggering::kAggressive);
    case ConditionKind::kRise2dConservative:
      return rise2d_condition(param, Triggering::kConservative);
  }
  throw std::invalid_argument("build_condition: unknown kind");
}

sim::SystemConfig SwarmSpec::to_system_config() const {
  sim::SystemConfig config;
  config.condition = build_condition(cond_kind, cond_param);
  config.dm_traces = traces;
  config.num_ces = num_ces;
  config.front = front;
  config.back = back;
  config.filter = filter;
  config.ce_crashes = crashes;
  config.seed = seed;
  return config;
}

std::size_t SwarmSpec::size() const {
  std::size_t n = total_updates();
  for (const auto& windows : crashes) n += windows.size();
  n += ad_offline.size();
  n += num_ces > 0 ? num_ces - 1 : 0;
  return n;
}

std::size_t SwarmSpec::total_updates() const {
  std::size_t n = 0;
  for (const auto& trace : traces) n += trace.size();
  return n;
}

bool operator==(const SwarmSpec& a, const SwarmSpec& b) {
  auto trace_eq = [](const trace::Trace& x, const trace::Trace& y) {
    if (x.size() != y.size()) return false;
    for (std::size_t i = 0; i < x.size(); ++i)
      if (x[i].time != y[i].time || !(x[i].update == y[i].update))
        return false;
    return true;
  };
  if (a.traces.size() != b.traces.size()) return false;
  for (std::size_t i = 0; i < a.traces.size(); ++i)
    if (!trace_eq(a.traces[i], b.traces[i])) return false;
  return a.cond_kind == b.cond_kind && a.cond_param == b.cond_param &&
         a.num_ces == b.num_ces &&
         a.front.delay_min == b.front.delay_min &&
         a.front.delay_max == b.front.delay_max &&
         a.front.loss == b.front.loss &&
         a.back.delay_min == b.back.delay_min &&
         a.back.delay_max == b.back.delay_max && a.back.loss == b.back.loss &&
         a.filter == b.filter && a.crashes == b.crashes &&
         a.ad_offline == b.ad_offline && a.seed == b.seed;
}

exp::Scenario classify_scenario(const SwarmSpec& spec) {
  bool crashes_anywhere = false;
  for (const auto& windows : spec.crashes)
    crashes_anywhere = crashes_anywhere || !windows.empty();
  if (spec.front.loss == 0.0 && !crashes_anywhere)
    return exp::Scenario::kLossless;
  return lossy_row(spec.cond_kind);
}

exp::Scenario lossy_row(ConditionKind kind) {
  switch (kind) {
    case ConditionKind::kThreshold:
    case ConditionKind::kAbsDiff:
    case ConditionKind::kBand:
      return exp::lossy_scenario(false, Triggering::kAggressive);
    case ConditionKind::kRiseConservative:
    case ConditionKind::kRise2dConservative:
      return exp::lossy_scenario(true, Triggering::kConservative);
    case ConditionKind::kRiseAggressive:
    case ConditionKind::kRise2dAggressive:
      return exp::lossy_scenario(true, Triggering::kAggressive);
  }
  throw std::invalid_argument("lossy_row: unknown kind");
}

exp::PaperClaim guaranteed_properties(const SwarmSpec& spec) {
  const bool multi = condition_arity(spec.cond_kind) > 1;
  const FilterKind claimed = spec.filter == FilterKind::kBrokenAd2
                                 ? FilterKind::kAd2
                                 : spec.filter;
  return exp::paper_claim(claimed, classify_scenario(spec), multi);
}

void encode_spec(wire::Writer& w, const SwarmSpec& spec) {
  w.u8(kSpecVersion);
  w.u8(static_cast<std::uint8_t>(spec.cond_kind));
  w.f64(spec.cond_param);
  w.varint(spec.traces.size());
  for (const auto& trace : spec.traces) trace::encode_trace(w, trace);
  w.varint(spec.num_ces);
  for (const sim::LinkParams* p : {&spec.front, &spec.back}) {
    w.f64(p->delay_min);
    w.f64(p->delay_max);
    w.f64(p->loss);
  }
  w.u8(static_cast<std::uint8_t>(spec.filter));
  w.varint(spec.crashes.size());
  for (const auto& windows : spec.crashes) {
    w.varint(windows.size());
    for (const sim::CrashWindow& cw : windows) {
      w.f64(cw.down_at);
      w.f64(cw.up_at);
      w.u8(cw.lose_state ? 1 : 0);
    }
  }
  w.varint(spec.ad_offline.size());
  for (const auto& [from, to] : spec.ad_offline) {
    w.f64(from);
    w.f64(to);
  }
  w.u64(spec.seed);
}

SwarmSpec decode_spec(wire::Reader& r) {
  if (r.u8() != kSpecVersion)
    throw wire::DecodeError("unsupported swarm spec version");
  SwarmSpec spec;
  const std::uint8_t kind = r.u8();
  if (kind > static_cast<std::uint8_t>(ConditionKind::kRise2dConservative))
    throw wire::DecodeError("unknown condition kind");
  spec.cond_kind = static_cast<ConditionKind>(kind);
  spec.cond_param = r.f64();
  if (!std::isfinite(spec.cond_param))
    throw wire::DecodeError("condition parameter not finite");
  const std::uint64_t num_traces = r.varint();
  if (num_traces > 16) throw wire::DecodeError("too many traces");
  for (std::uint64_t i = 0; i < num_traces; ++i)
    spec.traces.push_back(trace::decode_trace(r, kMaxCount));
  const std::uint64_t ces = r.varint();
  if (ces == 0 || ces > 64) throw wire::DecodeError("bad replica count");
  spec.num_ces = static_cast<std::uint32_t>(ces);
  for (sim::LinkParams* p : {&spec.front, &spec.back}) {
    p->delay_min = r.f64();
    p->delay_max = r.f64();
    p->loss = r.f64();
    if (!(p->delay_min >= 0.0) || !(p->delay_max >= p->delay_min) ||
        !(p->loss >= 0.0) || !(p->loss <= 1.0))
      throw wire::DecodeError("bad link parameters");
  }
  if (spec.back.loss != 0.0)
    throw wire::DecodeError("back links must be lossless");
  const std::uint8_t filter = r.u8();
  if (filter > static_cast<std::uint8_t>(FilterKind::kBrokenAd2))
    throw wire::DecodeError("unknown filter kind");
  spec.filter = static_cast<FilterKind>(filter);
  const std::uint64_t crash_rows = r.varint();
  if (crash_rows > 64) throw wire::DecodeError("too many crash rows");
  for (std::uint64_t i = 0; i < crash_rows; ++i) {
    const std::uint64_t count = r.varint();
    if (count > kMaxCount) throw wire::DecodeError("too many crash windows");
    std::vector<sim::CrashWindow> windows;
    for (std::uint64_t j = 0; j < count; ++j) {
      sim::CrashWindow cw;
      cw.down_at = r.f64();
      cw.up_at = r.f64();
      cw.lose_state = r.u8() != 0;
      if (!(cw.down_at >= 0.0) || !(cw.up_at >= cw.down_at))
        throw wire::DecodeError("bad crash window");
      windows.push_back(cw);
    }
    spec.crashes.push_back(std::move(windows));
  }
  const std::uint64_t offline = r.varint();
  if (offline > kMaxCount) throw wire::DecodeError("too many offline windows");
  double last = -1.0;
  for (std::uint64_t i = 0; i < offline; ++i) {
    const double from = r.f64();
    const double to = r.f64();
    if (!(from >= 0.0) || !(to > from) || !(from > last))
      throw wire::DecodeError("bad offline window");
    last = to;
    spec.ad_offline.emplace_back(from, to);
  }
  spec.seed = r.u64();
  return spec;
}

}  // namespace rcm::swarm
