// Shared machinery for the service-level fuzz modes (service_fuzz.hpp's
// crash-recovery fuzz and upgrade_fuzz.hpp's mixed-version fuzz): the
// randomized run plan, the UDP feed helper, and the two-layer oracle
// (mechanical journal/provenance invariants + the paper's property
// table for the observed (filter, scenario) cell).
//
// Factored out so both modes check EXACTLY the same invariants — the
// upgrade fuzzer's claim is precisely "the crash-fuzz oracle still
// holds when the durable state crossed a format-version boundary".
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/alert.hpp"
#include "core/displayer.hpp"
#include "core/filters.hpp"
#include "core/types.hpp"
#include "exp/scenarios.hpp"
#include "net/socket.hpp"
#include "service/alert_service.hpp"
#include "swarm/spec.hpp"
#include "util/rng.hpp"

namespace rcm::swarm {

/// A condition kind with the trigger parameter it gets when values are
/// uniform in [0, 100] — hot enough that alerts (and thus filter
/// decisions) actually happen in short runs — and its lossy table row.
struct KindChoice {
  ConditionKind kind = ConditionKind::kThreshold;
  double param = 60.0;
  exp::Scenario lossy_row = exp::Scenario::kLossyNonHistorical;
};

struct KillEvent {
  std::size_t at_step = 0;       ///< feed position the kill fires before
  std::size_t replica = 0;
  std::size_t restart_after = 0; ///< steps until a manual restart (manual
                                 ///< mode only)
};

struct RunPlan {
  KindChoice choice{};
  std::size_t replicas = 2;
  FilterKind filter = FilterKind::kAd1;
  std::size_t checkpoint_every = 8;
  std::size_t updates_per_var = 60;
  bool auto_restart = false;
  double dup_prob = 0.0;
  std::vector<KillEvent> kills;
  std::vector<Update> feed;  ///< interleaved across variables
};

/// Samples one run plan: condition kind, a filter with a paper-claim
/// table for its arity, replica/checkpoint shape, an interleaved feed
/// with per-variable ascending seqnos, and a kill schedule.
[[nodiscard]] RunPlan make_service_plan(util::Rng& rng);

/// UDP send that treats a dead replica port as the lossy link it is.
void send_ignoring_errors(net::UdpSocket& socket, std::uint16_t port,
                          std::span<const std::uint8_t> bytes);

/// The crash/upgrade-fuzz oracle: journal invariants, displayed ⊆
/// raised, provenance consistency, then the paper table for the cell
/// classified from the observed journals. Returns one description per
/// violation; empty = clean.
///
/// `displayer_epochs` partitions `displayed` (in order) into displayer
/// incarnations — prefix lengths, summing to displayed.size(). The
/// AD ledger is volatile, so the cross-alert guarantees it provides
/// (orderedness, consistency) are per-incarnation claims and are
/// checked per epoch; completeness and every mechanical invariant are
/// ledger-free and always checked over the union. Empty = one epoch.
[[nodiscard]] std::vector<std::string> check_service_run(
    const RunPlan& plan, const std::vector<Update>& sent,
    std::vector<std::vector<Update>> journals, std::vector<Alert> displayed,
    const std::vector<AlertProvenance>& provenance, std::size_t kills,
    std::vector<std::size_t> displayer_epochs = {});

}  // namespace rcm::swarm
