#include "swarm/service_fuzz.hpp"

#include <algorithm>
#include <cstdio>
#include <map>
#include <set>
#include <sstream>
#include <system_error>
#include <utility>

#include "check/properties.hpp"
#include "core/displayer.hpp"
#include "core/evaluator.hpp"
#include "exp/table_experiment.hpp"
#include "net/deployment.hpp"
#include "net/socket.hpp"
#include "service/alert_service.hpp"
#include "swarm/spec.hpp"
#include "util/rng.hpp"
#include "wire/codec.hpp"
#include "wire/frame.hpp"

namespace rcm::swarm {
namespace {

// Condition kinds with the trigger parameter each gets when values are
// uniform in [0, 100] — hot enough that alerts (and thus filter
// decisions) actually happen in short runs.
struct KindChoice {
  ConditionKind kind;
  double param;
  exp::Scenario lossy_row;
};
constexpr KindChoice kKinds[] = {
    {ConditionKind::kThreshold, 60.0, exp::Scenario::kLossyNonHistorical},
    {ConditionKind::kRiseAggressive, 20.0, exp::Scenario::kLossyAggressive},
    {ConditionKind::kRiseConservative, 20.0,
     exp::Scenario::kLossyConservative},
    {ConditionKind::kAbsDiff, 30.0, exp::Scenario::kLossyNonHistorical},
    {ConditionKind::kBand, 30.0, exp::Scenario::kLossyNonHistorical},
    {ConditionKind::kRise2dAggressive, 25.0,
     exp::Scenario::kLossyAggressive},
    {ConditionKind::kRise2dConservative, 25.0,
     exp::Scenario::kLossyConservative},
};

// Filters with a paper-claim table for the arity (see exp::paper_claim).
constexpr FilterKind kSingleVarFilters[] = {FilterKind::kAd1, FilterKind::kAd2,
                                            FilterKind::kAd3,
                                            FilterKind::kAd4};
constexpr FilterKind kMultiVarFilters[] = {FilterKind::kAd1, FilterKind::kAd5,
                                           FilterKind::kAd6};

struct KillEvent {
  std::size_t at_step = 0;       ///< feed position the kill fires before
  std::size_t replica = 0;
  std::size_t restart_after = 0; ///< steps until a manual restart (manual
                                 ///< mode only)
};

struct RunPlan {
  KindChoice choice{};
  std::size_t replicas = 2;
  FilterKind filter = FilterKind::kAd1;
  std::size_t checkpoint_every = 8;
  std::size_t updates_per_var = 60;
  bool auto_restart = false;
  double dup_prob = 0.0;
  std::vector<KillEvent> kills;
  std::vector<Update> feed;  ///< interleaved across variables
};

RunPlan make_plan(util::Rng& rng) {
  RunPlan plan;
  plan.choice = kKinds[static_cast<std::size_t>(
      rng.uniform_int(0, std::size(kKinds) - 1))];
  const std::size_t arity = condition_arity(plan.choice.kind);
  if (arity == 1) {
    plan.filter = kSingleVarFilters[static_cast<std::size_t>(
        rng.uniform_int(0, std::size(kSingleVarFilters) - 1))];
  } else {
    plan.filter = kMultiVarFilters[static_cast<std::size_t>(
        rng.uniform_int(0, std::size(kMultiVarFilters) - 1))];
  }
  plan.replicas = static_cast<std::size_t>(rng.uniform_int(1, 3));
  constexpr std::size_t kCheckpointChoices[] = {1, 3, 8, 32, 117};
  plan.checkpoint_every = kCheckpointChoices[static_cast<std::size_t>(
      rng.uniform_int(0, std::size(kCheckpointChoices) - 1))];
  plan.updates_per_var = static_cast<std::size_t>(rng.uniform_int(30, 120));
  plan.auto_restart = rng.bernoulli(0.5);
  plan.dup_prob = rng.bernoulli(0.5) ? 0.05 : 0.0;

  // Interleaved feed: per-variable seqnos ascend; the interleaving across
  // variables is random.
  std::vector<SeqNo> next_seqno(arity, 1);
  std::vector<std::size_t> remaining(arity, plan.updates_per_var);
  std::size_t total = arity * plan.updates_per_var;
  plan.feed.reserve(total);
  while (total > 0) {
    std::size_t var;
    do {
      var = static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(arity) - 1));
    } while (remaining[var] == 0);
    plan.feed.push_back(Update{static_cast<VarId>(var), next_seqno[var]++,
                               rng.uniform(0.0, 100.0)});
    --remaining[var];
    --total;
  }

  const std::size_t kill_count =
      static_cast<std::size_t>(rng.uniform_int(0, 3));
  for (std::size_t k = 0; k < kill_count; ++k) {
    KillEvent e;
    e.at_step = static_cast<std::size_t>(
        rng.uniform_int(1, static_cast<std::int64_t>(plan.feed.size()) - 1));
    e.replica = static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(plan.replicas) - 1));
    e.restart_after = static_cast<std::size_t>(rng.uniform_int(1, 20));
    plan.kills.push_back(e);
  }
  std::sort(plan.kills.begin(), plan.kills.end(),
            [](const KillEvent& a, const KillEvent& b) {
              return a.at_step < b.at_step;
            });
  return plan;
}

void send_ignoring_errors(net::UdpSocket& socket, std::uint16_t port,
                          std::span<const std::uint8_t> bytes) {
  try {
    socket.send_to(port, bytes);
  } catch (const std::system_error&) {
    // A closed replica port can surface as ECONNREFUSED on a later send
    // (ICMP unreachable); that IS the lossy link, not an error.
  }
}

/// One violation list for one executed plan; empty = clean.
std::vector<std::string> check_run(
    const RunPlan& plan, const std::vector<Update>& sent,
    std::vector<std::vector<Update>> journals, std::vector<Alert> displayed,
    const std::vector<AlertProvenance>& provenance, std::size_t kills) {
  std::vector<std::string> violations;
  const ConditionPtr condition =
      build_condition(plan.choice.kind, plan.choice.param);
  const std::size_t arity = condition_arity(plan.choice.kind);

  // Index the sent stream: (var, seqno) -> value.
  std::map<std::pair<VarId, SeqNo>, double> sent_index;
  for (const Update& u : sent) sent_index[{u.var, u.seqno}] = u.value;

  // Invariant 1: journals are per-variable strictly-increasing
  // subsequences of the sent stream.
  for (std::size_t i = 0; i < journals.size(); ++i) {
    std::map<VarId, SeqNo> last;
    for (const Update& u : journals[i]) {
      const auto it = sent_index.find({u.var, u.seqno});
      if (it == sent_index.end() || it->second != u.value) {
        std::ostringstream out;
        out << "journal " << i << " contains update (var " << u.var
            << ", seq " << u.seqno << ") that was never sent";
        violations.push_back(out.str());
        continue;
      }
      const auto lit = last.find(u.var);
      if (lit != last.end() && u.seqno <= lit->second) {
        std::ostringstream out;
        out << "journal " << i << " not strictly increasing for var "
            << u.var << " at seq " << u.seqno;
        violations.push_back(out.str());
      }
      last[u.var] = u.seqno;
    }
  }

  // Invariant 2: every displayed alert was raised by some incarnation of
  // some replica — displayed keys ⊆ ∪_i keys(T(journal_i)).
  std::set<AlertKey> raised;
  std::size_t raised_count = 0;
  for (const auto& journal : journals) {
    for (const Alert& a : evaluate_trace(condition, journal)) {
      raised.insert(a.key());
      ++raised_count;
    }
  }
  for (const Alert& a : displayed) {
    if (!raised.contains(a.key())) {
      violations.push_back("displayed alert no replica raised: " +
                           a.key().cond);
      break;
    }
  }

  // Invariant 3: provenance records stay consistent with the journal
  // invariants — every displayed alert has exactly one displayed=true
  // record (in order) whose triggering (var, seq) updates all appear in
  // at least one replica journal, i.e. provenance never names an update
  // the durable layer does not know about.
  std::set<std::pair<VarId, SeqNo>> journaled;
  for (const auto& journal : journals)
    for (const Update& u : journal) journaled.emplace(u.var, u.seqno);
  std::vector<const AlertProvenance*> shown;
  for (const AlertProvenance& p : provenance)
    if (p.displayed) shown.push_back(&p);
  if (shown.size() != displayed.size()) {
    std::ostringstream out;
    out << "provenance shows " << shown.size() << " displayed record(s) but "
        << displayed.size() << " alert(s) were displayed";
    violations.push_back(out.str());
  } else {
    for (std::size_t k = 0; k < displayed.size(); ++k) {
      const AlertProvenance& p = *shown[k];
      std::vector<std::pair<VarId, SeqNo>> expect;
      for (const auto& [var, seqs] : displayed[k].key().signature)
        for (SeqNo s : seqs) expect.emplace_back(var, s);
      if (p.cond != displayed[k].cond || p.triggers != expect) {
        std::ostringstream out;
        out << "provenance record " << p.arrival_index
            << " does not match displayed alert " << k << " ("
            << displayed[k].cond << ")";
        violations.push_back(out.str());
        break;
      }
      bool unjournaled = false;
      for (const auto& trig : p.triggers)
        if (!journaled.contains(trig)) unjournaled = true;
      if (unjournaled) {
        std::ostringstream out;
        out << "provenance of displayed alert " << k
            << " names a trigger absent from every replica journal";
        violations.push_back(out.str());
        break;
      }
    }
  }
  for (const AlertProvenance& p : provenance) {
    if (p.reason == nullptr || p.reason[0] == '\0' ||
        p.filter != std::string(filter_kind_name(plan.filter))) {
      violations.push_back("provenance record missing verdict reason or "
                           "filter name");
      break;
    }
  }

  // Paper-table oracle for the observed scenario. A replica that
  // accepted every sent update makes no difference from a lossless one,
  // whether or not it was killed; any miss puts the run in the lossy row
  // of the condition's class.
  bool missed = false;
  for (const auto& journal : journals)
    if (journal.size() != sent.size()) missed = true;
  const exp::Scenario scenario =
      missed ? plan.choice.lossy_row : exp::Scenario::kLossless;
  const exp::PaperClaim claim =
      exp::paper_claim(plan.filter, scenario, arity > 1);

  check::SystemRun run;
  run.condition = condition;
  run.ce_inputs = std::move(journals);
  run.displayed = std::move(displayed);
  const check::PropertyReport report = check::check_run(run);

  const auto note = [&](const char* property, bool claimed,
                        check::Verdict verdict) {
    if (claimed && verdict == check::Verdict::kViolated) {
      std::ostringstream out;
      out << "guaranteed " << property << " violated ("
          << std::string(filter_kind_name(plan.filter)) << ", "
          << exp::scenario_name(scenario) << ", " << kills << " kill(s), "
          << raised_count << " raised)";
      violations.push_back(out.str());
    }
  };
  note("orderedness", claim.ordered, report.ordered);
  note("completeness", claim.complete, report.complete);
  note("consistency", claim.consistent, report.consistent);
  return violations;
}

}  // namespace

ServiceFuzzReport run_service_fuzz(const ServiceFuzzOptions& options) {
  ServiceFuzzReport report;
  const std::filesystem::path scratch =
      options.scratch_dir.empty()
          ? std::filesystem::temp_directory_path() / "rcm_service_fuzz"
          : options.scratch_dir;
  std::filesystem::create_directories(scratch);

  for (std::size_t i = 0; i < options.runs; ++i) {
    util::Rng rng = util::Rng::derive(options.seed, i);
    const RunPlan plan = make_plan(rng);
    const std::size_t arity = condition_arity(plan.choice.kind);
    const std::filesystem::path data_dir =
        scratch / ("run-" + std::to_string(options.seed) + "-" +
                   std::to_string(i));
    std::filesystem::remove_all(data_dir);

    service::ServiceConfig config;
    config.condition = build_condition(plan.choice.kind, plan.choice.param);
    config.num_replicas = plan.replicas;
    config.filter = plan.filter;
    config.data_dir = data_dir;
    config.checkpoint_every = plan.checkpoint_every;
    config.record_journal = true;
    config.auto_restart = plan.auto_restart;
    config.backoff.initial = std::chrono::milliseconds{1};
    config.backoff.max = std::chrono::milliseconds{50};
    config.backoff.reset_after = std::chrono::milliseconds{1};
    config.poll_interval = std::chrono::milliseconds{5};

    std::size_t kills_done = 0;
    std::vector<std::vector<Update>> journals;
    std::vector<Alert> displayed;
    std::vector<AlertProvenance> provenance;
    std::size_t restarts = 0;
    {
      service::AlertService svc{std::move(config)};
      const std::vector<std::uint16_t> ports = svc.replica_ports();
      net::UdpSocket feeder;

      // (step -> pending manual restarts) computed as we go.
      std::vector<std::pair<std::size_t, std::size_t>> manual_restarts;
      std::size_t next_kill = 0;
      for (std::size_t step = 0; step < plan.feed.size(); ++step) {
        while (next_kill < plan.kills.size() &&
               plan.kills[next_kill].at_step == step) {
          const KillEvent& e = plan.kills[next_kill++];
          svc.kill_replica(e.replica);
          ++kills_done;
          if (!plan.auto_restart)
            manual_restarts.emplace_back(step + e.restart_after, e.replica);
        }
        for (auto it = manual_restarts.begin();
             it != manual_restarts.end();) {
          if (it->first <= step) {
            svc.restart_replica(it->second);
            it = manual_restarts.erase(it);
          } else {
            ++it;
          }
        }
        const auto framed =
            wire::frame(wire::encode_update(plan.feed[step]));
        for (const std::uint16_t port : ports)
          send_ignoring_errors(feeder, port, framed);
        if (plan.dup_prob > 0 && rng.bernoulli(plan.dup_prob))
          send_ignoring_errors(
              feeder,
              ports[static_cast<std::size_t>(rng.uniform_int(
                  0, static_cast<std::int64_t>(ports.size()) - 1))],
              framed);
      }

      // Bring everyone back so the END markers land somewhere durable,
      // then repeat them (idempotent) until the service has them all.
      for (std::size_t r = 0; r < plan.replicas; ++r) svc.restart_replica(r);
      for (int attempt = 0; attempt < 40; ++attempt) {
        for (std::size_t var = 0; var < arity; ++var) {
          const auto end = wire::frame(net::encode_end_marker(var));
          for (const std::uint16_t port : ports)
            send_ignoring_errors(feeder, port, end);
        }
        if (svc.await_dm_ends(arity, std::chrono::milliseconds{100})) break;
      }
      (void)svc.await_idle(std::chrono::milliseconds{60},
                           std::chrono::milliseconds{5000});
      svc.drain();

      displayed = svc.displayed();
      provenance = svc.provenance();
      for (std::size_t r = 0; r < plan.replicas; ++r) {
        journals.push_back(svc.replica_journal(r));
        restarts += svc.replica_restarts(r);
      }
    }

    ++report.runs_executed;
    report.total_kills += kills_done;
    report.total_restarts += restarts;
    if (kills_done > 0) ++report.runs_with_kills;
    if (!displayed.empty()) ++report.runs_with_alerts;

    const std::vector<std::string> violations = check_run(
        plan, plan.feed, std::move(journals), std::move(displayed),
        provenance, kills_done);
    if (options.verbose) {
      std::printf("service-fuzz run %zu: %zu updates, %zu kill(s), "
                  "%zu restart(s)%s\n",
                  i, plan.feed.size(), kills_done, restarts,
                  violations.empty() ? "" : "  ** VIOLATION **");
    }
    if (violations.empty()) {
      std::error_code ec;
      std::filesystem::remove_all(data_dir, ec);  // clean run: no debris
    } else {
      for (const std::string& v : violations)
        report.violations.push_back(
            ServiceFuzzViolation{i, options.seed, v, data_dir});
    }
  }
  return report;
}

}  // namespace rcm::swarm
