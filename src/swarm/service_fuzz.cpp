#include "swarm/service_fuzz.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <optional>
#include <sstream>
#include <system_error>
#include <thread>
#include <utility>

#include <map>

#include "net/deployment.hpp"
#include "net/socket.hpp"
#include "service/alert_service.hpp"
#include "service/health.hpp"
#include "service/shard_cluster.hpp"
#include "service/shard_ring.hpp"
#include "swarm/fuzz_plan.hpp"
#include "util/rng.hpp"
#include "wire/codec.hpp"
#include "wire/frame.hpp"
#include "wire/session.hpp"
#include "wire/shard.hpp"

namespace rcm::swarm {
namespace {

using Clock = std::chrono::steady_clock;

// ---- durable-session subscriber fault units ---------------------------

struct SubscriberPlan {
  std::string id;
  bool slow = false;            ///< sleep between reads (evictable)
  bool stale_cursor = false;    ///< every hello requests index 0
  bool garbage_cursor = false;  ///< first hello requests far beyond the end
  std::size_t kills = 0;        ///< abrupt closes mid-stream
  std::size_t ack_every = 1;    ///< ack cadence in received alerts
};

struct SessionConnLog {
  std::uint64_t requested = 0;  ///< `from` this connection asked for
  bool got_welcome = false;
  wire::SessionWelcome welcome;
  std::vector<std::uint64_t> indices;  ///< alert indices, arrival order
  bool evicted = false;  ///< server sent a typed evicted notice
  bool killed = false;   ///< client closed abruptly (fault injection)
  std::size_t corrupt = 0;  ///< CRC failures (TCP must deliver none)
};

struct SubscriberLog {
  SubscriberPlan plan;
  std::vector<SessionConnLog> conns;
  std::vector<std::pair<std::uint64_t, Alert>> alerts;
  std::uint64_t next_needed = 0;  ///< last received index + 1
};

struct SessionFuzzPlan {
  bool enabled = false;
  service::SessionLimits limits;
  std::vector<SubscriberPlan> subscribers;
  bool reopen = false;  ///< replay a cursor across a service restart
};

SessionFuzzPlan make_session_plan(util::Rng& rng) {
  SessionFuzzPlan plan;
  plan.enabled = rng.bernoulli(0.75);
  if (!plan.enabled) return plan;
  // Tiny limits so short runs actually exercise eviction, truncation
  // and the lag alert, not just the happy path.
  constexpr std::size_t kBacklogs[] = {8, 16, 64};
  plan.limits.max_backlog = kBacklogs[static_cast<std::size_t>(
      rng.uniform_int(0, std::size(kBacklogs) - 1))];
  plan.limits.retention = plan.limits.max_backlog + 1 +
                          static_cast<std::size_t>(rng.uniform_int(0, 64));
  plan.limits.lag_alert_budget = 4;
  const std::size_t count = static_cast<std::size_t>(rng.uniform_int(1, 3));
  for (std::size_t s = 0; s < count; ++s) {
    SubscriberPlan sub;
    sub.id = "sub-" + std::to_string(s);
    sub.slow = rng.bernoulli(0.3);
    sub.stale_cursor = rng.bernoulli(0.2);
    sub.garbage_cursor = !sub.stale_cursor && rng.bernoulli(0.2);
    sub.kills = static_cast<std::size_t>(rng.uniform_int(0, 2));
    sub.ack_every = static_cast<std::size_t>(rng.uniform_int(1, 4));
    plan.subscribers.push_back(std::move(sub));
  }
  if (plan.subscribers.size() >= 2 && rng.bernoulli(0.25))
    plan.subscribers[1].id = plan.subscribers[0].id;  // duplicate-id fight
  plan.reopen = rng.bernoulli(0.4);
  return plan;
}

/// One subscriber thread: connect with a session hello, record everything
/// received, inject the plan's faults, reconnect after server-side closes
/// (eviction, supersede) until the service drains.
void run_subscriber_agent(std::uint16_t port, std::uint64_t seed,
                          const std::atomic<bool>& draining,
                          SubscriberLog& log) {
  util::Rng rng = util::Rng::derive(seed, 0x5e55);
  const SubscriberPlan& plan = log.plan;
  std::size_t kills_left = plan.kills;
  std::size_t reconnect_budget = plan.kills + 8;
  bool first = true;
  const auto deadline = Clock::now() + std::chrono::seconds{20};
  // Once the run is draining no new connection can be welcomed, so a
  // reconnect would only wait out the deadline against a dead service;
  // an in-flight connection still reads to its FIN (the drain flush).
  while (!draining.load(std::memory_order_acquire) &&
         Clock::now() < deadline) {
    SessionConnLog conn;
    if (first && plan.garbage_cursor)
      conn.requested = (std::uint64_t{1} << 40) +
                       static_cast<std::uint64_t>(rng.uniform_int(0, 1000));
    else if (plan.stale_cursor)
      conn.requested = 0;
    else
      conn.requested = log.next_needed;
    first = false;

    std::optional<net::TcpStream> stream;
    try {
      stream = net::TcpStream::connect(port);
      wire::SessionHello hello;
      hello.session_id = plan.id;
      hello.from = conn.requested;
      stream->write_all(wire::frame(wire::encode_session_hello(hello)));
    } catch (const std::system_error&) {
      return;  // service gone: drain raced the connect
    }

    wire::FrameCursor frames;
    const std::size_t kill_after =
        kills_left > 0 ? 1 + static_cast<std::size_t>(rng.uniform_int(0, 24))
                       : static_cast<std::size_t>(-1);
    std::size_t got = 0;
    bool open = true;
    bool clean_eof = false;
    while (open && Clock::now() < deadline) {
      if (plan.slow)
        std::this_thread::sleep_for(
            std::chrono::milliseconds{rng.uniform_int(1, 6)});
      std::optional<std::vector<std::uint8_t>> chunk;
      try {
        chunk = stream->read_some(std::chrono::milliseconds{100});
      } catch (const std::system_error&) {
        break;  // reset from the server counts as a close
      }
      if (!chunk) continue;  // timeout: live tail, keep waiting
      if (chunk->empty()) {
        clean_eof = true;  // orderly FIN (drain, supersede or eviction)
        break;
      }
      frames.feed(*chunk);
      while (auto payload = frames.next()) {
        if (payload->empty()) continue;
        if (!conn.got_welcome) {
          if ((*payload)[0] != wire::kSessionWelcomeTag)
            continue;  // legacy frame raced the hello; not session state
          conn.welcome = wire::decode_session_welcome(*payload);
          conn.got_welcome = true;
          continue;
        }
        const wire::SessionRecord rec =
            wire::decode_session_record(*payload);
        if (rec.kind == wire::SessionRecord::Kind::kEvicted) {
          conn.evicted = true;
          continue;  // server closes right after
        }
        conn.indices.push_back(rec.index);
        log.alerts.emplace_back(rec.index, rec.alert.alert);
        log.next_needed = std::max(log.next_needed, rec.index + 1);
        ++got;
        if (got % plan.ack_every == 0) {
          try {
            stream->write_all(
                wire::frame(wire::encode_session_ack(rec.index + 1)));
          } catch (const std::system_error&) {
            open = false;
            break;
          }
        }
        if (got >= kill_after && kills_left > 0) {
          // Abrupt close with unread bytes (and likely a half-received
          // frame) in flight — the server-side "kill mid-frame".
          --kills_left;
          conn.killed = true;
          open = false;
          break;
        }
      }
    }
    conn.corrupt = frames.corrupt_frames();
    const bool welcomed = conn.got_welcome;
    const bool injected = conn.killed;
    log.conns.push_back(std::move(conn));
    if (!welcomed && clean_eof) return;  // drain: adopted-and-dropped
    if (!injected) {
      if (reconnect_budget == 0) return;
      --reconnect_budget;
    }
  }
}

/// Synchronous cross-restart replay probe: one session reading from a
/// reopened service until it has caught up with the recovered log end.
/// Reconnects through evictions (tiny limits can evict even a prompt
/// reader mid-replay); gives up after a bounded number of attempts.
void run_reopen_probe(std::uint16_t port, SubscriberLog& log) {
  const auto deadline = Clock::now() + std::chrono::seconds{10};
  std::optional<std::uint64_t> want_until;
  for (int attempt = 0; attempt < 8; ++attempt) {
    SessionConnLog conn;
    conn.requested = log.next_needed;
    bool done = false;
    try {
      net::TcpStream stream = net::TcpStream::connect(port);
      wire::SessionHello hello;
      hello.session_id = log.plan.id;
      hello.from = conn.requested;
      stream.write_all(wire::frame(wire::encode_session_hello(hello)));
      wire::FrameCursor frames;
      bool open = true;
      while (open && !done && Clock::now() < deadline) {
        auto chunk = stream.read_some(std::chrono::milliseconds{100});
        if (!chunk) continue;
        if (chunk->empty()) break;
        frames.feed(*chunk);
        while (auto payload = frames.next()) {
          if (payload->empty()) continue;
          if (!conn.got_welcome) {
            if ((*payload)[0] != wire::kSessionWelcomeTag) continue;
            conn.welcome = wire::decode_session_welcome(*payload);
            conn.got_welcome = true;
            if (!want_until) want_until = conn.welcome.log_end;
            if (conn.welcome.start_index >= *want_until) done = true;
            continue;
          }
          const wire::SessionRecord rec =
              wire::decode_session_record(*payload);
          if (rec.kind == wire::SessionRecord::Kind::kEvicted) {
            conn.evicted = true;
            open = false;
            break;
          }
          conn.indices.push_back(rec.index);
          log.alerts.emplace_back(rec.index, rec.alert.alert);
          log.next_needed = std::max(log.next_needed, rec.index + 1);
          stream.write_all(
              wire::frame(wire::encode_session_ack(rec.index + 1)));
          if (rec.index + 1 >= *want_until) {
            done = true;
            break;
          }
        }
      }
      conn.corrupt = frames.corrupt_frames();
    } catch (const std::system_error&) {
      log.conns.push_back(std::move(conn));
      return;
    }
    log.conns.push_back(std::move(conn));
    if (done || Clock::now() >= deadline) return;
  }
}

/// The session-layer oracle: content matches the displayed sequence,
/// per-connection indices are contiguous from the welcome's start, exact
/// resume on kOk, and every gap is a typed, correctly-named truncation.
void check_sessions(const std::vector<SubscriberLog>& logs,
                    const std::vector<Alert>& displayed,
                    std::vector<std::string>& violations) {
  for (const SubscriberLog& log : logs) {
    const std::string who = "session '" + log.plan.id + "': ";
    for (const auto& [idx, alert] : log.alerts) {
      if (idx >= displayed.size()) {
        violations.push_back(who + "received index " + std::to_string(idx) +
                             " beyond displayed count " +
                             std::to_string(displayed.size()));
        break;
      }
      if (!(alert == displayed[idx])) {
        violations.push_back(who + "alert at index " + std::to_string(idx) +
                             " does not match the displayed alert");
        break;
      }
    }
    for (std::size_t c = 0; c < log.conns.size(); ++c) {
      const SessionConnLog& conn = log.conns[c];
      std::ostringstream where;
      where << who << "connection " << c << ": ";
      if (conn.corrupt != 0)
        violations.push_back(where.str() +
                             "CRC-corrupt frame on a TCP link");
      if (!conn.got_welcome) continue;
      const wire::SessionWelcome& w = conn.welcome;
      switch (w.status) {
        case wire::SessionWelcomeStatus::kOk:
          if (w.start_index != conn.requested)
            violations.push_back(
                where.str() + "welcome kOk but start " +
                std::to_string(w.start_index) + " != requested " +
                std::to_string(conn.requested));
          break;
        case wire::SessionWelcomeStatus::kTruncated:
          if (w.lost_from != conn.requested || w.lost_to != w.start_index ||
              w.start_index <= conn.requested)
            violations.push_back(where.str() +
                                 "kTruncated names a range inconsistent "
                                 "with the requested index");
          break;
        case wire::SessionWelcomeStatus::kBadCursor:
          if (conn.requested <= w.log_end || w.start_index != w.log_end)
            violations.push_back(where.str() +
                                 "kBadCursor for an index not beyond the "
                                 "log end");
          break;
      }
      for (std::size_t k = 0; k < conn.indices.size(); ++k) {
        if (conn.indices[k] != w.start_index + k) {
          violations.push_back(
              where.str() + "gap or reorder: record " + std::to_string(k) +
              " has index " + std::to_string(conn.indices[k]) +
              ", expected " + std::to_string(w.start_index + k));
          break;
        }
      }
    }
  }
}

// ---- sharded-cluster fuzz leg -----------------------------------------

struct ShardedRunStats {
  std::size_t kills = 0;
  std::size_t reshards = 0;
  bool cross_shard = false;
};

/// Feeder-side router rebuilt from the WIRE shard map exactly the way an
/// external feeder would (encode → decode → ring from ids/vnodes), so the
/// fuzz exercises the distributed-map path, not in-process shortcuts.
struct MapRouter {
  service::ShardRing ring{service::kDefaultVnodes};
  std::map<std::uint32_t, std::vector<std::uint16_t>> ports;

  void rebuild(const wire::ShardMap& map) {
    ring = service::ShardRing{map.shards.empty()
                                  ? service::kDefaultVnodes
                                  : map.shards.front().vnodes};
    ports.clear();
    for (const wire::ShardMapEntry& e : map.shards) {
      ring.add_shard(e.shard_id);
      ports[e.shard_id] = e.replica_ports;
    }
  }
};

/// One sharded iteration: route the plan's feed through the shard map,
/// fire the plan's kills at random shard/merge replicas, apply 0-2
/// mid-run reshard events, then run the standard oracle over the union
/// of every journal the cluster ever wrote (partial shards journal only
/// their owned variables, so multi-shard runs classify as the condition's
/// lossy row — exactly the paper cell a sharded front presents).
std::vector<std::string> run_sharded_iteration(
    const RunPlan& plan, util::Rng& rng,
    const std::filesystem::path& data_dir, ShardedRunStats& stats,
    std::size_t& displayed_count) {
  const std::size_t arity = condition_arity(plan.choice.kind);

  service::ShardClusterConfig config;
  config.condition = build_condition(plan.choice.kind, plan.choice.param);
  config.filter = plan.filter;
  config.num_shards = static_cast<std::size_t>(rng.uniform_int(2, 3));
  config.replicas_per_shard = plan.replicas > 1 ? 2 : 1;
  config.merge_replicas = 1;
  config.data_dir = data_dir;
  config.checkpoint_every = plan.checkpoint_every;
  config.record_journal = true;
  // Reshard interplay with manual-restart schedules is not modelled:
  // sharded runs always self-heal killed replicas.
  config.auto_restart = true;
  config.backoff.initial = std::chrono::milliseconds{1};
  config.backoff.max = std::chrono::milliseconds{50};
  config.backoff.reset_after = std::chrono::milliseconds{1};
  config.poll_interval = std::chrono::milliseconds{5};

  service::ShardedCluster cluster{std::move(config)};
  stats.cross_shard = cluster.cross_shard();

  // 0-2 reshard events in the middle half of the feed, where updates are
  // in flight on both sides of the handoff.
  std::vector<std::size_t> reshard_steps;
  const std::size_t n_reshards =
      static_cast<std::size_t>(rng.uniform_int(0, 2));
  const std::size_t lo = plan.feed.size() / 4;
  const std::size_t span = std::max<std::size_t>(1, plan.feed.size() / 2);
  for (std::size_t k = 0; k < n_reshards; ++k)
    reshard_steps.push_back(lo + static_cast<std::size_t>(rng.uniform_int(
                                     0, static_cast<std::int64_t>(span))));
  std::sort(reshard_steps.begin(), reshard_steps.end());
  std::uint32_t next_shard_id =
      static_cast<std::uint32_t>(cluster.config().num_shards);

  MapRouter router;
  const auto refresh_router = [&] {
    router.rebuild(wire::decode_shard_map(
        wire::encode_shard_map(cluster.shard_map())));
  };
  refresh_router();

  net::UdpSocket feeder;
  std::size_t next_kill = 0;
  std::size_t next_reshard = 0;
  for (std::size_t step = 0; step < plan.feed.size(); ++step) {
    while (next_reshard < reshard_steps.size() &&
           reshard_steps[next_reshard] <= step) {
      ++next_reshard;
      const std::vector<std::uint32_t> ids = cluster.shard_ids();
      if (ids.size() <= 1 || rng.bernoulli(0.5)) {
        cluster.add_shard(next_shard_id++);
      } else {
        cluster.remove_shard(ids[static_cast<std::size_t>(rng.uniform_int(
            0, static_cast<std::int64_t>(ids.size()) - 1))]);
      }
      ++stats.reshards;
      refresh_router();
    }
    while (next_kill < plan.kills.size() &&
           plan.kills[next_kill].at_step == step) {
      const KillEvent& e = plan.kills[next_kill++];
      // Usually a shard replica, sometimes the merge tier itself (its
      // downtime loses forwards — the same lossy front link).
      service::AlertService* target = cluster.merge();
      if (!target || !rng.bernoulli(0.25)) {
        const std::vector<std::uint32_t> ids = cluster.shard_ids();
        target = &cluster.shard(ids[static_cast<std::size_t>(
            rng.uniform_int(0, static_cast<std::int64_t>(ids.size()) - 1))]);
      }
      target->kill_replica(e.replica % target->config().num_replicas);
      ++stats.kills;
    }
    const Update& u = plan.feed[step];
    const auto framed = wire::frame(wire::encode_update(u));
    const auto& owner_ports = router.ports.at(router.ring.owner(u.var));
    for (const std::uint16_t port : owner_ports)
      send_ignoring_errors(feeder, port, framed);
    if (plan.dup_prob > 0 && rng.bernoulli(plan.dup_prob))
      send_ignoring_errors(
          feeder,
          owner_ports[static_cast<std::size_t>(rng.uniform_int(
              0, static_cast<std::int64_t>(owner_ports.size()) - 1))],
          framed);
  }

  // ENDs go everywhere: each shard closes its DM streams, and the merge
  // tier hears the ENDs directly (on_accept only forwards updates).
  for (int attempt = 0; attempt < 40; ++attempt) {
    for (std::size_t var = 0; var < arity; ++var) {
      const auto end = wire::frame(net::encode_end_marker(var));
      for (const auto& [id, ports] : router.ports)
        for (const std::uint16_t port : ports)
          send_ignoring_errors(feeder, port, end);
      if (service::AlertService* merge = cluster.merge())
        for (const std::uint16_t port : merge->replica_ports())
          send_ignoring_errors(feeder, port, end);
    }
    if (cluster.evaluating_service().await_dm_ends(
            arity, std::chrono::milliseconds{100}))
      break;
  }
  (void)cluster.await_idle(std::chrono::milliseconds{60},
                           std::chrono::milliseconds{5000});
  cluster.drain();

  const std::vector<Alert> displayed = cluster.displayed();
  displayed_count = displayed.size();
  return check_service_run(plan, plan.feed, cluster.journals(), displayed,
                           cluster.provenance(), stats.kills,
                           cluster.displayer_epochs());
}

}  // namespace

ServiceFuzzReport run_service_fuzz(const ServiceFuzzOptions& options) {
  ServiceFuzzReport report;
  const std::filesystem::path scratch =
      options.scratch_dir.empty()
          ? std::filesystem::temp_directory_path() / "rcm_service_fuzz"
          : options.scratch_dir;
  std::filesystem::create_directories(scratch);

  for (std::size_t i = 0; i < options.runs; ++i) {
    util::Rng rng = util::Rng::derive(options.seed, i);
    const RunPlan plan = make_service_plan(rng);
    const std::size_t arity = condition_arity(plan.choice.kind);
    const std::filesystem::path data_dir =
        scratch / ("run-" + std::to_string(options.seed) + "-" +
                   std::to_string(i));
    std::filesystem::remove_all(data_dir);

    if (rng.bernoulli(options.sharded_fraction)) {
      ShardedRunStats stats;
      std::size_t displayed_count = 0;
      const std::vector<std::string> violations =
          run_sharded_iteration(plan, rng, data_dir, stats, displayed_count);
      ++report.runs_executed;
      ++report.sharded_runs;
      if (stats.cross_shard) ++report.cross_shard_runs;
      report.shard_reshards += stats.reshards;
      report.shard_kills += stats.kills;
      report.total_kills += stats.kills;
      if (stats.kills > 0) ++report.runs_with_kills;
      if (displayed_count > 0) ++report.runs_with_alerts;
      if (options.verbose)
        std::printf("service-fuzz run %zu (sharded%s): %zu updates, "
                    "%zu kill(s), %zu reshard(s)%s\n",
                    i, stats.cross_shard ? ", cross-shard" : "",
                    plan.feed.size(), stats.kills, stats.reshards,
                    violations.empty() ? "" : "  ** VIOLATION **");
      if (violations.empty()) {
        std::error_code ec;
        std::filesystem::remove_all(data_dir, ec);
      } else {
        for (const std::string& v : violations)
          report.violations.push_back(
              ServiceFuzzViolation{i, options.seed, v, data_dir});
      }
      continue;
    }

    service::ServiceConfig config;
    config.condition = build_condition(plan.choice.kind, plan.choice.param);
    config.num_replicas = plan.replicas;
    config.filter = plan.filter;
    config.data_dir = data_dir;
    config.checkpoint_every = plan.checkpoint_every;
    config.record_journal = true;
    config.auto_restart = plan.auto_restart;
    config.backoff.initial = std::chrono::milliseconds{1};
    config.backoff.max = std::chrono::milliseconds{50};
    config.backoff.reset_after = std::chrono::milliseconds{1};
    config.poll_interval = std::chrono::milliseconds{5};

    const SessionFuzzPlan session_plan = options.subscriber_faults
                                             ? make_session_plan(rng)
                                             : SessionFuzzPlan{};
    if (session_plan.enabled) config.session_limits = session_plan.limits;
    std::vector<SubscriberLog> sub_logs(session_plan.subscribers.size());
    for (std::size_t s = 0; s < sub_logs.size(); ++s)
      sub_logs[s].plan = session_plan.subscribers[s];

    std::size_t kills_done = 0;
    std::vector<std::vector<Update>> journals;
    std::vector<Alert> displayed;
    std::vector<AlertProvenance> provenance;
    std::size_t restarts = 0;
    std::size_t lag_alerts = 0;
    std::size_t health_scrapes = 0;
    std::size_t health_degraded = 0;
    std::vector<std::string> health_violations;
    {
      service::AlertService svc{std::move(config)};
      const std::vector<std::uint16_t> ports = svc.replica_ports();
      net::UdpSocket feeder;

      std::atomic<bool> draining{false};
      std::vector<std::thread> sub_threads;
      for (std::size_t s = 0; s < sub_logs.size(); ++s)
        sub_threads.emplace_back(run_subscriber_agent, svc.subscriber_port(),
                                 options.seed * 1000003 + i * 31 + s,
                                 std::cref(draining), std::ref(sub_logs[s]));

      // (step -> pending manual restarts) computed as we go.
      std::vector<std::pair<std::size_t, std::size_t>> manual_restarts;
      std::size_t next_kill = 0;
      for (std::size_t step = 0; step < plan.feed.size(); ++step) {
        while (next_kill < plan.kills.size() &&
               plan.kills[next_kill].at_step == step) {
          const KillEvent& e = plan.kills[next_kill++];
          svc.kill_replica(e.replica);
          ++kills_done;
          if (!plan.auto_restart) {
            // Health oracle, degraded half: with no auto-restart racing
            // us, the admin health document scraped right after the kill
            // must carry a replica-down degradation.
            ++health_scrapes;
            const auto doc = service::scrape_instance_health(
                svc.admin_port(), std::chrono::milliseconds{2000});
            if (!doc) {
              health_violations.push_back(
                  "health oracle: admin health scrape failed after kill");
            } else {
              const bool down = std::any_of(
                  doc->degradations.begin(), doc->degradations.end(),
                  [](const wire::Degradation& d) {
                    return d.kind == wire::DegradationKind::kReplicaDown;
                  });
              if (!down || doc->healthy)
                health_violations.push_back(
                    "health oracle: no replica_down degradation right "
                    "after killing replica " + std::to_string(e.replica));
              else
                ++health_degraded;
            }
            manual_restarts.emplace_back(step + e.restart_after, e.replica);
          }
        }
        for (auto it = manual_restarts.begin();
             it != manual_restarts.end();) {
          if (it->first <= step) {
            svc.restart_replica(it->second);
            it = manual_restarts.erase(it);
          } else {
            ++it;
          }
        }
        const auto framed =
            wire::frame(wire::encode_update(plan.feed[step]));
        for (const std::uint16_t port : ports)
          send_ignoring_errors(feeder, port, framed);
        if (plan.dup_prob > 0 && rng.bernoulli(plan.dup_prob))
          send_ignoring_errors(
              feeder,
              ports[static_cast<std::size_t>(rng.uniform_int(
                  0, static_cast<std::int64_t>(ports.size()) - 1))],
              framed);
      }

      // Bring everyone back so the END markers land somewhere durable,
      // then repeat them (idempotent) until the service has them all.
      for (std::size_t r = 0; r < plan.replicas; ++r) svc.restart_replica(r);
      for (int attempt = 0; attempt < 40; ++attempt) {
        for (std::size_t var = 0; var < arity; ++var) {
          const auto end = wire::frame(net::encode_end_marker(var));
          for (const std::uint16_t port : ports)
            send_ignoring_errors(feeder, port, end);
        }
        if (svc.await_dm_ends(arity, std::chrono::milliseconds{100})) break;
      }
      (void)svc.await_idle(std::chrono::milliseconds{60},
                           std::chrono::milliseconds{5000});
      if (!plan.auto_restart && !plan.kills.empty()) {
        // Health oracle, cleared half: every replica was restarted above,
        // so the degradation must be gone from a fresh document.
        ++health_scrapes;
        const auto doc = service::scrape_instance_health(
            svc.admin_port(), std::chrono::milliseconds{2000});
        if (!doc) {
          health_violations.push_back(
              "health oracle: admin health scrape failed after recovery");
        } else {
          for (const wire::Degradation& d : doc->degradations)
            if (d.kind == wire::DegradationKind::kReplicaDown)
              health_violations.push_back(
                  "health oracle: replica_down degradation survived full "
                  "recovery (" + d.detail + ")");
        }
      }
      draining.store(true, std::memory_order_release);
      svc.drain();
      for (std::thread& t : sub_threads) t.join();

      displayed = svc.displayed();
      provenance = svc.provenance();
      lag_alerts = svc.session_manager().lag_alerts().size();
      for (std::size_t r = 0; r < plan.replicas; ++r) {
        journals.push_back(svc.replica_journal(r));
        restarts += svc.replica_restarts(r);
      }
    }

    ++report.runs_executed;
    report.total_kills += kills_done;
    report.total_restarts += restarts;
    if (kills_done > 0) ++report.runs_with_kills;
    if (!displayed.empty()) ++report.runs_with_alerts;
    if (session_plan.enabled) ++report.runs_with_subscribers;
    report.session_lag_alerts += lag_alerts;
    for (const SubscriberLog& log : sub_logs) {
      for (const SessionConnLog& conn : log.conns) {
        if (conn.got_welcome) ++report.subscriber_conns;
        if (conn.killed) ++report.subscriber_kills;
        if (conn.evicted) ++report.session_evictions;
        if (conn.got_welcome &&
            conn.welcome.status == wire::SessionWelcomeStatus::kTruncated)
          ++report.session_truncations;
        if (conn.got_welcome &&
            conn.welcome.status == wire::SessionWelcomeStatus::kBadCursor)
          ++report.session_bad_cursors;
      }
    }

    report.health_scrapes += health_scrapes;
    report.health_degraded_seen += health_degraded;

    std::vector<std::string> violations = check_service_run(
        plan, plan.feed, std::move(journals), displayed, provenance,
        kills_done);
    check_sessions(sub_logs, displayed, violations);
    violations.insert(violations.end(), health_violations.begin(),
                      health_violations.end());

    // Cross-restart leg: reopen the same durable state and replay a
    // session cursor through the recovered log — both ends of the
    // session have now been killed, and the stream must still be
    // gap-free and content-identical.
    if (session_plan.enabled && session_plan.reopen && violations.empty()) {
      ++report.service_reopens;
      service::ServiceConfig config2;
      config2.condition =
          build_condition(plan.choice.kind, plan.choice.param);
      config2.num_replicas = plan.replicas;
      config2.filter = plan.filter;
      config2.data_dir = data_dir;
      config2.auto_restart = false;
      config2.session_limits = session_plan.limits;
      config2.poll_interval = std::chrono::milliseconds{5};
      service::AlertService svc2{std::move(config2)};
      SubscriberLog relog;
      relog.plan.id = "reopen";
      if (!displayed.empty())
        relog.next_needed = static_cast<std::uint64_t>(rng.uniform_int(
            0, static_cast<std::int64_t>(displayed.size()) - 1));
      run_reopen_probe(svc2.subscriber_port(), relog);
      svc2.drain();
      std::vector<std::string> reopen_violations;
      check_sessions({relog}, displayed, reopen_violations);
      if (!relog.conns.empty() && relog.conns.front().got_welcome &&
          relog.conns.front().welcome.log_end != displayed.size())
        reopen_violations.push_back(
            "reopened log end " +
            std::to_string(relog.conns.front().welcome.log_end) +
            " != first incarnation's displayed count " +
            std::to_string(displayed.size()) +
            " (durable alert log lost or invented entries)");
      if (relog.next_needed <
          (relog.conns.empty() || !relog.conns.front().got_welcome
               ? std::uint64_t{0}
               : relog.conns.front().welcome.log_end))
        reopen_violations.push_back(
            "reopen replay stalled at index " +
            std::to_string(relog.next_needed));
      for (std::string& v : reopen_violations)
        violations.push_back("reopen: " + std::move(v));
    }

    if (options.verbose) {
      std::printf("service-fuzz run %zu: %zu updates, %zu kill(s), "
                  "%zu restart(s)%s\n",
                  i, plan.feed.size(), kills_done, restarts,
                  violations.empty() ? "" : "  ** VIOLATION **");
    }
    if (violations.empty()) {
      std::error_code ec;
      std::filesystem::remove_all(data_dir, ec);  // clean run: no debris
    } else {
      for (const std::string& v : violations)
        report.violations.push_back(
            ServiceFuzzViolation{i, options.seed, v, data_dir});
    }
  }
  return report;
}

}  // namespace rcm::swarm
