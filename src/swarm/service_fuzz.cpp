#include "swarm/service_fuzz.hpp"

#include <cstdio>
#include <utility>

#include "net/deployment.hpp"
#include "net/socket.hpp"
#include "service/alert_service.hpp"
#include "swarm/fuzz_plan.hpp"
#include "util/rng.hpp"
#include "wire/codec.hpp"
#include "wire/frame.hpp"

namespace rcm::swarm {

ServiceFuzzReport run_service_fuzz(const ServiceFuzzOptions& options) {
  ServiceFuzzReport report;
  const std::filesystem::path scratch =
      options.scratch_dir.empty()
          ? std::filesystem::temp_directory_path() / "rcm_service_fuzz"
          : options.scratch_dir;
  std::filesystem::create_directories(scratch);

  for (std::size_t i = 0; i < options.runs; ++i) {
    util::Rng rng = util::Rng::derive(options.seed, i);
    const RunPlan plan = make_service_plan(rng);
    const std::size_t arity = condition_arity(plan.choice.kind);
    const std::filesystem::path data_dir =
        scratch / ("run-" + std::to_string(options.seed) + "-" +
                   std::to_string(i));
    std::filesystem::remove_all(data_dir);

    service::ServiceConfig config;
    config.condition = build_condition(plan.choice.kind, plan.choice.param);
    config.num_replicas = plan.replicas;
    config.filter = plan.filter;
    config.data_dir = data_dir;
    config.checkpoint_every = plan.checkpoint_every;
    config.record_journal = true;
    config.auto_restart = plan.auto_restart;
    config.backoff.initial = std::chrono::milliseconds{1};
    config.backoff.max = std::chrono::milliseconds{50};
    config.backoff.reset_after = std::chrono::milliseconds{1};
    config.poll_interval = std::chrono::milliseconds{5};

    std::size_t kills_done = 0;
    std::vector<std::vector<Update>> journals;
    std::vector<Alert> displayed;
    std::vector<AlertProvenance> provenance;
    std::size_t restarts = 0;
    {
      service::AlertService svc{std::move(config)};
      const std::vector<std::uint16_t> ports = svc.replica_ports();
      net::UdpSocket feeder;

      // (step -> pending manual restarts) computed as we go.
      std::vector<std::pair<std::size_t, std::size_t>> manual_restarts;
      std::size_t next_kill = 0;
      for (std::size_t step = 0; step < plan.feed.size(); ++step) {
        while (next_kill < plan.kills.size() &&
               plan.kills[next_kill].at_step == step) {
          const KillEvent& e = plan.kills[next_kill++];
          svc.kill_replica(e.replica);
          ++kills_done;
          if (!plan.auto_restart)
            manual_restarts.emplace_back(step + e.restart_after, e.replica);
        }
        for (auto it = manual_restarts.begin();
             it != manual_restarts.end();) {
          if (it->first <= step) {
            svc.restart_replica(it->second);
            it = manual_restarts.erase(it);
          } else {
            ++it;
          }
        }
        const auto framed =
            wire::frame(wire::encode_update(plan.feed[step]));
        for (const std::uint16_t port : ports)
          send_ignoring_errors(feeder, port, framed);
        if (plan.dup_prob > 0 && rng.bernoulli(plan.dup_prob))
          send_ignoring_errors(
              feeder,
              ports[static_cast<std::size_t>(rng.uniform_int(
                  0, static_cast<std::int64_t>(ports.size()) - 1))],
              framed);
      }

      // Bring everyone back so the END markers land somewhere durable,
      // then repeat them (idempotent) until the service has them all.
      for (std::size_t r = 0; r < plan.replicas; ++r) svc.restart_replica(r);
      for (int attempt = 0; attempt < 40; ++attempt) {
        for (std::size_t var = 0; var < arity; ++var) {
          const auto end = wire::frame(net::encode_end_marker(var));
          for (const std::uint16_t port : ports)
            send_ignoring_errors(feeder, port, end);
        }
        if (svc.await_dm_ends(arity, std::chrono::milliseconds{100})) break;
      }
      (void)svc.await_idle(std::chrono::milliseconds{60},
                           std::chrono::milliseconds{5000});
      svc.drain();

      displayed = svc.displayed();
      provenance = svc.provenance();
      for (std::size_t r = 0; r < plan.replicas; ++r) {
        journals.push_back(svc.replica_journal(r));
        restarts += svc.replica_restarts(r);
      }
    }

    ++report.runs_executed;
    report.total_kills += kills_done;
    report.total_restarts += restarts;
    if (kills_done > 0) ++report.runs_with_kills;
    if (!displayed.empty()) ++report.runs_with_alerts;

    const std::vector<std::string> violations = check_service_run(
        plan, plan.feed, std::move(journals), std::move(displayed),
        provenance, kills_done);
    if (options.verbose) {
      std::printf("service-fuzz run %zu: %zu updates, %zu kill(s), "
                  "%zu restart(s)%s\n",
                  i, plan.feed.size(), kills_done, restarts,
                  violations.empty() ? "" : "  ** VIOLATION **");
    }
    if (violations.empty()) {
      std::error_code ec;
      std::filesystem::remove_all(data_dir, ec);  // clean run: no debris
    } else {
      for (const std::string& v : violations)
        report.violations.push_back(
            ServiceFuzzViolation{i, options.seed, v, data_dir});
    }
  }
  return report;
}

}  // namespace rcm::swarm
