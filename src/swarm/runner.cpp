#include "swarm/runner.hpp"

#include <algorithm>
#include <cstring>
#include <set>
#include <sstream>

#include "check/run_record.hpp"
#include "obs/metrics.hpp"
#include "sim/disconnect.hpp"
#include "wire/buffer.hpp"

namespace rcm::swarm {

std::string_view violation_kind_name(ViolationKind k) noexcept {
  switch (k) {
    case ViolationKind::kOrderedness: return "orderedness";
    case ViolationKind::kCompleteness: return "completeness";
    case ViolationKind::kConsistency: return "consistency";
    case ViolationKind::kUnraisedAlert: return "unraised-alert";
    case ViolationKind::kNonMonotoneDisplay: return "non-monotone-display";
    case ViolationKind::kNonDeterminism: return "non-determinism";
    case ViolationKind::kWorkload: return "workload";
  }
  return "?";
}

bool RunCheck::has_kind(ViolationKind k) const {
  return std::find(violation_kinds.begin(), violation_kinds.end(), k) !=
         violation_kinds.end();
}

namespace {

/// Runs an already-materialized spec: the single execution path shared by
/// the plain and composed entry points.
Execution execute_materialized(const MaterializedRun& mat) {
  RCM_SCOPED_TIMER(timer, "swarm.phase.execute_seconds");
  Execution exec;
  sim::SystemConfig base = mat.spec.to_system_config();
  base.front_shaping = mat.front_shaping;
  if (mat.spec.ad_offline.empty()) {
    exec.result = sim::run_system(base);
    exec.display_times = exec.result.display_times;
  } else {
    sim::DisconnectConfig config;
    config.base = std::move(base);
    config.ad_offline = mat.spec.ad_offline;
    sim::DisconnectResult r = sim::run_disconnectable_system(config);
    exec.display_times = r.display_times;
    exec.result = std::move(r.run);
  }
  return exec;
}

}  // namespace

Execution execute(const ComposedSpec& spec) {
  return execute_materialized(materialize(spec));
}

Execution execute(const SwarmSpec& spec) {
  return execute(ComposedSpec{spec, {}});
}

std::uint64_t execution_digest(const Execution& exec,
                               const ConditionPtr& condition) {
  std::uint64_t h =
      check::run_digest(exec.result.as_system_run(condition));
  for (double t : exec.display_times) {
    std::uint8_t bits[sizeof(double)];
    std::memcpy(bits, &t, sizeof(double));
    h = check::fnv1a(bits, h);
  }
  return h;
}

RunCheck execute_and_check(const ComposedSpec& spec,
                           const CheckOptions& options) {
  RunCheck out;
  const MaterializedRun mat = materialize(spec);
  const Execution exec = execute_materialized(mat);
  const sim::RunResult& r = exec.result;

  const ConditionPtr condition =
      build_condition(mat.spec.cond_kind, mat.spec.cond_param);
  const check::SystemRun run = r.as_system_run(condition);
  {
    RCM_SCOPED_TIMER(timer, "swarm.phase.check_seconds");
    out.report = check::check_run(run, options.interleaving_budget);
  }
  out.digest = execution_digest(exec, condition);
  out.displayed = r.displayed.size();
  for (const auto& alerts : r.ce_outputs) out.raised += alerts.size();
  out.had_alerts = out.raised > 0;

  auto violate = [&out](ViolationKind kind, const std::string& what) {
    out.violation_kinds.push_back(kind);
    out.violations.push_back(what);
  };

  // Guaranteed table cells. Violations of properties the paper does NOT
  // claim for this cell are expected behaviour, not findings.
  const exp::PaperClaim claim = guaranteed_properties(spec);
  const std::string cell = std::string(filter_kind_name(spec.base.filter)) +
                           " / " + exp::scenario_name(classify_scenario(spec));
  if (claim.ordered && out.report.ordered == check::Verdict::kViolated)
    violate(ViolationKind::kOrderedness,
            "orderedness violated in guaranteed cell " + cell);
  if (claim.complete && out.report.complete == check::Verdict::kViolated)
    violate(ViolationKind::kCompleteness,
            "completeness violated in guaranteed cell " + cell);
  if (claim.consistent && out.report.consistent == check::Verdict::kViolated)
    violate(ViolationKind::kConsistency,
            "consistency violated in guaranteed cell " + cell);

  // Cross-replica invariants, checked on every run regardless of cell.
  {
    std::set<AlertKey> raised_keys;
    for (const auto& alerts : r.ce_outputs)
      for (const Alert& a : alerts) raised_keys.insert(a.key());
    for (const Alert& a : r.displayed)
      if (!raised_keys.count(a.key())) {
        std::ostringstream what;
        what << "displayed alert raised by no replica: " << a;
        violate(ViolationKind::kUnraisedAlert, what.str());
        break;
      }
  }
  if (exec.display_times.size() != r.displayed.size()) {
    violate(ViolationKind::kNonMonotoneDisplay,
            "display timestamp count mismatch");
  } else {
    double prev = 0.0;
    for (double t : exec.display_times) {
      if (t < prev) {
        violate(ViolationKind::kNonMonotoneDisplay,
                "display timestamps regressed");
        break;
      }
      prev = t;
    }
  }

  // Per-unit workload checkers: each unit verifies its own slice of the
  // guarantee tables on top of the global invariants above.
  for (std::size_t i = 0; i < spec.units.size(); ++i) {
    const std::string msg = check_workload(spec, mat, r, i);
    if (!msg.empty()) violate(ViolationKind::kWorkload, msg);
  }

  if (options.check_determinism) {
    const Execution again = execute(spec);
    if (execution_digest(again, condition) != out.digest)
      violate(ViolationKind::kNonDeterminism,
              "re-execution of the same spec produced a different run");
  }

  return out;
}

RunCheck execute_and_check(const SwarmSpec& spec,
                           const CheckOptions& options) {
  return execute_and_check(ComposedSpec{spec, {}}, options);
}

}  // namespace rcm::swarm
