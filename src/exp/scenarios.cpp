#include "exp/scenarios.hpp"

#include <memory>
#include <stdexcept>

#include "core/builtin_conditions.hpp"

namespace rcm::exp {
namespace {

// Fixed variable ids for the synthetic scenarios. The experiment
// harnesses are self-contained, so hard ids (not registry-interned names)
// keep the specs copyable and seed-stable.
constexpr VarId kX = 0;
constexpr VarId kY = 1;

ConditionPtr single_nonhistorical() {
  return std::make_shared<const ThresholdCondition>("over60", kX, 60.0);
}

ConditionPtr single_rise(Triggering trig) {
  const char* name =
      trig == Triggering::kConservative ? "rise20.cons" : "rise20.aggr";
  return std::make_shared<const RiseCondition>(name, kX, 20.0, trig);
}

ConditionPtr multi_nonhistorical() {
  return std::make_shared<const AbsDiffCondition>("diff30", kX, kY, 30.0);
}

// Lemma 6's incompleteness argument needs a condition that is satisfied
// only by specific update pairs, so that a displayed pair forces an
// undisplayed intermediate pair into every witness interleaving. A
// narrow band condition has exactly that structure; a plain threshold
// condition rarely does, and with lossless links the completeness search
// almost always finds a witness for it.
ConditionPtr multi_band() {
  return std::make_shared<const PredicateCondition>(
      "band", std::vector<std::pair<VarId, int>>{{kX, 1}, {kY, 1}},
      Triggering::kAggressive, [](const HistorySet& h) {
        const double d =
            std::abs(h.of(kX).at(0).value - h.of(kY).at(0).value);
        return d > 30.0 && d < 55.0;
      });
}

ConditionPtr multi_rise(Triggering trig) {
  // (x0 - x(-1)) + (y0 - y(-1)) > 25, degree 2 in both variables.
  const char* name =
      trig == Triggering::kConservative ? "rise2d.cons" : "rise2d.aggr";
  return std::make_shared<const PredicateCondition>(
      name, std::vector<std::pair<VarId, int>>{{kX, 2}, {kY, 2}}, trig,
      [](const HistorySet& h) {
        const double dx = h.of(kX).at(0).value - h.of(kX).at(-1).value;
        const double dy = h.of(kY).at(0).value - h.of(kY).at(-1).value;
        return dx + dy > 25.0;
      });
}

}  // namespace

std::string scenario_name(Scenario s) {
  switch (s) {
    case Scenario::kLossless: return "Lossless";
    case Scenario::kLossyNonHistorical: return "Lossy Non-his.";
    case Scenario::kLossyConservative: return "Lossy His. Cons.";
    case Scenario::kLossyAggressive: return "Lossy His. Aggr.";
  }
  return "?";
}

Scenario lossy_scenario(bool historical, Triggering triggering) {
  if (!historical) return Scenario::kLossyNonHistorical;
  return triggering == Triggering::kConservative
             ? Scenario::kLossyConservative
             : Scenario::kLossyAggressive;
}

std::vector<trace::Trace> ScenarioSpec::make_traces(
    std::size_t updates_per_var, util::Rng& rng) const {
  std::vector<trace::Trace> traces;
  traces.reserve(variables.size());
  bool first = true;
  for (VarId v : variables) {
    if (first || !slow_secondary_vars) {
      trace::UniformParams p;
      p.base.var = v;
      p.base.count = updates_per_var;
      p.base.period = 1.0;
      p.base.jitter = 0.4;  // desynchronize the DMs' emission times
      p.lo = 0.0;
      p.hi = 100.0;
      traces.push_back(trace::uniform_trace(p, rng));
    } else {
      trace::ReactorParams p;  // slow drift around mid-range
      p.base.var = v;
      p.base.count = updates_per_var;
      p.base.period = 1.0;
      p.base.jitter = 0.4;
      p.baseline = 50.0;
      p.stddev = 3.0;
      p.reversion = 0.1;
      p.excursion_prob = 0.0;
      traces.push_back(trace::reactor_trace(p, rng));
    }
    first = false;
  }
  return traces;
}

ScenarioSpec single_var_scenario(Scenario s, double loss) {
  ScenarioSpec spec;
  spec.scenario = s;
  spec.variables = {kX};
  switch (s) {
    case Scenario::kLossless:
      spec.condition = single_rise(Triggering::kAggressive);
      spec.front_loss = 0.0;
      break;
    case Scenario::kLossyNonHistorical:
      spec.condition = single_nonhistorical();
      spec.front_loss = loss;
      break;
    case Scenario::kLossyConservative:
      spec.condition = single_rise(Triggering::kConservative);
      spec.front_loss = loss;
      break;
    case Scenario::kLossyAggressive:
      spec.condition = single_rise(Triggering::kAggressive);
      spec.front_loss = loss;
      break;
  }
  return spec;
}

ScenarioSpec multi_var_scenario(Scenario s, double loss) {
  ScenarioSpec spec;
  spec.scenario = s;
  spec.variables = {kX, kY};
  spec.slow_secondary_vars = true;
  switch (s) {
    case Scenario::kLossless:
      spec.condition = multi_band();
      spec.front_loss = 0.0;
      break;
    case Scenario::kLossyNonHistorical:
      spec.condition = multi_nonhistorical();
      spec.front_loss = loss;
      break;
    case Scenario::kLossyConservative:
      spec.condition = multi_rise(Triggering::kConservative);
      spec.front_loss = loss;
      break;
    case Scenario::kLossyAggressive:
      spec.condition = multi_rise(Triggering::kAggressive);
      spec.front_loss = loss;
      break;
  }
  return spec;
}

}  // namespace rcm::exp
