#include "exp/table_experiment.hpp"

#include <sstream>
#include <stdexcept>
#include <vector>

#include "check/properties.hpp"
#include "runtime/thread_pool.hpp"
#include "sim/system.hpp"

namespace rcm::exp {
namespace {

PaperClaim claim_single_var(FilterKind filter, Scenario s) {
  // Tables 1 and 2, plus the AD-3/AD-4 variants stated in §4.3/§4.4.
  switch (filter) {
    case FilterKind::kAd1:  // Table 1
      switch (s) {
        case Scenario::kLossless: return {true, true, true};
        case Scenario::kLossyNonHistorical: return {false, true, true};
        case Scenario::kLossyConservative: return {false, false, true};
        case Scenario::kLossyAggressive: return {false, false, false};
      }
      break;
    case FilterKind::kAd2:  // Table 2
      switch (s) {
        case Scenario::kLossless: return {true, true, true};
        case Scenario::kLossyNonHistorical: return {true, false, true};
        case Scenario::kLossyConservative: return {true, false, true};
        case Scenario::kLossyAggressive: return {true, false, false};
      }
      break;
    case FilterKind::kAd3:  // "Table 1 except the last row is consistent"
      switch (s) {
        case Scenario::kLossless: return {true, true, true};
        case Scenario::kLossyNonHistorical: return {false, true, true};
        case Scenario::kLossyConservative: return {false, false, true};
        case Scenario::kLossyAggressive: return {false, false, true};
      }
      break;
    case FilterKind::kAd4:  // "Table 2 except Aggressive is consistent"
      switch (s) {
        case Scenario::kLossless: return {true, true, true};
        case Scenario::kLossyNonHistorical: return {true, false, true};
        case Scenario::kLossyConservative: return {true, false, true};
        case Scenario::kLossyAggressive: return {true, false, true};
      }
      break;
    default:
      break;
  }
  throw std::invalid_argument(
      "paper_claim: no single-variable table for this filter");
}

PaperClaim claim_multi_var(FilterKind filter, Scenario s) {
  switch (filter) {
    case FilterKind::kAd1:
      // Theorem 10: neither ordered nor consistent (hence not complete),
      // already with lossless links — interleaving alone breaks them.
      return {false, false, false};
    case FilterKind::kAd5:  // Table 3
      switch (s) {
        case Scenario::kLossless: return {true, false, true};
        case Scenario::kLossyNonHistorical: return {true, false, true};
        case Scenario::kLossyConservative: return {true, false, true};
        case Scenario::kLossyAggressive: return {true, false, false};
      }
      break;
    case FilterKind::kAd6:  // §5.2: Table 3 with the last row consistent
      return {true, false, true};
    default:
      break;
  }
  throw std::invalid_argument(
      "paper_claim: no multi-variable table for this filter");
}

std::string measured_cell(std::size_t violations, std::size_t unknown,
                          std::size_t runs) {
  std::ostringstream out;
  if (violations == 0)
    out << "held";
  else
    out << "VIOLATED";
  out << " (" << violations << "/" << runs;
  if (unknown > 0) out << ", " << unknown << " undecided";
  out << ")";
  return out.str();
}

}  // namespace

PaperClaim paper_claim(FilterKind filter, Scenario scenario,
                       bool multi_variable) {
  return multi_variable ? claim_multi_var(filter, scenario)
                        : claim_single_var(filter, scenario);
}

PropertyCounts sweep_scenario(const ScenarioSpec& spec, FilterKind filter,
                              const SweepParams& params) {
  // Trial streams are forked from the master in run order — forking
  // advances the master, so this prefix stays serial to keep every
  // published table number bit-identical to the historical sweep. The
  // trials themselves are then embarrassingly parallel.
  std::vector<util::Rng> trials;
  trials.reserve(params.runs);
  {
    util::Rng master{params.seed};
    for (std::size_t run = 0; run < params.runs; ++run)
      trials.push_back(master.fork(run + 1));
  }

  auto run_trial = [&](std::size_t run,
                       util::Rng trial) -> check::PropertyReport {
    sim::SystemConfig config;
    config.condition = spec.condition;
    config.dm_traces = spec.make_traces(params.updates_per_var, trial);
    config.num_ces = params.num_ces;
    config.front.loss = spec.front_loss;
    // Wide delay spread relative to the 1s update period, so the CE
    // replicas see genuinely different interleavings and the AD sees
    // genuinely shuffled merges. Multi-variable anomalies (Theorem 10,
    // Lemma 6) need one replica to receive an update several periods
    // later than the other, so those sweeps use an even wider spread.
    const bool multi = spec.condition->variables().size() > 1;
    config.front.delay_min = 0.01;
    config.front.delay_max = multi ? 2.5 : 0.80;
    config.back.delay_min = 0.01;
    config.back.delay_max = multi ? 2.5 : 0.80;
    config.filter = filter;
    config.seed = trial() ^ (0xabcdef12345678ULL + run);

    const sim::RunResult result = sim::run_system(config);
    const check::SystemRun sys_run = result.as_system_run(spec.condition);
    return check::check_run(sys_run, params.interleaving_budget);
  };

  std::vector<check::PropertyReport> reports(params.runs);
  const std::size_t jobs = runtime::ThreadPool::resolve_jobs(params.jobs);
  if (jobs <= 1 || params.runs <= 1) {
    for (std::size_t run = 0; run < params.runs; ++run)
      reports[run] = run_trial(run, trials[run]);
  } else {
    runtime::ThreadPool pool(jobs, /*queue_capacity=*/jobs * 8);
    for (std::size_t run = 0; run < params.runs; ++run)
      pool.submit([&, run] { reports[run] = run_trial(run, trials[run]); });
    pool.join();
  }

  PropertyCounts counts;
  for (const check::PropertyReport& report : reports) {
    ++counts.runs;
    if (report.ordered == check::Verdict::kViolated)
      ++counts.ordered_violations;
    if (report.complete == check::Verdict::kViolated)
      ++counts.complete_violations;
    else if (report.complete == check::Verdict::kUnknown)
      ++counts.complete_unknown;
    if (report.consistent == check::Verdict::kViolated)
      ++counts.consistent_violations;
  }
  return counts;
}

util::Table render_property_table(
    FilterKind filter, bool multi_variable,
    const std::vector<std::pair<Scenario, PropertyCounts>>& rows) {
  util::Table table({"Scenario", "Ord(paper)", "Ord(measured)",
                     "Comp(paper)", "Comp(measured)", "Cons(paper)",
                     "Cons(measured)", "agree?"});
  for (const auto& [scenario, counts] : rows) {
    const PaperClaim claim = paper_claim(filter, scenario, multi_variable);
    table.add_row({
        scenario_name(scenario),
        util::fmt_property(claim.ordered),
        measured_cell(counts.ordered_violations, 0, counts.runs),
        util::fmt_property(claim.complete),
        measured_cell(counts.complete_violations, counts.complete_unknown,
                      counts.runs),
        util::fmt_property(claim.consistent),
        measured_cell(counts.consistent_violations, 0, counts.runs),
        agrees_with_paper(claim, counts) ? "yes" : "NO",
    });
  }
  return table;
}

bool agrees_with_paper(const PaperClaim& claim, const PropertyCounts& counts) {
  const bool ord_ok = claim.ordered ? counts.ordered_violations == 0
                                    : counts.ordered_violations > 0;
  const bool comp_ok = claim.complete ? counts.complete_violations == 0
                                      : counts.complete_violations > 0;
  const bool cons_ok = claim.consistent ? counts.consistent_violations == 0
                                        : counts.consistent_violations > 0;
  return ord_ok && comp_ok && cons_ok;
}

}  // namespace rcm::exp
