// Scenario taxonomy of the paper's property tables.
//
// Tables 1-3 classify replicated systems along two axes:
//   - link quality: lossless vs lossy front links;
//   - condition class: non-historical, historical-conservative,
//     historical-aggressive (for lossless links the condition class does
//     not matter — Theorem 1 holds for "any type of condition", so that
//     row uses the most demanding class, historical-aggressive).
//
// This header materializes each table row as a runnable configuration:
// a condition of the right class (single- or multi-variable) and
// generator parameters whose trigger rate is high enough that property
// violations, where the paper predicts them, actually manifest within a
// bounded Monte-Carlo sweep.
#pragma once

#include <string>
#include <vector>

#include "core/condition.hpp"
#include "trace/generators.hpp"
#include "util/rng.hpp"

namespace rcm::exp {

/// The four rows of Tables 1-3.
enum class Scenario {
  kLossless,           ///< lossless front links, any condition
  kLossyNonHistorical, ///< lossy, degree-1 condition
  kLossyConservative,  ///< lossy, historical conservative condition
  kLossyAggressive,    ///< lossy, historical aggressive condition
};

inline constexpr Scenario kAllScenarios[] = {
    Scenario::kLossless,
    Scenario::kLossyNonHistorical,
    Scenario::kLossyConservative,
    Scenario::kLossyAggressive,
};

/// Row label as printed in the paper's tables.
[[nodiscard]] std::string scenario_name(Scenario s);

/// The lossy table row for a condition class: the scenario a system falls
/// into once ANY mechanism (link loss, a CE crash window, a front-link
/// partition) can make replicas miss updates. Non-historical conditions
/// land in the non-historical row regardless of triggering.
[[nodiscard]] Scenario lossy_scenario(bool historical, Triggering triggering);

/// A runnable scenario: condition + DM trace recipe.
struct ScenarioSpec {
  Scenario scenario;
  ConditionPtr condition;
  double front_loss = 0.0;  ///< 0 for the lossless row

  /// Variables the condition monitors (one trace per variable).
  std::vector<VarId> variables;

  /// Multi-variable specs set this: variables after the first get a
  /// slowly drifting trace instead of i.i.d. uniform values. This
  /// mirrors Lemma 6's construction (one jumpy stream against a nearly
  /// constant one), which is what makes multi-variable incompleteness
  /// and interleaving inconsistency observable at Monte-Carlo rates.
  bool slow_secondary_vars = false;

  /// Builds the DM traces for one Monte-Carlo trial.
  [[nodiscard]] std::vector<trace::Trace> make_traces(
      std::size_t updates_per_var, util::Rng& rng) const;
};

/// Builds the single-variable spec for a table row. Conditions used:
///   non-historical:  v0 > 60              (values uniform in [0,100])
///   conservative:    v0 - v(-1) > 20 with consecutive-seqno guard
///   aggressive:      v0 - v(-1) > 20
///   lossless row:    the aggressive condition with loss = 0
/// `loss` applies to the lossy rows (typically 0.2).
[[nodiscard]] ScenarioSpec single_var_scenario(Scenario s, double loss = 0.2);

/// Multi-variable (two variables x, y) spec for a Table 3 row:
///   non-historical:  |x0 - y0| > 30
///   conservative:    (x0 - x(-1)) + (y0 - y(-1)) > 25, both guarded
///   aggressive:      same, unguarded
///   lossless row:    the non-historical condition with loss = 0 —
///                    Theorem 10's counterexample class: multi-variable
///                    anomalies arise from interleaving alone.
[[nodiscard]] ScenarioSpec multi_var_scenario(Scenario s, double loss = 0.2);

}  // namespace rcm::exp
