// Monte-Carlo reproduction of the paper's property tables.
//
// A table cell "property P holds in scenario S under algorithm G" is a
// universal claim; its reproduction is a randomized search for counter-
// examples: run many randomized replicated systems in scenario S with
// filter G, check every run's output A with the exact property checkers,
// and report the number of violating runs. Zero violations reproduces a
// check-mark cell; at least one violation (typically many) reproduces an
// X cell. The benches print the paper's claim next to the measurement so
// agreement is visible row by row.
#pragma once

#include <cstdint>
#include <vector>

#include "core/filters.hpp"
#include "exp/scenarios.hpp"
#include "util/table.hpp"

namespace rcm::exp {

/// Monte-Carlo sweep parameters.
struct SweepParams {
  std::size_t runs = 200;
  std::size_t updates_per_var = 40;
  std::size_t num_ces = 2;
  std::uint64_t seed = 42;
  /// State budget for the multi-variable completeness search; runs whose
  /// search exhausts it count as "unknown", never as violations.
  std::size_t interleaving_budget = 400000;
  /// Worker threads: 1 = serial, 0 = hardware concurrency. Trial RNG
  /// streams are derived up front in run order (each fork of the master
  /// advances it, so derivation order is part of the published numbers),
  /// then trials execute on any worker: every jobs value reproduces the
  /// serial sweep's counts exactly.
  std::size_t jobs = 1;
};

/// Violation tallies for one (scenario, filter) cell row.
struct PropertyCounts {
  std::size_t runs = 0;
  std::size_t ordered_violations = 0;
  std::size_t complete_violations = 0;
  std::size_t consistent_violations = 0;
  std::size_t complete_unknown = 0;
};

/// What the paper claims for (filter, scenario); `multi_variable` selects
/// between the single-variable tables (1, 2 and the AD-3/AD-4 variants
/// stated in prose) and the multi-variable ones (Theorem 10 for AD-1,
/// Table 3 for AD-5, §5.2 for AD-6).
struct PaperClaim {
  bool ordered = false;
  bool complete = false;
  bool consistent = false;
};
[[nodiscard]] PaperClaim paper_claim(FilterKind filter, Scenario scenario,
                                     bool multi_variable);

/// Runs the sweep for one scenario row.
[[nodiscard]] PropertyCounts sweep_scenario(const ScenarioSpec& spec,
                                            FilterKind filter,
                                            const SweepParams& params);

/// Renders a full paper-vs-measured table for one filter: one row per
/// scenario in `rows`.
[[nodiscard]] util::Table render_property_table(
    FilterKind filter, bool multi_variable,
    const std::vector<std::pair<Scenario, PropertyCounts>>& rows);

/// True iff the measurement agrees with the paper: zero violations where
/// the paper claims the property, at least one where it does not.
[[nodiscard]] bool agrees_with_paper(const PaperClaim& claim,
                                     const PropertyCounts& counts);

}  // namespace rcm::exp
