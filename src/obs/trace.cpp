#include "obs/trace.hpp"

#if RCM_TRACING_ENABLED

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <memory>
#include <mutex>
#include <vector>

namespace rcm::obs::trace {
namespace {

std::atomic<bool> g_enabled{false};
std::atomic<std::uint64_t> g_next_span_id{1};

thread_local TraceContext t_context{};

std::uint64_t now_ns() noexcept {
  // Relative to a process epoch so exported timestamps stay small.
  static const std::chrono::steady_clock::time_point epoch =
      std::chrono::steady_clock::now();
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - epoch)
          .count());
}

// One ring slot. Fields are individually atomic (relaxed) so a reader
// racing the single producer copies torn-free values; the `version`
// seqlock (odd = write in progress) tells the reader whether the copy
// is a consistent record.
struct Slot {
  std::atomic<std::uint32_t> version{0};
  std::atomic<std::uint64_t> trace_id{0};
  std::atomic<std::uint64_t> span_id{0};
  std::atomic<std::uint64_t> parent_id{0};
  std::atomic<const char*> name{nullptr};
  std::atomic<const char*> reason{nullptr};
  std::atomic<std::int64_t> var{-1};
  std::atomic<std::int64_t> seq{0};
  std::atomic<std::uint64_t> start_ns{0};
  std::atomic<std::uint64_t> dur_ns{0};
};

struct ThreadRing {
  explicit ThreadRing(std::uint32_t tid_in) : tid(tid_in) {}

  std::uint32_t tid;
  std::unique_ptr<Slot[]> slots{new Slot[kRingCapacity]};
  // Total spans ever pushed; slot index is head % capacity. Written by
  // the producer, read by export.
  std::atomic<std::uint64_t> head{0};
  std::mutex name_mutex;
  std::string name;

  void push(std::uint64_t trace_id, std::uint64_t span_id,
            std::uint64_t parent_id, const char* name_lit,
            const char* reason_lit, std::int64_t var, std::int64_t seq,
            std::uint64_t start_ns, std::uint64_t dur_ns) noexcept {
    const std::uint64_t h = head.load(std::memory_order_relaxed);
    Slot& s = slots[h % kRingCapacity];
    const std::uint32_t v = s.version.load(std::memory_order_relaxed);
    s.version.store(v + 1, std::memory_order_release);  // odd: in progress
    s.trace_id.store(trace_id, std::memory_order_relaxed);
    s.span_id.store(span_id, std::memory_order_relaxed);
    s.parent_id.store(parent_id, std::memory_order_relaxed);
    s.name.store(name_lit, std::memory_order_relaxed);
    s.reason.store(reason_lit, std::memory_order_relaxed);
    s.var.store(var, std::memory_order_relaxed);
    s.seq.store(seq, std::memory_order_relaxed);
    s.start_ns.store(start_ns, std::memory_order_relaxed);
    s.dur_ns.store(dur_ns, std::memory_order_relaxed);
    s.version.store(v + 2, std::memory_order_release);  // even: stable
    head.store(h + 1, std::memory_order_release);
  }

  /// Copies every stable slot into `out` (unordered). A slot being
  /// written concurrently is skipped, never torn.
  void snapshot(std::vector<SpanRecord>& out) const {
    const std::uint64_t h = head.load(std::memory_order_acquire);
    const std::uint64_t n = std::min<std::uint64_t>(h, kRingCapacity);
    for (std::uint64_t i = 0; i < n; ++i) {
      const Slot& s = slots[i];
      const std::uint32_t v1 = s.version.load(std::memory_order_acquire);
      if (v1 == 0 || (v1 & 1u) != 0) continue;
      SpanRecord r;
      r.trace_id = s.trace_id.load(std::memory_order_relaxed);
      r.span_id = s.span_id.load(std::memory_order_relaxed);
      r.parent_id = s.parent_id.load(std::memory_order_relaxed);
      r.name = s.name.load(std::memory_order_relaxed);
      r.reason = s.reason.load(std::memory_order_relaxed);
      r.var = s.var.load(std::memory_order_relaxed);
      r.seq = s.seq.load(std::memory_order_relaxed);
      r.start_ns = s.start_ns.load(std::memory_order_relaxed);
      r.dur_ns = s.dur_ns.load(std::memory_order_relaxed);
      r.tid = tid;
      std::atomic_thread_fence(std::memory_order_acquire);
      if (s.version.load(std::memory_order_relaxed) != v1) continue;
      if (r.name == nullptr) continue;
      out.push_back(r);
    }
  }

  void reset() noexcept {
    // Quiescent-point operation (bench phase boundaries, tests): mark
    // every slot unwritten and rewind the counter.
    for (std::size_t i = 0; i < kRingCapacity; ++i) {
      slots[i].version.store(0, std::memory_order_relaxed);
      slots[i].name.store(nullptr, std::memory_order_relaxed);
    }
    head.store(0, std::memory_order_release);
  }
};

struct Registry {
  std::mutex mutex;
  // Every ring ever created; exited threads' rings stay here (their
  // spans remain exportable) until a new thread recycles them.
  std::vector<std::shared_ptr<ThreadRing>> rings;
  std::vector<std::shared_ptr<ThreadRing>> free_rings;
  std::uint32_t next_tid = 1;
};

Registry& registry() {
  static Registry* r = new Registry();  // immortal: threads may outlive main
  return *r;
}

std::shared_ptr<ThreadRing> acquire_ring() {
  Registry& reg = registry();
  std::lock_guard<std::mutex> lock(reg.mutex);
  if (!reg.free_rings.empty()) {
    std::shared_ptr<ThreadRing> ring = std::move(reg.free_rings.back());
    reg.free_rings.pop_back();
    ring->reset();
    {
      std::lock_guard<std::mutex> nl(ring->name_mutex);
      ring->name.clear();
    }
    return ring;
  }
  auto ring = std::make_shared<ThreadRing>(reg.next_tid++);
  reg.rings.push_back(ring);
  return ring;
}

// Lazily binds a ring to the thread on first recorded span and returns
// it to the free list on thread exit.
struct RingHolder {
  std::shared_ptr<ThreadRing> ring;

  ~RingHolder() {
    if (!ring) return;
    Registry& reg = registry();
    std::lock_guard<std::mutex> lock(reg.mutex);
    reg.free_rings.push_back(std::move(ring));
  }
};

ThreadRing& local_ring() {
  thread_local RingHolder holder;
  if (!holder.ring) holder.ring = acquire_ring();
  return *holder.ring;
}

void append_event_json(std::string& out, const SpanRecord& r) {
  char buf[320];
  // Complete ("X") event; ts/dur in microseconds as Chrome expects.
  const double ts_us = static_cast<double>(r.start_ns) / 1000.0;
  const double dur_us = static_cast<double>(r.dur_ns) / 1000.0;
  int n = std::snprintf(
      buf, sizeof(buf),
      "{\"name\": \"%s\", \"cat\": \"rcm\", \"ph\": \"X\", "
      "\"ts\": %.3f, \"dur\": %.3f, \"pid\": 1, \"tid\": %" PRIu32
      ", \"args\": {\"trace_id\": \"%016" PRIx64 "\", \"span_id\": %" PRIu64
      ", \"parent_id\": %" PRIu64,
      r.name, ts_us, dur_us, r.tid, r.trace_id, r.span_id, r.parent_id);
  out.append(buf, static_cast<std::size_t>(n));
  if (r.var >= 0) {
    n = std::snprintf(buf, sizeof(buf),
                      ", \"var\": %" PRId64 ", \"seq\": %" PRId64, r.var,
                      r.seq);
    out.append(buf, static_cast<std::size_t>(n));
  }
  if (r.reason != nullptr) {
    out += ", \"reason\": \"";
    out += r.reason;  // reasons are fixed literals, no escaping needed
    out += '"';
  }
  out += "}}";
}

}  // namespace

bool enabled() noexcept { return g_enabled.load(std::memory_order_relaxed); }

void set_enabled(bool on) noexcept {
  g_enabled.store(on, std::memory_order_relaxed);
}

const TraceContext& current_context() noexcept { return t_context; }

void set_current_context(const TraceContext& ctx) noexcept {
  t_context = ctx;
}

ContextScope::ContextScope(const TraceContext& ctx) noexcept
    : saved_(t_context) {
  t_context = ctx;
}

ContextScope::~ContextScope() { t_context = saved_; }

void set_thread_name(const std::string& name) {
  if (!enabled()) return;
  ThreadRing& ring = local_ring();
  std::lock_guard<std::mutex> lock(ring.name_mutex);
  ring.name = name;
}

Span::Span(const char* name) noexcept : active_(enabled()), name_(name) {
  if (!active_) return;
  span_id_ = g_next_span_id.fetch_add(1, std::memory_order_relaxed);
  start_ns_ = now_ns();
  prev_ = t_context;
  t_context.span_id = span_id_;  // children of this span nest under it
}

Span::~Span() {
  if (!active_) return;
  const std::uint64_t end_ns = now_ns();
  t_context = prev_;
  local_ring().push(prev_.trace_id, span_id_, prev_.span_id, name_, reason_,
                    var_, seq_, start_ns_,
                    end_ns > start_ns_ ? end_ns - start_ns_ : 0);
}

std::uint64_t total_spans() noexcept {
  Registry& reg = registry();
  std::lock_guard<std::mutex> lock(reg.mutex);
  std::uint64_t total = 0;
  for (const auto& ring : reg.rings) {
    total += ring->head.load(std::memory_order_acquire);
  }
  return total;
}

void clear() noexcept {
  Registry& reg = registry();
  std::lock_guard<std::mutex> lock(reg.mutex);
  for (const auto& ring : reg.rings) ring->reset();
}

std::string export_chrome_json(std::size_t max_bytes) {
  std::vector<SpanRecord> records;
  std::vector<std::pair<std::uint32_t, std::string>> names;
  {
    Registry& reg = registry();
    std::lock_guard<std::mutex> lock(reg.mutex);
    for (const auto& ring : reg.rings) {
      ring->snapshot(records);
      std::lock_guard<std::mutex> nl(ring->name_mutex);
      if (!ring->name.empty()) names.emplace_back(ring->tid, ring->name);
    }
  }
  std::sort(records.begin(), records.end(),
            [](const SpanRecord& a, const SpanRecord& b) {
              return a.start_ns < b.start_ns;
            });

  std::string events;
  events.reserve(records.size() * 180);
  bool truncated = false;
  // Newest spans win under a byte budget: walk backwards, prepending.
  std::vector<std::string> chunks;
  std::size_t used = 0;
  for (auto it = records.rbegin(); it != records.rend(); ++it) {
    std::string one;
    append_event_json(one, *it);
    if (max_bytes > 0 && used + one.size() + 2 > max_bytes) {
      truncated = true;
      break;
    }
    used += one.size() + 2;
    chunks.push_back(std::move(one));
  }
  for (auto it = chunks.rbegin(); it != chunks.rend(); ++it) {
    if (!events.empty()) events += ",\n";
    events += *it;
  }
  for (const auto& [tid, name] : names) {
    char buf[160];
    const int n = std::snprintf(
        buf, sizeof(buf),
        "{\"name\": \"thread_name\", \"ph\": \"M\", \"pid\": 1, "
        "\"tid\": %" PRIu32 ", \"args\": {\"name\": \"%s\"}}",
        tid, name.c_str());
    if (n < 0 || static_cast<std::size_t>(n) >= sizeof(buf)) continue;
    if (!events.empty()) events += ",\n";
    events.append(buf, static_cast<std::size_t>(n));
  }

  std::string out = "{\"displayTimeUnit\": \"ns\",\n";
  if (truncated) out += "\"truncated\": true,\n";
  out += "\"traceEvents\": [\n";
  out += events;
  out += "\n]}\n";
  return out;
}

}  // namespace rcm::obs::trace

#endif  // RCM_TRACING_ENABLED
