// rcm::obs::trace — end-to-end tracing for the replicated pipeline.
//
// A TraceContext (trace id + current span id) is allocated per DM update,
// carried through the wire protocol as an optional tagged extension
// (wire/codec.hpp), and propagated across threads by storing the trace id
// on the Alert an update triggers. Each hop of the pipeline — DM emit,
// UDP ingest, WAL append, evaluator transition, AD filter verdict,
// holdback release, TCP fan-out — records a Span into a fixed-size
// lock-free ring buffer owned by the recording thread. Rings are
// exportable as Chrome trace_event JSON (chrome://tracing, Perfetto) and
// served live by the alert service's admin `trace-dump` command.
//
// Design rules, inherited from rcm::obs::metrics and enforced here:
//   1. The hot path is ONE ring write per span (plus two steady_clock
//      reads for the timestamps). No allocation, no locks, no syscalls.
//      bench/trace_overhead pins the cost against the swarm workload.
//   2. Tracing observes, it never participates: span recording feeds
//      nothing back into evaluation, filtering, or scheduling, and trace
//      ids are pure functions of (var, seqno) — swarm digests stay
//      bit-identical with tracing on or off.
//   3. -DRCM_NO_METRICS (or -DRCM_NO_TRACING alone) compiles every span
//      into an inline no-op with the identical API; TraceContext itself
//      stays defined because the wire codec carries it as plain data.
//
// Runtime gate: tracing starts DISABLED and costs one relaxed atomic
// load per would-be span until trace::set_enabled(true). Thread rings
// are allocated lazily on a thread's first recorded span, and recycled
// through a free list when the thread exits, so short-lived workers
// (service replica incarnations, pool threads) bound total ring memory
// by the peak number of concurrently-tracing threads.
//
// Concurrency: each ring has exactly one producer (its thread); readers
// (export) copy slots through a per-slot seqlock over atomic fields, so
// a dump taken mid-run sees each span either fully or not at all, and
// never blocks the producer. Span name/reason must be string literals
// (or otherwise immortal) — only the pointer is stored.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

#if defined(RCM_NO_METRICS) || defined(RCM_NO_TRACING)
#define RCM_TRACING_ENABLED 0
#else
#define RCM_TRACING_ENABLED 1
#endif

namespace rcm::obs::trace {

/// Propagated trace context: which end-to-end trace the current work
/// belongs to and which span is its parent. trace_id == 0 means "no
/// context" (spans still record, rooted at the thread).
struct TraceContext {
  std::uint64_t trace_id = 0;
  std::uint64_t span_id = 0;  ///< parent span for spans opened under this

  friend bool operator==(const TraceContext&, const TraceContext&) = default;
};

/// Deterministic per-update trace id: FNV-1a over (var, seqno). Pure
/// function of the update so tracing cannot perturb run digests, and the
/// same update traces to the same id on every replica. Never returns 0.
[[nodiscard]] constexpr std::uint64_t derive_trace_id(
    std::uint64_t var, std::int64_t seqno) noexcept {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  const std::uint64_t words[2] = {var + 1,
                                  static_cast<std::uint64_t>(seqno)};
  for (std::uint64_t w : words) {
    for (int i = 0; i < 8; ++i) {
      h ^= (w >> (8 * i)) & 0xff;
      h *= 0x100000001b3ULL;
    }
  }
  return h == 0 ? 1 : h;
}

/// One recorded span, as export sees it.
struct SpanRecord {
  std::uint64_t trace_id = 0;
  std::uint64_t span_id = 0;
  std::uint64_t parent_id = 0;
  const char* name = nullptr;    ///< string literal
  const char* reason = nullptr;  ///< optional string literal (verdicts)
  std::int64_t var = -1;         ///< -1 = not set
  std::int64_t seq = 0;
  std::uint64_t start_ns = 0;    ///< since process trace epoch
  std::uint64_t dur_ns = 0;
  std::uint32_t tid = 0;         ///< small per-thread index, not the OS tid
};

/// Spans each thread ring retains; older spans are overwritten.
inline constexpr std::size_t kRingCapacity = 4096;

#if RCM_TRACING_ENABLED

/// Global runtime gate. Disabled by default; one relaxed load per
/// would-be span while off.
[[nodiscard]] bool enabled() noexcept;
void set_enabled(bool on) noexcept;

/// The calling thread's current trace context (zero-initialized until a
/// ContextScope or set_current_context installs one).
[[nodiscard]] const TraceContext& current_context() noexcept;
void set_current_context(const TraceContext& ctx) noexcept;

/// RAII: installs `ctx` as the thread's current context, restoring the
/// previous one on scope exit. The unit of cross-hop propagation.
class ContextScope {
 public:
  explicit ContextScope(const TraceContext& ctx) noexcept;
  ~ContextScope();
  ContextScope(const ContextScope&) = delete;
  ContextScope& operator=(const ContextScope&) = delete;

 private:
  TraceContext saved_;
};

/// Labels the calling thread's ring in exports ("replica-0", "ad").
/// Cheap but not free (registry mutex): call once at thread start.
void set_thread_name(const std::string& name);

/// RAII span: measures construction→destruction and records one
/// SpanRecord into the thread ring on exit (iff tracing was enabled at
/// construction). Opens a child of the current context and becomes the
/// current parent for spans nested inside it.
class Span {
 public:
  /// `name` must be a string literal (only the pointer is kept).
  explicit Span(const char* name) noexcept;
  ~Span();
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  Span& var(std::int64_t v) noexcept {
    var_ = v;
    return *this;
  }
  Span& seq(std::int64_t s) noexcept {
    seq_ = s;
    return *this;
  }
  /// `r` must be a string literal.
  Span& reason(const char* r) noexcept {
    reason_ = r;
    return *this;
  }

 private:
  bool active_;
  const char* name_;
  const char* reason_ = nullptr;
  std::int64_t var_ = -1;
  std::int64_t seq_ = 0;
  std::uint64_t span_id_ = 0;
  std::uint64_t start_ns_ = 0;
  TraceContext prev_{};
};

/// Total spans recorded since start/clear(), across all rings (including
/// overwritten ones).
[[nodiscard]] std::uint64_t total_spans() noexcept;

/// Drops every recorded span (ring memory is kept). Benches call this
/// between phases; concurrent recording during clear is harmless but the
/// cut is not exact.
void clear() noexcept;

/// Exports every stable recorded span as Chrome trace_event JSON
/// ({"traceEvents": [...]}, "X" complete events in microseconds, plus
/// thread-name metadata). With max_bytes > 0 the newest spans win and
/// the object carries "truncated": true when the budget dropped any.
/// Loads directly in chrome://tracing and Perfetto.
[[nodiscard]] std::string export_chrome_json(std::size_t max_bytes = 0);

#else  // RCM_TRACING_ENABLED

inline bool enabled() noexcept { return false; }
inline void set_enabled(bool) noexcept {}
inline TraceContext current_context() noexcept { return {}; }
inline void set_current_context(const TraceContext&) noexcept {}

class ContextScope {
 public:
  explicit ContextScope(const TraceContext&) noexcept {}
};

inline void set_thread_name(const std::string&) {}

class Span {
 public:
  explicit Span(const char*) noexcept {}
  Span& var(std::int64_t) noexcept { return *this; }
  Span& seq(std::int64_t) noexcept { return *this; }
  Span& reason(const char*) noexcept { return *this; }
};

inline std::uint64_t total_spans() noexcept { return 0; }
inline void clear() noexcept {}
inline std::string export_chrome_json(std::size_t = 0) {
  return "{\"traceEvents\": []}\n";
}

#endif  // RCM_TRACING_ENABLED

}  // namespace rcm::obs::trace

/// Declares a scoped span named `var` (string-literal `name`); expands to
/// a no-op object under RCM_NO_METRICS / RCM_NO_TRACING. The object
/// supports .var()/.seq()/.reason() chaining in both builds.
#define RCM_TRACE_SPAN(var, name) ::rcm::obs::trace::Span var { name }
