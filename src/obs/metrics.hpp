// rcm::obs — lightweight observability substrate: named atomic counters,
// fixed-bucket latency histograms, scoped timers, and a JSON snapshot
// exporter.
//
// Design constraints, in order:
//   1. Hot-path cost must be a handful of relaxed atomic ops (counters)
//      or one atomic increment into a pre-sized bucket array (histograms).
//      Metric *lookup* (a map probe on the name) happens once, at
//      registration time; instrumented components cache the returned
//      reference, which stays valid for the registry's lifetime.
//   2. Recording must never perturb the systems being measured: metrics
//      observe, they do not participate. Simulated runs remain pure
//      functions of their configuration whether or not metrics are on.
//   3. Compiling with -DRCM_NO_METRICS turns every mutation into an
//      inline no-op with the identical API, so instrumented call sites
//      need no #ifdefs and the optimizer deletes them entirely.
//
// Thread safety: Counter::inc and Histogram::record are safe from any
// number of threads (the parallel swarm executor hammers them from every
// worker); registration is mutex-guarded; snapshot() gives a consistent-
// enough view for reporting (counts are read with acquire loads, but a
// snapshot taken mid-run is not a linearizable cut — don't diff two
// snapshots closer together than the thing you are measuring).
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace rcm::obs {

/// Monotone event counter.
class Counter {
 public:
  void inc(std::uint64_t n = 1) noexcept {
#if !defined(RCM_NO_METRICS)
    v_.fetch_add(n, std::memory_order_relaxed);
#else
    (void)n;
#endif
  }

  [[nodiscard]] std::uint64_t value() const noexcept {
    return v_.load(std::memory_order_relaxed);
  }

  void reset() noexcept { v_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> v_{0};
};

/// Fixed-bucket histogram. Buckets are defined by their inclusive upper
/// bounds; an implicit overflow bucket catches everything above the last
/// bound. Percentiles are estimated by nearest-rank over the cumulative
/// bucket counts and reported as the matching bucket's upper bound — an
/// overestimate by at most one bucket width, which is the standard
/// fixed-bucket trade (Prometheus histograms make the same one).
class Histogram {
 public:
  /// `upper_bounds` must be non-empty and strictly increasing.
  explicit Histogram(std::vector<double> upper_bounds);

  /// Geometric bucket ladder: `count` bounds from `lo` multiplying by
  /// `factor` (> 1). The default metrics cover ~7 decades of seconds.
  [[nodiscard]] static std::vector<double> exponential_bounds(
      double lo, double factor, std::size_t count);

  void record(double x) noexcept;

  [[nodiscard]] std::uint64_t count() const noexcept;
  [[nodiscard]] double sum() const noexcept;
  /// Mean of recorded values; 0 when empty.
  [[nodiscard]] double mean() const noexcept;
  [[nodiscard]] double observed_min() const noexcept;
  [[nodiscard]] double observed_max() const noexcept;

  /// Nearest-rank percentile estimate, q in [0, 1] (clamped). Returns 0
  /// for an empty histogram. q = 0 reports the observed minimum and
  /// q = 1 the observed maximum exactly (they are tracked separately);
  /// interior quantiles report a bucket upper bound.
  [[nodiscard]] double percentile(double q) const noexcept;

  [[nodiscard]] const std::vector<double>& bounds() const noexcept {
    return bounds_;
  }
  /// Per-bucket counts, index-aligned with bounds(); the final extra
  /// entry is the overflow bucket.
  [[nodiscard]] std::vector<std::uint64_t> bucket_counts() const;

  void reset() noexcept;

 private:
  std::vector<double> bounds_;
  std::unique_ptr<std::atomic<std::uint64_t>[]> buckets_;  // bounds()+1
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
  std::atomic<double> min_{0.0};
  std::atomic<double> max_{0.0};
};

/// Records wall-clock seconds between construction and destruction into a
/// histogram. Under RCM_NO_METRICS the clock is never read.
class ScopedTimer {
 public:
  explicit ScopedTimer(Histogram& h) noexcept
      : h_(h)
#if !defined(RCM_NO_METRICS)
        ,
        t0_(std::chrono::steady_clock::now())
#endif
  {
  }
  ~ScopedTimer() {
#if !defined(RCM_NO_METRICS)
    const std::chrono::duration<double> dt =
        std::chrono::steady_clock::now() - t0_;
    h_.record(dt.count());
#endif
  }
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  [[maybe_unused]] Histogram& h_;
#if !defined(RCM_NO_METRICS)
  std::chrono::steady_clock::time_point t0_;
#endif
};

/// Point-in-time copy of one counter, taken under the registry lock.
/// Exporters and the time-series sampler consume these instead of holding
/// metric references, so enumeration never races registration.
struct CounterSample {
  std::string name;
  std::uint64_t value = 0;
};

/// Point-in-time copy of one histogram's summary statistics plus its raw
/// bucket layout (buckets has bounds.size() + 1 entries; the extra final
/// entry is the overflow bucket).
struct HistogramSample {
  std::string name;
  std::uint64_t count = 0;
  double sum = 0.0;
  double p50 = 0.0;
  double p95 = 0.0;
  double p99 = 0.0;
  std::vector<double> bounds;
  std::vector<std::uint64_t> buckets;
};

/// Name → metric registry. Lookup registers on first use and returns a
/// stable reference; instrumented components resolve their metrics once
/// and keep the reference off the hot path.
class MetricsRegistry {
 public:
  /// Metric names are dotted paths ("swarm.runs", "filter.AD-2.pass").
  [[nodiscard]] Counter& counter(const std::string& name);

  /// First caller's `upper_bounds` win; later callers get the existing
  /// histogram regardless of bounds. Empty bounds select the default
  /// latency ladder (100ns .. ~100s, ×4 steps).
  [[nodiscard]] Histogram& histogram(const std::string& name,
                                     std::vector<double> upper_bounds = {});

  /// JSON object: {"counters": {name: value, ...},
  ///               "histograms": {name: {count, sum, mean, min, max,
  ///                                     p50, p95, p99,
  ///                                     buckets: [{le, count}, ...]}}}
  /// Keys are emitted in name order, so snapshots diff cleanly.
  [[nodiscard]] std::string snapshot_json() const;

  /// Prometheus text exposition (version 0.0.4): one `# TYPE` comment per
  /// metric, counters as plain samples, histograms as cumulative
  /// `_bucket{le=...}` series plus `_sum` and `_count`. Dots in metric
  /// names become underscores (Prometheus name charset). Metrics are
  /// emitted in name order.
  [[nodiscard]] std::string snapshot_prometheus() const;

  /// Every registered counter, copied under the registry lock, in name
  /// order. Safe to call concurrently with registration and recording.
  [[nodiscard]] std::vector<CounterSample> counter_samples() const;

  /// Every registered histogram's summary stats, in name order.
  [[nodiscard]] std::vector<HistogramSample> histogram_samples() const;

  /// Zeroes every registered metric (references stay valid). Benches use
  /// this between phases.
  void reset();

 private:
  struct Impl;
  // Leaked-singleton storage semantics live in registry(); the registry
  // itself is immovable so cached references never dangle.
  std::shared_ptr<Impl> impl_ = make_impl();
  static std::shared_ptr<Impl> make_impl();
};

/// The process-wide registry every built-in instrumentation point uses.
[[nodiscard]] MetricsRegistry& registry();

/// JSON string-escapes `s` (quotes, backslashes, control characters as
/// \u00XX). Shared by every rcm::obs JSON exporter so runtime-resolved
/// metric names can never produce invalid documents.
[[nodiscard]] std::string json_escape(const std::string& s);

}  // namespace rcm::obs

/// 1 when metrics are compiled in; 0 under -DRCM_NO_METRICS.
#if defined(RCM_NO_METRICS)
#define RCM_METRICS_ENABLED 0
#else
#define RCM_METRICS_ENABLED 1
#endif

// Hot-path instrumentation helpers. Each expands to a function-local
// static reference (one registry lookup ever, per call site) plus one
// relaxed atomic op — or to nothing at all under RCM_NO_METRICS, so
// disabled builds carry neither the atomic nor the static's guard.
// `name` must be a string literal (one metric per call site).
#if RCM_METRICS_ENABLED
#define RCM_COUNT(name)                                             \
  do {                                                              \
    static ::rcm::obs::Counter& rcm_obs_c =                         \
        ::rcm::obs::registry().counter(name);                       \
    rcm_obs_c.inc();                                                \
  } while (0)
#define RCM_COUNT_N(name, n)                                        \
  do {                                                              \
    static ::rcm::obs::Counter& rcm_obs_c =                         \
        ::rcm::obs::registry().counter(name);                       \
    rcm_obs_c.inc(static_cast<std::uint64_t>(n));                   \
  } while (0)
#define RCM_OBSERVE(name, x)                                        \
  do {                                                              \
    static ::rcm::obs::Histogram& rcm_obs_h =                       \
        ::rcm::obs::registry().histogram(name);                     \
    rcm_obs_h.record(static_cast<double>(x));                       \
  } while (0)
// As RCM_OBSERVE, with explicit bucket bounds (a braced initializer or
// vector expression) for non-latency quantities such as queue depths.
#define RCM_OBSERVE_WITH(name, bounds, x)                           \
  do {                                                              \
    static ::rcm::obs::Histogram& rcm_obs_h =                       \
        ::rcm::obs::registry().histogram(name,                      \
                                         std::vector<double> bounds); \
    rcm_obs_h.record(static_cast<double>(x));                       \
  } while (0)
// Declares a scoped wall-clock timer named `var` recording into
// histogram `name` when the enclosing scope exits.
#define RCM_SCOPED_TIMER(var, name)                                 \
  static ::rcm::obs::Histogram& var##_histogram =                   \
      ::rcm::obs::registry().histogram(name);                       \
  ::rcm::obs::ScopedTimer var { var##_histogram }
#else
#define RCM_COUNT(name) \
  do {                  \
  } while (0)
#define RCM_COUNT_N(name, n) \
  do {                       \
    (void)(n);               \
  } while (0)
#define RCM_OBSERVE(name, x) \
  do {                       \
    (void)(x);               \
  } while (0)
#define RCM_OBSERVE_WITH(name, bounds, x) \
  do {                                    \
    (void)(x);                            \
  } while (0)
#define RCM_SCOPED_TIMER(var, name) \
  do {                              \
  } while (0)
#endif
