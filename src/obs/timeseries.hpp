// rcm::obs — time-series sampler over the metrics registry.
//
// A background thread periodically copies every registered counter value
// and histogram summary into fixed-size per-series ring buffers, turning
// the registry's monotone totals into *windowed rates* (events/sec over
// the last 10s / 1m / 5m) and percentile history. The same three design
// rules as the rest of rcm::obs apply:
//   1. The monitored hot paths are untouched — sampling reads the same
//      relaxed atomics the snapshot exporter reads; no instrumented call
//      site pays anything for the sampler existing.
//   2. Observe, never participate: the sampler thread only *reads* the
//      registry. Swarm digests are bit-identical with the sampler on
//      (pinned by parallel_determinism_test).
//   3. Under -DRCM_NO_METRICS, start() spawns no thread, sample_now() is
//      a no-op, and snapshot_json() returns a well-formed empty document.
//
// Readers (the health document builder, admin exporters) query rates by
// metric name; a name that was never sampled reports rate 0 rather than
// erroring, so callers need no existence checks.
#pragma once

#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

#include "obs/metrics.hpp"

namespace rcm::obs {

/// The standard reporting windows, newest-first in exports.
inline constexpr std::chrono::seconds kRateWindows[] = {
    std::chrono::seconds{10}, std::chrono::seconds{60},
    std::chrono::seconds{300}};

/// One exported counter series: latest total plus per-window rates,
/// index-aligned with kRateWindows.
struct CounterRate {
  std::string name;
  std::uint64_t total = 0;
  double rates[3] = {0.0, 0.0, 0.0};
};

/// One exported histogram series: the latest sampled summary plus the
/// count rate over the first (10s) window.
struct HistogramPoint {
  std::string name;
  std::uint64_t count = 0;
  double sum = 0.0;
  double p50 = 0.0;
  double p95 = 0.0;
  double p99 = 0.0;
  double count_rate_10s = 0.0;
};

class TimeSeriesSampler {
 public:
  struct Options {
    /// Background sampling period. The 10s window needs >= 2 samples in
    /// it, so keep the interval well under the shortest window.
    std::chrono::milliseconds interval{1000};
    /// Ring capacity per series. 512 one-second samples comfortably
    /// covers the 5m window with room for clock jitter.
    std::size_t capacity = 512;
  };

  TimeSeriesSampler() : TimeSeriesSampler(Options{}) {}
  explicit TimeSeriesSampler(Options opts);
  ~TimeSeriesSampler();
  TimeSeriesSampler(const TimeSeriesSampler&) = delete;
  TimeSeriesSampler& operator=(const TimeSeriesSampler&) = delete;

  /// Spawns the background sampling thread (idempotent). No-op under
  /// RCM_NO_METRICS.
  void start();

  /// Stops and joins the background thread (idempotent; also called by
  /// the destructor). Recorded samples are kept.
  void stop();

  /// Takes one sample immediately. Deterministic tests drive this
  /// directly instead of start(); the background thread calls it too.
  void sample_now();

  /// Events/sec for counter `name` over `window`: the delta between the
  /// newest sample and the oldest sample inside the window, divided by
  /// their actual time spread (so a young process reports its rate over
  /// min(window, uptime)). 0 until at least two samples exist inside the
  /// window, and 0 for unknown names.
  [[nodiscard]] double rate(const std::string& name,
                            std::chrono::seconds window) const;

  /// Latest sampled total for counter `name` (0 if never sampled).
  [[nodiscard]] std::uint64_t latest(const std::string& name) const;

  /// All counter series with their windowed rates, in name order.
  [[nodiscard]] std::vector<CounterRate> counter_rates() const;

  /// All histogram series' newest summaries, in name order.
  [[nodiscard]] std::vector<HistogramPoint> histogram_points() const;

  /// Samples taken so far (via thread or sample_now()).
  [[nodiscard]] std::uint64_t samples_taken() const;

  /// JSON document:
  ///   {"interval_ms": I, "samples": N,
  ///    "counters": {name: {"total": T, "rate_10s": R, "rate_1m": R,
  ///                        "rate_5m": R}, ...},
  ///    "histograms": {name: {"count": C, "p50": …, "p95": …, "p99": …,
  ///                          "count_rate_10s": R}, ...}}
  /// Always well-formed; empty maps when nothing was sampled.
  [[nodiscard]] std::string snapshot_json() const;

 private:
  struct Impl;
  Impl* impl_;
};

/// The process-wide sampler the service layer starts. Constructed on
/// first use; never started implicitly.
[[nodiscard]] TimeSeriesSampler& sampler();

}  // namespace rcm::obs
