#include "obs/timeseries.hpp"

#include <condition_variable>
#include <map>
#include <mutex>
#include <sstream>
#include <thread>

namespace rcm::obs {
namespace {

std::uint64_t now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

// Fixed-capacity ring; push overwrites the oldest entry. at(0) is the
// oldest retained point, at(size()-1) the newest.
template <typename T>
class Ring {
 public:
  explicit Ring(std::size_t capacity) : buf_(capacity) {}

  void push(const T& x) {
    buf_[(start_ + size_) % buf_.size()] = x;
    if (size_ < buf_.size())
      ++size_;
    else
      start_ = (start_ + 1) % buf_.size();
  }

  [[nodiscard]] std::size_t size() const { return size_; }
  [[nodiscard]] const T& at(std::size_t i) const {
    return buf_[(start_ + i) % buf_.size()];
  }

 private:
  std::vector<T> buf_;
  std::size_t start_ = 0;
  std::size_t size_ = 0;
};

struct CounterPoint {
  std::uint64_t t_ns = 0;
  std::uint64_t value = 0;
};

struct HistPoint {
  std::uint64_t t_ns = 0;
  std::uint64_t count = 0;
  double sum = 0.0;
  double p50 = 0.0;
  double p95 = 0.0;
  double p99 = 0.0;
};

// (newest - oldest-in-window) / spread, in events per second. Generic
// over the two point kinds via a count accessor.
template <typename T, typename Get>
double window_rate(const Ring<T>& ring, std::chrono::seconds window,
                   Get get) {
  if (ring.size() < 2) return 0.0;
  const T& newest = ring.at(ring.size() - 1);
  const std::uint64_t window_ns =
      static_cast<std::uint64_t>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(window)
              .count());
  const std::uint64_t cutoff =
      newest.t_ns > window_ns ? newest.t_ns - window_ns : 0;
  // Rings are small (<= capacity); a linear scan from the old end finds
  // the first point inside the window.
  for (std::size_t i = 0; i + 1 < ring.size(); ++i) {
    const T& p = ring.at(i);
    if (p.t_ns < cutoff) continue;
    const std::uint64_t dt_ns = newest.t_ns - p.t_ns;
    if (dt_ns == 0) return 0.0;
    const double delta =
        static_cast<double>(get(newest)) - static_cast<double>(get(p));
    return delta / (static_cast<double>(dt_ns) * 1e-9);
  }
  return 0.0;
}

std::string json_num(double x) {
  std::ostringstream out;
  out.precision(12);
  out << x;
  return out.str();
}

}  // namespace

struct TimeSeriesSampler::Impl {
  Options opts;
  mutable std::mutex mutex;
  std::map<std::string, Ring<CounterPoint>> counters;
  std::map<std::string, Ring<HistPoint>> hists;
  std::uint64_t samples = 0;

  std::thread thread;
  std::mutex stop_mutex;
  std::condition_variable stop_cv;
  bool stopping = false;
  bool running = false;
};

TimeSeriesSampler::TimeSeriesSampler(Options opts) : impl_(new Impl) {
  impl_->opts = opts;
  if (impl_->opts.capacity < 2) impl_->opts.capacity = 2;
}

TimeSeriesSampler::~TimeSeriesSampler() {
  stop();
  delete impl_;
}

void TimeSeriesSampler::start() {
#if RCM_METRICS_ENABLED
  std::lock_guard lock{impl_->stop_mutex};
  if (impl_->running) return;
  impl_->stopping = false;
  impl_->running = true;
  impl_->thread = std::thread([this] {
    sample_now();
    std::unique_lock lock{impl_->stop_mutex};
    while (!impl_->stop_cv.wait_for(lock, impl_->opts.interval,
                                    [this] { return impl_->stopping; })) {
      lock.unlock();
      sample_now();
      lock.lock();
    }
  });
#endif
}

void TimeSeriesSampler::stop() {
  std::thread to_join;
  {
    std::lock_guard lock{impl_->stop_mutex};
    if (!impl_->running) return;
    impl_->stopping = true;
    impl_->running = false;
    to_join = std::move(impl_->thread);
  }
  impl_->stop_cv.notify_all();
  if (to_join.joinable()) to_join.join();
}

void TimeSeriesSampler::sample_now() {
#if RCM_METRICS_ENABLED
  // Enumerate outside our own lock: the registry has its own mutex and
  // the copy can allocate.
  const std::uint64_t t = now_ns();
  const std::vector<CounterSample> cs = registry().counter_samples();
  const std::vector<HistogramSample> hs = registry().histogram_samples();
  std::lock_guard lock{impl_->mutex};
  for (const CounterSample& c : cs) {
    auto [it, inserted] = impl_->counters.try_emplace(
        c.name, Ring<CounterPoint>{impl_->opts.capacity});
    it->second.push(CounterPoint{t, c.value});
  }
  for (const HistogramSample& h : hs) {
    auto [it, inserted] =
        impl_->hists.try_emplace(h.name, Ring<HistPoint>{impl_->opts.capacity});
    it->second.push(HistPoint{t, h.count, h.sum, h.p50, h.p95, h.p99});
  }
  ++impl_->samples;
#endif
}

double TimeSeriesSampler::rate(const std::string& name,
                               std::chrono::seconds window) const {
  std::lock_guard lock{impl_->mutex};
  const auto it = impl_->counters.find(name);
  if (it == impl_->counters.end()) return 0.0;
  return window_rate(it->second, window,
                     [](const CounterPoint& p) { return p.value; });
}

std::uint64_t TimeSeriesSampler::latest(const std::string& name) const {
  std::lock_guard lock{impl_->mutex};
  const auto it = impl_->counters.find(name);
  if (it == impl_->counters.end() || it->second.size() == 0) return 0;
  return it->second.at(it->second.size() - 1).value;
}

std::vector<CounterRate> TimeSeriesSampler::counter_rates() const {
  std::lock_guard lock{impl_->mutex};
  std::vector<CounterRate> out;
  out.reserve(impl_->counters.size());
  for (const auto& [name, ring] : impl_->counters) {
    CounterRate r;
    r.name = name;
    if (ring.size() > 0) r.total = ring.at(ring.size() - 1).value;
    for (std::size_t w = 0; w < 3; ++w)
      r.rates[w] = window_rate(ring, kRateWindows[w],
                               [](const CounterPoint& p) { return p.value; });
    out.push_back(std::move(r));
  }
  return out;
}

std::vector<HistogramPoint> TimeSeriesSampler::histogram_points() const {
  std::lock_guard lock{impl_->mutex};
  std::vector<HistogramPoint> out;
  out.reserve(impl_->hists.size());
  for (const auto& [name, ring] : impl_->hists) {
    HistogramPoint p;
    p.name = name;
    if (ring.size() > 0) {
      const HistPoint& newest = ring.at(ring.size() - 1);
      p.count = newest.count;
      p.sum = newest.sum;
      p.p50 = newest.p50;
      p.p95 = newest.p95;
      p.p99 = newest.p99;
    }
    p.count_rate_10s = window_rate(
        ring, kRateWindows[0], [](const HistPoint& h) { return h.count; });
    out.push_back(std::move(p));
  }
  return out;
}

std::uint64_t TimeSeriesSampler::samples_taken() const {
  std::lock_guard lock{impl_->mutex};
  return impl_->samples;
}

std::string TimeSeriesSampler::snapshot_json() const {
  const std::vector<CounterRate> counters = counter_rates();
  const std::vector<HistogramPoint> hists = histogram_points();
  std::ostringstream out;
  out << "{\"interval_ms\": "
      << std::chrono::duration_cast<std::chrono::milliseconds>(
             impl_->opts.interval)
             .count()
      << ", \"samples\": " << samples_taken() << ", \"counters\": {";
  bool first = true;
  for (const CounterRate& c : counters) {
    out << (first ? "" : ", ") << "\"" << json_escape(c.name)
        << "\": {\"total\": " << c.total
        << ", \"rate_10s\": " << json_num(c.rates[0])
        << ", \"rate_1m\": " << json_num(c.rates[1])
        << ", \"rate_5m\": " << json_num(c.rates[2]) << "}";
    first = false;
  }
  out << "}, \"histograms\": {";
  first = true;
  for (const HistogramPoint& h : hists) {
    out << (first ? "" : ", ") << "\"" << json_escape(h.name)
        << "\": {\"count\": " << h.count << ", \"p50\": " << json_num(h.p50)
        << ", \"p95\": " << json_num(h.p95) << ", \"p99\": " << json_num(h.p99)
        << ", \"count_rate_10s\": " << json_num(h.count_rate_10s) << "}";
    first = false;
  }
  out << "}}";
  return out.str();
}

TimeSeriesSampler& sampler() {
  static TimeSeriesSampler instance;
  return instance;
}

}  // namespace rcm::obs
