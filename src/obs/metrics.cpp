#include "obs/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <limits>
#include <map>
#include <mutex>
#include <sstream>
#include <stdexcept>

namespace rcm::obs {
namespace {

void atomic_add(std::atomic<double>& target, double delta) noexcept {
  double cur = target.load(std::memory_order_relaxed);
  while (!target.compare_exchange_weak(cur, cur + delta,
                                       std::memory_order_relaxed)) {
  }
}

void atomic_min(std::atomic<double>& target, double x) noexcept {
  double cur = target.load(std::memory_order_relaxed);
  while (x < cur && !target.compare_exchange_weak(cur, x,
                                                  std::memory_order_relaxed)) {
  }
}

void atomic_max(std::atomic<double>& target, double x) noexcept {
  double cur = target.load(std::memory_order_relaxed);
  while (x > cur && !target.compare_exchange_weak(cur, x,
                                                  std::memory_order_relaxed)) {
  }
}

void json_escape_into(std::ostringstream& out, const std::string& s) {
  for (char c : s) {
    switch (c) {
      case '"': out << "\\\""; break;
      case '\\': out << "\\\\"; break;
      case '\n': out << "\\n"; break;
      case '\r': out << "\\r"; break;
      case '\t': out << "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out << buf;
        } else {
          out << c;
        }
    }
  }
}

// Doubles in snapshots: shortest round-trippable-enough form. Metric
// values are counts, seconds and bucket bounds; 12 significant digits
// cover them without printing 0.30000000000000004-style noise.
std::string json_double(double x) {
  std::ostringstream out;
  out.precision(12);
  out << x;
  return out.str();
}

}  // namespace

Histogram::Histogram(std::vector<double> upper_bounds)
    : bounds_(std::move(upper_bounds)) {
  if (bounds_.empty())
    throw std::invalid_argument("Histogram: need at least one bucket bound");
  if (!std::is_sorted(bounds_.begin(), bounds_.end()) ||
      std::adjacent_find(bounds_.begin(), bounds_.end()) != bounds_.end())
    throw std::invalid_argument(
        "Histogram: bounds must be strictly increasing");
  buckets_ = std::make_unique<std::atomic<std::uint64_t>[]>(bounds_.size() + 1);
  reset();
}

std::vector<double> Histogram::exponential_bounds(double lo, double factor,
                                                  std::size_t count) {
  if (lo <= 0.0 || factor <= 1.0 || count == 0)
    throw std::invalid_argument("Histogram::exponential_bounds: bad ladder");
  std::vector<double> bounds;
  bounds.reserve(count);
  double b = lo;
  for (std::size_t i = 0; i < count; ++i, b *= factor) bounds.push_back(b);
  return bounds;
}

void Histogram::record(double x) noexcept {
#if !defined(RCM_NO_METRICS)
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), x);
  const auto idx = static_cast<std::size_t>(it - bounds_.begin());
  buckets_[idx].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  atomic_add(sum_, x);
  atomic_min(min_, x);
  atomic_max(max_, x);
#else
  (void)x;
#endif
}

std::uint64_t Histogram::count() const noexcept {
  return count_.load(std::memory_order_relaxed);
}

double Histogram::sum() const noexcept {
  return sum_.load(std::memory_order_relaxed);
}

double Histogram::mean() const noexcept {
  const std::uint64_t n = count();
  return n == 0 ? 0.0 : sum() / static_cast<double>(n);
}

double Histogram::observed_min() const noexcept {
  return count() == 0 ? 0.0 : min_.load(std::memory_order_relaxed);
}

double Histogram::observed_max() const noexcept {
  return count() == 0 ? 0.0 : max_.load(std::memory_order_relaxed);
}

double Histogram::percentile(double q) const noexcept {
  const std::uint64_t n = count();
  if (n == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  if (q == 0.0) return observed_min();
  if (q == 1.0) return observed_max();
  // Nearest-rank: the smallest bucket whose cumulative count covers
  // ceil(q * n) observations.
  const auto rank =
      static_cast<std::uint64_t>(std::ceil(q * static_cast<double>(n)));
  const std::uint64_t target = std::max<std::uint64_t>(rank, 1);
  std::uint64_t cumulative = 0;
  for (std::size_t i = 0; i < bounds_.size(); ++i) {
    cumulative += buckets_[i].load(std::memory_order_relaxed);
    if (cumulative >= target) return bounds_[i];
  }
  return observed_max();  // rank lands in the overflow bucket
}

std::vector<std::uint64_t> Histogram::bucket_counts() const {
  std::vector<std::uint64_t> out(bounds_.size() + 1);
  for (std::size_t i = 0; i < out.size(); ++i)
    out[i] = buckets_[i].load(std::memory_order_relaxed);
  return out;
}

void Histogram::reset() noexcept {
  for (std::size_t i = 0; i < bounds_.size() + 1; ++i)
    buckets_[i].store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
  min_.store(std::numeric_limits<double>::infinity(),
             std::memory_order_relaxed);
  max_.store(-std::numeric_limits<double>::infinity(),
             std::memory_order_relaxed);
}

struct MetricsRegistry::Impl {
  mutable std::mutex mutex;
  std::map<std::string, std::unique_ptr<Counter>> counters;
  std::map<std::string, std::unique_ptr<Histogram>> histograms;
};

std::shared_ptr<MetricsRegistry::Impl> MetricsRegistry::make_impl() {
  return std::make_shared<Impl>();
}

Counter& MetricsRegistry::counter(const std::string& name) {
  std::lock_guard lock{impl_->mutex};
  auto& slot = impl_->counters[name];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Histogram& MetricsRegistry::histogram(const std::string& name,
                                      std::vector<double> upper_bounds) {
  std::lock_guard lock{impl_->mutex};
  auto& slot = impl_->histograms[name];
  if (!slot) {
    if (upper_bounds.empty())
      upper_bounds = Histogram::exponential_bounds(1e-7, 4.0, 16);
    slot = std::make_unique<Histogram>(std::move(upper_bounds));
  }
  return *slot;
}

std::string MetricsRegistry::snapshot_json() const {
  std::lock_guard lock{impl_->mutex};
  std::ostringstream out;
  out << "{\n  \"counters\": {";
  bool first = true;
  for (const auto& [name, c] : impl_->counters) {
    out << (first ? "\n" : ",\n") << "    \"";
    json_escape_into(out, name);
    out << "\": " << c->value();
    first = false;
  }
  out << (first ? "" : "\n  ") << "},\n  \"histograms\": {";
  first = true;
  for (const auto& [name, h] : impl_->histograms) {
    out << (first ? "\n" : ",\n") << "    \"";
    json_escape_into(out, name);
    out << "\": {\"count\": " << h->count()
        << ", \"sum\": " << json_double(h->sum())
        << ", \"mean\": " << json_double(h->mean())
        << ", \"min\": " << json_double(h->observed_min())
        << ", \"max\": " << json_double(h->observed_max())
        << ", \"p50\": " << json_double(h->percentile(0.50))
        << ", \"p95\": " << json_double(h->percentile(0.95))
        << ", \"p99\": " << json_double(h->percentile(0.99))
        << ", \"buckets\": [";
    const std::vector<std::uint64_t> counts = h->bucket_counts();
    const std::vector<double>& bounds = h->bounds();
    bool first_bucket = true;
    for (std::size_t i = 0; i < counts.size(); ++i) {
      if (counts[i] == 0) continue;  // sparse: elide empty buckets
      out << (first_bucket ? "" : ", ") << "{\"le\": "
          << (i < bounds.size() ? json_double(bounds[i]) : "\"+inf\"")
          << ", \"count\": " << counts[i] << "}";
      first_bucket = false;
    }
    out << "]}";
    first = false;
  }
  out << (first ? "" : "\n  ") << "}\n}\n";
  return out.str();
}

namespace {

// Prometheus metric names may contain [a-zA-Z0-9_:] and must not start
// with a digit. Dotted rcm names ("service.wal.appends") map onto the
// conventional underscore form.
std::string prom_name(const std::string& name) {
  std::string out;
  out.reserve(name.size() + 1);
  for (char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == ':';
    out.push_back(ok ? c : '_');
  }
  if (out.empty() || (out[0] >= '0' && out[0] <= '9')) out.insert(out.begin(), '_');
  return out;
}

std::string prom_double(double x) {
  if (std::isinf(x)) return x > 0 ? "+Inf" : "-Inf";
  if (std::isnan(x)) return "NaN";
  return json_double(x);
}

}  // namespace

std::string MetricsRegistry::snapshot_prometheus() const {
  std::lock_guard lock{impl_->mutex};
  std::ostringstream out;
  for (const auto& [name, c] : impl_->counters) {
    const std::string n = prom_name(name);
    out << "# TYPE " << n << " counter\n" << n << " " << c->value() << "\n";
  }
  for (const auto& [name, h] : impl_->histograms) {
    const std::string n = prom_name(name);
    out << "# TYPE " << n << " histogram\n";
    const std::vector<std::uint64_t> counts = h->bucket_counts();
    const std::vector<double>& bounds = h->bounds();
    std::uint64_t cumulative = 0;
    for (std::size_t i = 0; i < counts.size(); ++i) {
      cumulative += counts[i];
      out << n << "_bucket{le=\""
          << (i < bounds.size() ? prom_double(bounds[i]) : "+Inf") << "\"} "
          << cumulative << "\n";
    }
    out << n << "_sum " << prom_double(h->sum()) << "\n"
        << n << "_count " << h->count() << "\n";
  }
  return out.str();
}

std::vector<CounterSample> MetricsRegistry::counter_samples() const {
  std::lock_guard lock{impl_->mutex};
  std::vector<CounterSample> out;
  out.reserve(impl_->counters.size());
  for (const auto& [name, c] : impl_->counters)
    out.push_back({name, c->value()});
  return out;
}

std::vector<HistogramSample> MetricsRegistry::histogram_samples() const {
  std::lock_guard lock{impl_->mutex};
  std::vector<HistogramSample> out;
  out.reserve(impl_->histograms.size());
  for (const auto& [name, h] : impl_->histograms) {
    HistogramSample s;
    s.name = name;
    s.count = h->count();
    s.sum = h->sum();
    s.p50 = h->percentile(0.50);
    s.p95 = h->percentile(0.95);
    s.p99 = h->percentile(0.99);
    s.bounds = h->bounds();
    s.buckets = h->bucket_counts();
    out.push_back(std::move(s));
  }
  return out;
}

void MetricsRegistry::reset() {
  std::lock_guard lock{impl_->mutex};
  for (auto& [name, c] : impl_->counters) c->reset();
  for (auto& [name, h] : impl_->histograms) h->reset();
}

MetricsRegistry& registry() {
  static MetricsRegistry instance;
  return instance;
}

std::string json_escape(const std::string& s) {
  std::ostringstream out;
  json_escape_into(out, s);
  return out.str();
}

}  // namespace rcm::obs
