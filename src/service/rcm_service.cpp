// rcm_service — hosts one replicated alert service on loopback.
//
//   rcm_service --replicas 3 --filter AD-4 --data-dir /tmp/rcm
//               --condition threshold --param 60     (one line)
//
// With --shards N it hosts a sharded deployment instead: N shard
// instances behind a consistent-hash ring plus — for multi-variable
// conditions — a merge tier that evaluates the global condition (see
// docs/SERVICE.md, "Sharding & resharding").
//
// Prints the ingest / subscriber / admin endpoints, then runs until an
// admin drain request arrives (rcm_service_client --cmd drain) or the
// optional --duration budget expires. Exit codes: 0 = drained cleanly,
// 2 = usage/configuration error.
#include <chrono>
#include <cstdio>
#include <exception>
#include <string>
#include <thread>

#include <memory>
#include <optional>

#include "obs/timeseries.hpp"
#include "obs/trace.hpp"
#include "service/alert_service.hpp"
#include "service/health.hpp"
#include "service/shard_cluster.hpp"
#include "swarm/spec.hpp"
#include "util/args.hpp"

namespace {

rcm::swarm::ConditionKind parse_condition_kind(const std::string& name) {
  using rcm::swarm::ConditionKind;
  if (name == "threshold") return ConditionKind::kThreshold;
  if (name == "rise-aggressive") return ConditionKind::kRiseAggressive;
  if (name == "rise-conservative") return ConditionKind::kRiseConservative;
  if (name == "abs-diff") return ConditionKind::kAbsDiff;
  if (name == "band") return ConditionKind::kBand;
  if (name == "rise2d-aggressive") return ConditionKind::kRise2dAggressive;
  if (name == "rise2d-conservative")
    return ConditionKind::kRise2dConservative;
  throw std::invalid_argument("unknown condition kind: " + name);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace rcm;

  util::Args args;
  args.add_flag("condition", "threshold",
                "condition kind: threshold, rise-aggressive, "
                "rise-conservative, abs-diff, band, rise2d-aggressive, "
                "rise2d-conservative");
  args.add_flag("param", "60", "condition numeric parameter");
  args.add_flag("replicas", "2", "number of CE replicas");
  args.add_flag("filter", "AD-1", "AD filter (AD-1..AD-6, pass, drop)");
  args.add_flag("data-dir", "", "durable state directory (required)");
  args.add_flag("checkpoint-every", "256",
                "accepted updates between automatic checkpoints");
  args.add_flag("journal", "false",
                "record the full accepted-update journal per replica");
  args.add_flag("no-auto-restart", "false",
                "do not restart killed replicas automatically");
  args.add_flag("duration", "0",
                "seconds to serve before draining (0 = until admin drain)");
  args.add_flag("no-tracing", "false",
                "disable rcm::obs::trace span recording (admin trace-dump "
                "will be empty)");
  args.add_flag("shards", "0",
                "host a sharded deployment with N shard instances "
                "(0 = single unsharded service)");
  args.add_flag("merge-replicas", "1",
                "CE replicas in the merge tier (multi-variable "
                "conditions with --shards only)");
  args.add_flag("prom-port", "-1",
                "serve Prometheus text exposition (GET /metrics) on this "
                "loopback TCP port (0 = ephemeral, -1 = off)");
  args.add_flag("no-watchdog", "false",
                "disable the stall watchdog (health documents report no "
                "heartbeat/latency degradations)");

  if (!args.parse(argc, argv)) {
    std::fprintf(stderr, "%s\n%s", args.error().c_str(),
                 args.usage(argv[0]).c_str());
    return 2;
  }
  if (args.help_requested()) {
    std::printf("%s", args.usage(argv[0]).c_str());
    return 0;
  }

  try {
    // Live service default: traceable. The rings are fixed-size and the
    // hot-path cost is one ring write per span (bench/trace_overhead).
    obs::trace::set_enabled(!args.get_bool("no-tracing"));

    // Windowed rates in health documents come from the process sampler;
    // a hosting process runs it for its whole lifetime. Library users
    // (tests, benches) opt in explicitly instead.
    obs::sampler().start();

    std::unique_ptr<service::PromExporter> prom;
    const int prom_port = args.get_int("prom-port");
    if (prom_port >= 0) {
      prom = std::make_unique<service::PromExporter>(
          static_cast<std::uint16_t>(prom_port));
      prom->start();
      std::printf("  prometheus:       http://127.0.0.1:%u/metrics\n",
                  prom->port());
    }

    const int num_shards = args.get_int("shards");
    if (num_shards > 0) {
      service::ShardClusterConfig config;
      config.condition = swarm::build_condition(
          parse_condition_kind(args.get("condition")),
          args.get_double("param"));
      config.num_shards = static_cast<std::size_t>(num_shards);
      config.replicas_per_shard =
          static_cast<std::size_t>(args.get_int("replicas"));
      config.merge_replicas =
          static_cast<std::size_t>(args.get_int("merge-replicas"));
      config.filter = parse_filter_kind(args.get("filter"));
      config.data_dir = args.get("data-dir");
      config.checkpoint_every =
          static_cast<std::size_t>(args.get_int("checkpoint-every"));
      config.record_journal = args.get_bool("journal");
      config.auto_restart = !args.get_bool("no-auto-restart");
      config.watchdog_enabled = !args.get_bool("no-watchdog");
      if (config.data_dir.empty()) {
        std::fprintf(stderr, "--data-dir is required\n");
        return 2;
      }

      service::ShardedCluster cluster{std::move(config)};
      const wire::ShardMap map = cluster.shard_map();
      std::printf("rcm_service: %zu shard(s), filter %s, map epoch %llu\n",
                  cluster.config().num_shards,
                  std::string(filter_kind_name(cluster.config().filter))
                      .c_str(),
                  static_cast<unsigned long long>(map.epoch));
      for (const wire::ShardMapEntry& entry : map.shards) {
        service::AlertService& svc = cluster.shard(entry.shard_id);
        std::printf("  shard %u:\n", entry.shard_id);
        for (std::size_t i = 0; i < entry.replica_ports.size(); ++i)
          std::printf("    replica %zu ingest: udp 127.0.0.1:%u\n", i,
                      entry.replica_ports[i]);
        std::printf("    subscribers:      tcp 127.0.0.1:%u\n",
                    svc.subscriber_port());
        std::printf("    admin:            tcp 127.0.0.1:%u\n",
                    svc.admin_port());
      }
      if (service::AlertService* merge = cluster.merge()) {
        std::printf("  merge tier:\n");
        for (std::size_t i = 0; i < merge->config().num_replicas; ++i)
          std::printf("    replica %zu ingest: udp 127.0.0.1:%u\n", i,
                      merge->replica_port(i));
        std::printf("    subscribers:      tcp 127.0.0.1:%u\n",
                    merge->subscriber_port());
        std::printf("    admin:            tcp 127.0.0.1:%u\n",
                    merge->admin_port());
      }
      std::fflush(stdout);

      const double duration = args.get_double("duration");
      const auto deadline =
          std::chrono::steady_clock::now() +
          std::chrono::milliseconds{
              static_cast<long long>(duration * 1000.0)};
      while (!cluster.drain_requested()) {
        if (duration > 0 && std::chrono::steady_clock::now() >= deadline)
          break;
        std::this_thread::sleep_for(std::chrono::milliseconds{200});
      }
      cluster.drain();
      const service::ServiceStatus s = cluster.evaluating_service().status();
      std::printf("rcm_service: drained (%llu alerts displayed)\n",
                  static_cast<unsigned long long>(s.displayed));
      return 0;
    }

    service::ServiceConfig config;
    config.condition = swarm::build_condition(
        parse_condition_kind(args.get("condition")),
        args.get_double("param"));
    config.num_replicas = static_cast<std::size_t>(args.get_int("replicas"));
    config.filter = parse_filter_kind(args.get("filter"));
    config.data_dir = args.get("data-dir");
    config.checkpoint_every =
        static_cast<std::size_t>(args.get_int("checkpoint-every"));
    config.record_journal = args.get_bool("journal");
    config.auto_restart = !args.get_bool("no-auto-restart");
    config.watchdog_enabled = !args.get_bool("no-watchdog");
    if (config.data_dir.empty()) {
      std::fprintf(stderr, "--data-dir is required\n");
      return 2;
    }

    service::AlertService svc{std::move(config)};
    std::printf("rcm_service: %zu replica(s), filter %s\n",
                svc.config().num_replicas,
                std::string(filter_kind_name(svc.config().filter)).c_str());
    for (std::size_t i = 0; i < svc.config().num_replicas; ++i)
      std::printf("  replica %zu ingest: udp 127.0.0.1:%u\n", i,
                  svc.replica_port(i));
    std::printf("  subscribers:      tcp 127.0.0.1:%u\n",
                svc.subscriber_port());
    std::printf("  admin:            tcp 127.0.0.1:%u\n", svc.admin_port());
    std::fflush(stdout);

    const double duration = args.get_double("duration");
    if (duration > 0) {
      (void)svc.await_drain_request(std::chrono::milliseconds{
          static_cast<long long>(duration * 1000.0)});
    } else {
      while (!svc.await_drain_request(std::chrono::milliseconds{1000})) {
      }
    }
    svc.drain();
    const service::ServiceStatus s = svc.status();
    std::printf(
        "rcm_service: drained (%llu datagrams in, %llu alerts displayed)\n",
        static_cast<unsigned long long>(s.ingested_datagrams),
        static_cast<unsigned long long>(s.displayed));
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "rcm_service: %s\n", e.what());
    return 2;
  }
}
