#include "service/admin.hpp"

#include <algorithm>

#include "wire/buffer.hpp"

namespace rcm::service {
namespace {

constexpr std::uint8_t kOk = 0x4f;     // 'O'
constexpr std::uint8_t kError = 0x45;  // 'E'

// Bulk response bodies (metrics snapshots, trace dumps) must still fit
// in one CRC frame (wire::kMaxFramePayload, 1 MiB) together with the
// response envelope.
constexpr std::size_t kMaxBodyBytes = 1u << 20;

void encode_status(wire::Writer& w, const ServiceStatus& s) {
  w.varint(s.ingested_datagrams);
  w.varint(s.displayed);
  w.varint(s.subscribers);
  w.varint(s.dm_ends);
  w.varint(s.end_timeouts);
  w.varint(s.replicas.size());
  for (const ReplicaStatus& r : s.replicas) {
    w.u8(static_cast<std::uint8_t>(r.state));
    w.varint(r.port);
    w.varint(r.incarnation);
    w.varint(r.accepted);
    w.varint(r.wal_records);
    w.varint(r.checkpoints);
    w.varint(r.recovered_wal);
  }
}

ServiceStatus decode_status(wire::Reader& r) {
  ServiceStatus s;
  s.ingested_datagrams = r.varint();
  s.displayed = r.varint();
  s.subscribers = r.varint();
  s.dm_ends = r.varint();
  s.end_timeouts = r.varint();
  const std::uint64_t n = r.varint();
  if (n > 4096) throw wire::DecodeError("admin status: replica count");
  s.replicas.reserve(n);
  for (std::uint64_t i = 0; i < n; ++i) {
    ReplicaStatus rs;
    const std::uint8_t state = r.u8();
    if (state > static_cast<std::uint8_t>(ReplicaState::kDown))
      throw wire::DecodeError("admin status: replica state");
    rs.state = static_cast<ReplicaState>(state);
    const std::uint64_t port = r.varint();
    if (port > 0xffff) throw wire::DecodeError("admin status: port");
    rs.port = static_cast<std::uint16_t>(port);
    rs.incarnation = r.varint();
    rs.accepted = r.varint();
    rs.wal_records = r.varint();
    rs.checkpoints = r.varint();
    rs.recovered_wal = r.varint();
    s.replicas.push_back(rs);
  }
  return s;
}

// Session entries ride one extension payload
// (wire::kMaxExtensionPayloadBytes); leave headroom for the count
// prefix so encoding never produces an undecodable section.
constexpr std::size_t kSessionExtBudget = 3900;

std::vector<std::uint8_t> encode_sessions_ext(const ServiceStatus& s) {
  wire::Writer w;
  w.varint(s.total_sessions != 0 ? s.total_sessions : s.sessions.size());
  wire::Writer entries;
  std::uint64_t count = 0;
  for (const SessionStatus& e : s.sessions) {
    wire::Writer one;
    one.string(e.id);
    one.varint(e.acked);
    one.varint(e.framed);
    one.varint(e.lag);
    one.varint(e.backlog);
    one.u8(static_cast<std::uint8_t>((e.connected ? 1 : 0) |
                                     (e.evicted ? 2 : 0)));
    if (entries.size() + one.size() > kSessionExtBudget) break;
    entries.raw(one.bytes());
    ++count;
  }
  w.varint(count);
  w.raw(entries.bytes());
  return w.take();
}

void decode_sessions_ext(std::span<const std::uint8_t> payload,
                         ServiceStatus& s) {
  wire::Reader r{payload};
  s.total_sessions = r.varint();
  const std::uint64_t count = r.varint();
  if (count > 4096) throw wire::DecodeError("admin sessions: count");
  s.sessions.clear();
  s.sessions.reserve(count);
  for (std::uint64_t i = 0; i < count; ++i) {
    SessionStatus e;
    e.id = r.string();
    e.acked = r.varint();
    e.framed = r.varint();
    e.lag = r.varint();
    e.backlog = r.varint();
    const std::uint8_t flags = r.u8();
    if (flags > 3) throw wire::DecodeError("admin sessions: flags");
    e.connected = (flags & 1) != 0;
    e.evicted = (flags & 2) != 0;
    s.sessions.push_back(std::move(e));
  }
  r.expect_done();
}

// Owned-variable lists ride the same bounded-extension scheme as
// sessions: cap the encoded list, always report the true total.
constexpr std::size_t kShardExtMaxOwned = 512;

std::vector<std::uint8_t> encode_shard_ext(const ShardStatus& s) {
  wire::Writer w;
  w.varint(s.shard_id);
  w.varint(s.epoch);
  w.varint(s.total_owned != 0 ? s.total_owned : s.owned.size());
  const std::size_t count = std::min(s.owned.size(), kShardExtMaxOwned);
  w.varint(count);
  for (std::size_t i = 0; i < count; ++i) w.varint(s.owned[i]);
  return w.take();
}

void decode_shard_ext(std::span<const std::uint8_t> payload,
                      ServiceStatus& s) {
  wire::Reader r{payload};
  ShardStatus st;
  st.shard_id = static_cast<std::uint32_t>(r.varint());
  st.epoch = r.varint();
  st.total_owned = r.varint();
  const std::uint64_t count = r.varint();
  if (count > kShardExtMaxOwned)
    throw wire::DecodeError("admin shard: owned count");
  st.owned.reserve(count);
  for (std::uint64_t i = 0; i < count; ++i)
    st.owned.push_back(static_cast<VarId>(r.varint()));
  r.expect_done();
  s.shard = std::move(st);
}

wire::VersionHeader parse_version_ext(std::span<const std::uint8_t> payload,
                                      const char* format) {
  wire::Reader vr{payload};
  const wire::VersionHeader v =
      wire::decode_version(vr, format, kAdminMinMajor, kAdminMaxMajor);
  vr.expect_done();
  return v;
}

}  // namespace

std::vector<std::uint8_t> encode_admin_request(const AdminRequest& req) {
  wire::Writer w;
  w.u8(req.known ? static_cast<std::uint8_t>(req.command) : req.raw_command);
  w.varint(req.replica);
  wire::Extension version_ext;
  version_ext.tag = kAdminVersionExtTag;
  {
    wire::Writer vw;
    wire::encode_version(vw, kAdminVersion);
    version_ext.payload = vw.take();
  }
  std::vector<wire::Extension> exts;
  exts.push_back(std::move(version_ext));
  if (req.scope != HealthScope::kCluster) {
    // Non-default scope rides its own skippable tag; default-scope
    // requests stay byte-identical to 2.2 encodings.
    wire::Extension scope_ext;
    scope_ext.tag = kAdminScopeExtTag;
    scope_ext.payload = {static_cast<std::uint8_t>(req.scope)};
    exts.push_back(std::move(scope_ext));
  }
  wire::encode_extension_section(w, exts);
  return w.take();
}

AdminRequest decode_admin_request(std::span<const std::uint8_t> payload) {
  wire::Reader r{payload};
  AdminRequest req;
  const std::uint8_t cmd = r.u8();
  req.raw_command = cmd;
  req.replica = r.varint();
  bool has_version = false;
  if (!r.done()) {
    // v2+ peer: an extension section follows the fixed fields.
    (void)wire::decode_extension_section(
        r, [&](std::uint8_t tag, std::span<const std::uint8_t> ext) {
          if (tag == kAdminScopeExtTag) {
            wire::Reader sr{ext};
            const std::uint8_t scope = sr.u8();
            sr.expect_done();
            if (scope > static_cast<std::uint8_t>(HealthScope::kInstance))
              throw wire::DecodeError("admin request: bad scope");
            req.scope = static_cast<HealthScope>(scope);
            return;
          }
          if (tag != kAdminVersionExtTag) return;  // skip unknown tags
          req.version = parse_version_ext(ext, "admin request");
          has_version = true;
        });
    r.expect_done();
  }
  if (cmd > static_cast<std::uint8_t>(AdminCommand::kMetricsProm)) {
    // A version-declaring peer with a compatible major gets a structured
    // unsupported reply from the dispatcher; a legacy (version-less)
    // peer keeps the v1 contract.
    if (!has_version)
      throw wire::DecodeError("admin request: unknown command");
    req.known = false;
    return req;
  }
  req.command = static_cast<AdminCommand>(cmd);
  return req;
}

std::vector<std::uint8_t> encode_admin_response(const AdminResponse& resp) {
  wire::Writer w;
  w.u8(resp.ok ? kOk : kError);
  w.string(resp.error);
  w.u8(resp.status.has_value() ? 1 : 0);
  if (resp.status) encode_status(w, *resp.status);
  w.u8(resp.body.has_value() ? 1 : 0);
  if (resp.body) w.string(*resp.body);
  // The extension section appears only when there is something to say:
  // plain responses stay byte-identical to v1, which is what lets a v1
  // client keep talking to this server during a rolling upgrade.
  std::vector<wire::Extension> exts;
  if (resp.unsupported) {
    wire::Extension ext;
    ext.tag = kAdminUnsupportedExtTag;
    wire::Writer ew;
    ew.u8(resp.unsupported->command);
    wire::encode_version(ew, resp.unsupported->server_version);
    ew.u8(resp.unsupported->min_major);
    ew.u8(resp.unsupported->max_major);
    ew.u8(resp.unsupported->max_command);
    ext.payload = ew.take();
    exts.push_back(std::move(ext));
  }
  if (resp.status &&
      (!resp.status->sessions.empty() || resp.status->total_sessions != 0)) {
    wire::Extension ext;
    ext.tag = kAdminSessionsExtTag;
    ext.payload = encode_sessions_ext(*resp.status);
    exts.push_back(std::move(ext));
  }
  if (resp.status && resp.status->shard) {
    wire::Extension ext;
    ext.tag = kAdminShardExtTag;
    ext.payload = encode_shard_ext(*resp.status->shard);
    exts.push_back(std::move(ext));
  }
  if (!exts.empty()) wire::encode_extension_section(w, exts);
  return w.take();
}

AdminResponse decode_admin_response(std::span<const std::uint8_t> payload) {
  wire::Reader r{payload};
  AdminResponse resp;
  const std::uint8_t status = r.u8();
  if (status == kOk) {
    resp.ok = true;
  } else if (status == kError) {
    resp.ok = false;
  } else {
    throw wire::DecodeError("admin response: bad status byte");
  }
  resp.error = r.string();
  const std::uint8_t has_status = r.u8();
  if (has_status > 1)
    throw wire::DecodeError("admin response: bad status flag");
  if (has_status == 1) resp.status = decode_status(r);
  const std::uint8_t has_body = r.u8();
  if (has_body > 1) throw wire::DecodeError("admin response: bad body flag");
  if (has_body == 1) resp.body = r.string(kMaxBodyBytes);
  if (!r.done()) {
    (void)wire::decode_extension_section(
        r, [&](std::uint8_t tag, std::span<const std::uint8_t> ext) {
          if (tag == kAdminSessionsExtTag) {
            // Session entries attach to the status block; a session
            // extension without one has nothing to attach to.
            if (resp.status) decode_sessions_ext(ext, *resp.status);
            return;
          }
          if (tag == kAdminShardExtTag) {
            // Shard identity attaches to the status block too.
            if (resp.status) decode_shard_ext(ext, *resp.status);
            return;
          }
          if (tag != kAdminUnsupportedExtTag) return;  // skip unknown tags
          wire::Reader er{ext};
          AdminUnsupported u;
          u.command = er.u8();
          u.server_version.major = er.u8();
          u.server_version.minor = er.u8();
          u.min_major = er.u8();
          u.max_major = er.u8();
          u.max_command = er.u8();
          er.expect_done();
          resp.unsupported = u;
        });
  }
  r.expect_done();
  return resp;
}

}  // namespace rcm::service
