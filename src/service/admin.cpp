#include "service/admin.hpp"

#include "wire/buffer.hpp"

namespace rcm::service {
namespace {

constexpr std::uint8_t kOk = 0x4f;     // 'O'
constexpr std::uint8_t kError = 0x45;  // 'E'

// Bulk response bodies (metrics snapshots, trace dumps) must still fit
// in one CRC frame (wire::kMaxFramePayload, 1 MiB) together with the
// response envelope.
constexpr std::size_t kMaxBodyBytes = 1u << 20;

void encode_status(wire::Writer& w, const ServiceStatus& s) {
  w.varint(s.ingested_datagrams);
  w.varint(s.displayed);
  w.varint(s.subscribers);
  w.varint(s.dm_ends);
  w.varint(s.end_timeouts);
  w.varint(s.replicas.size());
  for (const ReplicaStatus& r : s.replicas) {
    w.u8(static_cast<std::uint8_t>(r.state));
    w.varint(r.port);
    w.varint(r.incarnation);
    w.varint(r.accepted);
    w.varint(r.wal_records);
    w.varint(r.checkpoints);
    w.varint(r.recovered_wal);
  }
}

ServiceStatus decode_status(wire::Reader& r) {
  ServiceStatus s;
  s.ingested_datagrams = r.varint();
  s.displayed = r.varint();
  s.subscribers = r.varint();
  s.dm_ends = r.varint();
  s.end_timeouts = r.varint();
  const std::uint64_t n = r.varint();
  if (n > 4096) throw wire::DecodeError("admin status: replica count");
  s.replicas.reserve(n);
  for (std::uint64_t i = 0; i < n; ++i) {
    ReplicaStatus rs;
    const std::uint8_t state = r.u8();
    if (state > static_cast<std::uint8_t>(ReplicaState::kDown))
      throw wire::DecodeError("admin status: replica state");
    rs.state = static_cast<ReplicaState>(state);
    const std::uint64_t port = r.varint();
    if (port > 0xffff) throw wire::DecodeError("admin status: port");
    rs.port = static_cast<std::uint16_t>(port);
    rs.incarnation = r.varint();
    rs.accepted = r.varint();
    rs.wal_records = r.varint();
    rs.checkpoints = r.varint();
    rs.recovered_wal = r.varint();
    s.replicas.push_back(rs);
  }
  return s;
}

}  // namespace

std::vector<std::uint8_t> encode_admin_request(const AdminRequest& req) {
  wire::Writer w;
  w.u8(static_cast<std::uint8_t>(req.command));
  w.varint(req.replica);
  return w.take();
}

AdminRequest decode_admin_request(std::span<const std::uint8_t> payload) {
  wire::Reader r{payload};
  AdminRequest req;
  const std::uint8_t cmd = r.u8();
  if (cmd > static_cast<std::uint8_t>(AdminCommand::kTraceDump))
    throw wire::DecodeError("admin request: unknown command");
  req.command = static_cast<AdminCommand>(cmd);
  req.replica = r.varint();
  r.expect_done();
  return req;
}

std::vector<std::uint8_t> encode_admin_response(const AdminResponse& resp) {
  wire::Writer w;
  w.u8(resp.ok ? kOk : kError);
  w.string(resp.error);
  w.u8(resp.status.has_value() ? 1 : 0);
  if (resp.status) encode_status(w, *resp.status);
  w.u8(resp.body.has_value() ? 1 : 0);
  if (resp.body) w.string(*resp.body);
  return w.take();
}

AdminResponse decode_admin_response(std::span<const std::uint8_t> payload) {
  wire::Reader r{payload};
  AdminResponse resp;
  const std::uint8_t status = r.u8();
  if (status == kOk) {
    resp.ok = true;
  } else if (status == kError) {
    resp.ok = false;
  } else {
    throw wire::DecodeError("admin response: bad status byte");
  }
  resp.error = r.string();
  const std::uint8_t has_status = r.u8();
  if (has_status > 1)
    throw wire::DecodeError("admin response: bad status flag");
  if (has_status == 1) resp.status = decode_status(r);
  const std::uint8_t has_body = r.u8();
  if (has_body > 1) throw wire::DecodeError("admin response: bad body flag");
  if (has_body == 1) resp.body = r.string(kMaxBodyBytes);
  r.expect_done();
  return resp;
}

}  // namespace rcm::service
