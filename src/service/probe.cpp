#include "service/probe.hpp"

#include <algorithm>
#include <iomanip>
#include <sstream>
#include <stdexcept>
#include <system_error>

#include "core/expr/expression_condition.hpp"
#include "wire/codec.hpp"
#include "wire/frame.hpp"

namespace rcm::service {
namespace {

/// Renders the dogfooded condition source, e.g. "probe_latency[0] > 0.25".
std::string latency_source(double budget) {
  std::ostringstream out;
  out << "probe_latency[0] > " << std::setprecision(17) << budget;
  return out.str();
}

ConditionPtr latency_condition(double budget, VariableRegistry& vars) {
  return expr::compile_condition("probe.latency.exceeded",
                                 latency_source(budget), vars);
}

}  // namespace

// ---- ProbeMonitor -------------------------------------------------------

ProbeMonitor::ProbeMonitor(Options options)
    : options_(options),
      latency_var_(vars_.intern("probe_latency")),
      ce_(latency_condition(options.latency_budget, vars_), "probe") {}

void ProbeMonitor::on_probe_sent(SeqNo seq, double at) {
  if (!saw_send_) {
    first_send_ = at;
    saw_send_ = true;
  }
  last_time_ = std::max(last_time_, at);
  pending_.emplace(seq, at);
  ++sent_;
}

void ProbeMonitor::on_answer(SeqNo seq, double at) {
  const auto it = pending_.find(seq);
  if (it == pending_.end()) return;
  last_time_ = std::max(last_time_, at);
  const double latency = at - it->second;
  ++answered_;
  max_latency_ = std::max(max_latency_, latency);
  // A probe already declared late fed its (over-budget) sample then; the
  // CE would stale-drop a second update with the same seqno anyway.
  if (!late_.contains(seq)) feed_sample(seq, latency);
  if (latency <= options_.latency_budget) {
    if (window_open_) {
      windows_.back().to = at;
      windows_.back().closed = true;
      window_open_ = false;
    }
  } else {
    open_window(it->second);
  }
  late_.erase(seq);
  pending_.erase(it);
}

void ProbeMonitor::on_time(double now) {
  last_time_ = std::max(last_time_, now);
  for (const auto& [seq, sent_at] : pending_) {
    if (now - sent_at <= options_.latency_budget) continue;
    if (late_.contains(seq)) continue;
    late_.insert(seq);
    feed_sample(seq, now - sent_at);
    open_window(sent_at);
  }
}

ProbeReport ProbeMonitor::report() const {
  ProbeReport out;
  out.probes_sent = sent_;
  out.probes_answered = answered_;
  out.max_latency = max_latency_;
  out.windows = windows_;
  if (window_open_ && !out.windows.empty())
    out.windows.back().to = std::max(last_time_, out.windows.back().from);
  double unavailable = 0.0;
  for (const UnavailabilityWindow& w : out.windows)
    unavailable += std::max(w.duration(), 0.0);
  const double span = saw_send_ ? last_time_ - first_send_ : 0.0;
  out.availability =
      span > 0.0 ? std::clamp(1.0 - unavailable / span, 0.0, 1.0) : 1.0;
  out.latency_alerts = ce_.emitted();
  return out;
}

void ProbeMonitor::feed_sample(SeqNo seq, double latency) {
  // Probe seqs ascend, so the CE accepts samples in probe order and
  // stale-drops reordered answers — exactly the paper's receiver rule.
  (void)ce_.on_update(Update{latency_var_, seq, latency});
}

void ProbeMonitor::open_window(double from) {
  if (window_open_) return;
  windows_.push_back(UnavailabilityWindow{from, from, false});
  window_open_ = true;
}

// ---- AvailabilityProbe --------------------------------------------------

AvailabilityProbe::AvailabilityProbe(AlertService& service,
                                     ProbeOptions options)
    : service_(service),
      options_(options),
      monitor_(ProbeMonitor::Options{options.latency_budget}) {}

AvailabilityProbe::~AvailabilityProbe() { stop(); }

void AvailabilityProbe::start() {
  if (started_.exchange(true)) throw std::logic_error("probe started twice");
  epoch_ = std::chrono::steady_clock::now();
  const std::uint64_t before = service_.status().subscribers;
  subscription_ = net::TcpStream::connect(service_.subscriber_port());
  // The service's acceptor polls; wait for the fan-out registration so
  // probes sent from now on cannot race past the subscriber list.
  for (int i = 0; i < 400; ++i) {
    if (service_.status().subscribers > before) break;
    std::this_thread::sleep_for(std::chrono::milliseconds{5});
  }
  if (service_.status().subscribers <= before)
    throw std::runtime_error("probe subscriber never registered");
  running_.store(true);
  thread_ = std::thread([this] { run(); });
}

void AvailabilityProbe::stop() {
  running_.store(false);
  if (thread_.joinable()) thread_.join();
  if (subscription_) subscription_.reset();
  if (started_.load()) {
    const std::lock_guard<std::mutex> lock(mutex_);
    monitor_.on_time(now());
  }
}

ProbeReport AvailabilityProbe::report() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return monitor_.report();
}

double AvailabilityProbe::now() const {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       epoch_)
      .count();
}

void AvailabilityProbe::run() {
  const double interval =
      std::chrono::duration<double>(options_.interval).count();
  wire::FrameCursor cursor;
  net::UdpSocket udp;
  SeqNo next_seq = options_.first_seqno;
  double next_send = now();

  try {
    while (running_.load()) {
      if (now() >= next_send) {
        const SeqNo seq = next_seq++;
        const Update probe{options_.var, seq, options_.trigger_value};
        const auto framed = wire::frame(wire::encode_update(probe));
        {
          const std::lock_guard<std::mutex> lock(mutex_);
          monitor_.on_probe_sent(seq, now());
        }
        for (const std::uint16_t port : service_.replica_ports()) {
          try {
            udp.send_to(port, framed);
          } catch (const std::system_error&) {
            // A killed replica's port refusing datagrams IS the outage
            // being measured, not a probe failure.
          }
        }
        next_send += interval;
      }

      const auto chunk =
          subscription_->read_some(std::chrono::milliseconds{5});
      if (chunk) {
        if (chunk->empty()) break;  // service drained: no more answers
        cursor.feed(*chunk);
        while (const auto payload = cursor.next()) {
          const wire::DecodedAlert decoded = wire::decode_alert(*payload);
          const auto hist = decoded.alert.histories.find(options_.var);
          if (hist == decoded.alert.histories.end() || hist->second.empty())
            continue;
          const SeqNo seq = decoded.alert.seqno(options_.var);
          if (seq < options_.first_seqno) continue;  // real traffic, not ours
          const std::lock_guard<std::mutex> lock(mutex_);
          monitor_.on_answer(seq, now());
        }
      }

      const std::lock_guard<std::mutex> lock(mutex_);
      monitor_.on_time(now());
    }
  } catch (const std::exception&) {
    // Socket teardown mid-shutdown; the monitor keeps what it saw.
  }
}

}  // namespace rcm::service
