// Restart policy for replica workers: exponential backoff per replica,
// reset after a healthy stretch of uptime.
//
// Kept deterministic and clock-free (callers pass uptimes in) so the
// policy itself is unit-testable without sleeping.
#pragma once

#include <chrono>
#include <cstddef>
#include <vector>

namespace rcm::service {

/// Backoff schedule for restarting a crashed replica.
struct BackoffPolicy {
  std::chrono::milliseconds initial{10};  ///< delay after first failure
  double factor = 2.0;                    ///< growth per consecutive failure
  std::chrono::milliseconds max{2000};    ///< delay ceiling
  /// A replica that stays up at least this long is considered healthy
  /// again: its next failure starts back at `initial`.
  std::chrono::milliseconds reset_after{1000};
};

/// Tracks consecutive failures per replica and hands out restart delays.
class ReplicaSupervisor {
 public:
  ReplicaSupervisor(BackoffPolicy policy, std::size_t replicas);

  /// Records a failure of `replica` and returns how long to wait before
  /// restarting it: initial * factor^(consecutive_failures - 1), capped
  /// at max.
  [[nodiscard]] std::chrono::milliseconds next_delay(std::size_t replica);

  /// Records that `replica` ran for `uptime` since its last (re)start.
  /// Uptimes >= reset_after clear the consecutive-failure streak.
  void note_healthy(std::size_t replica, std::chrono::milliseconds uptime);

  /// Total restarts handed out for `replica` over the supervisor's life.
  [[nodiscard]] std::size_t restarts(std::size_t replica) const;

  /// Current consecutive-failure streak for `replica`.
  [[nodiscard]] std::size_t consecutive_failures(std::size_t replica) const;

  [[nodiscard]] const BackoffPolicy& policy() const noexcept {
    return policy_;
  }

 private:
  BackoffPolicy policy_;
  std::vector<std::size_t> consecutive_;
  std::vector<std::size_t> total_;
};

}  // namespace rcm::service
